(* Moving-object tracking: window queries over uncertainty rectangles.

   A dispatch system tracks 8 000 vehicles.  Positions are dead-reckoned:
   each vehicle is known only up to a square that grows with the time
   since its last report (§1.1's replication barrier).  "Which vehicles
   are inside the downtown zone right now?" is a QaQ whose probes contact
   vehicles over the radio.

   Run with:  dune exec examples/moving_objects.exe *)

let () =
  let rng = Rng.create 1609 in
  let area = Rect.make (Interval.make 0.0 100.0) (Interval.make 0.0 100.0) in
  let fleet =
    Moving_object.random_fleet rng ~n:8000 ~area ~max_radius:6.0
  in
  let downtown =
    Rect.make (Interval.make 35.0 65.0) (Interval.make 40.0 70.0)
  in
  let truly_inside = Moving_object.exact_size downtown fleet in
  Format.printf "fleet: %d vehicles; truly inside the window: %d@."
    (Array.length fleet) truly_inside;

  let run ~label ~requirements ~policy =
    let report =
      Operator.run ~rng
        ~instance:(Moving_object.instance downtown)
        ~probe:(Probe_driver.scalar Moving_object.probe) ~policy ~requirements
        (Operator.source_of_array fleet)
    in
    let answer_in =
      List.length
        (List.filter
           (fun e -> Moving_object.in_exact downtown e.Operator.obj)
           report.answer)
    in
    Format.printf
      "%-28s answer=%4d probes=%4d W=%7.0f  p^G=%.2f r^G=%.2f  (true hits in answer: %d)@."
      label report.answer_size report.counts.probes
      (Operator.cost Cost_model.paper report)
      report.guarantees.precision report.guarantees.recall answer_in
  in

  (* Dispatcher view: tolerate fuzzy positions (laxity = full diagonal),
     some false positives, half the fleet coverage. *)
  run ~label:"dispatch (loose)"
    ~requirements:(Quality.requirements ~precision:0.8 ~recall:0.5 ~laxity:20.0)
    ~policy:Policy.stingy;

  (* Billing view: every reported vehicle must really be in the zone
     (precision 1), positions pinned to within a 1-unit diagonal. *)
  run ~label:"billing (exact membership)"
    ~requirements:(Quality.requirements ~precision:1.0 ~recall:0.5 ~laxity:1.0)
    ~policy:(Policy.qaq (Policy.params ~s3:1.0 ~s5:0.6 ~p_py:1.0 ~p_fm:0.0));

  (* Emergency sweep: nobody may be missed. *)
  run ~label:"emergency (perfect recall)"
    ~requirements:(Quality.requirements ~precision:0.5 ~recall:1.0 ~laxity:20.0)
    ~policy:Policy.greedy
