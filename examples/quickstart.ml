(* Quickstart: evaluate a Quality-Aware selection over interval data.

   A table of 10 000 records holds interval approximations of hidden
   precise values (think: cached sensor readings, compressed samples).
   We ask for the records with value >= 700, requiring precision >= 0.9,
   recall >= 0.8 and answer laxity <= 25 — and let the QaQ operator
   figure out the cheapest mix of forwarding, probing and ignoring.

   Run with:  dune exec examples/quickstart.exe *)

let () =
  let rng = Rng.create 2004 in

  (* 1. Data: hidden truths in [0, 1000], interval beliefs up to 80 wide. *)
  let records =
    Interval_data.uniform_intervals rng ~n:10000
      ~value_range:(Interval.make 0.0 1000.0) ~max_width:80.0
  in

  (* 2. The query and its quality requirements. *)
  let predicate = Predicate.ge 700.0 in
  let requirements =
    Quality.requirements ~precision:0.9 ~recall:0.8 ~laxity:25.0
  in

  (* 3. Tune the decision parameters from a 1% sample (paper §4.2). *)
  let sample = Selectivity.bernoulli_sample rng ~fraction:0.01 records in
  let estimate =
    Selectivity.estimate ~instance:(Interval_data.instance predicate) sample
  in
  let spec =
    Region_model.spec ~f_y:estimate.f_y ~f_m:estimate.f_m
      ~max_laxity:estimate.max_laxity
      ~density:(Density.of_estimate estimate)
  in
  let problem =
    Solver.problem ~total:(Array.length records) ~spec ~requirements ()
  in
  let solution = Solver.solve problem in
  Format.printf "optimizer: %a@." Solver.pp_evaluation solution;

  (* 4. Evaluate.  The answer is streamed; we also collect it. *)
  let meter = Cost_meter.create () in
  let report =
    Operator.run ~rng ~meter
      ~instance:(Interval_data.instance predicate)
      ~probe:(Probe_driver.scalar Interval_data.probe)
      ~policy:(Policy.qaq solution.params)
      ~requirements
      (Operator.source_of_array records)
  in

  (* 5. Inspect the result. *)
  Format.printf "answer: %d records (%d probed to precise values)@."
    report.answer_size
    (List.length (List.filter (fun e -> e.Operator.precise) report.answer));
  Format.printf "guarantees: %a  (requirements: %a)@." Quality.pp_guarantees
    report.guarantees Quality.pp_requirements requirements;
  Format.printf "work: %a@." Cost_meter.pp_counts report.counts;
  Format.printf "cost W = %.0f units (probe = 100x read/write), W/|T| = %.2f@."
    (Operator.cost Cost_model.paper report)
    (Operator.normalized_cost Cost_model.paper ~total:(Array.length records)
       report);

  (* 6. Because this is synthetic data we can check the truth (Eqs. 3-4):
        the guarantees are honest lower bounds. *)
  let in_exact e = Interval_data.in_exact predicate e.Operator.obj in
  let answer_in_exact = List.length (List.filter in_exact report.answer) in
  let actual_precision =
    Quality.Diagnostics.precision ~answer_size:report.answer_size
      ~answer_in_exact
  in
  let actual_recall =
    Quality.Diagnostics.recall
      ~exact_size:(Interval_data.exact_size predicate records)
      ~answer_in_exact
  in
  Format.printf "ground truth: precision %.3f >= %.3f, recall %.3f >= %.3f@."
    actual_precision report.guarantees.precision actual_recall
    report.guarantees.recall;
  assert (actual_precision >= report.guarantees.precision -. 1e-9);
  assert (actual_recall >= report.guarantees.recall -. 1e-9)
