(* Document screening by edit distance: the expensive-predicate barrier.

   A corpus of 5 000 documents is stored as q-gram profiles (a fraction
   of the text).  The query: documents within edit distance 6 of a
   pattern, with perfect precision.  Here the probe is not a network
   fetch — it is running the O(n·m) edit distance itself (§1.1's
   querying barrier); the profiles' count-filtering bound rejects most
   of the corpus without ever paying it.

   Run with:  dune exec examples/document_screening.exe *)

let random_letter rng = Char.chr (Char.code 'a' + Rng.int rng 26)

let () =
  let rng = Rng.create 1992 in
  let pattern = "approximate selection over imprecise data" in
  let mutate s edits =
    let bytes = Bytes.of_string s in
    for _ = 1 to edits do
      Bytes.set bytes (Rng.int rng (Bytes.length bytes)) (random_letter rng)
    done;
    Bytes.to_string bytes
  in
  let corpus =
    Array.init 5000 (fun id ->
        let u = Rng.uniform rng in
        let text =
          if u < 0.08 then mutate pattern (Rng.int rng 4)
          else if u < 0.16 then mutate pattern (5 + Rng.int rng 8)
          else String.init (30 + Rng.int rng 25) (fun _ -> random_letter rng)
        in
        Text_query.make_item ~id ~q:3 text)
  in
  let qy = Text_query.query ~q:3 ~pattern ~k:6 in
  Printf.printf "corpus: %d documents; truly within distance %d: %d\n"
    (Array.length corpus) qy.k (Text_query.exact_size qy corpus);

  (* How much the sketches already know, before any distance run. *)
  let verdicts =
    Array.map (fun i -> (Text_query.instance qy).classify i) corpus
  in
  let count v =
    Array.fold_left
      (fun acc x -> if Tvl.equal x v then acc + 1 else acc)
      0 verdicts
  in
  Printf.printf
    "q-gram filter: %d certain non-matches, %d candidates to consider\n"
    (count Tvl.No) (count Tvl.Maybe);

  let requirements = Quality.requirements ~precision:1.0 ~recall:0.7 ~laxity:0.0 in
  let report =
    Operator.run ~rng ~instance:(Text_query.instance qy)
      ~probe:(Probe_driver.scalar Text_query.probe) ~policy:Policy.stingy
      ~requirements
      (Operator.source_of_array corpus)
  in
  Printf.printf
    "answer: %d documents (all verified matches); distance computations: %d \
     of %d documents\n"
    report.answer_size report.counts.probes (Array.length corpus);
  Printf.printf "guarantees: p^G=%.2f r^G=%.2f\n" report.guarantees.precision
    report.guarantees.recall;
  assert (Quality.meets report.guarantees requirements);
  List.iter
    (fun (e : Text_query.item Operator.emitted) ->
      assert (Text_query.in_exact qy e.obj))
    report.answer
