(* Sensor monitoring: the paper's perfect-recall scenario (§2.1).

   A field of 5 000 temperature sensors is replicated at the query site
   as intervals (±tolerance around the last transmitted value).  The
   safety query "all sensors above the critical threshold" needs perfect
   recall — missing a hot sensor could mean an accident — but tolerates
   imperfect precision.  A routine dashboard query, by contrast, is happy
   with recall 0.5 and pays an order of magnitude less.

   Run with:  dune exec examples/sensor_monitoring.exe *)

let critical = 90.0

let run_query net ~label ~requirements =
  let rng = Rng.create 11 in
  let predicate = Predicate.ge critical in
  let readings = Sensor_net.snapshot net in
  (* Network probes are expensive: simulate 20ms latency with jitter and
     2% transient failure. *)
  let source =
    Probe_source.create ~latency:(Probe_source.Jittered { base = 20.0; jitter = 5.0 })
      ~failure_rate:0.02 ~rng:(Rng.create 7) Sensor_net.probe
  in
  let report =
    Operator.run ~rng
      ~instance:(Sensor_net.instance predicate)
      ~probe:(Probe_source.driver source)
      ~policy:Policy.stingy (* guards force exactly the needed probes *)
      ~requirements
      (Operator.source_of_array readings)
  in
  let stats = Probe_source.stats source in
  Format.printf "%-22s answer=%4d  probes=%4d (%.0f time units over the air)@."
    label report.answer_size stats.probes stats.simulated_latency;
  Format.printf "%-22s guarantees: %a@." "" Quality.pp_guarantees
    report.guarantees;
  (* Sanity: every sensor that is truly hot must be in a perfect-recall
     answer. *)
  if requirements.Quality.recall >= 1.0 then begin
    let hot = Sensor_net.exact_size predicate readings in
    let answered_hot =
      List.length
        (List.filter
           (fun e -> Sensor_net.in_exact predicate e.Operator.obj)
           report.answer)
    in
    Format.printf "%-22s truly hot sensors: %d, of which answered: %d@." ""
      hot answered_hot;
    assert (answered_hot = hot)
  end

let () =
  let rng = Rng.create 365 in
  let net =
    Sensor_net.create rng ~n:5000
      ~value_range:(Interval.make 20.0 100.0)
      ~tolerance_range:(Interval.make 0.5 4.0)
      ~drift_stddev:0.8
  in
  (* Let the field run for a while; replicas re-centre only on escape. *)
  for _ = 1 to 50 do
    Sensor_net.step net
  done;
  Format.printf "sensor field: %d sensors, %d replica transmissions in 50 steps@."
    (Sensor_net.size net) (Sensor_net.transmissions net);

  Format.printf "@.Safety query: temperature >= %g, perfect recall@." critical;
  run_query net ~label:"  r_q = 1.0 (safety)"
    ~requirements:(Quality.requirements ~precision:0.5 ~recall:1.0 ~laxity:8.0);

  Format.printf "@.Dashboard query: same predicate, relaxed recall@.";
  run_query net ~label:"  r_q = 0.5 (dashboard)"
    ~requirements:(Quality.requirements ~precision:0.5 ~recall:0.5 ~laxity:8.0)
