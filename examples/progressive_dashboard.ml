(* Progressive evaluation: watch the guarantees converge.

   Operator.trace samples the quality guarantees after every read, so a
   dashboard can show an answer firming up in real time: the recall
   guarantee climbs towards the requirement while precision and laxity
   never leave their bounds (Theorem 3.1 enforcement).  This example
   renders the recall trajectory as an ASCII chart and shows how a
   stricter recall bound stretches the scan.

   Run with:  dune exec examples/progressive_dashboard.exe *)

let sparkline samples ~width ~target =
  let n = List.length samples in
  if n = 0 then ""
  else begin
    let arr = Array.of_list samples in
    let levels = "_.:-=+*#%@" in
    String.init width (fun i ->
        let idx = i * n / width in
        let _, (g : Quality.guarantees) = arr.(idx) in
        let frac = Float.min 1.0 (g.recall /. target) in
        levels.[Stdlib.min 9 (int_of_float (frac *. 9.99))])
  end

let () =
  let rng = Rng.create 90 in
  let data =
    Synthetic.generate rng (Synthetic.config ~total:10000 ~f_y:0.2 ~f_m:0.2 ())
  in
  Printf.printf
    "recall-guarantee trajectory (one column ~ 125 reads; full bar = bound met)\n\n";
  List.iter
    (fun r_q ->
      let requirements =
        Quality.requirements ~precision:0.9 ~recall:r_q ~laxity:50.0
      in
      let params = (Exp_runner.solve_setting
                      { Exp_config.default with r_q; label = "x" }).Solver.params
      in
      let report, samples =
        Operator.trace ~rng ~every:50 ~instance:Synthetic.instance
          ~probe:(Probe_driver.scalar Synthetic.probe)
          ~policy:(Policy.qaq params)
          ~requirements
          (Operator.source_of_array data)
      in
      Printf.printf "r_q = %-4g |%-80s| reads %5d, W/|T| %.2f\n" r_q
        (sparkline samples ~width:80 ~target:r_q)
        report.counts.reads
        (Operator.normalized_cost Cost_model.paper ~total:(Array.length data)
           report))
    [ 0.1; 0.3; 0.5; 0.7; 0.9 ];
  Printf.printf
    "\nprecision and laxity hold at every checkpoint; only recall is earned\n\
     gradually — that is the quality/performance dial of the paper.\n"
