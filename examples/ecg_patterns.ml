(* ECG pattern screening: the paper's perfect-precision scenario (§2.1).

   An archive holds 2 000 long time series ("ECGs"), of which the query
   site keeps only PAA sketches (16 segments for 512 points — a 91%
   space saving).  A study wants candidate patients whose series lies
   within Euclidean distance ε of a known arrhythmia motif.  Candidates
   will be enrolled in a trial, so precision must be perfect — but we do
   not need every matching patient in the world (modest recall).

   Run with:  dune exec examples/ecg_patterns.exe *)

let () =
  let rng = Rng.create 571 in
  let length = 512 and segments = 16 in
  let motif =
    Time_series.of_array
      (Array.init 64 (fun i ->
           let t = float_of_int i /. 63.0 in
           (* A spike-and-dip shape. *)
           (10.0 *. exp (-200.0 *. ((t -. 0.3) ** 2.0)))
           -. (6.0 *. exp (-150.0 *. ((t -. 0.6) ** 2.0)))))
  in
  (* The reference pattern: a clean heartbeat carrying the motif. *)
  let baseline rng =
    Time_series.random_walk rng ~length ~start:0.0 ~step_stddev:0.4
  in
  let pattern =
    Time_series.with_motif rng ~base:(baseline (Rng.create 1)) ~motif ~at:200
      ~amplitude:1.0
  in
  (* Archive: 10% match the pattern closely (same beat, small per-point
     noise), 10% are borderline (noisier copies near the ε boundary), the
     rest are unrelated rhythms. *)
  let noisy_copy stddev =
    Time_series.map (fun x -> x +. Rng.gaussian rng ~mean:0.0 ~stddev) pattern
  in
  let items =
    Array.init 2000 (fun id ->
        let u = Rng.uniform rng in
        let series =
          if u < 0.1 then noisy_copy (Rng.uniform_in rng 0.3 0.8)
          else if u < 0.2 then noisy_copy (Rng.uniform_in rng 1.0 2.0)
          else baseline rng
        in
        Ts_query.make_item ~id ~segments series)
  in
  let sample_ratio = Paa.compression_ratio (Array.get items 0).Ts_query.sketch in
  Format.printf "archive: %d series of %d points, sketches at %.0f%% of size@."
    (Array.length items) length (100.0 *. sample_ratio);

  let query = Ts_query.query ~pattern ~epsilon:30.0 in
  let exact = Ts_query.exact_size query items in
  Format.printf "ground truth: %d series within distance %.0f@." exact
    query.epsilon;

  (* Perfect precision, recall 0.3, laxity bound on the distance
     uncertainty of reported candidates. *)
  let requirements =
    Quality.requirements ~precision:1.0 ~recall:0.3 ~laxity:20.0
  in
  let meter = Cost_meter.create () in
  let report =
    Operator.run ~rng ~meter
      ~instance:(Ts_query.instance query)
      ~probe:(Probe_driver.scalar Ts_query.probe)
      ~policy:
        (Policy.qaq (Policy.params ~s3:0.85 ~s5:0.85 ~p_py:1.0 ~p_fm:0.0))
      ~requirements
      (Operator.source_of_array items)
  in
  Format.printf "answer: %d candidates, guarantees: %a@." report.answer_size
    Quality.pp_guarantees report.guarantees;
  Format.printf "work: %a@." Cost_meter.pp_counts report.counts;

  (* Perfect precision means every candidate truly matches. *)
  let true_matches =
    List.length
      (List.filter (fun e -> Ts_query.in_exact query e.Operator.obj) report.answer)
  in
  Format.printf "verified: %d/%d candidates truly match (precision 1.0)@."
    true_matches report.answer_size;
  assert (true_matches = report.answer_size);

  (* Compare with the naive plan: probe every MAYBE (fetch the series). *)
  let naive_probes =
    Array.fold_left
      (fun acc item ->
        match (Ts_query.instance query).classify item with
        | Tvl.Maybe -> acc + 1
        | Tvl.Yes | Tvl.No -> acc)
      0 items
  in
  Format.printf
    "naive exact evaluation would probe %d series; QaQ probed %d (%.1fx fewer)@."
    naive_probes report.counts.probes
    (float_of_int naive_probes /. float_of_int (max 1 report.counts.probes))
