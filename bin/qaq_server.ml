(* qaq-server — a long-running multi-query QaQ front end.

   A thin cmdliner wrapper over Server_core: the server owns one
   synthetic dataset and one cross-query Probe_broker over it; clients
   register quality-aware queries (each with its own seed, requirements
   and tenant) and run them as a concurrent batch through
   Engine.execute_many, every query drawing on the shared probe
   capacity through its own broker client.  Live telemetry — trace IDs
   on every query, a flight recorder with anomaly dumps, rolling
   per-tenant SLO windows behind HEALTH/SLO/RECORDER — is wired by the
   library; this file only parses flags (see Server_core for the line
   protocol).

   By default the server speaks on stdin/stdout; --socket PATH listens
   on a Unix domain socket instead and serves connections one at a
   time. *)

open Cmdliner

let admission_conv =
  let parse = function
    | "degrade" -> Ok Server_core.Degrade
    | "reject" -> Ok Server_core.Reject
    | s -> Error (`Msg (Printf.sprintf "unknown admission mode %S" s))
  in
  let print ppf m =
    Format.pp_print_string ppf
      (match m with
      | Server_core.Degrade -> "degrade"
      | Server_core.Reject -> "reject")
  in
  Arg.conv (parse, print)

let run seed total f_y f_m max_laxity batch capacity freshness probe_ms
    admission domains fault_rate fault_seed tiers_spec breaker recorder
    recorder_dir window prom trace socket =
  let tiers =
    match tiers_spec with
    | None -> None
    | Some spec -> (
        match Probe_tier.of_string spec with
        | specs -> Some specs
        | exception Invalid_argument msg ->
            Printf.eprintf "qaq-server: --tiers: %s\n%!" msg;
            exit 2)
  in
  let cfg =
    {
      Server_core.c_seed = seed;
      c_total = total;
      c_f_y = f_y;
      c_f_m = f_m;
      c_max_laxity = max_laxity;
      c_batch = batch;
      c_capacity = capacity;
      c_freshness = freshness;
      c_probe_ms = probe_ms;
      c_admission = admission;
      c_domains = domains;
      c_fault_rate = fault_rate;
      c_fault_seed = fault_seed;
      c_tiers = tiers;
      c_breaker = breaker;
      c_recorder = recorder;
      c_recorder_dir = recorder_dir;
      c_window = window;
      c_prom = prom;
      c_trace = trace;
    }
  in
  let srv = Server_core.create cfg in
  match socket with
  | Some path -> Server_core.serve_socket srv path
  | None ->
      Printf.eprintf
        "qaq-server: %d objects, batch %d, admission %s (HELP for commands)\n%!"
        total batch
        (match admission with
        | Server_core.Degrade -> "degrade"
        | Server_core.Reject -> "reject");
      ignore (Server_core.serve srv stdin stdout)

let cmd =
  let seed =
    let doc = "Dataset seed (the workload all queries share)." in
    Arg.(value & opt int 2004 & info [ "seed" ] ~doc)
  in
  let total =
    let doc = "Shared dataset size |T|." in
    Arg.(value & opt int 10000 & info [ "total" ] ~doc)
  in
  let f_y =
    let doc = "Fraction of YES objects." in
    Arg.(value & opt float 0.2 & info [ "fy" ] ~doc)
  in
  let f_m =
    let doc = "Fraction of MAYBE objects." in
    Arg.(value & opt float 0.2 & info [ "fm" ] ~doc)
  in
  let max_laxity =
    let doc = "Maximum input laxity L." in
    Arg.(value & opt float 100.0 & info [ "max-laxity" ] ~doc)
  in
  let batch =
    let doc =
      "Broker batch size B: backend probes dispatch B at a time, packed \
       across tenants."
    in
    Arg.(value & opt int 8 & info [ "batch"; "B" ] ~doc)
  in
  let capacity =
    let doc =
      "Shared probe capacity: admitted backend probes across the server's \
       lifetime.  Unlimited when absent."
    in
    Arg.(value & opt (some int) None & info [ "capacity" ] ~docv:"N" ~doc)
  in
  let freshness =
    let doc =
      "Freshness window in seconds: a probe completed this recently is a \
       free hit.  Default: forever (the dataset is immutable); 0 disables \
       sharing."
    in
    Arg.(value & opt float infinity & info [ "freshness" ] ~docv:"SECONDS" ~doc)
  in
  let probe_ms =
    let doc =
      "Simulated backend latency per probe batch, in milliseconds of real \
       wall clock — makes the concurrency saving observable."
    in
    Arg.(value & opt float 0.0 & info [ "probe-ms" ] ~docv:"MS" ~doc)
  in
  let admission =
    let doc =
      "What a saturated broker does to new queries: degrade (run them; \
       probes beyond capacity fail into guarantee-aware fallbacks) or \
       reject (refuse the batch outright)."
    in
    Arg.(value & opt admission_conv Server_core.Degrade & info [ "admission" ] ~doc)
  in
  let domains =
    let doc =
      "Domains for RUN (default: one per queued query, capped at 16)."
    in
    Arg.(value & opt (some int) None & info [ "domains" ] ~docv:"N" ~doc)
  in
  let fault_rate =
    let doc =
      "Probability a backend probe fails permanently (deterministic per \
       --fault-seed).  Default 0: no injection."
    in
    Arg.(value & opt float 0.0 & info [ "fault-rate" ] ~docv:"P" ~doc)
  in
  let fault_seed =
    let doc = "Fault-injection seed." in
    Arg.(value & opt int 1337 & info [ "fault-seed" ] ~doc)
  in
  let tiers =
    let doc =
      "Serve probes through a tiered cascade, e.g. \
       \"proxy:cp=0.1,cb=1,B=32,shrink=0.8;oracle:cp=1,cb=5,B=8\": one \
       shared backend per tier (shrink=POWER tiers narrow objects, the \
       final tier resolves), per-(object, tier) coalescing and \
       freshness, and a TIER line per backend in STATS.  Overrides \
       --batch with each tier's own B."
    in
    Arg.(value & opt (some string) None & info [ "tiers" ] ~docv:"SPEC" ~doc)
  in
  let breaker =
    let doc = "Put a circuit breaker on the broker's backend dispatch." in
    Arg.(value & flag & info [ "breaker" ] ~doc)
  in
  let recorder =
    let doc =
      "Flight-recorder ring capacity (recent trace events kept per query \
       and globally).  0 disables the recorder."
    in
    Arg.(value & opt int 256 & info [ "recorder" ] ~docv:"N" ~doc)
  in
  let recorder_dir =
    let doc =
      "Directory automatic anomaly dumps are written to as chrome-trace \
       JSON files (they stay queryable over RECORDER regardless)."
    in
    Arg.(
      value & opt (some string) None & info [ "recorder-dir" ] ~docv:"DIR" ~doc)
  in
  let window =
    let doc = "Rolling SLO window in seconds (HEALTH and SLO verbs)." in
    Arg.(value & opt float 60.0 & info [ "window" ] ~docv:"SECONDS" ~doc)
  in
  let prom =
    let doc =
      "Write a Prometheus text exposition (cumulative metrics + the \
       windowed qaq_slo_* family) to this file after every RUN."
    in
    Arg.(value & opt (some string) None & info [ "prom" ] ~docv:"PATH" ~doc)
  in
  let trace =
    let doc = "Format every trace event to stderr (debugging)." in
    Arg.(value & flag & info [ "trace" ] ~doc)
  in
  let socket =
    let doc = "Listen on a Unix domain socket instead of stdin/stdout." in
    Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)
  in
  let doc = "Serve concurrent quality-aware queries from shared probe capacity" in
  Cmd.v
    (Cmd.info "qaq-server" ~version:"1.0.0" ~doc)
    Term.(
      const run $ seed $ total $ f_y $ f_m $ max_laxity $ batch $ capacity
      $ freshness $ probe_ms $ admission $ domains $ fault_rate $ fault_seed
      $ tiers $ breaker $ recorder $ recorder_dir $ window $ prom $ trace
      $ socket)

let () = exit (Cmd.eval cmd)
