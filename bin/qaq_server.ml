(* qaq-server — a long-running multi-query QaQ front end.

   The server owns one synthetic dataset and one cross-query
   Probe_broker over it; clients register quality-aware queries (each
   with its own seed, requirements and tenant) and run them as a
   concurrent batch through Engine.execute_many, every query drawing on
   the shared probe capacity through its own broker client.  Responses
   report each query's quality guarantees next to the broker's
   hit/dedup statistics, so the saving from shared probing is visible
   per batch.

   Line protocol (one request per line; key=value tokens):

     QUERY [tenant=T] [seed=N] [p=0.9] [r=0.6] [l=50] [quota=N]
                  register a query           -> QUEUED id=...
     RUN          run every queued query     -> RESULT ... lines, DONE ...
     STATS        broker lifetime statistics -> STATS ...
     TENANTS      per-tenant statistics      -> TENANT ... lines, OK
     METRICS      the qaq.broker.* metrics registry as one JSON line
     HELP         this summary
     QUIT         close the session          -> BYE

   By default the server speaks on stdin/stdout; --socket PATH listens
   on a Unix domain socket instead and serves connections one at a
   time. *)

open Cmdliner

type admission = Degrade | Reject

type pending = {
  id : int;
  tenant : string;
  seed : int;
  quota : int option;
  requirements : Quality.requirements;
}

type server = {
  data : Synthetic.obj array;
  broker : Synthetic.obj Probe_broker.t;
  obs : Obs.t;
  admission : admission;
  domains : int option;
  mutable queue : pending list;  (* newest first *)
  mutable next_id : int;
  mutable next_seed : int;
}

let pr out fmt =
  Printf.ksprintf
    (fun line ->
      output_string out line;
      output_char out '\n';
      flush out)
    fmt

let print_stats out label (s : Probe_broker.stats) =
  pr out
    "%s requests=%d admitted=%d charged=%d failed=%d coalesced=%d fresh=%d \
     rejected=%d batches=%d"
    label s.requests s.admitted s.charged s.failed s.coalesced s.fresh_hits
    s.rejected s.batches

(* key=value tokens; bare tokens are errors the client can see. *)
let parse_kvs tokens =
  List.fold_left
    (fun acc tok ->
      match acc with
      | Error _ as e -> e
      | Ok kvs -> (
          match String.index_opt tok '=' with
          | Some i ->
              Ok
                ((String.sub tok 0 i,
                  String.sub tok (i + 1) (String.length tok - i - 1))
                :: kvs)
          | None -> Error tok))
    (Ok []) tokens

let handle_query srv out tokens =
  match parse_kvs tokens with
  | Error tok -> pr out "ERR expected key=value, got %S" tok
  | Ok kvs -> (
      let find k = List.assoc_opt k kvs in
      let float_of k default =
        match find k with Some v -> float_of_string_opt v | None -> Some default
      in
      let tenant = Option.value (find "tenant") ~default:"default" in
      let seed =
        match find "seed" with
        | Some v -> int_of_string_opt v
        | None ->
            let s = srv.next_seed in
            srv.next_seed <- s + 1;
            Some s
      in
      let quota =
        match find "quota" with
        | Some v -> Option.map Option.some (int_of_string_opt v)
        | None -> Some None
      in
      match
        (seed, quota, float_of "p" 0.9, float_of "r" 0.6, float_of "l" 50.0)
      with
      | Some seed, Some quota, Some p, Some r, Some l -> (
          match Quality.requirements ~precision:p ~recall:r ~laxity:l with
          | requirements ->
              let id = srv.next_id in
              srv.next_id <- id + 1;
              srv.queue <-
                { id; tenant; seed; quota; requirements } :: srv.queue;
              pr out "QUEUED id=%d tenant=%s seed=%d p=%g r=%g l=%g" id tenant
                seed p r l
          | exception Invalid_argument msg -> pr out "ERR %s" msg)
      | _ -> pr out "ERR malformed QUERY arguments")

let handle_run srv out =
  let queued = Array.of_list (List.rev srv.queue) in
  srv.queue <- [];
  if Array.length queued = 0 then pr out "DONE queries=0"
  else if srv.admission = Reject && Probe_broker.saturated srv.broker then
    (* Admission at the front door: a saturated broker would only
       degrade every probe, so refuse the batch outright and leave the
       shared capacity to coalesced/fresh traffic. *)
    Array.iter
      (fun q -> pr out "REJECTED id=%d tenant=%s saturated" q.id q.tenant)
      queued
  else begin
    let before = Probe_broker.stats srv.broker in
    let queries =
      Array.map
        (fun q ->
          Engine.query ~rng:(Rng.create q.seed)
            ~probe:(Probe_broker.client ~tenant:q.tenant ?quota:q.quota
                      srv.broker)
            ~instance:Synthetic.instance ~requirements:q.requirements srv.data)
        queued
    in
    let results = Engine.execute_many ?domains:srv.domains queries in
    Array.iteri
      (fun i result ->
        let q = queued.(i) in
        let report = result.Engine.report in
        let g = report.Operator.guarantees in
        let d = result.Engine.degradation in
        pr out
          "RESULT id=%d tenant=%s seed=%d answer=%d precision=%.4f \
           recall=%.4f laxity=%.4f met=%b probes=%d batches=%d failed=%d \
           degraded=%b cost=%.4f"
          q.id q.tenant q.seed report.Operator.answer_size
          g.Quality.precision g.Quality.recall g.Quality.max_laxity
          d.Engine.requirements_met
          result.Engine.counts.Cost_meter.probes
          result.Engine.counts.Cost_meter.batches d.Engine.failed_probes
          (Engine.degraded result) result.Engine.normalized_cost)
      results;
    let after = Probe_broker.stats srv.broker in
    pr out
      "DONE queries=%d charged=%d coalesced=%d fresh=%d rejected=%d \
       batches=%d"
      (Array.length results)
      (after.charged - before.charged)
      (after.coalesced - before.coalesced)
      (after.fresh_hits - before.fresh_hits)
      (after.rejected - before.rejected)
      (after.batches - before.batches)
  end

let help out =
  pr out
    "OK commands: QUERY [tenant=T] [seed=N] [p=] [r=] [l=] [quota=N] | RUN | \
     STATS | TENANTS | METRICS | HELP | QUIT"

(* One session over a channel pair; returns [`Quit] when the client
   asked to stop the server, [`Eof] when the stream just ended. *)
let serve srv inc out =
  let rec loop () =
    match input_line inc with
    | exception End_of_file -> `Eof
    | line -> (
        let tokens =
          String.split_on_char ' ' (String.trim line)
          |> List.filter (fun s -> s <> "")
        in
        match tokens with
        | [] -> loop ()
        | cmd :: args -> (
            match (String.uppercase_ascii cmd, args) with
            | "QUERY", args ->
                handle_query srv out args;
                loop ()
            | "RUN", [] ->
                handle_run srv out;
                loop ()
            | "STATS", [] ->
                print_stats out "STATS" (Probe_broker.stats srv.broker);
                loop ()
            | "TENANTS", [] ->
                List.iter
                  (fun (name, s) ->
                    print_stats out (Printf.sprintf "TENANT %s" name) s)
                  (Probe_broker.tenant_stats srv.broker);
                pr out "OK";
                loop ()
            | "METRICS", [] ->
                pr out "%s" (Metrics.to_json (Obs.snapshot srv.obs));
                loop ()
            | "HELP", _ ->
                help out;
                loop ()
            | "QUIT", [] ->
                pr out "BYE";
                `Quit
            | _ ->
                pr out "ERR unknown command %S (try HELP)" line;
                loop ()))
  in
  loop ()

let serve_socket srv path =
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind sock (Unix.ADDR_UNIX path);
  Unix.listen sock 8;
  Printf.eprintf "qaq-server: listening on %s\n%!" path;
  let rec accept_loop () =
    let client, _ = Unix.accept sock in
    let inc = Unix.in_channel_of_descr client in
    let out = Unix.out_channel_of_descr client in
    let verdict = try serve srv inc out with End_of_file -> `Eof in
    (try Unix.close client with Unix.Unix_error _ -> ());
    match verdict with `Quit -> () | `Eof -> accept_loop ()
  in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      try Unix.unlink path with Unix.Unix_error _ -> ())
    accept_loop

let admission_conv =
  let parse = function
    | "degrade" -> Ok Degrade
    | "reject" -> Ok Reject
    | s -> Error (`Msg (Printf.sprintf "unknown admission mode %S" s))
  in
  let print ppf m =
    Format.pp_print_string ppf
      (match m with Degrade -> "degrade" | Reject -> "reject")
  in
  Arg.conv (parse, print)

let run seed total f_y f_m max_laxity batch capacity freshness probe_ms
    admission domains socket =
  let cfg = Synthetic.config ~total ~f_y ~f_m ~max_laxity () in
  let data = Synthetic.generate (Rng.create seed) cfg in
  let obs = Obs.create () in
  let latency = probe_ms /. 1000.0 in
  let resolve objs =
    if latency > 0.0 then Unix.sleepf latency;
    Array.map (fun o -> Probe_driver.Resolved (Synthetic.probe o)) objs
  in
  let broker =
    Probe_broker.create ~obs ~freshness ?capacity ~batch_size:batch
      ~key:(fun (o : Synthetic.obj) -> o.Synthetic.id)
      resolve
  in
  let srv =
    {
      data;
      broker;
      obs;
      admission;
      domains;
      queue = [];
      next_id = 0;
      next_seed = seed + 1;
    }
  in
  match socket with
  | Some path -> serve_socket srv path
  | None ->
      Printf.eprintf
        "qaq-server: %d objects, batch %d, admission %s (HELP for commands)\n%!"
        total batch
        (match admission with Degrade -> "degrade" | Reject -> "reject");
      ignore (serve srv stdin stdout)

let cmd =
  let seed =
    let doc = "Dataset seed (the workload all queries share)." in
    Arg.(value & opt int 2004 & info [ "seed" ] ~doc)
  in
  let total =
    let doc = "Shared dataset size |T|." in
    Arg.(value & opt int 10000 & info [ "total" ] ~doc)
  in
  let f_y =
    let doc = "Fraction of YES objects." in
    Arg.(value & opt float 0.2 & info [ "fy" ] ~doc)
  in
  let f_m =
    let doc = "Fraction of MAYBE objects." in
    Arg.(value & opt float 0.2 & info [ "fm" ] ~doc)
  in
  let max_laxity =
    let doc = "Maximum input laxity L." in
    Arg.(value & opt float 100.0 & info [ "max-laxity" ] ~doc)
  in
  let batch =
    let doc =
      "Broker batch size B: backend probes dispatch B at a time, packed \
       across tenants."
    in
    Arg.(value & opt int 8 & info [ "batch"; "B" ] ~doc)
  in
  let capacity =
    let doc =
      "Shared probe capacity: admitted backend probes across the server's \
       lifetime.  Unlimited when absent."
    in
    Arg.(value & opt (some int) None & info [ "capacity" ] ~docv:"N" ~doc)
  in
  let freshness =
    let doc =
      "Freshness window in seconds: a probe completed this recently is a \
       free hit.  Default: forever (the dataset is immutable); 0 disables \
       sharing."
    in
    Arg.(value & opt float infinity & info [ "freshness" ] ~docv:"SECONDS" ~doc)
  in
  let probe_ms =
    let doc =
      "Simulated backend latency per probe batch, in milliseconds of real \
       wall clock — makes the concurrency saving observable."
    in
    Arg.(value & opt float 0.0 & info [ "probe-ms" ] ~docv:"MS" ~doc)
  in
  let admission =
    let doc =
      "What a saturated broker does to new queries: degrade (run them; \
       probes beyond capacity fail into guarantee-aware fallbacks) or \
       reject (refuse the batch outright)."
    in
    Arg.(value & opt admission_conv Degrade & info [ "admission" ] ~doc)
  in
  let domains =
    let doc =
      "Domains for RUN (default: one per queued query, capped at 16)."
    in
    Arg.(value & opt (some int) None & info [ "domains" ] ~docv:"N" ~doc)
  in
  let socket =
    let doc = "Listen on a Unix domain socket instead of stdin/stdout." in
    Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)
  in
  let doc = "Serve concurrent quality-aware queries from shared probe capacity" in
  Cmd.v
    (Cmd.info "qaq-server" ~version:"1.0.0" ~doc)
    Term.(
      const run $ seed $ total $ f_y $ f_m $ max_laxity $ batch $ capacity
      $ freshness $ probe_ms $ admission $ domains $ socket)

let () = exit (Cmd.eval cmd)
