(* qaq — command-line front end to the QaQ framework.

   Subcommands:
     solve    solve the §4.2.2 optimization problem for given inputs
     trial    run the QaQ operator on a synthetic workload (or a saved one)
     dataset  generate a workload (synthetic or intervals) and save it as CSV
     convert  convert an interval-record CSV to a columnar chunk file (QCOL)
     query    run a quality-aware selection over an interval dataset
     watch    live per-tenant SLO dashboard for a running qaq-server
     tables   regenerate the paper's tables (§5.1 + §5.2)
     regions  print the decision-region diagram of Figs. 2-3 *)

open Cmdliner

(* ---- shared options ---------------------------------------------- *)

let seed =
  let doc = "PRNG seed (runs are deterministic per seed)." in
  Arg.(value & opt int 2004 & info [ "seed" ] ~doc)

let total =
  let doc = "Input size |T|." in
  Arg.(value & opt int 10000 & info [ "total" ] ~doc)

let f_y =
  let doc = "Fraction of YES objects." in
  Arg.(value & opt float 0.2 & info [ "fy" ] ~doc)

let f_m =
  let doc = "Fraction of MAYBE objects." in
  Arg.(value & opt float 0.2 & info [ "fm" ] ~doc)

let max_laxity =
  let doc = "Maximum input laxity L." in
  Arg.(value & opt float 100.0 & info [ "max-laxity" ] ~doc)

let p_q =
  let doc = "Precision requirement p_q." in
  Arg.(value & opt float 0.9 & info [ "precision"; "p" ] ~doc)

let r_q =
  let doc = "Recall requirement r_q." in
  Arg.(value & opt float 0.5 & info [ "recall"; "r" ] ~doc)

let l_q =
  let doc = "Laxity requirement l_q^max." in
  Arg.(value & opt float 50.0 & info [ "laxity"; "l" ] ~doc)

let batch =
  let doc =
    "Probe batch size B: probes are dispatched B at a time and priced at \
     the amortized c_p + c_b/B."
  in
  Arg.(value & opt int 1 & info [ "batch"; "B" ] ~doc)

let c_b =
  let doc = "Per-batch probe setup cost c_b (paper model: 0)." in
  Arg.(value & opt float 0.0 & info [ "cb" ] ~doc)

let domains =
  let doc =
    "Worker domains for the scan pipeline (default: the QAQ_DOMAINS \
     environment variable, else 1).  Classification fans out across \
     domains while every decision stays sequential, so results are \
     identical for any value."
  in
  Arg.(value & opt (some int) None & info [ "domains" ] ~docv:"N" ~doc)

let budget_opt =
  let doc =
    "Cap the run's total metered spend at $(docv) cost units (planning \
     included).  The engine then plans for the best reachable recall \
     within the budget (the dual problem), re-solves mid-scan against \
     whatever remains on the meter, and stops the scan before the spend \
     can exceed the cap.  Precision stays a hard constraint; the budget \
     summary is printed after the run."
  in
  Arg.(value & opt (some float) None & info [ "budget" ] ~docv:"COST" ~doc)

let deadline_ms_opt =
  let doc =
    "Stop the scan after $(docv) milliseconds of wall clock.  Unlike \
     --budget this is inherently non-deterministic; prefer --budget \
     wherever reproducibility matters.  Composes with --budget."
  in
  Arg.(
    value & opt (some float) None & info [ "deadline-ms" ] ~docv:"MS" ~doc)

let deadline_of_ms = Option.map (fun ms -> ms /. 1000.0)

let print_budget_summary result =
  match result.Engine.budget with
  | None -> ()
  | Some b ->
      let money v =
        if Float.is_finite v then Printf.sprintf "%.1f" v else "inf"
      in
      Format.printf
        "budget: allotted %s, spent %.1f, remaining %s; target recall \
         %.3f%s; %d budget replan(s)%s@."
        (money b.Engine.allotted) b.Engine.spent
        (money b.Engine.remaining)
        b.Engine.target_recall
        (if b.Engine.budget_limited then " (budget-limited)" else "")
        b.Engine.budget_replans
        (if b.Engine.stopped_early then "; scan stopped early" else "")

let cost_model c_b =
  let paper = Cost_model.paper in
  Cost_model.make ~c_r:paper.Cost_model.c_r ~c_p:paper.Cost_model.c_p
    ~c_wi:paper.Cost_model.c_wi ~c_wp:paper.Cost_model.c_wp ~c_b ()

let setting total f_y f_m max_laxity p_q r_q l_q : Exp_config.setting =
  { label = "cli"; total; f_y; f_m; max_laxity; p_q; r_q; l_q }

(* ---- solve -------------------------------------------------------- *)

let solve_run total f_y f_m max_laxity p_q r_q l_q batch c_b =
  let s = setting total f_y f_m max_laxity p_q r_q l_q in
  let cost = cost_model c_b in
  let e = Exp_runner.solve_setting ~cost ~batch s in
  Format.printf "problem: |T|=%d f_y=%g f_m=%g L=%g B=%d %a  %a@.@." s.total
    s.f_y s.f_m s.max_laxity batch Cost_model.pp cost Quality.pp_requirements
    (Exp_config.requirements s);
  let problem =
    Solver.problem ~total:s.total
      ~spec:
        (Region_model.uniform_spec ~f_y:s.f_y ~f_m:s.f_m
           ~max_laxity:s.max_laxity)
      ~requirements:(Exp_config.requirements s) ~cost ~batch ()
  in
  print_string (Solver.explain problem e)

let solve_cmd =
  let doc = "Solve the optimization problem of paper section 4.2.2." in
  Cmd.v
    (Cmd.info "solve" ~doc)
    Term.(
      const solve_run $ total $ f_y $ f_m $ max_laxity $ p_q $ r_q $ l_q
      $ batch $ c_b)

(* ---- trial -------------------------------------------------------- *)

let policy_conv =
  let parse = function
    | "qaq" -> Ok Exp_runner.Qaq
    | "stingy" -> Ok Exp_runner.Stingy
    | "greedy" -> Ok Exp_runner.Greedy
    | s -> Error (`Msg (Printf.sprintf "unknown policy %S" s))
  in
  let print ppf k = Format.pp_print_string ppf (Exp_runner.policy_name k) in
  Arg.conv (parse, print)

let policy =
  let doc = "Policy: qaq, stingy or greedy." in
  Arg.(value & opt policy_conv Exp_runner.Qaq & info [ "policy" ] ~doc)

let repetitions =
  let doc = "Independent datasets to average over." in
  Arg.(value & opt int 5 & info [ "repetitions" ] ~doc)

let data_file =
  let doc =
    "Run on a workload previously saved with the dataset command instead of \
     generating one (repetitions are then ignored)."
  in
  Arg.(value & opt (some file) None & info [ "data" ] ~doc)

let trace_flag =
  let doc =
    "Print one structured trace line per run event (reads, decisions, probe \
     batches, early termination) to standard error."
  in
  Arg.(value & flag & info [ "trace" ] ~doc)

let metrics_file =
  let doc =
    "After the trial, write the metrics registry (reads, probes, batches, \
     cache and span counters) as a JSON object to $(docv)."
  in
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)

let profile_file =
  let doc =
    "Run one profiled query through the engine (single dataset; repetitions \
     are ignored), print the per-run profile — cost counts reconciled \
     against the qaq.* counters, phase timers, histogram quantiles, and a \
     quality audit of achieved precision/recall against the requested \
     bounds using the dataset's ground truth — and write it as JSON to \
     $(docv).  Exits non-zero if the audit fails.  Guarantee enforcement \
     stays on regardless of --policy."
  in
  Arg.(value & opt (some string) None & info [ "profile" ] ~docv:"FILE" ~doc)

let chrome_trace_file =
  let doc =
    "Record the run as a Chrome trace (catapult JSON) in $(docv); open it \
     in chrome://tracing or Perfetto.  With --domains N the trace shows one \
     timeline lane per pool lane.  Runs the same profiled engine path as \
     --profile."
  in
  Arg.(
    value & opt (some string) None & info [ "chrome-trace" ] ~docv:"FILE" ~doc)

let fault_rate =
  let doc =
    "Inject permanent probe failures at rate $(docv) (plus transient \
     failures at half that rate, retried up to 2 times).  The run \
     completes anyway: failed objects degrade to guarantee-aware write \
     decisions and the degradation summary is printed.  Uses the same \
     profiled engine path as --profile, and an audit miss that is \
     explained by flagged degradation does not fail the command."
  in
  Arg.(value & opt float 0.0 & info [ "fault-rate" ] ~docv:"RATE" ~doc)

let tiers_opt =
  let doc =
    "Probe through a tiered cascade instead of the single oracle \
     driver.  $(docv) is a semicolon-separated tier list, e.g. \
     \"proxy:cp=0.1,cb=1,B=32,shrink=0.8;oracle:cp=1,cb=5,B=8\".  Each \
     tier with a shrink=POWER key is a cheap proxy that narrows \
     objects instead of resolving them; the final tier (no shrink key) \
     is the oracle.  The optimizer prices probes at the cheapest \
     escalation strategy over the tiers and per-tier counters are \
     reported after the run.  Uses the profiled engine path; combines \
     with --fault-rate, in which case every tier draws an independent \
     fault stream and a dead proxy fails over to the tier below."
  in
  Arg.(value & opt (some string) None & info [ "tiers" ] ~docv:"SPEC" ~doc)

let fault_seed =
  let doc =
    "Seed of the fault injector's own rng stream (independent of --seed: \
     injection never perturbs the query's decisions).  Runs are \
     deterministic per (seed, fault-seed) pair."
  in
  let env = Cmd.Env.info "QAQ_FAULT_SEED" ~doc:"Default for $(opt)." in
  Arg.(value & opt int 1337 & info [ "fault-seed" ] ~env ~doc)

let profiled_trial ~rng ~(s : Exp_config.setting) ~cost ~batch ~policy ~domains
    ~trace ~metrics_file ~profile_file ~chrome_file ~fault_rate ~fault_seed
    ~tiers ~budget ~deadline data =
  let recorder = Option.map (fun _ -> Chrome_trace.create ()) chrome_file in
  let sink =
    let fmt =
      if trace then Trace.formatter Format.err_formatter else Trace.null
    in
    match recorder with
    | Some r -> Trace.tee (Chrome_trace.sink r) fmt
    | None -> fmt
  in
  let obs = Obs.create ~trace:sink () in
  let lanes = Domain_pool.resolve ?domains () in
  Option.iter (fun r -> Chrome_trace.declare_lanes r lanes) recorder;
  let on_task =
    Option.map
      (fun r ~lane ~start ~finish -> Chrome_trace.on_task r ~lane ~start ~finish)
      recorder
  in
  let planning =
    match policy with
    | Exp_runner.Qaq -> Engine.default_planning
    | Exp_runner.Stingy -> Engine.Fixed Policy.stingy_params
    | Exp_runner.Greedy -> Engine.Fixed Policy.greedy_params
    | Exp_runner.Fixed params -> Engine.Fixed params
  in
  let faults =
    if fault_rate > 0.0 then
      Some
        (Fault_plan.make ~seed:fault_seed ~permanent_rate:fault_rate
           ~transient_rate:(fault_rate /. 2.0) ~max_retries:2 ())
    else None
  in
  let cascade =
    Option.map
      (fun specs ->
        let c, _sources =
          Tiered.of_functions ~obs ?faults ~max_retries:2 ~specs
            ~narrow:(fun ~power o -> Synthetic.shrink ~power o)
            ~resolve:Synthetic.probe ()
        in
        c)
      tiers
  in
  let probe =
    match cascade with
    | Some _ -> None
    | None ->
        Some
          (match faults with
          | Some faults ->
              let source =
                Probe_source.create ~obs ~max_retries:2 ~faults Synthetic.probe
              in
              Probe_source.driver ~obs ~batch_size:batch source
          | None -> Probe_driver.of_scalar ~obs ~batch_size:batch Synthetic.probe)
  in
  let result =
    Engine.execute ~rng ~planning ~cost ~batch ~max_laxity:s.max_laxity
      ?budget ?deadline ?domains ~obs ?on_task
      ~profile:
        (Engine.profiling
           ~label:(Exp_runner.policy_name policy)
           ~oracle:Synthetic.in_exact ())
      ~instance:Synthetic.instance ?probe ?cascade
      ~requirements:(Exp_config.requirements s)
      data
  in
  Format.printf "%s (profiled): W/|T| = %.3f (%d probes in %d batches)@.@."
    (Exp_runner.policy_name policy)
    result.Engine.normalized_cost result.counts.Cost_meter.probes
    result.counts.Cost_meter.batches;
  print_budget_summary result;
  Option.iter
    (fun c ->
      Format.printf "cascade (entered at tier %d):@." (Cascade.start c);
      Array.iter
        (fun (st : Cascade.stats) ->
          Format.printf
            "  tier %-12s %d probe(s), %d shrink(s), %d failure(s), %d \
             batch(es), %d failover(s)@."
            st.Cascade.st_name st.st_probes st.st_shrinks st.st_failures
            st.st_batches st.st_failovers)
        (Cascade.stats c))
    cascade;
  let profile = Option.get result.Engine.profile in
  Profile.print profile;
  (let d = result.Engine.degradation in
   if d.Engine.failed_probes > 0 then
     Format.printf
       "degradation: %d probe(s) failed permanently (%d attempts, wasted \
        cost %.0f); %d forward fallback(s), %d ignore fallback(s), %d \
        forced; post-degradation guarantees %s the requirements@."
       d.Engine.failed_probes d.Engine.failed_attempts d.Engine.wasted_cost
       d.Engine.degraded_forwards d.Engine.degraded_ignores
       d.Engine.forced_actions
       (if d.Engine.requirements_met then "still meet" else "MISS"));
  (match profile_file with
  | Some path ->
      let oc = open_out path in
      output_string oc (Profile.to_json profile);
      close_out oc;
      Format.printf "profile written to %s@." path
  | None -> ());
  (match (recorder, chrome_file) with
  | Some r, Some path ->
      Chrome_trace.write r path;
      Format.printf "chrome trace (%d events) written to %s@." (Chrome_trace.events r) path
  | _ -> ());
  (match metrics_file with
  | Some path ->
      let oc = open_out path in
      output_string oc (Metrics.to_json (Obs.snapshot obs));
      close_out oc;
      Format.printf "metrics written to %s@." path
  | None -> ());
  if not (Profile.passed profile) then
    if Engine.degraded result && profile.Profile.reconcile_error = None then
      Format.eprintf
        "profile audit missed its bounds under flagged degradation (fault \
         injection active) — not failing the command@."
    else begin
      Format.eprintf "profile audit FAILED@.";
      exit 1
    end

let trial_run seed total f_y f_m max_laxity p_q r_q l_q policy repetitions
    data_file batch c_b domains trace metrics_file profile_file chrome_file
    fault_rate fault_seed tiers_spec budget deadline_ms =
  let s = setting total f_y f_m max_laxity p_q r_q l_q in
  let cost = cost_model c_b in
  let rng = Rng.create seed in
  let deadline = deadline_of_ms deadline_ms in
  if fault_rate < 0.0 || fault_rate > 1.0 then begin
    Format.eprintf "--fault-rate must lie in [0, 1]@.";
    exit 2
  end;
  let tiers =
    match tiers_spec with
    | None -> None
    | Some spec -> (
        match Probe_tier.of_string spec with
        | specs -> Some specs
        | exception Invalid_argument msg ->
            Format.eprintf "--tiers: %s@." msg;
            exit 2)
  in
  (* A budgeted or deadlined trial goes through the profiled engine path:
     the budget is an engine contract (dual planning, mid-scan re-solves,
     the stop closure), not something the bare operator loop offers. *)
  if
    profile_file <> None || chrome_file <> None || fault_rate > 0.0
    || tiers <> None || budget <> None || deadline <> None
  then begin
    let data, s =
      match data_file with
      | Some path ->
          let data = Dataset_io.read_synthetic path in
          (data, { s with total = Array.length data })
      | None -> (Synthetic.generate rng (Exp_config.workload s), s)
    in
    profiled_trial ~rng ~s ~cost ~batch ~policy ~domains ~trace ~metrics_file
      ~profile_file ~chrome_file ~fault_rate ~fault_seed ~tiers ~budget
      ~deadline data
  end
  else
  let obs =
    if trace || metrics_file <> None then
      let sink =
        if trace then Trace.formatter Format.err_formatter else Trace.null
      in
      Some (Obs.create ~trace:sink ())
    else None
  in
  (match data_file with
  | Some path ->
      let data = Dataset_io.read_synthetic path in
      let s = { s with total = Array.length data } in
      Format.printf "dataset: %s (%d objects)  %a@." path (Array.length data)
        Quality.pp_requirements (Exp_config.requirements s);
      let o =
        Exp_runner.trial_run ~rng ~cost ~batch ?obs ?domains ~setting:s ~data
          policy
      in
      Format.printf
        "%s: W/|T| = %.3f (%d probes in %d batches); guarantees %a; actual \
         precision %.3f, recall %.3f@."
        (Exp_runner.policy_name policy)
        o.normalized_cost o.counts.probes o.counts.batches
        Quality.pp_guarantees o.guarantees o.actual_precision o.actual_recall
  | None ->
      let results =
        Exp_runner.trial_series ~rng ~repetitions ~cost ~batch ?obs ?domains s
          [ policy ]
      in
      Format.printf "setting: |T|=%d f_y=%g f_m=%g L=%g  %a@." s.total s.f_y
        s.f_m s.max_laxity Quality.pp_requirements (Exp_config.requirements s);
      List.iter
        (fun (kind, (a : Exp_runner.aggregate)) ->
          Format.printf
            "%s: W/|T| = %.3f +/- %.3f over %d runs; actual precision %.3f, \
             recall %.3f; worst violations p=%.3g r=%.3g@."
            (Exp_runner.policy_name kind)
            a.mean_cost a.ci95 a.repetitions a.mean_precision a.mean_recall
            a.worst_precision_violation a.worst_recall_violation)
        results);
  match (obs, metrics_file) with
  | Some o, Some path ->
      let oc = open_out path in
      output_string oc (Metrics.to_json (Obs.snapshot o));
      output_char oc '\n';
      close_out oc;
      Format.printf "metrics written to %s@." path
  | _ -> ()

let trial_cmd =
  let doc = "Run the QaQ operator on the synthetic workload of section 5.2." in
  Cmd.v
    (Cmd.info "trial" ~doc)
    Term.(
      const trial_run $ seed $ total $ f_y $ f_m $ max_laxity $ p_q $ r_q
      $ l_q $ policy $ repetitions $ data_file $ batch $ c_b $ domains
      $ trace_flag $ metrics_file $ profile_file $ chrome_trace_file
      $ fault_rate $ fault_seed $ tiers_opt $ budget_opt $ deadline_ms_opt)

(* ---- dataset ------------------------------------------------------ *)

let out_file =
  let doc = "Output path." in
  Arg.(required & opt (some string) None & info [ "out"; "o" ] ~doc)

let model_conv =
  let parse = function
    | "synthetic" -> Ok `Synthetic
    | "intervals" -> Ok `Intervals
    | s -> Error (`Msg (Printf.sprintf "unknown model %S" s))
  in
  let print ppf m =
    Format.pp_print_string ppf
      (match m with `Synthetic -> "synthetic" | `Intervals -> "intervals")
  in
  Arg.conv (parse, print)

let model =
  let doc =
    "Workload model: synthetic (the section 5.2 generator, consumed by \
     trial) or intervals (interval-belief records over hidden scalar \
     truths uniform in [0, max-laxity] — the input of convert and query)."
  in
  Arg.(value & opt model_conv `Synthetic & info [ "model" ] ~doc)

let max_width =
  let doc = "Maximum belief-interval width (intervals model only)." in
  Arg.(value & opt float 10.0 & info [ "max-width" ] ~doc)

let dataset_run seed total f_y f_m max_laxity model max_width out =
  match model with
  | `Synthetic ->
      let cfg = Synthetic.config ~total ~f_y ~f_m ~max_laxity () in
      let data = Synthetic.generate (Rng.create seed) cfg in
      Dataset_io.write_synthetic out data;
      Format.printf "wrote %d objects to %s (exact set: %d)@." total out
        (Synthetic.exact_size data)
  | `Intervals ->
      let data =
        Interval_data.uniform_intervals (Rng.create seed) ~n:total
          ~value_range:(Interval.make 0.0 max_laxity) ~max_width
      in
      Dataset_io.write_records out data;
      Format.printf
        "wrote %d interval records to %s (truths in [0, %g], width <= %g)@."
        total out max_laxity max_width

let dataset_cmd =
  let doc = "Generate a workload and save it as CSV." in
  Cmd.v
    (Cmd.info "dataset" ~doc)
    Term.(
      const dataset_run $ seed $ total $ f_y $ f_m $ max_laxity $ model
      $ max_width $ out_file)

(* ---- convert ------------------------------------------------------ *)

let csv_in =
  let doc = "Input interval-record CSV (see dataset --model intervals)." in
  Arg.(required & pos 0 (some file) None & info [] ~docv:"CSV" ~doc)

let chunk_size =
  let doc = "Rows per columnar chunk (also the zone-hull granularity)." in
  Arg.(value & opt int 64 & info [ "chunk-size" ] ~doc)

let convert_run input out chunk_size =
  let records = Dataset_io.read_records input in
  let store = Interval_data.to_store ~chunk_size records in
  Dataset_io.save_columnar out store;
  Format.printf "wrote %d records in %d chunks of <= %d rows to %s@."
    (Column_store.length store)
    (Column_store.chunk_count store)
    (Column_store.chunk_size store)
    out

let convert_cmd =
  let doc =
    "Convert an interval-record CSV to a binary columnar chunk file (QCOL) \
     with per-chunk zone hulls."
  in
  Cmd.v
    (Cmd.info "convert" ~doc)
    Term.(const convert_run $ csv_in $ out_file $ chunk_size)

(* ---- query -------------------------------------------------------- *)

let layout_conv =
  let parse = function
    | "row" -> Ok Engine.Row
    | "columnar" -> Ok Engine.Columnar
    | s ->
        Error (`Msg (Printf.sprintf "unknown layout %S (row or columnar)" s))
  in
  let print ppf l =
    Format.pp_print_string ppf
      (match l with Engine.Row -> "row" | Engine.Columnar -> "columnar")
  in
  Arg.conv (parse, print)

let layout_opt =
  let doc =
    "Storage layout for the scan: row (the reference object-at-a-time \
     path) or columnar (vectorized classification over column chunks).  \
     Both return bit-for-bit identical results."
  in
  let env = Cmd.Env.info Engine.layout_env ~doc:"Default for $(opt)." in
  Arg.(value & opt (some layout_conv) None & info [ "layout" ] ~env ~doc)

let prune_flag =
  let doc =
    "With the columnar layout, skip chunks whose zone hull proves every \
     row NO; a skipped chunk is never fetched (on a QCOL file, never \
     decoded)."
  in
  Arg.(value & flag & info [ "prune" ] ~doc)

let ge_opt =
  let doc = "Conjunct: value >= $(docv)." in
  Arg.(value & opt_all float [] & info [ "ge" ] ~docv:"X" ~doc)

let le_opt =
  let doc = "Conjunct: value <= $(docv)." in
  Arg.(value & opt_all float [] & info [ "le" ] ~docv:"X" ~doc)

let between_opt =
  let doc =
    "Conjunct: LO <= value <= HI.  Repeatable; all conjuncts are AND-ed."
  in
  Arg.(
    value
    & opt_all (pair ~sep:',' float float) []
    & info [ "between" ] ~docv:"LO,HI" ~doc)

let query_data =
  let doc =
    "Dataset to query: an interval-record CSV or a .qcol columnar chunk \
     file written by convert."
  in
  Arg.(required & pos 0 (some file) None & info [] ~docv:"DATA" ~doc)

let predicate_of ges les betweens =
  let conjuncts =
    List.map Predicate.ge ges
    @ List.map Predicate.le les
    @ List.map (fun (lo, hi) -> Predicate.between lo hi) betweens
  in
  match conjuncts with
  | [] -> None
  | p :: rest -> Some (List.fold_left Predicate.( &&& ) p rest)

let query_run seed data_path ges les betweens layout prune p_q r_q l_q batch
    c_b domains metrics_file budget deadline_ms =
  let deadline = deadline_of_ms deadline_ms in
  let pred =
    match
      try predicate_of ges les betweens
      with Invalid_argument msg ->
        Format.eprintf "bad predicate: %s@." msg;
        exit 2
    with
    | Some p -> p
    | None ->
        Format.eprintf
          "query needs at least one of --ge, --le or --between@.";
        exit 2
  in
  let layout = Engine.resolve_layout ?layout () in
  let requirements =
    Quality.requirements ~precision:p_q ~recall:r_q ~laxity:l_q
  in
  let cost = cost_model c_b in
  let rng = Rng.create seed in
  let obs = if metrics_file <> None then Some (Obs.create ()) else None in
  let columnar_of store =
    match layout with
    | Engine.Row -> None
    | Engine.Columnar ->
        Some { Engine.store; of_row = Interval_data.of_row; pred; prune }
  in
  let run data columnar =
    let probe =
      Probe_driver.of_scalar ?obs ~batch_size:batch Interval_data.probe
    in
    Engine.execute ~rng ~cost ~batch ?budget ?deadline ?domains ?obs
      ?columnar
      ~instance:(Interval_data.instance pred)
      ~probe ~requirements data
  in
  let result, total =
    if Filename.check_suffix data_path ".qcol" then
      Dataset_io.with_columnar ?obs data_path (fun store ->
          let data = Interval_data.of_store store in
          (run data (columnar_of store), Array.length data))
    else
      let data = Dataset_io.read_records data_path in
      let columnar =
        columnar_of (Interval_data.to_store ~chunk_size:64 data)
      in
      (run data columnar, Array.length data)
  in
  let report = result.Engine.report in
  let precise =
    List.length
      (List.filter (fun e -> e.Operator.precise) report.Operator.answer)
  in
  Format.printf "query: %s over %s (%d records), layout %s%s@."
    (Predicate.to_string pred) data_path total
    (match layout with Engine.Row -> "row" | Engine.Columnar -> "columnar")
    (if prune && layout = Engine.Columnar then " with pruning" else "");
  Format.printf
    "answer: %d object(s) (%d precise, %d imprecise); guarantees %a for \
     required %a@."
    report.Operator.answer_size precise
    (report.Operator.answer_size - precise)
    Quality.pp_guarantees report.Operator.guarantees Quality.pp_requirements
    requirements;
  Format.printf "cost: W/|T| = %.3f (%d reads, %d probes in %d batches)@."
    result.Engine.normalized_cost result.Engine.counts.Cost_meter.reads
    result.Engine.counts.Cost_meter.probes
    result.Engine.counts.Cost_meter.batches;
  print_budget_summary result;
  match (obs, metrics_file) with
  | Some o, Some path ->
      let oc = open_out path in
      output_string oc (Metrics.to_json (Obs.snapshot o));
      output_char oc '\n';
      close_out oc;
      Format.printf "metrics written to %s@." path
  | _ -> ()

let query_cmd =
  let doc =
    "Run a quality-aware selection over an interval dataset (CSV or QCOL)."
  in
  Cmd.v
    (Cmd.info "query" ~doc)
    Term.(
      const query_run $ seed $ query_data $ ge_opt $ le_opt $ between_opt
      $ layout_opt $ prune_flag $ p_q $ r_q $ l_q $ batch $ c_b $ domains
      $ metrics_file $ budget_opt $ deadline_ms_opt)

(* ---- tables ------------------------------------------------------- *)

let sweep_arg =
  let doc =
    "Sweep to run: laxity, precision, recall, selectivity, uncertainty, or \
     'all'."
  in
  Arg.(value & pos 0 string "all" & info [] ~docv:"SWEEP" ~doc)

let tables_run seed sweep_id repetitions =
  let sweeps =
    if String.equal sweep_id "all" then Exp_config.all_sweeps
    else
      match Exp_config.find_sweep sweep_id with
      | Some s -> [ s ]
      | None ->
          Printf.eprintf "unknown sweep %S\n" sweep_id;
          exit 2
  in
  List.iter
    (fun sweep ->
      Text_table.print (Exp_report.opt_table sweep);
      print_newline ();
      let rng = Rng.create seed in
      Text_table.print (Exp_report.trial_table ~rng ~repetitions sweep);
      print_newline ())
    sweeps

let tables_cmd =
  let doc = "Regenerate the paper's tables (sections 5.1 and 5.2)." in
  Cmd.v
    (Cmd.info "tables" ~doc)
    Term.(const tables_run $ seed $ sweep_arg $ repetitions)

(* ---- regions ------------------------------------------------------ *)

let regions_run p_q r_q l_q max_laxity f_y f_m total =
  let s = setting total f_y f_m max_laxity p_q r_q l_q in
  let e = Exp_runner.solve_setting s in
  let params = e.Solver.params in
  Format.printf "decision regions (Figs. 2-3) for %a, optimal %a@."
    Quality.pp_requirements (Exp_config.requirements s) Policy.pp_params params;
  (* s on the x axis (0..1), laxity on the y axis (0..L), top-down. *)
  let rows = 16 and cols = 41 in
  Format.printf "  l(o)@.";
  for row = rows - 1 downto 0 do
    let laxity = (float_of_int row +. 0.5) /. float_of_int rows *. max_laxity in
    Format.printf "%6.1f |" laxity;
    for col = 0 to cols - 1 do
      let success = float_of_int col /. float_of_int (cols - 1) in
      let region =
        Policy.region_of ~params ~laxity_bound:l_q ~verdict:Tvl.Maybe ~laxity
          ~success
      in
      Format.printf "%d" region
    done;
    let yes_region =
      Policy.region_of ~params ~laxity_bound:l_q ~verdict:Tvl.Yes ~laxity
        ~success:1.0
    in
    Format.printf "| YES:%d@." yes_region
  done;
  Format.printf "        %s@." (String.make cols '-');
  Format.printf "        s(o) = 0 %s 1@." (String.make (cols - 18) ' ');
  Format.printf
    "regions: 1 NO-discard, 2 ignore, 3 probe (l>l_q), 4 forward/ignore, \
     5 probe (l<=l_q), 6 YES probe/ignore, 7 YES forward@."

let regions_cmd =
  let doc = "Show the optimal decision regions on the (s, l) plane." in
  Cmd.v
    (Cmd.info "regions" ~doc)
    Term.(const regions_run $ p_q $ r_q $ l_q $ max_laxity $ f_y $ f_m $ total)

(* ---- watch: live SLO dashboard over a qaq-server socket ----------- *)

(* Speak the qaq-server line protocol (HEALTH + SLO) over its Unix
   socket and render the rolling per-tenant numbers as a dashboard,
   refreshed in place.  Read-only: watching never perturbs the server
   beyond answering the two verbs. *)

let kvs_of_tokens tokens =
  List.filter_map
    (fun tok ->
      match String.index_opt tok '=' with
      | Some i ->
          Some
            (String.sub tok 0 i,
             String.sub tok (i + 1) (String.length tok - i - 1))
      | None -> None)
    tokens

let watch_fetch path =
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect sock (Unix.ADDR_UNIX path);
      let inc = Unix.in_channel_of_descr sock in
      let out = Unix.out_channel_of_descr sock in
      output_string out "HEALTH\nSLO\n";
      flush out;
      let health =
        match String.split_on_char ' ' (input_line inc) with
        | "HEALTH" :: rest -> kvs_of_tokens rest
        | _ -> []
      in
      let rec slo_lines acc =
        match input_line inc with
        | "OK" -> List.rev acc
        | line -> (
            match String.split_on_char ' ' line with
            | "SLO" :: rest -> slo_lines (kvs_of_tokens rest :: acc)
            | _ -> slo_lines acc)
        | exception End_of_file -> List.rev acc
      in
      (health, slo_lines []))

let watch_render (health, tenants) =
  let get kvs k = Option.value (List.assoc_opt k kvs) ~default:"-" in
  let ms kvs k =
    match float_of_string_opt (get kvs k) with
    | Some v when Float.is_finite v -> Printf.sprintf "%.1f" (v *. 1000.0)
    | _ -> "-"
  in
  let row label kvs =
    [
      label; get kvs "requests"; get kvs "rate"; ms kvs "p50"; ms kvs "p99";
      get kvs "probe_rate"; get kvs "degraded"; get kvs "rejections";
      get kvs "shortfalls";
    ]
  in
  let table =
    Text_table.create
      ~title:(Printf.sprintf "live SLO (window %ss)" (get health "window"))
      ~header:
        [
          "tenant"; "req"; "req/s"; "p50 ms"; "p99 ms"; "probe/s"; "degr";
          "rej"; "short";
        ]
  in
  List.iter
    (fun kvs -> Text_table.add_row table (row (get kvs "tenant") kvs))
    tenants;
  Text_table.add_row table (row "(all)" health);
  print_string (Text_table.render table);
  Printf.printf "recorder: %s events, %s dumps | breaker: %s\n%!"
    (get health "recorded") (get health "dumps") (get health "breaker")

let watch_run socket interval count =
  if count < 0 then (
    Printf.eprintf "watch: --count must be >= 0\n";
    exit 2);
  let rec loop i =
    if count = 0 || i < count then begin
      (match watch_fetch socket with
      | snapshot ->
          (* Refresh in place unless this is a one-shot. *)
          if count <> 1 then print_string "\027[2J\027[H";
          watch_render snapshot
      | exception Unix.Unix_error (e, _, _) ->
          Printf.eprintf "watch: %s: %s\n%!" socket (Unix.error_message e);
          exit 1);
      if count = 0 || i + 1 < count then Unix.sleepf interval;
      loop (i + 1)
    end
  in
  loop 0

let watch_cmd =
  let socket =
    let doc = "The qaq-server Unix domain socket to watch." in
    Arg.(
      required
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH" ~doc)
  in
  let interval =
    let doc = "Seconds between refreshes." in
    Arg.(value & opt float 2.0 & info [ "interval"; "i" ] ~docv:"SECONDS" ~doc)
  in
  let count =
    let doc = "Number of refreshes (0 = until interrupted)." in
    Arg.(value & opt int 0 & info [ "count"; "n" ] ~docv:"N" ~doc)
  in
  let doc = "Watch a running qaq-server's rolling per-tenant SLOs live." in
  Cmd.v (Cmd.info "watch" ~doc) Term.(const watch_run $ socket $ interval $ count)

(* ---- main --------------------------------------------------------- *)

let () =
  let doc = "Approximate selection queries over imprecise data (ICDE 2004)" in
  let info = Cmd.info "qaq" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            solve_cmd; trial_cmd; dataset_cmd; convert_cmd; query_cmd;
            tables_cmd; regions_cmd; watch_cmd;
          ]))
