(* Benchmark harness: regenerates every table of the paper's §5
   (paper-vs-measured), runs the ablation studies from DESIGN.md §5, and
   finishes with Bechamel micro-benchmarks (one Test.make per paper
   table, plus core-operation benches).

   Usage:
     dune exec bench/main.exe                 # everything
     dune exec bench/main.exe -- tables       # only reproduction tables
     dune exec bench/main.exe -- ablations    # only ablations
     dune exec bench/main.exe -- batch        # only the batch-size sweep
     dune exec bench/main.exe -- micro        # only Bechamel benches
     dune exec bench/main.exe -- metrics [F]  # instrumented engine runs,
                                              # metrics JSON to F
                                              # (default BENCH_metrics.json)
     dune exec bench/main.exe -- scaling [F]  # multicore scan sweep over
                                              # domains 1/2/4/8, JSON to F
                                              # (default BENCH_scaling.json)
     dune exec bench/main.exe -- profile [F] [T]
                                              # profiled engine runs with
                                              # quality audit, JSON to F
                                              # (default BENCH_profile.json),
                                              # sample Chrome trace to T
                                              # (default BENCH_trace.json);
                                              # exits 1 on audit failure
     dune exec bench/main.exe -- faults [F]   # degradation sweep over probe
                                              # failure rates 0/1%/5%/20%,
                                              # JSON to F
                                              # (default BENCH_faults.json);
                                              # exits 1 on any violated
                                              # degradation invariant
     dune exec bench/main.exe -- columnar [F] # row vs columnar scan
                                              # throughput (never-probe
                                              # workload, domains 1/4/8),
                                              # JSON to F
                                              # (default BENCH_columnar.json);
                                              # exits 1 if the layouts
                                              # disagree or columnar is
                                              # slower than row at domains=1

   Setting QAQ_DOMAINS=N runs the trial tables (and any engine work that
   does not pin a domain count) over an N-lane pool; results are
   bit-for-bit independent of it.  QAQ_FAULT_SEED seeds the faults
   sweep's fault plan (default 1337); every run is deterministic per
   seed. *)

let section title =
  Printf.printf "\n%s\n%s\n\n" title (String.make (String.length title) '=')

(* ------------------------------------------------------------------ *)
(* Paper tables (T1–T10)                                               *)
(* ------------------------------------------------------------------ *)

let reproduction_tables () =
  section "Reproduction: section 5.1 optimal problem solutions (T1-T5)";
  List.iter
    (fun sweep ->
      Text_table.print (Exp_report.opt_table sweep);
      print_newline ())
    Exp_config.all_sweeps;
  section "Reproduction: section 5.2 QaQ trial runs (T6-T10)";
  (* Each sweep is self-contained (its own rng), so the five tables can
     be computed on separate domains (QAQ_DOMAINS=N) and printed in
     order afterwards; the tables themselves are identical either way. *)
  List.iter
    (fun table ->
      Text_table.print table;
      print_newline ())
    (Exp_runner.parallel_configs
       (List.map
          (fun (sweep : Exp_config.sweep) () ->
            Exp_report.trial_table ~rng:(Rng.create 1984) ~repetitions:5 sweep)
          Exp_config.all_sweeps));
  section "Soundness: worst observed requirement violations";
  let rng = Rng.create 515 in
  Text_table.print
    (Exp_report.quality_table ~rng ~repetitions:5 Exp_config.varying_precision);
  print_newline ();
  List.iter
    (fun (id, note) -> Printf.printf "note [%s]: %s\n" id note)
    Paper_tables.known_discrepancies

(* ------------------------------------------------------------------ *)
(* Ablation 1: uniform vs histogram density on a skewed workload       *)
(* ------------------------------------------------------------------ *)

let ablation_density () =
  section "Ablation: optimizer density assumption (uniform vs histogram)";
  print_endline
    "Workload with laxity ~ L*u^3 (mass near 0): the uniform assumption\n\
     misjudges how many objects satisfy the laxity bound; the histogram\n\
     density of section 4.2 adapts.  Costs are W/|T|, 5 repetitions.";
  let setting = Exp_config.default in
  let table =
    Text_table.create ~title:"density ablation"
      ~header:[ "workload"; "QaQ uniform"; "QaQ histogram"; "Stingy" ]
  in
  let rng = Rng.create 77 in
  let cell outcomes =
    let a = Exp_runner.aggregate setting outcomes in
    Printf.sprintf "%.2f±%.2f" a.mean_cost a.ci95
  in
  List.iter
    (fun (label, laxity_exponent) ->
      let datasets =
        List.init 5 (fun _ ->
            Synthetic.generate_skewed rng
              (Exp_config.workload setting)
              ~laxity_exponent ~success_exponent:1.0)
      in
      let run density kind =
        List.map
          (fun data ->
            Exp_runner.trial_run ~rng ~density ~sample_fraction:0.05 ~setting
              ~data kind)
          datasets
      in
      Text_table.add_row table
        [ label;
          cell (run `Uniform Exp_runner.Qaq);
          cell (run `Histogram Exp_runner.Qaq);
          cell (run `Uniform Exp_runner.Stingy) ])
    [ ("uniform (exp 1)", 1.0); ("skewed (exp 3)", 3.0); ("skewed (exp 6)", 6.0) ];
  Text_table.print table

(* ------------------------------------------------------------------ *)
(* Ablation 2: success-directed vs ambiguity-directed probing          *)
(* ------------------------------------------------------------------ *)

(* The metric of Cheng et al. [5] (paper §6) scores objects by
   |s-0.5|/0.5.  Probing the most ambiguous MAYBEs first is the natural
   policy under that metric; the paper's QaQ probes the highest-s MAYBEs
   instead, because those build the recall guarantee fastest.  We give
   both the same expected probe budget and compare. *)
let ambiguity_policy (qaq : Policy.params) : Policy.t =
  let t_hi = 1.0 -. qaq.s3 and t_lo = 1.0 -. qaq.s5 in
  Policy.Custom
    (fun ~requirements ~counters:_ ~verdict ~laxity ~success ->
      let ambiguity = Policy.ambiguity ~success in
      match verdict with
      | Tvl.No -> [ Decision.Ignore ]
      | Tvl.Yes ->
          if laxity <= requirements.Quality.laxity then
            [ Decision.Forward; Decision.Probe ]
          else [ Decision.Probe ]
      | Tvl.Maybe ->
          if laxity > requirements.Quality.laxity then
            if ambiguity < t_hi then [ Decision.Probe ]
            else [ Decision.Ignore; Decision.Probe ]
          else if ambiguity < t_lo then [ Decision.Probe ]
          else if qaq.p_fm > 0.5 then
            [ Decision.Forward; Decision.Probe ]
          else [ Decision.Ignore; Decision.Forward; Decision.Probe ])

let ablation_ambiguity () =
  section "Ablation: probe-selection score (success s(o) vs ambiguity |s-0.5|/0.5)";
  let table =
    Text_table.create ~title:"probe-score ablation (W/|T|, 5 reps)"
      ~header:[ "r_q"; "QaQ (success-directed)"; "ambiguity-directed" ]
  in
  let rng = Rng.create 4242 in
  List.iter
    (fun r_q ->
      let setting = { Exp_config.default with r_q } in
      let datasets =
        List.init 5 (fun _ -> Synthetic.generate rng (Exp_config.workload setting))
      in
      let qaq_params =
        (Exp_runner.solve_setting setting).Solver.params
      in
      let run policy =
        let outcomes =
          List.map
            (fun data ->
              let report =
                Operator.run ~rng ~instance:Synthetic.instance
                  ~probe:(Probe_driver.scalar Synthetic.probe) ~policy
                  ~requirements:(Exp_config.requirements setting)
                  (Operator.source_of_array data)
              in
              Operator.normalized_cost Cost_model.paper
                ~total:(Array.length data) report)
            datasets
        in
        let arr = Array.of_list outcomes in
        Printf.sprintf "%.2f±%.2f" (Stats.mean arr) (Stats.confidence95 arr)
      in
      Text_table.add_row table
        [ Printf.sprintf "%g" r_q;
          run (Policy.qaq qaq_params);
          run (ambiguity_policy qaq_params) ])
    [ 0.4; 0.6; 0.8 ];
  Text_table.print table

(* ------------------------------------------------------------------ *)
(* Ablation 3: zone-map pruning (the §7 index-access future work)      *)
(* ------------------------------------------------------------------ *)

let ablation_index () =
  section "Ablation: zone-map page pruning (section 7 future work)";
  print_endline
    "Interval data, value-clustered layout, query 'value >= 900' over\n\
     truths in [0, 1000].  The zone map skips pages whose hull is NO,\n\
     shrinking |M_ns| for free.";
  let rng = Rng.create 99 in
  let records =
    Interval_data.uniform_intervals rng ~n:20000
      ~value_range:(Interval.make 0.0 1000.0) ~max_width:50.0
  in
  Array.sort
    (fun (a : Interval_data.record) b -> Float.compare a.truth b.truth)
    records;
  let file = Heap_file.create ~page_size:128 records in
  let pred = Predicate.ge 900.0 in
  let zone_map =
    Zone_map.build file ~support:(fun (r : Interval_data.record) ->
        Uncertain.support r.belief)
  in
  let requirements =
    Quality.requirements ~precision:0.95 ~recall:0.9 ~laxity:40.0
  in
  let run ~pruned =
    let cursor =
      if pruned then Zone_map.open_cursor zone_map pred file
      else Heap_file.Cursor.open_ file
    in
    let report =
      Operator.run ~rng ~instance:(Interval_data.instance pred)
        ~probe:(Probe_driver.scalar Interval_data.probe)
        ~policy:Policy.stingy ~requirements
        (Operator.source_of_cursor cursor)
    in
    (report, Heap_file.Cursor.io cursor, Heap_file.Cursor.skipped cursor)
  in
  let table =
    Text_table.create ~title:"zone-map ablation"
      ~header:
        [ "access path"; "pages fetched"; "objects read"; "probes"; "W";
          "answer"; "r^G" ]
  in
  List.iter
    (fun (label, pruned) ->
      let report, io, skipped = run ~pruned in
      ignore skipped;
      Text_table.add_row table
        [ label;
          string_of_int io.Heap_file.pages_fetched;
          string_of_int report.counts.reads;
          string_of_int report.counts.probes;
          Printf.sprintf "%.0f" (Operator.cost Cost_model.paper report);
          string_of_int report.answer_size;
          Printf.sprintf "%.3f" report.guarantees.recall ])
    [ ("full scan", false); ("zone-map pruned", true) ];
  (* Object-granular pruning via the interval index, same query. *)
  let idx =
    Interval_index.build records ~support:(fun (r : Interval_data.record) ->
        Uncertain.support r.belief)
  in
  let cands = Interval_index.candidates idx pred in
  let report =
    Operator.run ~rng ~instance:(Interval_data.instance pred)
      ~probe:(Probe_driver.scalar Interval_data.probe)
      ~policy:Policy.stingy ~requirements
      (Operator.source_of_array cands)
  in
  Text_table.add_row table
    [ "interval index"; "-";
      string_of_int report.counts.reads;
      string_of_int report.counts.probes;
      Printf.sprintf "%.0f" (Operator.cost Cost_model.paper report);
      string_of_int report.answer_size;
      Printf.sprintf "%.3f" report.guarantees.recall ];
  Text_table.print table

(* ------------------------------------------------------------------ *)
(* Ablation 4: QaQ band join and its probe cache (§7 future work)      *)
(* ------------------------------------------------------------------ *)

let ablation_join () =
  section "Ablation: band join (section 7 future work) and probe sharing";
  print_endline
    "Band join |x - y| <= 5 over two 150-record interval relations\n\
     (22500 pairs).  Probe sharing charges each object once however\n\
     many pairs need it; the no-sharing baseline re-fetches per pair.";
  let rng = Rng.create 2718 in
  let gen () =
    Interval_data.uniform_intervals rng ~n:150
      ~value_range:(Interval.make 0.0 100.0) ~max_width:10.0
  in
  let left = gen () and right = gen () in
  let requirements =
    Quality.requirements ~precision:0.9 ~recall:0.6 ~laxity:8.0
  in
  let table =
    Text_table.create ~title:"band-join ablation"
      ~header:
        [ "configuration"; "pairs read"; "probe fetches"; "requests"; "W";
          "W/pair"; "answer" ]
  in
  List.iter
    (fun (label, policy, share_probes) ->
      let report =
        Band_join.run ~rng:(Rng.create 3) ~policy ~share_probes ~requirements
          ~epsilon:5.0 ~left ~right ()
      in
      let w = Band_join.cost Cost_model.paper report in
      Text_table.add_row table
        [ label;
          string_of_int report.counts.reads;
          string_of_int report.object_probes;
          string_of_int report.probe_requests;
          Printf.sprintf "%.0f" w;
          Printf.sprintf "%.3f" (w /. float_of_int report.pairs_total);
          string_of_int report.answer_size ])
    [
      ("Stingy + sharing", Policy.stingy, true);
      ("Stingy, no sharing", Policy.stingy, false);
      ("Greedy + sharing", Policy.greedy, true);
      ("Greedy, no sharing", Policy.greedy, false);
    ];
  Text_table.print table

(* ------------------------------------------------------------------ *)
(* Ablation 5: adaptive re-planning vs a wrong pre-query estimate      *)
(* ------------------------------------------------------------------ *)

let ablation_adaptive () =
  section "Ablation: adaptive re-planning under a wrong pre-query estimate";
  print_endline
    "The workload is really f_y = 0.2, f_m = 0.4, but the static QaQ\n\
     plan was solved for f_y = 0.05, f_m = 0.02 (a bad 1% sample).\n\
     The adaptive policy starts from the same wrong plan and re-solves\n\
     every 500 reads from what the scan itself observes.  W/|T|, 5 reps.";
  let requirements = Exp_config.requirements Exp_config.default in
  let wrong_prior =
    let spec = Region_model.uniform_spec ~f_y:0.05 ~f_m:0.02 ~max_laxity:100.0 in
    (Solver.solve (Solver.problem ~total:10000 ~spec ~requirements ())).params
  in
  let oracle =
    let spec = Region_model.uniform_spec ~f_y:0.2 ~f_m:0.4 ~max_laxity:100.0 in
    (Solver.solve (Solver.problem ~total:10000 ~spec ~requirements ())).params
  in
  let rng = Rng.create 31 in
  let datasets =
    List.init 5 (fun _ ->
        Synthetic.generate rng
          (Synthetic.config ~total:10000 ~f_y:0.2 ~f_m:0.4 ()))
  in
  let normalized data report =
    Operator.cost Cost_model.paper report /. float_of_int (Array.length data)
  in
  let run_static params data =
    normalized data
      (Operator.run ~rng ~instance:Synthetic.instance
         ~probe:(Probe_driver.scalar Synthetic.probe)
         ~policy:(Policy.qaq params) ~requirements
         (Operator.source_of_array data))
  in
  let run_adaptive data =
    let adaptive =
      Adaptive.create ~rng:(Rng.split rng) ~total:(Array.length data)
        ~max_laxity:100.0 ~requirements ~replan_every:500 ~max_replans:8
        ~initial:wrong_prior ()
    in
    normalized data
      (Operator.run ~rng ~instance:Synthetic.instance
         ~probe:(Probe_driver.scalar Synthetic.probe)
         ~policy:(Adaptive.policy adaptive) ~requirements
         (Operator.source_of_array data))
  in
  let summarize f =
    let xs = Array.of_list (List.map f datasets) in
    Printf.sprintf "%.2f±%.2f" (Stats.mean xs) (Stats.confidence95 xs)
  in
  let table =
    Text_table.create ~title:"adaptive re-planning ablation"
      ~header:[ "plan"; "W/|T|" ]
  in
  Text_table.add_row table [ "static, wrong prior"; summarize (run_static wrong_prior) ];
  Text_table.add_row table [ "adaptive from wrong prior"; summarize run_adaptive ];
  Text_table.add_row table [ "static, oracle prior"; summarize (run_static oracle) ];
  Text_table.print table

(* ------------------------------------------------------------------ *)
(* Generality: the framework on non-interval imprecision models        *)
(* ------------------------------------------------------------------ *)

(* The paper claims (§1, fn. 1) the technique works for any model of
   imprecision that supports classification; §2.2 proposes a
   distribution parameter (the standard deviation) as the laxity of a
   density-based model.  This section runs the identical pipeline —
   sample, histogram-density solve, operate — over Gaussian beliefs and
   over interval beliefs on the same hidden truths, checking that the
   guarantee machinery and the cost behaviour carry over. *)
let generality_models () =
  section "Generality: interval vs Gaussian imprecision models";
  let predicate = Predicate.ge 60.0 in
  let requirements =
    Quality.requirements ~precision:0.9 ~recall:0.6 ~laxity:3.0
  in
  let table =
    Text_table.create ~title:"model generality (same pipeline, both models)"
      ~header:
        [ "model"; "W/|T|"; "probes"; "answer"; "p^G"; "r^G"; "actual p";
          "actual r" ]
  in
  let run label records =
    let rng = Rng.create 1234 in
    let result =
      Engine.execute ~rng
        ~planning:
          (Engine.Sampled
             { fraction = 0.02; density = `Histogram; fallback = (0.2, 0.2) })
        ~instance:(Interval_data.instance predicate)
        ~probe:(Probe_driver.scalar Interval_data.probe) ~requirements records
    in
    let report = result.report in
    let answer_in_exact =
      List.length
        (List.filter
           (fun e -> Interval_data.in_exact predicate e.Operator.obj)
           report.answer)
    in
    Text_table.add_row table
      [ label;
        Printf.sprintf "%.2f" result.normalized_cost;
        string_of_int report.counts.probes;
        string_of_int report.answer_size;
        Printf.sprintf "%.3f" report.guarantees.precision;
        Printf.sprintf "%.3f" report.guarantees.recall;
        Printf.sprintf "%.3f"
          (Quality.Diagnostics.precision ~answer_size:report.answer_size
             ~answer_in_exact);
        Printf.sprintf "%.3f"
          (Quality.Diagnostics.recall
             ~exact_size:(Interval_data.exact_size predicate records)
             ~answer_in_exact) ]
  in
  let rng = Rng.create 5678 in
  run "interval beliefs"
    (Interval_data.uniform_intervals rng ~n:10000
       ~value_range:(Interval.make 0.0 100.0) ~max_width:8.0);
  run "gaussian beliefs"
    (Interval_data.gaussian_beliefs rng ~n:10000 ~mean:55.0 ~stddev:15.0
       ~noise:2.0);
  Text_table.print table

(* ------------------------------------------------------------------ *)
(* Ablation 6: top-k probe frugality vs. resolve-all-contenders        *)
(* ------------------------------------------------------------------ *)

let ablation_top_k () =
  section "Ablation: quality-aware top-k (rank queries, related work [10])";
  print_endline
    "Top-40 of 2000 interval records.  The quality-aware loop certifies\n\
     just enough members for the recall bound; the baseline resolves\n\
     every contender (every record not certainly out of the top-k).";
  let records =
    Interval_data.uniform_intervals (Rng.create 515) ~n:2000
      ~value_range:(Interval.make 0.0 1000.0) ~max_width:60.0
  in
  let k = 40 in
  (* Baseline: probe every record whose verdict is not NO. *)
  let baseline_probes =
    let verdicts = Top_k.classify ~k records in
    Array.fold_left
      (fun acc v -> if Tvl.equal v Tvl.No then acc else acc + 1)
      0 verdicts
  in
  let table =
    Text_table.create ~title:"top-k ablation"
      ~header:[ "r_q"; "probes"; "certified"; "answered"; "W" ]
  in
  List.iter
    (fun r_q ->
      let requirements =
        Quality.requirements ~precision:1.0 ~recall:r_q ~laxity:30.0
      in
      let report = Top_k.run ~requirements ~k records in
      Text_table.add_row table
        [ Printf.sprintf "%g" r_q;
          string_of_int report.counts.probes;
          string_of_int report.certified;
          string_of_int (List.length report.answer);
          Printf.sprintf "%.0f"
            (Cost_meter.cost_of_counts Cost_model.paper report.counts) ])
    [ 0.2; 0.5; 0.8; 1.0 ];
  Text_table.add_row table
    [ "resolve-all baseline"; string_of_int baseline_probes; "-"; "-";
      Printf.sprintf "%.0f"
        (float_of_int (Array.length records)
        +. (float_of_int baseline_probes *. 100.0)) ];
  Text_table.print table

(* ------------------------------------------------------------------ *)
(* Ablation 7: per-attribute vs whole-tuple probing                    *)
(* ------------------------------------------------------------------ *)

let ablation_relation () =
  section "Ablation: relational selection with per-attribute probing";
  print_endline
    "Condition 'temp >= 70 AND battery <= 25' over 10000 two-attribute\n\
     tuples.  Per-attribute probing fetches one attribute at a time and\n\
     stops when the condition is decided; whole-tuple probing always\n\
     fetches both attributes.";
  let s = Relation.schema [ "temp"; "battery" ] in
  let cond =
    Relation.And
      (Relation.atom s "temp" (Predicate.ge 70.0),
       Relation.atom s "battery" (Predicate.le 25.0))
  in
  let rng = Rng.create 823 in
  let tuples =
    Array.init 10000 (fun id ->
        let attr_belief () =
          let truth = Rng.float rng 100.0 in
          let w = Rng.float rng 30.0 in
          let off = Rng.float rng w in
          (Uncertain.interval (truth -. off) (truth -. off +. w), truth)
        in
        let b0, t0 = attr_belief () and b1, t1 = attr_belief () in
        Relation.tuple ~id ~beliefs:[| b0; b1 |] ~truths:[| t0; t1 |])
  in
  let requirements =
    Quality.requirements ~precision:0.9 ~recall:0.7 ~laxity:25.0
  in
  let report =
    Relation.select ~rng:(Rng.create 5) ~requirements cond tuples
  in
  let table =
    Text_table.create ~title:"relational probing ablation"
      ~header:
        [ "probing"; "probe decisions"; "attribute fetches"; "W"; "answer" ]
  in
  let cost (c : Cost_meter.counts) = Cost_meter.cost_of_counts Cost_model.paper c in
  Text_table.add_row table
    [ "per-attribute (planned)";
      string_of_int report.probe_actions;
      string_of_int report.counts.probes;
      Printf.sprintf "%.0f" (cost report.counts);
      string_of_int report.answer_size ];
  (* Whole-tuple baseline: same decisions would fetch 2 attributes per
     probed tuple. *)
  let whole_tuple =
    { report.counts with probes = 2 * report.probe_actions }
  in
  Text_table.add_row table
    [ "whole-tuple (baseline)";
      string_of_int report.probe_actions;
      string_of_int whole_tuple.probes;
      Printf.sprintf "%.0f" (cost whole_tuple);
      string_of_int report.answer_size ];
  Text_table.print table

(* ------------------------------------------------------------------ *)
(* Ablation 8: batched probing (the Probe_driver pipeline)             *)
(* ------------------------------------------------------------------ *)

let ablation_batching () =
  section "Ablation: batched probing under a per-batch setup cost";
  print_endline
    "Probe-heavy workload (f_m = 0.4, r_q = 0.8) resolved through a\n\
     Probe_source with constant wakeup latency, swept over batch size B.\n\
     Each batch pays one setup charge c_b = 200 and one source wakeup;\n\
     the optimizer prices probes at the amortized c_p + c_b/B.  Larger\n\
     batches amortize the setup away while every guarantee still holds.";
  let data =
    Synthetic.generate (Rng.create 808)
      (Synthetic.config ~total:10000 ~f_y:0.2 ~f_m:0.4 ~max_laxity:100.0 ())
  in
  let requirements =
    Quality.requirements ~precision:0.92 ~recall:0.8 ~laxity:40.0
  in
  let model =
    Cost_model.make ~c_r:1.0 ~c_p:100.0 ~c_wi:1.0 ~c_wp:1.0 ~c_b:200.0 ()
  in
  let table =
    Text_table.create ~title:"batch-size sweep (c_b = 200, wakeup latency 5)"
      ~header:
        [ "B"; "amortized c_p"; "probes"; "batches"; "wakeup latency"; "W";
          "W/|T|"; "meets" ]
  in
  let cost_at = Hashtbl.create 8 in
  List.iter
    (fun b ->
      let source =
        Probe_source.create ~latency:(Probe_source.Constant 5.0)
          Synthetic.probe
      in
      let report =
        Operator.run ~rng:(Rng.create 809) ~instance:Synthetic.instance
          ~probe:(Probe_source.driver ~batch_size:b source)
          ~policy:Policy.stingy ~requirements ~collect:false
          (Operator.source_of_array data)
      in
      let st = Probe_source.stats source in
      let w = Operator.cost model report in
      Hashtbl.replace cost_at b w;
      Text_table.add_row table
        [ string_of_int b;
          Printf.sprintf "%.1f" (Cost_model.amortized_probe model ~batch:b);
          string_of_int report.counts.probes;
          string_of_int report.counts.batches;
          Printf.sprintf "%.0f" st.Probe_source.simulated_latency;
          Printf.sprintf "%.0f" w;
          Printf.sprintf "%.2f" (w /. float_of_int (Array.length data));
          (if Quality.meets report.guarantees requirements then "yes"
           else "NO") ])
    [ 1; 4; 16; 64 ];
  Text_table.print table;
  let w_of b = Hashtbl.find cost_at b in
  Printf.printf "cost decreasing with batch size: %s\n"
    (if w_of 1 > w_of 4 && w_of 4 > w_of 16 then "yes (B=1 > B=4 > B=16)"
     else "NO — check the batch accounting")

(* ------------------------------------------------------------------ *)
(* Shared sweep scaffolding for the instrumented modes                 *)
(* ------------------------------------------------------------------ *)

(* The instrumented modes — metrics, profile, scaling — sweep fixed
   configurations over reproducible workloads and write one JSON
   document apiece.  The configurations, the reference workload, its
   requirements and the JSON envelope live here so the three modes (and
   CI, which diffs their outputs across commits) agree on all of them. *)

let standard_configs =
  [ ("B1", 1, false); ("B4", 4, false); ("B16", 16, false);
    ("B4-adaptive", 4, true) ]

let standard_workload () =
  Synthetic.generate (Rng.create 606) (Synthetic.config ~total:2000 ())

let standard_requirements =
  Quality.requirements ~precision:0.9 ~recall:0.6 ~laxity:50.0

let engine_seed = 607

let sweep_standard_configs f =
  List.map (fun (label, batch, adaptive) -> f ~label ~batch ~adaptive)
    standard_configs

(* One envelope for every instrumented mode's output:
   { "bench": ..., <fields>, "runs": [ <rows> ] }. *)
let write_bench_json ~path ~bench ~fields ~rows =
  let oc = open_out path in
  output_string oc
    (Printf.sprintf "{\n  \"bench\": %S,\n%s  \"runs\": [\n%s\n  ]\n}\n" bench
       (String.concat ""
          (List.map (fun (k, v) -> Printf.sprintf "  %S: %s,\n" k v) fields))
       (String.concat ",\n" rows));
  close_out oc;
  Printf.printf "%s results written to %s\n" bench path

(* ------------------------------------------------------------------ *)
(* Metrics: instrumented engine runs, per-config JSON dump             *)
(* ------------------------------------------------------------------ *)

let metrics_dump path =
  section "Metrics: instrumented engine runs";
  print_endline
    "Small engine configurations run with the observability capability\n\
     attached; each config's metrics registry is dumped as JSON and the\n\
     qaq.* counters are reconciled against the run's cost meter.";
  let data = standard_workload () in
  let ok = ref true in
  let rows =
    sweep_standard_configs (fun ~label ~batch ~adaptive ->
        let obs = Obs.create () in
        let result =
          Engine.execute ~rng:(Rng.create engine_seed) ~adaptive
            ~max_laxity:100.0 ~obs ~instance:Synthetic.instance
            ~probe:
              (Probe_driver.of_scalar ~obs ~batch_size:batch Synthetic.probe)
            ~requirements:standard_requirements data
        in
        let snapshot = Obs.snapshot obs in
        (match Cost_meter.reconcile snapshot result.Engine.counts with
        | Ok () -> ()
        | Error msg ->
            ok := false;
            Printf.printf "RECONCILE FAILED (%s): %s\n" label msg);
        Printf.printf "%-14s W/|T| = %6.2f  reads %4d  probes %3d  batches %3d\n"
          label result.Engine.normalized_cost result.Engine.counts.reads
          result.Engine.counts.probes result.Engine.counts.batches;
        Printf.sprintf "    { \"label\": %S, \"metrics\": %s }" label
          (String.trim (Metrics.to_json snapshot)))
  in
  write_bench_json ~path ~bench:"instrumented-metrics"
    ~fields:[ ("reconciled", string_of_bool !ok) ]
    ~rows;
  Printf.printf "metrics reconcile with the cost meter: %s\n"
    (if !ok then "yes" else "NO");
  if not !ok then exit 1

(* ------------------------------------------------------------------ *)
(* Profile: per-query profiler sweep with quality audit                *)
(* ------------------------------------------------------------------ *)

(* The profiler's quality audit is this mode's pass/fail: each standard
   config runs under [Engine.execute ?profile] with the synthetic
   ground-truth oracle, and any config whose achieved precision/recall
   misses the requested bounds — or whose cost meter fails to reconcile
   with the qaq.* counters — fails the whole mode.  CI runs it as the
   audit smoke test. *)
let profile_bench path ~trace =
  section "Profile: per-query profiler with quality audit";
  print_endline
    "Each standard config runs under the profiler with a ground-truth\n\
     oracle; quantile summaries land in the JSON dump and any audit or\n\
     reconciliation failure fails the mode.";
  let data = standard_workload () in
  let all_passed = ref true in
  let rows =
    sweep_standard_configs (fun ~label ~batch ~adaptive ->
        let obs = Obs.create () in
        let result =
          Engine.execute ~rng:(Rng.create engine_seed) ~adaptive
            ~max_laxity:100.0 ~obs
            ~profile:(Engine.profiling ~label ~oracle:Synthetic.in_exact ())
            ~instance:Synthetic.instance
            ~probe:
              (Probe_driver.of_scalar ~obs ~batch_size:batch Synthetic.probe)
            ~requirements:standard_requirements data
        in
        let profile =
          match result.Engine.profile with
          | Some p -> p
          | None -> failwith "profile_bench: engine returned no profile"
        in
        if not (Profile.passed profile) then begin
          all_passed := false;
          Printf.printf "AUDIT FAILED (%s):\n" label;
          Profile.print profile
        end
        else
          Printf.printf
            "%-14s audit ok  W/|T| = %6.2f  reads %4d  probes %3d  answer %4d\n"
            label result.Engine.normalized_cost result.Engine.counts.reads
            result.Engine.counts.probes result.Engine.report.answer_size;
        Printf.sprintf "    %s" (String.trim (Profile.to_json profile)))
  in
  write_bench_json ~path ~bench:"profile-quality-audit"
    ~fields:[ ("passed", string_of_bool !all_passed) ]
    ~rows;
  (* Sample Chrome trace: the B4 config once more on a two-domain pool,
     with the recorder attached — one timeline lane per worker. *)
  let recorder = Chrome_trace.create () in
  let domains = 2 in
  Chrome_trace.declare_lanes recorder domains;
  let obs = Obs.create ~trace:(Chrome_trace.sink recorder) () in
  ignore
    (Engine.execute ~rng:(Rng.create engine_seed) ~domains ~max_laxity:100.0
       ~obs
       ~on_task:(Chrome_trace.on_task recorder)
       ~instance:Synthetic.instance
       ~probe:(Probe_driver.of_scalar ~obs ~batch_size:4 Synthetic.probe)
       ~requirements:standard_requirements data);
  Chrome_trace.write recorder trace;
  Printf.printf "sample chrome trace (%d events, %d lanes) written to %s\n"
    (Chrome_trace.events recorder) domains trace;
  Printf.printf "profile quality audits: %s\n"
    (if !all_passed then "all passed" else "FAILED");
  if not !all_passed then exit 1

(* ------------------------------------------------------------------ *)
(* Faults: graceful degradation sweep over probe failure rates         *)
(* ------------------------------------------------------------------ *)

(* The standard workload resolved through a fault-injected Probe_source,
   swept over permanent-failure rates.  Every run must complete without
   raising and hold the degradation invariants: the cost meter
   reconciles with the qaq.* counters, the degraded flag agrees with
   the profiler's audit, guarantees never overstate the oracle-achieved
   precision/recall, every failure is covered by a fallback, and the
   zero-rate plan is bit-for-bit the unfaulted baseline. *)
let faults_bench path =
  section "Faults: graceful degradation under permanent probe failure";
  let fault_seed =
    match Sys.getenv_opt "QAQ_FAULT_SEED" with
    | None -> 1337
    | Some s -> (
        match int_of_string_opt s with
        | Some n -> n
        | None ->
            Printf.eprintf "QAQ_FAULT_SEED must be an integer, got %S\n" s;
            exit 2)
  in
  Printf.printf
    "Standard workload (|T| = 2000, B = 16) probed through a seeded fault\n\
     injector (QAQ_FAULT_SEED = %d); permanent probe failures degrade to\n\
     guarantee-aware write decisions instead of aborting the run.\n\n"
    fault_seed;
  let data = standard_workload () in
  let ok = ref true in
  let violation label fmt =
    Printf.ksprintf
      (fun msg ->
        ok := false;
        Printf.printf "VIOLATION (%s): %s\n" label msg)
      fmt
  in
  let run ?faults label =
    let obs = Obs.create () in
    let source =
      match faults with
      | None -> Probe_source.create ~obs Synthetic.probe
      | Some f -> Probe_source.create ~obs ~max_retries:2 ~faults:f Synthetic.probe
    in
    let result =
      Engine.execute ~rng:(Rng.create engine_seed) ~max_laxity:100.0 ~obs
        ~profile:(Engine.profiling ~label ~oracle:Synthetic.in_exact ())
        ~instance:Synthetic.instance
        ~probe:(Probe_source.driver ~obs ~batch_size:16 source)
        ~requirements:standard_requirements data
    in
    (result, Obs.snapshot obs)
  in
  let fingerprint (result : _ Engine.result) =
    ( List.map
        (fun (e : _ Operator.emitted) ->
          (e.Operator.obj.Synthetic.id, e.Operator.precise))
        result.Engine.report.Operator.answer,
      result.Engine.counts,
      result.Engine.report.Operator.guarantees,
      result.Engine.normalized_cost )
  in
  let baseline, _ = run "no-fault-baseline" in
  let rows =
    List.map
      (fun rate ->
        let label = Printf.sprintf "rate-%g" rate in
        let faults =
          Fault_plan.make ~seed:fault_seed ~permanent_rate:rate
            ~transient_rate:(rate /. 2.0) ~max_retries:2 ()
        in
        let result, snapshot = run ~faults label in
        let d = result.Engine.degradation in
        let profile = Option.get result.Engine.profile in
        (match profile.Profile.reconcile_error with
        | None -> ()
        | Some msg -> violation label "meter failed to reconcile: %s" msg);
        if Engine.degraded result <> (d.Engine.failed_probes > 0) then
          violation label "degraded flag disagrees with failed_probes";
        if profile.Profile.audit.Profile.degraded_probes <> d.Engine.failed_probes
        then
          violation label "audit flags %d degraded probes, run reports %d"
            profile.Profile.audit.Profile.degraded_probes d.Engine.failed_probes;
        if
          d.Engine.failed_probes
          <> d.Engine.degraded_forwards + d.Engine.degraded_ignores
        then violation label "fallbacks do not cover every failure";
        let achieved_p, achieved_r =
          match profile.Profile.audit.Profile.achieved with
          | Some a -> (a.Profile.achieved_precision, a.Profile.achieved_recall)
          | None ->
              violation label "oracle audit missing";
              (1.0, 1.0)
        in
        if d.Engine.guarantees_after.Quality.precision > achieved_p +. 1e-9 then
          violation label "guaranteed precision %.4f overstates achieved %.4f"
            d.Engine.guarantees_after.Quality.precision achieved_p;
        if d.Engine.guarantees_after.Quality.recall > achieved_r +. 1e-9 then
          violation label "guaranteed recall %.4f overstates achieved %.4f"
            d.Engine.guarantees_after.Quality.recall achieved_r;
        if rate = 0.0 && fingerprint result <> fingerprint baseline then
          violation label "zero-rate plan diverged from the unfaulted baseline";
        Printf.printf
          "rate %-5g failed %3d/%3d attempts  forwards %3d  ignores %3d  \
           forced %2d  wasted %6.0f  W/|T| %6.2f  p^G %.3f (achieved %.3f)  \
           r^G %.3f (achieved %.3f)%s\n"
          rate d.Engine.failed_probes d.Engine.failed_attempts
          d.Engine.degraded_forwards d.Engine.degraded_ignores
          d.Engine.forced_actions d.Engine.wasted_cost
          result.Engine.normalized_cost
          d.Engine.guarantees_after.Quality.precision achieved_p
          d.Engine.guarantees_after.Quality.recall achieved_r
          (if d.Engine.requirements_met then "" else "  REQUIREMENTS MISSED");
        Printf.sprintf
          "    { \"rate\": %g, \"failed_probes\": %d, \"failed_attempts\": %d, \
           \"degraded_forwards\": %d, \"degraded_ignores\": %d, \
           \"forced_actions\": %d, \"wasted_cost\": %.1f, \
           \"requirements_met\": %b, \"guaranteed_precision\": %.6f, \
           \"guaranteed_recall\": %.6f, \"achieved_precision\": %.6f, \
           \"achieved_recall\": %.6f, \"answer_size\": %d, \
           \"normalized_cost\": %.6f, \"injected\": %d, \"retried\": %d, \
           \"degraded\": %d }"
          rate d.Engine.failed_probes d.Engine.failed_attempts
          d.Engine.degraded_forwards d.Engine.degraded_ignores
          d.Engine.forced_actions d.Engine.wasted_cost d.Engine.requirements_met
          d.Engine.guarantees_after.Quality.precision
          d.Engine.guarantees_after.Quality.recall achieved_p achieved_r
          result.Engine.report.Operator.answer_size
          result.Engine.normalized_cost
          (Metrics.count_of snapshot Obs.Keys.fault_injected)
          (Metrics.count_of snapshot Obs.Keys.fault_retried)
          (Metrics.count_of snapshot Obs.Keys.fault_degraded))
      [ 0.0; 0.01; 0.05; 0.20 ]
  in
  write_bench_json ~path ~bench:"fault-degradation"
    ~fields:
      [
        ("fault_seed", string_of_int fault_seed);
        ("invariants_held", string_of_bool !ok);
      ]
    ~rows;
  Printf.printf "degradation invariants: %s\n"
    (if !ok then "all held" else "VIOLATED");
  if not !ok then exit 1

(* ------------------------------------------------------------------ *)
(* Scaling: the multicore scan pipeline over domains 1/2/4/8           *)
(* ------------------------------------------------------------------ *)

(* Classification-heavy workload: Gaussian beliefs make classify/laxity/
   success erf-bound computations, so the parallel stage has real work
   per object.  Wall-clock is hardware-dependent (flat on a single-core
   host); the answers are not — the sweep cross-checks that every domain
   count produces the identical result before reporting speedups. *)
let scaling_bench path =
  section "Scaling: multicore scan pipeline (domains 1/2/4/8)";
  let n = 120_000 in
  let records =
    Interval_data.gaussian_beliefs (Rng.create 4096) ~n ~mean:55.0
      ~stddev:15.0 ~noise:2.0
  in
  let pred = Predicate.ge 60.0 in
  let requirements =
    Quality.requirements ~precision:0.9 ~recall:0.9 ~laxity:6.0
  in
  let run domains =
    Engine.execute ~rng:(Rng.create 4097) ~domains
      ~instance:(Interval_data.instance pred)
      ~probe:(Probe_driver.scalar Interval_data.probe) ~requirements
      ~collect:false records
  in
  let fingerprint (r : Interval_data.record Engine.result) =
    ( r.report.answer_size,
      r.report.yes_seen,
      r.counts,
      r.report.guarantees,
      r.normalized_cost )
  in
  ignore (run 1) (* warmup: page in the data, settle the allocator *);
  let time_best domains =
    let best = ref infinity in
    let result = ref None in
    for _ = 1 to 3 do
      let t0 = Unix.gettimeofday () in
      let r = run domains in
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt;
      result := Some r
    done;
    (!best, Option.get !result)
  in
  let t1, base = time_best 1 in
  let baseline = fingerprint base in
  let deterministic = ref true in
  let rows =
    List.map
      (fun domains ->
        let dt, r = time_best domains in
        let fp = fingerprint r in
        if fp <> baseline then deterministic := false;
        let speedup = t1 /. dt in
        Printf.printf
          "domains=%d  %.3fs  speedup %.2fx  answer %d  reads %d  probes %d%s\n"
          domains dt speedup r.report.answer_size r.counts.reads
          r.counts.probes
          (if fp = baseline then "" else "  RESULT DIVERGED");
        Printf.sprintf
          "    { \"domains\": %d, \"seconds\": %.6f, \"speedup\": %.4f, \
           \"answer_size\": %d, \"reads\": %d, \"probes\": %d }"
          domains dt speedup r.report.answer_size r.counts.reads
          r.counts.probes)
      [ 1; 2; 4; 8 ]
  in
  write_bench_json ~path ~bench:"scan-pipeline-scaling"
    ~fields:
      [
        ( "workload",
          Printf.sprintf
            "{ \"records\": %d, \"model\": \"gaussian_beliefs\", \
             \"predicate\": \"value >= 60\", \"precision\": 0.9, \
             \"recall\": 0.9, \"laxity\": 6.0 }"
            n );
        ( "recommended_domain_count",
          string_of_int (Domain.recommended_domain_count ()) );
        ("deterministic", string_of_bool !deterministic);
      ]
    ~rows;
  Printf.printf "identical results across domain counts: %s\n"
    (if !deterministic then "yes" else "NO — determinism broken");
  if not !deterministic then exit 1

(* ------------------------------------------------------------------ *)
(* Columnar: row vs columnar pre-classification throughput             *)
(* ------------------------------------------------------------------ *)

(* A never-probe workload isolates the pre-classification stage — the
   only part the storage layout touches: every YES is forwarded, every
   MAYBE ignored, no probe is ever issued, and recall 1 forces the scan
   to exhaustion.  The row path evaluates the instance closures per
   object (recomputing the predicate's satisfying set each call); the
   columnar path runs the compiled kernel over chunk buffers.  Both
   must produce identical reports — throughput is only interesting on
   equal answers. *)
let columnar_bench path =
  section "Columnar: row vs columnar scan throughput (never-probe)";
  let n = 200_000 in
  let chunk_size = 64 in
  let pages = ((n - 1) / chunk_size) + 1 in
  let records =
    Interval_data.uniform_intervals (Rng.create 8192) ~n
      ~value_range:(Interval.make 0.0 100.0) ~max_width:10.0
  in
  (* A multi-band selection: the row path rebuilds this predicate's
     satisfying set for every classify/success call, which is exactly
     the per-object work compilation hoists out of the scan. *)
  let pred =
    Predicate.(
      between 10.0 18.0 ||| between 26.0 34.0 ||| between 42.0 50.0
      ||| between 58.0 66.0 ||| between 74.0 82.0)
  in
  let store = Interval_data.to_store ~chunk_size records in
  let requirements =
    Quality.requirements ~precision:0.0 ~recall:1.0 ~laxity:10.0
  in
  let never_probe =
    Policy.Custom
      (fun ~requirements:_ ~counters:_ ~verdict ~laxity:_ ~success:_ ->
        match verdict with
        | Tvl.Yes -> [ Decision.Forward ]
        | Tvl.Maybe -> [ Decision.Ignore ]
        | Tvl.No -> assert false)
  in
  let instance = Interval_data.instance pred in
  let probe = Probe_driver.scalar Interval_data.probe in
  let scan ?pool layout =
    let meter = Cost_meter.create () in
    let report =
      match layout with
      | `Row ->
          Scan_pipeline.run ~rng:(Rng.create 8193) ?pool ~meter
            ~collect:false ~enforce:false ~instance ~probe ~policy:never_probe
            ~requirements records
      | `Columnar ->
          Column_scan.run ~rng:(Rng.create 8193) ?pool ~meter ~collect:false
            ~enforce:false ~store ~of_row:Interval_data.of_row
            ~pred:(Predicate.compile pred) ~instance ~probe
            ~policy:never_probe ~requirements ()
    in
    (report, Cost_meter.counts meter)
  in
  let fingerprint ((report : Interval_data.record Operator.report), counts) =
    ( report.yes_seen,
      report.maybe_ignored,
      report.answer_size,
      report.guarantees,
      counts )
  in
  let time_best ~domains layout =
    let go ?pool () =
      let best = ref infinity in
      let result = ref None in
      for _ = 1 to 3 do
        let t0 = Unix.gettimeofday () in
        let r = scan ?pool layout in
        let dt = Unix.gettimeofday () -. t0 in
        if dt < !best then best := dt;
        result := Some r
      done;
      (!best, Option.get !result)
    in
    if domains = 1 then go ()
    else Domain_pool.with_pool ~domains (fun pool -> go ~pool ())
  in
  ignore (scan `Row) (* warmup *);
  ignore (scan `Columnar);
  let baseline = fingerprint (scan `Row) in
  let ok = ref true in
  let row_d1 = ref nan in
  let col_d1 = ref nan in
  let rows =
    List.concat_map
      (fun domains ->
        List.map
          (fun layout ->
            let name =
              match layout with `Row -> "row" | `Columnar -> "columnar"
            in
            let dt, r = time_best ~domains layout in
            let pps = float_of_int pages /. dt in
            if fingerprint r <> baseline then begin
              ok := false;
              Printf.printf "%-8s domains=%d RESULT DIVERGED\n" name domains
            end;
            if domains = 1 then
              if layout = `Row then row_d1 := pps else col_d1 := pps;
            Printf.printf
              "%-8s domains=%d  %.3fs  %10.0f pages/sec  probes %d\n" name
              domains dt pps (snd r).Cost_meter.probes;
            Printf.sprintf
              "    { \"layout\": %S, \"domains\": %d, \"seconds\": %.6f, \
               \"pages_per_sec\": %.1f }"
              name domains dt pps)
          [ `Row; `Columnar ])
      [ 1; 4; 8 ]
  in
  let ratio = !col_d1 /. !row_d1 in
  write_bench_json ~path ~bench:"columnar-scan-throughput"
    ~fields:
      [
        ( "workload",
          Printf.sprintf
            "{ \"records\": %d, \"chunk_size\": %d, \"pages\": %d, \
             \"model\": \"uniform_intervals\", \"predicate\": \"5-band \
             union\", \"never_probe\": true }"
            n chunk_size pages );
        ("columnar_speedup_at_domains_1", Printf.sprintf "%.4f" ratio);
        ("layouts_agree", string_of_bool !ok);
      ]
    ~rows;
  Printf.printf "row and columnar reports identical: %s\n"
    (if !ok then "yes" else "NO — layout equivalence broken");
  Printf.printf "columnar vs row at domains=1: %.2fx\n" ratio;
  if not !ok then exit 1;
  if Float.is_nan ratio || ratio < 1.0 then begin
    print_endline "columnar slower than row at domains=1 — FAIL";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one Test.make per paper table            *)
(* ------------------------------------------------------------------ *)

let micro_tests () =
  let open Bechamel in
  let trial_test (sweep : Exp_config.sweep) suffix kind =
    (* Bench the median setting of the sweep on a smaller |T| so each
       Bechamel run stays in the millisecond range. *)
    let setting =
      List.nth sweep.settings (List.length sweep.settings / 2)
    in
    let setting = { setting with total = 2000 } in
    let rng = Rng.create 5150 in
    let data = Synthetic.generate rng (Exp_config.workload setting) in
    Test.make
      ~name:(Printf.sprintf "T%s:%s-trial-%s" suffix sweep.id
               (Exp_runner.policy_name kind))
      (Staged.stage (fun () ->
           ignore (Exp_runner.trial_run ~rng ~setting ~data kind)))
  in
  let opt_test (sweep : Exp_config.sweep) suffix =
    let setting =
      List.nth sweep.settings (List.length sweep.settings / 2)
    in
    Test.make
      ~name:(Printf.sprintf "T%s:%s-solve" suffix sweep.id)
      (Staged.stage (fun () -> ignore (Exp_runner.solve_setting setting)))
  in
  (* T1–T5: optimizer solves; T6–T10: trial runs. *)
  let opt_benches =
    List.mapi
      (fun i sweep -> opt_test sweep (string_of_int (i + 1)))
      Exp_config.all_sweeps
  in
  let trial_benches =
    List.mapi
      (fun i sweep ->
        trial_test sweep (string_of_int (i + 6)) Exp_runner.Qaq)
      Exp_config.all_sweeps
  in
  let rng = Rng.create 31337 in
  let data = Synthetic.generate rng (Synthetic.config ~total:10000 ()) in
  let core_benches =
    [
      Test.make ~name:"core:operator-scan-10k"
        (Staged.stage (fun () ->
             ignore
               (Operator.run ~rng ~instance:Synthetic.instance
                  ~probe:(Probe_driver.scalar Synthetic.probe)
                  ~policy:Policy.stingy ~collect:false
                  ~requirements:
                    (Quality.requirements ~precision:0.9 ~recall:0.5
                       ~laxity:50.0)
                  (Operator.source_of_array data))));
      Test.make ~name:"core:paa-distance-bounds"
        (let series =
           Time_series.random_walk rng ~length:512 ~start:0.0 ~step_stddev:1.0
         in
         let sketch = Paa.compress ~segments:16 series in
         let q =
           Time_series.random_walk rng ~length:512 ~start:0.0 ~step_stddev:1.0
         in
         Staged.stage (fun () -> ignore (Paa.distance_bounds sketch q)));
      Test.make ~name:"core:predicate-classify"
        (let belief = Uncertain.interval 10.0 20.0 in
         let pred = Predicate.(ge 12.0 &&& le 25.0) in
         Staged.stage (fun () -> ignore (Predicate.classify pred belief)));
      Test.make ~name:"core:band-join-100x100"
        (let jrng = Rng.create 1999 in
         let gen () =
           Interval_data.uniform_intervals jrng ~n:100
             ~value_range:(Interval.make 0.0 100.0) ~max_width:10.0
         in
         let left = gen () and right = gen () in
         let requirements =
           Quality.requirements ~precision:0.9 ~recall:0.5 ~laxity:8.0
         in
         Staged.stage (fun () ->
             ignore
               (Band_join.run ~rng:jrng ~collect:false ~requirements
                  ~epsilon:5.0 ~left ~right ())));
      Test.make ~name:"core:interval-index-query"
        (let irng = Rng.create 2001 in
         let records =
           Interval_data.uniform_intervals irng ~n:20000
             ~value_range:(Interval.make 0.0 1000.0) ~max_width:30.0
         in
         let idx =
           Interval_index.build records
             ~support:(fun (r : Interval_data.record) ->
               Uncertain.support r.belief)
         in
         let pred = Predicate.ge 900.0 in
         Staged.stage (fun () -> ignore (Interval_index.candidate_count idx pred)));
    ]
  in
  opt_benches @ trial_benches @ core_benches

let run_micro () =
  let open Bechamel in
  section "Bechamel micro-benchmarks";
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) ~kde:(Some 50) ()
  in
  let tests = micro_tests () in
  List.iter
    (fun test ->
      List.iter
        (fun (name, result) ->
          let ols =
            Analyze.one
              (Analyze.ols ~bootstrap:0 ~r_square:false
                 ~predictors:[| Measure.run |])
              (Toolkit.Instance.monotonic_clock) result
          in
          match Analyze.OLS.estimates ols with
          | Some [ ns ] -> Printf.printf "%-32s %12.0f ns/run\n%!" name ns
          | Some _ | None -> Printf.printf "%-32s (no estimate)\n%!" name)
        (Benchmark.all cfg instances (Test.make_grouped ~name:"g" [ test ])
        |> Hashtbl.to_seq |> List.of_seq))
    tests

(* ------------------------------------------------------------------ *)
(* Anytime: budget sweep with monotonicity and overshoot gates         *)
(* ------------------------------------------------------------------ *)

(* The anytime contract, checked empirically: sweeping the cost budget
   over a fixed workload and seed, achieved recall and answer size must
   be monotone non-decreasing in the budget, achieved precision must
   hold at every point (precision is never traded for budget), the spend
   must never overshoot the allotment by more than one probe batch, and
   [budget = infinity] must be bit-for-bit the unbudgeted run.  Any
   violation fails the mode — CI runs it as the anytime smoke test. *)
let anytime_bench path =
  section "Anytime: budget sweep";
  print_endline
    "The standard workload runs under a sweep of cost budgets; each\n\
     budgeted run plans via the dual solver, re-solves mid-scan against\n\
     the remaining budget, and stops before overspending.  The mode\n\
     fails on non-monotone quality, any overshoot past one probe batch,\n\
     or an infinity-budget run that differs from the unbudgeted one.";
  let data = standard_workload () in
  let batch = 4 in
  (* Every point runs with adaptivity on: a finite budget forces it
     anyway (mid-scan dual re-solves are part of the contract), so the
     unbudgeted ends of the sweep must use the same machinery for the
     comparison to be apples-to-apples. *)
  let run ?budget label =
    let obs = Obs.create () in
    Engine.execute ~rng:(Rng.create engine_seed) ?budget ~adaptive:true
      ~max_laxity:100.0 ~obs
      ~profile:(Engine.profiling ~label ~oracle:Synthetic.in_exact ())
      ~instance:Synthetic.instance
      ~probe:(Probe_driver.of_scalar ~obs ~batch_size:batch Synthetic.probe)
      ~requirements:standard_requirements data
  in
  let requested_precision = 0.9 and requested_recall = 0.6 in
  let budgets = [ 1_500.0; 4_000.0; 10_000.0; 30_000.0; infinity ] in
  let fingerprint (result : Synthetic.obj Engine.result) =
    ( List.map
        (fun (e : Synthetic.obj Operator.emitted) ->
          (e.Operator.obj.Synthetic.id, e.Operator.precise))
        result.Engine.report.Operator.answer,
      result.Engine.counts,
      result.Engine.report.Operator.guarantees,
      result.Engine.normalized_cost )
  in
  let ok = ref true in
  let fail fmt = Printf.ksprintf (fun m -> ok := false; print_endline m) fmt in
  (* One probe batch is the overshoot the contract allows. *)
  let batch_cost =
    float_of_int batch
    *. (Cost_model.amortize ~batch Cost_model.paper).Cost_model.c_p
  in
  let runs =
    List.map
      (fun b ->
        let label =
          if Float.is_finite b then Printf.sprintf "budget-%.0f" b
          else "budget-inf"
        in
        (b, label, run ~budget:b label))
      budgets
  in
  let achieved_of result =
    match
      (Option.get result.Engine.profile).Profile.audit.Profile.achieved
    with
    | Some a -> a
    | None -> failwith "anytime_bench: engine returned no oracle audit"
  in
  let rows =
    List.map
      (fun (b, label, result) ->
        let s = Option.get result.Engine.budget in
        let a = achieved_of result in
        Printf.printf
          "%-14s spent %8.1f / %8s  target r %.3f%s  answer %4d  achieved \
           p %.3f r %.3f%s\n"
          label s.Engine.spent
          (if Float.is_finite b then Printf.sprintf "%.0f" b else "inf")
          s.Engine.target_recall
          (if s.Engine.budget_limited then " (limited)" else "")
          result.Engine.report.Operator.answer_size
          a.Profile.achieved_precision a.Profile.achieved_recall
          (if s.Engine.stopped_early then "  stopped early" else "");
        if s.Engine.spent > s.Engine.allotted +. batch_cost then
          fail "OVERSHOOT (%s): spent %.1f > allotted %.1f + one batch %.1f"
            label s.Engine.spent s.Engine.allotted batch_cost;
        if a.Profile.achieved_precision < requested_precision -. 1e-9 then
          fail "PRECISION LOST (%s): achieved %.3f < requested %.3f" label
            a.Profile.achieved_precision requested_precision;
        Printf.sprintf
          "    { \"label\": %S, \"budget\": %s, \"spent\": %.6g, \
           \"remaining\": %s, \"target_recall\": %.6g, \"budget_limited\": \
           %b, \"budget_replans\": %d, \"stopped_early\": %b, \
           \"answer_size\": %d, \"achieved_precision\": %.6g, \
           \"achieved_recall\": %.6g, \"normalized_cost\": %.6g }"
          label
          (if Float.is_finite b then Printf.sprintf "%.6g" b else "null")
          s.Engine.spent
          (if Float.is_finite s.Engine.remaining then
             Printf.sprintf "%.6g" s.Engine.remaining
           else "null")
          s.Engine.target_recall s.Engine.budget_limited
          s.Engine.budget_replans s.Engine.stopped_early
          result.Engine.report.Operator.answer_size
          a.Profile.achieved_precision a.Profile.achieved_recall
          result.Engine.normalized_cost)
      runs
  in
  (* Monotonicity along the sweep: recall and answer size never drop as
     the budget grows. *)
  let rec monotone = function
    | (_, lo_label, lo) :: ((_, hi_label, hi) :: _ as rest) ->
        let lo_a = achieved_of lo and hi_a = achieved_of hi in
        if lo_a.Profile.achieved_recall > hi_a.Profile.achieved_recall +. 1e-9
        then
          fail "NON-MONOTONE recall: %s %.3f > %s %.3f" lo_label
            lo_a.Profile.achieved_recall hi_label hi_a.Profile.achieved_recall;
        if
          lo.Engine.report.Operator.answer_size
          > hi.Engine.report.Operator.answer_size
        then
          fail "NON-MONOTONE answer size: %s %d > %s %d" lo_label
            lo.Engine.report.Operator.answer_size hi_label
            hi.Engine.report.Operator.answer_size;
        monotone rest
    | _ -> ()
  in
  monotone runs;
  (* The top of the sweep must actually reach the requested recall, or
     the monotonicity gate is vacuous. *)
  let _, _, top = List.nth runs (List.length runs - 1) in
  if (achieved_of top).Profile.achieved_recall < requested_recall -. 1e-9 then
    fail "SWEEP TOO SHALLOW: infinite budget achieved %.3f < requested %.3f"
      (achieved_of top).Profile.achieved_recall requested_recall;
  (* budget = infinity is the unbudgeted run, bit for bit. *)
  let unbudgeted = run "unbudgeted" in
  if fingerprint top <> fingerprint unbudgeted then
    fail "INFINITY MISMATCH: budget = infinity differs from the unbudgeted run";
  write_bench_json ~path ~bench:"anytime-budget-sweep"
    ~fields:
      [
        ("passed", string_of_bool !ok);
        ("requested_precision", Printf.sprintf "%.6g" requested_precision);
        ("requested_recall", Printf.sprintf "%.6g" requested_recall);
        ("batch", string_of_int batch);
      ]
    ~rows;
  Printf.printf "anytime contract holds across the sweep: %s\n"
    (if !ok then "yes" else "NO");
  if not !ok then exit 1

(* ------------------------------------------------------------------ *)
(* Server: cross-query broker throughput under concurrency            *)
(* ------------------------------------------------------------------ *)

(* The QaQ server scenario: several clients run the same-shape query
   (own seed, same dataset, same quality) against one probe backend
   with real per-batch latency.  The serial baseline gives every query
   its own direct driver — each probe is paid again, query after query.
   The swept configurations share a [Probe_broker]: overlapping probe
   sets are charged once, partial flushes pack into full batches, and
   [Engine.execute_many] overlaps one query's classification with
   another's backend wait.

   Gates (exit 1): at concurrency 8 the shared path must run at least
   1.3x the serial queries/sec; at every level the broker must charge
   strictly fewer backend probes than the solo runs paid in total; and
   every query's result must be bit-for-bit its solo run — same answer,
   same guarantees, same per-query accounting — with requirements met. *)
let server_bench path =
  section "Server: cross-query probe broker concurrency sweep";
  print_endline
    "8 clients, one shared dataset, 10 ms of real backend latency per\n\
     probe batch (the probe-bound regime a broker exists for).  serial\n\
     = solo drivers back to back; the sweep runs the same queries\n\
     through one shared broker on 1/2/4/8 domains.";
  let data = standard_workload () in
  let n_clients = 8 in
  let batch = 8 in
  let probe_seconds = 0.010 in
  let resolve objs =
    Unix.sleepf probe_seconds;
    Array.map (fun o -> Probe_driver.Resolved (Synthetic.probe o)) objs
  in
  let seeds = Array.init n_clients (fun i -> engine_seed + i) in
  let fingerprint (r : Synthetic.obj Engine.result) =
    let report = r.Engine.report in
    ( List.map
        (fun e -> (e.Operator.obj.Synthetic.id, e.Operator.precise))
        report.Operator.answer,
      report.Operator.guarantees,
      r.Engine.counts )
  in
  let ok = ref true in
  let fail fmt = Printf.ksprintf (fun m -> ok := false; print_endline m) fmt in
  let t0 = Unix.gettimeofday () in
  let solo =
    Array.map
      (fun seed ->
        Engine.execute ~rng:(Rng.create seed) ~max_laxity:100.0 ~domains:1
          ~instance:Synthetic.instance
          ~probe:(Probe_driver.create_outcomes ~batch_size:batch resolve)
          ~requirements:standard_requirements data)
      seeds
  in
  let serial_seconds = Unix.gettimeofday () -. t0 in
  let solo_probes =
    Array.fold_left
      (fun acc r -> acc + r.Engine.counts.Cost_meter.probes)
      0 solo
  in
  let serial_qps = float_of_int n_clients /. serial_seconds in
  Printf.printf
    "serial (direct drivers): %.3f s, %.2f queries/s, %d probes paid\n"
    serial_seconds serial_qps solo_probes;
  let speedup_at_8 = ref 0.0 in
  let rows =
    List.map
      (fun domains ->
        let broker =
          Probe_broker.create ~batch_size:batch
            ~key:(fun (o : Synthetic.obj) -> o.Synthetic.id)
            resolve
        in
        let queries =
          Array.mapi
            (fun i seed ->
              Engine.query ~rng:(Rng.create seed) ~max_laxity:100.0
                ~instance:Synthetic.instance
                ~probe:
                  (Probe_broker.client
                     ~tenant:(Printf.sprintf "c%d" i)
                     broker)
                ~requirements:standard_requirements data)
            seeds
        in
        let t0 = Unix.gettimeofday () in
        let results = Engine.execute_many ~domains queries in
        let seconds = Unix.gettimeofday () -. t0 in
        let qps = float_of_int n_clients /. seconds in
        let speedup = serial_seconds /. seconds in
        if domains = 8 then speedup_at_8 := speedup;
        let stats = Probe_broker.stats broker in
        let identical =
          Array.for_all2
            (fun a b -> fingerprint a = fingerprint b)
            solo results
        in
        let met =
          Array.for_all
            (fun r -> r.Engine.degradation.Engine.requirements_met)
            results
        in
        if not identical then
          fail "NOT IDENTICAL at %d domains: broker runs differ from solo"
            domains;
        if not met then
          fail "REQUIREMENTS MISSED at %d domains" domains;
        if stats.Probe_broker.charged >= solo_probes then
          fail "NO PROBE SAVING at %d domains: broker charged %d >= solo %d"
            domains stats.Probe_broker.charged solo_probes;
        Printf.printf
          "domains %d: %.3f s, %6.2f queries/s (%.2fx), charged %d, \
           coalesced %d, fresh %d, %d batches%s\n"
          domains seconds qps speedup stats.Probe_broker.charged
          stats.Probe_broker.coalesced stats.Probe_broker.fresh_hits
          stats.Probe_broker.batches
          (if identical then "" else "  [MISMATCH]");
        Printf.sprintf
          "    { \"concurrency\": %d, \"seconds\": %.6f, \"qps\": %.3f, \
           \"speedup\": %.3f, \"charged\": %d, \"coalesced\": %d, \
           \"fresh_hits\": %d, \"batches\": %d, \"identical\": %b, \
           \"requirements_met\": %b }"
          domains seconds qps speedup stats.Probe_broker.charged
          stats.Probe_broker.coalesced stats.Probe_broker.fresh_hits
          stats.Probe_broker.batches identical met)
      [ 1; 2; 4; 8 ]
  in
  if !speedup_at_8 < 1.3 then
    fail "TOO SLOW: %.2fx at 8 domains (gate: >= 1.3x over serial)"
      !speedup_at_8;
  write_bench_json ~path ~bench:"server-broker-concurrency"
    ~fields:
      [
        ("passed", string_of_bool !ok);
        ("clients", string_of_int n_clients);
        ("batch", string_of_int batch);
        ("probe_ms", Printf.sprintf "%.3f" (probe_seconds *. 1000.0));
        ("serial_seconds", Printf.sprintf "%.6f" serial_seconds);
        ("serial_qps", Printf.sprintf "%.3f" serial_qps);
        ("solo_probes", string_of_int solo_probes);
      ]
    ~rows;
  Printf.printf "server concurrency gates hold: %s\n"
    (if !ok then "yes" else "NO");
  if not !ok then exit 1

(* ------------------------------------------------------------------ *)
(* Telemetry: live-telemetry overhead on the server scenario          *)
(* ------------------------------------------------------------------ *)

(* The server-bench workload (8 clients, one shared broker, 10 ms of
   real backend latency per batch) run twice at 8 domains: once bare,
   once with the full live-telemetry stack on — per-query trace
   contexts stamped on engine and broker events, a flight recorder on
   the shared trace path, rolling per-tenant SLO windows fed from every
   result.  Gates (exit 1): the telemetry run must be bit-for-bit
   identical to the bare run (telemetry is read-only), and it may cost
   at most 5% throughput.  A forced-fault mini-run (permanent backend
   failures tripping a breaker) then produces the sample
   flight-recorder dump uploaded as a CI artifact. *)
let telemetry_bench path ~dump:dump_path =
  section "Telemetry: live-telemetry overhead on the server scenario";
  let data = standard_workload () in
  let n_clients = 8 in
  let batch = 8 in
  let domains = 8 in
  let probe_seconds = 0.010 in
  let resolve objs =
    Unix.sleepf probe_seconds;
    Array.map (fun o -> Probe_driver.Resolved (Synthetic.probe o)) objs
  in
  let seeds = Array.init n_clients (fun i -> engine_seed + i) in
  let fingerprint (r : Synthetic.obj Engine.result) =
    let report = r.Engine.report in
    ( List.map
        (fun e -> (e.Operator.obj.Synthetic.id, e.Operator.precise))
        report.Operator.answer,
      report.Operator.guarantees,
      r.Engine.counts )
  in
  let ok = ref true in
  let fail fmt = Printf.ksprintf (fun m -> ok := false; print_endline m) fmt in
  let run ~telemetry =
    let obs, recorder, slo =
      if telemetry then
        let recorder = Flight_recorder.create ~capacity:256 () in
        let obs = Obs.create ~trace:(Flight_recorder.sink recorder) () in
        (Some obs, Some recorder, Some (Slo.create ()))
      else (None, None, None)
    in
    let broker =
      Probe_broker.create ?obs ~batch_size:batch
        ~key:(fun (o : Synthetic.obj) -> o.Synthetic.id)
        resolve
    in
    let queries =
      Array.mapi
        (fun i seed ->
          let tenant = Printf.sprintf "c%d" i in
          let trace_id = Engine.next_trace_id () in
          let client_obs =
            Option.map
              (fun o ->
                Obs.with_context o
                  { Trace.query = Some trace_id; tenant = Some tenant })
              obs
          in
          Engine.query ~rng:(Rng.create seed) ~max_laxity:100.0
            ~instance:Synthetic.instance
            ~probe:(Probe_broker.client ?obs:client_obs ~tenant broker)
            ?obs ~tenant ~trace_id ~requirements:standard_requirements data)
        seeds
    in
    let t0 = Unix.gettimeofday () in
    let results = Engine.execute_many ~domains queries in
    let seconds = Unix.gettimeofday () -. t0 in
    (match slo with
    | Some slo ->
        Array.iteri
          (fun i r ->
            Slo.observe slo
              {
                Slo.tenant = Printf.sprintf "c%d" i;
                latency_seconds = r.Engine.elapsed_seconds;
                probes = r.Engine.counts.Cost_meter.probes;
                degraded = Engine.degraded r;
                rejections = 0;
                shortfall = not r.Engine.degradation.Engine.requirements_met;
              })
          results
    | None -> ());
    (results, seconds, recorder, slo)
  in
  let bare, bare_seconds, _, _ = run ~telemetry:false in
  let live, live_seconds, recorder, slo = run ~telemetry:true in
  let identical = Array.for_all2 (fun a b -> fingerprint a = fingerprint b) bare live in
  if not identical then
    fail "NOT IDENTICAL: telemetry run differs from the bare run";
  let overhead = (live_seconds -. bare_seconds) /. bare_seconds in
  let recorded =
    match recorder with Some r -> Flight_recorder.recorded r | None -> 0
  in
  let slo_requests =
    match slo with Some s -> (Slo.overall s).Slo.r_requests | None -> 0.0
  in
  Printf.printf
    "bare:      %.3f s, %.2f queries/s\n\
     telemetry: %.3f s, %.2f queries/s (%+.1f%% time, %d events recorded, \
     %g requests windowed)\n"
    bare_seconds
    (float_of_int n_clients /. bare_seconds)
    live_seconds
    (float_of_int n_clients /. live_seconds)
    (overhead *. 100.0) recorded slo_requests;
  if overhead > 0.05 then
    fail "TOO SLOW: telemetry costs %.1f%% (gate: <= 5%%)" (overhead *. 100.0);
  (* The sample anomaly dump: a permanently failing backend behind a
     breaker; the trip auto-dumps the failing query's ring. *)
  let dump_recorder = Flight_recorder.create ~capacity:256 () in
  let dump_obs = Obs.create ~trace:(Flight_recorder.sink dump_recorder) () in
  let inj =
    Fault_plan.injector ~site:"bench-telemetry"
      (Fault_plan.make ~seed:1337 ~permanent_rate:1.0 ())
  in
  let failing objs =
    Array.map
      (fun _ ->
        let el = Fault_plan.fresh_element inj in
        ignore (Fault_plan.attempt inj el ~round:0);
        Probe_driver.Failed { attempts = 1 })
      objs
  in
  let fbroker =
    Probe_broker.create ~obs:dump_obs
      ~breaker:(Circuit_breaker.create ~obs:dump_obs ())
      ~batch_size:batch
      ~key:(fun (o : Synthetic.obj) -> o.Synthetic.id)
      failing
  in
  let trace_id = Engine.next_trace_id () in
  let ctx = { Trace.query = Some trace_id; tenant = Some "bench" } in
  let fquery =
    Engine.query ~rng:(Rng.create engine_seed) ~max_laxity:100.0
      ~instance:Synthetic.instance
      ~probe:
        (Probe_broker.client
           ~obs:(Obs.with_context dump_obs ctx)
           ~tenant:"bench" fbroker)
      ~obs:dump_obs ~tenant:"bench" ~trace_id
      ~requirements:standard_requirements data
  in
  ignore (Engine.execute_many ~domains:1 [| fquery |]);
  let dumps = Flight_recorder.dumps dump_recorder in
  (match
     List.find_opt (fun d -> d.Flight_recorder.reason = "breaker-open") dumps
   with
  | Some d ->
      let oc = open_out dump_path in
      output_string oc (Flight_recorder.dump_to_json d);
      close_out oc;
      Printf.printf
        "sample dump: %s (reason %s, query %s, %d events) written to %s\n"
        (Flight_recorder.dump_filename d)
        d.Flight_recorder.reason
        (match d.Flight_recorder.query with
        | Some q -> string_of_int q
        | None -> "-")
        (List.length d.Flight_recorder.events)
        dump_path
  | None -> fail "NO DUMP: the forced fault never tripped the breaker");
  write_bench_json ~path ~bench:"telemetry-overhead"
    ~fields:
      [
        ("passed", string_of_bool !ok);
        ("clients", string_of_int n_clients);
        ("batch", string_of_int batch);
        ("domains", string_of_int domains);
        ("probe_ms", Printf.sprintf "%.3f" (probe_seconds *. 1000.0));
        ("overhead_gate", "0.05");
      ]
    ~rows:
      [
        Printf.sprintf
          "    { \"mode\": \"bare\", \"seconds\": %.6f, \"qps\": %.3f }"
          bare_seconds
          (float_of_int n_clients /. bare_seconds);
        Printf.sprintf
          "    { \"mode\": \"telemetry\", \"seconds\": %.6f, \"qps\": %.3f, \
           \"overhead\": %.4f, \"identical\": %b, \"events_recorded\": %d }"
          live_seconds
          (float_of_int n_clients /. live_seconds)
          overhead identical recorded;
      ];
  Printf.printf "telemetry gates hold: %s\n" (if !ok then "yes" else "NO");
  if not !ok then exit 1

(* ------------------------------------------------------------------ *)
(* Cascade: tiered probe economics under a proxy hit-rate sweep        *)
(* ------------------------------------------------------------------ *)

(* A cheap interval-shrinking proxy in front of the oracle, swept over
   proxy effectiveness (the fraction of probed objects the narrowed
   interval settles under the query), plus a leg with the proxy
   permanently down.  The requirements force a full scan — a recall
   guarantee of 1.0 is only reachable once nothing is unseen — and the
   fixed plan probes every YES and MAYBE candidate, so every leg must
   return the same answer ids whatever tier settled each object.  The
   mode fails unless the answers agree, every leg meets its guarantees
   with a reconciled meter, and the 90%-effective proxy beats the
   oracle-only total metered cost by at least 1.5x. *)
let cascade_bench path =
  section "Cascade: tiered probes vs the oracle";
  print_endline
    "A shrink proxy (c_p = 0.05, B = 32) fronts the oracle (c_p = 1,\n\
     B = 8), swept over proxy effectiveness 0/50/90% plus a forced\n\
     proxy outage.  Full-scan probe-everything requirements make the\n\
     answer tier-independent; the gate demands identical answers,\n\
     guarantees met on every leg, and a >= 1.5x win at 90%.";
  let pred = Predicate.ge 60.0 in
  let data =
    Interval_data.uniform_intervals (Rng.create 808) ~n:4000
      ~value_range:(Interval.make 0.0 100.0) ~max_width:30.0
  in
  let requirements =
    Quality.requirements ~precision:0.9 ~recall:1.0 ~laxity:25.0
  in
  (* s3 = s5 = 0 probes every MAYBE; p_py = 1 probes every wide YES.
     No decision is randomised away, so each leg makes the same calls. *)
  let probe_everything = Policy.params ~s3:0.0 ~s5:0.0 ~p_py:1.0 ~p_fm:0.0 in
  (* Reads priced near zero: the gate is about probe economics. *)
  let cost =
    Cost_model.make ~c_r:0.01 ~c_p:1.0 ~c_b:5.0 ~c_wi:0.1 ~c_wp:0.1 ()
  in
  let specs ~power =
    [|
      {
        Probe_tier.name = "proxy";
        kind = Probe_tier.Shrink { power };
        c_p = 0.05;
        c_b = 0.5;
        batch = 32;
      };
      {
        Probe_tier.name = "oracle";
        kind = Probe_tier.Resolve;
        c_p = 1.0;
        c_b = 5.0;
        batch = 8;
      };
    |]
  in
  let execute ~label ~obs ?probe ?cascade () =
    Engine.execute ~rng:(Rng.create 809) ~max_laxity:30.0
      ~planning:(Engine.Fixed probe_everything) ~cost ~batch:8 ~obs
      ~profile:(Engine.profiling ~label ~oracle:(Interval_data.in_exact pred) ())
      ~instance:(Interval_data.instance pred) ?probe ?cascade ~requirements
      data
  in
  let run ~label kind =
    let obs = Obs.create () in
    match kind with
    | `Oracle_only ->
        let source = Probe_source.create ~obs Interval_data.probe in
        let result =
          execute ~label ~obs
            ~probe:(Probe_source.driver ~obs ~batch_size:8 source)
            ()
        in
        (label, result, [||])
    | `Tiered power ->
        let cascade, _sources =
          Tiered.of_functions ~obs ~specs:(specs ~power)
            ~narrow:Interval_data.shrink ~resolve:Interval_data.probe ()
        in
        let result = execute ~label ~obs ~cascade () in
        (label, result, Cascade.stats cascade)
    | `Proxy_outage power ->
        let sources =
          [|
            Probe_source.create ~obs ~tier:"proxy" ~max_retries:0
              ~faults:(Fault_plan.make ~seed:811 ~permanent_rate:1.0 ())
              (fun o -> Interval_data.shrink ~power o);
            Probe_source.create ~obs ~tier:"oracle" Interval_data.probe;
          |]
        in
        let cascade = Tiered.cascade ~obs ~specs:(specs ~power) sources in
        let result = execute ~label ~obs ~cascade () in
        (label, result, Cascade.stats cascade)
  in
  let legs =
    [
      run ~label:"oracle-only" `Oracle_only;
      run ~label:"proxy-0" (`Tiered 0.0);
      run ~label:"proxy-50" (`Tiered 0.5);
      run ~label:"proxy-90" (`Tiered 0.9);
      run ~label:"proxy-outage" (`Proxy_outage 0.9);
    ]
  in
  let ids (r : Interval_data.record Engine.result) =
    List.sort compare
      (List.map
         (fun (e : Interval_data.record Operator.emitted) ->
           e.Operator.obj.Interval_data.id)
         r.Engine.report.Operator.answer)
  in
  let cost_of (_, (r : Interval_data.record Engine.result), _) =
    r.Engine.normalized_cost
  in
  let reference_ids = ids (match legs with (_, r, _) :: _ -> r | [] -> assert false) in
  let quality_ok (r : Interval_data.record Engine.result) =
    Quality.meets r.Engine.report.Operator.guarantees requirements
    && match r.Engine.profile with
       | Some p -> Profile.passed p
       | None -> false
  in
  let all_identical = ref true and all_quality = ref true in
  let rows =
    List.map
      (fun (label, result, tiers) ->
        let identical = ids result = reference_ids in
        let quality = quality_ok result in
        if not identical then all_identical := false;
        if not quality then all_quality := false;
        let tier_summary =
          Array.to_list tiers
          |> List.map (fun (s : Cascade.stats) ->
                 Printf.sprintf
                   "{ \"name\": %S, \"probes\": %d, \"shrinks\": %d, \
                    \"failovers\": %d, \"batches\": %d }"
                   s.Cascade.st_name s.Cascade.st_probes s.Cascade.st_shrinks
                   s.Cascade.st_failovers s.Cascade.st_batches)
          |> String.concat ", "
        in
        Printf.printf
          "%-14s W/|T| = %8.4f  probes %5d  batches %4d  answer %4d  %s%s\n"
          label result.Engine.normalized_cost result.Engine.counts.probes
          result.Engine.counts.batches result.Engine.report.answer_size
          (if quality then "guarantees ok" else "GUARANTEES MISSED")
          (if identical then "" else "  ANSWER DIVERGED");
        Printf.sprintf
          "    { \"label\": %S, \"normalized_cost\": %.6f, \"probes\": %d, \
           \"batches\": %d, \"answer\": %d, \"guarantees_met\": %b, \
           \"identical_answer\": %b, \"tiers\": [ %s ] }"
          label result.Engine.normalized_cost result.Engine.counts.probes
          result.Engine.counts.batches result.Engine.report.answer_size
          quality identical tier_summary)
      legs
  in
  let oracle_cost = cost_of (List.nth legs 0) in
  let tiered90_cost = cost_of (List.nth legs 3) in
  let ratio = oracle_cost /. tiered90_cost in
  let gate = ratio >= 1.5 && !all_identical && !all_quality in
  write_bench_json ~path ~bench:"cascade-tier-sweep"
    ~fields:
      [
        ("records", string_of_int (Array.length data));
        ("gate_min_ratio", "1.5");
        ("oracle_over_proxy90_ratio", Printf.sprintf "%.4f" ratio);
        ("all_answers_identical", string_of_bool !all_identical);
        ("all_guarantees_met", string_of_bool !all_quality);
        ("passed", string_of_bool gate);
      ]
    ~rows;
  Printf.printf
    "oracle-only / proxy-90 cost ratio: %.2fx (gate >= 1.50x)\n\
     answers identical on every leg: %s\n\
     guarantees met on every leg: %s\n\
     cascade gate: %s\n"
    ratio
    (if !all_identical then "yes" else "NO")
    (if !all_quality then "yes" else "NO")
    (if gate then "PASS" else "FAIL");
  if not gate then exit 1

(* ------------------------------------------------------------------ *)

let () =
  let mode = if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" in
  let tables () = reproduction_tables () in
  let ablations () =
    ablation_density ();
    ablation_ambiguity ();
    ablation_index ();
    ablation_join ();
    ablation_adaptive ();
    ablation_top_k ();
    ablation_relation ();
    ablation_batching ();
    generality_models ()
  in
  match mode with
  | "tables" -> tables ()
  | "ablations" -> ablations ()
  | "batch" -> ablation_batching ()
  | "micro" -> run_micro ()
  | "metrics" ->
      metrics_dump
        (if Array.length Sys.argv > 2 then Sys.argv.(2)
         else "BENCH_metrics.json")
  | "scaling" ->
      scaling_bench
        (if Array.length Sys.argv > 2 then Sys.argv.(2)
         else "BENCH_scaling.json")
  | "profile" ->
      profile_bench
        (if Array.length Sys.argv > 2 then Sys.argv.(2)
         else "BENCH_profile.json")
        ~trace:
          (if Array.length Sys.argv > 3 then Sys.argv.(3)
           else "BENCH_trace.json")
  | "faults" ->
      faults_bench
        (if Array.length Sys.argv > 2 then Sys.argv.(2)
         else "BENCH_faults.json")
  | "columnar" ->
      columnar_bench
        (if Array.length Sys.argv > 2 then Sys.argv.(2)
         else "BENCH_columnar.json")
  | "anytime" ->
      anytime_bench
        (if Array.length Sys.argv > 2 then Sys.argv.(2)
         else "BENCH_anytime.json")
  | "server" ->
      server_bench
        (if Array.length Sys.argv > 2 then Sys.argv.(2)
         else "BENCH_server.json")
  | "telemetry" ->
      telemetry_bench
        (if Array.length Sys.argv > 2 then Sys.argv.(2)
         else "BENCH_telemetry.json")
        ~dump:
          (if Array.length Sys.argv > 3 then Sys.argv.(3)
           else "BENCH_flight_dump.json")
  | "cascade" ->
      cascade_bench
        (if Array.length Sys.argv > 2 then Sys.argv.(2)
         else "BENCH_cascade.json")
  | "all" ->
      tables ();
      ablations ();
      run_micro ()
  | other ->
      Printf.eprintf
        "unknown mode %S (expected \
         tables|ablations|batch|micro|metrics|scaling|profile|faults|columnar|anytime|server|telemetry|cascade|all)\n"
        other;
      exit 2
