type budget = { allotted : float; spent : unit -> float }

type t = {
  rng : Rng.t;
  total : int;
  max_laxity : float;
  requirements : Quality.requirements;
  cost : Cost_model.t;
  batch : int;
  tiers : Probe_tier.spec array option;
  replan_every : int;
  max_replans : int;
  budget : budget option;
  mutable params : Policy.params;
  mutable yes_seen : int;
  mutable maybe_seen : int;
  mutable observed : int;  (* yes_seen + maybe_seen *)
  mutable next_replan_at : int;  (* in reads, from the counters *)
  mutable replans : int;
  mutable budget_replans : int;  (* re-solves through the dual *)
  yes_laxity : Histogram.Hist1d.t;
  maybe_plane : Histogram.Hist2d.t;
  obs : Obs.t option;
  m_replans : Metrics.counter option;
  m_budget_replans : Metrics.counter option;
}

let default_initial ~total ~max_laxity ~requirements ~cost ~batch ~tiers =
  let spec = Region_model.uniform_spec ~f_y:0.2 ~f_m:0.2 ~max_laxity in
  (Solver.solve
     (Solver.problem ~total ~spec ~requirements ~cost ~batch ?tiers ()))
    .params

let create ~rng ~total ~max_laxity ~requirements ?(cost = Cost_model.paper)
    ?(batch = 1) ?tiers ?(replan_every = 500) ?(max_replans = 8) ?budget
    ?initial ?obs () =
  if total <= 0 then invalid_arg "Adaptive.create: total <= 0";
  if batch < 1 then invalid_arg "Adaptive.create: batch < 1";
  if replan_every < 1 then invalid_arg "Adaptive.create: replan_every < 1";
  if max_replans < 0 then invalid_arg "Adaptive.create: max_replans < 0";
  Option.iter Probe_tier.validate tiers;
  let initial =
    match initial with
    | Some p -> p
    | None ->
        default_initial ~total ~max_laxity ~requirements ~cost ~batch ~tiers
  in
  {
    rng;
    total;
    max_laxity;
    requirements;
    cost;
    batch;
    tiers;
    replan_every;
    max_replans;
    budget;
    params = initial;
    yes_seen = 0;
    maybe_seen = 0;
    observed = 0;
    next_replan_at = replan_every;
    replans = 0;
    budget_replans = 0;
    yes_laxity = Histogram.Hist1d.create ~lo:0.0 ~hi:max_laxity ~bins:20;
    maybe_plane =
      Histogram.Hist2d.create ~x_lo:0.0 ~x_hi:1.0 ~x_bins:20 ~y_lo:0.0
        ~y_hi:max_laxity ~y_bins:20;
    obs;
    m_replans = Option.map (fun o -> Obs.counter o Obs.Keys.replans) obs;
    m_budget_replans =
      Option.map (fun o -> Obs.counter o Obs.Keys.budget_replans) obs;
  }

let observe t ~verdict ~laxity ~success =
  match (verdict : Tvl.t) with
  | Tvl.Yes ->
      t.yes_seen <- t.yes_seen + 1;
      t.observed <- t.observed + 1;
      Histogram.Hist1d.add t.yes_laxity laxity
  | Tvl.Maybe ->
      t.maybe_seen <- t.maybe_seen + 1;
      t.observed <- t.observed + 1;
      Histogram.Hist2d.add t.maybe_plane ~x:success ~y:laxity
  | Tvl.No -> ()

let replan t ~reads =
  if reads > 0 && t.observed > 0 then begin
    let reads_f = float_of_int reads in
    let estimate : Selectivity.estimate =
      {
        f_y = float_of_int t.yes_seen /. reads_f;
        f_m = float_of_int t.maybe_seen /. reads_f;
        max_laxity = t.max_laxity;
        sample_size = reads;
        yes_laxity = t.yes_laxity;
        maybe_plane = t.maybe_plane;
      }
    in
    let spec =
      Region_model.spec ~f_y:estimate.f_y ~f_m:estimate.f_m
        ~max_laxity:t.max_laxity
        ~density:(Density.of_estimate estimate)
    in
    let solve () =
      match t.budget with
      | None ->
          let problem =
            Solver.problem ~total:t.total ~spec ~requirements:t.requirements
              ~cost:t.cost ~batch:t.batch ?tiers:t.tiers ()
          in
          (Solver.solve problem).params
      | Some b ->
          (* Budgeted run: re-solve the dual over the remaining scan
             against whatever budget is left on the live meter, assuming
             the observed (s, l) density is stationary.  A mis-estimated
             selectivity then degrades the recall target gracefully
             instead of blowing the budget. *)
          let remaining_total = Int.max 1 (t.total - reads) in
          let remaining_budget = Float.max 0.0 (b.allotted -. b.spent ()) in
          let problem =
            Solver.problem ~total:remaining_total ~spec
              ~requirements:t.requirements ~cost:t.cost ~batch:t.batch
              ?tiers:t.tiers ()
          in
          t.budget_replans <- t.budget_replans + 1;
          (match t.m_budget_replans with
          | Some m -> Metrics.incr m
          | None -> ());
          (Solver.solve_dual ~budget:remaining_budget problem).d_params
    in
    t.params <-
      (match t.obs with
      | None -> solve ()
      | Some o -> Obs.span o "adaptive-reestimate" solve);
    t.replans <- t.replans + 1;
    (match t.m_replans with Some m -> Metrics.incr m | None -> ());
    match t.obs with
    | Some o when Obs.tracing o -> Obs.event o (Trace.Replan { reads })
    | Some _ | None -> ()
  end

let policy t =
  Policy.Custom
    (fun ~requirements ~counters ~verdict ~laxity ~success ->
      observe t ~verdict ~laxity ~success;
      let reads = t.total - Counters.unseen counters in
      if reads >= t.next_replan_at && t.replans < t.max_replans then begin
        (* Advance to the smallest window boundary strictly beyond
           [reads]: when reads jump past several windows at once (bulk
           parallel chunks), exactly one re-solve runs — not one per
           skipped window on essentially identical histograms. *)
        t.next_replan_at <- ((reads / t.replan_every) + 1) * t.replan_every;
        replan t ~reads
      end;
      Policy.preference (Policy.Region t.params) ~rng:t.rng ~requirements
        ~counters ~verdict ~laxity ~success)

let current_params t = t.params
let replans t = t.replans
let budget_replans t = t.budget_replans
let observed t = t.observed
