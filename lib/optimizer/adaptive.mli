(** Adaptive re-planning: re-estimate the workload mid-scan and re-solve.

    The paper tunes the region parameters once, from a pre-query sample
    (§4.2.1, §5.2).  When that sample is unrepresentative — too small, or
    the input's composition drifts along the scan — the fixed parameters
    are solved against the wrong workload.  This extension keeps online
    estimates of [f_y], [f_m] and the [(s, l)] density from the objects
    the operator actually reads, and periodically re-solves the §4.2.2
    problem, swapping in the new parameters.

    Every estimate comes for free: the operator classifies every object
    it reads anyway, so no extra reads or probes are spent.  The policy
    plugs in as an ordinary {!Policy.Custom}; Theorem 3.1 enforcement is
    untouched, so adaptivity can only change cost, never correctness. *)

type t

type budget = { allotted : float; spent : unit -> float }
(** A live budget: the total allotted spend and a closure reading the
    spend so far off the engine's {!Cost_meter} (or any other source). *)

val create :
  rng:Rng.t ->
  total:int ->
  max_laxity:float ->
  requirements:Quality.requirements ->
  ?cost:Cost_model.t ->
  ?batch:int ->
  ?tiers:Probe_tier.spec array ->
  ?replan_every:int ->
  ?max_replans:int ->
  ?budget:budget ->
  ?initial:Policy.params ->
  ?obs:Obs.t ->
  unit ->
  t
(** [replan_every] (default 500) objects between re-solves, up to
    [max_replans] (default 8) re-solves.  [initial] (default: the
    solution under the uniform-density assumption with an agnostic
    [f_y = f_m = 0.2] prior) is used until the first re-plan.  [batch]
    (default 1) is the probe batch size the evaluation will use; every
    re-solve prices probes at the amortized [c_p + c_b/batch] so
    mid-scan plans see the same cost surface as the initial one.
    [tiers] (default absent) is the probe cascade the evaluation will
    run through: when given, every solve — the default [initial]
    included — prices probes at the cascade's strategy price instead
    ({!Solver.problem}'s [tiers]).

    With [budget], every re-solve goes through {!Solver.solve_dual}
    instead of the primal: the refreshed [(s, l)] histograms are solved
    over the {e remaining} scan against the {e remaining} budget
    [allotted - spent ()], so a mis-estimated selectivity degrades the
    recall target gracefully instead of blowing the budget.  These dual
    re-solves are additionally counted under [adaptive.budget_replans].

    [obs] counts re-solves under [adaptive.replans], times each under
    the [adaptive-reestimate] span and emits a {!Trace.Replan} event.
    @raise Invalid_argument if [total <= 0], [batch < 1],
    [replan_every < 1] or [max_replans < 0]. *)

val policy : t -> Policy.t
(** The policy to pass to {!Operator.run}. *)

val current_params : t -> Policy.params
(** The parameters currently in force (for inspection/logging). *)

val replans : t -> int
(** Re-solves performed so far. *)

val budget_replans : t -> int
(** Re-solves that went through the dual (budgeted) path; 0 when no
    budget was given. *)

val observed : t -> int
(** YES/MAYBE objects observed so far (NO objects never reach a policy,
    so the estimator infers their share from the operator's read
    count). *)
