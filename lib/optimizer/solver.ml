type problem = {
  total : int;
  spec : Region_model.spec;
  requirements : Quality.requirements;
  cost : Cost_model.t;
  batch : int;
  tiers : Probe_tier.spec array option;
}

let problem ~total ~spec ~requirements ?(cost = Cost_model.paper)
    ?(batch = 1) ?tiers () =
  if total <= 0 then invalid_arg "Solver.problem: total <= 0";
  if batch < 1 then invalid_arg "Solver.problem: batch < 1";
  Option.iter Probe_tier.validate tiers;
  { total; spec; requirements; cost; batch; tiers }

(* The objective prices each probe at its amortized cost c_p + c_b/B:
   the evaluation plan dispatches probes in batches of B, so that is the
   marginal price the §4.2.2 objective must see for plan costs to match
   the metered reality.  Under a tiered cascade the probe price is the
   cascade's optimal strategy price instead — the expected amortized
   spend of starting at the best tier and escalating through residuals
   ({!Probe_tier.select}); the batch surcharge is folded into that
   expectation, so c_b drops to 0 here. *)
let effective_cost t =
  match t.tiers with
  | None -> Cost_model.amortize ~batch:t.batch t.cost
  | Some specs ->
      let plan = Probe_tier.select specs in
      Cost_model.amortize ~batch:1
        { t.cost with Cost_model.c_p = plan.Probe_tier.price; c_b = 0.0 }

type evaluation = {
  params : Policy.params;
  fractions : Region_model.fractions;
  feasible : bool;
  violation : float;
  reads : float;
  read_fraction : float;
  cost : float;
  normalized_cost : float;
  expected_precision : float;
}

(* Boundary optima are the norm (constraints bind at the optimum), so a
   small tolerance keeps them classified feasible under rounding. *)
let tolerance = 1e-9

let evaluate t (params : Policy.params) =
  let req = t.requirements in
  let f = Region_model.fractions t.spec ~laxity_bound:req.laxity params in
  let alpha = Region_model.answer_yes_rate f in
  let beta = Region_model.uncertainty_rate f in
  let precision = Region_model.precision_estimate f in
  let total = float_of_int t.total in
  let r_q = req.recall in
  (* With r_q = 0 nothing is read and the answer is empty, which has
     precision 1 by definition (Eq. 3) — the per-read precision ratio is
     irrelevant then. *)
  let precision_violation =
    if r_q <= 0.0 then 0.0 else Float.max 0.0 (req.precision -. precision)
  in
  let gamma = alpha -. (r_q *. (beta -. 1.0)) in
  let reads, recall_violation =
    if r_q <= 0.0 then (0.0, 0.0)
    else if gamma >= r_q -. tolerance then
      (Float.min total (r_q *. total /. Float.max gamma tolerance), 0.0)
    else (total, r_q -. gamma)
  in
  let violation = precision_violation +. recall_violation in
  let feasible = violation <= tolerance in
  let cost = reads *. Region_model.unit_cost (effective_cost t) f in
  {
    params;
    fractions = f;
    feasible;
    violation;
    reads;
    read_fraction = reads /. total;
    cost;
    normalized_cost = cost /. total;
    expected_precision = precision;
  }

(* Penalised objective: any infeasible point costs more than any feasible
   one, and more violation costs more, so the simplex is pulled back into
   the feasible set. *)
let penalized t params =
  let e = evaluate t params in
  if e.feasible then e.cost
  else begin
    let c = effective_cost t in
    let worst_unit =
      c.Cost_model.c_r +. c.c_p +. c.c_wi +. c.c_wp
    in
    let ceiling = float_of_int t.total *. worst_unit in
    (2.0 *. ceiling) +. (10.0 *. ceiling *. e.violation)
  end

let params_of_vector v =
  let clamp x = Float.min 1.0 (Float.max 0.0 x) in
  Policy.params ~s3:(clamp v.(0)) ~s5:(clamp v.(1)) ~p_py:(clamp v.(2))
    ~p_fm:(clamp v.(3))

let default_seeds =
  let corners = ref [] in
  List.iter
    (fun s3 ->
      List.iter
        (fun s5 ->
          List.iter
            (fun p_py ->
              List.iter
                (fun p_fm ->
                  corners := Policy.params ~s3 ~s5 ~p_py ~p_fm :: !corners)
                [ 0.0; 1.0 ])
            [ 0.0; 1.0 ])
        [ 0.0; 1.0 ])
    [ 0.0; 1.0 ];
  Policy.params ~s3:0.5 ~s5:0.5 ~p_py:0.5 ~p_fm:0.5
  :: Policy.stingy_params :: Policy.greedy_params :: !corners

let better a b =
  (* Prefer feasibility, then cost; among infeasible points, less
     violation, with cost as the tie-break so seed order cannot decide
     which of two equally-violating plans is returned. *)
  match (a.feasible, b.feasible) with
  | true, false -> a
  | false, true -> b
  | true, true -> if a.cost <= b.cost then a else b
  | false, false ->
      if a.violation < b.violation then a
      else if b.violation < a.violation then b
      else if a.cost <= b.cost then a
      else b

let solve ?(seeds = default_seeds) t =
  if seeds = [] then invalid_arg "Solver.solve: no seeds";
  let lower = Array.make 4 0.0 and upper = Array.make 4 1.0 in
  let objective v = penalized t (params_of_vector v) in
  let refine (p : Policy.params) =
    let init = [| p.s3; p.s5; p.p_py; p.p_fm |] in
    let result =
      Nelder_mead.minimize
        ~options:{ Nelder_mead.max_iterations = 800; tolerance = 1e-12 }
        ~lower ~upper ~init objective
    in
    evaluate t (params_of_vector result.point)
  in
  let candidates = List.map refine seeds in
  match candidates with
  | [] -> assert false
  | first :: rest -> List.fold_left better first rest

(* {2 The dual problem: maximise quality under a cost budget} *)

type dual_evaluation = {
  d_params : Policy.params;
  d_fractions : Region_model.fractions;
  d_feasible : bool;
  d_violation : float;
  target_recall : float;
  d_reads : float;
  d_cost : float;
  d_budget : float;
  budget_limited : bool;
  d_expected_precision : float;
}

let evaluate_dual t ~budget (params : Policy.params) =
  let req = t.requirements in
  let f = Region_model.fractions t.spec ~laxity_bound:req.laxity params in
  let alpha = Region_model.answer_yes_rate f in
  let beta = Region_model.uncertainty_rate f in
  let precision = Region_model.precision_estimate f in
  let total = float_of_int t.total in
  let r_q = req.recall in
  let unit = Region_model.unit_cost (effective_cost t) f in
  let budget = Float.max 0.0 budget in
  (* Reads affordable within the budget, capped at |T|. *)
  let r_budget =
    if unit <= 0.0 then total else Float.min total (budget /. unit)
  in
  (* The recall guarantee reachable after R reads: constraint (16) at R
     solved for r gives r(R) = alpha R / ((beta - 1) R + |T|). *)
  let recall_at r =
    if r <= 0.0 then 0.0
    else
      let denom = ((beta -. 1.0) *. r) +. total in
      if denom <= tolerance then 1.0
      else Float.max 0.0 (Float.min 1.0 (alpha *. r /. denom))
  in
  let target = Float.min r_q (recall_at r_budget) in
  (* Reads needed for the capped target — the primal closed form, which
     equals r_budget exactly when the budget binds. *)
  let reads =
    if target <= 0.0 then 0.0
    else
      let gamma = alpha -. (target *. (beta -. 1.0)) in
      if gamma <= tolerance then r_budget
      else Float.min r_budget (target *. total /. gamma)
  in
  let cost = reads *. unit in
  (* An empty answer (target 0) is trivially precise, as in the primal. *)
  let precision_violation =
    if target <= 0.0 then 0.0 else Float.max 0.0 (req.precision -. precision)
  in
  {
    d_params = params;
    d_fractions = f;
    d_feasible = precision_violation <= tolerance;
    d_violation = precision_violation;
    target_recall = target;
    d_reads = reads;
    d_cost = cost;
    d_budget = budget;
    budget_limited = target < r_q -. tolerance;
    d_expected_precision = precision;
  }

let better_dual a b =
  (* Prefer precision-feasibility, then higher reachable recall, then
     lower spend; among infeasible points, less violation then cost. *)
  match (a.d_feasible, b.d_feasible) with
  | true, false -> a
  | false, true -> b
  | true, true ->
      if a.target_recall > b.target_recall +. tolerance then a
      else if b.target_recall > a.target_recall +. tolerance then b
      else if a.d_cost <= b.d_cost then a
      else b
  | false, false ->
      if a.d_violation < b.d_violation then a
      else if b.d_violation < a.d_violation then b
      else if a.d_cost <= b.d_cost then a
      else b

(* Penalised dual objective: feasible points score their negated target
   recall (plus a cost term small enough to only break ties), infeasible
   points sit strictly above every feasible score, scaled by the
   precision violation. *)
let dual_penalized t ~budget params =
  let e = evaluate_dual t ~budget params in
  if e.d_feasible then begin
    let c = effective_cost t in
    let worst_unit = c.Cost_model.c_r +. c.c_p +. c.c_wi +. c.c_wp in
    let ceiling = Float.max 1.0 (float_of_int t.total *. worst_unit) in
    -.e.target_recall +. (1e-4 *. e.d_cost /. ceiling)
  end
  else 2.0 +. (10.0 *. e.d_violation)

let solve_dual ?(seeds = default_seeds) ~budget t =
  if seeds = [] then invalid_arg "Solver.solve_dual: no seeds";
  let budget = Float.max 0.0 budget in
  (* Fast path: if the primal optimum is affordable, the dual answer is
     the primal one — full requested recall at minimal cost.  This keeps
     ample-budget plans continuous with the unbudgeted planner. *)
  let primal = solve ~seeds t in
  if primal.feasible && primal.cost <= budget then
    {
      d_params = primal.params;
      d_fractions = primal.fractions;
      d_feasible = true;
      d_violation = 0.0;
      target_recall = t.requirements.Quality.recall;
      d_reads = primal.reads;
      d_cost = primal.cost;
      d_budget = budget;
      budget_limited = false;
      d_expected_precision = primal.expected_precision;
    }
  else begin
    let lower = Array.make 4 0.0 and upper = Array.make 4 1.0 in
    let objective v = dual_penalized t ~budget (params_of_vector v) in
    let refine (p : Policy.params) =
      let init = [| p.s3; p.s5; p.p_py; p.p_fm |] in
      let result =
        Nelder_mead.minimize
          ~options:{ Nelder_mead.max_iterations = 800; tolerance = 1e-12 }
          ~lower ~upper ~init objective
      in
      evaluate_dual t ~budget (params_of_vector result.point)
    in
    match List.map refine seeds with
    | [] -> assert false
    | first :: rest -> List.fold_left better_dual first rest
  end

let pp_dual_evaluation ppf e =
  Format.fprintf ppf
    "%a%s: budget=%.4g target_recall=%.4g W=%.4g R=%.4g precision~%.4g%s"
    Policy.pp_params e.d_params
    (if e.d_feasible then "" else " (infeasible)")
    e.d_budget e.target_recall e.d_cost e.d_reads e.d_expected_precision
    (if e.budget_limited then " (budget-limited)" else "")

let pp_evaluation ppf e =
  Format.fprintf ppf
    "%a%s: W=%.4g W/|T|=%.4g R/|T|=%.4g precision~%.4g"
    Policy.pp_params e.params
    (if e.feasible then "" else " (infeasible)")
    e.cost e.normalized_cost e.read_fraction e.expected_precision

let explain t (e : evaluation) =
  let b = Buffer.create 512 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let f = e.fractions in
  let req = t.requirements in
  add "plan: s3=%.3f s5=%.3f p_py=%.3f p_fm=%.3f%s\n" e.params.s3 e.params.s5
    e.params.p_py e.params.p_fm
    (if e.feasible then "" else "  (INFEASIBLE)");
  add "reads: %.0f of %d objects (%.1f%%)\n" e.reads t.total
    (100.0 *. e.read_fraction);
  let per k = k *. 1000.0 in
  add "per 1000 objects read (expected):\n";
  add "  YES   %4.0f: forward %.0f (region 7), probe %.0f (region 6), ignore %.0f\n"
    (per f.yes) (per f.yes_forwarded) (per f.yes_probed)
    (per (f.yes -. f.yes_forwarded -. f.yes_probed));
  add "  MAYBE %4.0f: probe %.0f (regions 3+5, ~%.0f resolve YES), forward %.0f (region 4), ignore %.0f\n"
    (per f.maybe) (per f.maybe_probed) (per f.maybe_probe_yes)
    (per f.maybe_forwarded)
    (per (f.maybe -. f.maybe_probed -. f.maybe_forwarded));
  add "  NO    %4.0f: discard\n" (per (1.0 -. f.yes -. f.maybe));
  let c = effective_cost t in
  let reads_cost = e.reads *. c.Cost_model.c_r in
  let probe_cost = e.reads *. (f.yes_probed +. f.maybe_probed) *. c.c_p in
  let write_cost =
    e.reads
    *. (((f.yes_forwarded +. f.maybe_forwarded) *. c.c_wi)
       +. ((f.yes_probed +. f.maybe_probe_yes) *. c.c_wp))
  in
  add "cost W = %.0f (W/|T| = %.3f): read %.0f + probe %.0f + write %.0f\n"
    e.cost e.normalized_cost reads_cost probe_cost write_cost;
  (match t.tiers with
  | Some specs ->
      let plan = Probe_tier.select specs in
      add
        "probes priced via cascade: start at tier %d (%s), expected %g per \
         probe over %d tiers\n"
        plan.Probe_tier.start
        specs.(plan.Probe_tier.start).Probe_tier.name
        plan.Probe_tier.price (Array.length specs)
  | None ->
      if t.batch > 1 || t.cost.Cost_model.c_b > 0.0 then
        add "probes priced amortized: c_p + c_b/B = %g + %g/%d = %g per probe\n"
          t.cost.c_p t.cost.c_b t.batch c.c_p);
  add "precision: expected %.4f vs bound %.4f (slack %+.4f)\n"
    e.expected_precision req.Quality.precision
    (e.expected_precision -. req.precision);
  let alpha = Region_model.answer_yes_rate f in
  let beta = Region_model.uncertainty_rate f in
  let gamma = alpha -. (req.recall *. (beta -. 1.0)) in
  add "recall: rate gamma %.4f vs bound %.4f (slack %+.4f)\n" gamma req.recall
    (gamma -. req.recall);
  Buffer.contents b
