(** The full optimization problem of §4.2.2.

    Minimise the expected evaluation cost [W] (Eq. 11) over the four free
    parameters [(s3, s5, p_py, p_fm)], subject to the precision (15) and
    recall (16) constraints, the read bound [R <= |T|] and the region
    accounting of {!Region_model}.

    For fixed parameters the problem is linear in the number of reads
    [R]: the cost grows linearly and the recall constraint is a single
    linear inequality, so the minimal feasible [R] has a closed form.
    With [α] the expected YES answers per read and [β] the expected growth
    of the recall denominator's seen part, constraint (16) at [R] reads
    [αR >= r_q((β − 1)R + |T|)]; hence with [γ = α − r_q(β − 1)]:

    - [r_q = 0]: [R = 0] — nothing needs to be read;
    - [γ >= r_q]: [R = r_q|T|/γ <= |T|] is minimal and feasible;
    - [γ < r_q]: even reading everything cannot reach the recall bound —
      the parameters are infeasible.

    The outer 4-dimensional minimisation is done by multistart
    Nelder–Mead with feasibility penalties.  This reproduces the tables
    of §5.1. *)

type problem = {
  total : int;  (** |T| *)
  spec : Region_model.spec;
  requirements : Quality.requirements;
  cost : Cost_model.t;
  batch : int;
      (** probe batch size B: the objective prices each probe at the
          amortized [c_p + c_b/B] (see {!Cost_model.amortized_probe}) *)
  tiers : Probe_tier.spec array option;
      (** when present, probes run through a tiered cascade and the
          objective prices each probe at the cascade's optimal strategy
          price ({!Probe_tier.select}) instead of the amortized oracle
          price — [cost.c_p]/[c_b]/[batch] are ignored for probes
          (reads and writes keep their [cost] prices) *)
}

val problem :
  total:int ->
  spec:Region_model.spec ->
  requirements:Quality.requirements ->
  ?cost:Cost_model.t ->
  ?batch:int ->
  ?tiers:Probe_tier.spec array ->
  unit ->
  problem
(** [cost] defaults to {!Cost_model.paper}; [batch] defaults to 1 (the
    scalar probe path, under which the amortized probe price is exactly
    [c_p] and every pre-batching solution is unchanged); [tiers]
    defaults to absent — every pre-cascade solution is bit-for-bit
    unchanged.
    @raise Invalid_argument if [total <= 0], [batch < 1], [tiers] is
    invalid per {!Probe_tier.validate}, or the
    requirements' laxity bound exceeds the spec's [max_laxity] by more
    than the spec allows (a bound above L is simply clamped: everything
    is forwardable). *)

(** The outcome of instantiating the model at one parameter point. *)
type evaluation = {
  params : Policy.params;
  fractions : Region_model.fractions;
  feasible : bool;
  violation : float;  (** total constraint violation; 0 when feasible *)
  reads : float;  (** expected R (|T| when infeasible) *)
  read_fraction : float;  (** R / |T| *)
  cost : float;  (** expected W at [reads] *)
  normalized_cost : float;  (** W / |T| *)
  expected_precision : float;
}

val evaluate : problem -> Policy.params -> evaluation

val better : evaluation -> evaluation -> evaluation
(** The candidate comparator used by {!solve}: prefer feasibility, then
    lower cost; among infeasible candidates prefer less violation, with
    cost as the tie-break so seed order cannot decide between two
    equally-violating plans.  Exposed for testing. *)

val solve : ?seeds:Policy.params list -> problem -> evaluation
(** Multistart Nelder–Mead.  Default seeds: the 16 corners of the unit
    hypercube, its centre, and the Stingy and Greedy parameter points.
    Returns the best feasible evaluation, or the least-violating one if
    no start reaches feasibility. *)

(** {2 The dual problem — maximise quality under a cost budget}

    The anytime/budgeted form inverts §4.2.2: instead of minimising cost
    subject to the recall bound, maximise the reachable recall guarantee
    subject to [cost <= budget] (precision stays a hard constraint).
    For fixed parameters the budget affords [R_b = min(|T|, budget/u(f))]
    reads at unit cost [u(f)], and constraint (16) solved for [r] gives
    the recall guarantee reachable after [R] reads:
    [r(R) = αR / ((β − 1)R + |T|)], monotone non-decreasing in [R].  The
    dual target is [min(r(R_b), r_q)] — quality never exceeds what was
    asked for, and the spend for the capped target falls back to the
    primal closed form, so an ample budget reproduces the primal plan. *)

type dual_evaluation = {
  d_params : Policy.params;
  d_fractions : Region_model.fractions;
  d_feasible : bool;  (** precision bound holds (an empty answer always does) *)
  d_violation : float;  (** precision violation; 0 when feasible *)
  target_recall : float;  (** reachable recall guarantee, capped at [r_q] *)
  d_reads : float;  (** expected reads for the target, [<= budget/u] *)
  d_cost : float;  (** expected spend, [<= budget] by construction *)
  d_budget : float;  (** the (clamped, non-negative) budget solved against *)
  budget_limited : bool;  (** [target_recall < r_q]: budget binds *)
  d_expected_precision : float;
}

val evaluate_dual : problem -> budget:float -> Policy.params -> dual_evaluation

val better_dual : dual_evaluation -> dual_evaluation -> dual_evaluation
(** Prefer precision-feasibility, then higher [target_recall], then lower
    spend; among infeasible candidates, less violation then cost. *)

val solve_dual :
  ?seeds:Policy.params list -> budget:float -> problem -> dual_evaluation
(** Multistart Nelder–Mead on the penalised dual objective (same seed set
    and simplex machinery as {!solve}).  Fast path: when the primal
    optimum is affordable ([solve] feasible with [cost <= budget]) it is
    returned verbatim as a dual evaluation with [target_recall = r_q] —
    ample budgets are continuous with the unbudgeted planner.  A
    non-positive budget yields the empty plan (target 0, cost 0). *)

val pp_evaluation : Format.formatter -> evaluation -> unit

val pp_dual_evaluation : Format.formatter -> dual_evaluation -> unit

val explain : problem -> evaluation -> string
(** A human-readable account of a plan: the chosen parameters, the
    expected handling of 1000 read objects (per Fig. 3 region), the cost
    breakdown by operation (Eq. 11) and each constraint's slack.  Meant
    for CLI output and query-plan debugging. *)
