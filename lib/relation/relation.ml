type schema = { names : string array }

let schema names =
  if names = [] then invalid_arg "Relation.schema: empty";
  let arr = Array.of_list names in
  let seen = Hashtbl.create 8 in
  Array.iter
    (fun n ->
      if Hashtbl.mem seen n then
        invalid_arg (Printf.sprintf "Relation.schema: duplicate attribute %S" n);
      Hashtbl.add seen n ())
    arr;
  { names = arr }

let arity s = Array.length s.names

let attr s name =
  let rec find i =
    if i >= arity s then raise Not_found
    else if String.equal s.names.(i) name then i
    else find (i + 1)
  in
  find 0

type tuple = {
  id : int;
  beliefs : Uncertain.t array;
  truths : float array;
}

let tuple ~id ~beliefs ~truths =
  if Array.length beliefs <> Array.length truths then
    invalid_arg "Relation.tuple: arity mismatch";
  Array.iteri
    (fun i truth ->
      if not (Interval.contains (Uncertain.support beliefs.(i)) truth) then
        invalid_arg
          (Printf.sprintf
             "Relation.tuple: truth of attribute %d outside its belief" i))
    truths;
  { id; beliefs = Array.copy beliefs; truths = Array.copy truths }

let belief t i = t.beliefs.(i)

type condition =
  | Atom of int * Predicate.t
  | Not of condition
  | And of condition * condition
  | Or of condition * condition

let atom s name p = Atom (attr s name, p)

let rec validate s = function
  | Atom (i, _) ->
      if i < 0 || i >= arity s then
        invalid_arg (Printf.sprintf "Relation.validate: attribute %d" i)
  | Not c -> validate s c
  | And (a, b) | Or (a, b) ->
      validate s a;
      validate s b

let mentioned c =
  let rec collect acc = function
    | Atom (i, _) -> i :: acc
    | Not c -> collect acc c
    | And (a, b) | Or (a, b) -> collect (collect acc a) b
  in
  List.sort_uniq compare (collect [] c)

let rec eval_truth c t =
  match c with
  | Atom (i, p) -> Predicate.eval p t.truths.(i)
  | Not c -> not (eval_truth c t)
  | And (a, b) -> eval_truth a t && eval_truth b t
  | Or (a, b) -> eval_truth a t || eval_truth b t

(* ---- normalisation ------------------------------------------------- *)

(* Negation normal form: negations absorbed into the atoms' predicates. *)
let rec nnf = function
  | Atom _ as a -> a
  | And (a, b) -> And (nnf a, nnf b)
  | Or (a, b) -> Or (nnf a, nnf b)
  | Not c -> (
      match c with
      | Atom (i, p) -> Atom (i, Predicate.not_ p)
      | Not inner -> nnf inner
      | And (a, b) -> Or (nnf (Not a), nnf (Not b))
      | Or (a, b) -> And (nnf (Not a), nnf (Not b)))

(* Flatten an associative chain of one connective into its operand list. *)
let rec flatten_and acc = function
  | And (a, b) -> flatten_and (flatten_and acc a) b
  | c -> c :: acc

let rec flatten_or acc = function
  | Or (a, b) -> flatten_or (flatten_or acc a) b
  | c -> c :: acc

let rebuild join = function
  | [] -> invalid_arg "Relation: empty condition chain"
  | first :: rest -> List.fold_left join first rest

(* Merge same-attribute sibling atoms so that per-attribute combinations
   get the exact satisfying-set semantics of Predicate. *)
let merge_siblings combine operands =
  let atoms = Hashtbl.create 4 in
  let others = ref [] in
  List.iter
    (function
      | Atom (i, p) ->
          let merged =
            match Hashtbl.find_opt atoms i with
            | None -> p
            | Some q -> combine q p
          in
          Hashtbl.replace atoms i merged
      | c -> others := c :: !others)
    operands;
  let merged_atoms =
    Hashtbl.fold (fun i p acc -> Atom (i, p) :: acc) atoms []
    |> List.sort (fun a b ->
           match (a, b) with
           | Atom (i, _), Atom (j, _) -> compare i j
           | _ -> 0)
  in
  merged_atoms @ List.rev !others

let normalize c =
  let rec norm c =
    match c with
    | Atom _ -> c
    | Not _ -> assert false (* gone after nnf *)
    | And _ ->
        flatten_and [] c |> List.rev |> List.map norm
        |> merge_siblings (fun a b -> Predicate.And (a, b))
        |> rebuild (fun a b -> And (a, b))
    | Or _ ->
        flatten_or [] c |> List.rev |> List.map norm
        |> merge_siblings (fun a b -> Predicate.Or (a, b))
        |> rebuild (fun a b -> Or (a, b))
  in
  norm (nnf c)

(* ---- three-way evaluation ------------------------------------------ *)

let rec classify_raw c t =
  match c with
  | Atom (i, p) -> Predicate.classify p t.beliefs.(i)
  | Not c -> Tvl.not_ (classify_raw c t)
  | And (a, b) -> Tvl.and_ (classify_raw a t) (classify_raw b t)
  | Or (a, b) -> Tvl.or_ (classify_raw a t) (classify_raw b t)

let classify c t = classify_raw (normalize c) t

let rec success_raw c t =
  match c with
  | Atom (i, p) -> Predicate.success p t.beliefs.(i)
  | Not c -> 1.0 -. success_raw c t
  | And (a, b) -> success_raw a t *. success_raw b t
  | Or (a, b) ->
      let sa = success_raw a t and sb = success_raw b t in
      sa +. sb -. (sa *. sb)

let success c t =
  match classify c t with
  | Tvl.Yes -> 1.0
  | Tvl.No -> 0.0
  | Tvl.Maybe ->
      Float.min 1.0 (Float.max 0.0 (success_raw (normalize c) t))

let laxity c t =
  List.fold_left
    (fun acc i -> Float.max acc (Uncertain.laxity t.beliefs.(i)))
    0.0 (mentioned c)

(* ---- probing -------------------------------------------------------- *)

let probe_attribute t i =
  if Uncertain.laxity t.beliefs.(i) = 0.0 then t
  else begin
    let beliefs = Array.copy t.beliefs in
    beliefs.(i) <- Uncertain.exact t.truths.(i);
    { t with beliefs }
  end

(* Probability that revealing attribute [i] makes the (normalised)
   condition definite: partition the attribute's support at the boundary
   points of its atoms' satisfying sets; inside one region every atom of
   [i] is definite, so the condition's verdict there is computable by
   substituting a representative value.  Sum the belief mass of regions
   whose verdict comes out definite. *)
let decisiveness c t i =
  let belief_i = t.beliefs.(i) in
  let support = Uncertain.support belief_i in
  let lo = Interval.lo support and hi = Interval.hi support in
  let boundaries =
    let rec collect acc = function
      | Atom (j, p) when j = i ->
          List.fold_left
            (fun acc (a, b) ->
              let acc = if Float.is_finite a then a :: acc else acc in
              if Float.is_finite b then b :: acc else acc)
            acc
            (Real_set.components (Predicate.satisfying_set p))
      | Atom _ -> acc
      | Not c -> collect acc c
      | And (a, b) | Or (a, b) -> collect (collect acc a) b
    in
    collect [] c
    |> List.filter (fun x -> x > lo && x < hi)
    |> List.sort_uniq Float.compare
  in
  let knots = (lo :: boundaries) @ [ hi ] in
  let with_value v =
    let beliefs = Array.copy t.beliefs in
    beliefs.(i) <- Uncertain.exact v;
    { t with beliefs }
  in
  let rec mass acc = function
    | a :: (b :: _ as rest) ->
        let representative = (a +. b) /. 2.0 in
        let verdict = classify_raw c (with_value representative) in
        let region_mass =
          if Tvl.is_definite verdict then
            Uncertain.success_between belief_i a b
          else 0.0
        in
        mass (acc +. region_mass) rest
    | [ _ ] | [] -> acc
  in
  mass 0.0 knots

let next_probe c t =
  let c = normalize c in
  if Tvl.is_definite (classify_raw c t) then None
  else begin
    let imprecise =
      List.filter
        (fun i -> Uncertain.laxity t.beliefs.(i) > 0.0)
        (mentioned c)
    in
    match imprecise with
    | [] -> None
    | candidates ->
        let best =
          List.fold_left
            (fun best i ->
              let score = decisiveness c t i in
              match best with
              | Some (_, s) when s >= score -> best
              | _ -> Some (i, score))
            None candidates
        in
        Option.map fst best
  end

let resolve ?meter c t =
  let charge () =
    match meter with Some m -> Cost_meter.charge_probe m | None -> ()
  in
  let c = normalize c in
  let rec go t =
    if Tvl.is_definite (classify_raw c t) then t
    else
      match next_probe c t with
      | None -> t (* definite or nothing probeable: stop *)
      | Some i ->
          charge ();
          go (probe_attribute t i)
  in
  let t = go t in
  (* A tuple that resolved YES will be emitted, and emitted probed
     objects must have laxity 0: fetch its remaining mentioned
     attributes.  A NO tuple is discarded, so residual imprecision is
     left unfetched — that saving is the point of per-attribute
     probing. *)
  match classify_raw c t with
  | Tvl.No | Tvl.Maybe -> t
  | Tvl.Yes ->
      List.fold_left
        (fun t i ->
          if Uncertain.laxity t.beliefs.(i) > 0.0 then begin
            charge ();
            probe_attribute t i
          end
          else t)
        t (mentioned c)

let instance c : tuple Operator.instance =
  let c = normalize c in
  {
    classify = classify_raw c;
    laxity = laxity c;
    success = (fun t -> success c t);
  }

(* ---- selection ------------------------------------------------------ *)

type report = {
  answer : tuple Operator.emitted list;
  guarantees : Quality.guarantees;
  requirements : Quality.requirements;
  counts : Cost_meter.counts;
  probe_actions : int;
  answer_size : int;
  exhausted : bool;
}

let select ~rng ?emit ?collect ?enforce ?(policy = Policy.stingy)
    ~requirements c tuples =
  let c = normalize c in
  (* Two meters: the operator's own (reads, writes, probe decisions) and
     one charged per attribute fetch inside resolve.  The cost-bearing
     probe count is the attribute fetches. *)
  let main = Cost_meter.create () in
  let fetches = Cost_meter.create () in
  let operator_report =
    Operator.run ~rng ~meter:main ?emit ?collect ?enforce
      ~instance:(instance c)
      ~probe:(Probe_driver.scalar (fun t -> resolve ~meter:fetches c t))
      ~policy ~requirements
      (Operator.source_of_array tuples)
  in
  let main_counts = operator_report.Operator.counts in
  {
    answer = operator_report.answer;
    guarantees = operator_report.guarantees;
    requirements = operator_report.requirements;
    counts =
      { main_counts with probes = (Cost_meter.counts fetches).probes };
    probe_actions = main_counts.probes;
    answer_size = operator_report.answer_size;
    exhausted = operator_report.exhausted;
  }
