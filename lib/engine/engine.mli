(** One-call quality-aware query execution.

    The full QaQ pipeline — sample, estimate selectivities and the
    decision-plane density, solve the §4.2.2 optimization problem, run
    the online operator — wired together behind a single function.  Each
    stage stays independently accessible (this module only composes
    {!Selectivity}, {!Solver} and {!Operator}), so anything the facade
    decides can be overridden by calling the stages directly. *)

type plan = {
  params : Policy.params;  (** the solved decision parameters *)
  estimate : Selectivity.estimate option;
      (** what the sample said; [None] when the sample came back empty
          and the fallback prior was used *)
  evaluation : Solver.evaluation;  (** the optimizer's own expectations *)
  dual : Solver.dual_evaluation option;
      (** the budgeted (dual) solution a finite [?budget] planned with;
          [None] on unbudgeted runs — [evaluation] is then the primal
          optimum, otherwise the primal re-pricing of [dual]'s params *)
  sample_size : int;
      (** objects the pilot sample read (and charged to the run) *)
}

(** How to plan the query. *)
type planning =
  | Sampled of {
      fraction : float;  (** Bernoulli sampling rate, e.g. the paper's 0.01 *)
      density : [ `Uniform | `Histogram ];
      fallback : float * float;
          (** (f_y, f_m) prior if the sample is empty *)
    }
  | Fixed of Policy.params  (** skip planning *)

val default_planning : planning
(** The paper's recipe: 1% sample, uniform density,
    fallback (0.2, 0.2). *)

(** What permanent probe failure cost a run — the engine-level view of
    {!Operator.degradation}, priced and judged.  An unfaulted run
    reports all zeros with [requirements_met = true] (the operator's
    guarantees always satisfy the requirements when nothing failed). *)
type degradation = {
  failed_probes : int;  (** objects whose probe failed permanently *)
  failed_attempts : int;  (** attempts burned on those objects *)
  degraded_forwards : int;
  degraded_ignores : int;
  forced_actions : int;  (** fallbacks with no feasible action left *)
  wasted_cost : float;
      (** [failed_attempts * (c_p + c_b/batch)] — backend work the
          meter never charged because no probe completed, priced at the
          same amortized per-probe rate the solver and meter use, so
          degradation reports reconcile with plan pricing.  Under a
          cascade, attempts are priced at the final (oracle) tier's
          amortized rate: only the oracle can fail permanently —
          cheaper tiers fail over instead *)
  guarantees_before : Quality.guarantees option;
      (** at the first failure; [None] when nothing failed *)
  guarantees_after : Quality.guarantees;  (** = [report.guarantees] *)
  requirements_met : bool;
      (** whether the post-degradation guarantees still satisfy the
          requirements; can only be [false] when [forced_actions > 0] *)
}

(** The anytime contract of a budgeted run, summarised.  Present on the
    result iff [?budget] or [?deadline] was passed to {!execute}. *)
type budget_summary = {
  allotted : float;  (** the requested budget ([infinity] = deadline only) *)
  spent : float;  (** total metered spend, planning included *)
  remaining : float;  (** [max 0 (allotted - spent)] *)
  target_recall : float;
      (** the dual planner's reachable recall target — the requested
          recall whenever the budget did not bind at planning time *)
  budget_limited : bool;
      (** the budget bound the run: the planner capped the target below
          the requested recall, or the scan stopped on the budget or
          deadline before reaching it *)
  budget_replans : int;
      (** adaptive re-solves that went through the dual against the
          remaining budget *)
  stopped_early : bool;
      (** the scan was cut off by the budget or deadline (mirrors
          [report.stopped_early]) *)
}

type 'o result = {
  report : 'o Operator.report;
  plan : plan option;  (** [None] when planning was [Fixed] *)
  counts : Cost_meter.counts;
      (** the whole run's charges: the pilot sample's reads plus
          everything in [report.counts] *)
  normalized_cost : float;
      (** W / |T| under the chosen cost model, over [counts] — so
          planning is priced, not free *)
  degradation : degradation;
      (** how permanent probe failures affected the run (all zeros
          without faults) *)
  budget : budget_summary option;
      (** present iff [?budget] or [?deadline] was passed *)
  profile : Profile.t option;
      (** present iff [?profile] was passed to {!execute} *)
  elapsed_seconds : float;
      (** end-to-end wall time of the run on the observability clock
          (the default clock without [?obs]) — for latency SLOs; not
          part of the deterministic answer *)
}

val degraded : 'o result -> bool
(** [result.degradation.failed_probes > 0]. *)

type 'o profiling
(** What to profile: a report label and, optionally, a ground-truth
    oracle for the quality audit. *)

val profiling : ?label:string -> ?oracle:('o -> bool) -> unit -> 'o profiling
(** [oracle o] must answer whether [o] belongs to the exact (precise)
    answer; when given, the profile audits {e achieved} precision and
    recall against the requested bounds.  The audit inspects
    [report.answer], so it needs the default [collect:true].  [label]
    defaults to ["run"]. *)

val domains_env : string
(** Name of the environment variable ([QAQ_DOMAINS]) consulted when
    {!execute}'s [domains] argument is absent.  Lets an entire test suite
    or CI job exercise the parallel path without touching call sites. *)

(** {2 Storage layout} *)

(** A columnar backing for the scan: the same objects as the [data]
    array, decomposed into a {!Column_store} plus the rebuild function
    and the scan predicate ({!Column_scan} needs it in compiled form).
    With [prune] set, whole-NO chunks are skipped without being
    fetched. *)
type 'o columnar = {
  store : Column_store.t;
  of_row : Column_store.row -> 'o;
  pred : Predicate.t;
  prune : bool;
}

type layout = Row | Columnar

val layout_env : string
(** ["QAQ_LAYOUT"] — the environment variable {!resolve_layout}
    consults.  Lets a test suite or CI job steer every entry point onto
    the columnar engine without touching call sites, mirroring
    [QAQ_DOMAINS] for the pool width. *)

val resolve_layout : ?layout:layout -> unit -> layout
(** The layout an entry point should use: the explicit argument if
    given, else [QAQ_LAYOUT] (["row"] or ["columnar"]), else {!Row}.
    @raise Invalid_argument if the variable holds anything else. *)

val execute :
  rng:Rng.t ->
  ?planning:planning ->
  ?adaptive:bool ->
  ?cost:Cost_model.t ->
  ?batch:int ->
  ?max_laxity:float ->
  ?budget:float ->
  ?deadline:float ->
  ?domains:int ->
  ?obs:Obs.t ->
  ?emit:('o Operator.emitted -> unit) ->
  ?collect:bool ->
  ?profile:'o profiling ->
  ?on_task:(lane:int -> start:float -> finish:float -> unit) ->
  ?columnar:'o columnar ->
  instance:'o Operator.instance ->
  ?probe:'o Probe_driver.t ->
  ?cascade:'o Cascade.t ->
  requirements:Quality.requirements ->
  'o array ->
  'o result
(** Evaluate a Quality-Aware Query over an in-memory collection.

    [planning] defaults to {!default_planning}.  [adaptive] (default
    [false]) re-estimates the workload mid-scan and re-solves
    periodically (see {!Adaptive}); it composes with either planning
    mode, starting from the planned parameters.  [max_laxity] caps the
    histogram range when known a priori (otherwise the sample maximum is
    used, falling back to 1).  [cost] (default {!Cost_model.paper})
    prices the run for [normalized_cost] and the solver's objective.

    [budget] caps the run's total metered spend (cost units of [cost],
    planning included) — the anytime contract: planning solves the
    {e dual} problem ({!Solver.solve_dual}), maximising the reachable
    recall guarantee within the budget instead of minimising cost at
    fixed recall, adaptivity is forced on so every replan window
    re-solves the dual against the budget {e remaining} on the meter,
    and the scan refuses the next read once the committed spend (metered
    charges, pending probes and the read's own worst case) cannot pay
    for it — the scan's spend never exceeds the budget, strictly within
    the one-probe-batch overshoot the anytime contract allows (only a
    budget smaller than the pilot sample itself can be exceeded, by the
    sample; use [Fixed] planning for sub-sample budgets).  The answer
    only ever grows, so quality is monotone in budget on a fixed
    workload.
    [budget = infinity] takes exactly the unbudgeted code paths
    (bit-for-bit identical result; only the [budget] summary is added).
    [deadline] is the same stop on wall-clock seconds since the call —
    inherently non-deterministic, so prefer [budget] wherever
    reproducibility matters.  Both may be combined; either makes the
    result carry a {!budget_summary}.

    Exactly one of [probe] and [cascade] must be given.  [probe] is the
    probe capability the operator will draw on; wrap a plain closure
    with {!Probe_driver.scalar} for the paper's scalar path.  [batch]
    (default: the driver's own batch size) is the batch size the
    planner and the adaptive re-solver assume when pricing probes at
    the amortized [c_p + c_b/batch]; override it only when the driver's
    configured batch size is not what the evaluation will effectively
    see.

    [cascade] runs probes through a tiered cascade instead (see
    [Operator.run]'s [?cascade]): cheap [Shrink] proxies narrow the
    imprecision interval and may produce a definite verdict without the
    oracle; residuals escalate tier by tier.  Planning then prices each
    probe at the cascade's optimal strategy price
    ({!Solver.problem}'s [tiers]), the adaptive re-solver does the
    same, spend is read off the meter {e per tier}
    ({!Cost_meter.tiered_cost}) — [normalized_cost], the budget stop
    and the [budget] summary all price tiered probes at their own
    tier's rates — and [degradation.wasted_cost] prices failed attempts
    at the oracle tier's amortized rate.  A single-[Resolve]-tier
    cascade is bit-for-bit identical to passing its driver as [probe].

    The returned report's guarantees always satisfy the requirements —
    unless the probe capability failed permanently on some objects
    ({!Probe_driver.Failed}): the run still completes, the affected
    objects fall back to guarantee-aware write decisions, and
    [degradation] summarises what happened, including whether the
    recomputed guarantees still meet the requirements (only a {e forced}
    fallback can break them).

    The engine accounts the whole run on one meter: the pilot sample's
    reads are charged before the scan, so [counts] (and hence
    [normalized_cost]) include the price of planning while
    [report.counts] stays scan-only.  The operator's policy rng stream
    is independent of the sampling stream, so a [Sampled] run and a
    [Fixed] run given the planned parameters make identical decisions
    and differ in cost by exactly [sample_size * c_r].

    [domains] (default: the [QAQ_DOMAINS] environment variable, else 1)
    sets the number of domains the run may use.  With more than one, a
    {!Domain_pool} is created for the duration of the call and the
    pure per-object work — the laxity-cap scan, the pilot sample's
    classify/laxity/success evaluation, and the scan's classification
    stage ({!Scan_pipeline}) — fans out across it, while every decision,
    rng draw, counter and charge stays on the sequential path: the
    result is bit-for-bit identical for every [domains] value.

    [obs] threads observability through every stage: the [plan] and
    [scan] spans (plus [probe-flush] and [adaptive-reestimate] further
    down), the [qaq.*] counters mirroring the meter,
    [engine.sample_reads], and the [qaq.maybe.laxity] /
    [qaq.maybe.success] histograms over the MAYBE set.  With
    [domains > 1] it also carries [qaq.parallel.chunks], the
    [qaq.parallel.domains] gauge and one
    [qaq.parallel.domain<i>.busy_seconds] gauge per lane.
    {!Cost_meter.reconcile} against [counts] checks the instrumentation
    covers all metered work.

    [profile] asks for a {!Profile.t} in the result: the run's metric
    delta, cost counts (already reconciled — any mismatch lands in
    [reconcile_error] rather than raising), spans, histogram quantiles
    and the quality audit (see {!profiling}).  Profiling only reads
    state the run produced anyway, so a profiled run is bit-for-bit
    identical in answer and costs to an unprofiled one; when no [?obs]
    is passed, a private registry is created for the diff.

    [on_task] is handed to the pool ({!Domain_pool.create}) when
    [domains > 1]; together with [Chrome_trace] it yields one timeline
    lane per worker.

    [columnar] switches the scan onto the vectorized columnar engine
    ({!Column_scan}) over the given store; planning, sampling and the
    laxity cap still run over [data] — the materialized row view of the
    same objects — so the rng streams are identical across layouts and
    the result is bit-for-bit the row path's for every [domains] value
    (with [prune] off; pruning shrinks [total] like a zone map does).
    Use {!resolve_layout} to pick the layout the way [domains] picks the
    pool width.

    @raise Invalid_argument if [columnar] is given and the store's
    length differs from [data]'s.

    @raise Invalid_argument on an invalid sampling fraction or fallback
    fractions, if [batch < 1], if [domains < 1], if [budget] or
    [deadline] is negative or NaN, or if [QAQ_DOMAINS] is set to
    anything but a positive integer. *)

(** {2 Concurrent multi-query execution} *)

type 'o query
(** One query of a concurrent batch: everything {!execute} takes, bound
    into a value so a server can accumulate queries and run them
    together. *)

val query :
  rng:Rng.t ->
  ?planning:planning ->
  ?adaptive:bool ->
  ?cost:Cost_model.t ->
  ?batch:int ->
  ?max_laxity:float ->
  ?budget:float ->
  ?deadline:float ->
  ?obs:Obs.t ->
  ?tenant:string ->
  ?trace_id:int ->
  instance:'o Operator.instance ->
  ?probe:'o Probe_driver.t ->
  ?cascade:'o Cascade.t ->
  requirements:Quality.requirements ->
  'o array ->
  'o query
(** Same arguments and defaults as {!execute} (exactly one of [probe]
    and [cascade]).  Each query of a batch must own its [rng] and its
    [probe] driver or [cascade] (drivers are confined to one domain at
    a time) — to run many queries against shared probe capacity, give
    each one its own [Probe_broker.client] (or
    [Probe_broker.cascade_client]) of a common broker.

    Every query carries a process-unique trace ID — [trace_id] to
    supply one minted earlier (e.g. with {!next_trace_id}, so a broker
    client built before the query can share it), otherwise minted here.
    When [obs] is given, {!execute_one} re-stamps its trace sink with
    a {!Trace.context} holding the ID and [tenant], so every event the
    query emits is attributed; the metrics registry is shared as-is
    (it is concurrency-safe). *)

val next_trace_id : unit -> int
(** Mint a fresh query trace ID (process-wide atomic counter). *)

val trace_id : 'o query -> int
(** The ID this query's events are stamped with. *)

val query_context : 'o query -> Trace.context
(** The exact context {!execute_one} stamps: the query's trace ID and
    tenant. *)

val execute_many : ?domains:int -> 'o query array -> 'o result array
(** Run every query, concurrently when [domains > 1], and return their
    results in input order.  [domains] (default: the number of queries,
    capped at 16) bounds the lane count of the {!Domain_pool} the
    queries are spread over; each query itself runs single-lane
    ([domains:1]), so [QAQ_DOMAINS] does not nest pools here.

    Results are bit-for-bit independent of scheduling — each query owns
    its rng and probe driver, so [execute_many queries] equals
    [Array.map] of solo {!execute} runs {e provided} the probe
    capability behind the drivers resolves each object to a value that
    does not depend on when other queries probe it (a pure resolver
    behind a [Probe_broker] with the default infinite freshness
    qualifies; so does any set of independent drivers).

    @raise Invalid_argument if [domains < 1]. *)
