type plan = {
  params : Policy.params;
  estimate : Selectivity.estimate option;
  evaluation : Solver.evaluation;
}

type planning =
  | Sampled of {
      fraction : float;
      density : [ `Uniform | `Histogram ];
      fallback : float * float;
    }
  | Fixed of Policy.params

let default_planning =
  Sampled { fraction = 0.01; density = `Uniform; fallback = (0.2, 0.2) }

type 'o result = {
  report : 'o Operator.report;
  plan : plan option;
  normalized_cost : float;
}

let observed_max_laxity instance data =
  Array.fold_left
    (fun acc o -> Float.max acc (instance.Operator.laxity o))
    0.0 data

let make_plan ~rng ~cost ~batch ~max_laxity ~instance ~requirements ~fraction
    ~density ~fallback data =
  let total = Stdlib.max 1 (Array.length data) in
  let sample = Selectivity.bernoulli_sample rng ~fraction data in
  let cap =
    match max_laxity with
    | Some l -> l
    | None ->
        let m = observed_max_laxity instance data in
        if m > 0.0 then m else 1.0
  in
  let estimate =
    if Array.length sample = 0 then None
    else Some (Selectivity.estimate ~instance ~laxity_cap:cap sample)
  in
  let f_y, f_m =
    match estimate with
    | Some e -> (e.f_y, e.f_m)
    | None -> fallback
  in
  let density =
    match (density, estimate) with
    | `Histogram, Some e -> Density.of_estimate e
    | (`Uniform | `Histogram), _ -> Density.uniform ~max_laxity:cap
  in
  let spec = Region_model.spec ~f_y ~f_m ~max_laxity:cap ~density in
  let evaluation =
    Solver.solve (Solver.problem ~total ~spec ~requirements ~cost ~batch ())
  in
  { params = evaluation.params; estimate; evaluation }

let execute ~rng ?(planning = default_planning) ?(adaptive = false)
    ?(cost = Cost_model.paper) ?batch ?max_laxity ?emit ?collect ~instance
    ~(probe : _ Probe_driver.t) ~requirements data =
  (* The planner prices probes for the batch size the evaluation will
     actually use — the driver's, unless the caller overrides it (e.g. a
     shared driver whose configured batch size a sweep wants to model
     differently). *)
  let batch =
    match batch with Some b -> b | None -> Probe_driver.batch_size probe
  in
  if batch < 1 then invalid_arg "Engine.execute: batch < 1";
  let plan =
    match planning with
    | Fixed _ -> None
    | Sampled { fraction; density; fallback } ->
        let f_y, f_m = fallback in
        if f_y < 0.0 || f_m < 0.0 || f_y +. f_m > 1.0 then
          invalid_arg "Engine.execute: invalid fallback fractions";
        Some
          (make_plan ~rng ~cost ~batch ~max_laxity ~instance ~requirements
             ~fraction ~density ~fallback data)
  in
  let initial =
    match (planning, plan) with
    | Fixed params, _ -> params
    | Sampled _, Some p -> p.params
    | Sampled _, None -> assert false
  in
  let policy =
    if adaptive then begin
      let cap =
        match max_laxity with
        | Some l -> l
        | None ->
            let m = observed_max_laxity instance data in
            if m > 0.0 then m else 1.0
      in
      let state =
        Adaptive.create ~rng:(Rng.split rng)
          ~total:(Stdlib.max 1 (Array.length data))
          ~max_laxity:cap ~requirements ~cost ~batch ~initial ()
      in
      Adaptive.policy state
    end
    else Policy.qaq initial
  in
  let report =
    Operator.run ~rng ?emit ?collect ~instance ~probe ~policy ~requirements
      (Operator.source_of_array data)
  in
  {
    report;
    plan;
    normalized_cost =
      (if Array.length data = 0 then 0.0
       else Operator.cost cost report /. float_of_int (Array.length data));
  }
