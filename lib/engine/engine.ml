type plan = {
  params : Policy.params;
  estimate : Selectivity.estimate option;
  evaluation : Solver.evaluation;
  dual : Solver.dual_evaluation option;
  sample_size : int;
}

type planning =
  | Sampled of {
      fraction : float;
      density : [ `Uniform | `Histogram ];
      fallback : float * float;
    }
  | Fixed of Policy.params

let default_planning =
  Sampled { fraction = 0.01; density = `Uniform; fallback = (0.2, 0.2) }

type degradation = {
  failed_probes : int;
  failed_attempts : int;
  degraded_forwards : int;
  degraded_ignores : int;
  forced_actions : int;
  wasted_cost : float;
  guarantees_before : Quality.guarantees option;
  guarantees_after : Quality.guarantees;
  requirements_met : bool;
}

type budget_summary = {
  allotted : float;
  spent : float;
  remaining : float;
  target_recall : float;
  budget_limited : bool;
  budget_replans : int;
  stopped_early : bool;
}

type 'o result = {
  report : 'o Operator.report;
  plan : plan option;
  counts : Cost_meter.counts;
  normalized_cost : float;
  degradation : degradation;
  budget : budget_summary option;
  profile : Profile.t option;
  elapsed_seconds : float;
}

let degraded result = result.degradation.failed_probes > 0

(* Wasted cost prices the attempts burned on probes that never
   completed — work the backend did that the meter (by design) never
   charged, since no probe was delivered.  Each attempt is priced at the
   amortized c_p + c_b/B the solver and meter price completed probes at,
   so degradation reports reconcile with plan pricing.  Under a cascade
   only the final (oracle) tier can fail permanently — cheaper tiers
   fail over instead of degrading — so attempts are priced at the final
   tier's amortized rate. *)
let degradation_of_report ~(cost : Cost_model.t) ~batch ?tiers
    ~(requirements : Quality.requirements) (report : _ Operator.report) =
  let d = report.Operator.degraded in
  let attempt_price =
    match tiers with
    | Some (specs : Probe_tier.spec array) when Array.length specs > 0 ->
        Probe_tier.amortized specs.(Array.length specs - 1)
    | Some _ | None -> (Cost_model.amortize ~batch cost).Cost_model.c_p
  in
  {
    failed_probes = d.Operator.failed_probes;
    failed_attempts = d.Operator.failed_attempts;
    degraded_forwards = d.Operator.degraded_forwards;
    degraded_ignores = d.Operator.degraded_ignores;
    forced_actions = d.Operator.forced_actions;
    wasted_cost = float_of_int d.Operator.failed_attempts *. attempt_price;
    guarantees_before = d.Operator.guarantees_before;
    guarantees_after = report.Operator.guarantees;
    requirements_met = Quality.meets report.Operator.guarantees requirements;
  }

type 'o profiling = { prof_label : string; oracle : ('o -> bool) option }

let profiling ?(label = "run") ?oracle () = { prof_label = label; oracle }

let domains_env = Domain_pool.env_var

type 'o columnar = {
  store : Column_store.t;
  of_row : Column_store.row -> 'o;
  pred : Predicate.t;
  prune : bool;
}

type layout = Row | Columnar

let layout_env = "QAQ_LAYOUT"

let resolve_layout ?layout () =
  match layout with
  | Some l -> l
  | None -> (
      match Sys.getenv_opt layout_env with
      | None | Some "" -> Row
      | Some "row" -> Row
      | Some "columnar" -> Columnar
      | Some other ->
          invalid_arg
            (Printf.sprintf "%s: expected \"row\" or \"columnar\", got %S"
               layout_env other))

let observed_max_laxity ?pool instance data =
  let laxities =
    match pool with
    | Some p when Domain_pool.domains p > 1 ->
        Domain_pool.parallel_map p instance.Operator.laxity data
    | _ -> Array.map instance.Operator.laxity data
  in
  Array.fold_left Float.max 0.0 laxities

let make_plan ~rng ~meter ?obs ?pool ~cost ~batch ?tiers ~cap ~budget
    ~instance ~requirements ~fraction ~density ~fallback data =
  let total = Stdlib.max 1 (Array.length data) in
  let sample = Selectivity.bernoulli_sample rng ~fraction data in
  let n = Array.length sample in
  (* The pilot sample is real work: the paper's planning recipe reads
     each sampled object, so its cost belongs on the same meter as the
     scan's. *)
  for _ = 1 to n do
    Cost_meter.charge_read meter
  done;
  (match obs with
  | Some o ->
      Metrics.add (Obs.counter o Obs.Keys.reads) n;
      Metrics.add (Obs.counter o Obs.Keys.sample_reads) n
  | None -> ());
  let estimate =
    if n = 0 then None
    else Some (Selectivity.estimate ~instance ?pool ~laxity_cap:cap sample)
  in
  let f_y, f_m =
    match estimate with
    | Some e -> (e.f_y, e.f_m)
    | None -> fallback
  in
  let density =
    match (density, estimate) with
    | `Histogram, Some e -> Density.of_estimate e
    | (`Uniform | `Histogram), _ -> Density.uniform ~max_laxity:cap
  in
  let spec = Region_model.spec ~f_y ~f_m ~max_laxity:cap ~density in
  let problem =
    Solver.problem ~total ~spec ~requirements ~cost ~batch ?tiers ()
  in
  match budget with
  | None ->
      let evaluation = Solver.solve problem in
      {
        params = evaluation.params;
        estimate;
        evaluation;
        dual = None;
        sample_size = n;
      }
  | Some b ->
      (* The pilot sample's reads are already on the meter: the scan can
         only spend what the planning phase left over. *)
      let remaining = Float.max 0.0 (b -. Cost_meter.total_cost cost meter) in
      let dual = Solver.solve_dual ~budget:remaining problem in
      {
        params = dual.Solver.d_params;
        estimate;
        (* The primal evaluation of the chosen parameters, for uniform
           reporting; [dual] carries the budgeted expectations. *)
        evaluation = Solver.evaluate problem dual.Solver.d_params;
        dual = Some dual;
        sample_size = n;
      }

let execute_with ?pool ~rng ~planning ~adaptive ~cost ?batch ?max_laxity
    ?budget ?deadline ?obs ?emit ?collect ?profile ?columnar ?cascade
    ~instance ~(probe : _ Probe_driver.t) ~requirements data =
  (match budget with
  | Some b when Float.is_nan b || b < 0.0 ->
      invalid_arg "Engine.execute: budget must be non-negative"
  | _ -> ());
  (match deadline with
  | Some d when Float.is_nan d || d < 0.0 ->
      invalid_arg "Engine.execute: deadline must be non-negative"
  | _ -> ());
  let run_clock =
    match obs with Some o -> Obs.clock o | None -> Span.default_clock
  in
  let run_start = run_clock () in
  let allotted = match budget with Some b -> b | None -> infinity in
  (* [budget = infinity] takes exactly the unbudgeted paths (primal
     planning, no stop condition) so it is bit-for-bit identical to an
     unbudgeted run; only the result summary differs. *)
  let budgeted = Float.is_finite allotted in
  let deadline_start =
    match deadline with Some _ -> Span.default_clock () | None -> 0.0
  in
  (* Planning always runs over [data] — the materialized row view of the
     same objects — so sampling, the rng streams and the laxity cap are
     identical across layouts; only the scan itself switches engines. *)
  (match columnar with
  | Some c when Column_store.length c.store <> Array.length data ->
      invalid_arg "Engine.execute: columnar store length differs from data"
  | _ -> ());
  (* The planner prices probes for the batch size the evaluation will
     actually use — the driver's, unless the caller overrides it (e.g. a
     shared driver whose configured batch size a sweep wants to model
     differently). *)
  let batch =
    match batch with Some b -> b | None -> Probe_driver.batch_size probe
  in
  if batch < 1 then invalid_arg "Engine.execute: batch < 1";
  (* Under a cascade the planner prices probes at the cascade's strategy
     price instead of the amortized oracle price, and the run's spend is
     read off the meter per tier. *)
  let tiers = Option.map Cascade.specs cascade in
  (* The sampling stream splits off unconditionally, whether or not this
     planning mode samples: the operator's policy stream must be
     identical across modes, so that a Sampled run and a Fixed run with
     the same parameters differ in cost by exactly the sample's reads. *)
  let sample_rng = Rng.split rng in
  let meter = Cost_meter.create () in
  let spent_total () =
    match tiers with
    | Some specs -> Cost_meter.tiered_cost cost ~tiers:specs meter
    | None -> Cost_meter.total_cost cost meter
  in
  (* The profile diffs the metric registry across the run, so a shared
     [?obs] carrying earlier runs' totals still profiles this run alone. *)
  let snap0 =
    match (profile, obs) with
    | Some _, Some o -> Obs.snapshot o
    | _ -> []
  in
  (* The laxity cap needs one scan of the data at most, shared between
     planning and the adaptive estimator. *)
  let laxity_cap =
    lazy
      (match max_laxity with
      | Some l -> l
      | None ->
          let m = observed_max_laxity ?pool instance data in
          if m > 0.0 then m else 1.0)
  in
  let span name f =
    match obs with Some o -> Obs.span o name f | None -> f ()
  in
  let plan =
    match planning with
    | Fixed _ -> None
    | Sampled { fraction; density; fallback } ->
        let f_y, f_m = fallback in
        if f_y < 0.0 || f_m < 0.0 || f_y +. f_m > 1.0 then
          invalid_arg "Engine.execute: invalid fallback fractions";
        Some
          (span "plan" (fun () ->
               make_plan ~rng:sample_rng ~meter ?obs ?pool ~cost ~batch ?tiers
                 ~cap:(Lazy.force laxity_cap)
                 ~budget:(if budgeted then Some allotted else None)
                 ~instance ~requirements ~fraction ~density ~fallback data))
  in
  let initial =
    match (planning, plan) with
    | Fixed params, _ -> params
    | Sampled _, Some p -> p.params
    | Sampled _, None -> assert false
  in
  (* A finite budget forces adaptivity: mid-flight dual re-solves against
     the remaining budget are what keeps a mis-estimated selectivity from
     blowing it. *)
  let adaptive = adaptive || budgeted in
  let adaptive_state =
    if adaptive then
      Some
        (Adaptive.create ~rng:(Rng.split rng)
           ~total:(Stdlib.max 1 (Array.length data))
           ~max_laxity:(Lazy.force laxity_cap) ~requirements ~cost ~batch
           ?tiers
           ?budget:
             (if budgeted then
                Some { Adaptive.allotted; spent = (fun () -> spent_total ()) }
              else None)
           ~initial ?obs ())
    else None
  in
  let policy =
    match adaptive_state with
    | Some state -> Adaptive.policy state
    | None -> Policy.qaq initial
  in
  (* The anytime stop: refuse the next read when the committed spend
     cannot pay for its worst case.  Committed = metered charges, plus
     each probe still pending on the driver at its full downstream price
     (the probe, its possible precise write, one batch dispatch), plus
     the candidate read's own worst case (read, then probe + batch +
     write, or an imprecise write).  Admitting a read therefore never
     pushes the realized spend past the budget: the scan's spend stays
     within [allotted], strictly below the "one probe batch" overshoot
     the contract allows.  (Only the pilot sample, charged before this
     closure exists, can exceed a budget smaller than the sample
     itself.)  The deadline is wall-clock and inherently
     non-deterministic; the cost budget is exact. *)
  let should_stop =
    let budget_stop =
      if budgeted then begin
        let c = cost in
        (* Worst-case probe path: under a cascade an object may escalate
           through every tier, paying each tier's probe and one batch
           dispatch per tier; without one it pays c_p + c_b.  With no
           cascade this reduces exactly to the pre-cascade bound. *)
        let probe_worst, batch_worst =
          match tiers with
          | None -> (c.Cost_model.c_p, c.Cost_model.c_b)
          | Some specs ->
              Array.fold_left
                (fun (p, b) (s : Probe_tier.spec) ->
                  (p +. s.Probe_tier.c_p, b +. s.Probe_tier.c_b))
                (0.0, 0.0) specs
        in
        let next_read_worst =
          c.Cost_model.c_r
          +. Float.max
               (probe_worst +. batch_worst +. c.Cost_model.c_wp)
               (Float.max c.Cost_model.c_wi c.Cost_model.c_wp)
        in
        Some
          (fun ~pending ->
            let committed =
              spent_total ()
              +. (float_of_int pending *. (probe_worst +. c.Cost_model.c_wp))
              +. (if pending > 0 then batch_worst else 0.0)
            in
            committed +. next_read_worst > allotted)
      end
      else None
    in
    let deadline_stop =
      Option.map
        (fun secs ~pending:_ -> Span.default_clock () -. deadline_start >= secs)
        deadline
    in
    match (budget_stop, deadline_stop) with
    | None, None -> None
    | (Some _ as f), None -> f
    | None, (Some _ as g) -> g
    | Some f, Some g -> Some (fun ~pending -> f ~pending || g ~pending)
  in
  let report =
    span "scan" (fun () ->
        match columnar with
        | None ->
            Scan_pipeline.run ~rng ?pool ~meter ?obs ?emit ?collect
              ?should_stop ?cascade ~instance ~probe ~policy ~requirements
              data
        | Some c ->
            Column_scan.run ~rng ?pool ~meter ?obs ?emit ?collect ?should_stop
              ~prune:c.prune ?cascade ~store:c.store ~of_row:c.of_row
              ~pred:(Predicate.compile c.pred) ~instance ~probe ~policy
              ~requirements ())
  in
  let budget_summary =
    match (budget, deadline) with
    | None, None -> None
    | _ ->
        let spent = spent_total () in
        let target_recall, planner_limited =
          match plan with
          | Some { dual = Some d; _ } ->
              (d.Solver.target_recall, d.Solver.budget_limited)
          | _ -> (requirements.Quality.recall, false)
        in
        Some
          {
            allotted;
            spent;
            remaining = Float.max 0.0 (allotted -. spent);
            target_recall;
            budget_limited =
              planner_limited || report.Operator.stopped_early;
            budget_replans =
              (match adaptive_state with
              | Some a -> Adaptive.budget_replans a
              | None -> 0);
            stopped_early = report.Operator.stopped_early;
          }
  in
  (match (obs, pool) with
  | Some o, Some p ->
      Metrics.set
        (Obs.gauge o Obs.Keys.parallel_domains)
        (float_of_int (Domain_pool.domains p));
      Array.iteri
        (fun i busy -> Metrics.set (Obs.gauge o (Obs.Keys.domain_busy i)) busy)
        (Domain_pool.busy_seconds p)
  | _ -> ());
  let counts = Cost_meter.counts meter in
  let profile =
    match (profile, obs) with
    | None, _ | _, None -> None
    | Some pr, Some o ->
        let snap = Metrics.diff ~later:(Obs.snapshot o) ~earlier:snap0 in
        let reconcile_error =
          match
            match tiers with
            | Some specs ->
                Cost_meter.reconcile_tiers snap
                  ~names:
                    (Array.map (fun s -> s.Probe_tier.name) specs)
                  meter
            | None -> Cost_meter.reconcile snap counts
          with
          | Ok () -> None
          | Error msg -> Some msg
        in
        (* The oracle audit is pure arithmetic over the answer the run
           already produced — profiling cannot perturb the run. *)
        let ground_truth =
          Option.map
            (fun oracle ->
              let in_answer =
                List.fold_left
                  (fun acc (e : _ Operator.emitted) ->
                    if oracle e.obj then acc + 1 else acc)
                  0 report.Operator.answer
              in
              let exact_size =
                Array.fold_left
                  (fun acc o -> if oracle o then acc + 1 else acc)
                  0 data
              in
              (in_answer, exact_size))
            pr.oracle
        in
        let g = report.Operator.guarantees in
        Some
          (Profile.make ~label:pr.prof_label
             ~counts:
               {
                 Profile.reads = counts.Cost_meter.reads;
                 probes = counts.probes;
                 batches = counts.batches;
                 writes_imprecise = counts.writes_imprecise;
                 writes_precise = counts.writes_precise;
               }
             ~snapshot:snap
             ~requested_precision:requirements.Quality.precision
             ~requested_recall:requirements.Quality.recall
             ~guaranteed_precision:g.precision ~guaranteed_recall:g.recall
             ~guarantees_met:(Quality.meets g requirements)
             ~answer_size:report.Operator.answer_size
             ~degraded_probes:report.Operator.degraded.Operator.failed_probes
             ?budget:
               (Option.map
                  (fun (b : budget_summary) ->
                    {
                      Profile.b_allotted = b.allotted;
                      b_spent = b.spent;
                      b_target_recall = b.target_recall;
                      b_limited = b.budget_limited;
                    })
                  budget_summary)
             ?ground_truth ?reconcile_error ())
  in
  let degradation =
    degradation_of_report ~cost ~batch ?tiers ~requirements report
  in
  (* The audit shortfall surfaces on the trace so the server's flight
     recorder can treat "finished but below the requested quality" as
     an anomaly; deterministic per run, so domain-count determinism
     tests still see identical event streams. *)
  (match obs with
  | Some o when Obs.tracing o && not degradation.requirements_met ->
      let g = report.Operator.guarantees in
      Obs.event o
        (Trace.Shortfall
           {
             requested_precision = requirements.Quality.precision;
             requested_recall = requirements.Quality.recall;
             guaranteed_precision = g.Quality.precision;
             guaranteed_recall = g.Quality.recall;
           })
  | _ -> ());
  {
    report;
    plan;
    counts;
    normalized_cost =
      (if Array.length data = 0 then 0.0
       else spent_total () /. float_of_int (Array.length data));
    degradation;
    budget = budget_summary;
    profile;
    elapsed_seconds = run_clock () -. run_start;
  }

let execute ~rng ?(planning = default_planning) ?(adaptive = false)
    ?(cost = Cost_model.paper) ?batch ?max_laxity ?budget ?deadline ?domains
    ?obs ?emit ?collect ?profile ?on_task ?columnar ~instance ?probe ?cascade
    ~requirements data =
  (* Exactly one probe capability: a direct oracle driver, or a tiered
     cascade.  With a cascade the oracle driver only supplies defaults
     (the planner's batch size); all submissions go through the
     cascade. *)
  let probe =
    match (probe, cascade) with
    | Some p, None -> p
    | None, Some c -> Cascade.oracle c
    | Some _, Some _ ->
        invalid_arg "Engine.execute: pass either ~probe or ~cascade, not both"
    | None, None ->
        invalid_arg "Engine.execute: a probe capability is required"
  in
  (* Profiling diffs a metrics registry; conjure a private one when the
     caller wants a profile but passed no [?obs]. *)
  let obs =
    match (obs, profile) with None, Some _ -> Some (Obs.create ()) | o, _ -> o
  in
  let run ?pool () =
    execute_with ?pool ~rng ~planning ~adaptive ~cost ?batch ?max_laxity
      ?budget ?deadline ?obs ?emit ?collect ?profile ?columnar ?cascade
      ~instance ~probe ~requirements data
  in
  match Domain_pool.resolve ?domains () with
  | 1 -> run ()
  | d -> Domain_pool.with_pool ?on_task ~domains:d (fun pool -> run ~pool ())

(* ---- concurrent multi-query execution ----------------------------- *)

(* Trace IDs are minted process-wide so every query a server ever runs
   gets a distinct ID regardless of which batch or domain it lands on. *)
let trace_ids = Atomic.make 1
let next_trace_id () = Atomic.fetch_and_add trace_ids 1

type 'o query = {
  q_rng : Rng.t;
  q_planning : planning;
  q_adaptive : bool;
  q_cost : Cost_model.t;
  q_batch : int option;
  q_max_laxity : float option;
  q_budget : float option;
  q_deadline : float option;
  q_obs : Obs.t option;
  q_tenant : string option;
  q_id : int;
  q_instance : 'o Operator.instance;
  q_probe : 'o Probe_driver.t option;
  q_cascade : 'o Cascade.t option;
  q_requirements : Quality.requirements;
  q_data : 'o array;
}

let query ~rng ?(planning = default_planning) ?(adaptive = false)
    ?(cost = Cost_model.paper) ?batch ?max_laxity ?budget ?deadline ?obs
    ?tenant ?trace_id ~instance ?probe ?cascade ~requirements data =
  (match (probe, cascade) with
  | Some _, None | None, Some _ -> ()
  | Some _, Some _ ->
      invalid_arg "Engine.query: pass either ~probe or ~cascade, not both"
  | None, None -> invalid_arg "Engine.query: a probe capability is required");
  {
    q_rng = rng;
    q_planning = planning;
    q_adaptive = adaptive;
    q_cost = cost;
    q_batch = batch;
    q_max_laxity = max_laxity;
    q_budget = budget;
    q_deadline = deadline;
    q_obs = obs;
    q_tenant = tenant;
    q_id = (match trace_id with Some i -> i | None -> next_trace_id ());
    q_instance = instance;
    q_probe = probe;
    q_cascade = cascade;
    q_requirements = requirements;
    q_data = data;
  }

let trace_id q = q.q_id
let query_context q = { Trace.query = Some q.q_id; tenant = q.q_tenant }

let execute_one (q : 'o query) =
  (* Each query is pinned to one lane ([domains:1]): no nested pools,
     and [QAQ_DOMAINS] steers [execute] call sites, not the inner runs
     of an already-parallel batch.  A supplied observability capability
     is re-stamped so every event this query emits — through the
     operator, the probe driver, and any broker the driver feeds —
     carries its trace ID and tenant. *)
  let obs = Option.map (fun o -> Obs.with_context o (query_context q)) q.q_obs in
  execute ~rng:q.q_rng ~planning:q.q_planning ~adaptive:q.q_adaptive
    ~cost:q.q_cost ?batch:q.q_batch ?max_laxity:q.q_max_laxity
    ?budget:q.q_budget ?deadline:q.q_deadline ~domains:1 ?obs
    ~instance:q.q_instance ?probe:q.q_probe ?cascade:q.q_cascade
    ~requirements:q.q_requirements q.q_data

let execute_many ?domains (queries : 'o query array) =
  let n = Array.length queries in
  let d =
    match domains with
    | Some d when d < 1 -> invalid_arg "Engine.execute_many: domains < 1"
    | Some d -> d
    | None -> Stdlib.min (Stdlib.max 1 n) 16
  in
  if n = 0 then [||]
  else if d = 1 || n = 1 then Array.map execute_one queries
  else
    Domain_pool.with_pool ~domains:(Stdlib.min d n) (fun pool ->
        Domain_pool.run_all pool
          (Array.map (fun q () -> execute_one q) queries))
