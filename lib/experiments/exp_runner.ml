type policy_kind = Qaq | Stingy | Greedy | Fixed of Policy.params

let policy_name = function
  | Qaq -> "QaQ"
  | Stingy -> "Stingy"
  | Greedy -> "Greedy"
  | Fixed _ -> "Fixed"

let solve_setting ?cost ?batch (s : Exp_config.setting) =
  let spec =
    Region_model.uniform_spec ~f_y:s.f_y ~f_m:s.f_m ~max_laxity:s.max_laxity
  in
  let problem =
    Solver.problem ~total:s.total ~spec
      ~requirements:(Exp_config.requirements s) ?cost ?batch ()
  in
  Solver.solve problem

type outcome = {
  normalized_cost : float;
  cost : float;
  guarantees : Quality.guarantees;
  actual_precision : float;
  actual_recall : float;
  answer_size : int;
  read_fraction : float;
  counts : Cost_meter.counts;
  params_used : Policy.params option;
  met_requirements : bool;
}

(* The paper's QaQ: estimate f_y, f_m from a pre-query sample, keep the
   density assumption (uniform by default), solve for the region
   parameters.  The histogram density is the §4.2 refinement. *)
let qaq_params ~rng ?pool ~sample_fraction ~density ?cost ?batch
    (s : Exp_config.setting) data =
  let sample = Selectivity.bernoulli_sample rng ~fraction:sample_fraction data in
  let estimate, f_y, f_m =
    if Array.length sample = 0 then (None, s.f_y, s.f_m)
    else begin
      let e =
        Selectivity.estimate ~instance:Synthetic.instance ?pool
          ~laxity_cap:s.max_laxity sample
      in
      (Some e, e.f_y, e.f_m)
    end
  in
  let density =
    match (density, estimate) with
    | `Histogram, Some e -> Density.of_estimate e
    | (`Uniform | `Histogram), _ -> Density.uniform ~max_laxity:s.max_laxity
  in
  let spec =
    Region_model.spec ~f_y ~f_m ~max_laxity:s.max_laxity ~density
  in
  let problem =
    Solver.problem ~total:s.total ~spec
      ~requirements:(Exp_config.requirements s) ?cost ?batch ()
  in
  (Solver.solve problem).params

let trial_with ?pool ~rng ~sample_fraction ~density ~cost ~batch ?enforce ?obs
    ~(setting : Exp_config.setting) ~data kind =
  let params =
    match kind with
    | Qaq ->
        qaq_params ~rng ?pool ~sample_fraction ~density ~cost ~batch setting
          data
    | Stingy -> Policy.stingy_params
    | Greedy -> Policy.greedy_params
    | Fixed p -> p
  in
  (* The paper's Greedy trials let Greedy run its policy raw: its cost is
     reported as constant across precision bounds it cannot honour
     (§5.2, varying precision), which is only possible without the
     Theorem 3.1 precision guard.  QaQ and Stingy are evaluated with the
     guards, as the paper's framework prescribes. *)
  let enforce =
    match enforce with
    | Some e -> e
    | None -> ( match kind with Greedy -> false | Qaq | Stingy | Fixed _ -> true)
  in
  let requirements = Exp_config.requirements setting in
  let report =
    Scan_pipeline.run ~rng ?pool ?obs ~enforce ~instance:Synthetic.instance
      ~probe:(Probe_driver.of_scalar ?obs ~batch_size:batch Synthetic.probe)
      ~policy:(Policy.qaq params) ~requirements data
  in
  let answer_in_exact =
    List.fold_left
      (fun acc (e : Synthetic.obj Operator.emitted) ->
        if Synthetic.in_exact e.obj then acc + 1 else acc)
      0 report.answer
  in
  let exact = Synthetic.exact_size data in
  let total = Array.length data in
  let w = Operator.cost cost report in
  {
    normalized_cost = (if total = 0 then 0.0 else w /. float_of_int total);
    cost = w;
    guarantees = report.guarantees;
    actual_precision =
      Quality.Diagnostics.precision ~answer_size:report.answer_size
        ~answer_in_exact;
    actual_recall =
      Quality.Diagnostics.recall ~exact_size:exact ~answer_in_exact;
    answer_size = report.answer_size;
    read_fraction =
      (if total = 0 then 1.0
       else float_of_int report.counts.reads /. float_of_int total);
    counts = report.counts;
    params_used = Some params;
    met_requirements = Quality.meets report.guarantees requirements;
  }

let trial_run ~rng ?(sample_fraction = 0.01) ?(density = `Uniform)
    ?(cost = Cost_model.paper) ?(batch = 1) ?enforce ?obs ?domains ~setting
    ~data kind =
  let go ?pool () =
    trial_with ?pool ~rng ~sample_fraction ~density ~cost ~batch ?enforce ?obs
      ~setting ~data kind
  in
  match Domain_pool.resolve ?domains () with
  | 1 -> go ()
  | d -> Domain_pool.with_pool ~domains:d (fun pool -> go ~pool ())

type aggregate = {
  repetitions : int;
  mean_cost : float;
  ci95 : float;
  mean_precision : float;
  mean_recall : float;
  worst_precision_violation : float;
  worst_recall_violation : float;
}

let aggregate (s : Exp_config.setting) outcomes =
  let arr f = Array.of_list (List.map f outcomes) in
  let costs = arr (fun o -> o.normalized_cost) in
  let precisions = arr (fun o -> o.actual_precision) in
  let recalls = arr (fun o -> o.actual_recall) in
  let worst f bound =
    List.fold_left
      (fun acc o -> Float.max acc (bound -. f o))
      0.0 outcomes
  in
  {
    repetitions = List.length outcomes;
    mean_cost = Stats.mean costs;
    ci95 = Stats.confidence95 costs;
    mean_precision = Stats.mean precisions;
    mean_recall = Stats.mean recalls;
    worst_precision_violation = worst (fun o -> o.actual_precision) s.p_q;
    worst_recall_violation = worst (fun o -> o.actual_recall) s.r_q;
  }

let trial_series ~rng ?(repetitions = 5) ?(sample_fraction = 0.01)
    ?(density = `Uniform) ?(cost = Cost_model.paper) ?(batch = 1) ?obs ?domains
    (setting : Exp_config.setting) kinds =
  let datasets =
    List.init repetitions (fun _ ->
        Synthetic.generate rng (Exp_config.workload setting))
  in
  (* One pool for the whole series, not one per trial: worker spawn cost
     is paid once and the trials reuse the lanes. *)
  let series ?pool () =
    List.map
      (fun kind ->
        let outcomes =
          List.map
            (fun data ->
              trial_with ?pool ~rng ~sample_fraction ~density ~cost ~batch ?obs
                ~setting ~data kind)
            datasets
        in
        (kind, aggregate setting outcomes))
      kinds
  in
  match Domain_pool.resolve ?domains () with
  | 1 -> series ()
  | d -> Domain_pool.with_pool ~domains:d (fun pool -> series ~pool ())

let parallel_configs ?domains configs =
  match Domain_pool.resolve ?domains () with
  | 1 -> List.map (fun f -> f ()) configs
  | d ->
      Domain_pool.with_pool ~domains:d (fun pool ->
          Array.to_list (Domain_pool.run_all pool (Array.of_list configs)))
