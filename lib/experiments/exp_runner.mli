(** Runners for the paper's two experiment families.

    §5.1: solve the optimization problem for a setting
    ({!solve_setting}) — the theoretical optimum under the uniform
    density and exact selectivities.

    §5.2: actually run the QaQ operator over generated data
    ({!trial_run}), with the QaQ policy's parameters estimated from a 1%
    sample exactly as in the paper, and compare against the Stingy and
    Greedy baselines on the same datasets. *)

type policy_kind =
  | Qaq  (** optimizer parameters estimated from a sample *)
  | Stingy
  | Greedy
  | Fixed of Policy.params  (** run with externally chosen parameters *)

val policy_name : policy_kind -> string

val solve_setting :
  ?cost:Cost_model.t -> ?batch:int -> Exp_config.setting -> Solver.evaluation
(** The §5.1 computation: exact [f_y]/[f_m], uniform density.  [cost]
    (default {!Cost_model.paper}) and [batch] (default 1) are passed to
    {!Solver.problem}, so the batched-probe pricing can be studied on the
    paper settings. *)

type outcome = {
  normalized_cost : float;  (** W / |T| under the paper cost model *)
  cost : float;
  guarantees : Quality.guarantees;
  actual_precision : float;  (** Eq. 3 against generator ground truth *)
  actual_recall : float;  (** Eq. 4 against generator ground truth *)
  answer_size : int;
  read_fraction : float;
  counts : Cost_meter.counts;
  params_used : Policy.params option;  (** [None] for [Custom] policies *)
  met_requirements : bool;
      (** whether the guarantees met the requirements; always true with
          the Theorem 3.1 guard on *)
}

val trial_run :
  rng:Rng.t ->
  ?sample_fraction:float ->
  ?density:[ `Uniform | `Histogram ] ->
  ?cost:Cost_model.t ->
  ?batch:int ->
  ?enforce:bool ->
  ?obs:Obs.t ->
  ?domains:int ->
  setting:Exp_config.setting ->
  data:Synthetic.obj array ->
  policy_kind ->
  outcome
(** One trial on pre-generated data.  [sample_fraction] (default 0.01)
    and [density] (default [`Uniform], the paper's choice) only affect
    [Qaq].  Sampling is pre-query work and is not charged to the meter,
    as in the paper.  [batch] (default 1, the paper's scalar path) sets
    the probe batch size: the operator probes through a driver of that
    size and the [Qaq] planner prices probes at the amortized
    [c_p + c_b/batch].  [enforce] overrides the Theorem 3.1 guard; by
    default it is on for every policy except [Greedy], which the paper's
    trials run raw (see {!Operator.run}).  [obs] instruments the
    operator and the probe driver (see {!Operator.run}).  [domains]
    (default: {!Domain_pool.resolve} over [QAQ_DOMAINS], else 1) fans
    the pure per-object work out across a {!Domain_pool} for the
    duration of the trial; the outcome is bit-for-bit identical for
    every value (see [Scan_pipeline]). *)

type aggregate = {
  repetitions : int;
  mean_cost : float;  (** mean normalised cost *)
  ci95 : float;
  mean_precision : float;
  mean_recall : float;
  worst_precision_violation : float;
      (** max over runs of (p_q − actual precision), floor 0 — should be 0:
          guarantees are sound *)
  worst_recall_violation : float;
}

val aggregate : Exp_config.setting -> outcome list -> aggregate

val trial_series :
  rng:Rng.t ->
  ?repetitions:int ->
  ?sample_fraction:float ->
  ?density:[ `Uniform | `Histogram ] ->
  ?cost:Cost_model.t ->
  ?batch:int ->
  ?obs:Obs.t ->
  ?domains:int ->
  Exp_config.setting ->
  policy_kind list ->
  (policy_kind * aggregate) list
(** [repetitions] (default 5) independent datasets; all policies run on
    the same datasets for paired comparison.  With [domains > 1] a
    single {!Domain_pool} is shared by every trial in the series. *)

val parallel_configs : ?domains:int -> (unit -> 'a) list -> 'a list
(** Run independent experiment configurations — whole sweeps, not
    single objects — on separate domains, returning their results in
    input order.  Each thunk must be self-contained (own rng, no shared
    mutable state, no printing): thunks run concurrently on different
    domains.  With [domains] resolved to 1 ({!Domain_pool.resolve}) the
    thunks run sequentially in order, so results never depend on the
    lane count. *)
