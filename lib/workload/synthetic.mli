(** The paper's synthetic workload (§5.2).

    Objects are generated with label YES, MAYBE or NO with probabilities
    [f_y], [f_m], [1 − f_y − f_m].  Each MAYBE object gets a success
    probability [s(o) ~ U(0, 1)] and a pre-drawn probe outcome (YES with
    probability [s(o)]).  Every object gets a laxity [l(o) ~ U(0, L)].
    A probe returns the resolved, laxity-0 version of the object.

    The labels are the generator's ground truth, so the exact set of the
    query is known and the diagnostics of §2 can be computed — exactly
    what the trial runs of §5.2 need. *)

type config = {
  total : int;
  f_y : float;
  f_m : float;
  max_laxity : float;  (** L, default experiments use 100 *)
}

val config :
  ?total:int -> ?f_y:float -> ?f_m:float -> ?max_laxity:float -> unit -> config
(** Defaults are the paper's: [total = 10000], [f_y = f_m = 0.2],
    [max_laxity = 100].
    @raise Invalid_argument on negative sizes, fractions outside [0, 1]
    or summing above 1, or non-positive laxity. *)

type obj = private {
  id : int;
  label : Tvl.t;  (** verdict of λ on the imprecise object *)
  laxity : float;
  success : float;  (** s(o); 1 for YES, 0 for NO *)
  probe_yes : bool;  (** ground truth: does ω^o satisfy λ? *)
  resolved : bool;  (** true after a probe *)
}

val make :
  id:int ->
  label:Tvl.t ->
  laxity:float ->
  success:float ->
  probe_yes:bool ->
  resolved:bool ->
  obj
(** Build an object directly (deserialisation, hand-written tests).
    @raise Invalid_argument if the fields are incoherent: negative
    laxity, success outside [0, 1], a YES whose probe outcome is not
    YES (or success not 1), or a NO that would probe YES. *)

val generate : Rng.t -> config -> obj array

val generate_drifting :
  Rng.t -> config -> f_y_end:float -> f_m_end:float -> obj array
(** Like {!generate} but the composition drifts linearly along the scan:
    position 0 draws labels with the config's [(f_y, f_m)], the final
    position with [(f_y_end, f_m_end)].  A pre-query sample sees the
    average mix, so a one-shot plan is systematically wrong for the tail
    — the scenario motivating adaptive re-planning.
    @raise Invalid_argument on invalid end fractions. *)

val generate_skewed :
  Rng.t -> config -> laxity_exponent:float -> success_exponent:float ->
  obj array
(** Like {!generate} but with power-law-skewed marginals:
    [l(o) = L·u^laxity_exponent] and [s(o) = u^success_exponent] for
    [u ~ U(0, 1)].  Exponent 1 recovers the uniform workload; larger
    exponents concentrate mass near 0.  Used to ablate the optimizer's
    uniform-density assumption against the histogram density of §4.2.
    @raise Invalid_argument on non-positive exponents. *)

val instance : obj Operator.instance
(** Classification, laxity and success as the operator sees them: a
    resolved object classifies definitively with laxity 0. *)

val probe : obj -> obj
(** The probe operation: the resolved version of the object. *)

val shrink : power:float -> obj -> obj
(** A cheap-proxy narrowing of the object: laxity contracts to
    [(1 − power)·laxity] and a MAYBE's success probability moves
    toward its pre-drawn ground truth by the same factor, so the
    narrowed object is a sound imprecise view of the same precise
    object (the verdict of λ never weakens, the laxity never grows).
    [power = 0] is the identity; [power = 1] degenerates to {!probe}.
    Resolved objects pass through unchanged.  On this workload a
    partial shrink keeps a MAYBE imprecise — the win comes from
    laxity-based forwarding, not verdict flips — so a [Shrink] tier
    must sit above a [Resolve] tier that settles the residual.
    @raise Invalid_argument if [power] is outside [0, 1]. *)

val exact_size : obj array -> int
(** |E|: number of objects whose precise version satisfies λ. *)

val in_exact : obj -> bool
(** Whether this object's precise version satisfies λ. *)
