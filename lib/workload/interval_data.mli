(** Interval-approximated scalar datasets with hidden ground truth.

    This is the paper's running example made concrete: each record has a
    precise value (a sensor reading, a stock price, …) that the query site
    does not know, and an imprecise belief — typically an interval
    containing the value.  A probe reveals the value.  Queries are
    ordinary scalar {!Predicate}s; classification, laxity and success
    probability come from the belief model.

    Because the generator keeps the truth, the exact set of any query is
    computable, which tests and experiments use for the §2 diagnostics. *)

type record = {
  id : int;
  belief : Uncertain.t;  (** what the query processor stores *)
  truth : float;  (** hidden; revealed by a probe *)
}

val instance : Predicate.t -> record Operator.instance
(** The operator view of a record under a query predicate. *)

val probe : record -> record
(** The probe operation: belief collapses to [Exact truth]. *)

val shrink : power:float -> record -> record
(** A proxy-tier probe: the belief interval contracts towards the truth,
    keeping fraction [1 -. power] of the distance to each bound.  The
    result is a subset of the original interval and still contains the
    truth (a sound imprecise model); [power = 1.] collapses to the
    exact truth, [power = 0.] is the identity.  [Exact] beliefs pass
    through unchanged.
    @raise Invalid_argument on a power outside [0, 1] or a Gaussian
    belief. *)

val exact_set : Predicate.t -> record array -> record list
(** Records whose true value satisfies the predicate (Eq. 1). *)

val exact_size : Predicate.t -> record array -> int

val in_exact : Predicate.t -> record -> bool

(** {2 Columnar form}

    The flat schema ([id], support [lo]/[hi], [truth]) of the columnar
    engine.  Only exact and interval beliefs fit — the same restriction
    as the CSV record codec — and a degenerate support decodes back to
    an [Exact] belief, mirroring that codec's choice. *)

val to_row : record -> Column_store.row
(** @raise Invalid_argument on a Gaussian belief. *)

val of_row : Column_store.row -> record

val to_store : ?chunk_size:int -> record array -> Column_store.t
(** Resident columnar store of the records in array order
    ({!Column_store.create}). *)

val of_store : Column_store.t -> record array
(** Materialize every record in storage order — the row view that
    planning and equivalence oracles run from. *)

(** {2 Generators} *)

val uniform_intervals :
  Rng.t ->
  n:int ->
  value_range:Interval.t ->
  max_width:float ->
  record array
(** Truths uniform in [value_range]; each belief is an interval of width
    [~ U(0, max_width)] positioned uniformly around the truth, so the
    truth is uniformly distributed within its interval — matching the
    success-probability model of §4.1.
    @raise Invalid_argument if [n < 0] or [max_width <= 0]. *)

val gaussian_beliefs :
  Rng.t ->
  n:int ->
  mean:float ->
  stddev:float ->
  noise:float ->
  record array
(** Truths from [N(mean, stddev²)]; each belief is a Gaussian centred on
    a noisy observation of the truth with standard deviation [noise] —
    the distribution-based imprecision model of §2.2.  Beliefs whose
    4-sigma support excludes the truth are redrawn so probes stay
    consistent. *)
