type record = {
  id : int;
  belief : Uncertain.t;
  truth : float;
}

let instance pred : record Operator.instance =
  {
    classify = (fun r -> Predicate.classify pred r.belief);
    laxity = (fun r -> Uncertain.laxity r.belief);
    success = (fun r -> Predicate.success pred r.belief);
  }

let probe r = { r with belief = Uncertain.exact r.truth }

(* A proxy-tier narrowing: contract the belief interval towards the
   truth, keeping fraction [1 - power] of the distance to each bound.
   The shrunk interval is a subset of the original and still contains
   the truth — a sound imprecise model — so Theorem 3.1 survives
   re-classification; [power = 1] collapses to the exact truth.  Exact
   beliefs are already points and pass through unchanged. *)
let shrink ~power r =
  if not (Float.is_finite power && power >= 0.0 && power <= 1.0) then
    invalid_arg "Interval_data.shrink: power outside [0, 1]";
  match r.belief with
  | Uncertain.Exact _ -> r
  | Uncertain.Interval i ->
      let keep = 1.0 -. power in
      let lo = r.truth -. (keep *. (r.truth -. Interval.lo i))
      and hi = r.truth +. (keep *. (Interval.hi i -. r.truth)) in
      let belief =
        if lo = hi then Uncertain.exact r.truth else Uncertain.interval lo hi
      in
      { r with belief }
  | Uncertain.Gaussian _ ->
      invalid_arg "Interval_data.shrink: gaussian beliefs have no interval shrink"

(* Flat columnar form: the belief support as two floats.  Same encoding
   decision as the CSV codec — a degenerate support round-trips to an
   [Exact] belief — so a record survives record -> row -> record
   whenever it came from the flat schema in the first place. *)
let to_row (r : record) : Column_store.row =
  match r.belief with
  | Uncertain.Exact v -> { Column_store.id = r.id; lo = v; hi = v; truth = r.truth }
  | Uncertain.Interval i ->
      { Column_store.id = r.id; lo = Interval.lo i; hi = Interval.hi i; truth = r.truth }
  | Uncertain.Gaussian _ ->
      invalid_arg "Interval_data.to_row: gaussian beliefs have no flat columnar form"

let of_row (row : Column_store.row) : record =
  {
    id = row.Column_store.id;
    belief =
      (if row.Column_store.lo = row.Column_store.hi then
         Uncertain.exact row.Column_store.lo
       else Uncertain.interval row.Column_store.lo row.Column_store.hi);
    truth = row.Column_store.truth;
  }

let to_store ?chunk_size records =
  Column_store.create ?chunk_size (Array.map to_row records)

let of_store store = Row_view.to_array (Row_view.create store ~of_row)
let in_exact pred r = Predicate.eval pred r.truth

let exact_set pred records =
  Array.to_list records |> List.filter (in_exact pred)

let exact_size pred records =
  Array.fold_left (fun acc r -> if in_exact pred r then acc + 1 else acc) 0 records

let uniform_intervals rng ~n ~value_range ~max_width =
  if n < 0 then invalid_arg "Interval_data.uniform_intervals: n < 0";
  if max_width <= 0.0 then
    invalid_arg "Interval_data.uniform_intervals: max_width <= 0";
  Array.init n (fun id ->
      let truth = Interval.sample rng value_range in
      let width = Rng.float rng max_width in
      (* Slide the interval uniformly around the truth so that, given the
         interval, the truth is uniform within it. *)
      let offset = Rng.float rng width in
      let belief = Uncertain.interval (truth -. offset) (truth -. offset +. width) in
      { id; belief; truth })

let gaussian_beliefs rng ~n ~mean ~stddev ~noise =
  if n < 0 then invalid_arg "Interval_data.gaussian_beliefs: n < 0";
  if stddev <= 0.0 || noise <= 0.0 then
    invalid_arg "Interval_data.gaussian_beliefs: non-positive scale";
  Array.init n (fun id ->
      let truth = Rng.gaussian rng ~mean ~stddev in
      let rec belief () =
        let observed = Rng.gaussian rng ~mean:truth ~stddev:noise in
        let b = Uncertain.gaussian ~mean:observed ~stddev:noise () in
        if Interval.contains (Uncertain.support b) truth then b else belief ()
      in
      { id; belief = belief (); truth })
