type config = {
  total : int;
  f_y : float;
  f_m : float;
  max_laxity : float;
}

let config ?(total = 10000) ?(f_y = 0.2) ?(f_m = 0.2) ?(max_laxity = 100.0) () =
  if total < 0 then invalid_arg "Synthetic.config: total < 0";
  if f_y < 0.0 || f_m < 0.0 || f_y > 1.0 || f_m > 1.0 || f_y +. f_m > 1.0 then
    invalid_arg "Synthetic.config: invalid fractions";
  if not (Float.is_finite max_laxity && max_laxity > 0.0) then
    invalid_arg "Synthetic.config: max_laxity <= 0";
  { total; f_y; f_m; max_laxity }

type obj = {
  id : int;
  label : Tvl.t;
  laxity : float;
  success : float;
  probe_yes : bool;
  resolved : bool;
}

let make ~id ~label ~laxity ~success ~probe_yes ~resolved =
  if not (Float.is_finite laxity && laxity >= 0.0) then
    invalid_arg "Synthetic.make: negative laxity";
  if not (success >= 0.0 && success <= 1.0) then
    invalid_arg "Synthetic.make: success outside [0, 1]";
  (match (label : Tvl.t) with
  | Tvl.Yes ->
      if not (probe_yes && success = 1.0) then
        invalid_arg "Synthetic.make: YES object must probe YES with success 1"
  | Tvl.No ->
      if probe_yes || success <> 0.0 then
        invalid_arg "Synthetic.make: NO object must probe NO with success 0"
  | Tvl.Maybe -> ());
  { id; label; laxity; success; probe_yes; resolved }

let generate_with rng cfg ~draw_laxity ~draw_success =
  Array.init cfg.total (fun id ->
      let u = Rng.uniform rng in
      let label =
        if u < cfg.f_y then Tvl.Yes
        else if u < cfg.f_y +. cfg.f_m then Tvl.Maybe
        else Tvl.No
      in
      let success =
        match label with
        | Tvl.Yes -> 1.0
        | Tvl.No -> 0.0
        | Tvl.Maybe -> draw_success rng
      in
      let probe_yes =
        match label with
        | Tvl.Yes -> true
        | Tvl.No -> false
        | Tvl.Maybe -> Rng.bernoulli rng success
      in
      { id; label; laxity = draw_laxity rng; success; probe_yes; resolved = false })

let generate rng cfg =
  generate_with rng cfg
    ~draw_laxity:(fun rng -> Rng.float rng cfg.max_laxity)
    ~draw_success:Rng.uniform

let generate_drifting rng cfg ~f_y_end ~f_m_end =
  if
    f_y_end < 0.0 || f_m_end < 0.0 || f_y_end > 1.0 || f_m_end > 1.0
    || f_y_end +. f_m_end > 1.0
  then invalid_arg "Synthetic.generate_drifting: invalid end fractions";
  let n = Stdlib.max 1 (cfg.total - 1) in
  Array.init cfg.total (fun id ->
      let t = float_of_int id /. float_of_int n in
      let mix a b = a +. (t *. (b -. a)) in
      let local =
        { cfg with total = 1; f_y = mix cfg.f_y f_y_end; f_m = mix cfg.f_m f_m_end }
      in
      let one = generate rng local in
      { one.(0) with id })

let generate_skewed rng cfg ~laxity_exponent ~success_exponent =
  if laxity_exponent <= 0.0 || success_exponent <= 0.0 then
    invalid_arg "Synthetic.generate_skewed: non-positive exponent";
  generate_with rng cfg
    ~draw_laxity:(fun rng ->
      cfg.max_laxity *. Float.pow (Rng.uniform rng) laxity_exponent)
    ~draw_success:(fun rng -> Float.pow (Rng.uniform rng) success_exponent)

let instance : obj Operator.instance =
  {
    classify =
      (fun o ->
        if o.resolved then Tvl.of_bool o.probe_yes else o.label);
    laxity = (fun o -> if o.resolved then 0.0 else o.laxity);
    success =
      (fun o ->
        if o.resolved then (if o.probe_yes then 1.0 else 0.0) else o.success);
  }

let probe o = { o with resolved = true }

let shrink ~power o =
  if not (Float.is_finite power && power >= 0.0 && power <= 1.0) then
    invalid_arg "Synthetic.shrink: power outside [0, 1]";
  if o.resolved || power = 0.0 then o
  else if power = 1.0 then probe o
  else
    let keep = 1.0 -. power in
    let success =
      match o.label with
      | Tvl.Maybe ->
          if o.probe_yes then 1.0 -. (keep *. (1.0 -. o.success))
          else keep *. o.success
      | Tvl.Yes | Tvl.No -> o.success
    in
    { o with laxity = keep *. o.laxity; success }

let in_exact o = o.probe_yes

let exact_size objects =
  Array.fold_left (fun acc o -> if in_exact o then acc + 1 else acc) 0 objects
