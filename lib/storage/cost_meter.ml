type counts = {
  reads : int;
  probes : int;
  batches : int;
  writes_imprecise : int;
  writes_precise : int;
}

type t = {
  mutable reads : int;
  mutable probes : int;
  mutable batches : int;
  mutable writes_imprecise : int;
  mutable writes_precise : int;
  (* Per-cascade-tier breakdown of [probes]/[batches]; slot [i] is tier
     [i].  Grown on demand so single-tier callers never touch it. *)
  mutable tier_probes : int array;
  mutable tier_batches : int array;
}

let create () =
  {
    reads = 0;
    probes = 0;
    batches = 0;
    writes_imprecise = 0;
    writes_precise = 0;
    tier_probes = [||];
    tier_batches = [||];
  }

let reset t =
  t.reads <- 0;
  t.probes <- 0;
  t.batches <- 0;
  t.writes_imprecise <- 0;
  t.writes_precise <- 0;
  t.tier_probes <- [||];
  t.tier_batches <- [||]

let ensure_tier arr i =
  let n = Array.length !arr in
  if i >= n then begin
    let grown = Array.make (i + 1) 0 in
    Array.blit !arr 0 grown 0 n;
    arr := grown
  end

let charge_read t = t.reads <- t.reads + 1
let charge_probe t = t.probes <- t.probes + 1
let charge_batch t = t.batches <- t.batches + 1

let charge_probe_tier t i =
  if i < 0 then invalid_arg "Cost_meter.charge_probe_tier";
  let arr = ref t.tier_probes in
  ensure_tier arr i;
  t.tier_probes <- !arr;
  t.tier_probes.(i) <- t.tier_probes.(i) + 1;
  t.probes <- t.probes + 1

let charge_batch_tier t i =
  if i < 0 then invalid_arg "Cost_meter.charge_batch_tier";
  let arr = ref t.tier_batches in
  ensure_tier arr i;
  t.tier_batches <- !arr;
  t.tier_batches.(i) <- t.tier_batches.(i) + 1;
  t.batches <- t.batches + 1

let tier_counts t = (Array.copy t.tier_probes, Array.copy t.tier_batches)
let charge_write_imprecise t = t.writes_imprecise <- t.writes_imprecise + 1
let charge_write_precise t = t.writes_precise <- t.writes_precise + 1

let counts t : counts =
  {
    reads = t.reads;
    probes = t.probes;
    batches = t.batches;
    writes_imprecise = t.writes_imprecise;
    writes_precise = t.writes_precise;
  }

let cost_of_counts (m : Cost_model.t) (c : counts) =
  (float_of_int c.reads *. m.c_r)
  +. (float_of_int c.probes *. m.c_p)
  +. (float_of_int c.batches *. m.c_b)
  +. (float_of_int c.writes_imprecise *. m.c_wi)
  +. (float_of_int c.writes_precise *. m.c_wp)

let total_cost m t = cost_of_counts m (counts t)

(* Tiered total: probes/batches attributed to a tier are priced at that
   tier's (c_p, c_b); any remainder (work charged through the untier'd
   [charge_probe]/[charge_batch], e.g. planning pilots) is priced at the
   base model.  With no tier charges this is exactly [total_cost]. *)
let tiered_cost (m : Cost_model.t) ~(tiers : Probe_tier.spec array) t =
  let sum = Array.fold_left ( + ) 0 in
  let tp = t.tier_probes and tb = t.tier_batches in
  let tier_part = ref 0.0 in
  Array.iteri
    (fun i (s : Probe_tier.spec) ->
      let p = if i < Array.length tp then tp.(i) else 0 in
      let b = if i < Array.length tb then tb.(i) else 0 in
      tier_part :=
        !tier_part
        +. (float_of_int p *. s.Probe_tier.c_p)
        +. (float_of_int b *. s.Probe_tier.c_b))
    tiers;
  let base_probes = t.probes - sum tp and base_batches = t.batches - sum tb in
  (float_of_int t.reads *. m.c_r)
  +. (float_of_int base_probes *. m.c_p)
  +. (float_of_int base_batches *. m.c_b)
  +. (float_of_int t.writes_imprecise *. m.c_wi)
  +. (float_of_int t.writes_precise *. m.c_wp)
  +. !tier_part

(* The metrics side is incremented at observability instrumentation
   sites, the meter at cost-charging sites; equality of the two is the
   "all work is metered" invariant the test suite enforces. *)
let reconcile snapshot (c : counts) =
  let check name expected errs =
    let got = Metrics.count_of snapshot name in
    if got = expected then errs
    else
      Printf.sprintf "%s: metrics say %d, meter says %d" name got expected
      :: errs
  in
  let errs =
    []
    |> check Obs.Keys.reads c.reads
    |> check Obs.Keys.probes c.probes
    |> check Obs.Keys.batches c.batches
    |> check Obs.Keys.writes_imprecise c.writes_imprecise
    |> check Obs.Keys.writes_precise c.writes_precise
  in
  match errs with
  | [] -> Ok ()
  | es -> Error (String.concat "; " (List.rev es))

(* Per-tier flavour: the base five names must agree as in [reconcile],
   and additionally each tier's qaq.probe.tier.<name>.{probes,batches}
   counter must equal the meter's per-tier slot. *)
let reconcile_tiers snapshot ~(names : string array) t =
  let check name expected errs =
    let got = Metrics.count_of snapshot name in
    if got = expected then errs
    else
      Printf.sprintf "%s: metrics say %d, meter says %d" name got expected
      :: errs
  in
  let base = reconcile snapshot (counts t) in
  let errs = match base with Ok () -> [] | Error e -> [ e ] in
  let errs = ref errs in
  Array.iteri
    (fun i name ->
      let p = if i < Array.length t.tier_probes then t.tier_probes.(i) else 0 in
      let b =
        if i < Array.length t.tier_batches then t.tier_batches.(i) else 0
      in
      errs := check (Obs.Keys.tier_probes name) p !errs;
      errs := check (Obs.Keys.tier_batches name) b !errs)
    names;
  match !errs with
  | [] -> Ok ()
  | es -> Error (String.concat "; " (List.rev es))

let pp_counts ppf (c : counts) =
  Format.fprintf ppf
    "reads=%d probes=%d batches=%d writes_imprecise=%d writes_precise=%d"
    c.reads c.probes c.batches c.writes_imprecise c.writes_precise
