type counts = {
  reads : int;
  probes : int;
  batches : int;
  writes_imprecise : int;
  writes_precise : int;
}

type t = {
  mutable reads : int;
  mutable probes : int;
  mutable batches : int;
  mutable writes_imprecise : int;
  mutable writes_precise : int;
}

let create () =
  { reads = 0; probes = 0; batches = 0; writes_imprecise = 0; writes_precise = 0 }

let reset t =
  t.reads <- 0;
  t.probes <- 0;
  t.batches <- 0;
  t.writes_imprecise <- 0;
  t.writes_precise <- 0

let charge_read t = t.reads <- t.reads + 1
let charge_probe t = t.probes <- t.probes + 1
let charge_batch t = t.batches <- t.batches + 1
let charge_write_imprecise t = t.writes_imprecise <- t.writes_imprecise + 1
let charge_write_precise t = t.writes_precise <- t.writes_precise + 1

let counts t : counts =
  {
    reads = t.reads;
    probes = t.probes;
    batches = t.batches;
    writes_imprecise = t.writes_imprecise;
    writes_precise = t.writes_precise;
  }

let cost_of_counts (m : Cost_model.t) (c : counts) =
  (float_of_int c.reads *. m.c_r)
  +. (float_of_int c.probes *. m.c_p)
  +. (float_of_int c.batches *. m.c_b)
  +. (float_of_int c.writes_imprecise *. m.c_wi)
  +. (float_of_int c.writes_precise *. m.c_wp)

let total_cost m t = cost_of_counts m (counts t)

let pp_counts ppf (c : counts) =
  Format.fprintf ppf
    "reads=%d probes=%d batches=%d writes_imprecise=%d writes_precise=%d"
    c.reads c.probes c.batches c.writes_imprecise c.writes_precise
