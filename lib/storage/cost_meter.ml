type counts = {
  reads : int;
  probes : int;
  batches : int;
  writes_imprecise : int;
  writes_precise : int;
}

type t = {
  mutable reads : int;
  mutable probes : int;
  mutable batches : int;
  mutable writes_imprecise : int;
  mutable writes_precise : int;
}

let create () =
  { reads = 0; probes = 0; batches = 0; writes_imprecise = 0; writes_precise = 0 }

let reset t =
  t.reads <- 0;
  t.probes <- 0;
  t.batches <- 0;
  t.writes_imprecise <- 0;
  t.writes_precise <- 0

let charge_read t = t.reads <- t.reads + 1
let charge_probe t = t.probes <- t.probes + 1
let charge_batch t = t.batches <- t.batches + 1
let charge_write_imprecise t = t.writes_imprecise <- t.writes_imprecise + 1
let charge_write_precise t = t.writes_precise <- t.writes_precise + 1

let counts t : counts =
  {
    reads = t.reads;
    probes = t.probes;
    batches = t.batches;
    writes_imprecise = t.writes_imprecise;
    writes_precise = t.writes_precise;
  }

let cost_of_counts (m : Cost_model.t) (c : counts) =
  (float_of_int c.reads *. m.c_r)
  +. (float_of_int c.probes *. m.c_p)
  +. (float_of_int c.batches *. m.c_b)
  +. (float_of_int c.writes_imprecise *. m.c_wi)
  +. (float_of_int c.writes_precise *. m.c_wp)

let total_cost m t = cost_of_counts m (counts t)

(* The metrics side is incremented at observability instrumentation
   sites, the meter at cost-charging sites; equality of the two is the
   "all work is metered" invariant the test suite enforces. *)
let reconcile snapshot (c : counts) =
  let check name expected errs =
    let got = Metrics.count_of snapshot name in
    if got = expected then errs
    else
      Printf.sprintf "%s: metrics say %d, meter says %d" name got expected
      :: errs
  in
  let errs =
    []
    |> check Obs.Keys.reads c.reads
    |> check Obs.Keys.probes c.probes
    |> check Obs.Keys.batches c.batches
    |> check Obs.Keys.writes_imprecise c.writes_imprecise
    |> check Obs.Keys.writes_precise c.writes_precise
  in
  match errs with
  | [] -> Ok ()
  | es -> Error (String.concat "; " (List.rev es))

let pp_counts ppf (c : counts) =
  Format.fprintf ppf
    "reads=%d probes=%d batches=%d writes_imprecise=%d writes_precise=%d"
    c.reads c.probes c.batches c.writes_imprecise c.writes_precise
