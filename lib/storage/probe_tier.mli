(** Tier specifications for tiered probe cascades.

    A cascade is an ordered array of tiers: zero or more cheap
    [Shrink] proxies (each narrows an object's imprecision interval
    with effectiveness [power] — the probability a shrunk object
    becomes definite under the query) followed by exactly one
    [Resolve] oracle tier that returns a point.  Each tier carries its
    own per-probe cost, per-batch cost and batch size, so tier [i]'s
    amortized probe price is [c_p +. c_b /. float batch]. *)

type kind =
  | Resolve  (** returns a point — today's oracle behaviour *)
  | Shrink of { power : float }
      (** returns a narrower interval; [power] in [0,1] is the
          expected fraction of probed objects that become definite *)

type spec = {
  name : string;  (** distinct, non-empty; used for [qaq.probe.tier.*] *)
  kind : kind;
  c_p : float;  (** per-probe cost at this tier *)
  c_b : float;  (** per-batch cost at this tier *)
  batch : int;  (** batch size at this tier, >= 1 *)
}

val is_resolve : spec -> bool
val power : spec -> float
(** [power s] is 1.0 for [Resolve], the shrink power otherwise. *)

val amortized : spec -> float
(** [c_p +. c_b /. float batch]. *)

val exit_probability : spec -> float
(** Probability a probed object leaves the cascade at this tier. *)

val validate : spec array -> unit
(** Raises [Invalid_argument] unless: non-empty; exactly the last tier
    is [Resolve]; every batch >= 1; every shrink power in [0,1]; all
    costs finite and >= 0; names distinct and non-empty. *)

val strategy_price : spec array -> start:int -> float
(** Expected amortized cost per probed object of starting the cascade
    at tier [start] and escalating residuals to the end. *)

type plan = { start : int; price : float }

val select : spec array -> plan
(** Cheapest starting tier (earliest wins ties).  Validates. *)

val oracle_only :
  ?name:string -> cost:Cost_model.t -> batch:int -> unit -> spec array
(** Single-tier cascade equivalent to today's driver pricing. *)

val of_string : string -> spec array
(** Parses ["proxy:cp=0.1,cb=1,B=32,shrink=0.8;oracle:cp=1,cb=5,B=8"].
    The [shrink] key marks a proxy tier; without it the tier is
    [Resolve].  Raises [Invalid_argument] on bad grammar or an invalid
    cascade. *)

val to_string : spec array -> string
val pp : Format.formatter -> spec array -> unit
