type t = { zones : Interval.t option array }

let build file ~support =
  let zones = Array.make (Heap_file.page_count file) None in
  Heap_file.iter_pages file (fun p objects ->
      let hull =
        Array.fold_left
          (fun acc o ->
            let s = support o in
            match acc with None -> Some s | Some h -> Some (Interval.hull h s))
          None objects
      in
      zones.(p) <- hull);
  { zones }

let of_zones zones = { zones = Array.copy zones }
let page_count t = Array.length t.zones
let zones t = Array.copy t.zones

let zone t p =
  if p < 0 || p >= page_count t then invalid_arg "Zone_map.zone: index";
  t.zones.(p)

let prunable t pred p =
  match zone t p with
  | None -> true
  | Some hull -> Tvl.equal (Predicate.classify_interval pred hull) Tvl.No

let pruned_pages t pred =
  let n = ref 0 in
  for p = 0 to page_count t - 1 do
    if prunable t pred p then incr n
  done;
  !n

let open_cursor ?obs ?pool t pred file =
  if page_count t <> Heap_file.page_count file then
    invalid_arg "Zone_map.open_cursor: zone map does not match the file";
  let skip_page = prunable t pred in
  let cursor =
    match pool with
    | Some bp -> Heap_file.Cursor.open_pooled ?obs ~skip_page file ~pool:bp
    | None -> Heap_file.Cursor.open_filtered ?obs file ~skip_page
  in
  (match obs with
  | Some o ->
      Metrics.add
        (Obs.counter o Obs.Keys.pruned_pages)
        (Heap_file.Cursor.pages_skipped cursor)
  | None -> ());
  cursor
