(** Per-page zone maps over a scalar attribute.

    The paper leaves index-assisted access as future work (§7) but notes
    that "in the presence of an index we can effectively prune away part
    of [T] implicitly" (§3).  A zone map is the lightest such access
    method: each page records the hull of its objects' supports, and a
    page whose hull is classified NO by the predicate can be skipped
    without reading any of its objects.  Pruned objects are definite NOs,
    so skipping them is always sound — it shrinks [|M_ns|] for free and
    thereby improves the recall guarantee without any reads. *)

type t

val build : 'a Heap_file.t -> support:('a -> Interval.t) -> t
(** One hull per page. *)

val of_zones : Interval.t option array -> t
(** A zone map from precomputed hulls (one per page, [None] for an
    empty page) — how persisted column-chunk zone maps re-enter the
    pruning machinery without touching the chunks themselves. *)

val zones : t -> Interval.t option array
(** The hulls, in page order (a copy) — what the columnar codec
    persists alongside the chunks. *)

val page_count : t -> int

val zone : t -> int -> Interval.t option
(** The hull of page [p]; [None] for an empty page. *)

val prunable : t -> Predicate.t -> int -> bool
(** [prunable zm pred p] iff every object on page [p] is guaranteed NO. *)

val pruned_pages : t -> Predicate.t -> int
(** Number of pages {!prunable} would skip. *)

val open_cursor :
  ?obs:Obs.t ->
  ?pool:'a array Buffer_pool.t ->
  t ->
  Predicate.t ->
  'a Heap_file.t ->
  'a Heap_file.Cursor.t
(** The pruning-aware scan path: a cursor over [file] that skips every
    page {!prunable} classifies as whole-NO, without fetching it.
    Because skipped objects are definite NOs, they never enter
    [|M_ns|]: the cursor's [remaining] (and hence the operator's
    guarantee accounting) covers surviving pages only, and pruned pages
    are never charged as reads — a scan to exhaustion reads exactly
    [(pages - pruned_pages) * objects_per_page] objects.  [pool] routes
    page fetches through a buffer pool ({!Heap_file.Cursor.open_pooled});
    [obs] adds the pruned page count to [qaq.parallel.pruned_pages] (on
    top of the cursor's own [heap_file.pages_fetched]).
    @raise Invalid_argument if the zone map's page count differs from
    the file's. *)
