(** Mutable accounting of the operations performed by a query evaluation.

    The QaQ operator charges every read, probe and write to a meter; the
    experiment harness then reports the paper's total cost [W]
    (Eq. 11) and the normalised cost [W / |T|]. *)

type t

type counts = {
  reads : int;  (** R: objects read and classified *)
  probes : int;  (** Y_p + M_p: probe operations *)
  batches : int;  (** probe batches dispatched (see {!Probe_driver}) *)
  writes_imprecise : int;  (** Y_f + M_f: imprecise objects output *)
  writes_precise : int;  (** Y_p + M_py: precise objects output *)
}

val create : unit -> t
val reset : t -> unit

val charge_read : t -> unit
val charge_probe : t -> unit

val charge_batch : t -> unit
(** One probe batch dispatched; charged [c_b] by {!total_cost}.  A
    scalar probe path charges one batch per probe, so with [c_b = 0]
    (the paper model) nothing changes. *)

val charge_write_imprecise : t -> unit
val charge_write_precise : t -> unit

val charge_probe_tier : t -> int -> unit
(** [charge_probe_tier t i] charges one probe attributed to cascade
    tier [i]: the aggregate {!counts}[.probes] grows by one {e and}
    tier [i]'s slot grows by one, so the base {!reconcile} invariant is
    preserved by construction. *)

val charge_batch_tier : t -> int -> unit
(** Per-tier analogue of {!charge_batch}. *)

val tier_counts : t -> int array * int array
(** [(probes_per_tier, batches_per_tier)] — copies; empty arrays when
    no tier charge was ever made.  Summed they never exceed the
    aggregate probes/batches. *)

val counts : t -> counts

val total_cost : Cost_model.t -> t -> float
(** The paper's [W = R·c_r + (Y_p+M_p)·c_p + (Y_f+M_f)·c_wi +
    (Y_p+M_py)·c_wp], plus the batching extension's [B_n·c_b] where
    [B_n] is the number of probe batches. *)

val cost_of_counts : Cost_model.t -> counts -> float

val tiered_cost : Cost_model.t -> tiers:Probe_tier.spec array -> t -> float
(** Like {!total_cost} but probes/batches charged through
    {!charge_probe_tier}/{!charge_batch_tier} are priced at their own
    tier's [(c_p, c_b)]; the untier'd remainder (e.g. planning pilot
    probes) stays at the base model's prices.  Equal to {!total_cost}
    when no tier charge was made. *)

val reconcile : Metrics.snapshot -> counts -> (unit, string) result
(** Check that the independently maintained observability counters (the
    {!Obs.Keys} names: reads, probes, batches, writes) agree exactly
    with the meter's counts — the "all work is metered" invariant.  A
    name missing from the snapshot counts as 0.  [Error] carries every
    mismatching name with both values. *)

val reconcile_tiers :
  Metrics.snapshot -> names:string array -> t -> (unit, string) result
(** {!reconcile} plus, for each cascade tier name, a check that the
    [qaq.probe.tier.<name>.probes]/[.batches] counters equal the
    meter's per-tier slots. *)

val pp_counts : Format.formatter -> counts -> unit
