type 'o t = { store : Column_store.t; of_row : Column_store.row -> 'o }

let create store ~of_row = { store; of_row }
let length t = Column_store.length t.store
let store t = t.store
let get t i = t.of_row (Column_store.get t.store i)

let iter t f =
  let chunks = Column_store.chunk_count t.store in
  for c = 0 to chunks - 1 do
    let ch = Column_store.chunk t.store c in
    for i = 0 to ch.Column_store.len - 1 do
      f (t.of_row (Column_store.row ch i))
    done
  done

let to_array t =
  let n = length t in
  if n = 0 then [||]
  else begin
    let first = get t 0 in
    let out = Array.make n first in
    let pos = ref 0 in
    iter t (fun o ->
        out.(!pos) <- o;
        incr pos);
    out
  end
