(** Row-oriented adapter over a {!Column_store}.

    Row-at-a-time consumers — the probing operator, planners sampling
    objects, reports — keep working against a columnar store through
    this view: it materializes domain objects from column rows on
    demand, chunk by chunk, so the columnar layout never forces callers
    to learn the chunk geometry.  Materialization order is storage order,
    identical to the row layout's arrival order; this is what makes
    row-vs-columnar equivalence checks meaningful. *)

type 'o t

val create : Column_store.t -> of_row:(Column_store.row -> 'o) -> 'o t
(** [of_row] rebuilds the domain object (e.g. an [Interval_data.record])
    from its flattened columns. *)

val length : 'o t -> int
val store : 'o t -> Column_store.t

val get : 'o t -> int -> 'o
(** Materialize object [i] (fetches its chunk).
    @raise Invalid_argument on out-of-range index. *)

val iter : 'o t -> ('o -> unit) -> unit
(** All objects in storage order, one chunk fetch per chunk. *)

val to_array : 'o t -> 'o array
(** Materialize everything — the bridge that lets planning and the
    row-path oracle run from the same data as the columnar scan. *)
