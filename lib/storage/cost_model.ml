type t = {
  c_r : float;
  c_p : float;
  c_wi : float;
  c_wp : float;
  c_b : float;
}

let check name x =
  if not (Float.is_finite x && x >= 0.0) then
    invalid_arg (Printf.sprintf "Cost_model.make: %s must be >= 0" name)

let make ?(c_b = 0.0) ~c_r ~c_p ~c_wi ~c_wp () =
  check "c_r" c_r;
  check "c_p" c_p;
  check "c_wi" c_wi;
  check "c_wp" c_wp;
  check "c_b" c_b;
  { c_r; c_p; c_wi; c_wp; c_b }

let paper = { c_r = 1.0; c_p = 100.0; c_wi = 1.0; c_wp = 1.0; c_b = 0.0 }
let uniform = { c_r = 1.0; c_p = 1.0; c_wi = 1.0; c_wp = 1.0; c_b = 0.0 }

let amortized_probe t ~batch =
  if batch < 1 then invalid_arg "Cost_model.amortized_probe: batch < 1";
  t.c_p +. (t.c_b /. float_of_int batch)

let amortize ~batch t =
  { t with c_p = amortized_probe t ~batch; c_b = 0.0 }

let pp ppf t =
  Format.fprintf ppf "c_r=%g c_p=%g c_wi=%g c_wp=%g c_b=%g" t.c_r t.c_p
    t.c_wi t.c_wp t.c_b

let to_string t = Format.asprintf "%a" pp t

let of_string s =
  let fields =
    String.split_on_char ' ' (String.trim s)
    |> List.filter (fun f -> f <> "")
  in
  let parse_field kv =
    match String.index_opt kv '=' with
    | None -> None
    | Some i -> (
        let key = String.sub kv 0 i in
        let value = String.sub kv (i + 1) (String.length kv - i - 1) in
        match float_of_string_opt value with
        | Some v -> Some (key, v)
        | None -> None)
  in
  let rec collect acc = function
    | [] -> Some acc
    | kv :: rest -> (
        match parse_field kv with
        | Some pair -> collect (pair :: acc) rest
        | None -> None)
  in
  match collect [] fields with
  | None -> None
  | Some pairs -> (
      let required key = List.assoc_opt key pairs in
      match
        (required "c_r", required "c_p", required "c_wi", required "c_wp")
      with
      | Some c_r, Some c_p, Some c_wi, Some c_wp -> (
          (* c_b is optional so strings printed before batching existed
             still parse. *)
          let c_b =
            match List.assoc_opt "c_b" pairs with Some v -> v | None -> 0.0
          in
          try Some (make ~c_b ~c_r ~c_p ~c_wi ~c_wp ())
          with Invalid_argument _ -> None)
      | _ -> None)
