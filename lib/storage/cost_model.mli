(** The paper's cost model (§3.1, Table 2), extended with a per-batch
    probe setup cost.

    Five unit costs parameterise query evaluation:
    - [c_r]: reading an object from the input and evaluating [λ(o)];
    - [c_p]: probing an object (retrieving [ω^o]) and evaluating
      [λ(ω^o)] — the {e marginal} cost of one more probe in a batch;
    - [c_wi]: appending an imprecise object to the answer;
    - [c_wp]: appending a probed precise object to the answer;
    - [c_b]: the fixed setup cost of one probe {e batch} (request
      dispatch, radio wakeup, connection round-trip), paid once per
      batch of up to [B] probes — see {!Probe_driver}.

    The paper's experiments use [c_r = c_wi = c_wp = 1] and [c_p = 100]
    ("two orders of magnitude", the DRAM/disk or disk/network latency
    gap), with no batching; [paper] therefore has [c_b = 0] and every
    pre-batching number is unchanged. *)

type t = {
  c_r : float;
  c_p : float;
  c_wi : float;
  c_wp : float;
  c_b : float;
}

val make :
  ?c_b:float -> c_r:float -> c_p:float -> c_wi:float -> c_wp:float -> unit -> t
(** [c_b] defaults to 0 (no per-batch cost).
    @raise Invalid_argument if any cost is negative, NaN or infinite. *)

val paper : t
(** [c_r = 1, c_p = 100, c_wi = 1, c_wp = 1, c_b = 0]. *)

val uniform : t
(** All per-operation costs 1, [c_b = 0] — useful for counting
    operations. *)

val amortized_probe : t -> batch:int -> float
(** The effective per-probe price when probes are issued in batches of
    [batch]: [c_p + c_b/batch].  This is what the optimizer's objective
    (§4.2.2, Eq. 11) must charge per probe so that plan costs match the
    metered reality.  @raise Invalid_argument if [batch < 1]. *)

val amortize : batch:int -> t -> t
(** Fold the batch cost into the per-probe marginal: the returned model
    has [c_p = amortized_probe t ~batch] and [c_b = 0].  With
    [batch = 1] (or [c_b = 0]) this is the identity.
    @raise Invalid_argument if [batch < 1]. *)

val pp : Format.formatter -> t -> unit
(** Prints [c_r=… c_p=… c_wi=… c_wp=… c_b=…]; inverse of
    {!of_string}. *)

val to_string : t -> string

val of_string : string -> t option
(** Parse the {!pp} format.  Field order is free; [c_b] may be omitted
    (defaults to 0) so strings printed before batching existed still
    parse.  Returns [None] on junk, missing required fields or values
    {!make} would reject. *)
