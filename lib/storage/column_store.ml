type f64 = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

type row = { id : int; lo : float; hi : float; truth : float }

type chunk = {
  base : int;
  len : int;
  ids : int array;
  lo : f64;
  hi : f64;
  truth : f64;
}

type t = {
  length : int;
  chunk_size : int;
  zones : Interval.t option array;
  fetch : int -> chunk;
}

let default_chunk_size = 64

let chunk_count_of ~length ~chunk_size =
  if length = 0 then 0 else ((length - 1) / chunk_size) + 1

let hull_of_slice (lo : f64) (hi : f64) ~off ~len =
  if len = 0 then None
  else begin
    let l = ref Bigarray.Array1.(unsafe_get lo off) in
    let h = ref Bigarray.Array1.(unsafe_get hi off) in
    for i = off + 1 to off + len - 1 do
      let a = Bigarray.Array1.unsafe_get lo i in
      let b = Bigarray.Array1.unsafe_get hi i in
      if a < !l then l := a;
      if b > !h then h := b
    done;
    Some (Interval.make !l !h)
  end

let create ?(chunk_size = default_chunk_size) rows =
  if chunk_size < 1 then invalid_arg "Column_store.create: chunk_size < 1";
  let n = Array.length rows in
  let ids = Array.make n 0 in
  let lo = Bigarray.(Array1.create float64 c_layout n) in
  let hi = Bigarray.(Array1.create float64 c_layout n) in
  let truth = Bigarray.(Array1.create float64 c_layout n) in
  Array.iteri
    (fun i (r : row) ->
      if not (Float.is_finite r.lo && Float.is_finite r.hi) || r.lo > r.hi then
        invalid_arg "Column_store.create: bound columns need finite lo <= hi";
      ids.(i) <- r.id;
      Bigarray.Array1.unsafe_set lo i r.lo;
      Bigarray.Array1.unsafe_set hi i r.hi;
      Bigarray.Array1.unsafe_set truth i r.truth)
    rows;
  let chunks = chunk_count_of ~length:n ~chunk_size in
  let zones = Array.make chunks None in
  for c = 0 to chunks - 1 do
    let off = c * chunk_size in
    let len = min chunk_size (n - off) in
    zones.(c) <- hull_of_slice lo hi ~off ~len
  done;
  let fetch c =
    if c < 0 || c >= chunks then invalid_arg "Column_store.fetch: chunk index";
    let base = c * chunk_size in
    let len = min chunk_size (n - base) in
    {
      base;
      len;
      ids = Array.sub ids base len;
      lo = Bigarray.Array1.sub lo base len;
      hi = Bigarray.Array1.sub hi base len;
      truth = Bigarray.Array1.sub truth base len;
    }
  in
  { length = n; chunk_size; zones; fetch }

let of_fetch ~length ~chunk_size ~zones fetch =
  if chunk_size < 1 then invalid_arg "Column_store.of_fetch: chunk_size < 1";
  if length < 0 then invalid_arg "Column_store.of_fetch: length < 0";
  let chunks = chunk_count_of ~length ~chunk_size in
  if Array.length zones <> chunks then
    invalid_arg "Column_store.of_fetch: zone count does not match the layout";
  { length; chunk_size; zones = Array.copy zones; fetch }

let length t = t.length
let chunk_size t = t.chunk_size
let chunk_count t = chunk_count_of ~length:t.length ~chunk_size:t.chunk_size

let chunk_bounds t c =
  if c < 0 || c >= chunk_count t then
    invalid_arg "Column_store.chunk_bounds: chunk index";
  let base = c * t.chunk_size in
  (base, min t.chunk_size (t.length - base))

let chunk t c = t.fetch c

let zone t c =
  if c < 0 || c >= chunk_count t then invalid_arg "Column_store.zone: chunk index";
  t.zones.(c)

let zones t = Array.copy t.zones
let zone_map t = Zone_map.of_zones t.zones

let prunable t pred c =
  match zone t c with
  | None -> true
  | Some hull -> Tvl.equal (Predicate.classify_interval pred hull) Tvl.No

let pruned_chunks t pred =
  let n = ref 0 in
  for c = 0 to chunk_count t - 1 do
    if prunable t pred c then incr n
  done;
  !n

let row ch i =
  if i < 0 || i >= ch.len then invalid_arg "Column_store.row: index";
  {
    id = ch.ids.(i);
    lo = Bigarray.Array1.unsafe_get ch.lo i;
    hi = Bigarray.Array1.unsafe_get ch.hi i;
    truth = Bigarray.Array1.unsafe_get ch.truth i;
  }

let get t i =
  if i < 0 || i >= t.length then invalid_arg "Column_store.get: index";
  row (t.fetch (i / t.chunk_size)) (i mod t.chunk_size)
