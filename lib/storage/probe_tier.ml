(* Tier specifications for tiered probe cascades.

   A cascade is an ordered list of tiers.  Every tier but the last is a
   cheap proxy that *shrinks* an object's imprecision interval (kind
   [Shrink], with an effectiveness [power]); the final tier is the
   oracle that resolves the object to a point (kind [Resolve]).  Each
   tier carries its own per-probe cost [c_p], per-batch cost [c_b] and
   batch size [batch], so the amortized price of a probe at tier [i] is
   [c_p_i + c_b_i / batch_i] — the same amortization PR 1 introduced
   for the single-tier driver, applied per tier. *)

type kind = Resolve | Shrink of { power : float }

type spec = { name : string; kind : kind; c_p : float; c_b : float; batch : int }

let is_resolve s = match s.kind with Resolve -> true | Shrink _ -> false

let power s = match s.kind with Resolve -> 1.0 | Shrink { power } -> power

let amortized s = s.c_p +. (s.c_b /. float_of_int s.batch)

let valid_cost c = Float.is_finite c && c >= 0.0

let validate specs =
  let n = Array.length specs in
  if n = 0 then invalid_arg "Probe_tier.validate: empty cascade";
  let seen = Hashtbl.create 8 in
  Array.iteri
    (fun i s ->
      if s.name = "" then invalid_arg "Probe_tier.validate: empty tier name";
      if Hashtbl.mem seen s.name then
        invalid_arg
          (Printf.sprintf "Probe_tier.validate: duplicate tier name %S" s.name);
      Hashtbl.add seen s.name ();
      if s.batch < 1 then
        invalid_arg
          (Printf.sprintf "Probe_tier.validate: tier %S batch must be >= 1"
             s.name);
      if not (valid_cost s.c_p && valid_cost s.c_b) then
        invalid_arg
          (Printf.sprintf
             "Probe_tier.validate: tier %S costs must be finite and >= 0"
             s.name);
      (match s.kind with
      | Resolve ->
          if i <> n - 1 then
            invalid_arg
              (Printf.sprintf
                 "Probe_tier.validate: Resolve tier %S must be last" s.name)
      | Shrink { power } ->
          if i = n - 1 then
            invalid_arg
              (Printf.sprintf
                 "Probe_tier.validate: final tier %S must be Resolve" s.name);
          if not (Float.is_finite power && power >= 0.0 && power <= 1.0) then
            invalid_arg
              (Printf.sprintf
                 "Probe_tier.validate: tier %S shrink power must be in [0,1]"
                 s.name)))
    specs;
  match specs.(n - 1).kind with
  | Resolve -> ()
  | Shrink _ -> invalid_arg "Probe_tier.validate: final tier must be Resolve"

let exit_probability s = match s.kind with Resolve -> 1.0 | Shrink p -> p.power

(* Expected amortized cost of the escalation strategy that starts at
   tier [start]: pay tier [start] for every object, tier [start+1] for
   the residual that the proxy failed to make definite, and so on down
   to the oracle.  With residual_start = 1 and residual_{j+1} =
   residual_j * (1 - power_j), the price is
   sum_{j >= start} residual_j * (c_p_j + c_b_j / B_j). *)
let strategy_price specs ~start =
  let n = Array.length specs in
  if start < 0 || start >= n then invalid_arg "Probe_tier.strategy_price: start";
  let price = ref 0.0 and residual = ref 1.0 in
  for j = start to n - 1 do
    price := !price +. (!residual *. amortized specs.(j));
    residual := !residual *. (1.0 -. exit_probability specs.(j))
  done;
  !price

type plan = { start : int; price : float }

(* Cheapest escalation strategy: earliest start wins ties so a free
   proxy is always taken. *)
let select specs =
  validate specs;
  let best = ref { start = 0; price = strategy_price specs ~start:0 } in
  for k = 1 to Array.length specs - 1 do
    let price = strategy_price specs ~start:k in
    if price < !best.price -. 1e-12 then best := { start = k; price }
  done;
  !best

let oracle_only ?(name = "oracle") ~(cost : Cost_model.t) ~batch () =
  [| { name; kind = Resolve; c_p = cost.Cost_model.c_p;
       c_b = cost.Cost_model.c_b; batch } |]

(* Grammar: "proxy:cp=0.1,cb=1,B=32,shrink=0.8;oracle:cp=1,cb=5,B=8".
   Tiers separated by ';', each "name:k=v,...".  The [shrink] key makes
   the tier a Shrink proxy; without it the tier is Resolve. *)
let of_string s =
  let fail fmt = Printf.ksprintf invalid_arg fmt in
  let parse_tier part =
    match String.index_opt part ':' with
    | None -> fail "Probe_tier.of_string: tier %S missing ':'" part
    | Some i ->
        let name = String.trim (String.sub part 0 i) in
        let body = String.sub part (i + 1) (String.length part - i - 1) in
        let c_p = ref None and c_b = ref 0.0 and batch = ref 1 in
        let shrink = ref None in
        String.split_on_char ',' body
        |> List.iter (fun kv ->
               let kv = String.trim kv in
               if kv <> "" then
                 match String.index_opt kv '=' with
                 | None -> fail "Probe_tier.of_string: bad field %S" kv
                 | Some j ->
                     let k = String.sub kv 0 j in
                     let v = String.sub kv (j + 1) (String.length kv - j - 1) in
                     let fl () =
                       match float_of_string_opt v with
                       | Some f -> f
                       | None ->
                           fail "Probe_tier.of_string: bad number %S in %S" v kv
                     in
                     (match String.lowercase_ascii k with
                     | "cp" | "c_p" -> c_p := Some (fl ())
                     | "cb" | "c_b" -> c_b := fl ()
                     | "b" | "batch" ->
                         batch :=
                           (match int_of_string_opt v with
                           | Some n -> n
                           | None ->
                               fail
                                 "Probe_tier.of_string: bad batch %S in tier %S"
                                 v name)
                     | "shrink" | "power" -> shrink := Some (fl ())
                     | other ->
                         fail "Probe_tier.of_string: unknown key %S in tier %S"
                           other name));
        let c_p =
          match !c_p with
          | Some c -> c
          | None -> fail "Probe_tier.of_string: tier %S missing cp" name
        in
        let kind =
          match !shrink with
          | None -> Resolve
          | Some power -> Shrink { power }
        in
        { name; kind; c_p; c_b = !c_b; batch = !batch }
  in
  let specs =
    String.split_on_char ';' s
    |> List.filter_map (fun part ->
           let part = String.trim part in
           if part = "" then None else Some (parse_tier part))
    |> Array.of_list
  in
  validate specs;
  specs

let to_string specs =
  Array.to_list specs
  |> List.map (fun s ->
         let base =
           Printf.sprintf "%s:cp=%g,cb=%g,B=%d" s.name s.c_p s.c_b s.batch
         in
         match s.kind with
         | Resolve -> base
         | Shrink { power } -> Printf.sprintf "%s,shrink=%g" base power)
  |> String.concat ";"

let pp ppf specs = Format.pp_print_string ppf (to_string specs)
