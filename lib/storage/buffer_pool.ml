(* LRU via a doubly-linked order encoded with a logical clock: each entry
   stores the tick of its last use; eviction removes the minimum unpinned
   entry.  For the pool sizes used here (tens to hundreds of pages) the
   O(n) eviction scan is simpler than an intrusive list and never shows
   up in profiles.

   The pool is a monitor: every operation — including the loader call on
   a miss — runs under one mutex.  Holding the lock across the load is
   what makes concurrent fetches of the same page single-load: the
   second domain blocks until the first has inserted the entry, then
   takes a hit.  The price is that the loader must not re-enter the pool
   (the mutex is not reentrant) and that loads of *different* pages
   serialize; for the simulated storage underneath this pool, loads are
   cheap decodes, so correctness wins over load concurrency. *)

type 'a entry = {
  page : 'a;  (* the cached unit: a page array, a column chunk, ... *)
  mutable last_used : int;
  mutable pins : int;  (* > 0: immune to eviction *)
  loaded_at : float;  (* wall time of the miss; 0 when uninstrumented *)
}

type instruments = {
  i_obs : Obs.t;
  m_hits : Metrics.counter;
  m_misses : Metrics.counter;
  m_evictions : Metrics.counter;
  h_fetch : Metrics.histogram;  (* loader time per miss *)
  h_residency : Metrics.histogram;  (* page lifetime in the pool, at eviction *)
}

type 'a t = {
  capacity : int;
  table : (int, 'a entry) Hashtbl.t;
  ins : instruments option;
  lock : Mutex.t;
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ?obs ~capacity () =
  if capacity < 1 then invalid_arg "Buffer_pool.create: capacity < 1";
  let ins =
    Option.map
      (fun o ->
        {
          i_obs = o;
          m_hits = Obs.counter o "buffer_pool.hits";
          m_misses = Obs.counter o "buffer_pool.misses";
          m_evictions = Obs.counter o "buffer_pool.evictions";
          h_fetch = Obs.histogram o "buffer_pool.fetch_seconds";
          h_residency = Obs.histogram o "buffer_pool.residency_seconds";
        })
      obs
  in
  {
    capacity;
    table = Hashtbl.create (2 * capacity);
    ins;
    lock = Mutex.create ();
    clock = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let tick t =
  t.clock <- t.clock + 1;
  t.clock

(* Evict the LRU *unpinned* entry; false when every entry is pinned (the
   pool then temporarily exceeds capacity rather than discarding a page
   someone is using). *)
let evict_lru t =
  let victim = ref None in
  Hashtbl.iter
    (fun id entry ->
      if entry.pins = 0 then
        match !victim with
        | None -> victim := Some (id, entry)
        | Some (_, best) ->
            if entry.last_used < best.last_used then victim := Some (id, entry))
    t.table;
  match !victim with
  | None -> false
  | Some (id, entry) ->
      (match t.ins with
      | Some i ->
          Metrics.observe i.h_residency
            (Float.max 0.0 (Obs.now i.i_obs -. entry.loaded_at))
      | None -> ());
      Hashtbl.remove t.table id;
      t.evictions <- t.evictions + 1;
      (match t.ins with Some i -> Metrics.incr i.m_evictions | None -> ());
      true

let fetch_entry t page_id load =
  match Hashtbl.find_opt t.table page_id with
  | Some entry ->
      t.hits <- t.hits + 1;
      (match t.ins with Some i -> Metrics.incr i.m_hits | None -> ());
      entry.last_used <- tick t;
      entry
  | None ->
      t.misses <- t.misses + 1;
      (match t.ins with Some i -> Metrics.incr i.m_misses | None -> ());
      (* Load before making room: if the loader raises, the pool must
         keep its cached pages and not charge an eviction for a fetch
         that never completed. *)
      let page, loaded_at =
        match t.ins with
        | None -> (load page_id, 0.0)
        | Some i ->
            let t0 = Obs.now i.i_obs in
            let page = load page_id in
            let t1 = Obs.now i.i_obs in
            Metrics.observe i.h_fetch (Float.max 0.0 (t1 -. t0));
            (page, t1)
      in
      if Hashtbl.length t.table >= t.capacity then ignore (evict_lru t);
      let entry = { page; last_used = tick t; pins = 0; loaded_at } in
      Hashtbl.replace t.table page_id entry;
      entry

let fetch t page_id load =
  locked t (fun () -> (fetch_entry t page_id load).page)

let pin t page_id load =
  locked t (fun () ->
      let entry = fetch_entry t page_id load in
      entry.pins <- entry.pins + 1;
      entry.page)

let unpin t page_id =
  locked t (fun () ->
      match Hashtbl.find_opt t.table page_id with
      | Some entry when entry.pins > 0 ->
          entry.pins <- entry.pins - 1;
          (* A pool held over capacity by pins shrinks back as soon as
             pins release, instead of waiting for the next miss. *)
          if entry.pins = 0 && Hashtbl.length t.table > t.capacity then
            ignore (evict_lru t)
      | Some _ | None -> invalid_arg "Buffer_pool.unpin: page is not pinned")

let pinned t page_id =
  locked t (fun () ->
      match Hashtbl.find_opt t.table page_id with
      | Some entry -> entry.pins > 0
      | None -> false)

let contains t page_id = locked t (fun () -> Hashtbl.mem t.table page_id)

type stats = { hits : int; misses : int; evictions : int }

let stats (t : _ t) : stats =
  locked t (fun () ->
      { hits = t.hits; misses = t.misses; evictions = t.evictions })

let reset_stats (t : _ t) =
  locked t (fun () ->
      t.hits <- 0;
      t.misses <- 0;
      t.evictions <- 0)

let clear t =
  locked t (fun () ->
      Hashtbl.reset t.table;
      t.hits <- 0;
      t.misses <- 0;
      t.evictions <- 0)

let hit_rate s =
  let total = s.hits + s.misses in
  if total = 0 then 0.0 else float_of_int s.hits /. float_of_int total
