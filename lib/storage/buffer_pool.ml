(* LRU via a doubly-linked order encoded with a logical clock: each entry
   stores the tick of its last use; eviction removes the minimum.  For the
   pool sizes used here (tens to hundreds of pages) the O(n) eviction scan
   is simpler than an intrusive list and never shows up in profiles. *)

type 'a entry = {
  page : 'a;  (* the cached unit: a page array, a column chunk, ... *)
  mutable last_used : int;
  loaded_at : float;  (* wall time of the miss; 0 when uninstrumented *)
}

type instruments = {
  i_obs : Obs.t;
  m_hits : Metrics.counter;
  m_misses : Metrics.counter;
  m_evictions : Metrics.counter;
  h_fetch : Metrics.histogram;  (* loader time per miss *)
  h_residency : Metrics.histogram;  (* page lifetime in the pool, at eviction *)
}

type 'a t = {
  capacity : int;
  table : (int, 'a entry) Hashtbl.t;
  ins : instruments option;
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ?obs ~capacity () =
  if capacity < 1 then invalid_arg "Buffer_pool.create: capacity < 1";
  let ins =
    Option.map
      (fun o ->
        {
          i_obs = o;
          m_hits = Obs.counter o "buffer_pool.hits";
          m_misses = Obs.counter o "buffer_pool.misses";
          m_evictions = Obs.counter o "buffer_pool.evictions";
          h_fetch = Obs.histogram o "buffer_pool.fetch_seconds";
          h_residency = Obs.histogram o "buffer_pool.residency_seconds";
        })
      obs
  in
  {
    capacity;
    table = Hashtbl.create (2 * capacity);
    ins;
    clock = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let tick t =
  t.clock <- t.clock + 1;
  t.clock

let evict_lru t =
  let victim = ref None in
  Hashtbl.iter
    (fun id entry ->
      match !victim with
      | None -> victim := Some (id, entry.last_used)
      | Some (_, best) -> if entry.last_used < best then victim := Some (id, entry.last_used))
    t.table;
  match !victim with
  | None -> ()
  | Some (id, _) ->
      (match t.ins with
      | Some i -> (
          match Hashtbl.find_opt t.table id with
          | Some entry ->
              Metrics.observe i.h_residency
                (Float.max 0.0 (Obs.now i.i_obs -. entry.loaded_at))
          | None -> ())
      | None -> ());
      Hashtbl.remove t.table id;
      t.evictions <- t.evictions + 1;
      (match t.ins with Some i -> Metrics.incr i.m_evictions | None -> ())

let fetch t page_id load =
  match Hashtbl.find_opt t.table page_id with
  | Some entry ->
      t.hits <- t.hits + 1;
      (match t.ins with Some i -> Metrics.incr i.m_hits | None -> ());
      entry.last_used <- tick t;
      entry.page
  | None ->
      t.misses <- t.misses + 1;
      (match t.ins with Some i -> Metrics.incr i.m_misses | None -> ());
      (* Load before making room: if the loader raises, the pool must
         keep its cached pages and not charge an eviction for a fetch
         that never completed. *)
      let page, loaded_at =
        match t.ins with
        | None -> (load page_id, 0.0)
        | Some i ->
            let t0 = Obs.now i.i_obs in
            let page = load page_id in
            let t1 = Obs.now i.i_obs in
            Metrics.observe i.h_fetch (Float.max 0.0 (t1 -. t0));
            (page, t1)
      in
      if Hashtbl.length t.table >= t.capacity then evict_lru t;
      Hashtbl.replace t.table page_id { page; last_used = tick t; loaded_at };
      page

let contains t page_id = Hashtbl.mem t.table page_id

type stats = { hits : int; misses : int; evictions : int }

let stats (t : _ t) : stats =
  { hits = t.hits; misses = t.misses; evictions = t.evictions }

let reset_stats (t : _ t) =
  t.hits <- 0;
  t.misses <- 0;
  t.evictions <- 0

let clear t =
  Hashtbl.reset t.table;
  reset_stats t

let hit_rate s =
  let total = s.hits + s.misses in
  if total = 0 then 0.0 else float_of_int s.hits /. float_of_int total
