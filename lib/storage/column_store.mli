(** Columnar storage for interval records.

    The row layout ({!Heap_file}) stores whole objects page by page; the
    pre-classification scan then chases a pointer per object to test one
    scalar attribute.  This module stores that attribute decomposed: one
    flat [float64] {!Bigarray.Array1} per bound — [lo] and [hi] of the
    belief support — plus the ground truth used by probes, split into
    fixed-size chunks.  Classification kernels ({!Column_scan}) run
    directly over the chunk buffers with no per-object allocation, which
    is where the columnar layout earns its keep.

    Each chunk carries a zone hull (the interval hull of its rows'
    supports), so whole-chunk NO pruning works exactly as the row path's
    {!Zone_map} — and a pruned chunk is never fetched, which matters for
    the streamed stores of [Dataset_io.open_columnar].

    A store is an abstract [fetch]-by-chunk-index view: {!create} backs
    it with resident columns (chunks are zero-copy sub-views); the io
    layer backs it with decode-on-fetch file reads via {!of_fetch}. *)

type f64 = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

type row = { id : int; lo : float; hi : float; truth : float }
(** One record in flattened form: the belief support [{lo; hi}] ([lo =
    hi] for an exact belief) and the ground truth a probe would reveal. *)

type chunk = {
  base : int;  (** global row index of the chunk's first row *)
  len : int;  (** rows in this chunk (the final chunk may be short) *)
  ids : int array;
  lo : f64;
  hi : f64;
  truth : f64;
}
(** Column slices of one chunk; all four arrays have length [len]. *)

type t

val create : ?chunk_size:int -> row array -> t
(** Resident store in arrival order; [chunk_size] defaults to 64 rows
    (matching {!Heap_file}'s default page size, so chunk pruning and page
    pruning are comparable).  Zone hulls are computed per chunk.
    @raise Invalid_argument if [chunk_size < 1] or any row has a
    non-finite or reversed bound pair. *)

val of_fetch :
  length:int ->
  chunk_size:int ->
  zones:Interval.t option array ->
  (int -> chunk) ->
  t
(** A store backed by an external chunk loader — the io layer's streamed
    stores.  [zones] must hold one hull per chunk ([None] only for an
    empty store); pruning consults it without ever calling the loader.
    @raise Invalid_argument if the zone count disagrees with
    [length]/[chunk_size]. *)

val length : t -> int
val chunk_size : t -> int
val chunk_count : t -> int

val chunk_bounds : t -> int -> int * int
(** [(base, len)] of chunk [c] without fetching it. *)

val chunk : t -> int -> chunk
(** Fetch chunk [c].  Resident stores return zero-copy column views;
    streamed stores decode from file (possibly through a buffer pool).
    @raise Invalid_argument on out-of-range index. *)

val zone : t -> int -> Interval.t option
(** The chunk's support hull; [None] for an empty store. *)

val zones : t -> Interval.t option array
(** All hulls in chunk order (a copy) — what the codec persists. *)

val zone_map : t -> Zone_map.t
(** The hulls repackaged as a {!Zone_map} (chunk = page), for reuse of
    the row path's pruning reports. *)

val prunable : t -> Predicate.t -> int -> bool
(** [prunable t pred c] iff every row of chunk [c] is a guaranteed NO —
    same semantics as {!Zone_map.prunable}, decided from the hull alone. *)

val pruned_chunks : t -> Predicate.t -> int
(** Number of chunks {!prunable} would skip. *)

val row : chunk -> int -> row
(** Materialize row [i] of a fetched chunk.
    @raise Invalid_argument on out-of-range index. *)

val get : t -> int -> row
(** Random access by global row index (fetches the owning chunk).
    @raise Invalid_argument on out-of-range index. *)
