(** A small LRU buffer pool over fetch-by-index storage units.

    The pool caches whatever the loader produces for an integer key —
    heap-file pages ([`'o array`], via {!Heap_file.Cursor.open_pooled})
    or column chunks ({!Column_store.chunk}, via the streaming store of
    [Dataset_io.open_columnar]).  The simulated storage charges one
    fetch per miss; hits are free.  This substrate exists to make the
    storage layer a faithful miniature of a database engine and to let
    benchmarks show how caching interacts with partial scans (low-recall
    queries touch a prefix of the file and benefit most from re-use
    across queries). *)

type 'a t
(** A pool caching values of type ['a] — a page array for row storage,
    a decoded column chunk for columnar storage. *)

val create : ?obs:Obs.t -> capacity:int -> unit -> 'a t
(** [obs] registers the counters [buffer_pool.hits], [buffer_pool.misses]
    and [buffer_pool.evictions], incremented alongside {!stats}.
    @raise Invalid_argument if [capacity < 1]. *)

val fetch : 'a t -> int -> (int -> 'a) -> 'a
(** [fetch pool id load] returns the cached value or loads, caches and
    returns it, evicting the least-recently-used entry if full.

    A {e raising} [load] counts as a miss — the access happened and the
    cache could not serve it — but leaves the pool otherwise untouched:
    nothing is inserted, no eviction is charged, and every cached entry
    survives, because the LRU victim is only evicted after the
    replacement actually arrived.  This holds identically for the
    page-fetch and the chunk-fetch paths; {!stats} after a failed load
    therefore shows one extra miss, unchanged evictions, and
    {!hit_rate} correspondingly counts the failure against the pool. *)

val contains : 'a t -> int -> bool

type stats = { hits : int; misses : int; evictions : int }

val stats : 'a t -> stats
(** Lifetime counters since creation (or {!reset_stats}).  [misses]
    includes fetches whose loader raised; [evictions] counts only
    entries actually removed for a successfully loaded replacement. *)

val reset_stats : 'a t -> unit
val clear : 'a t -> unit

val hit_rate : stats -> float
(** [hits / (hits + misses)]; 0 when no accesses.  Failed loads are
    misses, so a flaky backend lowers the hit rate even when every
    successful fetch was served from cache. *)
