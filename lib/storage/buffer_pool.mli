(** A small LRU buffer pool over fetch-by-index storage units.

    The pool caches whatever the loader produces for an integer key —
    heap-file pages ([`'o array`], via {!Heap_file.Cursor.open_pooled})
    or column chunks ({!Column_store.chunk}, via the streaming store of
    [Dataset_io.open_columnar]).  The simulated storage charges one
    fetch per miss; hits are free.  This substrate exists to make the
    storage layer a faithful miniature of a database engine and to let
    benchmarks show how caching interacts with partial scans (low-recall
    queries touch a prefix of the file and benefit most from re-use
    across queries).

    The pool is safe for concurrent use from many domains: every
    operation, {e including the loader call on a miss}, runs under the
    pool's mutex, so two domains fetching the same page never load it
    twice — the second blocks until the first has inserted the entry
    and then takes a hit.  Consequently the loader must not call back
    into the same pool (the mutex is not reentrant), and loads
    serialize; for the cheap simulated-storage decodes cached here,
    single-load correctness is worth far more than load concurrency. *)

type 'a t
(** A pool caching values of type ['a] — a page array for row storage,
    a decoded column chunk for columnar storage. *)

val create : ?obs:Obs.t -> capacity:int -> unit -> 'a t
(** [obs] registers the counters [buffer_pool.hits], [buffer_pool.misses]
    and [buffer_pool.evictions], incremented alongside {!stats}.
    @raise Invalid_argument if [capacity < 1]. *)

val fetch : 'a t -> int -> (int -> 'a) -> 'a
(** [fetch pool id load] returns the cached value or loads, caches and
    returns it, evicting the least-recently-used entry if full.

    A {e raising} [load] counts as a miss — the access happened and the
    cache could not serve it — but leaves the pool otherwise untouched:
    nothing is inserted, no eviction is charged, and every cached entry
    survives, because the LRU victim is only evicted after the
    replacement actually arrived.  This holds identically for the
    page-fetch and the chunk-fetch paths; {!stats} after a failed load
    therefore shows one extra miss, unchanged evictions, and
    {!hit_rate} correspondingly counts the failure against the pool. *)

val pin : 'a t -> int -> (int -> 'a) -> 'a
(** Like {!fetch}, but additionally pins the entry: a pinned page is
    immune to eviction until every pin is released with {!unpin} (pins
    are counted, so nested pinners compose).  When every resident entry
    is pinned, a miss inserts {e over} capacity rather than discard a
    page in use; the pool shrinks back as pins release. *)

val unpin : 'a t -> int -> unit
(** Release one pin.  If the entry just became unpinned and the pool is
    over capacity, the LRU unpinned entry is evicted immediately.
    @raise Invalid_argument if the page is absent or not pinned —
    unbalanced pin/unpin is a caller bug the pool refuses to absorb. *)

val pinned : 'a t -> int -> bool
(** Whether the page is resident with at least one pin. *)

val contains : 'a t -> int -> bool

type stats = { hits : int; misses : int; evictions : int }

val stats : 'a t -> stats
(** Lifetime counters since creation (or {!reset_stats}).  [misses]
    includes fetches whose loader raised; [evictions] counts only
    entries actually removed for a successfully loaded replacement. *)

val reset_stats : 'a t -> unit
val clear : 'a t -> unit

val hit_rate : stats -> float
(** [hits / (hits + misses)]; 0 when no accesses.  Failed loads are
    misses, so a flaky backend lowers the hit rate even when every
    successful fetch was served from cache. *)
