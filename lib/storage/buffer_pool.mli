(** A small LRU buffer pool over heap-file pages.

    The simulated storage charges one page fetch per miss; hits are free.
    This substrate exists to make the storage layer a faithful miniature
    of a database engine and to let benchmarks show how caching interacts
    with partial scans (low-recall queries touch a prefix of the file and
    benefit most from re-use across queries). *)

type 'a t

val create : ?obs:Obs.t -> capacity:int -> unit -> 'a t
(** [obs] registers the counters [buffer_pool.hits], [buffer_pool.misses]
    and [buffer_pool.evictions], incremented alongside {!stats}.
    @raise Invalid_argument if [capacity < 1]. *)

val fetch : 'a t -> int -> (int -> 'a array) -> 'a array
(** [fetch pool page_id load] returns the cached page or loads, caches and
    returns it, evicting the least-recently-used page if full.  A raising
    [load] counts as a miss but leaves the pool untouched: the victim is
    only evicted after the replacement page actually arrived. *)

val contains : 'a t -> int -> bool

type stats = { hits : int; misses : int; evictions : int }

val stats : 'a t -> stats
val reset_stats : 'a t -> unit
val clear : 'a t -> unit
val hit_rate : stats -> float
(** [hits / (hits + misses)]; 0 when no accesses. *)
