(** Simulated paged heap files.

    The paper's input [T] is a stored relation accessed by linear scan
    (§3).  This module simulates the storage layout: objects are packed
    into fixed-capacity pages and scans fetch one page at a time, so the
    harness can account both per-object costs (the paper's [c_r]) and
    page-level I/O (used by the zone-map extension to show what index
    pruning would save). *)

type 'a t

val create : ?page_size:int -> 'a array -> 'a t
(** [create objects] lays the objects out in arrival order.
    [page_size] defaults to 64 objects per page.
    @raise Invalid_argument if [page_size < 1]. *)

val length : 'a t -> int
(** Number of objects. *)

val page_size : 'a t -> int
val page_count : 'a t -> int

val get : 'a t -> int -> 'a
(** Random access by object index (no I/O accounting).
    @raise Invalid_argument on out-of-range index. *)

val page : 'a t -> int -> 'a array
(** Copy of the objects of one page (the final page may be short). *)

val iter_pages : 'a t -> (int -> 'a array -> unit) -> unit

val to_array : 'a t -> 'a array
(** Copy of all objects in storage order. *)

(** {2 Scanning} *)

type io_stats = { pages_fetched : int; objects_delivered : int }

exception Read_failed of { page : int; attempts : int }
(** A page read failed permanently under an attached {!Fault_plan}:
    every retry of the fetch was struck down.  Storage has no imprecise
    fallback — an unreadable page is an error, not a degradation. *)

(** A sequential cursor over the file.  The QaQ operator consumes objects
    through a cursor so that [|M_ns|] (objects not yet seen) is always
    [remaining].

    Every [open_] variant takes an optional [faults] plan (default
    {!Fault_plan.none}), injected at site ["heap_file"]: a page fetch
    that fails transiently is retried in place up to the plan's
    [max_retries] (each retry counting into [qaq.fault.retried]); a
    fetch that exhausts its budget raises {!Read_failed}. *)
module Cursor : sig
  type 'a file := 'a t
  type 'a t

  val open_ : ?obs:Obs.t -> ?faults:Fault_plan.spec -> 'a file -> 'a t
  (** [obs] registers the counter [heap_file.pages_fetched], incremented
      on every page fetch of this cursor (same for the other opens). *)

  val open_filtered :
    ?obs:Obs.t -> ?faults:Fault_plan.spec -> 'a file ->
    skip_page:(int -> bool) -> 'a t
  (** A cursor that skips whole pages for which [skip_page] is [true]
      without fetching them — the access-method hook used by the zone-map
      extension.  Skipped objects are reported via {!skipped}. *)

  val open_pooled :
    ?obs:Obs.t ->
    ?faults:Fault_plan.spec ->
    ?skip_page:(int -> bool) ->
    'a file ->
    pool:'a array Buffer_pool.t ->
    'a t
  (** Like {!open_filtered} but page reads go through an LRU buffer pool
      shared across cursors: repeated or partially-overlapping scans
      re-use cached pages.  {!io}'s [pages_fetched] counts pages
      {e requested}; the pool's own stats separate hits from misses.
      Faults strike the {e load} under the pool, never a cached hit, and
      a failing load leaves the pool untouched. *)

  val next : 'a t -> 'a option
  (** Next object, fetching a page when the current one is exhausted. *)

  val consumed : 'a t -> int
  (** Objects delivered so far. *)

  val remaining : 'a t -> int
  (** Objects not yet delivered (and not skipped). *)

  val skipped : 'a t -> int
  (** Objects pruned by [skip_page] so far. *)

  val pages_skipped : 'a t -> int
  (** Whole pages [skip_page] pruned — pages this cursor will never
      fetch. *)

  val io : 'a t -> io_stats
end
