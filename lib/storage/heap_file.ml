type 'a t = { objects : 'a array; page_size : int }

let create ?(page_size = 64) objects =
  if page_size < 1 then invalid_arg "Heap_file.create: page_size < 1";
  { objects = Array.copy objects; page_size }

let length t = Array.length t.objects
let page_size t = t.page_size
let page_count t = (length t + t.page_size - 1) / t.page_size

let get t i =
  if i < 0 || i >= length t then invalid_arg "Heap_file.get: index";
  t.objects.(i)

let page_bounds t p =
  let lo = p * t.page_size in
  let hi = Stdlib.min (lo + t.page_size) (length t) in
  (lo, hi)

let page t p =
  if p < 0 || p >= page_count t then invalid_arg "Heap_file.page: index";
  let lo, hi = page_bounds t p in
  Array.sub t.objects lo (hi - lo)

let iter_pages t f =
  for p = 0 to page_count t - 1 do
    f p (page t p)
  done

let to_array t = Array.copy t.objects

type io_stats = { pages_fetched : int; objects_delivered : int }

exception Read_failed of { page : int; attempts : int }

module Cursor = struct
  (* A faulted loader retries transient read failures in place (each
     retry counts into [qaq.fault.retried]) and surfaces exhaustion as
     [Read_failed] — storage has no imprecise fallback to degrade into,
     so a permanently unreadable page is an error the caller sees. *)
  let wrap_fault ?obs spec fetch =
    match Fault_plan.injector_opt ?obs ~site:"heap_file" spec with
    | None -> fetch
    | Some inj ->
        let m_retried =
          Option.map (fun o -> Obs.counter o Obs.Keys.fault_retried) obs
        in
        let max_retries = (Fault_plan.spec inj).Fault_plan.max_retries in
        fun p ->
          let e = Fault_plan.fresh_element inj in
          let rec go ~attempts ~round =
            if Fault_plan.attempt inj e ~round then
              if attempts > max_retries then
                raise (Read_failed { page = p; attempts })
              else begin
                (match m_retried with Some c -> Metrics.incr c | None -> ());
                go ~attempts:(attempts + 1) ~round:(round + 1)
              end
            else fetch p
          in
          go ~attempts:1 ~round:0
  type 'a cursor = {
    file : 'a t;
    fetch : int -> 'a array;  (* page fetch, possibly through a pool *)
    pages_to_visit : int array;  (* page indices, in storage order *)
    deliverable : int;  (* total objects on visited pages *)
    skipped_total : int;
    m_pages : Metrics.counter option;
    instruments : (Obs.t * Metrics.histogram) option;  (* obs, fetch time *)
    mutable page_pos : int;  (* index into pages_to_visit *)
    mutable buffer : 'a array;  (* current page, [||] when exhausted *)
    mutable buffer_pos : int;
    mutable consumed : int;
    mutable pages_fetched : int;
  }

  type 'a t = 'a cursor

  let open_via ?obs ?(faults = Fault_plan.none) file fetch ~skip_page =
    let fetch = wrap_fault ?obs faults fetch in
    (* The zone map is consulted for every page up front: pruning is
       "implicit" in the paper's sense — pruned objects count as already
       classified NO, so they never appear in |M_ns|. *)
    let visit = ref [] in
    let deliverable = ref 0 in
    for p = page_count file - 1 downto 0 do
      if not (skip_page p) then begin
        visit := p :: !visit;
        let lo, hi = page_bounds file p in
        deliverable := !deliverable + (hi - lo)
      end
    done;
    {
      file;
      fetch;
      pages_to_visit = Array.of_list !visit;
      deliverable = !deliverable;
      skipped_total = length file - !deliverable;
      m_pages = Option.map (fun o -> Obs.counter o "heap_file.pages_fetched") obs;
      instruments =
        Option.map
          (fun o -> (o, Obs.histogram o "heap_file.fetch_seconds"))
          obs;
      page_pos = 0;
      buffer = [||];
      buffer_pos = 0;
      consumed = 0;
      pages_fetched = 0;
    }

  let open_filtered ?obs ?faults file ~skip_page =
    open_via ?obs ?faults file (page file) ~skip_page

  let open_ ?obs ?faults file =
    open_filtered ?obs ?faults file ~skip_page:(fun _ -> false)

  let open_pooled ?obs ?(faults = Fault_plan.none) ?(skip_page = fun _ -> false)
      file ~pool =
    (* Faults wrap the innermost load, not the pool lookup: a cached
       page cannot fail, and a failing load raises out of
       [Buffer_pool.fetch] before anything is inserted, leaving the
       pool untouched. *)
    let load = wrap_fault ?obs faults (page file) in
    let fetch p = Buffer_pool.fetch pool p load in
    open_via ?obs file fetch ~skip_page

  let rec next c =
    if c.buffer_pos < Array.length c.buffer then begin
      let o = c.buffer.(c.buffer_pos) in
      c.buffer_pos <- c.buffer_pos + 1;
      c.consumed <- c.consumed + 1;
      Some o
    end
    else if c.page_pos < Array.length c.pages_to_visit then begin
      (match c.instruments with
      | None -> c.buffer <- c.fetch c.pages_to_visit.(c.page_pos)
      | Some (o, h) ->
          let t0 = Obs.now o in
          c.buffer <- c.fetch c.pages_to_visit.(c.page_pos);
          Metrics.observe h (Float.max 0.0 (Obs.now o -. t0)));
      c.buffer_pos <- 0;
      c.page_pos <- c.page_pos + 1;
      c.pages_fetched <- c.pages_fetched + 1;
      (match c.m_pages with Some m -> Metrics.incr m | None -> ());
      next c
    end
    else None

  let consumed c = c.consumed
  let remaining c = c.deliverable - c.consumed
  let skipped c = c.skipped_total
  let pages_skipped c = page_count c.file - Array.length c.pages_to_visit

  let io c = { pages_fetched = c.pages_fetched; objects_delivered = c.consumed }
end
