type t = {
  domains : int;  (* lanes, including the caller's lane 0 *)
  mutex : Mutex.t;
  work : Condition.t;
  queue : (unit -> unit) Queue.t;
  busy : float array;  (* per-lane task seconds; written under [mutex] *)
  on_task : (lane:int -> start:float -> finish:float -> unit) option;
  mutable closing : bool;
  mutable workers : unit Domain.t list;
}

let now = Unix.gettimeofday

let note_task t lane t0 t1 =
  Mutex.lock t.mutex;
  t.busy.(lane) <- t.busy.(lane) +. (t1 -. t0);
  Mutex.unlock t.mutex;
  (* The hook runs outside the mutex (it may fire on any lane
     concurrently) and must not unwind a worker: a tracing hook that
     throws would kill the lane, not the run. *)
  match t.on_task with
  | None -> ()
  | Some f -> ( try f ~lane ~start:t0 ~finish:t1 with _ -> ())

(* Tasks are always the chunk closures built by [parallel_map], which
   capture their own exceptions — a worker never unwinds. *)
let rec worker_loop t lane =
  Mutex.lock t.mutex;
  while Queue.is_empty t.queue && not t.closing do
    Condition.wait t.work t.mutex
  done;
  if Queue.is_empty t.queue then Mutex.unlock t.mutex
  else begin
    let task = Queue.pop t.queue in
    Mutex.unlock t.mutex;
    let t0 = now () in
    task ();
    note_task t lane t0 (now ());
    worker_loop t lane
  end

let create ?on_task ?domains () =
  let domains =
    match domains with Some d -> d | None -> Domain.recommended_domain_count ()
  in
  if domains < 1 then invalid_arg "Domain_pool.create: domains < 1";
  let t =
    {
      domains;
      mutex = Mutex.create ();
      work = Condition.create ();
      queue = Queue.create ();
      busy = Array.make domains 0.0;
      on_task;
      closing = false;
      workers = [];
    }
  in
  t.workers <-
    List.init (domains - 1) (fun i ->
        Domain.spawn (fun () -> worker_loop t (i + 1)));
  t

let domains t = t.domains

let busy_seconds t =
  Mutex.lock t.mutex;
  let b = Array.copy t.busy in
  Mutex.unlock t.mutex;
  b

let shutdown t =
  Mutex.lock t.mutex;
  if t.closing then Mutex.unlock t.mutex
  else begin
    t.closing <- true;
    Condition.broadcast t.work;
    Mutex.unlock t.mutex;
    List.iter Domain.join t.workers;
    t.workers <- []
  end

let with_pool ?on_task ?domains f =
  let t = create ?on_task ?domains () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* Aim for several chunks per lane so a slow chunk cannot leave the
   other lanes idle for long, without paying queue traffic per element. *)
let default_chunk t n = Stdlib.max 1 ((n + (8 * t.domains) - 1) / (8 * t.domains))

let parallel_map (type b) t ?chunk_size f arr =
  let n = Array.length arr in
  let chunk =
    match chunk_size with
    | Some c ->
        if c < 1 then invalid_arg "Domain_pool.parallel_map: chunk_size < 1"
        else c
    | None -> default_chunk t n
  in
  if n = 0 then [||]
  else if t.domains = 1 || n <= chunk then Array.map f arr
  else begin
    let nchunks = (n + chunk - 1) / chunk in
    (* One result array per chunk, merged by chunk index at the end: the
       deterministic merge that makes the map equal to [Array.map]
       regardless of which lane ran which chunk.  (Per-chunk arrays also
       sidestep writing a shared ['b array] before knowing a ['b].) *)
    let parts : b array option array = Array.make nchunks None in
    let first_error = Atomic.make None in
    let remaining = Atomic.make nchunks in
    let run_chunk c () =
      (try
         let lo = c * chunk in
         let len = Stdlib.min chunk (n - lo) in
         parts.(c) <- Some (Array.init len (fun k -> f arr.(lo + k)))
       with e ->
         let bt = Printexc.get_raw_backtrace () in
         ignore (Atomic.compare_and_set first_error None (Some (e, bt))));
      (* The decrement publishes the part write: the caller reads
         [parts] only after observing [remaining = 0]. *)
      ignore (Atomic.fetch_and_add remaining (-1))
    in
    Mutex.lock t.mutex;
    for c = 0 to nchunks - 1 do
      Queue.add (run_chunk c) t.queue
    done;
    Condition.broadcast t.work;
    Mutex.unlock t.mutex;
    (* Lane 0: the caller works the queue rather than blocking on it. *)
    let rec help () =
      Mutex.lock t.mutex;
      let task =
        if Queue.is_empty t.queue then None else Some (Queue.pop t.queue)
      in
      Mutex.unlock t.mutex;
      match task with
      | Some task ->
          let t0 = now () in
          task ();
          note_task t 0 t0 (now ());
          help ()
      | None -> ()
    in
    help ();
    while Atomic.get remaining > 0 do
      Domain.cpu_relax ()
    done;
    match Atomic.get first_error with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None ->
        Array.concat
          (Array.to_list
             (Array.map
                (function Some p -> p | None -> assert false)
                parts))
  end

let run_all t thunks = parallel_map t ~chunk_size:1 (fun g -> g ()) thunks

let env_var = "QAQ_DOMAINS"

let resolve ?domains () =
  match domains with
  | Some d ->
      if d < 1 then invalid_arg "Domain_pool.resolve: domains < 1";
      d
  | None -> (
      match Sys.getenv_opt env_var with
      | None | Some "" -> 1
      | Some s -> (
          match int_of_string_opt (String.trim s) with
          | Some d when d >= 1 -> d
          | Some _ | None ->
              invalid_arg
                (Printf.sprintf
                   "Domain_pool.resolve: %s must be a positive integer (got %S)"
                   env_var s)))
