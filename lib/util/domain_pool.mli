(** A fixed pool of worker domains for deterministic data parallelism.

    OCaml 5 exposes hardware parallelism through domains, but spawning a
    domain is far too expensive to do per chunk of work.  A [Domain_pool]
    spawns its workers once and feeds them chunk tasks through a shared
    queue; the caller's own domain is lane 0 and works the queue
    alongside the workers instead of blocking, so a pool of [domains = d]
    really computes on [d] lanes with [d - 1] spawned domains.

    Everything here is deterministic from the caller's point of view:
    {!parallel_map} splits the input into contiguous chunks, each chunk
    is mapped in index order, and the per-chunk results are concatenated
    in chunk order — the result equals [Array.map f arr] whatever the
    scheduling, which is what lets the QaQ engine keep the paper's
    sequential semantics while classifying on every core (see
    [Scan_pipeline]).

    A pool is owned by the domain that created it: submitting work from
    several domains at once is not supported.  Worker domains idle on a
    condition variable between calls and cost nothing while the pool is
    quiescent. *)

type t

val create :
  ?on_task:(lane:int -> start:float -> finish:float -> unit) ->
  ?domains:int ->
  unit ->
  t
(** [create ~domains ()] spawns [domains - 1] workers.  [domains]
    defaults to {!Domain.recommended_domain_count}[ ()].  With
    [domains = 1] no domain is spawned and every operation degrades to
    its sequential equivalent — the graceful fallback for single-core
    hosts.

    [on_task] is invoked after every completed task with its lane and
    wall-clock interval ([Unix.gettimeofday], the same clock
    {!busy_seconds} accumulates) — the hook the Chrome-trace exporter
    uses to draw one timeline row per lane.  It runs on the lane that
    ran the task, concurrently with other lanes' hooks, so it must be
    thread-safe; exceptions it raises are swallowed.
    @raise Invalid_argument if [domains < 1]. *)

val domains : t -> int
(** The lane count [d] (workers plus the caller's lane). *)

val parallel_map : t -> ?chunk_size:int -> ('a -> 'b) -> 'a array -> 'b array
(** [parallel_map t f arr] is [Array.map f arr], computed on all lanes.
    The input is cut into contiguous chunks of [chunk_size] (default:
    about 8 chunks per lane); chunks are mapped concurrently and merged
    by chunk index, so the result is independent of scheduling as long
    as [f] is pure.  [f] must not touch the pool itself.

    If any application of [f] raises, the first exception (in completion
    order) is re-raised in the caller with its backtrace once every
    chunk has settled; there is no cancellation of in-flight chunks.
    @raise Invalid_argument if [chunk_size < 1]. *)

val run_all : t -> (unit -> 'a) array -> 'a array
(** [run_all t thunks] evaluates every thunk, one task each, and returns
    their results in input order — the coarse-grained face of
    {!parallel_map} for running independent configurations (e.g. whole
    experiment sweeps) on separate domains. *)

val busy_seconds : t -> float array
(** Per-lane wall-clock seconds spent running tasks since {!create};
    index 0 is the caller's lane.  The length equals {!domains}. *)

val shutdown : t -> unit
(** Drain nothing (no tasks can be pending between calls), stop the
    workers and join their domains.  Idempotent; the pool must not be
    used afterwards. *)

val with_pool :
  ?on_task:(lane:int -> start:float -> finish:float -> unit) ->
  ?domains:int ->
  (t -> 'a) ->
  'a
(** [with_pool ~domains f] runs [f] over a fresh pool and shuts it down
    on exit, normal or exceptional. *)

val env_var : string
(** ["QAQ_DOMAINS"] — the environment variable {!resolve} consults. *)

val resolve : ?domains:int -> unit -> int
(** The lane count an entry point should use: the explicit [domains]
    argument if given, else the {!env_var} environment variable, else 1.
    The env fallback lets a whole test suite or CI job exercise the
    parallel path without touching call sites.
    @raise Invalid_argument if [domains < 1] or the variable is set to
    anything but a positive integer. *)
