(** One-dimensional selection predicates with three-way evaluation.

    A predicate [λ] maps objects to {YES, NO, MAYBE} (paper §1).  This
    module builds predicates over real-valued attributes, evaluates them:

    - exactly on precise values ({!eval});
    - three-way on imprecise values ({!classify}), by comparing the
      object's support against the predicate's satisfying set;
    - probabilistically ({!success}), yielding the paper's success
      probability [s(o)] (§4.1) under the object's belief model.

    Strict and non-strict comparisons are distinguished by {!eval} but
    coincide for {!classify} and {!success} (see {!Real_set}). *)

type t =
  | Ge of float  (** value >= x *)
  | Gt of float  (** value > x *)
  | Le of float  (** value <= x *)
  | Lt of float  (** value < x *)
  | Between of float * float  (** a <= value <= b *)
  | Not of t
  | And of t * t
  | Or of t * t

val ge : float -> t
val gt : float -> t
val le : float -> t
val lt : float -> t

val between : float -> float -> t
(** @raise Invalid_argument if the bounds are reversed or not finite. *)

val not_ : t -> t
val ( &&& ) : t -> t -> t
val ( ||| ) : t -> t -> t

val eval : t -> float -> bool
(** Exact evaluation on a precise value, honouring strictness. *)

val satisfying_set : t -> Real_set.t
(** The set of values satisfying the predicate (all comparisons read as
    non-strict). *)

val classify : t -> Uncertain.t -> Tvl.t
(** [Yes] if the object's support is contained in the satisfying set,
    [No] if disjoint from it, [Maybe] otherwise. *)

val classify_interval : t -> Interval.t -> Tvl.t
(** Same, directly on an interval support. *)

val success : t -> Uncertain.t -> float
(** Probability that a probe returns YES, under the object's belief
    model.  Returns 1 (resp. 0) when {!classify} is [Yes] (resp. [No]). *)

(** {2 Compiled form}

    {!classify} and {!success} recompute the satisfying set on every
    call.  A {!compiled} predicate computes it once; the [_bounds] entry
    points then take an interval support as two floats and allocate
    nothing on the YES/NO path — the shape the columnar classification
    kernel needs.  Results are bit-for-bit those of {!classify} /
    {!success} on the corresponding [Exact]/[Interval] belief. *)

type compiled

val compile : t -> compiled

val source : compiled -> t
(** The predicate the kernel was compiled from. *)

val classify_bounds : compiled -> lo:float -> hi:float -> Tvl.t
(** {!classify} of an object whose support is [\[lo, hi\]]. *)

val success_bounds : compiled -> lo:float -> hi:float -> float
(** {!success} of a flat-schema belief with support [\[lo, hi\]]: a
    point support reads as an exact value (membership), a proper
    interval as a uniform interval belief (covered measure over
    width). *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
