(** Finite unions of disjoint closed real intervals, with infinite
    endpoints allowed.

    This is the satisfying set of a one-dimensional selection predicate:
    atomic comparisons denote half-lines or segments and Boolean
    combinations denote finite unions.  Working with the satisfying set —
    rather than recursing over the predicate tree — makes three-way
    classification and success-probability computation exact even for
    arbitrarily nested [And]/[Or]/[Not].

    Endpoints are treated as closed throughout.  Under the continuous
    belief models used in this repository, single points carry zero
    probability mass, so this loses nothing for success probabilities; for
    classification it means strict and non-strict comparisons coincide,
    which we document rather than fight. *)

type t

val empty : t
val full : t

val segment : float -> float -> t
(** [segment lo hi] is [\[lo, hi\]] ([lo <= hi]; bounds may be infinite but
    not NaN).  @raise Invalid_argument on violation. *)

val at_least : float -> t
(** [\[x, +∞)]. *)

val at_most : float -> t
(** [(-∞, x\]]. *)

val union : t -> t -> t
val inter : t -> t -> t
val complement : t -> t

val mem : t -> float -> bool

val covers : t -> Interval.t -> bool
(** [covers s i] iff every point of [i] belongs to [s]. *)

val disjoint : t -> Interval.t -> bool
(** [disjoint s i] iff no point of [i] belongs to [s]. *)

val components : t -> (float * float) list
(** Disjoint components in increasing order; bounds may be infinite. *)

val measure_within : t -> Interval.t -> float
(** Total length of the intersection of [s] with the (finite) interval. *)

(** {2 Allocation-free variants}

    The same tests over a support given as two floats, for tight loops
    over column chunks.  Each is an exact mirror of its interval-taking
    namesake — same comparisons, same accumulation order — so columnar
    classification is bit-for-bit the row path's. *)

val covers_bounds : t -> lo:float -> hi:float -> bool
val disjoint_bounds : t -> lo:float -> hi:float -> bool
val measure_within_bounds : t -> lo:float -> hi:float -> float

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
