type t =
  | Ge of float
  | Gt of float
  | Le of float
  | Lt of float
  | Between of float * float
  | Not of t
  | And of t * t
  | Or of t * t

let check_finite name x =
  if not (Float.is_finite x) then
    invalid_arg (Printf.sprintf "Predicate.%s: bound must be finite" name)

let ge x = check_finite "ge" x; Ge x
let gt x = check_finite "gt" x; Gt x
let le x = check_finite "le" x; Le x
let lt x = check_finite "lt" x; Lt x

let between a b =
  check_finite "between" a;
  check_finite "between" b;
  if a > b then invalid_arg "Predicate.between: reversed bounds";
  Between (a, b)

let not_ p = Not p
let ( &&& ) a b = And (a, b)
let ( ||| ) a b = Or (a, b)

let rec eval p v =
  match p with
  | Ge x -> v >= x
  | Gt x -> v > x
  | Le x -> v <= x
  | Lt x -> v < x
  | Between (a, b) -> a <= v && v <= b
  | Not q -> not (eval q v)
  | And (a, b) -> eval a v && eval b v
  | Or (a, b) -> eval a v || eval b v

let rec satisfying_set = function
  | Ge x | Gt x -> Real_set.at_least x
  | Le x | Lt x -> Real_set.at_most x
  | Between (a, b) -> Real_set.segment a b
  | Not q -> Real_set.complement (satisfying_set q)
  | And (a, b) -> Real_set.inter (satisfying_set a) (satisfying_set b)
  | Or (a, b) -> Real_set.union (satisfying_set a) (satisfying_set b)

let classify_interval p support =
  let set = satisfying_set p in
  if Real_set.covers set support then Tvl.Yes
  else if Real_set.disjoint set support then Tvl.No
  else Tvl.Maybe

let classify p o = classify_interval p (Uncertain.support o)

let success p o =
  match classify p o with
  | Tvl.Yes -> 1.0
  | Tvl.No -> 0.0
  | Tvl.Maybe ->
      let set = satisfying_set p in
      let mass =
        match o with
        | Uncertain.Exact v -> if Real_set.mem set v then 1.0 else 0.0
        | Uncertain.Interval i ->
            if Interval.is_point i then
              (if Real_set.mem set (Interval.lo i) then 1.0 else 0.0)
            else Real_set.measure_within set i /. Interval.width i
        | Uncertain.Gaussian { mean; stddev; _ } ->
            let cdf x =
              if x = infinity then 1.0
              else if x = neg_infinity then 0.0
              else Math_special.normal_cdf ~mean ~stddev x
            in
            List.fold_left
              (fun acc (lo, hi) -> acc +. (cdf hi -. cdf lo))
              0.0
              (Real_set.components set)
      in
      Float.min 1.0 (Float.max 0.0 mass)

(* ---- compiled form for vectorized classification ------------------ *)

(* [classify] and [success] above recompute the satisfying set on every
   call — fine for row-at-a-time evaluation, ruinous in a scan loop.  A
   compiled predicate computes the set once; its per-object entry points
   take the support as two floats and allocate nothing on the YES/NO
   path.  Every comparison goes through the same [Real_set] tests as the
   row path, so verdicts, laxities and success probabilities are
   bit-for-bit identical — the property the columnar golden suite
   checks. *)
type compiled = { source : t; set : Real_set.t }

let compile p = { source = p; set = satisfying_set p }
let source c = c.source

let classify_bounds c ~lo ~hi =
  if Real_set.covers_bounds c.set ~lo ~hi then Tvl.Yes
  else if Real_set.disjoint_bounds c.set ~lo ~hi then Tvl.No
  else Tvl.Maybe

let success_bounds c ~lo ~hi =
  match classify_bounds c ~lo ~hi with
  | Tvl.Yes -> 1.0
  | Tvl.No -> 0.0
  | Tvl.Maybe ->
      (* Mirrors [success] on the flat-schema belief models: a point
         support is an [Exact]/point-interval belief (membership test),
         a proper interval divides the covered measure by the width. *)
      let mass =
        if lo = hi then (if Real_set.mem c.set lo then 1.0 else 0.0)
        else Real_set.measure_within_bounds c.set ~lo ~hi /. (hi -. lo)
      in
      Float.min 1.0 (Float.max 0.0 mass)

let rec pp ppf = function
  | Ge x -> Format.fprintf ppf "v >= %g" x
  | Gt x -> Format.fprintf ppf "v > %g" x
  | Le x -> Format.fprintf ppf "v <= %g" x
  | Lt x -> Format.fprintf ppf "v < %g" x
  | Between (a, b) -> Format.fprintf ppf "%g <= v <= %g" a b
  | Not q -> Format.fprintf ppf "not (%a)" pp q
  | And (a, b) -> Format.fprintf ppf "(%a) and (%a)" pp a pp b
  | Or (a, b) -> Format.fprintf ppf "(%a) or (%a)" pp a pp b

let to_string p = Format.asprintf "%a" pp p
