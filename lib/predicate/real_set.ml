(* Representation invariant: components sorted by lower bound, pairwise
   disjoint and non-touching (gaps have positive length), each with
   lo <= hi and no NaN.  [normalize] (re)establishes the invariant. *)

type t = (float * float) list

let empty = []
let full = [ (neg_infinity, infinity) ]

let check_bounds lo hi =
  if Float.is_nan lo || Float.is_nan hi then
    invalid_arg "Real_set: NaN bound";
  if lo > hi then invalid_arg "Real_set: lo > hi"

let segment lo hi =
  check_bounds lo hi;
  [ (lo, hi) ]

let at_least x = segment x infinity
let at_most x = segment neg_infinity x

let normalize components =
  let sorted =
    List.sort
      (fun (a, _) (b, _) -> Float.compare a b)
      (List.filter (fun (lo, hi) -> lo <= hi) components)
  in
  let rec merge = function
    | [] -> []
    | [ c ] -> [ c ]
    | (lo1, hi1) :: (lo2, hi2) :: rest ->
        if lo2 <= hi1 then merge ((lo1, Float.max hi1 hi2) :: rest)
        else (lo1, hi1) :: merge ((lo2, hi2) :: rest)
  in
  merge sorted

let union a b = normalize (a @ b)

let inter a b =
  let overlap (lo1, hi1) (lo2, hi2) =
    let lo = Float.max lo1 lo2 and hi = Float.min hi1 hi2 in
    if lo <= hi then Some (lo, hi) else None
  in
  let pieces =
    List.concat_map (fun ca -> List.filter_map (overlap ca) b) a
  in
  normalize pieces

(* Sweep the gaps between consecutive components.  Closed complements of
   closed sets overlap at single points, which is the documented
   closed-endpoint approximation. *)
let complement t =
  let rec walk lower = function
    | [] -> if lower < infinity then [ (lower, infinity) ] else []
    | (lo, hi) :: rest ->
        let before = if lower < lo then [ (lower, lo) ] else [] in
        before @ walk hi rest
  in
  normalize (walk neg_infinity t)

let mem t x = List.exists (fun (lo, hi) -> lo <= x && x <= hi) t

let covers t i =
  let lo = Interval.lo i and hi = Interval.hi i in
  List.exists (fun (clo, chi) -> clo <= lo && hi <= chi) t

let disjoint t i =
  let lo = Interval.lo i and hi = Interval.hi i in
  not (List.exists (fun (clo, chi) -> clo <= hi && lo <= chi) t)

let components t = t

(* The [_bounds] variants are the same tests over a support given as two
   floats, written as manual recursions so the columnar classification
   kernel can call them in a tight loop without allocating a closure or
   an interval per object.  They must stay exact mirrors of the
   interval-taking versions above: the golden row≡columnar equivalence
   suite depends on bit-for-bit identical answers. *)
let rec covers_bounds t ~lo ~hi =
  match t with
  | [] -> false
  | (clo, chi) :: rest -> (clo <= lo && hi <= chi) || covers_bounds rest ~lo ~hi

let rec disjoint_bounds t ~lo ~hi =
  match t with
  | [] -> true
  | (clo, chi) :: rest -> not (clo <= hi && lo <= chi) && disjoint_bounds rest ~lo ~hi

let measure_within t i =
  let lo = Interval.lo i and hi = Interval.hi i in
  List.fold_left
    (fun acc (clo, chi) ->
      let l = Float.max clo lo and h = Float.min chi hi in
      if l < h then acc +. (h -. l) else acc)
    0.0 t

let measure_within_bounds t ~lo ~hi =
  (* Same accumulation order as [measure_within]'s fold. *)
  let rec go acc = function
    | [] -> acc
    | (clo, chi) :: rest ->
        let l = Float.max clo lo and h = Float.min chi hi in
        go (if l < h then acc +. (h -. l) else acc) rest
  in
  go 0.0 t

let pp ppf t =
  match t with
  | [] -> Format.pp_print_string ppf "{}"
  | _ ->
      Format.pp_print_list
        ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " u ")
        (fun ppf (lo, hi) -> Format.fprintf ppf "[%g, %g]" lo hi)
        ppf t

let equal a b =
  List.length a = List.length b
  && List.for_all2 (fun (l1, h1) (l2, h2) -> l1 = l2 && h1 = h2) a b
