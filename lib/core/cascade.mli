(** A tiered probe cascade: one {!Probe_driver} per {!Probe_tier.spec},
    cheap [Shrink] proxies first, the [Resolve] oracle last.

    The cascade is passive plumbing over the per-tier drivers;
    escalation, re-classification and the Theorem 3.1 counter updates
    live in [Operator.run ?cascade].  A [Shrunk] outcome at tier [i]
    narrows the object's imprecision interval — a narrower interval is
    still a valid imprecise model, so re-classifying the shrunk object
    may turn MAYBE into a definite verdict and save the oracle probe
    entirely; residuals escalate to tier [i+1].  A tier that fails
    permanently fails over to the next tier ({!note_failover}); only an
    oracle failure degrades the answer. *)

type 'o t

val create :
  ?start:int -> specs:Probe_tier.spec array -> 'o Probe_driver.t array -> 'o t
(** [create ~specs drivers] pairs tier [i]'s spec with [drivers.(i)].
    [start] is the tier submissions enter at; it defaults to
    {!Probe_tier.select}'s cheapest escalation strategy.
    @raise Invalid_argument if the specs are invalid
    ({!Probe_tier.validate}), the arrays differ in length, or a
    driver's batch size disagrees with its spec. *)

val of_driver : ?name:string -> cost:Cost_model.t -> 'o Probe_driver.t -> 'o t
(** Single-tier cascade around today's oracle driver, priced at the
    cost model's [(c_p, c_b)] and the driver's batch size — the
    degenerate cascade the golden tests pin against the direct
    driver. *)

val tiers : 'o t -> int
val specs : 'o t -> Probe_tier.spec array
val names : 'o t -> string array
val drivers : 'o t -> 'o Probe_driver.t array
val driver : 'o t -> int -> 'o Probe_driver.t

val oracle : 'o t -> 'o Probe_driver.t
(** The final [Resolve] tier's driver. *)

val start : 'o t -> int
val set_start : 'o t -> int -> unit

val replan : 'o t -> unit
(** Re-select the cheapest starting tier from the specs — e.g. after a
    fault plan changed which tiers are worth entering. *)

val pending : 'o t -> int
(** Submissions queued but unresolved, summed over every tier. *)

val note_failover : 'o t -> int -> unit
(** Record a permanent failure at tier [i] that escalated to [i+1]. *)

val failovers : 'o t -> int array

val premap : into:('a -> 'o) -> back:('o -> 'a) -> 'o t -> 'a t
(** Per-tier {!Probe_driver.premap}; the view shares [start] and the
    failover counters with the original. *)

type stats = {
  st_name : string;
  st_probes : int;  (** [Resolved] outcomes at this tier *)
  st_shrinks : int;  (** [Shrunk] outcomes at this tier *)
  st_failures : int;
  st_batches : int;
  st_failovers : int;
}

val stats : 'o t -> stats array
