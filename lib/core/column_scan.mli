(** Vectorized pre-classification over a {!Column_store}.

    This is {!Scan_pipeline} with the per-object instance closures
    replaced by kernels over column chunks: each chunk's supports are
    classified by a {!Predicate.compiled} in a tight loop that reads two
    floats per row and writes verdict/laxity/success into flat,
    preallocated wave buffers — no per-object allocation and no object
    materialization during classification.  Objects come into existence
    ([of_row]) only when the sequential decision loop consumes them.

    Equivalence with the row path is by construction, in two layers:
    {ul
    {- the kernel evaluates [Predicate.classify_bounds] /
       [success_bounds] and the support width — exact mirrors of
       [Predicate.classify] / [success] / [Uncertain.laxity] on
       interval and exact beliefs — with the sequential loop's
       evaluation pattern (laxity only for YES/MAYBE, success only for
       MAYBE);}
    {- the decision loop itself is the untouched {!Operator.run},
       consuming through {!Scan_pipeline.item_instance} exactly as the
       row pipeline does, with probes through the same
       {!Probe_driver.premap}.}}
    So verdicts, guarantees, metered costs and the rng stream are
    bit-for-bit the row path's — the property the golden equivalence
    suite checks for every pool width.

    Chunks are classified in {e waves} of [wave] chunks: fetches happen
    on the caller's lane (streamed stores do file io), kernels are
    dispatched across the {!Domain_pool} (each wave position owns a
    disjoint buffer slice, so results are scheduling-independent), and
    speculation past the last consumed object is bounded by one wave —
    none of it charged to the meter, since reads are metered at
    consumption.

    With [prune:true], chunks whose zone hull is a definite NO are
    dropped before the scan: they are never fetched (the streamed store
    never reads their bytes), never enter the source's [total], and are
    counted under [qaq.parallel.pruned_pages] — the same soundness
    argument as {!Zone_map.open_cursor}. *)

val kernel :
  Predicate.compiled ->
  Column_store.chunk ->
  off:int ->
  verdicts:Bytes.t ->
  laxities:float array ->
  successes:float array ->
  unit
(** Classify one chunk into buffer slices starting at [off]: verdict
    [Tvl.to_char]-packed, laxity and success as floats.  Pure in the
    columns, writes only [off .. off + len - 1]. *)

val source :
  ?obs:Obs.t ->
  ?wave:int ->
  ?pool:Domain_pool.t ->
  ?prune:bool ->
  store:Column_store.t ->
  of_row:(Column_store.row -> 'o) ->
  pred:Predicate.compiled ->
  unit ->
  'o Scan_pipeline.item Operator.source
(** A source of pre-classified items in storage order.  [wave] (default
    16 chunks) bounds speculation; without a [pool] (or with one lane)
    kernels run on the caller's lane — still vectorized, just not
    parallel.  [obs] counts dispatched waves under [qaq.parallel.chunks]
    and, with [prune:true] (default false), pruned chunks under
    [qaq.parallel.pruned_pages]. *)

val run :
  rng:Rng.t ->
  ?pool:Domain_pool.t ->
  ?wave:int ->
  ?meter:Cost_meter.t ->
  ?obs:Obs.t ->
  ?emit:('o Operator.emitted -> unit) ->
  ?collect:bool ->
  ?enforce:bool ->
  ?should_stop:(pending:int -> bool) ->
  ?prune:bool ->
  ?cascade:'o Cascade.t ->
  store:Column_store.t ->
  of_row:(Column_store.row -> 'o) ->
  pred:Predicate.compiled ->
  instance:'o Operator.instance ->
  probe:'o Probe_driver.t ->
  policy:Policy.t ->
  requirements:Quality.requirements ->
  unit ->
  'o Operator.report
(** {!Operator.run} over the columnar source.  [instance] is {e not}
    used to classify stored rows (the kernel does that); it
    re-classifies probed objects on the way back into the loop, exactly
    as {!Scan_pipeline.run} does, so probe batching and statistics match
    the row path.  [pred] must be the compiled form of the predicate the
    instance classifies with — the golden suite holds the two to the
    same answers. *)
