type 'o outcome =
  | Resolved of 'o
  | Shrunk of 'o
  | Failed of { attempts : int }

exception Probe_failed

type instruments = {
  i_obs : Obs.t;
  m_probes : Metrics.counter;
  m_batches : Metrics.counter;
  m_shrinks : Metrics.counter;
  m_failures : Metrics.counter;
  h_flush : Metrics.histogram;
}

type 'o t = {
  resolve_batch : 'o array -> 'o outcome array;
  batch_size : int;
  ins : instruments option;
  mutable queue : ('o * ('o outcome -> unit)) list;  (* newest first *)
  mutable queued : int;
  mutable probes : int;
  mutable shrinks : int;
  mutable failures : int;
  mutable batches : int;
  mutable resolving : bool;
}

let create_outcomes ?obs ?(batch_size = 1) resolve_batch =
  if batch_size < 1 then invalid_arg "Probe_driver.create: batch_size < 1";
  let ins =
    Option.map
      (fun o ->
        {
          i_obs = o;
          m_probes = Obs.counter o "probe_driver.probes";
          m_batches = Obs.counter o "probe_driver.batches";
          m_shrinks = Obs.counter o "probe_driver.shrinks";
          m_failures = Obs.counter o "probe_driver.failures";
          h_flush = Obs.histogram o "probe_driver.flush_seconds";
        })
      obs
  in
  {
    resolve_batch;
    batch_size;
    ins;
    queue = [];
    queued = 0;
    probes = 0;
    shrinks = 0;
    failures = 0;
    batches = 0;
    resolving = false;
  }

let create ?obs ?batch_size resolve_batch =
  create_outcomes ?obs ?batch_size (fun objects ->
      Array.map (fun o -> Resolved o) (resolve_batch objects))

(* A proxy tier: the narrowing function maps every object to a Shrunk
   outcome — still possibly imprecise, so the consumer must re-classify
   and escalate residuals (see Cascade). *)
let shrinking ?obs ?batch_size narrow_batch =
  create_outcomes ?obs ?batch_size (fun objects ->
      Array.map (fun o -> Shrunk o) (narrow_batch objects))

let scalar ?obs probe = create ?obs (Array.map probe)
let of_scalar ?obs ~batch_size probe = create ?obs ~batch_size (Array.map probe)
let batch_size t = t.batch_size
let pending t = t.queued

let flush t =
  if t.resolving then invalid_arg "Probe_driver.flush: reentrant flush";
  if t.queued > 0 then begin
    let entries = Array.of_list (List.rev t.queue) in
    t.queue <- [];
    t.queued <- 0;
    let objects = Array.map fst entries in
    t.resolving <- true;
    let outcomes =
      Fun.protect
        ~finally:(fun () -> t.resolving <- false)
        (fun () ->
          match t.ins with
          | None -> t.resolve_batch objects
          | Some i ->
              let t0 = Obs.now i.i_obs in
              let r =
                Obs.span i.i_obs "probe-flush" (fun () ->
                    t.resolve_batch objects)
              in
              Metrics.observe i.h_flush
                (Float.max 0.0 (Obs.now i.i_obs -. t0));
              r)
    in
    if Array.length outcomes <> Array.length objects then
      invalid_arg "Probe_driver.flush: resolver changed the batch length";
    let resolved = ref 0 and shrunk = ref 0 and failed = ref 0 in
    Array.iter
      (function
        | Resolved _ -> incr resolved
        | Shrunk _ -> incr shrunk
        | Failed _ -> incr failed)
      outcomes;
    t.batches <- t.batches + 1;
    t.probes <- t.probes + !resolved;
    t.shrinks <- t.shrinks + !shrunk;
    t.failures <- t.failures + !failed;
    (match t.ins with
    | Some i ->
        Metrics.incr i.m_batches;
        Metrics.add i.m_probes !resolved;
        Metrics.add i.m_shrinks !shrunk;
        Metrics.add i.m_failures !failed;
        if Obs.tracing i.i_obs then begin
          Obs.event i.i_obs (Trace.Batch { size = Array.length objects });
          Array.iter
            (function
              | Resolved _ | Shrunk _ -> ()
              | Failed { attempts } ->
                  Obs.event i.i_obs (Trace.Probe_failed { attempts }))
            outcomes
        end
    | None -> ());
    (* Callbacks run after the accounting and outside [resolving], so a
       completion may inspect the stats or submit follow-up probes. *)
    Array.iteri (fun i (_, k) -> k outcomes.(i)) entries
  end

let submit_outcome t o k =
  t.queue <- (o, k) :: t.queue;
  t.queued <- t.queued + 1;
  if t.queued >= t.batch_size then flush t

(* Legacy callers expect the precise object or an exception; a failure
   surfaces as [Probe_failed] from inside the flush that resolved it,
   after the whole batch was accounted (siblings keep their results). *)
let submit t o k =
  submit_outcome t o (function
    | Resolved p -> k p
    | Shrunk _ ->
        invalid_arg "Probe_driver.submit: shrinking tier needs outcome API"
    | Failed _ -> raise Probe_failed)

let resolve t o =
  let result = ref None in
  submit t o (fun precise -> result := Some precise);
  flush t;
  match !result with Some precise -> precise | None -> assert false

let probes t = t.probes
let shrinks t = t.shrinks
let failures t = t.failures
let batches t = t.batches

(* The wrapper batches on its own queue with the inner driver's batch
   size, so a full wrapper batch arrives at the inner driver as one full
   batch: the inner driver flushes exactly when it would have had the
   caller submitted the unwrapped objects directly.  Accounting
   (probes/batches, instruments, latency simulation) therefore happens
   on the inner driver precisely as in the unwrapped case; the wrapper
   mirrors the same counts through its own queue for the consumer's
   delta metering.  Failures pass through untouched, so a degraded
   outcome reaches the consumer with the inner driver's attempt count. *)
let premap ~into ~back inner =
  create_outcomes ~batch_size:inner.batch_size (fun items ->
      let n = Array.length items in
      let resolved = Array.make n None in
      Array.iteri
        (fun i a ->
          submit_outcome inner (into a) (fun p -> resolved.(i) <- Some p))
        items;
      flush inner;
      Array.map
        (function
          | Some (Resolved p) -> Resolved (back p)
          | Some (Shrunk p) -> Shrunk (back p)
          | Some (Failed { attempts }) -> Failed { attempts }
          | None -> assert false)
        resolved)
