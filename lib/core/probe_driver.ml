type 'o t = {
  resolve_batch : 'o array -> 'o array;
  batch_size : int;
  mutable queue : ('o * ('o -> unit)) list;  (* newest first *)
  mutable queued : int;
  mutable probes : int;
  mutable batches : int;
  mutable resolving : bool;
}

let create ?(batch_size = 1) resolve_batch =
  if batch_size < 1 then invalid_arg "Probe_driver.create: batch_size < 1";
  {
    resolve_batch;
    batch_size;
    queue = [];
    queued = 0;
    probes = 0;
    batches = 0;
    resolving = false;
  }

let scalar probe = create (Array.map probe)
let of_scalar ~batch_size probe = create ~batch_size (Array.map probe)
let batch_size t = t.batch_size
let pending t = t.queued

let flush t =
  if t.resolving then invalid_arg "Probe_driver.flush: reentrant flush";
  if t.queued > 0 then begin
    let entries = Array.of_list (List.rev t.queue) in
    t.queue <- [];
    t.queued <- 0;
    let objects = Array.map fst entries in
    t.resolving <- true;
    let precise =
      Fun.protect
        ~finally:(fun () -> t.resolving <- false)
        (fun () -> t.resolve_batch objects)
    in
    if Array.length precise <> Array.length objects then
      invalid_arg "Probe_driver.flush: resolver changed the batch length";
    t.batches <- t.batches + 1;
    t.probes <- t.probes + Array.length objects;
    (* Callbacks run after the accounting and outside [resolving], so a
       completion may inspect the stats or submit follow-up probes. *)
    Array.iteri (fun i (_, k) -> k precise.(i)) entries
  end

let submit t o k =
  t.queue <- (o, k) :: t.queue;
  t.queued <- t.queued + 1;
  if t.queued >= t.batch_size then flush t

let resolve t o =
  let result = ref None in
  submit t o (fun precise -> result := Some precise);
  flush t;
  match !result with Some precise -> precise | None -> assert false

let probes t = t.probes
let batches t = t.batches
