(* The vectorized sibling of [Scan_pipeline.source]: instead of mapping
   an instance closure over an object array, classification runs as
   tight loops over column chunks, writing verdict/laxity/success into
   flat wave buffers.  Objects are only materialized ([of_row]) when the
   decision loop consumes them, on the caller's lane. *)

let kernel (pred : Predicate.compiled) (ch : Column_store.chunk) ~off ~verdicts
    ~laxities ~successes =
  let lo = ch.Column_store.lo and hi = ch.Column_store.hi in
  for i = 0 to ch.Column_store.len - 1 do
    let l = Bigarray.Array1.unsafe_get lo i in
    let h = Bigarray.Array1.unsafe_get hi i in
    let v = Predicate.classify_bounds pred ~lo:l ~hi:h in
    Bytes.unsafe_set verdicts (off + i) (Tvl.to_char v);
    (* Same evaluation pattern as [Scan_pipeline.classify_one]: laxity
       only for YES/MAYBE, success only for MAYBE.  Laxity is the
       support width ([Uncertain.laxity] of an interval or exact
       belief), success mirrors [Predicate.success] on the flat
       schema. *)
    match v with
    | Tvl.No ->
        Array.unsafe_set laxities (off + i) 0.0;
        Array.unsafe_set successes (off + i) 0.0
    | Tvl.Yes ->
        Array.unsafe_set laxities (off + i) (h -. l);
        Array.unsafe_set successes (off + i) 1.0
    | Tvl.Maybe ->
        Array.unsafe_set laxities (off + i) (h -. l);
        Array.unsafe_set successes (off + i)
          (Predicate.success_bounds pred ~lo:l ~hi:h)
  done

let source ?obs ?(wave = 16) ?pool ?(prune = false) ~store ~of_row ~pred () =
  if wave < 1 then invalid_arg "Column_scan.source: wave < 1";
  let chunk_count = Column_store.chunk_count store in
  let surviving =
    if not prune then Array.init chunk_count (fun c -> c)
    else begin
      let keep = ref [] in
      let p = Predicate.source pred in
      for c = chunk_count - 1 downto 0 do
        if not (Column_store.prunable store p c) then keep := c :: !keep
      done;
      Array.of_list !keep
    end
  in
  (match obs with
  | Some o when prune ->
      Metrics.add
        (Obs.counter o Obs.Keys.pruned_pages)
        (chunk_count - Array.length surviving)
  | _ -> ());
  let total =
    Array.fold_left
      (fun acc c -> acc + snd (Column_store.chunk_bounds store c))
      0 surviving
  in
  let m_waves =
    Option.map (fun o -> Obs.counter o Obs.Keys.parallel_chunks) obs
  in
  let cs = Column_store.chunk_size store in
  (* Wave buffers, reused: the consumer drains a wave completely before
     the next is dispatched, so one allocation serves the whole scan. *)
  let cap = wave * cs in
  let verdicts = Bytes.create cap in
  let laxities = Array.make cap 0.0 in
  let successes = Array.make cap 0.0 in
  let chunks = ref [||] in
  (* chunks of the current wave *)
  let chunk_pos = ref 0 in
  (* index into [!chunks] *)
  let row_pos = ref 0 in
  (* row within the current chunk *)
  let frontier = ref 0 in
  (* index into [surviving] *)
  let dispatch () =
    let lo = !frontier in
    let len = Stdlib.min wave (Array.length surviving - lo) in
    frontier := lo + len;
    (* Chunk fetches stay on the caller's lane: a streamed store may do
       file io through a buffer pool, neither of which is domain-safe. *)
    let wave_chunks =
      Array.init len (fun k -> Column_store.chunk store surviving.(lo + k))
    in
    let tasks =
      Array.mapi
        (fun k ch () ->
          kernel pred ch ~off:(k * cs) ~verdicts ~laxities ~successes)
        wave_chunks
    in
    (* Each task writes a disjoint buffer slice indexed by its wave
       position, so the result is scheduling-independent. *)
    (match pool with
    | Some p when Domain_pool.domains p > 1 -> ignore (Domain_pool.run_all p tasks)
    | _ -> Array.iter (fun task -> task ()) tasks);
    (match m_waves with Some c -> Metrics.incr c | None -> ());
    chunks := wave_chunks;
    chunk_pos := 0;
    row_pos := 0
  in
  let rec next () =
    if !chunk_pos < Array.length !chunks then begin
      let ch = (!chunks).(!chunk_pos) in
      if !row_pos >= ch.Column_store.len then begin
        incr chunk_pos;
        row_pos := 0;
        next ()
      end
      else begin
        let i = !row_pos in
        incr row_pos;
        let off = (!chunk_pos * cs) + i in
        Some
          {
            Scan_pipeline.original = of_row (Column_store.row ch i);
            verdict = Tvl.of_char (Bytes.unsafe_get verdicts off);
            laxity = Array.unsafe_get laxities off;
            success = Array.unsafe_get successes off;
          }
      end
    end
    else if !frontier >= Array.length surviving then None
    else begin
      dispatch ();
      next ()
    end
  in
  { Operator.next; total }

let run ~rng ?pool ?wave ?meter ?obs ?emit ?collect ?enforce ?should_stop
    ?prune ?cascade ~store ~of_row ~pred ~instance ~probe ~policy
    ~requirements () =
  let src = source ?obs ?wave ?pool ?prune ~store ~of_row ~pred () in
  let probe' =
    Probe_driver.premap ~into:Scan_pipeline.original
      ~back:(Scan_pipeline.classify_one instance)
      probe
  in
  let cascade' =
    Option.map
      (Cascade.premap ~into:Scan_pipeline.original
         ~back:(Scan_pipeline.classify_one instance))
      cascade
  in
  let emit' =
    Option.map
      (fun f (e : _ Scan_pipeline.item Operator.emitted) ->
        f { Operator.obj = e.obj.Scan_pipeline.original; precise = e.precise })
      emit
  in
  Scan_pipeline.strip_report
    (Operator.run ~rng ?meter ?obs ?emit:emit' ?collect ?enforce ?should_stop
       ?cascade:cascade' ~instance:Scan_pipeline.item_instance ~probe:probe'
       ~policy ~requirements src)
