(** Parallel pre-classification feeding the sequential QaQ decision loop.

    The per-object work of the scan — [classify], [laxity], [success] —
    is pure and embarrassingly parallel; everything that carries the
    paper's guarantees (the Theorem 3.1 guards, the counters, the cost
    meter, the policy's randomized choices) is inherently sequential.
    This module splits the operator accordingly: a pipeline stage
    evaluates the instance over blocks of input on a {!Domain_pool},
    producing {!item} records, and {!Operator.run} consumes those
    records through a projection instance — so the decision loop, the
    rng stream, the metering and the guarantees are {e bit-for-bit} the
    sequential operator's.

    Determinism argument: the stage evaluates exactly the expressions
    the sequential loop would have evaluated, on the same objects, with
    the same pure functions ([classify] for every object; [laxity] only
    for YES/MAYBE, [success] only for MAYBE — NO objects never reach the
    policy, and a YES's success is the constant 1).  Blocks are merged
    in index order ({!Domain_pool.parallel_map}), so the operator sees
    the same object sequence; every stateful step happens in the
    operator's own domain in the same order as before.  The only
    observable difference is speculation: classification may run ahead
    of the stopping test by at most one block, none of which is charged
    to the meter — reads are metered at consumption, exactly as in the
    sequential scan. *)

(** A pre-classified object: the instance evaluated once, ahead of the
    decision loop. *)
type 'o item = {
  original : 'o;
  verdict : Tvl.t;
  laxity : float;  (** 0 for NO items (the loop never asks) *)
  success : float;  (** 1 for YES, 0 for NO (as the loop assumes) *)
}

val original : 'o item -> 'o

val classify_one : 'o Operator.instance -> 'o -> 'o item
(** Evaluate the instance on one object, with the sequential loop's
    evaluation pattern (see the determinism argument above). *)

val item_instance : 'o item Operator.instance
(** Field projections — the instance the decision loop runs against. *)

val source :
  ?obs:Obs.t ->
  ?block:int ->
  pool:Domain_pool.t ->
  instance:'o Operator.instance ->
  'o array ->
  'o item Operator.source
(** A source that classifies [block] objects (default 4096) at a time on
    the pool and hands them to the consumer one by one.  Speculation is
    bounded by one block past the last consumed object.  [obs] counts
    dispatched blocks under [qaq.parallel.chunks]. *)

val run :
  rng:Rng.t ->
  ?pool:Domain_pool.t ->
  ?block:int ->
  ?meter:Cost_meter.t ->
  ?obs:Obs.t ->
  ?emit:('o Operator.emitted -> unit) ->
  ?collect:bool ->
  ?enforce:bool ->
  ?should_stop:(pending:int -> bool) ->
  ?cascade:'o Cascade.t ->
  instance:'o Operator.instance ->
  probe:'o Probe_driver.t ->
  policy:Policy.t ->
  requirements:Quality.requirements ->
  'o array ->
  'o Operator.report
(** {!Operator.run} over an array, classifying on [pool] when it has
    more than one lane and degrading to the plain sequential operator
    otherwise (or when [pool] is omitted).  Probes go through
    {!Probe_driver.premap} on the given driver (every tier's, under
    [cascade] — see [Operator.run]'s [?cascade]), so its batching,
    statistics and instruments behave exactly as under direct use.  The
    report (answers included) is expressed over ['o], not {!item};
    results are bit-for-bit the sequential run's. *)

val strip_report : 'o item Operator.report -> 'o Operator.report
(** Re-express a report over the original objects. *)
