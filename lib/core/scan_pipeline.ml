type 'o item = {
  original : 'o;
  verdict : Tvl.t;
  laxity : float;
  success : float;
}

let original it = it.original

(* Mirror the sequential loop's evaluation pattern exactly: laxity only
   for YES/MAYBE, success only for MAYBE.  This keeps the number and the
   targets of instance calls identical to [Operator.run]'s own (per
   consumed object), so instances that count their calls — or that are
   expensive on one axis only — behave the same under both paths. *)
let classify_one (instance : 'o Operator.instance) o =
  match instance.classify o with
  | Tvl.No as verdict -> { original = o; verdict; laxity = 0.0; success = 0.0 }
  | Tvl.Yes as verdict ->
      { original = o; verdict; laxity = instance.laxity o; success = 1.0 }
  | Tvl.Maybe as verdict ->
      {
        original = o;
        verdict;
        laxity = instance.laxity o;
        success = instance.success o;
      }

let item_instance : 'o item Operator.instance =
  {
    classify = (fun it -> it.verdict);
    laxity = (fun it -> it.laxity);
    success = (fun it -> it.success);
  }

let source ?obs ?(block = 4096) ~pool ~(instance : 'o Operator.instance) data =
  if block < 1 then invalid_arg "Scan_pipeline.source: block < 1";
  let n = Array.length data in
  let m_chunks =
    Option.map (fun o -> Obs.counter o Obs.Keys.parallel_chunks) obs
  in
  let buf = ref [||] in
  let buf_pos = ref 0 in
  let frontier = ref 0 in
  let rec next () =
    if !buf_pos < Array.length !buf then begin
      let it = (!buf).(!buf_pos) in
      incr buf_pos;
      Some it
    end
    else if !frontier >= n then None
    else begin
      let lo = !frontier in
      let len = Stdlib.min block (n - lo) in
      frontier := lo + len;
      let slice = Array.sub data lo len in
      buf := Domain_pool.parallel_map pool (classify_one instance) slice;
      buf_pos := 0;
      (match m_chunks with Some c -> Metrics.incr c | None -> ());
      next ()
    end
  in
  { Operator.next; total = n }

let strip_report (r : 'o item Operator.report) : 'o Operator.report =
  {
    Operator.answer =
      List.map
        (fun (e : 'o item Operator.emitted) ->
          { Operator.obj = e.obj.original; precise = e.precise })
        r.answer;
    guarantees = r.guarantees;
    requirements = r.requirements;
    counts = r.counts;
    yes_seen = r.yes_seen;
    maybe_ignored = r.maybe_ignored;
    answer_size = r.answer_size;
    exhausted = r.exhausted;
    stopped_early = r.stopped_early;
    degraded = r.degraded;
  }

let run ~rng ?pool ?block ?meter ?obs ?emit ?collect ?enforce ?should_stop
    ?cascade ~instance ~probe ~policy ~requirements data =
  match pool with
  | Some pool when Domain_pool.domains pool > 1 ->
      let src = source ?obs ?block ~pool ~instance data in
      let probe' =
        Probe_driver.premap ~into:original ~back:(classify_one instance) probe
      in
      let cascade' =
        Option.map
          (Cascade.premap ~into:original ~back:(classify_one instance))
          cascade
      in
      let emit' =
        Option.map
          (fun f (e : _ item Operator.emitted) ->
            f { Operator.obj = e.obj.original; precise = e.precise })
          emit
      in
      strip_report
        (Operator.run ~rng ?meter ?obs ?emit:emit' ?collect ?enforce
           ?should_stop ?cascade:cascade' ~instance:item_instance
           ~probe:probe' ~policy ~requirements src)
  | Some _ | None ->
      Operator.run ~rng ?meter ?obs ?emit ?collect ?enforce ?should_stop
        ?cascade ~instance ~probe ~policy ~requirements
        (Operator.source_of_array data)
