(* A tiered probe cascade: one driver per Probe_tier.spec, cheap
   Shrink proxies first, the Resolve oracle last.  The cascade itself
   is passive plumbing — escalation and re-classification live in the
   operator ([Operator.run ?cascade]) so the Theorem 3.1 counter
   discipline stays in one place.  [start] and [failovers] are shared
   across {!premap} views: a pre-classified view escalating an object
   must be visible to anyone holding the unmapped cascade. *)

type 'o t = {
  specs : Probe_tier.spec array;
  drivers : 'o Probe_driver.t array;
  start : int ref;
  failovers : int array;
}

let create ?start ~specs drivers =
  Probe_tier.validate specs;
  if Array.length drivers <> Array.length specs then
    invalid_arg "Cascade.create: drivers/specs length mismatch";
  Array.iteri
    (fun i d ->
      if Probe_driver.batch_size d <> specs.(i).Probe_tier.batch then
        invalid_arg
          (Printf.sprintf
             "Cascade.create: tier %S driver batch %d <> spec batch %d"
             specs.(i).Probe_tier.name (Probe_driver.batch_size d)
             specs.(i).Probe_tier.batch))
    drivers;
  let start =
    match start with
    | Some s ->
        if s < 0 || s >= Array.length specs then invalid_arg "Cascade.create: start";
        s
    | None -> (Probe_tier.select specs).Probe_tier.start
  in
  {
    specs;
    drivers;
    start = ref start;
    failovers = Array.make (Array.length specs) 0;
  }

let of_driver ?(name = "oracle") ~(cost : Cost_model.t) driver =
  let specs =
    Probe_tier.oracle_only ~name ~cost
      ~batch:(Probe_driver.batch_size driver)
      ()
  in
  create ~specs [| driver |]

let tiers t = Array.length t.specs
let specs t = t.specs
let names t = Array.map (fun (s : Probe_tier.spec) -> s.Probe_tier.name) t.specs
let drivers t = t.drivers
let driver t i = t.drivers.(i)
let oracle t = t.drivers.(Array.length t.drivers - 1)
let start t = !(t.start)

let set_start t s =
  if s < 0 || s >= Array.length t.specs then invalid_arg "Cascade.set_start";
  t.start := s

let replan t = set_start t (Probe_tier.select t.specs).Probe_tier.start

let pending t =
  Array.fold_left (fun acc d -> acc + Probe_driver.pending d) 0 t.drivers

let note_failover t i = t.failovers.(i) <- t.failovers.(i) + 1
let failovers t = Array.copy t.failovers

let premap ~into ~back t =
  {
    specs = t.specs;
    drivers = Array.map (Probe_driver.premap ~into ~back) t.drivers;
    start = t.start;
    failovers = t.failovers;
  }

type stats = { st_name : string; st_probes : int; st_shrinks : int;
               st_failures : int; st_batches : int; st_failovers : int }

let stats t =
  Array.mapi
    (fun i d ->
      {
        st_name = t.specs.(i).Probe_tier.name;
        st_probes = Probe_driver.probes d;
        st_shrinks = Probe_driver.shrinks d;
        st_failures = Probe_driver.failures d;
        st_batches = Probe_driver.batches d;
        st_failovers = t.failovers.(i);
      })
    t.drivers
