type 'o instance = {
  classify : 'o -> Tvl.t;
  laxity : 'o -> float;
  success : 'o -> float;
}

type 'o source = { next : unit -> 'o option; total : int }

let source_of_array objects =
  let pos = ref 0 in
  let next () =
    if !pos >= Array.length objects then None
    else begin
      let o = objects.(!pos) in
      incr pos;
      Some o
    end
  in
  { next; total = Array.length objects }

let source_of_cursor cursor =
  {
    next = (fun () -> Heap_file.Cursor.next cursor);
    total = Heap_file.Cursor.remaining cursor;
  }

type 'o emitted = { obj : 'o; precise : bool }

type degradation = {
  failed_probes : int;
  failed_attempts : int;
  degraded_forwards : int;
  degraded_ignores : int;
  forced_actions : int;
  guarantees_before : Quality.guarantees option;
}

let no_degradation =
  {
    failed_probes = 0;
    failed_attempts = 0;
    degraded_forwards = 0;
    degraded_ignores = 0;
    forced_actions = 0;
    guarantees_before = None;
  }

type 'o report = {
  answer : 'o emitted list;
  guarantees : Quality.guarantees;
  requirements : Quality.requirements;
  counts : Cost_meter.counts;
  yes_seen : int;
  maybe_ignored : int;
  answer_size : int;
  exhausted : bool;
  stopped_early : bool;
  degraded : degradation;
}

exception Inconsistent_probe

let trace_verdict = function
  | Tvl.Yes -> `Yes
  | Tvl.No -> `No
  | Tvl.Maybe -> `Maybe

let trace_action = function
  | Decision.Forward -> `Forward
  | Decision.Probe -> `Probe
  | Decision.Ignore -> `Ignore

let run ~rng ?meter ?obs ?emit ?(collect = true) ?(enforce = true)
    ?(should_stop = fun ~pending:_ -> false) ?on_progress
    ?(cascade : _ Cascade.t option) ~instance
    ~(probe : _ Probe_driver.t) ~policy
    ~(requirements : Quality.requirements) source =
  let meter = match meter with Some m -> m | None -> Cost_meter.create () in
  (* A shared meter may carry charges from earlier runs; the report's
     counts cover this run only. *)
  let counts_before = Cost_meter.counts meter in
  let counters = Counters.create ~total:source.total in
  (* Counter handles resolve once per run; with [obs] absent every note
     is a no-op closure, so the per-object path allocates nothing. *)
  let note_read, note_probe, note_batch, note_write_imprecise,
      note_write_precise =
    match obs with
    | None ->
        let nop () = () in
        (nop, nop, nop, nop, nop)
    | Some o ->
        let r = Obs.counter o Obs.Keys.reads
        and p = Obs.counter o Obs.Keys.probes
        and b = Obs.counter o Obs.Keys.batches
        and wi = Obs.counter o Obs.Keys.writes_imprecise
        and wp = Obs.counter o Obs.Keys.writes_precise in
        ( (fun () -> Metrics.incr r),
          (fun () -> Metrics.incr p),
          (fun () -> Metrics.incr b),
          (fun () -> Metrics.incr wi),
          (fun () -> Metrics.incr wp) )
  in
  (* The MAYBE set is what the optimizer gambles on; record the laxity
     and success-probability distributions it actually faced.  Guarded
     observations so a pathological instance (negative or non-finite
     laxity) degrades to "not recorded" rather than turning a profiled
     run into a crashed one. *)
  let note_maybe =
    match obs with
    | None -> fun ~laxity:_ ~success:_ -> ()
    | Some o ->
        let hl = Obs.histogram o Obs.Keys.maybe_laxity
        and hs = Obs.histogram o Obs.Keys.maybe_success in
        fun ~laxity ~success ->
          if Float.is_finite laxity && laxity >= 0.0 then
            Metrics.observe hl laxity;
          if Float.is_finite success && success >= 0.0 then
            Metrics.observe hs success
  in
  let note_degraded =
    match obs with
    | None -> fun () -> ()
    | Some o ->
        let c = Obs.counter o Obs.Keys.fault_degraded in
        fun () -> Metrics.incr c
  in
  let tracing = match obs with Some o -> Obs.tracing o | None -> false in
  let trace_event e = match obs with Some o -> Obs.event o e | None -> () in
  let answer = ref [] in
  let deliver entry =
    (match emit with Some f -> f entry | None -> ());
    if collect then answer := entry :: !answer
  in
  let forward_imprecise o =
    Cost_meter.charge_write_imprecise meter;
    note_write_imprecise ();
    deliver { obj = o; precise = false }
  in
  let forward_precise o =
    Cost_meter.charge_write_precise meter;
    note_write_precise ();
    deliver { obj = o; precise = true }
  in
  (* A probe must yield a laxity-0 object whenever the result is going to
     be emitted; an object that resolves to NO is discarded, so residual
     imprecision there is fine (a relational probe may stop fetching
     attributes the moment the condition is decided). *)
  let require_resolved precise =
    if instance.laxity precise > 0.0 then raise Inconsistent_probe
  in
  let choose ~verdict ~laxity preference =
    if enforce then
      Decision.first_feasible counters requirements ~verdict ~laxity
        ~preference
    else
      match preference with a :: _ -> a | [] -> Decision.Probe
  in
  let note_progress () =
    match on_progress with
    | Some f ->
        f ~reads:(source.total - Counters.unseen counters)
          (Counters.guarantees counters)
    | None -> ()
  in
  (* Probing is deferred: a PROBE decision submits the object to the
     driver and its counter updates, consistency checks and emission run
     when the batch resolves.  While a probe is pending the counters lag
     by its eventual (answer_yes, yes_seen, unseen) increments — but a
     resolution can only add the same amount to both sides of the
     Theorem 3.1 inequalities (a YES resolution adds 1 to |A∩Y| and to
     |A|, to |A∩Y| and to |Y|; a NO resolution changes nothing), so any
     forward or ignore the guards admit against the lagged counters is
     also admissible against the flushed ones: deferral is conservative,
     never unsound.  With batch size 1 every submission flushes before
     [submit] returns and this operator is the scalar Fig. 1 loop, bit
     for bit. *)
  (* Degradation state: a probe that fails permanently does not abort
     the run — the object is still MAYBE (or YES) and still needs a
     write decision.  The fallback re-enters the Theorem 3.1 guards with
     the probe option gone; when even Forward and Ignore are infeasible
     the operator is forced to act anyway and the final guarantees are
     recomputed honestly from the counters (they may then miss the
     requirements — reported, never hidden). *)
  let failed_probes = ref 0 in
  let failed_attempts = ref 0 in
  let degraded_forwards = ref 0 in
  let degraded_ignores = ref 0 in
  let forced_actions = ref 0 in
  let guarantees_before = ref None in
  let degraded_fallback ~verdict ~laxity preference =
    let candidates =
      List.filter
        (fun a -> not (Decision.equal_action a Decision.Probe))
        preference
      @ [ Decision.Forward; Decision.Ignore ]
    in
    if not enforce then ((match candidates with a :: _ -> a | [] -> assert false), false)
    else
      let ok = function
        | Decision.Forward ->
            Decision.can_forward counters requirements ~verdict ~laxity
        | Decision.Ignore -> Decision.can_ignore counters requirements ~verdict
        | Decision.Probe -> false
      in
      match List.find_opt ok candidates with
      | Some a -> (a, false)
      | None ->
          (* Nothing is guarantee-safe without the probe.  Keep the
             object if its laxity alone is admissible (recall can still
             recover later), drop it otherwise (laxity never heals). *)
          ( (if laxity <= requirements.Quality.laxity then Decision.Forward
             else Decision.Ignore),
            true )
  in
  let degrade o ~verdict ~laxity ~attempts preference =
    incr failed_probes;
    failed_attempts := !failed_attempts + attempts;
    if !guarantees_before = None then
      guarantees_before := Some (Counters.guarantees counters);
    note_degraded ();
    let action, forced = degraded_fallback ~verdict ~laxity preference in
    if forced then incr forced_actions;
    if tracing then
      trace_event
        (Trace.Degraded
           { verdict = trace_verdict verdict; action = trace_action action;
             forced });
    (match (action, verdict) with
    | Decision.Forward, Tvl.Yes ->
        incr degraded_forwards;
        Counters.forward_yes counters ~laxity;
        forward_imprecise o
    | Decision.Forward, (Tvl.Maybe | Tvl.No) ->
        incr degraded_forwards;
        Counters.forward_maybe counters ~laxity;
        forward_imprecise o
    | Decision.Ignore, Tvl.Yes ->
        incr degraded_ignores;
        Counters.ignore_yes counters
    | Decision.Ignore, (Tvl.Maybe | Tvl.No) ->
        incr degraded_ignores;
        Counters.ignore_maybe counters
    | Decision.Probe, _ -> assert false);
    note_progress ()
  in
  (* Probe machinery, abstracted over the two backends: the single
     oracle driver (today's path, untouched) or a tiered cascade where
     a submission enters at the cheapest viable tier, [Shrunk] outcomes
     are re-classified (a narrower interval may be definite, saving the
     oracle probe) and residuals escalate tier by tier. *)
  let pending_probes, submit_probe, flush_probes =
    match cascade with
    | None ->
        let batches_seen = ref (Probe_driver.batches probe) in
        let sync_batches () =
          (* The driver flushes autonomously at batch boundaries; meter
             its batch dispatches by delta so a shared driver stays
             accountable. *)
          let b = Probe_driver.batches probe in
          for _ = 1 to b - !batches_seen do
            Cost_meter.charge_batch meter;
            note_batch ()
          done;
          batches_seen := b
        in
        let submit_probe ~verdict ~laxity ~preference o complete =
          Probe_driver.submit_outcome probe o (function
            | Probe_driver.Resolved precise ->
                Cost_meter.charge_probe meter;
                note_probe ();
                if tracing then trace_event Trace.Probe_resolved;
                complete precise;
                note_progress ()
            | Probe_driver.Shrunk _ ->
                invalid_arg "Operator.run: Shrunk outcome without a cascade"
            | Probe_driver.Failed { attempts } ->
                degrade o ~verdict ~laxity ~attempts preference);
          sync_batches ()
        in
        let flush_probes () =
          Probe_driver.flush probe;
          sync_batches ()
        in
        ((fun () -> Probe_driver.pending probe), submit_probe, flush_probes)
    | Some c ->
        let specs = Cascade.specs c in
        let drivers = Cascade.drivers c in
        let n = Array.length drivers in
        let note_tier_probe, note_tier_batch, note_tier_shrink,
            note_tier_failover =
          match obs with
          | None ->
              let nop (_ : int) = () in
              (nop, nop, nop, nop)
          | Some o ->
              let mk key =
                Array.map
                  (fun (s : Probe_tier.spec) ->
                    Obs.counter o (key s.Probe_tier.name))
                  specs
              in
              let p = mk Obs.Keys.tier_probes
              and b = mk Obs.Keys.tier_batches
              and s = mk Obs.Keys.tier_shrinks
              and f = mk Obs.Keys.tier_failovers in
              ( (fun i -> Metrics.incr p.(i)),
                (fun i -> Metrics.incr b.(i)),
                (fun i -> Metrics.incr s.(i)),
                (fun i -> Metrics.incr f.(i)) )
        in
        let batches_seen = Array.map Probe_driver.batches drivers in
        let sync_batches () =
          Array.iteri
            (fun i d ->
              let b = Probe_driver.batches d in
              for _ = 1 to b - batches_seen.(i) do
                Cost_meter.charge_batch_tier meter i;
                note_batch ();
                note_tier_batch i
              done;
              batches_seen.(i) <- b)
            drivers
        in
        let charge_probe_at i =
          Cost_meter.charge_probe_tier meter i;
          note_probe ();
          note_tier_probe i
        in
        (* A shrunk object that became definite YES forwards imprecise
           when its residual laxity is admissible — exactly rule (a),
           i.e. [Decision.can_forward ~verdict:Yes].  The policy is not
           re-consulted (no rng draw), so plans and adaptive windows
           see the same decision stream as an oracle-only run. *)
        let forwardable ~laxity = laxity <= requirements.Quality.laxity in
        let rec submit_tier i ~verdict ~laxity ~preference o complete =
          Probe_driver.submit_outcome drivers.(i) o (function
            | Probe_driver.Resolved precise ->
                charge_probe_at i;
                if tracing then trace_event Trace.Probe_resolved;
                complete precise;
                note_progress ()
            | Probe_driver.Shrunk narrowed ->
                charge_probe_at i;
                note_tier_shrink i;
                (* The final tier is Resolve by construction; a Shrunk
                   outcome there is a broken backend. *)
                if i >= n - 1 then raise Inconsistent_probe;
                let laxity' = instance.laxity narrowed in
                (* Shrinking must narrow: more laxity than before means
                   the proxy widened the imprecision model. *)
                if laxity' > laxity +. 1e-9 then raise Inconsistent_probe;
                let verdict' = instance.classify narrowed in
                (match (verdict, verdict') with
                | Tvl.Yes, (Tvl.No | Tvl.Maybe) ->
                    (* a narrower interval of a YES object stays inside
                       the query region *)
                    raise Inconsistent_probe
                | _ -> ());
                (match verdict' with
                | Tvl.No ->
                    (* Definite NO: the proxy answered the query; like
                       a probed MAYBE that resolved NO, the object is
                       consumed and never reaches the oracle. *)
                    Counters.probe_maybe_no counters;
                    note_progress ()
                | Tvl.Yes when forwardable ~laxity:laxity' ->
                    Counters.forward_yes counters ~laxity:laxity';
                    forward_imprecise narrowed;
                    note_progress ()
                | Tvl.Yes | Tvl.Maybe ->
                    submit_tier (i + 1) ~verdict:verdict' ~laxity:laxity'
                      ~preference narrowed complete)
            | Probe_driver.Failed { attempts } ->
                if i < n - 1 then begin
                  (* Cheap tier down: escalate straight to the next
                     tier — the answer only degrades when the oracle
                     itself fails. *)
                  Cascade.note_failover c i;
                  note_tier_failover i;
                  submit_tier (i + 1) ~verdict ~laxity ~preference o complete
                end
                else degrade o ~verdict ~laxity ~attempts preference)
        in
        let submit_probe ~verdict ~laxity ~preference o complete =
          submit_tier (Cascade.start c) ~verdict ~laxity ~preference o
            complete;
          sync_batches ()
        in
        let flush_probes () =
          (* Escalation strictly increases the tier index, so one pass
             in order drains everything a callback re-submits. *)
          Array.iter Probe_driver.flush drivers;
          sync_batches ()
        in
        ((fun () -> Cascade.pending c), submit_probe, flush_probes)
  in
  let finished () =
    Counters.recall_guarantee counters >= requirements.Quality.recall
  in
  (* A pending resolution can only raise the recall guarantee: a YES
     grows the numerator with the denominator unchanged, a NO shrinks
     the denominator.  Flush as soon as the most favourable outcome mix
     could reach r_q, so batching never reads past the early-termination
     point by more than the probes already in flight. *)
  let pending_could_finish () =
    let n = pending_probes () in
    n > 0
    &&
    let ay = Counters.answer_yes counters in
    let d =
      Counters.yes_seen counters + Counters.unseen counters
      + Counters.maybe_ignored counters
    in
    let ratio num den =
      if den <= 0 then 1.0 else float_of_int num /. float_of_int den
    in
    Float.max (ratio (ay + n) d) (ratio ay (d - n))
    >= requirements.Quality.recall
  in
  (* One object per iteration; Fig. 1's do-loop with the stopping test
     hoisted, so a query whose recall bound is already met reads
     nothing. *)
  let exhausted = ref false in
  let stopped_early = ref false in
  let stop = ref false in
  while not !stop do
    if finished () then stop := true
    else if should_stop ~pending:(pending_probes ()) then begin
      (* The budget (or deadline) cannot pay for another read: stop
         here, keeping whatever answer has accumulated — the anytime
         contract.  Pending probes were committed before the check and
         still resolve in the final flush below. *)
      stopped_early := true;
      stop := true;
      if tracing then
        trace_event
          (Trace.Budget_stop
             {
               reads = source.total - Counters.unseen counters;
               recall = Counters.recall_guarantee counters;
             })
    end
    else if pending_could_finish () then flush_probes ()
    else
      match source.next () with
      | None ->
          exhausted := true;
          stop := true
      | Some o -> (
          Cost_meter.charge_read meter;
          note_read ();
          let verdict = instance.classify o in
          if tracing then
            trace_event (Trace.Read { verdict = trace_verdict verdict });
          match verdict with
          | Tvl.No ->
              Counters.saw_no counters;
              note_progress ()
          | Tvl.Yes as verdict -> (
              let laxity = instance.laxity o in
              let preference =
                Policy.preference policy ~rng ~requirements ~counters ~verdict
                  ~laxity ~success:1.0
              in
              let decision = choose ~verdict ~laxity preference in
              if tracing then
                trace_event
                  (Trace.Decision
                     {
                       verdict = `Yes;
                       action = trace_action decision;
                       laxity;
                       success = 1.0;
                     });
              match decision with
              | Decision.Forward ->
                  Counters.forward_yes counters ~laxity;
                  forward_imprecise o;
                  note_progress ()
              | Decision.Probe ->
                  submit_probe ~verdict ~laxity ~preference o (fun precise ->
                      (* A YES object's precise version must still
                         satisfy λ. *)
                      (match instance.classify precise with
                      | Tvl.Yes -> ()
                      | Tvl.No | Tvl.Maybe -> raise Inconsistent_probe);
                      require_resolved precise;
                      Counters.probe_yes counters;
                      forward_precise precise)
              | Decision.Ignore ->
                  Counters.ignore_yes counters;
                  note_progress ())
          | Tvl.Maybe as verdict -> (
              let laxity = instance.laxity o in
              let success = instance.success o in
              note_maybe ~laxity ~success;
              let preference =
                Policy.preference policy ~rng ~requirements ~counters ~verdict
                  ~laxity ~success
              in
              let decision = choose ~verdict ~laxity preference in
              if tracing then
                trace_event
                  (Trace.Decision
                     {
                       verdict = `Maybe;
                       action = trace_action decision;
                       laxity;
                       success;
                     });
              match decision with
              | Decision.Forward ->
                  Counters.forward_maybe counters ~laxity;
                  forward_imprecise o;
                  note_progress ()
              | Decision.Probe ->
                  submit_probe ~verdict ~laxity ~preference o (fun precise ->
                      match instance.classify precise with
                      | Tvl.Yes ->
                          require_resolved precise;
                          Counters.probe_maybe_yes counters;
                          forward_precise precise
                      | Tvl.No -> Counters.probe_maybe_no counters
                      | Tvl.Maybe -> raise Inconsistent_probe)
              | Decision.Ignore ->
                  Counters.ignore_maybe counters;
                  note_progress ()))
  done;
  (* Objects already read and committed to a probe must be resolved, on
     early termination as much as on exhaustion: the answer and the
     counters would otherwise be inconsistent.  The extra resolutions
     can only improve the guarantees (precision adds YES-only entries,
     recall rises, probed laxity is 0). *)
  flush_probes ();
  if tracing && Counters.unseen counters > 0 then
    trace_event
      (Trace.Early_termination
         {
           reads = source.total - Counters.unseen counters;
           recall = Counters.recall_guarantee counters;
         });
  {
    answer = List.rev !answer;
    guarantees = Counters.guarantees counters;
    requirements;
    counts =
      (let after = Cost_meter.counts meter in
       {
         Cost_meter.reads = after.reads - counts_before.reads;
         probes = after.probes - counts_before.probes;
         batches = after.batches - counts_before.batches;
         writes_imprecise =
           after.writes_imprecise - counts_before.writes_imprecise;
         writes_precise = after.writes_precise - counts_before.writes_precise;
       });
    yes_seen = Counters.yes_seen counters;
    maybe_ignored = Counters.maybe_ignored counters;
    answer_size = Counters.answer_size counters;
    exhausted = !exhausted || Counters.unseen counters = 0;
    stopped_early = !stopped_early;
    degraded =
      {
        failed_probes = !failed_probes;
        failed_attempts = !failed_attempts;
        degraded_forwards = !degraded_forwards;
        degraded_ignores = !degraded_ignores;
        forced_actions = !forced_actions;
        guarantees_before = !guarantees_before;
      };
  }

let cost model report = Cost_meter.cost_of_counts model report.counts

let normalized_cost model ~total report =
  if total <= 0 then invalid_arg "Operator.normalized_cost: total <= 0";
  cost model report /. float_of_int total

let trace ~rng ?(every = 1) ~instance ~probe ~policy ~requirements source =
  if every < 1 then invalid_arg "Operator.trace: every < 1";
  let samples = ref [] in
  let on_progress ~reads guarantees =
    if reads mod every = 0 then samples := (reads, guarantees) :: !samples
  in
  let report =
    run ~rng ~on_progress ~instance ~probe ~policy ~requirements source
  in
  (report, List.rev !samples)
