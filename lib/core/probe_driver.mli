(** Batched probe execution: the capability through which the operator
    resolves imprecise objects.

    The probe is the paper's expensive operation ([c_p = 100 c_r],
    §3.1), and real probe backends — sensor radios with duty cycles,
    remote archives, tertiary storage — charge a fixed per-request setup
    cost on top of the per-object marginal.  A driver therefore exposes
    probing as [submit]/[flush]: submissions accumulate in a queue and
    are resolved together, [batch_size] at a time, so that the fixed
    cost ([c_b] in {!Cost_model}) is paid once per batch instead of once
    per probe.

    A driver with [batch_size = 1] resolves every submission on the spot
    and reproduces the scalar probe semantics exactly; see
    {!Operator.run} for the invariants the operator maintains around
    deferred resolutions.

    Probes can {e fail}: a backend may exhaust its retry budget on an
    element and give up.  The outcome-based API ({!create_outcomes} /
    {!submit_outcome}) surfaces this per element — every sibling in the
    batch still receives its own outcome, and the batch is accounted
    exactly once.  The legacy precise-object API is a thin adapter that
    raises {!Probe_failed} from the failing callback. *)

type 'o t

type 'o outcome =
  | Resolved of 'o  (** the precise version of the submitted object *)
  | Shrunk of 'o
      (** a proxy tier narrowed the object's imprecision interval —
          still a valid imprecise model, possibly still indefinite; the
          consumer re-classifies and escalates residuals (see
          {!Cascade}) *)
  | Failed of { attempts : int }
      (** the backend gave up after [attempts] tries; the object will
          never resolve and must degrade (see {!Operator}) *)

exception Probe_failed
(** Raised by the legacy callback adapter ({!submit} / {!resolve}) when
    an outcome is [Failed].  Outcome-based consumers never see it. *)

val create : ?obs:Obs.t -> ?batch_size:int -> ('o array -> 'o array) -> 'o t
(** [create ~batch_size resolve_batch] wraps a native batch resolver.
    [resolve_batch] receives the queued objects in submission order and
    must return their precise versions in the same order (same array
    length).  [batch_size] defaults to 1.

    [obs] registers the counters [probe_driver.probes],
    [probe_driver.batches] and [probe_driver.failures], times every
    resolver invocation under the [probe-flush] span, and emits a
    {!Trace.Batch} event per dispatch (plus a {!Trace.Probe_failed}
    event per failed element).

    @raise Invalid_argument if [batch_size < 1]. *)

val create_outcomes :
  ?obs:Obs.t -> ?batch_size:int -> ('o array -> 'o outcome array) -> 'o t
(** Like {!create} for a resolver that reports per-element outcomes
    instead of raising on failure — the only way a backend can fail one
    element without discarding its resolved siblings. *)

val shrinking :
  ?obs:Obs.t -> ?batch_size:int -> ('o array -> 'o array) -> 'o t
(** [shrinking narrow_batch] wraps a proxy backend: every submission
    comes back [Shrunk (narrow_batch o)] — an object whose imprecision
    interval the proxy narrowed without resolving it to a point.  Only
    outcome-based consumers can drive such a tier; the legacy {!submit}
    adapter raises [Invalid_argument] on a [Shrunk] outcome. *)

val scalar : ?obs:Obs.t -> ('o -> 'o) -> 'o t
(** [scalar probe] lifts a scalar resolution function into a driver with
    batch size 1: every submission resolves immediately.  This is the
    pre-batching behaviour, bit for bit. *)

val of_scalar : ?obs:Obs.t -> batch_size:int -> ('o -> 'o) -> 'o t
(** [of_scalar ~batch_size probe] lifts a scalar resolver but batches
    submissions anyway: resolution is still element-wise, yet per-batch
    accounting ([batches], and hence the [c_b] charge) is amortized —
    the right model for a backend whose fixed cost is dominated by the
    round trip, not the per-object work. *)

val batch_size : 'o t -> int
(** The batch boundary [B]: [submit] resolves the queue whenever it
    reaches this many pending entries. *)

val pending : 'o t -> int
(** Submissions queued but not yet resolved. *)

val submit : 'o t -> 'o -> ('o -> unit) -> unit
(** [submit t o k] enqueues [o] for resolution; [k] is invoked with the
    precise version when the batch containing [o] is resolved.  If the
    queue reaches [batch_size t] the batch is flushed immediately, so
    with [batch_size = 1] the callback runs before [submit] returns.
    Callbacks run in submission order and may themselves [submit]
    (starting a fresh queue).  If the outcome is [Failed] the adapter
    raises {!Probe_failed} instead of invoking [k] — earlier callbacks
    of the same batch have already run, and the whole batch was already
    accounted. *)

val submit_outcome : 'o t -> 'o -> ('o outcome -> unit) -> unit
(** Like {!submit}, but [k] receives the {!outcome} — failures arrive
    as values, never as exceptions.  Consumers that must survive
    permanent probe failure (the degrading operator) use this. *)

val flush : 'o t -> unit
(** Resolve every pending submission now (a possibly short batch) and
    run the callbacks in submission order.  A no-op on an empty queue.

    @raise Invalid_argument when called from inside the batch resolver
    itself (a reentrant flush would resolve entries out of order). *)

val resolve : 'o t -> 'o -> 'o
(** Scalar convenience: submit [o], flush, and return its precise
    version.  Note this flushes {e everything} pending, not just [o].
    @raise Probe_failed when the outcome is [Failed]. *)

val premap : into:('a -> 'o) -> back:('o -> 'a) -> 'o t -> 'a t
(** [premap ~into ~back d] views a driver for ['o] as a driver for ['a]:
    submissions are unwrapped with [into], resolutions re-wrapped with
    [back].  The view batches with [d]'s batch size and forwards each of
    its batches to [d] whole, so [d] flushes exactly as it would under
    direct submission — its lifetime statistics, instruments and any
    latency simulation are preserved; the view's own {!probes} and
    {!batches} mirror the same counts starting from zero.  Do not attach
    a separate [obs] to the view on top of an instrumented [d]: the
    probes would be counted twice.  Used by the parallel scan pipeline
    to probe pre-classified records through an unmodified backend. *)

val probes : 'o t -> int
(** Total objects {e successfully} resolved over the driver's lifetime
    — failed elements are counted by {!failures}, not here, so probe
    metering charges only work the backend actually completed. *)

val shrinks : 'o t -> int
(** Total elements that came back [Shrunk] over the driver's lifetime
    — counted separately from {!probes} ([Resolved] only) so tiered
    metering can attribute each to its own tier price. *)

val failures : 'o t -> int
(** Total elements whose resolution failed permanently. *)

val batches : 'o t -> int
(** Total (non-empty) batch resolutions over the driver's lifetime —
    the number of times the fixed per-batch cost was paid.  Consumers
    that meter costs (see {!Operator.run}) track this counter by delta,
    so a driver may be shared across runs like a meter. *)
