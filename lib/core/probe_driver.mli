(** Batched probe execution: the capability through which the operator
    resolves imprecise objects.

    The probe is the paper's expensive operation ([c_p = 100 c_r],
    §3.1), and real probe backends — sensor radios with duty cycles,
    remote archives, tertiary storage — charge a fixed per-request setup
    cost on top of the per-object marginal.  A driver therefore exposes
    probing as [submit]/[flush]: submissions accumulate in a queue and
    are resolved together, [batch_size] at a time, so that the fixed
    cost ([c_b] in {!Cost_model}) is paid once per batch instead of once
    per probe.

    A driver with [batch_size = 1] resolves every submission on the spot
    and reproduces the scalar probe semantics exactly; see
    {!Operator.run} for the invariants the operator maintains around
    deferred resolutions. *)

type 'o t

val create : ?obs:Obs.t -> ?batch_size:int -> ('o array -> 'o array) -> 'o t
(** [create ~batch_size resolve_batch] wraps a native batch resolver.
    [resolve_batch] receives the queued objects in submission order and
    must return their precise versions in the same order (same array
    length).  [batch_size] defaults to 1.

    [obs] registers the counters [probe_driver.probes] and
    [probe_driver.batches], times every resolver invocation under the
    [probe-flush] span, and emits a {!Trace.Batch} event per dispatch.

    @raise Invalid_argument if [batch_size < 1]. *)

val scalar : ?obs:Obs.t -> ('o -> 'o) -> 'o t
(** [scalar probe] lifts a scalar resolution function into a driver with
    batch size 1: every submission resolves immediately.  This is the
    pre-batching behaviour, bit for bit. *)

val of_scalar : ?obs:Obs.t -> batch_size:int -> ('o -> 'o) -> 'o t
(** [of_scalar ~batch_size probe] lifts a scalar resolver but batches
    submissions anyway: resolution is still element-wise, yet per-batch
    accounting ([batches], and hence the [c_b] charge) is amortized —
    the right model for a backend whose fixed cost is dominated by the
    round trip, not the per-object work. *)

val batch_size : 'o t -> int
(** The batch boundary [B]: [submit] resolves the queue whenever it
    reaches this many pending entries. *)

val pending : 'o t -> int
(** Submissions queued but not yet resolved. *)

val submit : 'o t -> 'o -> ('o -> unit) -> unit
(** [submit t o k] enqueues [o] for resolution; [k] is invoked with the
    precise version when the batch containing [o] is resolved.  If the
    queue reaches [batch_size t] the batch is flushed immediately, so
    with [batch_size = 1] the callback runs before [submit] returns.
    Callbacks run in submission order and may themselves [submit]
    (starting a fresh queue). *)

val flush : 'o t -> unit
(** Resolve every pending submission now (a possibly short batch) and
    run the callbacks in submission order.  A no-op on an empty queue.

    @raise Invalid_argument when called from inside the batch resolver
    itself (a reentrant flush would resolve entries out of order). *)

val resolve : 'o t -> 'o -> 'o
(** Scalar convenience: submit [o], flush, and return its precise
    version.  Note this flushes {e everything} pending, not just [o]. *)

val premap : into:('a -> 'o) -> back:('o -> 'a) -> 'o t -> 'a t
(** [premap ~into ~back d] views a driver for ['o] as a driver for ['a]:
    submissions are unwrapped with [into], resolutions re-wrapped with
    [back].  The view batches with [d]'s batch size and forwards each of
    its batches to [d] whole, so [d] flushes exactly as it would under
    direct submission — its lifetime statistics, instruments and any
    latency simulation are preserved; the view's own {!probes} and
    {!batches} mirror the same counts starting from zero.  Do not attach
    a separate [obs] to the view on top of an instrumented [d]: the
    probes would be counted twice.  Used by the parallel scan pipeline
    to probe pre-classified records through an unmodified backend. *)

val probes : 'o t -> int
(** Total objects resolved over the driver's lifetime. *)

val batches : 'o t -> int
(** Total (non-empty) batch resolutions over the driver's lifetime —
    the number of times the fixed per-batch cost was paid.  Consumers
    that meter costs (see {!Operator.run}) track this counter by delta,
    so a driver may be shared across runs like a meter. *)
