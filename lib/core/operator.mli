(** The online QaQ selection operator (paper §3, Fig. 1), with batched
    probing.

    The operator reads objects one at a time from a {!source}, classifies
    each against the query predicate, and decides — policy preference
    filtered through Theorem 3.1 ({!Decision}) — whether to forward,
    probe, or ignore it.  Forwarded objects are piped to the output
    immediately and never revisited; probe decisions are submitted to a
    {!Probe_driver} and their results are handled when the driver's
    batch resolves.  The operator's own state is the six counters of
    {!Counters} plus the driver's bounded queue (constant memory).
    Evaluation stops as soon as the recall guarantee reaches [r_q]; the
    precision and laxity requirements hold invariantly at every batch
    flush point, so the final answer always satisfies all three bounds,
    whatever the policy and batch size. *)

(** How the operator interrogates an object type ['o]. *)
type 'o instance = {
  classify : 'o -> Tvl.t;  (** λ(o) *)
  laxity : 'o -> float;  (** l(o), must be >= 0 *)
  success : 'o -> float;
      (** s(o): probability that a probe of a MAYBE returns YES.  May be a
          model-based estimate or a prior such as the constant 0.5
          (§4.1). *)
}

(** A sequential input.  [total] is the number of objects the source will
    deliver — the initial [|M_ns|].  It must be exact: guarantees are
    computed from it. *)
type 'o source = { next : unit -> 'o option; total : int }

val source_of_array : 'o array -> 'o source

val source_of_cursor : 'o Heap_file.Cursor.t -> 'o source
(** [total] is the cursor's deliverable count: objects pruned by a
    filtered cursor are definite NOs and never enter [|M_ns|]. *)

(** One element of the answer set [A]: either the imprecise object as
    read, or the precise [ω^o] returned by a probe. *)
type 'o emitted = { obj : 'o; precise : bool }

(** What permanent probe failure did to a run.  A probe that fails
    permanently ({!Probe_driver.Failed}) does not abort the query: the
    object falls back to a guarantee-aware write decision — the policy's
    first non-probe preference that Theorem 3.1 still admits, else
    Forward/Ignore in that order, else (nothing feasible) a {e forced}
    action: Forward when the object's laxity fits [l_q^max], Ignore
    otherwise.  The final guarantees are recomputed from the counters as
    usual, so a degraded run reports what it {e actually} achieved; only
    forced actions can push those below the requirements. *)
type degradation = {
  failed_probes : int;  (** objects whose probe failed permanently *)
  failed_attempts : int;  (** attempts burned on those objects *)
  degraded_forwards : int;  (** fallbacks that forwarded imprecise *)
  degraded_ignores : int;  (** fallbacks that ignored *)
  forced_actions : int;  (** fallbacks with no feasible action left *)
  guarantees_before : Quality.guarantees option;
      (** the guarantees at the first failure ([None] if none failed) —
          the "before" of a degradation summary *)
}

val no_degradation : degradation
(** All-zero — what an unfaulted run reports. *)

type 'o report = {
  answer : 'o emitted list;  (** in emission order; [] if not collected *)
  guarantees : Quality.guarantees;
  requirements : Quality.requirements;
  counts : Cost_meter.counts;
  yes_seen : int;  (** |Y| *)
  maybe_ignored : int;  (** |M_s − A| *)
  answer_size : int;  (** |A| *)
  exhausted : bool;
      (** whether the whole input was consumed (early termination means
          the recall bound was reached first) *)
  stopped_early : bool;
      (** whether [should_stop] fired — the run ended on its budget or
          deadline before the recall bound was reached *)
  degraded : degradation;
      (** {!no_degradation} unless probes failed permanently *)
}

exception Inconsistent_probe
(** Raised when a probe result contradicts the imprecise object: a YES
    object whose precise version classifies NO (or vice versa an
    unresolvable MAYBE), or a probe result with positive laxity.  This
    indicates corrupted data or a broken probe source, never a policy
    error. *)

val run :
  rng:Rng.t ->
  ?meter:Cost_meter.t ->
  ?obs:Obs.t ->
  ?emit:('o emitted -> unit) ->
  ?collect:bool ->
  ?enforce:bool ->
  ?should_stop:(pending:int -> bool) ->
  ?on_progress:(reads:int -> Quality.guarantees -> unit) ->
  ?cascade:'o Cascade.t ->
  instance:'o instance ->
  probe:'o Probe_driver.t ->
  policy:Policy.t ->
  requirements:Quality.requirements ->
  'o source ->
  'o report
(** Evaluate the query.

    [should_stop] (default: never) is consulted before every read with
    the number of probes still pending on the driver; returning [true]
    ends the scan immediately with whatever answer has accumulated (the
    anytime stop — used by the engine's cost budget and deadline).
    Pending probes are still resolved by the final flush, so the
    reported counters stay consistent; because the hook sees the
    pending count, a cost-budget caller can bound its overshoot to at
    most one probe batch.  The report records the firing under
    [stopped_early], and a {!Trace.Budget_stop} event is emitted when
    tracing.

    [rng] drives the policy's randomised choices.  [meter] (fresh by
    default) accumulates read/probe/batch/write charges; the same meter
    can be shared across runs to account a whole workload.

    [obs] attaches observability: the counters [qaq.reads],
    [qaq.probes], [qaq.batches], [qaq.writes_imprecise] and
    [qaq.writes_precise] mirror the meter's charges (incremented at the
    instrumentation sites, independently of the meter, so
    {!Cost_meter.reconcile} is a real cross-check), and — when the obs
    handle carries a live trace sink — every read, decision, probe
    resolution and early termination emits a {!Trace} event.  Permanent
    probe failures additionally increment [qaq.fault.degraded] and emit
    {!Trace.Degraded} events; the failed attempts are {e not} charged to
    the meter (no probe completed), so reconciliation holds under
    faults.  Counter
    handles are resolved once per run; with [obs] absent the per-object
    path runs no-op closures and allocates nothing.  [emit] is
    called on each answer object as soon as it is decided — the
    streaming interface.  [collect] (default [true]) additionally
    accumulates the answer in the report.

    [probe] is the probe capability ({!Probe_driver}).  With
    [Probe_driver.scalar f] the operator is the paper's scalar Fig. 1
    loop, bit for bit.  With a larger batch size, PROBE-decided objects
    queue on the driver and resolve together; the operator flushes the
    queue at batch boundaries (the driver's own behaviour), on input
    exhaustion and early termination, and eagerly whenever the pending
    results could push the recall guarantee over [r_q] — so batching
    never defers the stopping test.  Deferral is conservative for the
    Theorem 3.1 guards (see the soundness note in the implementation),
    so the returned guarantees satisfy the requirements for every batch
    size.  The driver must not carry pending submissions from another
    run; its lifetime statistics may (batch charges are metered by
    delta).

    [cascade] replaces the single driver with a tiered probe cascade
    ({!Cascade}): a PROBE decision enters at the cascade's starting
    tier, a [Resolved] outcome completes exactly as with [probe], and a
    [Shrunk] outcome is re-classified — a narrower interval is still a
    valid imprecision model, so the verdict may become definite.  A
    definite NO is consumed like a probed MAYBE that resolved NO; a
    definite YES whose residual laxity fits [l_q^max] forwards
    imprecise (rule (a)); anything else escalates to the next tier with
    the {e new} verdict and laxity.  The policy is not re-consulted on
    escalation (no rng draw), so the decision stream is identical to an
    oracle-only run.  A permanent failure at a proxy tier fails over to
    the next tier ([qaq.probe.tier.<name>.failovers]); only an oracle
    failure degrades.  Probes and batches are metered per tier
    ({!Cost_meter.charge_probe_tier}) and mirrored to the
    [qaq.probe.tier.<name>.*] counters, summing to the aggregate
    [qaq.probes]/[qaq.batches] so reconciliation still holds.  When
    [cascade] is given, [probe] is ignored.  A single-tier [Resolve]
    cascade is bit-for-bit identical to passing its driver as [probe].

    [on_progress] is invoked after every {e settled} object — read and
    forwarded/ignored, or probe-resolved — with the number of objects
    settled so far and the guarantees that would hold if the answer were
    closed now: the progressive-refinement view.  Recall climbs towards
    [r_q] while precision and laxity stay within bounds throughout
    (under enforcement); with batching, pending probes are still counted
    unseen, which only understates the guarantees.  Useful for live
    dashboards and for studying convergence; see the [trace] helper.

    [enforce] (default [true]) filters the policy through Theorem 3.1, in
    which case the returned guarantees always satisfy the requirements.
    With [enforce = false] the policy's first preference is executed
    unconditionally — the answer may then miss the precision or recall
    bound, and {!Quality.meets} on the report tells whether it did.  The
    paper's Greedy baseline behaves this way in the §5.2 trials (its cost
    is reported as constant across precision bounds it cannot actually
    honour), so the raw mode exists to reproduce those rows faithfully.

    @raise Inconsistent_probe as documented above. *)

val trace :
  rng:Rng.t ->
  ?every:int ->
  instance:'o instance ->
  probe:'o Probe_driver.t ->
  policy:Policy.t ->
  requirements:Quality.requirements ->
  'o source ->
  'o report * (int * Quality.guarantees) list
(** Run and record the guarantee trajectory: one [(reads, guarantees)]
    sample every [every] objects (default 1), in settlement order.  The
    trajectory is how the answer's quality converges — the progressive
    view the paper contrasts with one-shot evaluation in §6.
    @raise Invalid_argument if [every < 1]. *)

val cost : Cost_model.t -> 'o report -> float
(** Total cost [W] (Eq. 11, plus the batch term) of the run under a cost
    model. *)

val normalized_cost : Cost_model.t -> total:int -> 'o report -> float
(** [W / |T|], the unit the paper reports.  @raise Invalid_argument if
    [total <= 0]. *)
