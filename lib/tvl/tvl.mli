(** Three-valued logic for predicate evaluation over imprecise objects.

    The paper's selection predicate [λ] maps an imprecise object to
    {{!t} [Yes | No | Maybe]}: [Yes] means every precise value the object
    could take satisfies the predicate, [No] means none does, and [Maybe]
    means the object must be probed to find out.  Compound predicates
    combine verdicts with Kleene's strong three-valued logic, which is
    exactly the sound semantics for this reading: e.g. [Yes && Maybe]
    is [Maybe] because the conjunction's truth still hinges on the
    unresolved conjunct. *)

type t = Yes | No | Maybe

val equal : t -> t -> bool
val compare : t -> t -> int
val to_string : t -> string
val pp : Format.formatter -> t -> unit

val of_bool : bool -> t
(** [of_bool b] is [Yes] or [No]; a precise evaluation never yields
    [Maybe]. *)

val to_bool : t -> bool option
(** [Some] for definite verdicts, [None] for [Maybe]. *)

val not_ : t -> t
(** Kleene negation: swaps [Yes] and [No], fixes [Maybe]. *)

val and_ : t -> t -> t
(** Kleene conjunction: [No] dominates, then [Maybe]. *)

val or_ : t -> t -> t
(** Kleene disjunction: [Yes] dominates, then [Maybe]. *)

val all : t list -> t
(** Conjunction of a list ([Yes] for the empty list). *)

val any : t list -> t
(** Disjunction of a list ([No] for the empty list). *)

val is_definite : t -> bool
(** [true] for [Yes] and [No]. *)

(** {2 Unboxed encoding}

    Vectorized classification packs one verdict per byte into
    preallocated buffers; the codes follow the truth order used by
    {!compare} ([No] = 0, [Maybe] = 1, [Yes] = 2). *)

val to_int : t -> int

val of_int : int -> t
(** @raise Invalid_argument outside [0..2]. *)

val to_char : t -> char
(** [to_int] as a byte, for [Bytes] verdict buffers. *)

val of_char : char -> t
(** @raise Invalid_argument outside ['\000'..'\002']. *)
