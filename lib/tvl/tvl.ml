type t = Yes | No | Maybe

let equal a b =
  match (a, b) with
  | Yes, Yes | No, No | Maybe, Maybe -> true
  | (Yes | No | Maybe), _ -> false

(* Order No < Maybe < Yes: the natural truth order of Kleene logic, under
   which [and_] is the meet and [or_] the join. *)
let rank = function No -> 0 | Maybe -> 1 | Yes -> 2
let compare a b = Int.compare (rank a) (rank b)
let to_string = function Yes -> "YES" | No -> "NO" | Maybe -> "MAYBE"
let pp ppf t = Format.pp_print_string ppf (to_string t)
let of_bool b = if b then Yes else No
let to_bool = function Yes -> Some true | No -> Some false | Maybe -> None
let not_ = function Yes -> No | No -> Yes | Maybe -> Maybe
let and_ a b = if rank a <= rank b then a else b
let or_ a b = if rank a >= rank b then a else b
let all ts = List.fold_left and_ Yes ts
let any ts = List.fold_left or_ No ts
let is_definite = function Yes | No -> true | Maybe -> false

(* The unboxed encoding reuses the truth order ([rank]), so packed
   verdict buffers compare the way the logic does. *)
let to_int = rank

let of_int = function
  | 0 -> No
  | 1 -> Maybe
  | 2 -> Yes
  | n -> invalid_arg (Printf.sprintf "Tvl.of_int: %d" n)

let to_char t = Char.unsafe_chr (rank t)
let of_char c = of_int (Char.code c)
