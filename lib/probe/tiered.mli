(** Building {!Cascade}s from {!Probe_tier} specs and per-tier
    {!Probe_source}s.

    A [Resolve] tier's source resolves objects to points (today's
    oracle).  A [Shrink] tier's source maps an object to its {e
    narrowed} — still possibly imprecise — version; the tier driver
    re-tags its outcomes as {!Probe_driver.Shrunk} so the operator
    re-classifies them instead of trusting them as points.  Failures
    pass through and fail over tier-by-tier in [Operator.run]. *)

val shrink_resolver :
  'o Probe_source.t -> 'o array -> 'o Probe_driver.outcome array
(** The source's batch resolver with every [Resolved] re-tagged
    [Shrunk]. *)

val driver_of_tier :
  ?obs:Obs.t -> spec:Probe_tier.spec -> 'o Probe_source.t -> 'o Probe_driver.t
(** One tier's driver: batch size from the spec, resolver from the
    source, outcome kind from the spec's {!Probe_tier.kind}. *)

val cascade :
  ?obs:Obs.t ->
  ?start:int ->
  specs:Probe_tier.spec array ->
  'o Probe_source.t array ->
  'o Cascade.t
(** [cascade ~specs sources] pairs tier [i] with [sources.(i)].  Label
    each source with its tier name ([Probe_source.create ?tier]) when
    sharing an obs registry, or the per-tier stats will collide.
    @raise Invalid_argument on a length mismatch or invalid specs. *)

val sources :
  ?obs:Obs.t ->
  ?rng:Rng.t ->
  ?latency:Probe_source.latency ->
  ?failure_rate:float ->
  ?max_retries:int ->
  ?faults:Fault_plan.spec ->
  specs:Probe_tier.spec array ->
  narrow:(power:float -> 'o -> 'o) ->
  resolve:('o -> 'o) ->
  unit ->
  'o Probe_source.t array
(** One tier-labelled source per spec: [Shrink {power}] tiers use
    [narrow ~power], the [Resolve] tier uses [resolve].  The shared
    [faults] spec is instantiated per tier at site
    ["probe_source.<tier>"], so each tier draws an independent fault
    stream. *)

val of_functions :
  ?obs:Obs.t ->
  ?start:int ->
  ?rng:Rng.t ->
  ?latency:Probe_source.latency ->
  ?failure_rate:float ->
  ?max_retries:int ->
  ?faults:Fault_plan.spec ->
  specs:Probe_tier.spec array ->
  narrow:(power:float -> 'o -> 'o) ->
  resolve:('o -> 'o) ->
  unit ->
  'o Cascade.t * 'o Probe_source.t array
(** {!sources} + {!cascade} in one step — the convenience the CLI's
    [--tiers] flag wires through. *)
