type latency =
  | Instant
  | Constant of float
  | Jittered of { base : float; jitter : float }

exception Probe_failed = Probe_driver.Probe_failed

type instruments = {
  m_wakeups : Metrics.counter;
  m_attempts : Metrics.counter;
  m_resolved : Metrics.counter;
  m_retried : Metrics.counter;
  m_tier_retried : Metrics.counter option;
  g_latency : Metrics.gauge;
  h_latency : Metrics.histogram;
}

type 'o t = {
  resolve : 'o -> 'o;
  latency : latency;
  failure_rate : float;
  max_retries : int;
  rng : Rng.t option;
  faults : Fault_plan.t option;
  ins : instruments option;
  tier : string option;
  mutable probes : int;
  mutable attempts : int;
  mutable batches : int;
  mutable simulated_latency : float;
}

let create ?obs ?tier ?(latency = Instant) ?(failure_rate = 0.0)
    ?(max_retries = 10) ?rng ?(faults = Fault_plan.none) resolve =
  if not (failure_rate >= 0.0 && failure_rate < 1.0) then
    invalid_arg "Probe_source.create: failure_rate outside [0, 1)";
  if max_retries < 0 then invalid_arg "Probe_source.create: max_retries < 0";
  let needs_rng =
    failure_rate > 0.0
    || (match latency with Jittered _ -> true | Instant | Constant _ -> false)
  in
  if needs_rng && rng = None then
    invalid_arg "Probe_source.create: rng required for jitter or failures";
  (* Two tiers of one cascade sharing an obs registry must not lump
     their counters onto the same names: a [tier] label prefixes every
     source metric with the tier and adds a per-tier retried slice. *)
  let prefix =
    match tier with
    | None -> "probe_source"
    | Some name -> "probe_source." ^ name
  in
  let site =
    match tier with
    | None -> "probe_source"
    | Some name -> "probe_source." ^ name
  in
  let ins =
    Option.map
      (fun o ->
        {
          m_wakeups = Obs.counter o (prefix ^ ".wakeups");
          m_attempts = Obs.counter o (prefix ^ ".attempts");
          m_resolved = Obs.counter o (prefix ^ ".resolved");
          m_retried = Obs.counter o Obs.Keys.fault_retried;
          m_tier_retried =
            Option.map
              (fun name -> Obs.counter o (Obs.Keys.tier_retried name))
              tier;
          g_latency = Obs.gauge o (prefix ^ ".latency");
          h_latency = Obs.histogram o (prefix ^ ".wakeup_latency");
        })
      obs
  in
  {
    resolve;
    latency;
    failure_rate;
    max_retries;
    rng;
    faults = Fault_plan.injector_opt ?obs ~site faults;
    ins;
    tier;
    probes = 0;
    attempts = 0;
    batches = 0;
    simulated_latency = 0.0;
  }

let tier t = t.tier

let sample_latency t =
  let l =
    match t.latency with
    | Instant -> 0.0
    | Constant l -> l
    | Jittered { base; jitter } -> (
        match t.rng with
        | Some rng -> base +. Rng.float rng (Float.max jitter Float.epsilon)
        | None -> base)
  in
  match t.faults with Some f -> Fault_plan.latency f l | None -> l

let attempt_fails t =
  t.failure_rate > 0.0
  &&
  match t.rng with
  | Some rng -> Rng.bernoulli rng t.failure_rate
  | None -> false

(* One wakeup of the remote source: one latency sample, one batch
   dispatch — whether it carries one object or a whole batch. *)
let wakeup t =
  t.batches <- t.batches + 1;
  let l = sample_latency t in
  t.simulated_latency <- t.simulated_latency +. l;
  match t.ins with
  | Some i ->
      Metrics.incr i.m_wakeups;
      Metrics.set i.g_latency t.simulated_latency;
      if Float.is_finite l then Metrics.observe i.h_latency (Float.max 0.0 l)
  | None -> ()

let note_attempt t =
  t.attempts <- t.attempts + 1;
  match t.ins with Some i -> Metrics.incr i.m_attempts | None -> ()

let note_resolved t =
  t.probes <- t.probes + 1;
  match t.ins with Some i -> Metrics.incr i.m_resolved | None -> ()

let note_retried t =
  match t.ins with
  | Some i ->
      Metrics.incr i.m_retried;
      Option.iter Metrics.incr i.m_tier_retried
  | None -> ()

(* Both failure draws happen unconditionally: the injected one comes
   from the injector's own stream, the simulated one from [t.rng], and
   evaluating both keeps each stream's consumption independent of the
   other's outcome — attaching an injector never shifts the legacy
   failure stream of a source that also simulates failures itself. *)
let roll_failure t element ~round =
  let injected =
    match (t.faults, element) with
    | Some f, Some e -> Fault_plan.attempt f e ~round
    | _ -> false
  in
  let simulated = attempt_fails t in
  injected || simulated

let fresh_element t =
  match t.faults with Some f -> Some (Fault_plan.fresh_element f) | None -> None

let probe t o =
  let element = fresh_element t in
  let rec go ~round retries_left =
    note_attempt t;
    wakeup t;
    if roll_failure t element ~round then
      if retries_left = 0 then raise Probe_failed
      else begin
        note_retried t;
        go ~round:(round + 1) (retries_left - 1)
      end
    else t.resolve o
  in
  let precise = go ~round:0 t.max_retries in
  note_resolved t;
  precise

let probe_batch_outcomes t objs =
  let n = Array.length objs in
  if n = 0 then [||]
  else begin
    let results = Array.make n None in
    let tries = Array.make n 0 in
    (* Permanence is drawn once per element, in index order, before any
       round runs — the draw sequence does not depend on how retries
       interleave. *)
    let elements = Array.init n (fun _ -> fresh_element t) in
    let pending = ref (List.init n Fun.id) in
    let round = ref 0 in
    (* Each round is one wakeup: latency is paid once for the whole
       pending set, failures strike per element, and only the failed
       elements ride along to the next round.  An element that exhausts
       its retries settles as [Failed] — its siblings keep resolving,
       and the caller receives every outcome. *)
    while !pending <> [] do
      wakeup t;
      let r = !round in
      pending :=
        List.filter
          (fun i ->
            note_attempt t;
            tries.(i) <- tries.(i) + 1;
            if roll_failure t elements.(i) ~round:r then
              if tries.(i) > t.max_retries then begin
                results.(i) <-
                  Some (Probe_driver.Failed { attempts = tries.(i) });
                false
              end
              else begin
                note_retried t;
                true
              end
            else begin
              results.(i) <- Some (Probe_driver.Resolved (t.resolve objs.(i)));
              note_resolved t;
              false
            end)
          !pending;
      incr round
    done;
    Array.map (function Some o -> o | None -> assert false) results
  end

let probe_batch t objs =
  let outcomes = probe_batch_outcomes t objs in
  Array.map
    (function
      | Probe_driver.Resolved o -> o
      | Probe_driver.Shrunk _ -> assert false (* sources resolve to points *)
      | Probe_driver.Failed _ -> raise Probe_failed)
    outcomes

let resolver t = probe_batch_outcomes t

let driver ?obs ?(batch_size = 1) t =
  Probe_driver.create_outcomes ?obs ~batch_size (resolver t)

type stats = {
  probes : int;
  attempts : int;
  batches : int;
  simulated_latency : float;
}

let stats (t : _ t) : stats =
  {
    probes = t.probes;
    attempts = t.attempts;
    batches = t.batches;
    simulated_latency = t.simulated_latency;
  }

let reset_stats (t : _ t) =
  t.probes <- 0;
  t.attempts <- 0;
  t.batches <- 0;
  t.simulated_latency <- 0.0
