(** Probe sources: how an imprecise object is resolved to its precise
    version [ω^o].

    A probe is the expensive operation of the paper — fetching the precise
    object from wherever it lives (the sensor itself, a remote archive,
    tertiary storage).  A source wraps the resolution function with
    latency simulation, optional transient-failure injection, and an
    optional {!Fault_plan} (scripted transient/permanent failures and
    latency spikes) so that examples and benchmarks can model realistic
    remote stores; the QaQ operator itself only sees the {!Probe_driver}
    capability.

    The source resolves natively in batches: {!probe_batch} wakes the
    remote store once per round, resolving every pending object in that
    round together, so a batch of [B] pays one latency sample where [B]
    scalar probes pay [B].  {!driver} packages a source as the
    [Probe_driver] the operator consumes — an outcome-based driver, so an
    element that exhausts its retries degrades ({!Probe_driver.Failed})
    instead of tearing down the run. *)

(** Latency charged per probe attempt, in arbitrary time units. *)
type latency =
  | Instant
  | Constant of float
  | Jittered of { base : float; jitter : float }
      (** uniform in [\[base, base + jitter\]] *)

type 'o t

val create :
  ?obs:Obs.t ->
  ?tier:string ->
  ?latency:latency ->
  ?failure_rate:float ->
  ?max_retries:int ->
  ?rng:Rng.t ->
  ?faults:Fault_plan.spec ->
  ('o -> 'o) ->
  'o t
(** [create resolve] builds a source around the resolution function, which
    must return an object of laxity 0 (the precise version).

    [latency] defaults to [Instant].  [failure_rate] (default 0) is the
    probability that one attempt fails transiently and is retried, up to
    [max_retries] (default 10) extra attempts; each attempt pays the
    latency.  [rng] is required if either latency jitter or failures are
    used.

    [faults] (default {!Fault_plan.none}) attaches a fault injector at
    site ["probe_source"]: injected transient failures compose with
    [failure_rate] (either one fails the attempt), injected {e permanent}
    elements fail every attempt and settle as {!Probe_driver.Failed}
    after the retry budget, and latency spikes multiply the sampled
    wakeup latency.  The injector draws from its own seeded stream, so a
    null plan — or the same source without one — behaves bit-for-bit
    identically.

    [obs] registers [probe_source.wakeups], [probe_source.attempts] and
    [probe_source.resolved] (counters, mirroring {!stats}), the gauge
    [probe_source.latency] (cumulative simulated latency, updated at
    every wakeup), and [qaq.fault.retried] (attempts retried after a
    failure, injected or simulated) — how retry storms and latency tails
    show up in a metrics dump.

    [tier] labels the source as one tier of a probe cascade: every
    source metric is prefixed [probe_source.<tier>.*] instead of
    [probe_source.*], retries additionally count into the per-tier
    slice [qaq.probe.tier.<tier>.retried], and the fault-injector site
    becomes ["probe_source.<tier>"] (each tier draws an independent
    fault stream).  Without it, two tiers sharing an obs registry would
    lump their stats onto the same names and a degraded cascade could
    not be attributed in an SLO window.

    @raise Invalid_argument on a failure rate outside [0, 1) or a
    negative retry count. *)

exception Probe_failed
(** The legacy abort exception — an alias of
    {!Probe_driver.Probe_failed} (physically the same exception, so a
    handler for either catches both). *)

val probe : 'o t -> 'o -> 'o
(** Resolve one object, recording attempts and simulated latency.  Each
    attempt is its own wakeup: it pays one latency sample and counts one
    batch of size 1.  @raise Probe_failed when the retry budget is
    exhausted (the scalar path has no outcome to degrade into). *)

val probe_batch_outcomes :
  'o t -> 'o array -> 'o Probe_driver.outcome array
(** Resolve a batch, preserving order.  Each retry {e round} is one
    wakeup — one latency sample and one batch count for however many
    objects are still pending — while failures strike per element:
    elements that resolve in a round are kept, and only the failed ones
    ride along to the next round.  An element that fails
    [max_retries + 1] times settles as [Failed] with its attempt count;
    every sibling still resolves and every outcome is returned, so no
    partial-batch work is ever lost. *)

val probe_batch : 'o t -> 'o array -> 'o array
(** {!probe_batch_outcomes} for callers that cannot degrade: the batch
    is resolved {e completely} (all siblings settle and are counted in
    {!stats}), then @raise Probe_failed if any element failed. *)

val resolver : 'o t -> 'o array -> 'o Probe_driver.outcome array
(** {!probe_batch_outcomes} partially applied — the source as a bare
    batch-resolution function, the shape {!Probe_driver.create_outcomes}
    (and the cross-query probe broker) consume directly. *)

val driver : ?obs:Obs.t -> ?batch_size:int -> 'o t -> 'o Probe_driver.t
(** The source as an operator-facing probe capability, resolving each
    driver flush with {!probe_batch_outcomes}.  [batch_size] defaults to
    1 (the scalar path).  [obs] instruments the driver itself (see
    {!Probe_driver.create}); pass it to [create] as well to instrument
    the source underneath. *)

type stats = {
  probes : int;  (** successful probe operations *)
  attempts : int;  (** including failed attempts *)
  batches : int;  (** wakeups: batch rounds dispatched to the store *)
  simulated_latency : float;  (** total time units spent *)
}

val stats : 'o t -> stats
val reset_stats : 'o t -> unit

val tier : 'o t -> string option
(** The cascade tier this source was labelled as, if any — {!stats} on
    a labelled source is that tier's slice alone. *)
