(* Build a Cascade from Probe_tier specs and per-tier Probe_sources.

   A [Resolve] tier's source resolves objects to points — its driver is
   exactly [Probe_source.driver].  A [Shrink] tier's source "resolves"
   an object to its narrowed (still possibly imprecise) version: the
   tier driver re-tags every [Resolved] outcome as [Shrunk] so the
   operator re-classifies instead of trusting the result as a point.
   Failures pass through untouched and fail over in the operator. *)

let shrink_resolver src objs =
  Array.map
    (function
      | Probe_driver.Resolved o -> Probe_driver.Shrunk o
      | (Probe_driver.Shrunk _ | Probe_driver.Failed _) as other -> other)
    (Probe_source.probe_batch_outcomes src objs)

let driver_of_tier ?obs ~(spec : Probe_tier.spec) src =
  let resolver =
    match spec.Probe_tier.kind with
    | Probe_tier.Resolve -> Probe_source.resolver src
    | Probe_tier.Shrink _ -> shrink_resolver src
  in
  Probe_driver.create_outcomes ?obs ~batch_size:spec.Probe_tier.batch resolver

let cascade ?obs ?start ~(specs : Probe_tier.spec array) sources =
  Probe_tier.validate specs;
  if Array.length sources <> Array.length specs then
    invalid_arg "Tiered.cascade: sources/specs length mismatch";
  let drivers =
    Array.map2 (fun spec src -> driver_of_tier ?obs ~spec src) specs sources
  in
  Cascade.create ?start ~specs drivers

let sources ?obs ?rng ?latency ?failure_rate ?max_retries ?faults
    ~(specs : Probe_tier.spec array) ~narrow ~resolve () =
  Array.map
    (fun (spec : Probe_tier.spec) ->
      let f =
        match spec.Probe_tier.kind with
        | Probe_tier.Resolve -> resolve
        | Probe_tier.Shrink { power } -> narrow ~power
      in
      Probe_source.create ?obs ~tier:spec.Probe_tier.name ?latency
        ?failure_rate ?max_retries ?rng ?faults f)
    specs

let of_functions ?obs ?start ?rng ?latency ?failure_rate ?max_retries ?faults
    ~(specs : Probe_tier.spec array) ~narrow ~resolve () =
  let srcs =
    sources ?obs ?rng ?latency ?failure_rate ?max_retries ?faults ~specs
      ~narrow ~resolve ()
  in
  (cascade ?obs ?start ~specs srcs, srcs)
