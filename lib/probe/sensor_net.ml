type sensor = {
  id : int;
  tolerance : float;
  mutable value : float;
  mutable cached : Interval.t;
}

type instruments = {
  i_obs : Obs.t;
  m_transmissions : Metrics.counter;
  m_wakeups : Metrics.counter;
  m_messages : Metrics.counter;
  h_roundtrip : Metrics.histogram;
}

type t = {
  rng : Rng.t;
  sensors : sensor array;
  drift_stddev : float;
  ins : instruments option;
  mutable transmissions : int;
  mutable probe_wakeups : int;
  mutable probe_messages : int;
}

let create ?obs rng ~n ~value_range ~tolerance_range ~drift_stddev =
  if n < 0 then invalid_arg "Sensor_net.create: n < 0";
  if Interval.lo tolerance_range <= 0.0 then
    invalid_arg "Sensor_net.create: tolerances must be positive";
  if drift_stddev < 0.0 then invalid_arg "Sensor_net.create: drift_stddev < 0";
  let sensors =
    Array.init n (fun id ->
        let value = Interval.sample rng value_range in
        let tolerance = Interval.sample rng tolerance_range in
        {
          id;
          tolerance;
          value;
          cached = Interval.make (value -. tolerance) (value +. tolerance);
        })
  in
  let ins =
    Option.map
      (fun o ->
        {
          i_obs = o;
          m_transmissions = Obs.counter o "sensor_net.transmissions";
          m_wakeups = Obs.counter o "sensor_net.probe_wakeups";
          m_messages = Obs.counter o "sensor_net.probe_messages";
          h_roundtrip = Obs.histogram o "sensor_net.roundtrip_seconds";
        })
      obs
  in
  {
    rng;
    sensors;
    drift_stddev;
    ins;
    transmissions = 0;
    probe_wakeups = 0;
    probe_messages = 0;
  }

let size t = Array.length t.sensors

let step t =
  Array.iter
    (fun s ->
      s.value <- s.value +. Rng.gaussian t.rng ~mean:0.0 ~stddev:t.drift_stddev;
      if not (Interval.contains s.cached s.value) then begin
        (* Escape: the sensor transmits a re-centred interval, keeping the
           replica sound. *)
        s.cached <- Interval.make (s.value -. s.tolerance) (s.value +. s.tolerance);
        t.transmissions <- t.transmissions + 1;
        match t.ins with
        | Some i -> Metrics.incr i.m_transmissions
        | None -> ()
      end)
    t.sensors

let transmissions t = t.transmissions

type reading = {
  sensor_id : int;
  cached : Interval.t;
  current : float;
  resolved : bool;
}

let snapshot t =
  Array.map
    (fun s ->
      { sensor_id = s.id; cached = s.cached; current = s.value; resolved = false })
    t.sensors

let belief r =
  if r.resolved then Uncertain.exact r.current else Uncertain.Interval r.cached

let instance pred : reading Operator.instance =
  {
    classify = (fun r -> Predicate.classify pred (belief r));
    laxity = (fun r -> Uncertain.laxity (belief r));
    success = (fun r -> Predicate.success pred (belief r));
  }

let probe r = { r with resolved = true }

let probe_batch t readings =
  (* One radio wakeup serves the whole batch; each sensor still answers
     with its own message. *)
  let n = Array.length readings in
  if n > 0 then begin
    t.probe_wakeups <- t.probe_wakeups + 1;
    t.probe_messages <- t.probe_messages + n;
    match t.ins with
    | Some i ->
        Metrics.incr i.m_wakeups;
        Metrics.add i.m_messages n
    | None -> ()
  end;
  match t.ins with
  | Some i when n > 0 ->
      (* The round trip, wakeup to last answer, as one observation. *)
      let t0 = Obs.now i.i_obs in
      let precise = Array.map probe readings in
      Metrics.observe i.h_roundtrip (Float.max 0.0 (Obs.now i.i_obs -. t0));
      precise
  | _ -> Array.map probe readings

let batch_driver ?obs ?(batch_size = 1) t =
  Probe_driver.create ?obs ~batch_size (probe_batch t)

let probe_wakeups t = t.probe_wakeups
let probe_messages t = t.probe_messages
let in_exact pred r = Predicate.eval pred r.current

let exact_size pred readings =
  Array.fold_left
    (fun acc r -> if in_exact pred r then acc + 1 else acc)
    0 readings
