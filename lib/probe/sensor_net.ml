type sensor = {
  id : int;
  tolerance : float;
  mutable value : float;
  mutable cached : Interval.t;
}

type instruments = {
  i_obs : Obs.t;
  m_transmissions : Metrics.counter;
  m_wakeups : Metrics.counter;
  m_messages : Metrics.counter;
  m_retry_wakeups : Metrics.counter;
  m_retry_messages : Metrics.counter;
  m_retried : Metrics.counter;
  m_tier_retried : Metrics.counter option;
  h_roundtrip : Metrics.histogram;
}

type t = {
  rng : Rng.t;
  sensors : sensor array;
  drift_stddev : float;
  faults : Fault_plan.t option;
  breaker : Circuit_breaker.t option;
  max_retries : int;
  ins : instruments option;
  mutable transmissions : int;
  mutable probe_wakeups : int;
  mutable probe_messages : int;
  mutable retry_wakeups : int;
  mutable retry_messages : int;
  mutable round : int;
}

let create ?obs ?tier ?(faults = Fault_plan.none) rng ~n ~value_range
    ~tolerance_range ~drift_stddev =
  if n < 0 then invalid_arg "Sensor_net.create: n < 0";
  if Interval.lo tolerance_range <= 0.0 then
    invalid_arg "Sensor_net.create: tolerances must be positive";
  if drift_stddev < 0.0 then invalid_arg "Sensor_net.create: drift_stddev < 0";
  let sensors =
    Array.init n (fun id ->
        let value = Interval.sample rng value_range in
        let tolerance = Interval.sample rng tolerance_range in
        {
          id;
          tolerance;
          value;
          cached = Interval.make (value -. tolerance) (value +. tolerance);
        })
  in
  let prefix =
    match tier with None -> "sensor_net" | Some name -> "sensor_net." ^ name
  in
  let ins =
    Option.map
      (fun o ->
        {
          i_obs = o;
          m_transmissions = Obs.counter o (prefix ^ ".transmissions");
          m_wakeups = Obs.counter o (prefix ^ ".probe_wakeups");
          m_messages = Obs.counter o (prefix ^ ".probe_messages");
          m_retry_wakeups = Obs.counter o (prefix ^ ".retry_wakeups");
          m_retry_messages = Obs.counter o (prefix ^ ".retry_messages");
          m_retried = Obs.counter o Obs.Keys.fault_retried;
          m_tier_retried =
            Option.map
              (fun name -> Obs.counter o (Obs.Keys.tier_retried name))
              tier;
          h_roundtrip = Obs.histogram o (prefix ^ ".roundtrip_seconds");
        })
      obs
  in
  let injector = Fault_plan.injector_opt ?obs ~site:prefix faults in
  {
    rng;
    sensors;
    drift_stddev;
    faults = injector;
    (* A net with failure modes also gets a breaker: radios that are
       down should be left alone, not hammered every round. *)
    breaker =
      (match injector with
      | Some _ -> Some (Circuit_breaker.create ?obs ())
      | None -> None);
    max_retries = faults.Fault_plan.max_retries;
    ins;
    transmissions = 0;
    probe_wakeups = 0;
    probe_messages = 0;
    retry_wakeups = 0;
    retry_messages = 0;
    round = 0;
  }

let size t = Array.length t.sensors

let step t =
  Array.iter
    (fun s ->
      s.value <- s.value +. Rng.gaussian t.rng ~mean:0.0 ~stddev:t.drift_stddev;
      if not (Interval.contains s.cached s.value) then begin
        (* Escape: the sensor transmits a re-centred interval, keeping the
           replica sound. *)
        s.cached <- Interval.make (s.value -. s.tolerance) (s.value +. s.tolerance);
        t.transmissions <- t.transmissions + 1;
        match t.ins with
        | Some i -> Metrics.incr i.m_transmissions
        | None -> ()
      end)
    t.sensors

let transmissions t = t.transmissions

type reading = {
  sensor_id : int;
  cached : Interval.t;
  current : float;
  resolved : bool;
}

let snapshot t =
  Array.map
    (fun s ->
      { sensor_id = s.id; cached = s.cached; current = s.value; resolved = false })
    t.sensors

let belief r =
  if r.resolved then Uncertain.exact r.current else Uncertain.Interval r.cached

let instance pred : reading Operator.instance =
  {
    classify = (fun r -> Predicate.classify pred (belief r));
    laxity = (fun r -> Uncertain.laxity (belief r));
    success = (fun r -> Predicate.success pred (belief r));
  }

let probe r = { r with resolved = true }

let breaker_state_name = Circuit_breaker.state_name

let trace_breaker t ~round state =
  match t.ins with
  | Some i when Obs.tracing i.i_obs ->
      Obs.event i.i_obs
        (Trace.Breaker { state = breaker_state_name state; round })
  | _ -> ()

(* One radio wakeup serves however many sensors are still pending; each
   answers with its own message.  Without faults the whole batch
   resolves in a single round — one wakeup, [n] messages, exactly the
   pre-fault accounting.  With faults, failed sensors ride along to the
   next round until the retry budget runs out (settling as [Failed]),
   scripted outages silence individual sensors for whole round windows,
   and the breaker refuses rounds entirely while the net looks dead —
   refused rounds wake no radio and burn no retry budget. *)
let probe_batch_outcomes t readings =
  let n = Array.length readings in
  if n = 0 then [||]
  else begin
    let results = Array.make n None in
    let tries = Array.make n 0 in
    (* Permanence is drawn per element in index order up front, so the
       draw sequence is independent of the retry interleaving. *)
    let elements =
      match t.faults with
      | Some f -> Array.init n (fun _ -> Some (Fault_plan.fresh_element f))
      | None -> Array.make n None
    in
    let pending = ref (List.init n Fun.id) in
    (* Executed rounds of THIS batch: every round after the first is
       pure retry traffic.  Keeping it separate from the lifetime
       wakeup/message counters means a degraded net's retry burn is
       attributable instead of lumped into normal probe traffic. *)
    let rounds_run = ref 0 in
    while !pending <> [] do
      let round = t.round in
      t.round <- round + 1;
      let run_round =
        match t.breaker with
        | Some b ->
            let before = Circuit_breaker.state b in
            let ok = Circuit_breaker.allow b ~round in
            if Circuit_breaker.state b <> before then
              trace_breaker t ~round (Circuit_breaker.state b);
            ok
        | None -> true
      in
      if run_round then begin
        let attempted = List.length !pending in
        t.probe_wakeups <- t.probe_wakeups + 1;
        t.probe_messages <- t.probe_messages + attempted;
        if !rounds_run > 0 then begin
          t.retry_wakeups <- t.retry_wakeups + 1;
          t.retry_messages <- t.retry_messages + attempted
        end;
        (match t.ins with
        | Some i ->
            Metrics.incr i.m_wakeups;
            Metrics.add i.m_messages attempted;
            if !rounds_run > 0 then begin
              Metrics.incr i.m_retry_wakeups;
              Metrics.add i.m_retry_messages attempted
            end
        | None -> ());
        incr rounds_run;
        let resolved_this_round = ref 0 in
        let resolve_pending () =
          pending :=
            List.filter
              (fun i ->
                tries.(i) <- tries.(i) + 1;
                let fails =
                  match (t.faults, elements.(i)) with
                  | Some f, Some e ->
                      Fault_plan.outage_active f ~node:readings.(i).sensor_id
                        ~round
                      || Fault_plan.attempt f e ~round
                  | _ -> false
                in
                if fails then
                  if tries.(i) > t.max_retries then begin
                    results.(i) <-
                      Some (Probe_driver.Failed { attempts = tries.(i) });
                    false
                  end
                  else begin
                    (match t.ins with
                    | Some ins ->
                        Metrics.incr ins.m_retried;
                        Option.iter Metrics.incr ins.m_tier_retried
                    | None -> ());
                    true
                  end
                else begin
                  results.(i) <-
                    Some (Probe_driver.Resolved (probe readings.(i)));
                  incr resolved_this_round;
                  false
                end)
              !pending
        in
        (match t.ins with
        | Some i ->
            (* The round trip, wakeup to last answer, as one
               observation. *)
            let t0 = Obs.now i.i_obs in
            resolve_pending ();
            Metrics.observe i.h_roundtrip
              (Float.max 0.0 (Obs.now i.i_obs -. t0))
        | None -> resolve_pending ());
        match t.breaker with
        | Some b ->
            let before = Circuit_breaker.state b in
            if !resolved_this_round > 0 then
              Circuit_breaker.record_success b ~round
            else Circuit_breaker.record_failure b ~round;
            if Circuit_breaker.state b <> before then
              trace_breaker t ~round (Circuit_breaker.state b)
        | None -> ()
      end
    done;
    Array.map (function Some o -> o | None -> assert false) results
  end

let probe_batch t readings =
  Array.map
    (function
      | Probe_driver.Resolved r -> r
      | Probe_driver.Shrunk _ -> assert false (* the net resolves to points *)
      | Probe_driver.Failed _ -> raise Probe_driver.Probe_failed)
    (probe_batch_outcomes t readings)

let batch_driver ?obs ?(batch_size = 1) t =
  Probe_driver.create_outcomes ?obs ~batch_size (probe_batch_outcomes t)

let breaker t = t.breaker
let rounds t = t.round
let probe_wakeups t = t.probe_wakeups
let probe_messages t = t.probe_messages
let retry_wakeups t = t.retry_wakeups
let retry_messages t = t.retry_messages
let in_exact pred r = Predicate.eval pred r.current

let exact_size pred readings =
  Array.fold_left
    (fun acc r -> if in_exact pred r then acc + 1 else acc)
    0 readings
