(** A simulated sensor field with interval-cached readings.

    The replication-barrier scenario of §1.1 made concrete, following the
    approximate-replication architecture the paper builds on [12, 15]:
    each sensor continuously measures a drifting value; the query site
    caches an interval of width [2 · tolerance] around the last
    transmitted value.  The sensor transmits a re-centred interval only
    when its value escapes the cached one, so between transmissions the
    cache is a {e sound} imprecise replica — the true value is always
    inside.  Probing a sensor fetches the current precise value over the
    (simulated) network. *)

type t

val create :
  ?obs:Obs.t ->
  Rng.t ->
  n:int ->
  value_range:Interval.t ->
  tolerance_range:Interval.t ->
  drift_stddev:float ->
  t
(** [n] sensors with initial values uniform in [value_range].  Each
    sensor's tolerance (half its cache width) is drawn from
    [tolerance_range] (which must be positive); per-step drift is
    Gaussian.  [obs] registers the counters [sensor_net.transmissions],
    [sensor_net.probe_wakeups] and [sensor_net.probe_messages],
    mirroring the accessors below.  @raise Invalid_argument on a
    non-positive tolerance range or [n < 0]. *)

val size : t -> int

val step : t -> unit
(** Advance every sensor by one time step: values drift; sensors whose
    value escaped the cached interval transmit a fresh centred
    interval. *)

val transmissions : t -> int
(** Total re-centring transmissions so far (the background replication
    cost of [12, 15]). *)

(** A snapshot record: what the query site knows about one sensor. *)
type reading = private {
  sensor_id : int;
  cached : Interval.t;  (** the interval replica *)
  current : float;  (** hidden truth at snapshot time *)
  resolved : bool;
}

val snapshot : t -> reading array
(** The query site's current view, suitable as a QaQ input set. *)

val instance : Predicate.t -> reading Operator.instance

val probe : reading -> reading
(** Resolve one reading (pure; no network accounting). *)

val probe_batch : t -> reading array -> reading array
(** Resolve a batch over the network: one radio {e wakeup} for the whole
    batch, one {e message} per sensor in it.  The batched-probe cost
    model's [c_b] is the wakeup; [c_p] is the per-sensor message. *)

val batch_driver : ?obs:Obs.t -> ?batch_size:int -> t -> reading Probe_driver.t
(** The network as an operator-facing probe capability resolving through
    {!probe_batch}; [batch_size] defaults to 1 (one wakeup per probe). *)

val probe_wakeups : t -> int
(** Batch round-trips the network has served via {!probe_batch}. *)

val probe_messages : t -> int
(** Individual sensor responses served via {!probe_batch}. *)

val in_exact : Predicate.t -> reading -> bool
val exact_size : Predicate.t -> reading array -> int
