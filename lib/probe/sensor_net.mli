(** A simulated sensor field with interval-cached readings.

    The replication-barrier scenario of §1.1 made concrete, following the
    approximate-replication architecture the paper builds on [12, 15]:
    each sensor continuously measures a drifting value; the query site
    caches an interval of width [2 · tolerance] around the last
    transmitted value.  The sensor transmits a re-centred interval only
    when its value escapes the cached one, so between transmissions the
    cache is a {e sound} imprecise replica — the true value is always
    inside.  Probing a sensor fetches the current precise value over the
    (simulated) network. *)

type t

val create :
  ?obs:Obs.t ->
  ?tier:string ->
  ?faults:Fault_plan.spec ->
  Rng.t ->
  n:int ->
  value_range:Interval.t ->
  tolerance_range:Interval.t ->
  drift_stddev:float ->
  t
(** [n] sensors with initial values uniform in [value_range].  Each
    sensor's tolerance (half its cache width) is drawn from
    [tolerance_range] (which must be positive); per-step drift is
    Gaussian.  [obs] registers the counters [sensor_net.transmissions],
    [sensor_net.probe_wakeups], [sensor_net.probe_messages],
    [sensor_net.retry_wakeups], [sensor_net.retry_messages] and
    [qaq.fault.retried], mirroring the accessors below.

    [tier] labels the net as one tier of a probe cascade: every metric
    above is prefixed [sensor_net.<tier>.*], retries additionally
    count into [qaq.probe.tier.<tier>.retried], and the fault-injector
    site becomes ["sensor_net.<tier>"] so each tier draws an
    independent fault stream.

    [faults] (default {!Fault_plan.none}) attaches a fault injector at
    site ["sensor_net"]: sensors can fail attempts transiently or
    permanently, and scripted {!Fault_plan.outage} windows silence a
    sensor ([node] = [sensor_id]) for whole probe rounds.  A non-null
    plan also installs a {!Circuit_breaker} (default configuration)
    over the net's probe rounds; its retry budget is the plan's
    [max_retries].  @raise Invalid_argument on a non-positive tolerance
    range or [n < 0]. *)

val size : t -> int

val step : t -> unit
(** Advance every sensor by one time step: values drift; sensors whose
    value escaped the cached interval transmit a fresh centred
    interval. *)

val transmissions : t -> int
(** Total re-centring transmissions so far (the background replication
    cost of [12, 15]). *)

(** A snapshot record: what the query site knows about one sensor. *)
type reading = private {
  sensor_id : int;
  cached : Interval.t;  (** the interval replica *)
  current : float;  (** hidden truth at snapshot time *)
  resolved : bool;
}

val snapshot : t -> reading array
(** The query site's current view, suitable as a QaQ input set. *)

val instance : Predicate.t -> reading Operator.instance

val probe : reading -> reading
(** Resolve one reading (pure; no network accounting). *)

val probe_batch_outcomes :
  t -> reading array -> reading Probe_driver.outcome array
(** Resolve a batch over the network: one radio {e wakeup} per retry
    round for however many sensors are still pending, one {e message}
    per sensor in the round.  Without faults the batch resolves in one
    round — the batched-probe cost model's [c_b] is the wakeup, [c_p]
    the per-sensor message.  Under a fault plan, failed sensors retry
    in later rounds until the budget runs out (settling as [Failed]
    with their attempt count), outage windows silence individual
    sensors, and the circuit breaker refuses rounds — waking no radio
    and burning no budget — while the net looks dead.  Breaker state
    changes emit {!Trace.Breaker} events when tracing. *)

val probe_batch : t -> reading array -> reading array
(** {!probe_batch_outcomes} for callers that cannot degrade: the batch
    resolves completely (all accounting happens), then
    @raise Probe_driver.Probe_failed if any sensor failed. *)

val batch_driver : ?obs:Obs.t -> ?batch_size:int -> t -> reading Probe_driver.t
(** The network as an operator-facing probe capability resolving through
    {!probe_batch_outcomes}; [batch_size] defaults to 1 (one wakeup per
    probe). *)

val breaker : t -> Circuit_breaker.t option
(** The breaker guarding the net's probe rounds; [Some] exactly when a
    non-null fault plan was attached. *)

val rounds : t -> int
(** Probe rounds elapsed over the net's lifetime (including rounds the
    breaker refused) — the clock {!Fault_plan.outage} windows and the
    breaker run on. *)

val probe_wakeups : t -> int
(** Batch round-trips the network has served via {!probe_batch}. *)

val probe_messages : t -> int
(** Individual sensor responses served via {!probe_batch}. *)

val retry_wakeups : t -> int
(** Executed rounds {e beyond the first} of their batch — pure retry
    traffic, a slice of {!probe_wakeups}.  Breaker-refused rounds wake
    no radio and are not counted.  Before this split, retry rounds were
    lumped into {!probe_wakeups} and a degraded net's retry burn could
    not be told apart from normal probe traffic. *)

val retry_messages : t -> int
(** Sensor responses served in retry rounds — a slice of
    {!probe_messages}. *)

val in_exact : Predicate.t -> reading -> bool
val exact_size : Predicate.t -> reading array -> int
