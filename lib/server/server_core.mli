(** The qaq-server engine room: dataset, cross-query broker, line
    protocol and live telemetry, as a library.

    [bin/qaq_server] is a thin cmdliner wrapper over this module;
    tests and benchmarks drive the same server in-process by calling
    {!serve} over a channel pair.

    Line protocol (one request per line; [key=value] tokens):

    {v
    QUERY [tenant=T] [seed=N] [p=0.9] [r=0.6] [l=50] [quota=N]
                   register a query            -> QUEUED id=...
    RUN            run every queued query      -> RESULT ... lines, DONE ...
    STATS          broker lifetime statistics  -> STATS ...
                   (plus one TIER line per backend when tiered)
    TENANTS        per-tenant statistics       -> TENANT ... lines, OK
    METRICS        the metrics registry as one JSON line
    HEALTH         overall rolling SLO + recorder/breaker state
    SLO [tenant]   per-tenant rolling SLO      -> SLO ... lines, OK
    RECORDER [trace-id|last]
                   flight-recorder ring / last anomaly dump as
                   chrome-trace JSON, then OK
    HELP           command summary
    QUIT           close the session           -> BYE
    v}

    Telemetry: every RUN mints a per-query trace ID, stamps the query's
    engine events and its broker client's probe events with it
    ({!Trace.context}), records everything in a bounded
    {!Flight_recorder} (auto-dumping on degradation, breaker trips,
    budget stops and guarantee shortfalls), and feeds each finished
    query into rolling per-tenant {!Slo} windows.  [RESULT] lines carry
    [trace=N] and [elapsed=seconds] so a client can correlate protocol
    responses with trace dumps. *)

type admission = Degrade | Reject

type config = {
  c_seed : int;  (** dataset seed *)
  c_total : int;  (** dataset size |T| *)
  c_f_y : float;  (** fraction of YES objects *)
  c_f_m : float;  (** fraction of MAYBE objects *)
  c_max_laxity : float;
  c_batch : int;  (** broker batch size B *)
  c_capacity : int option;  (** shared probe capacity; unlimited if None *)
  c_freshness : float;  (** freshness window, seconds *)
  c_probe_ms : float;  (** simulated backend latency per batch *)
  c_admission : admission;
  c_domains : int option;  (** domains for RUN *)
  c_fault_rate : float;
      (** probability a backend probe fails permanently (deterministic
          per [c_fault_seed]); 0 disables injection entirely *)
  c_fault_seed : int;
  c_tiers : Probe_tier.spec array option;
      (** probe through a tiered cascade: one shared backend per tier
          (proxies narrow with {!Synthetic.shrink}, the oracle resolves),
          every RUN query gets a {!Probe_broker.cascade_client} and
          STATS reports per-tier [TIER <name>] lines.  [None] keeps the
          single oracle backend. *)
  c_breaker : bool;  (** put a {!Circuit_breaker} on the broker *)
  c_recorder : int;  (** flight-recorder ring capacity; 0 disables *)
  c_recorder_dir : string option;
      (** where automatic anomaly dumps are written as chrome-trace
          JSON files (kept in memory regardless) *)
  c_window : float;  (** rolling SLO window, seconds *)
  c_prom : string option;
      (** Prometheus text file, rewritten after every RUN *)
  c_trace : bool;  (** also format every trace event to stderr *)
}

val default_config : config
(** The bin defaults: seed 2004, 10000 objects, batch 8, unlimited
    capacity, infinite freshness, no simulated latency, [Degrade]
    admission, no faults, no breaker, recorder capacity 256, 60 s SLO
    window, no Prometheus file, no stderr trace. *)

type t

val create : ?clock:(unit -> float) -> config -> t
(** Build a server: generate the dataset, wire the broker (with fault
    injection and breaker per the config) and the telemetry stack.
    [clock] (default wall time) drives the recorder timestamps and the
    SLO windows — inject a fake clock in tests. *)

val obs : t -> Obs.t
val broker : t -> Synthetic.obj Probe_broker.t
val recorder : t -> Flight_recorder.t option
val slo : t -> Slo.t

val serve : t -> in_channel -> out_channel -> [ `Quit | `Eof ]
(** One session over a channel pair; [`Quit] when the client asked to
    stop the server, [`Eof] when the stream ended. *)

val serve_socket : t -> string -> unit
(** Listen on a Unix domain socket, serving connections one at a time
    until a client sends QUIT. *)
