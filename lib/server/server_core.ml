(* The qaq-server engine room, as a library.

   Everything the bin/qaq_server front end does — dataset, cross-query
   broker, line protocol, admission control — lives here so tests and
   benchmarks can drive a server in-process over channel pairs, and so
   the live-telemetry plumbing (trace-stamped queries, the flight
   recorder, rolling SLO windows) has one owner.

   Telemetry wiring, end to end:

   - Every RUN mints a process-unique trace ID per queued query
     (Engine.next_trace_id) and hands the query a broker client whose
     trace sink is stamped with that ID and tenant
     (Obs.with_context); Engine.execute_one stamps the engine-side
     events the same way.  Everything a query triggers — reads,
     decisions, probe batches, breaker transitions its dispatch round
     causes — carries its ID.
   - The server's base trace sink tees the flight recorder (bounded
     ring of recent events, auto-dumping on anomalies) with an optional
     stderr formatter.  Dumps land in [c_recorder_dir] as chrome-trace
     JSON and stay queryable over the protocol (RECORDER).
   - Each finished query feeds one Slo.sample (latency from
     result.elapsed_seconds, charged probes, degradation, broker
     rejections, guarantee shortfall) into the rolling per-tenant
     windows behind HEALTH and SLO; METRICS/the Prometheus file expose
     the cumulative registry next to the windowed family. *)

type admission = Degrade | Reject

type config = {
  c_seed : int;
  c_total : int;
  c_f_y : float;
  c_f_m : float;
  c_max_laxity : float;
  c_batch : int;
  c_capacity : int option;
  c_freshness : float;
  c_probe_ms : float;
  c_admission : admission;
  c_domains : int option;
  c_fault_rate : float;
  c_fault_seed : int;
  c_tiers : Probe_tier.spec array option;
  c_breaker : bool;
  c_recorder : int;
  c_recorder_dir : string option;
  c_window : float;
  c_prom : string option;
  c_trace : bool;
}

let default_config =
  {
    c_seed = 2004;
    c_total = 10000;
    c_f_y = 0.2;
    c_f_m = 0.2;
    c_max_laxity = 100.0;
    c_batch = 8;
    c_capacity = None;
    c_freshness = infinity;
    c_probe_ms = 0.0;
    c_admission = Degrade;
    c_domains = None;
    c_fault_rate = 0.0;
    c_fault_seed = 1337;
    c_tiers = None;
    c_breaker = false;
    c_recorder = 256;
    c_recorder_dir = None;
    c_window = 60.0;
    c_prom = None;
    c_trace = false;
  }

type pending = {
  id : int;
  tenant : string;
  seed : int;
  quota : int option;
  requirements : Quality.requirements;
}

type t = {
  cfg : config;
  data : Synthetic.obj array;
  broker : Synthetic.obj Probe_broker.t;
  srv_obs : Obs.t;
  srv_recorder : Flight_recorder.t option;
  srv_slo : Slo.t;
  srv_breaker : Circuit_breaker.t option;
  mutable queue : pending list;  (* newest first *)
  mutable next_id : int;
  mutable next_seed : int;
}

let obs t = t.srv_obs
let broker t = t.broker
let recorder t = t.srv_recorder
let slo t = t.srv_slo

(* Dump writing must never take a query down: a full disk loses the
   dump, not the answer. *)
let write_dump dir dump =
  let path = Filename.concat dir (Flight_recorder.dump_filename dump) in
  try
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc (Flight_recorder.dump_to_json dump))
  with Sys_error msg ->
    Printf.eprintf "qaq-server: flight-recorder dump failed: %s\n%!" msg

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let create ?clock cfg =
  let syn =
    Synthetic.config ~total:cfg.c_total ~f_y:cfg.c_f_y ~f_m:cfg.c_f_m
      ~max_laxity:cfg.c_max_laxity ()
  in
  let data = Synthetic.generate (Rng.create cfg.c_seed) syn in
  let srv_recorder =
    if cfg.c_recorder > 0 then
      let on_dump =
        match cfg.c_recorder_dir with
        | Some dir ->
            mkdir_p dir;
            fun d -> write_dump dir d
        | None -> fun _ -> ()
      in
      Some (Flight_recorder.create ~capacity:cfg.c_recorder ?clock ~on_dump ())
    else None
  in
  let sinks =
    (match srv_recorder with
    | Some r -> [ Flight_recorder.sink r ]
    | None -> [])
    @ if cfg.c_trace then [ Trace.formatter Format.err_formatter ] else []
  in
  let trace =
    match sinks with [] -> Trace.null | s :: rest -> List.fold_left Trace.tee s rest
  in
  let srv_obs = Obs.create ~trace ?clock () in
  let srv_breaker =
    if cfg.c_breaker then Some (Circuit_breaker.create ~obs:srv_obs ())
    else None
  in
  let latency = cfg.c_probe_ms /. 1000.0 in
  let injector ~site ~seed =
    Fault_plan.injector_opt ~obs:srv_obs ~site
      (Fault_plan.make ~seed ~permanent_rate:cfg.c_fault_rate ())
  in
  let resolver inj to_outcome objs =
    if latency > 0.0 then Unix.sleepf latency;
    Array.map
      (fun o ->
        let failed =
          match inj with
          | None -> false
          | Some inj ->
              let el = Fault_plan.fresh_element inj in
              Fault_plan.attempt inj el ~round:0
        in
        if failed then Probe_driver.Failed { attempts = 1 } else to_outcome o)
      objs
  in
  let key (o : Synthetic.obj) = o.Synthetic.id in
  let broker =
    match cfg.c_tiers with
    | None ->
        let inj = injector ~site:"server-backend" ~seed:cfg.c_fault_seed in
        Probe_broker.create ~obs:srv_obs ~freshness:cfg.c_freshness
          ?capacity:cfg.c_capacity ?breaker:srv_breaker
          ~batch_size:cfg.c_batch ~key
          (resolver inj (fun o -> Probe_driver.Resolved (Synthetic.probe o)))
    | Some specs ->
        Probe_tier.validate specs;
        (* One backend per tier; each tier draws an independent fault
           stream so a dead proxy does not imply a dead oracle. *)
        let backends =
          Array.mapi
            (fun i (spec : Probe_tier.spec) ->
              let inj =
                injector
                  ~site:("server-backend." ^ spec.Probe_tier.name)
                  ~seed:(cfg.c_fault_seed + i)
              in
              let to_outcome =
                match spec.Probe_tier.kind with
                | Probe_tier.Resolve ->
                    fun o -> Probe_driver.Resolved (Synthetic.probe o)
                | Probe_tier.Shrink { power } ->
                    fun o -> Probe_driver.Shrunk (Synthetic.shrink ~power o)
              in
              {
                Probe_broker.bk_resolve = resolver inj to_outcome;
                bk_batch = spec.Probe_tier.batch;
              })
            specs
        in
        Probe_broker.create_tiered ~obs:srv_obs ~freshness:cfg.c_freshness
          ?capacity:cfg.c_capacity ?breaker:srv_breaker ~key backends
  in
  let srv_slo = Slo.create ~window_seconds:cfg.c_window ?clock () in
  {
    cfg;
    data;
    broker;
    srv_obs;
    srv_recorder;
    srv_slo;
    srv_breaker;
    queue = [];
    next_id = 0;
    next_seed = cfg.c_seed + 1;
  }

let pr out fmt =
  Printf.ksprintf
    (fun line ->
      output_string out line;
      output_char out '\n';
      flush out)
    fmt

let print_stats out label (s : Probe_broker.stats) =
  pr out
    "%s requests=%d admitted=%d charged=%d failed=%d coalesced=%d fresh=%d \
     rejected=%d batches=%d"
    label s.requests s.admitted s.charged s.failed s.coalesced s.fresh_hits
    s.rejected s.batches

(* key=value tokens; bare tokens are errors the client can see. *)
let parse_kvs tokens =
  List.fold_left
    (fun acc tok ->
      match acc with
      | Error _ as e -> e
      | Ok kvs -> (
          match String.index_opt tok '=' with
          | Some i ->
              Ok
                ((String.sub tok 0 i,
                  String.sub tok (i + 1) (String.length tok - i - 1))
                :: kvs)
          | None -> Error tok))
    (Ok []) tokens

let handle_query srv out tokens =
  match parse_kvs tokens with
  | Error tok -> pr out "ERR expected key=value, got %S" tok
  | Ok kvs -> (
      let find k = List.assoc_opt k kvs in
      let float_of k default =
        match find k with Some v -> float_of_string_opt v | None -> Some default
      in
      let tenant = Option.value (find "tenant") ~default:"default" in
      let seed =
        match find "seed" with
        | Some v -> int_of_string_opt v
        | None ->
            let s = srv.next_seed in
            srv.next_seed <- s + 1;
            Some s
      in
      let quota =
        match find "quota" with
        | Some v -> Option.map Option.some (int_of_string_opt v)
        | None -> Some None
      in
      match
        (seed, quota, float_of "p" 0.9, float_of "r" 0.6, float_of "l" 50.0)
      with
      | Some seed, Some quota, Some p, Some r, Some l -> (
          match Quality.requirements ~precision:p ~recall:r ~laxity:l with
          | requirements ->
              let id = srv.next_id in
              srv.next_id <- id + 1;
              srv.queue <-
                { id; tenant; seed; quota; requirements } :: srv.queue;
              pr out "QUEUED id=%d tenant=%s seed=%d p=%g r=%g l=%g" id tenant
                seed p r l
          | exception Invalid_argument msg -> pr out "ERR %s" msg)
      | _ -> pr out "ERR malformed QUERY arguments")

(* Per-tenant broker rejections are only visible as lifetime totals, so
   a batch attributes each tenant's rejection delta to its first query
   of the batch — the windowed totals per tenant come out right. *)
let rejection_deltas before after =
  List.filter_map
    (fun (tenant, (a : Probe_broker.stats)) ->
      let prior =
        match List.assoc_opt tenant before with
        | Some (b : Probe_broker.stats) -> b.rejected
        | None -> 0
      in
      if a.rejected > prior then Some (tenant, a.rejected - prior) else None)
    after

let flush_prometheus srv =
  match srv.cfg.c_prom with
  | None -> ()
  | Some path -> (
      let text =
        Metrics.to_prometheus (Obs.snapshot srv.srv_obs)
        ^ Slo.to_prometheus srv.srv_slo
      in
      try
        let oc = open_out path in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () -> output_string oc text)
      with Sys_error msg ->
        Printf.eprintf "qaq-server: prometheus write failed: %s\n%!" msg)

let handle_run srv out =
  let queued = Array.of_list (List.rev srv.queue) in
  srv.queue <- [];
  if Array.length queued = 0 then pr out "DONE queries=0"
  else if srv.cfg.c_admission = Reject && Probe_broker.saturated srv.broker
  then begin
    (* Admission at the front door: a saturated broker would only
       degrade every probe, so refuse the batch outright and leave the
       shared capacity to coalesced/fresh traffic. *)
    Array.iter
      (fun q ->
        Slo.observe srv.srv_slo
          {
            Slo.tenant = q.tenant;
            latency_seconds = nan;
            probes = 0;
            degraded = false;
            rejections = 1;
            shortfall = false;
          };
        pr out "REJECTED id=%d tenant=%s saturated" q.id q.tenant)
      queued;
    flush_prometheus srv
  end
  else begin
    let before = Probe_broker.stats srv.broker in
    let tenant_before = Probe_broker.tenant_stats srv.broker in
    let queries =
      Array.map
        (fun q ->
          let trace_id = Engine.next_trace_id () in
          let ctx =
            { Trace.query = Some trace_id; tenant = Some q.tenant }
          in
          let obs_q = Obs.with_context srv.srv_obs ctx in
          let probe, cascade =
            match srv.cfg.c_tiers with
            | None ->
                ( Some
                    (Probe_broker.client ~obs:obs_q ~tenant:q.tenant
                       ?quota:q.quota srv.broker),
                  None )
            | Some specs ->
                ( None,
                  Some
                    (Probe_broker.cascade_client ~obs:obs_q ~tenant:q.tenant
                       ?quota:q.quota ~specs srv.broker) )
          in
          Engine.query ~rng:(Rng.create q.seed) ?probe ?cascade
            ~obs:srv.srv_obs ~tenant:q.tenant ~trace_id
            ~instance:Synthetic.instance ~requirements:q.requirements srv.data)
        queued
    in
    let results = Engine.execute_many ?domains:srv.cfg.c_domains queries in
    let tenant_after = Probe_broker.tenant_stats srv.broker in
    let deltas = ref (rejection_deltas tenant_before tenant_after) in
    Array.iteri
      (fun i result ->
        let q = queued.(i) in
        let report = result.Engine.report in
        let g = report.Operator.guarantees in
        let d = result.Engine.degradation in
        let rejections =
          match List.assoc_opt q.tenant !deltas with
          | Some n ->
              deltas := List.remove_assoc q.tenant !deltas;
              n
          | None -> 0
        in
        Slo.observe srv.srv_slo
          {
            Slo.tenant = q.tenant;
            latency_seconds = result.Engine.elapsed_seconds;
            probes = result.Engine.counts.Cost_meter.probes;
            degraded = Engine.degraded result;
            rejections;
            shortfall = not d.Engine.requirements_met;
          };
        pr out
          "RESULT id=%d trace=%d tenant=%s seed=%d answer=%d precision=%.4f \
           recall=%.4f laxity=%.4f met=%b probes=%d batches=%d failed=%d \
           degraded=%b cost=%.4f elapsed=%.6f"
          q.id
          (Engine.trace_id queries.(i))
          q.tenant q.seed report.Operator.answer_size g.Quality.precision
          g.Quality.recall g.Quality.max_laxity d.Engine.requirements_met
          result.Engine.counts.Cost_meter.probes
          result.Engine.counts.Cost_meter.batches d.Engine.failed_probes
          (Engine.degraded result) result.Engine.normalized_cost
          result.Engine.elapsed_seconds)
      results;
    let after = Probe_broker.stats srv.broker in
    pr out
      "DONE queries=%d charged=%d coalesced=%d fresh=%d rejected=%d \
       batches=%d"
      (Array.length results)
      (after.charged - before.charged)
      (after.coalesced - before.coalesced)
      (after.fresh_hits - before.fresh_hits)
      (after.rejected - before.rejected)
      (after.batches - before.batches);
    flush_prometheus srv
  end

let breaker_state srv =
  match srv.srv_breaker with
  | Some b -> Circuit_breaker.state_name (Circuit_breaker.state b)
  | None -> "none"

let print_report out label (r : Slo.report) =
  pr out
    "%s window=%g requests=%g rate=%.4f p50=%.6f p99=%.6f probe_rate=%.4f \
     degraded=%.4f rejections=%g shortfalls=%g"
    label r.Slo.r_window r.Slo.r_requests r.Slo.r_rate r.Slo.r_p50
    r.Slo.r_p99 r.Slo.r_probe_rate r.Slo.r_degraded r.Slo.r_rejections
    r.Slo.r_shortfalls

let handle_health srv out =
  let r = Slo.overall srv.srv_slo in
  let recorded, dumps =
    match srv.srv_recorder with
    | Some rec_ ->
        (Flight_recorder.recorded rec_, List.length (Flight_recorder.dumps rec_))
    | None -> (0, 0)
  in
  pr out
    "HEALTH window=%g requests=%g rate=%.4f p50=%.6f p99=%.6f \
     probe_rate=%.4f degraded=%.4f rejections=%g shortfalls=%g recorded=%d \
     dumps=%d breaker=%s"
    r.Slo.r_window r.Slo.r_requests r.Slo.r_rate r.Slo.r_p50 r.Slo.r_p99
    r.Slo.r_probe_rate r.Slo.r_degraded r.Slo.r_rejections r.Slo.r_shortfalls
    recorded dumps (breaker_state srv)

let handle_slo srv out args =
  (match args with
  | [ tenant ] ->
      print_report out
        (Printf.sprintf "SLO tenant=%s" tenant)
        (Slo.report srv.srv_slo tenant)
  | _ ->
      List.iter
        (fun (r : Slo.report) ->
          print_report out (Printf.sprintf "SLO tenant=%s" r.Slo.r_tenant) r)
        (Slo.reports srv.srv_slo));
  pr out "OK"

(* RECORDER            the global ring as one chrome-trace document
   RECORDER <trace-id> that query's ring
   RECORDER last       the most recent automatic anomaly dump *)
let handle_recorder srv out args =
  match srv.srv_recorder with
  | None -> pr out "ERR recorder disabled"
  | Some rec_ -> (
      let emit (d : Flight_recorder.dump) =
        pr out "RECORDER reason=%s query=%s tenant=%s events=%d" d.reason
          (match d.query with Some q -> string_of_int q | None -> "-")
          (Option.value d.tenant ~default:"-")
          (List.length d.events);
        pr out "%s" (Flight_recorder.dump_to_json d);
        pr out "OK"
      in
      match args with
      | [] -> emit (Flight_recorder.manual_dump rec_ ~reason:"manual")
      | [ "last" ] -> (
          match List.rev (Flight_recorder.dumps rec_) with
          | d :: _ -> emit d
          | [] -> pr out "ERR no dumps recorded")
      | [ arg ] -> (
          match int_of_string_opt arg with
          | Some q -> emit (Flight_recorder.manual_dump ~query:q rec_ ~reason:"manual")
          | None -> pr out "ERR expected a trace id or 'last', got %S" arg)
      | _ -> pr out "ERR usage: RECORDER [trace-id|last]")

let help out =
  pr out
    "OK commands: QUERY [tenant=T] [seed=N] [p=] [r=] [l=] [quota=N] | RUN | \
     STATS | TENANTS | METRICS | HEALTH | SLO [tenant] | RECORDER \
     [trace-id|last] | HELP | QUIT"

(* One session over a channel pair; returns [`Quit] when the client
   asked to stop the server, [`Eof] when the stream just ended. *)
let serve srv inc out =
  let rec loop () =
    match input_line inc with
    | exception End_of_file -> `Eof
    | line -> (
        let tokens =
          String.split_on_char ' ' (String.trim line)
          |> List.filter (fun s -> s <> "")
        in
        match tokens with
        | [] -> loop ()
        | cmd :: args -> (
            match (String.uppercase_ascii cmd, args) with
            | "QUERY", args ->
                handle_query srv out args;
                loop ()
            | "RUN", [] ->
                handle_run srv out;
                loop ()
            | "STATS", [] ->
                print_stats out "STATS" (Probe_broker.stats srv.broker);
                (if Probe_broker.tiers srv.broker > 1 then
                   let names =
                     match srv.cfg.c_tiers with
                     | Some specs ->
                         Array.map (fun s -> s.Probe_tier.name) specs
                     | None -> [||]
                   in
                   Array.iteri
                     (fun i s ->
                       let name =
                         if i < Array.length names then names.(i)
                         else string_of_int i
                       in
                       print_stats out (Printf.sprintf "TIER %s" name) s)
                     (Probe_broker.by_tier srv.broker));
                loop ()
            | "TENANTS", [] ->
                List.iter
                  (fun (name, s) ->
                    print_stats out (Printf.sprintf "TENANT %s" name) s)
                  (Probe_broker.tenant_stats srv.broker);
                pr out "OK";
                loop ()
            | "METRICS", [] ->
                pr out "%s" (Metrics.to_json (Obs.snapshot srv.srv_obs));
                loop ()
            | "HEALTH", [] ->
                handle_health srv out;
                loop ()
            | "SLO", args ->
                handle_slo srv out args;
                loop ()
            | "RECORDER", args ->
                handle_recorder srv out args;
                loop ()
            | "HELP", _ ->
                help out;
                loop ()
            | "QUIT", [] ->
                pr out "BYE";
                `Quit
            | _ ->
                pr out "ERR unknown command %S (try HELP)" line;
                loop ()))
  in
  loop ()

let serve_socket srv path =
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind sock (Unix.ADDR_UNIX path);
  Unix.listen sock 8;
  Printf.eprintf "qaq-server: listening on %s\n%!" path;
  let rec accept_loop () =
    let client, _ = Unix.accept sock in
    let inc = Unix.in_channel_of_descr client in
    let out = Unix.out_channel_of_descr client in
    (* A client that disconnects abruptly surfaces as Sys_error
       (ECONNRESET / EPIPE) from channel IO; treat it like EOF rather
       than taking the server down. *)
    let verdict =
      try serve srv inc out with End_of_file | Sys_error _ -> `Eof
    in
    (try Unix.close client with Unix.Unix_error _ -> ());
    match verdict with `Quit -> () | `Eof -> accept_loop ()
  in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      try Unix.unlink path with Unix.Unix_error _ -> ())
    accept_loop
