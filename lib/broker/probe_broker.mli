(** Cross-query probe broker: shared batching, deduplication and
    admission control in front of a probe backend.

    The paper prices every query as if it owned the probe channel, but
    the expensive resource — probes into imprecise objects — is
    naturally shared: when N in-flight queries all need object [o]
    refreshed, charging N probes is pure waste.  A broker sits between
    many concurrent queries and one backend and serves them from shared
    probe capacity:

    {ul
    {- {e Coalescing}: requests for an object that is already queued or
       in flight join its waiter list — one probe is charged and the
       outcome fans out to every waiter.}
    {- {e Freshness}: an object probed within the freshness window is
       served from the broker's cache without touching the backend at
       all — the generalisation of the per-object probe cache the band
       join has always used.}
    {- {e Cross-query batch packing}: requests from different queries
       accumulate in shared per-tenant queues, and a dispatch drains
       them round-robin up to the batch size — partially-filled batches
       from different queries merge into full ones, so the amortized
       [c_p + c_b/B] price is actually achieved under concurrency
       instead of only per query.}
    {- {e Admission control}: a shared capacity, per-tenant quotas and
       an optional {!Circuit_breaker} bound what the backend can be
       asked to do.  A request refused by admission settles as
       [Failed { attempts = 0 }] — the PR-5 degradation outcome — so a
       query over a saturated broker degrades gracefully through the
       operator's guarantee-aware fallback instead of erroring.}}

    Clients are ordinary {!Probe_driver}s ({!client}), so a query's
    engine path is unchanged; a {e single} query through the broker is
    bit-for-bit identical to the direct driver path (same batches, same
    outcomes, same per-query accounting), while a shared workload
    charges the backend strictly fewer probes than the sum of solo runs
    whenever any object overlaps.

    {e Tiers.}  A broker may front a whole probe cascade
    ({!create_tiered}, {!of_sources}): one backend per {!Probe_tier}
    tier, cheapest first.  Queueing, coalescing and freshness are then
    per [(object, tier)] — each dispatch round serves exactly one tier
    — with one asymmetry: a cached {e point} ([Resolved], from any
    tier) satisfies a request at {e every} tier, while a cached
    {e narrowed interval} ([Shrunk]) only satisfies its own tier, so a
    proxy-fresh object requested at the oracle still escalates and
    pays.  {!cascade_client} packages the tier-pinned clients as a
    {!Cascade} for [Operator.run].

    The broker is safe for concurrent use from many domains.  Each
    {e client driver} must still be confined to one domain at a time
    (drivers are not thread-safe); give every concurrent query its own
    client.  The backend resolver is only ever invoked by one domain at
    a time — the current dispatcher — so an unsynchronised backend
    (e.g. {!Probe_source}) works unmodified.  For results to be
    independent of scheduling, the resolver must be a pure function of
    the submitted object. *)

type 'o t

val create :
  ?obs:Obs.t ->
  ?clock:(unit -> float) ->
  ?freshness:float ->
  ?capacity:int ->
  ?breaker:Circuit_breaker.t ->
  ?batch_size:int ->
  key:('o -> int) ->
  ('o array -> 'o Probe_driver.outcome array) ->
  'o t
(** [create ~key resolve] builds a broker over a batch resolver (same
    contract as {!Probe_driver.create_outcomes}: outcomes in submission
    order, same length).  [key] must identify an object uniquely — two
    objects with the same key are considered the same probe target.

    [freshness] (seconds, default [infinity]) is the window within
    which a completed probe is a free hit; [0.] disables the cache
    entirely (every request reaches the backend).  Failed probes are
    never cached — a later request retries.  [capacity] (default
    unlimited) caps the {e admitted} backend probes over the broker's
    lifetime; once exhausted, new probe targets settle as
    [Failed { attempts = 0 }] (coalesced and fresh requests still
    succeed — they cost nothing).  [breaker] consults
    {!Circuit_breaker.allow} per dispatch round: a refused round
    settles its whole batch as [Failed { attempts = 0 }] without
    touching the backend, and backend rounds feed
    [record_success]/[record_failure].

    [batch_size] (default 1) is the backend batch bound [B]: a
    dispatch drains at most [B] requests, round-robin across tenants.
    [clock] (default: [obs]'s clock, else wall time) stamps freshness
    and the queue-wait histogram.  [obs] registers the
    [qaq.broker.*] counters and histograms ({!Obs.Keys}).

    @raise Invalid_argument if [batch_size < 1], [capacity < 0] or
    [freshness] is negative or NaN. *)

val of_source :
  ?obs:Obs.t ->
  ?clock:(unit -> float) ->
  ?freshness:float ->
  ?capacity:int ->
  ?breaker:Circuit_breaker.t ->
  ?batch_size:int ->
  key:('o -> int) ->
  'o Probe_source.t ->
  'o t
(** A broker whose backend is a {!Probe_source} (resolved with
    {!Probe_source.resolver}): latency simulation, transient retries
    and fault plans all apply per dispatched batch, exactly as they
    would under a direct {!Probe_source.driver}. *)

(** {2 Tiered backends} *)

type 'o backend = {
  bk_resolve : 'o array -> 'o Probe_driver.outcome array;
      (** may return [Resolved] (an oracle tier) or [Shrunk] (a proxy
          tier that narrowed the interval); the broker interprets only
          the outcome kind *)
  bk_batch : int;  (** this tier's batch bound [B] *)
}

val create_tiered :
  ?obs:Obs.t ->
  ?clock:(unit -> float) ->
  ?freshness:float ->
  ?capacity:int ->
  ?breaker:Circuit_breaker.t ->
  key:('o -> int) ->
  'o backend array ->
  'o t
(** [create_tiered ~key backends] builds a broker over a cascade of
    backends, cheapest first (tier 0 is the cheapest proxy, the last is
    typically the oracle).  Requests name their tier
    ({!client}'s [?tier]); each dispatch round drains one tier's
    requests into that tier's resolver at that tier's batch bound.
    Admission (capacity, quotas) and the breaker are shared across
    tiers — they protect the probe subsystem as a whole.
    @raise Invalid_argument on an empty backend array, a [bk_batch < 1],
    [capacity < 0], or negative/NaN [freshness]. *)

val of_sources :
  ?obs:Obs.t ->
  ?clock:(unit -> float) ->
  ?freshness:float ->
  ?capacity:int ->
  ?breaker:Circuit_breaker.t ->
  key:('o -> int) ->
  specs:Probe_tier.spec array ->
  'o Probe_source.t array ->
  'o t
(** A tiered broker whose backends are {!Probe_source}s paired with
    {!Probe_tier} specs ([sources.(i)] serves [specs.(i)]): [Resolve]
    tiers resolve with {!Probe_source.resolver}, [Shrink] tiers with
    {!Tiered.shrink_resolver}.  Batch bounds come from the specs.
    @raise Invalid_argument on invalid specs or a length mismatch. *)

val batch_size : 'o t -> int
(** Tier 0's batch bound — for a single-backend broker, {e the} batch
    size. *)

val tiers : 'o t -> int
(** Number of backend tiers (1 for {!create}/{!of_source}). *)

val tier_batch_size : 'o t -> tier:int -> int
(** @raise Invalid_argument if [tier] is out of range. *)

val client :
  ?obs:Obs.t ->
  ?tenant:string ->
  ?quota:int ->
  ?tier:int ->
  'o t ->
  'o Probe_driver.t
(** [client t] is the broker as a per-query probe capability: a driver
    with the broker's batch size whose flushes resolve through the
    shared broker.  Hand one to {!Engine.execute} (or any
    {!Operator.run}) and the query runs unchanged — its own
    probes/batches accounting is what it would have been solo, while
    the backend is only charged for work no other query already paid
    for.

    [tenant] (default ["default"]) attributes the client's requests for
    fair round-robin scheduling, per-tenant statistics and [quota] —
    a cap on the tenant's admitted backend probes (across all of the
    tenant's clients; the tightest quota registered for a tenant wins).
    Beyond the quota, the tenant's new probe targets degrade like
    capacity exhaustion; other tenants are unaffected.

    [obs] is the {e query's} observability capability: the client's
    driver registers its per-query probe instruments there and emits
    its batch/failure events on its trace sink — and when this client
    happens to be the domain driving a dispatch round, any circuit
    breaker state change that round causes is emitted on the same sink.
    Pass a sink stamped with {!Trace.with_context} (as
    [Engine.execute_one] does) and everything the query triggers
    carries its trace ID.

    [tier] (default 0) pins the client to one backend tier: its batch
    size is that tier's [bk_batch] and its flushes dispatch against
    that tier's resolver.  A single-backend broker only has tier 0.

    Each client must be used from one domain at a time.
    @raise Invalid_argument if [quota < 0] or [tier] is out of
    range. *)

val cascade_client :
  ?obs:Obs.t ->
  ?tenant:string ->
  ?quota:int ->
  specs:Probe_tier.spec array ->
  'o t ->
  'o Cascade.t
(** The broker as a per-query {!Cascade}: tier [i]'s driver is
    [client ~tier:i t], so escalation decisions stay in the operator
    while every tier's backend is shared (coalesced, freshness-cached)
    across queries.  [specs] must match the broker's backends
    tier-for-tier — same count, same batch bounds; pricing fields feed
    the cascade's start-tier selection.
    @raise Invalid_argument on a mismatch or invalid specs. *)

val fetch : ?tenant:string -> ?tier:int -> 'o t -> 'o -> 'o Probe_driver.outcome
(** Resolve one object through the broker synchronously — the scalar
    convenience the band join's probe cache is built on.  Equivalent to
    a one-element client flush: fresh hits are free, otherwise the
    request is admitted (or degraded) and dispatched.  [tier] defaults
    to 0. *)

val is_fresh : 'o t -> int -> bool
(** Whether a successful probe for this key is currently within the
    freshness window at {e some} tier — i.e. whether a request for it
    at some tier right now would be a free hit. *)

val invalidate : 'o t -> int -> unit
(** Drop every cached outcome for a key (point and per-tier shrunk
    entries alike): the next request re-probes.  The hook for backends
    whose objects go stale out of band. *)

val pending : 'o t -> int
(** Requests admitted but not yet handed to the backend — the shared
    queue depth at this instant. *)

val saturated : 'o t -> bool
(** Whether the shared capacity is exhausted: every new probe target
    (from any tenant) will degrade until the end of the broker's life.
    Admission-control front ends ({!bin/qaq_server}) use this to reject
    queries outright instead of running them degraded. *)

type stats = {
  requests : int;  (** objects clients asked for, before dedup *)
  admitted : int;  (** requests enqueued for the backend *)
  charged : int;  (** backend probes resolved — the real spend *)
  failed : int;  (** admitted requests that failed permanently *)
  coalesced : int;  (** requests that joined a queued/in-flight probe *)
  fresh_hits : int;  (** requests served from the freshness window *)
  rejected : int;  (** requests degraded by admission control *)
  batches : int;  (** backend dispatches (the [c_b] charges) *)
}

val stats : 'o t -> stats
(** Lifetime totals.  [requests = admitted + coalesced + fresh_hits +
    rejected], and [charged + failed <= admitted] (the difference is
    still queued).  Reading the stats synchronises with the broker's
    lock, so the identity holds at any moment of a concurrent run. *)

val by_tier : 'o t -> stats array
(** Per-tier totals, index-aligned with the backends.  The {!stats}
    identity holds per tier, and the whole-broker totals are the
    element-wise sums. *)

val tenant_stats : 'o t -> (string * stats) list
(** Per-tenant totals ([batches] is 0 — dispatches are shared),
    sorted by tenant name.  A tenant appears once any client or fetch
    has named it. *)

val pp_stats : Format.formatter -> stats -> unit
