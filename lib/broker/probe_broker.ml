(* Shared probe capacity behind a monitor (one mutex + one condition
   variable).  All broker state is touched only with the lock held; the
   backend resolver runs outside the lock, guarded by the [dispatching]
   flag so only one domain talks to the backend at a time.

   Liveness invariant: a request a client is waiting on is always
   either (a) in some tenant queue — and any waiting client whose
   requests are unresolved will become the dispatcher when no dispatch
   is in progress — or (b) part of the in-progress dispatch, which
   settles it and broadcasts.  A blocked client therefore never depends
   on another *blocked* client, whatever the lane count: the broker is
   deadlock-free even with more clients than domains. *)

type 'o request = {
  rq_obj : 'o;
  rq_key : int;
  rq_tier : int;
  rq_tenant : string;
  rq_enqueued_at : float;
  mutable rq_waiters : ('o Probe_driver.outcome -> unit) list;
      (* newest first; each writes one waiter's result slot *)
}

type 'o fresh_entry = { fe_outcome : 'o Probe_driver.outcome; fe_at : float }

type tenant = {
  tn_queue : (int * int) Queue.t;
      (* (tier, key), FIFO; requests live in [inflight] *)
  mutable tn_quota : int option;
  mutable tn_requests : int;
  mutable tn_admitted : int;
  mutable tn_charged : int;
  mutable tn_failed : int;
  mutable tn_coalesced : int;
  mutable tn_fresh : int;
  mutable tn_rejected : int;
}

(* One probe backend — a cascade tier.  [bk_resolve] may return
   [Resolved] (an oracle) or [Shrunk] (a proxy that narrowed the
   interval); the broker never interprets the object, only the outcome
   kind, for its freshness rules. *)
type 'o backend = {
  bk_resolve : 'o array -> 'o Probe_driver.outcome array;
  bk_batch : int;
}

type tier_counters = {
  mutable tc_requests : int;
  mutable tc_admitted : int;
  mutable tc_charged : int;
  mutable tc_failed : int;
  mutable tc_coalesced : int;
  mutable tc_fresh : int;
  mutable tc_rejected : int;
  mutable tc_batches : int;
}

let fresh_tier_counters () =
  {
    tc_requests = 0;
    tc_admitted = 0;
    tc_charged = 0;
    tc_failed = 0;
    tc_coalesced = 0;
    tc_fresh = 0;
    tc_rejected = 0;
    tc_batches = 0;
  }

type instruments = {
  m_registry : Metrics.t;  (* for grouping related increments *)
  m_requests : Metrics.counter;
  m_admitted : Metrics.counter;
  m_charged : Metrics.counter;
  m_failed : Metrics.counter;
  m_coalesced : Metrics.counter;
  m_fresh : Metrics.counter;
  m_rejected : Metrics.counter;
  m_batches : Metrics.counter;
  h_fill : Metrics.histogram;
  h_wait : Metrics.histogram;
}

type 'o t = {
  backends : 'o backend array;  (* cascade tiers; cheapest first *)
  key : 'o -> int;
  freshness : float;
  capacity : int option;
  breaker : Circuit_breaker.t option;
  clock : unit -> float;
  ins : instruments option;
  lock : Mutex.t;
  cond : Condition.t;
  fresh : (int, 'o fresh_entry) Hashtbl.t;
      (* [Resolved] outcomes, keyed by object: a point answers a
         request at ANY tier — an oracle-fresh object never re-pays the
         proxy *)
  shrunk_fresh : (int * int, 'o fresh_entry) Hashtbl.t;
      (* [Shrunk] outcomes, keyed (tier, object): a narrowed interval
         only answers the same proxy tier again — a proxy-fresh object
         requested at the oracle still escalates *)
  inflight : (int * int, 'o request) Hashtbl.t;
      (* (tier, key); queued or dispatching *)
  tenants : (string, tenant) Hashtbl.t;
  tiers : tier_counters array;
  mutable tenant_order : string list;  (* registration order, reversed *)
  mutable rr : int;  (* round-robin start into [tenant_order] *)
  mutable queued : int;
  mutable dispatching : bool;
  mutable rounds : int;
  mutable s_requests : int;
  mutable s_admitted : int;
  mutable s_charged : int;
  mutable s_failed : int;
  mutable s_coalesced : int;
  mutable s_fresh : int;
  mutable s_rejected : int;
  mutable s_batches : int;
}

type stats = {
  requests : int;
  admitted : int;
  charged : int;
  failed : int;
  coalesced : int;
  fresh_hits : int;
  rejected : int;
  batches : int;
}

let create_tiered ?obs ?clock ?(freshness = infinity) ?capacity ?breaker ~key
    backends =
  if Array.length backends = 0 then
    invalid_arg "Probe_broker.create_tiered: no backends";
  Array.iter
    (fun b ->
      if b.bk_batch < 1 then
        invalid_arg "Probe_broker.create_tiered: batch_size < 1")
    backends;
  if Float.is_nan freshness || freshness < 0.0 then
    invalid_arg "Probe_broker.create_tiered: freshness must be non-negative";
  (match capacity with
  | Some c when c < 0 -> invalid_arg "Probe_broker.create_tiered: capacity < 0"
  | _ -> ());
  let clock =
    match (clock, obs) with
    | Some c, _ -> c
    | None, Some o -> Obs.clock o
    | None, None -> Span.default_clock
  in
  let ins =
    Option.map
      (fun o ->
        {
          m_registry = Obs.metrics o;
          m_requests = Obs.counter o Obs.Keys.broker_requests;
          m_admitted = Obs.counter o Obs.Keys.broker_admitted;
          m_charged = Obs.counter o Obs.Keys.broker_charged;
          m_failed = Obs.counter o Obs.Keys.broker_failed;
          m_coalesced = Obs.counter o Obs.Keys.broker_coalesced;
          m_fresh = Obs.counter o Obs.Keys.broker_fresh_hits;
          m_rejected = Obs.counter o Obs.Keys.broker_rejected;
          m_batches = Obs.counter o Obs.Keys.broker_batches;
          h_fill = Obs.histogram o Obs.Keys.broker_batch_fill;
          h_wait = Obs.histogram o Obs.Keys.broker_queue_wait;
        })
      obs
  in
  {
    backends;
    key;
    freshness;
    capacity;
    breaker;
    clock;
    ins;
    lock = Mutex.create ();
    cond = Condition.create ();
    fresh = Hashtbl.create 256;
    shrunk_fresh = Hashtbl.create 256;
    inflight = Hashtbl.create 64;
    tenants = Hashtbl.create 8;
    tiers = Array.init (Array.length backends) (fun _ -> fresh_tier_counters ());
    tenant_order = [];
    rr = 0;
    queued = 0;
    dispatching = false;
    rounds = 0;
    s_requests = 0;
    s_admitted = 0;
    s_charged = 0;
    s_failed = 0;
    s_coalesced = 0;
    s_fresh = 0;
    s_rejected = 0;
    s_batches = 0;
  }

let create ?obs ?clock ?freshness ?capacity ?breaker ?(batch_size = 1) ~key
    resolve =
  if batch_size < 1 then invalid_arg "Probe_broker.create: batch_size < 1";
  create_tiered ?obs ?clock ?freshness ?capacity ?breaker ~key
    [| { bk_resolve = resolve; bk_batch = batch_size } |]

let of_source ?obs ?clock ?freshness ?capacity ?breaker ?batch_size ~key
    source =
  create ?obs ?clock ?freshness ?capacity ?breaker ?batch_size ~key
    (Probe_source.resolver source)

let of_sources ?obs ?clock ?freshness ?capacity ?breaker ~key
    ~(specs : Probe_tier.spec array) sources =
  Probe_tier.validate specs;
  if Array.length sources <> Array.length specs then
    invalid_arg "Probe_broker.of_sources: sources/specs length mismatch";
  let backends =
    Array.map2
      (fun (spec : Probe_tier.spec) src ->
        let resolver =
          match spec.Probe_tier.kind with
          | Probe_tier.Resolve -> Probe_source.resolver src
          | Probe_tier.Shrink _ -> Tiered.shrink_resolver src
        in
        { bk_resolve = resolver; bk_batch = spec.Probe_tier.batch })
      specs sources
  in
  create_tiered ?obs ?clock ?freshness ?capacity ?breaker ~key backends

let batch_size t = t.backends.(0).bk_batch
let tiers t = Array.length t.backends

let tier_batch_size t ~tier =
  if tier < 0 || tier >= Array.length t.backends then
    invalid_arg "Probe_broker.tier_batch_size";
  t.backends.(tier).bk_batch

(* ---- lock-held helpers ------------------------------------------- *)

let tenant_of t name =
  match Hashtbl.find_opt t.tenants name with
  | Some tn -> tn
  | None ->
      let tn =
        {
          tn_queue = Queue.create ();
          tn_quota = None;
          tn_requests = 0;
          tn_admitted = 0;
          tn_charged = 0;
          tn_failed = 0;
          tn_coalesced = 0;
          tn_fresh = 0;
          tn_rejected = 0;
        }
      in
      Hashtbl.add t.tenants name tn;
      t.tenant_order <- name :: t.tenant_order;
      tn

let register_quota t name quota =
  Mutex.lock t.lock;
  let tn = tenant_of t name in
  (match (quota, tn.tn_quota) with
  | None, _ -> ()
  | Some q, None -> tn.tn_quota <- Some q
  | Some q, Some q' -> tn.tn_quota <- Some (Stdlib.min q q'))
  (* the tightest registered quota wins *);
  Mutex.unlock t.lock

(* Freshness is asymmetric across tiers: a [Resolved] point (any tier's
   oracle answer) satisfies a request at every tier, while a [Shrunk]
   interval only satisfies the tier that produced it — requesting a
   stronger answer must still pay for it. *)
let fresh_lookup t ~tier k now =
  match Hashtbl.find_opt t.fresh k with
  | Some e when now -. e.fe_at < t.freshness -> Some e.fe_outcome
  | _ -> (
      match Hashtbl.find_opt t.shrunk_fresh (tier, k) with
      | Some e when now -. e.fe_at < t.freshness -> Some e.fe_outcome
      | _ -> None)

let admissible t tn =
  (match t.capacity with Some c -> t.s_admitted < c | None -> true)
  && match tn.tn_quota with Some q -> tn.tn_admitted < q | None -> true

let note t f = match t.ins with Some i -> f i | None -> ()

(* Related increments (a request plus its outcome) done as one
   indivisible step against the registry, so a concurrent
   [Metrics.snapshot] always sees the broker identity
   [requests = admitted + coalesced + fresh_hits + rejected] intact.
   Lock order is broker lock, then registry lock; metrics code never
   calls back into the broker, so no cycle. *)
let note_atomic t f =
  match t.ins with
  | Some i -> Metrics.atomically i.m_registry (fun () -> f i)
  | None -> ()

(* Pack one backend batch: drain tenant queues round-robin, one request
   per tenant per pass, starting after wherever the last dispatch
   stopped — per-tenant FIFO, cross-tenant fair.

   A round serves exactly one tier (one backend, one batch-size limit):
   the target is the tier of the first queued head in RR order, and
   only heads at that tier are taken this round — a tenant whose head
   wants a different tier simply waits for a later round, preserving
   its own FIFO.  With a single backend every head matches and this is
   the old behavior exactly.  Returns [(tier, batch)]; the batch is
   non-empty whenever [t.queued > 0]. *)
let take_batch t =
  let order = Array.of_list (List.rev t.tenant_order) in
  let n = Array.length order in
  let target = ref (-1) in
  (let i = ref 0 in
   while !target < 0 && !i < n do
     let tn = Hashtbl.find t.tenants order.((t.rr + !i) mod n) in
     (match Queue.peek_opt tn.tn_queue with
     | Some (tier, _) -> target := tier
     | None -> ());
     incr i
   done);
  if !target < 0 then (0, [||])
  else begin
    let limit = t.backends.(!target).bk_batch in
    let batch = ref [] in
    let taken = ref 0 in
    let progress = ref true in
    while !taken < limit && t.queued > 0 && !progress do
      progress := false;
      let i = ref 0 in
      while !taken < limit && !i < n do
        let tn = Hashtbl.find t.tenants order.((t.rr + !i) mod n) in
        (match Queue.peek_opt tn.tn_queue with
        | Some (tier, k) when tier = !target ->
            ignore (Queue.pop tn.tn_queue);
            let rq = Hashtbl.find t.inflight (tier, k) in
            batch := rq :: !batch;
            incr taken;
            t.queued <- t.queued - 1;
            t.rr <- (t.rr + !i + 1) mod n;
            progress := true
        | Some _ | None -> ());
        incr i
      done
    done;
    (!target, Array.of_list (List.rev !batch))
  end

let settle t rq outcome =
  Hashtbl.remove t.inflight (rq.rq_tier, rq.rq_key);
  let tc = t.tiers.(rq.rq_tier) in
  let now = t.clock () in
  (match outcome with
  | Probe_driver.Resolved _ ->
      t.s_charged <- t.s_charged + 1;
      tc.tc_charged <- tc.tc_charged + 1;
      (tenant_of t rq.rq_tenant).tn_charged <-
        (tenant_of t rq.rq_tenant).tn_charged + 1;
      note t (fun i -> Metrics.incr i.m_charged);
      (* A point answers any tier's future request. *)
      Hashtbl.replace t.fresh rq.rq_key { fe_outcome = outcome; fe_at = now }
  | Probe_driver.Shrunk _ ->
      t.s_charged <- t.s_charged + 1;
      tc.tc_charged <- tc.tc_charged + 1;
      (tenant_of t rq.rq_tenant).tn_charged <-
        (tenant_of t rq.rq_tenant).tn_charged + 1;
      note t (fun i -> Metrics.incr i.m_charged);
      (* A narrowed interval only answers this same tier again. *)
      Hashtbl.replace t.shrunk_fresh
        (rq.rq_tier, rq.rq_key)
        { fe_outcome = outcome; fe_at = now }
  | Probe_driver.Failed _ ->
      t.s_failed <- t.s_failed + 1;
      tc.tc_failed <- tc.tc_failed + 1;
      (* Failures are never cached: a later request retries. *)
      (tenant_of t rq.rq_tenant).tn_failed <-
        (tenant_of t rq.rq_tenant).tn_failed + 1;
      note t (fun i -> Metrics.incr i.m_failed));
  note t (fun i ->
      Metrics.observe i.h_wait (Float.max 0.0 (now -. rq.rq_enqueued_at)));
  List.iter (fun k -> k outcome) (List.rev rq.rq_waiters)

(* Emit a breaker transition onto the dispatching caller's trace sink.
   The sink is the *caller's* (typically stamped with that query's
   trace ID), so the flight recorder can attribute the trip to the
   query whose dispatch observed it. *)
let breaker_transition ~trace ~round before after =
  if before <> after && Trace.enabled trace then
    Trace.emit trace
      (Trace.Breaker { state = Circuit_breaker.state_name after; round })

(* One backend round.  Called with the lock held and [dispatching]
   false; returns with the lock held and [dispatching] false again,
   having broadcast.  The resolver itself runs unlocked — only the
   [dispatching] flag keeps it single-threaded.  [trace] is the
   dispatching caller's sink; breaker state changes this round causes
   are emitted there. *)
let dispatch_round ?(trace = Trace.null) t =
  t.dispatching <- true;
  let tier, batch = take_batch t in
  let round = t.rounds in
  t.rounds <- t.rounds + 1;
  let allowed =
    match t.breaker with
    | Some b ->
        let before = Circuit_breaker.state b in
        let allowed = Circuit_breaker.allow b ~round in
        breaker_transition ~trace ~round before (Circuit_breaker.state b);
        allowed
    | None -> true
  in
  (if not allowed then
     (* Refused round: burn no backend budget, degrade the batch.  The
        refused requests were admitted, so they count against capacity
        — the breaker protects the backend, not the budget. *)
     Array.iter
       (fun rq -> settle t rq (Probe_driver.Failed { attempts = 0 }))
       batch
   else begin
     Mutex.unlock t.lock;
     let outcomes =
       try Ok (t.backends.(tier).bk_resolve (Array.map (fun rq -> rq.rq_obj) batch))
       with e ->
         let bt = Printexc.get_raw_backtrace () in
         Error (e, bt)
     in
     Mutex.lock t.lock;
     match outcomes with
     | Ok outcomes ->
         if Array.length outcomes <> Array.length batch then begin
           Array.iter
             (fun rq -> settle t rq (Probe_driver.Failed { attempts = 0 }))
             batch;
           t.dispatching <- false;
           Condition.broadcast t.cond;
           invalid_arg "Probe_broker: resolver changed the batch length"
         end;
         t.s_batches <- t.s_batches + 1;
         t.tiers.(tier).tc_batches <- t.tiers.(tier).tc_batches + 1;
         note t (fun i ->
             Metrics.incr i.m_batches;
             Metrics.observe i.h_fill (float_of_int (Array.length batch)));
         let any_resolved = ref false in
         Array.iteri
           (fun i oc ->
             (match oc with
             | Probe_driver.Resolved _ | Probe_driver.Shrunk _ ->
                 any_resolved := true
             | Probe_driver.Failed _ -> ());
             settle t batch.(i) oc)
           outcomes;
         (match t.breaker with
         | Some b ->
             let before = Circuit_breaker.state b in
             if !any_resolved then Circuit_breaker.record_success b ~round
             else if Array.length batch > 0 then
               Circuit_breaker.record_failure b ~round;
             breaker_transition ~trace ~round before (Circuit_breaker.state b)
         | None -> ())
     | Error (e, bt) ->
         (* A raising resolver would strand every waiter; settle the
            batch as failed, restore the monitor, then re-raise in the
            dispatching client.  Backends should not raise — use
            outcome-based resolvers. *)
         Array.iter
           (fun rq -> settle t rq (Probe_driver.Failed { attempts = 0 }))
           batch;
         t.dispatching <- false;
         Condition.broadcast t.cond;
         Printexc.raise_with_backtrace e bt
   end);
  t.dispatching <- false;
  Condition.broadcast t.cond

(* ---- the client path --------------------------------------------- *)

let resolve_many ?trace ?(tier = 0) t ~tenant objects =
  if tier < 0 || tier >= Array.length t.backends then
    invalid_arg "Probe_broker.resolve_many: tier out of range";
  let n = Array.length objects in
  let results = Array.make n None in
  let remaining = ref n in
  Mutex.lock t.lock;
  let tn = tenant_of t tenant in
  let tc = t.tiers.(tier) in
  let now = t.clock () in
  Array.iteri
    (fun i o ->
      let k = t.key o in
      t.s_requests <- t.s_requests + 1;
      tc.tc_requests <- tc.tc_requests + 1;
      tn.tn_requests <- tn.tn_requests + 1;
      let deliver oc =
        results.(i) <- Some oc;
        decr remaining
      in
      (* Each arm below records the request *and* its outcome in one
         atomic metrics group — a concurrent snapshot never sees a
         request without its classification. *)
      match fresh_lookup t ~tier k now with
      | Some oc ->
          t.s_fresh <- t.s_fresh + 1;
          tc.tc_fresh <- tc.tc_fresh + 1;
          tn.tn_fresh <- tn.tn_fresh + 1;
          note_atomic t (fun ins ->
              Metrics.incr ins.m_requests;
              Metrics.incr ins.m_fresh);
          deliver oc
      | None -> (
          match Hashtbl.find_opt t.inflight (tier, k) with
          | Some rq ->
              (* Someone (possibly this very call) already wants this
                 object at this tier: one probe, fanned out. *)
              t.s_coalesced <- t.s_coalesced + 1;
              tc.tc_coalesced <- tc.tc_coalesced + 1;
              tn.tn_coalesced <- tn.tn_coalesced + 1;
              note_atomic t (fun ins ->
                  Metrics.incr ins.m_requests;
                  Metrics.incr ins.m_coalesced);
              rq.rq_waiters <- deliver :: rq.rq_waiters
          | None ->
              if not (admissible t tn) then begin
                (* Saturated: degrade, never block — the PR-5 outcome
                   the operator's fallback already understands. *)
                t.s_rejected <- t.s_rejected + 1;
                tc.tc_rejected <- tc.tc_rejected + 1;
                tn.tn_rejected <- tn.tn_rejected + 1;
                note_atomic t (fun ins ->
                    Metrics.incr ins.m_requests;
                    Metrics.incr ins.m_rejected);
                deliver (Probe_driver.Failed { attempts = 0 })
              end
              else begin
                t.s_admitted <- t.s_admitted + 1;
                tc.tc_admitted <- tc.tc_admitted + 1;
                tn.tn_admitted <- tn.tn_admitted + 1;
                note_atomic t (fun ins ->
                    Metrics.incr ins.m_requests;
                    Metrics.incr ins.m_admitted);
                let rq =
                  {
                    rq_obj = o;
                    rq_key = k;
                    rq_tier = tier;
                    rq_tenant = tenant;
                    rq_enqueued_at = now;
                    rq_waiters = [ deliver ];
                  }
                in
                Hashtbl.add t.inflight (tier, k) rq;
                Queue.add (tier, k) tn.tn_queue;
                t.queued <- t.queued + 1
              end))
    objects;
  (* Drive the monitor until every request of this call is settled:
     dispatch whenever the channel is free and work is queued (ours or
     anyone's — fair FIFO means helping drains the queue towards our
     own requests), otherwise wait for the in-flight round. *)
  (try
     while !remaining > 0 do
       if (not t.dispatching) && t.queued > 0 then dispatch_round ?trace t
       else Condition.wait t.cond t.lock
     done
   with e ->
     Mutex.unlock t.lock;
     raise e);
  Mutex.unlock t.lock;
  Array.map (function Some oc -> oc | None -> assert false) results

let client ?obs ?(tenant = "default") ?quota ?(tier = 0) t =
  (match quota with
  | Some q when q < 0 -> invalid_arg "Probe_broker.client: quota < 0"
  | _ -> ());
  if tier < 0 || tier >= Array.length t.backends then
    invalid_arg "Probe_broker.client: tier out of range";
  register_quota t tenant quota;
  (* [obs] here is the *query's* capability (its sink typically stamped
     with the query's trace context by [Engine.execute_one]): the
     driver's batch/failure events and any breaker transition observed
     while this client is the dispatcher carry that attribution. *)
  let trace = Option.map Obs.trace obs in
  Probe_driver.create_outcomes ?obs ~batch_size:t.backends.(tier).bk_batch
    (fun objects -> resolve_many ?trace ~tier t ~tenant objects)

(* A per-query cascade whose tier-[i] driver is a tier-pinned broker
   client: escalation decisions stay in the operator, sharing (and
   coalescing) each tier's backend across queries. *)
let cascade_client ?obs ?tenant ?quota ~(specs : Probe_tier.spec array) t =
  Probe_tier.validate specs;
  if Array.length specs <> Array.length t.backends then
    invalid_arg "Probe_broker.cascade_client: specs/backends length mismatch";
  Array.iteri
    (fun i (spec : Probe_tier.spec) ->
      if spec.Probe_tier.batch <> t.backends.(i).bk_batch then
        invalid_arg "Probe_broker.cascade_client: spec batch <> backend batch")
    specs;
  let drivers =
    Array.init (Array.length specs) (fun tier ->
        client ?obs ?tenant ?quota ~tier t)
  in
  Cascade.create ~specs drivers

let fetch ?(tenant = "default") ?tier t o =
  (resolve_many ?tier t ~tenant [| o |]).(0)

(* ---- introspection ------------------------------------------------ *)

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let is_fresh t k =
  locked t (fun () ->
      let now = t.clock () in
      let tiers = Array.length t.backends in
      let rec any i = i < tiers && (fresh_lookup t ~tier:i k now <> None || any (i + 1)) in
      any 0)

let invalidate t k =
  locked t (fun () ->
      Hashtbl.remove t.fresh k;
      Array.iteri (fun i _ -> Hashtbl.remove t.shrunk_fresh (i, k)) t.backends)
let pending t = locked t (fun () -> t.queued)

let saturated t =
  locked t (fun () ->
      match t.capacity with Some c -> t.s_admitted >= c | None -> false)

let stats t =
  locked t (fun () ->
      {
        requests = t.s_requests;
        admitted = t.s_admitted;
        charged = t.s_charged;
        failed = t.s_failed;
        coalesced = t.s_coalesced;
        fresh_hits = t.s_fresh;
        rejected = t.s_rejected;
        batches = t.s_batches;
      })

let by_tier t =
  locked t (fun () ->
      Array.map
        (fun tc ->
          {
            requests = tc.tc_requests;
            admitted = tc.tc_admitted;
            charged = tc.tc_charged;
            failed = tc.tc_failed;
            coalesced = tc.tc_coalesced;
            fresh_hits = tc.tc_fresh;
            rejected = tc.tc_rejected;
            batches = tc.tc_batches;
          })
        t.tiers)

let tenant_stats t =
  locked t (fun () ->
      Hashtbl.fold
        (fun name tn acc ->
          ( name,
            {
              requests = tn.tn_requests;
              admitted = tn.tn_admitted;
              charged = tn.tn_charged;
              failed = tn.tn_failed;
              coalesced = tn.tn_coalesced;
              fresh_hits = tn.tn_fresh;
              rejected = tn.tn_rejected;
              batches = 0;
            } )
          :: acc)
        t.tenants []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b))

let pp_stats ppf s =
  Format.fprintf ppf
    "requests %d (admitted %d, coalesced %d, fresh %d, rejected %d); charged \
     %d, failed %d, batches %d"
    s.requests s.admitted s.coalesced s.fresh_hits s.rejected s.charged
    s.failed s.batches
