(* Shared probe capacity behind a monitor (one mutex + one condition
   variable).  All broker state is touched only with the lock held; the
   backend resolver runs outside the lock, guarded by the [dispatching]
   flag so only one domain talks to the backend at a time.

   Liveness invariant: a request a client is waiting on is always
   either (a) in some tenant queue — and any waiting client whose
   requests are unresolved will become the dispatcher when no dispatch
   is in progress — or (b) part of the in-progress dispatch, which
   settles it and broadcasts.  A blocked client therefore never depends
   on another *blocked* client, whatever the lane count: the broker is
   deadlock-free even with more clients than domains. *)

type 'o request = {
  rq_obj : 'o;
  rq_key : int;
  rq_tenant : string;
  rq_enqueued_at : float;
  mutable rq_waiters : ('o Probe_driver.outcome -> unit) list;
      (* newest first; each writes one waiter's result slot *)
}

type 'o fresh_entry = { fe_outcome : 'o Probe_driver.outcome; fe_at : float }

type tenant = {
  tn_queue : int Queue.t;  (* keys, FIFO; requests live in [inflight] *)
  mutable tn_quota : int option;
  mutable tn_requests : int;
  mutable tn_admitted : int;
  mutable tn_charged : int;
  mutable tn_failed : int;
  mutable tn_coalesced : int;
  mutable tn_fresh : int;
  mutable tn_rejected : int;
}

type instruments = {
  m_registry : Metrics.t;  (* for grouping related increments *)
  m_requests : Metrics.counter;
  m_admitted : Metrics.counter;
  m_charged : Metrics.counter;
  m_failed : Metrics.counter;
  m_coalesced : Metrics.counter;
  m_fresh : Metrics.counter;
  m_rejected : Metrics.counter;
  m_batches : Metrics.counter;
  h_fill : Metrics.histogram;
  h_wait : Metrics.histogram;
}

type 'o t = {
  resolve : 'o array -> 'o Probe_driver.outcome array;
  key : 'o -> int;
  bk_batch_size : int;
  freshness : float;
  capacity : int option;
  breaker : Circuit_breaker.t option;
  clock : unit -> float;
  ins : instruments option;
  lock : Mutex.t;
  cond : Condition.t;
  fresh : (int, 'o fresh_entry) Hashtbl.t;
  inflight : (int, 'o request) Hashtbl.t;  (* queued or dispatching *)
  tenants : (string, tenant) Hashtbl.t;
  mutable tenant_order : string list;  (* registration order, reversed *)
  mutable rr : int;  (* round-robin start into [tenant_order] *)
  mutable queued : int;
  mutable dispatching : bool;
  mutable rounds : int;
  mutable s_requests : int;
  mutable s_admitted : int;
  mutable s_charged : int;
  mutable s_failed : int;
  mutable s_coalesced : int;
  mutable s_fresh : int;
  mutable s_rejected : int;
  mutable s_batches : int;
}

type stats = {
  requests : int;
  admitted : int;
  charged : int;
  failed : int;
  coalesced : int;
  fresh_hits : int;
  rejected : int;
  batches : int;
}

let create ?obs ?clock ?(freshness = infinity) ?capacity ?breaker
    ?(batch_size = 1) ~key resolve =
  if batch_size < 1 then invalid_arg "Probe_broker.create: batch_size < 1";
  if Float.is_nan freshness || freshness < 0.0 then
    invalid_arg "Probe_broker.create: freshness must be non-negative";
  (match capacity with
  | Some c when c < 0 -> invalid_arg "Probe_broker.create: capacity < 0"
  | _ -> ());
  let clock =
    match (clock, obs) with
    | Some c, _ -> c
    | None, Some o -> Obs.clock o
    | None, None -> Span.default_clock
  in
  let ins =
    Option.map
      (fun o ->
        {
          m_registry = Obs.metrics o;
          m_requests = Obs.counter o Obs.Keys.broker_requests;
          m_admitted = Obs.counter o Obs.Keys.broker_admitted;
          m_charged = Obs.counter o Obs.Keys.broker_charged;
          m_failed = Obs.counter o Obs.Keys.broker_failed;
          m_coalesced = Obs.counter o Obs.Keys.broker_coalesced;
          m_fresh = Obs.counter o Obs.Keys.broker_fresh_hits;
          m_rejected = Obs.counter o Obs.Keys.broker_rejected;
          m_batches = Obs.counter o Obs.Keys.broker_batches;
          h_fill = Obs.histogram o Obs.Keys.broker_batch_fill;
          h_wait = Obs.histogram o Obs.Keys.broker_queue_wait;
        })
      obs
  in
  {
    resolve;
    key;
    bk_batch_size = batch_size;
    freshness;
    capacity;
    breaker;
    clock;
    ins;
    lock = Mutex.create ();
    cond = Condition.create ();
    fresh = Hashtbl.create 256;
    inflight = Hashtbl.create 64;
    tenants = Hashtbl.create 8;
    tenant_order = [];
    rr = 0;
    queued = 0;
    dispatching = false;
    rounds = 0;
    s_requests = 0;
    s_admitted = 0;
    s_charged = 0;
    s_failed = 0;
    s_coalesced = 0;
    s_fresh = 0;
    s_rejected = 0;
    s_batches = 0;
  }

let of_source ?obs ?clock ?freshness ?capacity ?breaker ?batch_size ~key
    source =
  create ?obs ?clock ?freshness ?capacity ?breaker ?batch_size ~key
    (Probe_source.resolver source)

let batch_size t = t.bk_batch_size

(* ---- lock-held helpers ------------------------------------------- *)

let tenant_of t name =
  match Hashtbl.find_opt t.tenants name with
  | Some tn -> tn
  | None ->
      let tn =
        {
          tn_queue = Queue.create ();
          tn_quota = None;
          tn_requests = 0;
          tn_admitted = 0;
          tn_charged = 0;
          tn_failed = 0;
          tn_coalesced = 0;
          tn_fresh = 0;
          tn_rejected = 0;
        }
      in
      Hashtbl.add t.tenants name tn;
      t.tenant_order <- name :: t.tenant_order;
      tn

let register_quota t name quota =
  Mutex.lock t.lock;
  let tn = tenant_of t name in
  (match (quota, tn.tn_quota) with
  | None, _ -> ()
  | Some q, None -> tn.tn_quota <- Some q
  | Some q, Some q' -> tn.tn_quota <- Some (Stdlib.min q q'))
  (* the tightest registered quota wins *);
  Mutex.unlock t.lock

let fresh_lookup t k now =
  match Hashtbl.find_opt t.fresh k with
  | Some e when now -. e.fe_at < t.freshness -> Some e.fe_outcome
  | _ -> None

let admissible t tn =
  (match t.capacity with Some c -> t.s_admitted < c | None -> true)
  && match tn.tn_quota with Some q -> tn.tn_admitted < q | None -> true

let note t f = match t.ins with Some i -> f i | None -> ()

(* Related increments (a request plus its outcome) done as one
   indivisible step against the registry, so a concurrent
   [Metrics.snapshot] always sees the broker identity
   [requests = admitted + coalesced + fresh_hits + rejected] intact.
   Lock order is broker lock, then registry lock; metrics code never
   calls back into the broker, so no cycle. *)
let note_atomic t f =
  match t.ins with
  | Some i -> Metrics.atomically i.m_registry (fun () -> f i)
  | None -> ()

(* Pack one backend batch: drain tenant queues round-robin, one request
   per tenant per pass, starting after wherever the last dispatch
   stopped — per-tenant FIFO, cross-tenant fair. *)
let take_batch t =
  let order = Array.of_list (List.rev t.tenant_order) in
  let n = Array.length order in
  let batch = ref [] in
  let taken = ref 0 in
  let progress = ref true in
  while !taken < t.bk_batch_size && t.queued > 0 && !progress do
    progress := false;
    let i = ref 0 in
    while !taken < t.bk_batch_size && !i < n do
      let tn = Hashtbl.find t.tenants order.((t.rr + !i) mod n) in
      (match Queue.take_opt tn.tn_queue with
      | Some k ->
          let rq = Hashtbl.find t.inflight k in
          batch := rq :: !batch;
          incr taken;
          t.queued <- t.queued - 1;
          t.rr <- (t.rr + !i + 1) mod n;
          progress := true
      | None -> ());
      incr i
    done
  done;
  Array.of_list (List.rev !batch)

let settle t rq outcome =
  Hashtbl.remove t.inflight rq.rq_key;
  let now = t.clock () in
  (match outcome with
  | Probe_driver.Resolved _ ->
      t.s_charged <- t.s_charged + 1;
      (tenant_of t rq.rq_tenant).tn_charged <-
        (tenant_of t rq.rq_tenant).tn_charged + 1;
      note t (fun i -> Metrics.incr i.m_charged);
      (* Failures are never cached: a later request retries. *)
      Hashtbl.replace t.fresh rq.rq_key { fe_outcome = outcome; fe_at = now }
  | Probe_driver.Failed _ ->
      t.s_failed <- t.s_failed + 1;
      (tenant_of t rq.rq_tenant).tn_failed <-
        (tenant_of t rq.rq_tenant).tn_failed + 1;
      note t (fun i -> Metrics.incr i.m_failed));
  note t (fun i ->
      Metrics.observe i.h_wait (Float.max 0.0 (now -. rq.rq_enqueued_at)));
  List.iter (fun k -> k outcome) (List.rev rq.rq_waiters)

(* Emit a breaker transition onto the dispatching caller's trace sink.
   The sink is the *caller's* (typically stamped with that query's
   trace ID), so the flight recorder can attribute the trip to the
   query whose dispatch observed it. *)
let breaker_transition ~trace ~round before after =
  if before <> after && Trace.enabled trace then
    Trace.emit trace
      (Trace.Breaker { state = Circuit_breaker.state_name after; round })

(* One backend round.  Called with the lock held and [dispatching]
   false; returns with the lock held and [dispatching] false again,
   having broadcast.  The resolver itself runs unlocked — only the
   [dispatching] flag keeps it single-threaded.  [trace] is the
   dispatching caller's sink; breaker state changes this round causes
   are emitted there. *)
let dispatch_round ?(trace = Trace.null) t =
  t.dispatching <- true;
  let batch = take_batch t in
  let round = t.rounds in
  t.rounds <- t.rounds + 1;
  let allowed =
    match t.breaker with
    | Some b ->
        let before = Circuit_breaker.state b in
        let allowed = Circuit_breaker.allow b ~round in
        breaker_transition ~trace ~round before (Circuit_breaker.state b);
        allowed
    | None -> true
  in
  (if not allowed then
     (* Refused round: burn no backend budget, degrade the batch.  The
        refused requests were admitted, so they count against capacity
        — the breaker protects the backend, not the budget. *)
     Array.iter
       (fun rq -> settle t rq (Probe_driver.Failed { attempts = 0 }))
       batch
   else begin
     Mutex.unlock t.lock;
     let outcomes =
       try Ok (t.resolve (Array.map (fun rq -> rq.rq_obj) batch))
       with e ->
         let bt = Printexc.get_raw_backtrace () in
         Error (e, bt)
     in
     Mutex.lock t.lock;
     match outcomes with
     | Ok outcomes ->
         if Array.length outcomes <> Array.length batch then begin
           Array.iter
             (fun rq -> settle t rq (Probe_driver.Failed { attempts = 0 }))
             batch;
           t.dispatching <- false;
           Condition.broadcast t.cond;
           invalid_arg "Probe_broker: resolver changed the batch length"
         end;
         t.s_batches <- t.s_batches + 1;
         note t (fun i ->
             Metrics.incr i.m_batches;
             Metrics.observe i.h_fill (float_of_int (Array.length batch)));
         let any_resolved = ref false in
         Array.iteri
           (fun i oc ->
             (match oc with
             | Probe_driver.Resolved _ -> any_resolved := true
             | Probe_driver.Failed _ -> ());
             settle t batch.(i) oc)
           outcomes;
         (match t.breaker with
         | Some b ->
             let before = Circuit_breaker.state b in
             if !any_resolved then Circuit_breaker.record_success b ~round
             else if Array.length batch > 0 then
               Circuit_breaker.record_failure b ~round;
             breaker_transition ~trace ~round before (Circuit_breaker.state b)
         | None -> ())
     | Error (e, bt) ->
         (* A raising resolver would strand every waiter; settle the
            batch as failed, restore the monitor, then re-raise in the
            dispatching client.  Backends should not raise — use
            outcome-based resolvers. *)
         Array.iter
           (fun rq -> settle t rq (Probe_driver.Failed { attempts = 0 }))
           batch;
         t.dispatching <- false;
         Condition.broadcast t.cond;
         Printexc.raise_with_backtrace e bt
   end);
  t.dispatching <- false;
  Condition.broadcast t.cond

(* ---- the client path --------------------------------------------- *)

let resolve_many ?trace t ~tenant objects =
  let n = Array.length objects in
  let results = Array.make n None in
  let remaining = ref n in
  Mutex.lock t.lock;
  let tn = tenant_of t tenant in
  let now = t.clock () in
  Array.iteri
    (fun i o ->
      let k = t.key o in
      t.s_requests <- t.s_requests + 1;
      tn.tn_requests <- tn.tn_requests + 1;
      let deliver oc =
        results.(i) <- Some oc;
        decr remaining
      in
      (* Each arm below records the request *and* its outcome in one
         atomic metrics group — a concurrent snapshot never sees a
         request without its classification. *)
      match fresh_lookup t k now with
      | Some oc ->
          t.s_fresh <- t.s_fresh + 1;
          tn.tn_fresh <- tn.tn_fresh + 1;
          note_atomic t (fun ins ->
              Metrics.incr ins.m_requests;
              Metrics.incr ins.m_fresh);
          deliver oc
      | None -> (
          match Hashtbl.find_opt t.inflight k with
          | Some rq ->
              (* Someone (possibly this very call) already wants this
                 object: one probe, fanned out. *)
              t.s_coalesced <- t.s_coalesced + 1;
              tn.tn_coalesced <- tn.tn_coalesced + 1;
              note_atomic t (fun ins ->
                  Metrics.incr ins.m_requests;
                  Metrics.incr ins.m_coalesced);
              rq.rq_waiters <- deliver :: rq.rq_waiters
          | None ->
              if not (admissible t tn) then begin
                (* Saturated: degrade, never block — the PR-5 outcome
                   the operator's fallback already understands. *)
                t.s_rejected <- t.s_rejected + 1;
                tn.tn_rejected <- tn.tn_rejected + 1;
                note_atomic t (fun ins ->
                    Metrics.incr ins.m_requests;
                    Metrics.incr ins.m_rejected);
                deliver (Probe_driver.Failed { attempts = 0 })
              end
              else begin
                t.s_admitted <- t.s_admitted + 1;
                tn.tn_admitted <- tn.tn_admitted + 1;
                note_atomic t (fun ins ->
                    Metrics.incr ins.m_requests;
                    Metrics.incr ins.m_admitted);
                let rq =
                  {
                    rq_obj = o;
                    rq_key = k;
                    rq_tenant = tenant;
                    rq_enqueued_at = now;
                    rq_waiters = [ deliver ];
                  }
                in
                Hashtbl.add t.inflight k rq;
                Queue.add k tn.tn_queue;
                t.queued <- t.queued + 1
              end))
    objects;
  (* Drive the monitor until every request of this call is settled:
     dispatch whenever the channel is free and work is queued (ours or
     anyone's — fair FIFO means helping drains the queue towards our
     own requests), otherwise wait for the in-flight round. *)
  (try
     while !remaining > 0 do
       if (not t.dispatching) && t.queued > 0 then dispatch_round ?trace t
       else Condition.wait t.cond t.lock
     done
   with e ->
     Mutex.unlock t.lock;
     raise e);
  Mutex.unlock t.lock;
  Array.map (function Some oc -> oc | None -> assert false) results

let client ?obs ?(tenant = "default") ?quota t =
  (match quota with
  | Some q when q < 0 -> invalid_arg "Probe_broker.client: quota < 0"
  | _ -> ());
  register_quota t tenant quota;
  (* [obs] here is the *query's* capability (its sink typically stamped
     with the query's trace context by [Engine.execute_one]): the
     driver's batch/failure events and any breaker transition observed
     while this client is the dispatcher carry that attribution. *)
  let trace = Option.map Obs.trace obs in
  Probe_driver.create_outcomes ?obs ~batch_size:t.bk_batch_size
    (fun objects -> resolve_many ?trace t ~tenant objects)

let fetch ?(tenant = "default") t o = (resolve_many t ~tenant [| o |]).(0)

(* ---- introspection ------------------------------------------------ *)

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let is_fresh t k =
  locked t (fun () -> fresh_lookup t k (t.clock ()) <> None)

let invalidate t k = locked t (fun () -> Hashtbl.remove t.fresh k)
let pending t = locked t (fun () -> t.queued)

let saturated t =
  locked t (fun () ->
      match t.capacity with Some c -> t.s_admitted >= c | None -> false)

let stats t =
  locked t (fun () ->
      {
        requests = t.s_requests;
        admitted = t.s_admitted;
        charged = t.s_charged;
        failed = t.s_failed;
        coalesced = t.s_coalesced;
        fresh_hits = t.s_fresh;
        rejected = t.s_rejected;
        batches = t.s_batches;
      })

let tenant_stats t =
  locked t (fun () ->
      Hashtbl.fold
        (fun name tn acc ->
          ( name,
            {
              requests = tn.tn_requests;
              admitted = tn.tn_admitted;
              charged = tn.tn_charged;
              failed = tn.tn_failed;
              coalesced = tn.tn_coalesced;
              fresh_hits = tn.tn_fresh;
              rejected = tn.tn_rejected;
              batches = 0;
            } )
          :: acc)
        t.tenants []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b))

let pp_stats ppf s =
  Format.fprintf ppf
    "requests %d (admitted %d, coalesced %d, fresh %d, rejected %d); charged \
     %d, failed %d, batches %d"
    s.requests s.admitted s.coalesced s.fresh_hits s.rejected s.charged
    s.failed s.batches
