type state = Closed | Open | Half_open

type instruments = {
  g_state : Metrics.gauge;
  h_outage : Metrics.histogram;
}

type t = {
  trip_after : int;
  backoff_base : int;
  backoff_factor : float;
  max_backoff : int;
  ins : instruments option;
  mutable state : state;
  mutable consecutive : int;
  mutable backoff : int;  (* window length the next trip uses *)
  mutable opened_at : int;  (* round of the last trip *)
  mutable open_until : int;  (* first round allowed after a trip *)
  mutable trips : int;
}

let state_value = function Closed -> 0.0 | Half_open -> 1.0 | Open -> 2.0

let set_state t s =
  t.state <- s;
  match t.ins with
  | Some i -> Metrics.set i.g_state (state_value s)
  | None -> ()

let create ?obs ?(trip_after = 3) ?(backoff_base = 2) ?(backoff_factor = 2.0)
    ?(max_backoff = 64) () =
  if trip_after < 1 then invalid_arg "Circuit_breaker.create: trip_after < 1";
  if backoff_base < 1 then
    invalid_arg "Circuit_breaker.create: backoff_base < 1";
  if backoff_factor < 1.0 then
    invalid_arg "Circuit_breaker.create: backoff_factor < 1";
  if max_backoff < backoff_base then
    invalid_arg "Circuit_breaker.create: max_backoff < backoff_base";
  let ins =
    Option.map
      (fun o ->
        {
          g_state = Obs.gauge o Obs.Keys.fault_breaker_state;
          h_outage = Obs.histogram o Obs.Keys.fault_outage_rounds;
        })
      obs
  in
  let t =
    {
      trip_after;
      backoff_base;
      backoff_factor;
      max_backoff;
      ins;
      state = Closed;
      consecutive = 0;
      backoff = backoff_base;
      opened_at = 0;
      open_until = 0;
      trips = 0;
    }
  in
  set_state t Closed;
  t

let state t = t.state

let state_name = function
  | Closed -> "closed"
  | Open -> "open"
  | Half_open -> "half-open"

let allow t ~round =
  match t.state with
  | Closed | Half_open -> true
  | Open ->
      if round >= t.open_until then begin
        (* Backoff expired: let one recovery round through. *)
        set_state t Half_open;
        true
      end
      else false

let trip t ~round =
  t.trips <- t.trips + 1;
  t.opened_at <- round;
  t.open_until <- round + t.backoff;
  set_state t Open

let grow_backoff t =
  t.backoff <-
    min t.max_backoff
      (max (t.backoff + 1)
         (int_of_float (Float.round (float_of_int t.backoff *. t.backoff_factor))))

let record_success t ~round =
  (match (t.state, t.ins) with
  | (Open | Half_open), Some i ->
      (* The outage is over: record how long the breaker held traffic. *)
      Metrics.observe i.h_outage (float_of_int (round - t.opened_at))
  | _ -> ());
  t.consecutive <- 0;
  t.backoff <- t.backoff_base;
  set_state t Closed

let record_failure t ~round =
  t.consecutive <- t.consecutive + 1;
  match t.state with
  | Half_open ->
      (* The recovery probe failed too — re-open with a grown window. *)
      grow_backoff t;
      trip t ~round
  | Closed -> if t.consecutive >= t.trip_after then trip t ~round
  | Open -> ()

let consecutive_failures t = t.consecutive
let trips t = t.trips
let current_backoff t = t.backoff
