(** Deterministic, seeded fault injection.

    A {!spec} scripts the hostile conditions a run should survive —
    transient per-attempt failures, permanently unresolvable elements,
    latency spikes, and per-node outage windows — as pure data plus a
    seed.  An {!injector} is the mutable per-site instance of a spec:
    it derives its own SplitMix64 stream from the seed and the site
    name, so fault decisions are reproducible per seed and completely
    independent of the engine's own rng streams (attaching an injector
    never perturbs the query's decisions, only the probe outcomes).

    Sites consult the injector at well-defined points: {!fresh_element}
    once per element entering a probe/fetch lifecycle (this is where
    permanence is drawn), {!attempt} once per attempt on that element,
    {!latency} once per wakeup, {!outage_active} once per (node, round)
    pair.  A spec with every rate at zero and no outages is {!is_null}:
    callers are expected to skip injection entirely then, which keeps
    the zero-rate plan bit-for-bit identical to an unfaulted run. *)

(** A scripted outage: [node] answers nothing during rounds
    [\[from_round, from_round + rounds)]. *)
type outage = { node : int; from_round : int; rounds : int }

type spec = {
  seed : int;
  transient_rate : float;  (** P(one attempt fails, retry may succeed) *)
  permanent_rate : float;  (** P(an element never resolves) *)
  spike_rate : float;  (** P(a wakeup's latency is spiked) *)
  spike_factor : float;  (** latency multiplier when spiked *)
  max_retries : int;  (** retry budget injected sites should apply *)
  outages : outage list;
}

val make :
  ?seed:int ->
  ?transient_rate:float ->
  ?permanent_rate:float ->
  ?spike_rate:float ->
  ?spike_factor:float ->
  ?max_retries:int ->
  ?outages:outage list ->
  unit ->
  spec
(** All rates default to 0, [seed] to 0, [spike_factor] to 10,
    [max_retries] to 10, [outages] to [].
    @raise Invalid_argument on a rate outside [0, 1], a spike factor
    below 1, a negative retry budget, or an outage with a negative
    start or a non-positive length. *)

val none : spec
(** [make ()] — the null plan. *)

val is_null : spec -> bool
(** No failure mode can ever fire: all rates are 0 and there are no
    outages.  Sites should not build an injector for a null spec. *)

(** {2 Injectors} *)

type t
(** Mutable per-site injection state. *)

val injector_opt : ?obs:Obs.t -> site:string -> spec -> t option
(** [Some (injector ~site spec)], or [None] when {!is_null} — the
    recommended way to wire a spec into a site. *)

val injector : ?obs:Obs.t -> site:string -> spec -> t
(** A fresh injector whose stream is a pure function of
    [(spec.seed, site)]: two injectors built with equal arguments make
    identical decisions in identical call order.  [obs] registers the
    [qaq.fault.injected] counter (every injected attempt failure or
    latency spike) and observes each scripted outage's length into the
    [qaq.fault.outage_rounds] histogram. *)

val spec : t -> spec

type element
(** Per-element fault state: whether this element is permanently
    unresolvable. *)

val fresh_element : t -> element
(** Call once when an element enters a probe/fetch lifecycle; draws
    permanence with [permanent_rate]. *)

val element_permanent : element -> bool

val attempt : t -> element -> round:int -> bool
(** [true] when this attempt must fail: the element is permanent, or a
    transient failure fires.  Counts into [qaq.fault.injected]. *)

val outage_active : t -> node:int -> round:int -> bool
(** Whether a scripted outage covers [node] at [round] (pure — no rng
    draw, no counter). *)

val latency : t -> float -> float
(** The (possibly spiked) latency of one wakeup: multiplied by
    [spike_factor] with probability [spike_rate].  A spike counts into
    [qaq.fault.injected]. *)

val injected : t -> int
(** Fault decisions that fired so far (failures + spikes). *)
