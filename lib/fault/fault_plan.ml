type outage = { node : int; from_round : int; rounds : int }

type spec = {
  seed : int;
  transient_rate : float;
  permanent_rate : float;
  spike_rate : float;
  spike_factor : float;
  max_retries : int;
  outages : outage list;
}

let check_rate name r =
  if not (r >= 0.0 && r <= 1.0) then
    invalid_arg (Printf.sprintf "Fault_plan.make: %s outside [0, 1]" name)

let make ?(seed = 0) ?(transient_rate = 0.0) ?(permanent_rate = 0.0)
    ?(spike_rate = 0.0) ?(spike_factor = 10.0) ?(max_retries = 10)
    ?(outages = []) () =
  check_rate "transient_rate" transient_rate;
  check_rate "permanent_rate" permanent_rate;
  check_rate "spike_rate" spike_rate;
  if spike_factor < 1.0 then
    invalid_arg "Fault_plan.make: spike_factor < 1";
  if max_retries < 0 then invalid_arg "Fault_plan.make: max_retries < 0";
  List.iter
    (fun o ->
      if o.from_round < 0 || o.rounds < 1 then
        invalid_arg "Fault_plan.make: invalid outage window")
    outages;
  {
    seed;
    transient_rate;
    permanent_rate;
    spike_rate;
    spike_factor;
    max_retries;
    outages;
  }

let none = make ()

let is_null s =
  s.transient_rate = 0.0 && s.permanent_rate = 0.0 && s.spike_rate = 0.0
  && s.outages = []

type instruments = { m_injected : Metrics.counter }

type t = {
  plan : spec;
  rng : Rng.t;
  ins : instruments option;
  mutable injected : int;
}

(* The injector stream is a pure function of (seed, site): fold the site
   name into the seed with a simple multiplicative hash so two sites of
   one plan draw independent streams, reproducibly. *)
let site_seed seed site =
  String.fold_left
    (fun acc c -> (acc * 31) + Char.code c)
    (seed lxor 0x5DEECE66D)
    site

let injector ?obs ~site plan =
  let ins =
    Option.map
      (fun o ->
        let h = Obs.histogram o Obs.Keys.fault_outage_rounds in
        List.iter
          (fun w -> Metrics.observe h (float_of_int w.rounds))
          plan.outages;
        { m_injected = Obs.counter o Obs.Keys.fault_injected })
      obs
  in
  { plan; rng = Rng.create (site_seed plan.seed site); ins; injected = 0 }

let injector_opt ?obs ~site plan =
  if is_null plan then None else Some (injector ?obs ~site plan)

let spec t = t.plan

type element = { permanent : bool }

let fresh_element t =
  {
    permanent =
      t.plan.permanent_rate > 0.0
      && Rng.bernoulli t.rng t.plan.permanent_rate;
  }

let element_permanent e = e.permanent

let fired t =
  t.injected <- t.injected + 1;
  match t.ins with Some i -> Metrics.incr i.m_injected | None -> ()

let attempt t e ~round:_ =
  if e.permanent then begin
    fired t;
    true
  end
  else if t.plan.transient_rate > 0.0 && Rng.bernoulli t.rng t.plan.transient_rate
  then begin
    fired t;
    true
  end
  else false

let outage_active t ~node ~round =
  List.exists
    (fun w ->
      w.node = node && round >= w.from_round && round < w.from_round + w.rounds)
    t.plan.outages

let latency t l =
  if t.plan.spike_rate > 0.0 && Rng.bernoulli t.rng t.plan.spike_rate then begin
    fired t;
    l *. t.plan.spike_factor
  end
  else l

let injected t = t.injected
