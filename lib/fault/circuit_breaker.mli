(** A circuit breaker over probe rounds, with exponential backoff.

    Remote stores that are down fail {e fast} in real systems: after a
    few consecutive failed rounds the client stops hammering the store
    and waits, doubling the wait after each unsuccessful recovery
    attempt.  The breaker tracks rounds (the retry rounds of
    {!Sensor_net} / {!Probe_source}), not wall time, so its behaviour
    is deterministic and replayable.

    States: {e closed} (all traffic flows), {e open} (rounds are
    refused until the backoff window has passed), {e half-open} (the
    backoff expired; one probe round is allowed through — success
    closes the breaker, failure re-opens it with a doubled window). *)

type state = Closed | Open | Half_open

type t

val create :
  ?obs:Obs.t ->
  ?trip_after:int ->
  ?backoff_base:int ->
  ?backoff_factor:float ->
  ?max_backoff:int ->
  unit ->
  t
(** [trip_after] (default 3) consecutive failed rounds trip the
    breaker; the first open window is [backoff_base] (default 2)
    rounds, multiplied by [backoff_factor] (default 2) on every
    re-trip from half-open, capped at [max_backoff] (default 64)
    rounds.  [obs] keeps the [qaq.fault.breaker_state] gauge current
    (0 closed, 1 half-open, 2 open) and observes each completed open
    window's length into [qaq.fault.outage_rounds].
    @raise Invalid_argument if [trip_after < 1], [backoff_base < 1],
    [backoff_factor < 1] or [max_backoff < backoff_base]. *)

val state : t -> state

val state_name : state -> string
(** ["closed"] / ["open"] / ["half-open"] — the strings
    {!Trace.Breaker} events carry. *)

val allow : t -> round:int -> bool
(** Whether a probe round may run at [round].  Closed and half-open
    always allow; open refuses until [round] reaches the end of the
    backoff window, at which point the breaker moves to half-open and
    allows the recovery probe. *)

val record_success : t -> round:int -> unit
(** The round resolved at least one element: close the breaker and
    reset the consecutive-failure count and the backoff schedule. *)

val record_failure : t -> round:int -> unit
(** The round resolved nothing.  From half-open this re-trips
    immediately with a grown window; from closed it trips once
    [trip_after] consecutive failures accumulate. *)

val consecutive_failures : t -> int
val trips : t -> int
(** Times the breaker has tripped (including half-open re-trips). *)

val current_backoff : t -> int
(** The open-window length (rounds) the next trip will use. *)
