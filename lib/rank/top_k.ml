(* Tie order: record a beats record b when value(a) > value(b), or the
   values are equal and a's id is smaller.  Encoding a value-id pair as
   (value, -id) makes "a can end above b" a strict lexicographic
   comparison, so beater counts reduce to binary searches over sorted
   (value, -id) arrays. *)

let support (r : Interval_data.record) = Uncertain.support r.belief

let compare_key (v1, negid1) (v2, negid2) =
  let c = Float.compare v1 v2 in
  if c <> 0 then c else Int.compare negid1 negid2

(* Index of the first element strictly greater than [key]. *)
let upper_bound sorted key =
  let n = Array.length sorted in
  let rec search lo hi =
    if lo >= hi then lo
    else begin
      let mid = (lo + hi) / 2 in
      if compare_key sorted.(mid) key <= 0 then search (mid + 1) hi
      else search lo mid
    end
  in
  search 0 n

let classify ~k records =
  let n = Array.length records in
  if k <= 0 || k > n then invalid_arg "Top_k.classify: k out of range";
  let key_of value (r : Interval_data.record) = (value, -r.id) in
  let his =
    Array.map (fun r -> key_of (Interval.hi (support r)) r) records
  in
  let los =
    Array.map (fun r -> key_of (Interval.lo (support r)) r) records
  in
  Array.sort compare_key his;
  Array.sort compare_key los;
  Array.map
    (fun (r : Interval_data.record) ->
      let s = support r in
      let lo = Interval.lo s and hi = Interval.hi s in
      (* Others that could end above r: hi' beats r's minimum. *)
      let can_beat =
        n - upper_bound his (key_of lo r)
        - (if hi > lo then 1 else 0 (* r itself, when imprecise *))
      in
      (* Others certainly above r: lo' beats r's maximum. *)
      let must_beat = n - upper_bound los (key_of hi r) in
      if can_beat < k then Tvl.Yes
      else if must_beat >= k then Tvl.No
      else Tvl.Maybe)
    records

type verdict_counts = { certain : int; impossible : int; open_ : int }

let verdict_counts verdicts =
  Array.fold_left
    (fun acc v ->
      match (v : Tvl.t) with
      | Tvl.Yes -> { acc with certain = acc.certain + 1 }
      | Tvl.No -> { acc with impossible = acc.impossible + 1 }
      | Tvl.Maybe -> { acc with open_ = acc.open_ + 1 })
    { certain = 0; impossible = 0; open_ = 0 }
    verdicts

let exact_top_k ~k records =
  let n = Array.length records in
  if k <= 0 || k > n then invalid_arg "Top_k.exact_top_k: k out of range";
  let sorted = Array.copy records in
  Array.sort
    (fun (a : Interval_data.record) b ->
      let c = Float.compare b.truth a.truth in
      if c <> 0 then c else Int.compare a.id b.id)
    sorted;
  Array.to_list (Array.sub sorted 0 k)

type report = {
  answer : Interval_data.record list;
  guarantees : Quality.guarantees;
  requirements : Quality.requirements;
  counts : Cost_meter.counts;
  k : int;
  certified : int;
  exhausted : bool;
}

(* The k-th largest element of an unsorted float array (1-based k). *)
let kth_largest values k =
  let sorted = Array.copy values in
  Array.sort (fun a b -> Float.compare b a) sorted;
  sorted.(k - 1)

let run ?meter ~(requirements : Quality.requirements) ~k records =
  let n = Array.length records in
  if k <= 0 || k > n then invalid_arg "Top_k.run: k out of range";
  let meter = match meter with Some m -> m | None -> Cost_meter.create () in
  let counts_before = Cost_meter.counts meter in
  (* Rank needs every record's bounds: one read each. *)
  for _ = 1 to n do
    Cost_meter.charge_read meter
  done;
  let current = Array.copy records in
  let width i = Interval.width (support current.(i)) in
  let probe i =
    Cost_meter.charge_probe meter;
    current.(i) <- Interval_data.probe current.(i)
  in
  (* Members to emit: the smallest count whose guaranteed recall
     (emitted / k) meets the bound. *)
  let needed =
    int_of_float (Float.ceil ((requirements.recall *. float_of_int k) -. 1e-12))
  in
  let rec certify () =
    let verdicts = classify ~k current in
    let certified =
      Array.fold_left
        (fun acc v -> if Tvl.equal v Tvl.Yes then acc + 1 else acc)
        0 verdicts
    in
    if certified >= needed then (verdicts, certified)
    else begin
      (* Probe schedule: widest unresolved support intersecting the
         k-th-rank boundary band [k-th largest lo, k-th largest hi];
         any widest unresolved record if none intersects. *)
      let band_lo = kth_largest (Array.map (fun r -> Interval.lo (support r)) current) k in
      let band_hi = kth_largest (Array.map (fun r -> Interval.hi (support r)) current) k in
      let best = ref None in
      let consider i in_band =
        let w = width i in
        if w > 0.0 then
          match !best with
          | Some (_, best_band, best_w) ->
              if (in_band && not best_band) || (in_band = best_band && w > best_w)
              then best := Some (i, in_band, w)
          | None -> best := Some (i, in_band, w)
      in
      Array.iteri
        (fun i r ->
          let s = support r in
          let in_band =
            Interval.hi s >= band_lo && Interval.lo s <= band_hi
          in
          consider i in_band)
        current;
      match !best with
      | Some (i, _, _) ->
          probe i;
          certify ()
      | None ->
          (* Everything resolved: the tie order is total, so exactly k
             records are certified and the recall target (<= k) holds. *)
          (verdicts, certified)
    end
  in
  let verdicts, certified = certify () in
  (* Assemble the answer: [needed] certified members, preferring those
     already inside the laxity bound (emitting them is free); the rest
     are probed to laxity 0 before emission. *)
  let certified_indices = ref [] in
  Array.iteri
    (fun i v -> if Tvl.equal v Tvl.Yes then certified_indices := i :: !certified_indices)
    verdicts;
  let within, beyond =
    List.partition
      (fun i ->
        Uncertain.laxity current.(i).Interval_data.belief <= requirements.laxity)
      (List.rev !certified_indices)
  in
  let rec take n = function
    | [] -> []
    | _ when n <= 0 -> []
    | x :: rest -> x :: take (n - 1) rest
  in
  let chosen_within = take needed within in
  let chosen_beyond = take (needed - List.length chosen_within) beyond in
  List.iter probe chosen_beyond;
  let answer =
    List.map (fun i -> current.(i)) (chosen_within @ chosen_beyond)
    |> List.sort (fun (a : Interval_data.record) b ->
           let c =
             Float.compare (Interval.hi (support b)) (Interval.hi (support a))
           in
           if c <> 0 then c else Int.compare a.id b.id)
  in
  List.iter
    (fun (r : Interval_data.record) ->
      if Uncertain.laxity r.belief = 0.0 then
        Cost_meter.charge_write_precise meter
      else Cost_meter.charge_write_imprecise meter)
    answer;
  let max_laxity =
    List.fold_left
      (fun acc (r : Interval_data.record) ->
        Float.max acc (Uncertain.laxity r.belief))
      0.0 answer
  in
  let counts_after = Cost_meter.counts meter in
  {
    answer;
    guarantees =
      {
        Quality.precision = 1.0;
        recall = float_of_int (List.length answer) /. float_of_int k;
        max_laxity;
      };
    requirements;
    counts =
      {
        Cost_meter.reads = counts_after.reads - counts_before.reads;
        probes = counts_after.probes - counts_before.probes;
        batches = counts_after.batches - counts_before.batches;
        writes_imprecise =
          counts_after.writes_imprecise - counts_before.writes_imprecise;
        writes_precise =
          counts_after.writes_precise - counts_before.writes_precise;
      };
    k;
    certified;
    exhausted = Array.for_all (fun i -> width i = 0.0) (Array.init n Fun.id);
  }
