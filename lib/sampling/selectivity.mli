(** Pre-query estimation from a random sample (paper §4.2, §4.2.1).

    Before evaluating a Quality-Aware Query, the optimizer needs
    - the fractions [f_y], [f_m] of YES and MAYBE objects (§4.2.1), and
    - an estimate of the density [g(s(o), l(o))] on the decision plane
      (§4.2) — either assumed uniform or estimated here as histograms.

    The paper estimates both from a 1 % random sample of [T]; these
    functions do the same from any sample the caller provides. *)

type estimate = {
  f_y : float;  (** estimated fraction of YES objects *)
  f_m : float;  (** estimated fraction of MAYBE objects *)
  max_laxity : float;  (** the L used for histogram ranges *)
  sample_size : int;
  yes_laxity : Histogram.Hist1d.t;  (** laxity distribution of YES objects *)
  maybe_plane : Histogram.Hist2d.t;
      (** joint (s, l) distribution of MAYBE objects *)
}

val estimate :
  instance:'o Operator.instance ->
  ?pool:Domain_pool.t ->
  ?laxity_cap:float ->
  ?laxity_bins:int ->
  ?success_bins:int ->
  'o array ->
  estimate
(** [estimate ~instance sample] classifies every sample object and builds
    the estimate.  [laxity_cap] fixes L when it is known a priori (the
    paper's setting); by default the sample maximum is used.  Histogram
    resolutions default to 20 bins per axis.

    [pool] fans the per-object classify/laxity/success evaluation out
    across domains; the histogram accumulation itself stays sequential in
    sample order (float summation is order-sensitive), so the result is
    bit-for-bit identical with and without a pool.

    @raise Invalid_argument on an empty sample. *)

val bernoulli_sample : Rng.t -> fraction:float -> 'o array -> 'o array
(** Each object independently enters the sample with the given
    probability — the paper's "random sample of size 1 %".
    @raise Invalid_argument if the fraction is outside [0, 1]. *)
