type estimate = {
  f_y : float;
  f_m : float;
  max_laxity : float;
  sample_size : int;
  yes_laxity : Histogram.Hist1d.t;
  maybe_plane : Histogram.Hist2d.t;
}

let estimate ~(instance : 'o Operator.instance) ?pool ?laxity_cap
    ?(laxity_bins = 20) ?(success_bins = 20) sample =
  let n = Array.length sample in
  if n = 0 then invalid_arg "Selectivity.estimate: empty sample";
  (* Per-object evaluation is pure, so it may fan out across domains; the
     histogram accumulation below stays sequential in sample order because
     float summation is not associative — this keeps the pooled estimate
     bit-for-bit equal to the sequential one. *)
  let triple o =
    let v = instance.classify o in
    let l = instance.laxity o in
    let s = match v with Tvl.Maybe -> instance.success o | _ -> 0.0 in
    (v, l, s)
  in
  let triples =
    match pool with
    | Some p when Domain_pool.domains p > 1 -> Domain_pool.parallel_map p triple sample
    | _ -> Array.map triple sample
  in
  let laxities = Array.map (fun (_, l, _) -> l) triples in
  let cap =
    match laxity_cap with
    | Some l ->
        if not (Float.is_finite l && l > 0.0) then
          invalid_arg "Selectivity.estimate: laxity_cap must be positive";
        l
    | None ->
        let m = Array.fold_left Float.max 0.0 laxities in
        if m > 0.0 then m else 1.0
  in
  let yes_laxity = Histogram.Hist1d.create ~lo:0.0 ~hi:cap ~bins:laxity_bins in
  let maybe_plane =
    Histogram.Hist2d.create ~x_lo:0.0 ~x_hi:1.0 ~x_bins:success_bins ~y_lo:0.0
      ~y_hi:cap ~y_bins:laxity_bins
  in
  let yes = ref 0 and maybe = ref 0 in
  Array.iter
    (fun (v, l, s) ->
      match v with
      | Tvl.Yes ->
          incr yes;
          Histogram.Hist1d.add yes_laxity l
      | Tvl.Maybe ->
          incr maybe;
          Histogram.Hist2d.add maybe_plane ~x:s ~y:l
      | Tvl.No -> ())
    triples;
  let fn = float_of_int n in
  {
    f_y = float_of_int !yes /. fn;
    f_m = float_of_int !maybe /. fn;
    max_laxity = cap;
    sample_size = n;
    yes_laxity;
    maybe_plane;
  }

let bernoulli_sample rng ~fraction objects =
  if not (fraction >= 0.0 && fraction <= 1.0) then
    invalid_arg "Selectivity.bernoulli_sample: fraction outside [0, 1]";
  Array.of_list
    (Array.fold_right
       (fun o acc -> if Rng.bernoulli rng fraction then o :: acc else acc)
       objects [])
