(** Equi-width histograms used as density estimates.

    {!Hist1d} estimates marginal distributions (e.g. laxity of YES
    objects); {!Hist2d} estimates the joint [g(s(o), l(o))] density over
    MAYBE objects that §4.2 needs to size the decision regions.  Both
    support mass queries over sub-ranges with fractional bins (the mass
    inside a bin is assumed uniform), plus a first moment along the first
    axis for the expected probe success of a region. *)

module Hist1d : sig
  type t

  val create : lo:float -> hi:float -> bins:int -> t
  (** @raise Invalid_argument if [lo >= hi] or [bins < 1]. *)

  val add : t -> float -> unit
  (** Values outside [\[lo, hi\]] are clamped into the boundary bins.
      @raise Invalid_argument on a non-finite value (a NaN would
      otherwise corrupt bin 0). *)

  val count : t -> int

  val mass_above : t -> float -> float
  (** Fraction of observations with value [> x] (fractional bins; 0 when
      the histogram is empty). *)

  val mass_between : t -> float -> float -> float
  (** Fraction with value in [\[a, b\]]; 0 when empty or [a > b]. *)

  val mean : t -> float
  (** Approximate mean (bin midpoints); 0 when empty. *)
end

module Hist2d : sig
  type t

  val create :
    x_lo:float -> x_hi:float -> x_bins:int ->
    y_lo:float -> y_hi:float -> y_bins:int -> t

  val add : t -> x:float -> y:float -> unit
  (** @raise Invalid_argument on a non-finite coordinate. *)

  val count : t -> int

  type region_stats = {
    mass : float;  (** fraction of observations in the region *)
    mean_x : float;  (** mean of the x coordinate within it (0 if empty) *)
  }

  val region : t -> x_min:float -> y_min:float -> y_max:float -> region_stats
  (** Observations with [x > x_min] and [y_min < y <= y_max], with
      fractional boundary bins.  Exactly the region shape of the paper's
      decision plane: [x] plays [s(o)], [y] plays [l(o)]. *)
end
