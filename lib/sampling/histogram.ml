let clamp01 x = Float.min 1.0 (Float.max 0.0 x)

module Hist1d = struct
  type t = {
    lo : float;
    hi : float;
    bins : int;
    width : float;
    counts : int array;
    mutable total : int;
  }

  let create ~lo ~hi ~bins =
    if lo >= hi then invalid_arg "Hist1d.create: lo >= hi";
    if bins < 1 then invalid_arg "Hist1d.create: bins < 1";
    {
      lo;
      hi;
      bins;
      width = (hi -. lo) /. float_of_int bins;
      counts = Array.make bins 0;
      total = 0;
    }

  let bin_of t x =
    (* int_of_float on NaN is 0: a NaN sample would silently land in bin
       0 and corrupt the density the optimizer integrates over. *)
    if not (Float.is_finite x) then invalid_arg "Hist1d.bin_of: non-finite value";
    let i = int_of_float ((x -. t.lo) /. t.width) in
    Stdlib.max 0 (Stdlib.min (t.bins - 1) i)

  let add t x =
    t.counts.(bin_of t x) <- t.counts.(bin_of t x) + 1;
    t.total <- t.total + 1

  let count t = t.total

  let bin_range t i =
    let lo = t.lo +. (float_of_int i *. t.width) in
    (lo, lo +. t.width)

  (* Fraction of bin [i] intersecting (a, b], assuming uniform mass. *)
  let overlap t i a b =
    let lo, hi = bin_range t i in
    let l = Float.max lo a and h = Float.min hi b in
    if h <= l then 0.0 else (h -. l) /. t.width

  let mass_between t a b =
    if t.total = 0 || a > b then 0.0
    else begin
      let acc = ref 0.0 in
      for i = 0 to t.bins - 1 do
        acc := !acc +. (float_of_int t.counts.(i) *. overlap t i a b)
      done;
      clamp01 (!acc /. float_of_int t.total)
    end

  let mass_above t x = mass_between t x t.hi

  let mean t =
    if t.total = 0 then 0.0
    else begin
      let acc = ref 0.0 in
      for i = 0 to t.bins - 1 do
        let lo, hi = bin_range t i in
        acc := !acc +. (float_of_int t.counts.(i) *. ((lo +. hi) /. 2.0))
      done;
      !acc /. float_of_int t.total
    end
end

module Hist2d = struct
  type cell = { mutable count : int; mutable sum_x : float }

  type t = {
    x_lo : float;
    x_hi : float;
    x_bins : int;
    x_width : float;
    y_lo : float;
    y_hi : float;
    y_bins : int;
    y_width : float;
    cells : cell array array;  (* [x][y] *)
    mutable total : int;
  }

  let create ~x_lo ~x_hi ~x_bins ~y_lo ~y_hi ~y_bins =
    if x_lo >= x_hi || y_lo >= y_hi then invalid_arg "Hist2d.create: bounds";
    if x_bins < 1 || y_bins < 1 then invalid_arg "Hist2d.create: bins";
    {
      x_lo;
      x_hi;
      x_bins;
      x_width = (x_hi -. x_lo) /. float_of_int x_bins;
      y_lo;
      y_hi;
      y_bins;
      y_width = (y_hi -. y_lo) /. float_of_int y_bins;
      cells =
        Array.init x_bins (fun _ ->
            Array.init y_bins (fun _ -> { count = 0; sum_x = 0.0 }));
      total = 0;
    }

  let index lo width bins v =
    if not (Float.is_finite v) then invalid_arg "Hist2d.index: non-finite value";
    let i = int_of_float ((v -. lo) /. width) in
    Stdlib.max 0 (Stdlib.min (bins - 1) i)

  let add t ~x ~y =
    let cx = index t.x_lo t.x_width t.x_bins x in
    let cy = index t.y_lo t.y_width t.y_bins y in
    let cell = t.cells.(cx).(cy) in
    cell.count <- cell.count + 1;
    cell.sum_x <- cell.sum_x +. x;
    t.total <- t.total + 1

  let count t = t.total

  type region_stats = { mass : float; mean_x : float }

  let region t ~x_min ~y_min ~y_max =
    if t.total = 0 then { mass = 0.0; mean_x = 0.0 }
    else begin
      let mass = ref 0.0 and weighted_x = ref 0.0 in
      for cx = 0 to t.x_bins - 1 do
        let x_cell_lo = t.x_lo +. (float_of_int cx *. t.x_width) in
        let x_cell_hi = x_cell_lo +. t.x_width in
        let x_frac = clamp01 ((x_cell_hi -. Float.max x_min x_cell_lo) /. t.x_width) in
        if x_frac > 0.0 then
          for cy = 0 to t.y_bins - 1 do
            let cell = t.cells.(cx).(cy) in
            if cell.count > 0 then begin
              let y_cell_lo = t.y_lo +. (float_of_int cy *. t.y_width) in
              let y_cell_hi = y_cell_lo +. t.y_width in
              let y_overlap =
                Float.min y_cell_hi y_max -. Float.max y_cell_lo y_min
              in
              let y_frac = clamp01 (y_overlap /. t.y_width) in
              if y_frac > 0.0 then begin
                let m = float_of_int cell.count *. x_frac *. y_frac in
                (* Mean x within the region slice: the cell's empirical
                   mean when fully inside, the midpoint of the clipped
                   sub-range when the x_min cut crosses the cell. *)
                let mx =
                  if x_frac >= 1.0 then cell.sum_x /. float_of_int cell.count
                  else (Float.max x_min x_cell_lo +. x_cell_hi) /. 2.0
                in
                mass := !mass +. m;
                weighted_x := !weighted_x +. (m *. mx)
              end
            end
          done
      done;
      if !mass = 0.0 then { mass = 0.0; mean_x = 0.0 }
      else
        {
          mass = clamp01 (!mass /. float_of_int t.total);
          mean_x = !weighted_x /. !mass;
        }
    end
end
