exception Parse_error of { offset : int; reason : string }

let () =
  Printexc.register_printer (function
    | Parse_error { offset; reason } ->
        Some (Printf.sprintf "Csv.Parse_error at offset %d: %s" offset reason)
    | _ -> None)

let needs_quoting s =
  String.exists (function ',' | '"' | '\n' | '\r' -> true | _ -> false) s

let escape_field s =
  if needs_quoting s then begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else s

let encode_row fields = String.concat "," (List.map escape_field fields)

let encode rows =
  let buf = Buffer.create 1024 in
  List.iter
    (fun row ->
      Buffer.add_string buf (encode_row row);
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

(* One-pass parser over the full text, so quoted fields may span
   lines. *)
let decode text =
  let rows = ref [] and row = ref [] and field = Buffer.create 32 in
  let flush_field () =
    row := Buffer.contents field :: !row;
    Buffer.clear field
  in
  let flush_row () =
    flush_field ();
    rows := List.rev !row :: !rows;
    row := []
  in
  let n = String.length text in
  let rec plain i =
    if i >= n then (if Buffer.length field > 0 || !row <> [] then flush_row ())
    else
      match text.[i] with
      | ',' ->
          flush_field ();
          plain (i + 1)
      | '\n' ->
          flush_row ();
          plain (i + 1)
      | '\r' -> plain (i + 1)
      | '"' when Buffer.length field = 0 -> quoted ~start:i (i + 1)
      | c ->
          Buffer.add_char field c;
          plain (i + 1)
  and quoted ~start i =
    if i >= n then
      raise (Parse_error { offset = start; reason = "unterminated quoted field" })
    else
      match text.[i] with
      | '"' ->
          if i + 1 < n && text.[i + 1] = '"' then begin
            Buffer.add_char field '"';
            quoted ~start (i + 2)
          end
          else after_quote (i + 1)
      | c ->
          Buffer.add_char field c;
          quoted ~start (i + 1)
  and after_quote i =
    if i >= n then flush_row ()
    else
      match text.[i] with
      | ',' ->
          flush_field ();
          plain (i + 1)
      | '\n' ->
          flush_row ();
          plain (i + 1)
      | '\r' -> after_quote (i + 1)
      | c ->
          (* Tolerate junk after a closing quote by keeping it. *)
          Buffer.add_char field c;
          plain (i + 1)
  in
  plain 0;
  List.rev !rows

let decode_row line =
  match decode line with [] -> [] | row :: _ -> row

let write_file path rows =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (encode rows))

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let len = in_channel_length ic in
      decode (really_input_string ic len))
