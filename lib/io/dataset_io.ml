let float_to_string x = Printf.sprintf "%.17g" x

let float_of_field name s =
  match float_of_string_opt s with
  | Some f -> f
  | None -> failwith (Printf.sprintf "Dataset_io: bad float in %s: %S" name s)

let int_of_field name s =
  match int_of_string_opt s with
  | Some i -> i
  | None -> failwith (Printf.sprintf "Dataset_io: bad int in %s: %S" name s)

let bool_to_field b = if b then "1" else "0"

let bool_of_field name = function
  | "1" -> true
  | "0" -> false
  | s -> failwith (Printf.sprintf "Dataset_io: bad bool in %s: %S" name s)

(* ---- synthetic objects -------------------------------------------- *)

let synthetic_header =
  [ "id"; "label"; "laxity"; "success"; "probe_yes"; "resolved" ]

let label_to_field = Tvl.to_string

let label_of_field = function
  | "YES" -> Tvl.Yes
  | "NO" -> Tvl.No
  | "MAYBE" -> Tvl.Maybe
  | s -> failwith (Printf.sprintf "Dataset_io: bad label %S" s)

let synthetic_to_rows objects =
  synthetic_header
  :: (Array.to_list objects
     |> List.map (fun (o : Synthetic.obj) ->
            [
              string_of_int o.id;
              label_to_field o.label;
              float_to_string o.laxity;
              float_to_string o.success;
              bool_to_field o.probe_yes;
              bool_to_field o.resolved;
            ]))

let check_header expected = function
  | header :: rows ->
      if header <> expected then
        failwith
          (Printf.sprintf "Dataset_io: unexpected header %s"
             (String.concat "," header));
      rows
  | [] -> failwith "Dataset_io: empty file"

let synthetic_of_rows rows =
  check_header synthetic_header rows
  |> List.map (function
       | [ id; label; laxity; success; probe_yes; resolved ] ->
           Synthetic.make ~id:(int_of_field "id" id)
             ~label:(label_of_field label)
             ~laxity:(float_of_field "laxity" laxity)
             ~success:(float_of_field "success" success)
             ~probe_yes:(bool_of_field "probe_yes" probe_yes)
             ~resolved:(bool_of_field "resolved" resolved)
       | row ->
           failwith
             (Printf.sprintf "Dataset_io: bad synthetic row arity %d"
                (List.length row)))
  |> Array.of_list

let write_synthetic path objects = Csv.write_file path (synthetic_to_rows objects)
let read_synthetic path = synthetic_of_rows (Csv.read_file path)

(* ---- interval-data records ---------------------------------------- *)

let records_header = [ "id"; "belief_lo"; "belief_hi"; "truth" ]

let records_to_rows records =
  records_header
  :: (Array.to_list records
     |> List.map (fun (r : Interval_data.record) ->
            let support =
              match r.belief with
              | Uncertain.Exact x -> Interval.point x
              | Uncertain.Interval i -> i
              | Uncertain.Gaussian _ ->
                  invalid_arg
                    "Dataset_io.records_to_rows: Gaussian beliefs are not \
                     representable in the flat schema"
            in
            [
              string_of_int r.id;
              float_to_string (Interval.lo support);
              float_to_string (Interval.hi support);
              float_to_string r.truth;
            ]))

let records_of_rows rows =
  check_header records_header rows
  |> List.map (function
       | [ id; lo; hi; truth ] ->
           let lo = float_of_field "belief_lo" lo in
           let hi = float_of_field "belief_hi" hi in
           let belief =
             if lo = hi then Uncertain.exact lo else Uncertain.interval lo hi
           in
           {
             Interval_data.id = int_of_field "id" id;
             belief;
             truth = float_of_field "truth" truth;
           }
       | row ->
           failwith
             (Printf.sprintf "Dataset_io: bad record row arity %d"
                (List.length row)))
  |> Array.of_list

let write_records path records = Csv.write_file path (records_to_rows records)
let read_records path = records_of_rows (Csv.read_file path)

(* ---- columnar chunk files (QCOL) ---------------------------------- *)

(* Layout (all integers and float bit patterns little-endian):

     magic        8 bytes   "QCOLv001"
     length       int64     row count
     chunk_size   int64
     zones        17 bytes per chunk: present byte, hull lo, hull hi
     chunks       rows in storage order, chunk by chunk:
                    len x int64 id, len x float64 lo,
                    len x float64 hi, len x float64 truth

   Every row costs exactly 32 bytes in the chunk region, so the byte
   offset of chunk [c] is computable from the header alone — the
   property that lets [open_columnar] fetch (and prune) chunks without
   ever scanning the file. *)

exception Corrupt_columnar of { path : string; reason : string }

let () =
  Printexc.register_printer (function
    | Corrupt_columnar { path; reason } ->
        Some (Printf.sprintf "Corrupt_columnar(%S: %s)" path reason)
    | _ -> None)

let qcol_magic = "QCOLv001"
let qcol_row_bytes = 32
let qcol_zone_bytes = 17

let corrupt path fmt =
  Printf.ksprintf (fun reason -> raise (Corrupt_columnar { path; reason })) fmt

let qcol_header_bytes ~chunks = String.length qcol_magic + 16 + (chunks * qcol_zone_bytes)

let buf_add_int64 buf i = Buffer.add_int64_le buf i
let buf_add_float buf f = Buffer.add_int64_le buf (Int64.bits_of_float f)

let save_columnar path store =
  let length = Column_store.length store in
  let chunk_size = Column_store.chunk_size store in
  let chunks = Column_store.chunk_count store in
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      let buf = Buffer.create 65536 in
      Buffer.add_string buf qcol_magic;
      buf_add_int64 buf (Int64.of_int length);
      buf_add_int64 buf (Int64.of_int chunk_size);
      Array.iter
        (fun zone ->
          match zone with
          | Some hull ->
              Buffer.add_char buf '\001';
              buf_add_float buf (Interval.lo hull);
              buf_add_float buf (Interval.hi hull)
          | None ->
              Buffer.add_char buf '\000';
              buf_add_float buf 0.0;
              buf_add_float buf 0.0)
        (Column_store.zones store);
      Buffer.output_buffer oc buf;
      for c = 0 to chunks - 1 do
        Buffer.clear buf;
        let ch = Column_store.chunk store c in
        let len = ch.Column_store.len in
        for i = 0 to len - 1 do
          buf_add_int64 buf (Int64.of_int ch.Column_store.ids.(i))
        done;
        for i = 0 to len - 1 do
          buf_add_float buf (Bigarray.Array1.get ch.Column_store.lo i)
        done;
        for i = 0 to len - 1 do
          buf_add_float buf (Bigarray.Array1.get ch.Column_store.hi i)
        done;
        for i = 0 to len - 1 do
          buf_add_float buf (Bigarray.Array1.get ch.Column_store.truth i)
        done;
        Buffer.output_buffer oc buf
      done)

type columnar_file = {
  qcol_path : string;
  ic : in_channel;
  qcol_store : Column_store.t;
  qcol_pool : Column_store.chunk Buffer_pool.t;
  closed : bool ref;
}

let read_exactly file path ~at ~len =
  let b = Bytes.create len in
  (try
     seek_in file at;
     really_input file b 0 len
   with End_of_file -> corrupt path "truncated file: wanted %d bytes at %d" len at);
  b

let bytes_float b off = Int64.float_of_bits (Bytes.get_int64_le b off)

let decode_chunk ~path ~ic ~chunk_size ~length c =
  let base = c * chunk_size in
  let len = Stdlib.min chunk_size (length - base) in
  let chunks = if length = 0 then 0 else ((length - 1) / chunk_size) + 1 in
  let at = qcol_header_bytes ~chunks + (base * qcol_row_bytes) in
  let b = read_exactly ic path ~at ~len:(len * qcol_row_bytes) in
  let ids = Array.make len 0 in
  let lo = Bigarray.(Array1.create float64 c_layout len) in
  let hi = Bigarray.(Array1.create float64 c_layout len) in
  let truth = Bigarray.(Array1.create float64 c_layout len) in
  for i = 0 to len - 1 do
    let id = Bytes.get_int64_le b (i * 8) in
    (match Int64.unsigned_to_int id with
    | Some v -> ids.(i) <- v
    | None -> corrupt path "chunk %d: id out of range" c);
    let l = bytes_float b ((len + i) * 8) in
    let h = bytes_float b (((2 * len) + i) * 8) in
    if not (Float.is_finite l && Float.is_finite h) || l > h then
      corrupt path "chunk %d row %d: bad support [%h, %h]" c i l h;
    Bigarray.Array1.set lo i l;
    Bigarray.Array1.set hi i h;
    Bigarray.Array1.set truth i (bytes_float b (((3 * len) + i) * 8))
  done;
  { Column_store.base; len; ids; lo; hi; truth }

let open_columnar ?obs ?(pool_capacity = 8) path =
  let ic = open_in_bin path in
  match
    let magic =
      try really_input_string ic (String.length qcol_magic)
      with End_of_file -> corrupt path "truncated file: no magic"
    in
    if magic <> qcol_magic then corrupt path "bad magic %S" magic;
    let header = read_exactly ic path ~at:(String.length qcol_magic) ~len:16 in
    let length =
      match Int64.unsigned_to_int (Bytes.get_int64_le header 0) with
      | Some v -> v
      | None -> corrupt path "length out of range"
    in
    let chunk_size =
      match Int64.unsigned_to_int (Bytes.get_int64_le header 8) with
      | Some v when v >= 1 -> v
      | Some v -> corrupt path "chunk_size %d < 1" v
      | None -> corrupt path "chunk_size out of range"
    in
    let chunks = if length = 0 then 0 else ((length - 1) / chunk_size) + 1 in
    let expected = qcol_header_bytes ~chunks + (length * qcol_row_bytes) in
    if in_channel_length ic <> expected then
      corrupt path "wrong size: %d bytes, layout needs %d" (in_channel_length ic)
        expected;
    let zb =
      read_exactly ic path ~at:(String.length qcol_magic + 16)
        ~len:(chunks * qcol_zone_bytes)
    in
    let zones =
      Array.init chunks (fun c ->
          let off = c * qcol_zone_bytes in
          match Bytes.get zb off with
          | '\000' -> None
          | '\001' ->
              let l = bytes_float zb (off + 1) in
              let h = bytes_float zb (off + 9) in
              if not (Float.is_finite l && Float.is_finite h) || l > h then
                corrupt path "chunk %d: bad zone hull [%h, %h]" c l h;
              Some (Interval.make l h)
          | b -> corrupt path "chunk %d: bad zone presence byte %C" c b)
    in
    let pool = Buffer_pool.create ?obs ~capacity:pool_capacity () in
    let closed = ref false in
    let fetch c =
      if !closed then invalid_arg "Dataset_io: columnar file is closed";
      Buffer_pool.fetch pool c (decode_chunk ~path ~ic ~chunk_size ~length)
    in
    let store = Column_store.of_fetch ~length ~chunk_size ~zones fetch in
    { qcol_path = path; ic; qcol_store = store; qcol_pool = pool; closed }
  with
  | t -> t
  | exception e ->
      close_in_noerr ic;
      raise e

let columnar_store t = t.qcol_store
let columnar_pool t = t.qcol_pool
let columnar_path t = t.qcol_path

let close_columnar t =
  if not !(t.closed) then begin
    t.closed := true;
    close_in_noerr t.ic
  end

let with_columnar ?obs ?pool_capacity path f =
  let t = open_columnar ?obs ?pool_capacity path in
  Fun.protect ~finally:(fun () -> close_columnar t) (fun () -> f t.qcol_store)
