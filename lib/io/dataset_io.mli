(** Persistence for generated workloads.

    Serialises the §5.2 synthetic objects and interval-data records to
    CSV so that a workload can be generated once, archived, and replayed
    across runs or shared with other tools.  Round-tripping is exact for
    the label/flag fields and up to shortest-round-trip float printing
    for the numeric ones. *)

val synthetic_header : string list

val synthetic_to_rows : Synthetic.obj array -> string list list
(** Header row included. *)

val synthetic_of_rows : string list list -> Synthetic.obj array
(** @raise Failure on a malformed header, row arity or field. *)

val write_synthetic : string -> Synthetic.obj array -> unit
val read_synthetic : string -> Synthetic.obj array

val records_header : string list

val records_to_rows : Interval_data.record array -> string list list
(** Interval and exact beliefs only.
    @raise Invalid_argument on a Gaussian belief (not representable in
    this flat schema). *)

val records_of_rows : string list list -> Interval_data.record array
val write_records : string -> Interval_data.record array -> unit
val read_records : string -> Interval_data.record array

(** {2 Columnar chunk files (QCOL)}

    A binary, chunk-addressable on-disk form of a {!Column_store}: a
    fixed header (magic ["QCOLv001"], row count, chunk size), the
    per-chunk zone hulls, then the chunks themselves — each chunk its
    [id]s followed by the [lo], [hi] and [truth] columns, 32 bytes per
    row, little-endian throughout.  Because every chunk's byte offset is
    computable from the header, an opened file serves chunk fetches
    directly by [seek]: a scan streams chunk by chunk through a
    {!Buffer_pool}, and a chunk pruned by its persisted zone hull is
    {e never read from disk}. *)

exception Corrupt_columnar of { path : string; reason : string }
(** The file is not a well-formed QCOL file: bad magic, impossible
    header fields, a size that disagrees with the declared layout
    (truncated or padded), a malformed zone entry, or a chunk whose
    decoded bounds are non-finite or reversed.  Raised by
    {!open_columnar} for header damage and by chunk fetches for body
    damage. *)

val save_columnar : string -> Column_store.t -> unit
(** Write the store — resident or itself streamed — chunk by chunk.
    Floats round-trip exactly (bit patterns are stored, not decimal). *)

type columnar_file
(** An open QCOL file: a {!Column_store} whose chunks are decoded from
    disk on fetch, through an LRU {!Buffer_pool} of decoded chunks. *)

val open_columnar : ?obs:Obs.t -> ?pool_capacity:int -> string -> columnar_file
(** Validates the header and zone table eagerly (raising
    {!Corrupt_columnar}) but reads no chunk data.  [pool_capacity]
    (default 8 chunks) sizes the decoded-chunk pool; [obs] instruments
    it ({!Buffer_pool.create}). *)

val columnar_store : columnar_file -> Column_store.t
(** Fetching a chunk after {!close_columnar} raises [Invalid_argument]. *)

val columnar_pool : columnar_file -> Column_store.chunk Buffer_pool.t
(** The decoded-chunk pool, for cache statistics. *)

val columnar_path : columnar_file -> string
val close_columnar : columnar_file -> unit

val with_columnar :
  ?obs:Obs.t -> ?pool_capacity:int -> string -> (Column_store.t -> 'a) -> 'a
(** Open, run, close (also on exceptions). *)
