(** Minimal RFC-4180-style CSV reading and writing.

    Enough CSV for the project's needs — persisting generated workloads
    and experiment results so runs can be compared across sessions and
    plotted externally.  Fields containing commas, quotes or newlines
    are quoted; quotes are doubled.  Reading accepts both quoted and
    bare fields and both LF and CRLF line ends. *)

exception Parse_error of { offset : int; reason : string }
(** Malformed CSV input.  [offset] is the byte position in the decoded
    text where the offending construct starts — for an unterminated
    quoted field, the position of the opening quote. *)

val escape_field : string -> string
(** Quote a field if it needs quoting, else return it unchanged. *)

val encode_row : string list -> string
(** One CSV line, without the trailing newline. *)

val decode_row : string -> string list
(** Parse one line.  @raise Parse_error on an unterminated quoted
    field. *)

val encode : string list list -> string
(** Lines joined with ["\n"], with a trailing newline. *)

val decode : string -> string list list
(** Split into rows (handles quoted embedded newlines); skips a final
    empty line.  @raise Parse_error on an unterminated quoted field. *)

val write_file : string -> string list list -> unit
val read_file : string -> string list list
