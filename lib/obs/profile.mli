(** Per-run profile: cost, phases, distributions and a quality audit.

    The paper's contract is a cost/quality trade: a run is only as good
    as the precision and recall it {e delivered} for the work it
    charged.  A [Profile.t] packages one run's verdict — the cost-meter
    counts, whether they reconciled with the [qaq.*] counters, the span
    timers, every histogram's quantiles, and a quality audit comparing
    the requested [p_q]/[r_q] against both the operator's guarantees and
    (when a ground-truth oracle is available) the {e achieved} precision
    and recall — renderable as JSON or as human tables.

    Construction is pure: everything is computed from a metric snapshot
    and the numbers the caller already has, so profiling a run cannot
    perturb it.  [Engine.execute ?profile] assembles one per query. *)

type counts = {
  reads : int;
  probes : int;
  batches : int;
  writes_imprecise : int;
  writes_precise : int;
}
(** Mirror of [Cost_meter.counts] (restated here so the profile layer
    stays below the cost layer in the dependency graph). *)

type achieved = {
  answer_in_exact : int;  (** answer objects the oracle accepts *)
  exact_size : int;  (** size of the exact answer per the oracle *)
  achieved_precision : float;
  achieved_recall : float;
  precision_pass : bool;  (** achieved >= requested *)
  recall_pass : bool;
}
(** Ground-truth side of the audit.  Degenerate denominators follow
    [Quality.Diagnostics]: an empty answer is vacuously precise, an
    empty exact answer fully recalled. *)

type budget_audit = {
  b_allotted : float;  (** cost units allotted ([infinity] = deadline only) *)
  b_spent : float;  (** total metered spend at completion *)
  b_target_recall : float;
      (** the dual planner's reachable recall target (the requested
          recall when the budget did not bind at planning time) *)
  b_limited : bool;
      (** the budget bound the run: the planner capped the target below
          the requested recall, or the scan was stopped by the budget or
          deadline before reaching it *)
}
(** Budget side of the audit for a time-budgeted (anytime) run. *)

type audit = {
  requested_precision : float;
  requested_recall : float;
  guaranteed_precision : float;
  guaranteed_recall : float;
  guarantees_met : bool;  (** guarantees >= requirements *)
  answer_size : int;
  degraded_probes : int;
      (** objects whose probe failed permanently and degraded to an
          imprecise write decision; a non-zero value flags the run as
          degraded in {!render} and {!to_json} *)
  budget : budget_audit option;  (** [None] for unbudgeted runs *)
  achieved : achieved option;  (** [None] without an oracle *)
}

type span_row = { span_name : string; calls : int; seconds : float }

type t = {
  label : string;
  counts : counts;
  reconcile_error : string option;
      (** [Some msg] when the cost meter and the [qaq.*] counters
          disagreed — unmetered or uninstrumented work *)
  audit : audit;
  spans : span_row list;  (** extracted from the [span.*] metrics *)
  snapshot : Metrics.snapshot;  (** the run's full metric delta *)
}

val make :
  ?label:string ->
  counts:counts ->
  snapshot:Metrics.snapshot ->
  requested_precision:float ->
  requested_recall:float ->
  guaranteed_precision:float ->
  guaranteed_recall:float ->
  guarantees_met:bool ->
  answer_size:int ->
  ?degraded_probes:int ->
  ?budget:budget_audit ->
  ?ground_truth:int * int ->
  ?reconcile_error:string ->
  unit ->
  t
(** [ground_truth] is [(answer_in_exact, exact_size)]; the achieved
    rates and pass flags are derived here.  [degraded_probes] defaults
    to 0 (an unfaulted run).  [budget] attaches the anytime context of a
    budgeted run.  [label] defaults to ["run"]. *)

val audit_passed : t -> bool
(** Guarantees met, and — when ground truth was supplied — achieved
    precision and recall both at least the requested values.  On a
    budget-limited run ({!budget_audit.b_limited}) the recall shortfall
    is the contract, not a failure: only the precision checks apply. *)

val passed : t -> bool
(** {!audit_passed} and no reconciliation error. *)

val histograms : t -> (string * Metrics.dist) list
(** Every distribution in the snapshot, name-sorted. *)

val spans_of_snapshot : Metrics.snapshot -> span_row list
(** The [span.<name>.calls]/[.seconds] pairs of a snapshot. *)

val to_json : t -> string
(** One self-contained JSON object (label, passed, counts, audit,
    spans, and the full metric snapshot under ["metrics"]). *)

val render : t -> string
(** Human tables ({!Text_table}): cost counts, the quality audit,
    phase timers and histogram quantiles. *)

val print : t -> unit
