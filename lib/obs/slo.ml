(* Per-tenant rolling SLO tracking for a long-running server.

   Each tenant owns a family of Rolling counters/series (request count,
   latency, charged probes, degraded requests, quota rejections,
   guarantee shortfalls); one synthetic "_all" tenant aggregates every
   request.  A report merges a tenant's windows into the live numbers
   the HEALTH/SLO verbs, the Prometheus file and the watch dashboard
   show. *)

let all_tenant = "_all"

type sample = {
  tenant : string;
  latency_seconds : float;
  probes : int;  (* probes charged to this request *)
  degraded : bool;
  rejections : int;  (* quota/capacity rejections this request absorbed *)
  shortfall : bool;  (* finished without meeting requested quality *)
}

type cell = {
  requests : Rolling.counter;
  latency : Rolling.series;
  probes_c : Rolling.counter;
  degraded_c : Rolling.counter;
  rejections_c : Rolling.counter;
  shortfalls_c : Rolling.counter;
}

type t = {
  spec : Rolling.spec;
  lock : Mutex.t;
  cells : (string, cell) Hashtbl.t;
}

let create ?(window_seconds = 60.0) ?slices ?clock () =
  let spec = Rolling.spec ?slices ?clock ~window_seconds () in
  { spec; lock = Mutex.create (); cells = Hashtbl.create 8 }

let window_seconds t = Rolling.window_seconds t.spec

let cell t tenant =
  Mutex.protect t.lock (fun () ->
      match Hashtbl.find_opt t.cells tenant with
      | Some c -> c
      | None ->
          let c =
            {
              requests = Rolling.counter t.spec;
              latency = Rolling.series t.spec;
              probes_c = Rolling.counter t.spec;
              degraded_c = Rolling.counter t.spec;
              rejections_c = Rolling.counter t.spec;
              shortfalls_c = Rolling.counter t.spec;
            }
          in
          Hashtbl.add t.cells tenant c;
          c)

let observe_cell c s =
  Rolling.counter_incr c.requests;
  if Float.is_finite s.latency_seconds && s.latency_seconds >= 0.0 then
    Rolling.series_observe c.latency s.latency_seconds;
  Rolling.counter_add c.probes_c (float_of_int (Stdlib.max 0 s.probes));
  if s.degraded then Rolling.counter_incr c.degraded_c;
  Rolling.counter_add c.rejections_c (float_of_int (Stdlib.max 0 s.rejections));
  if s.shortfall then Rolling.counter_incr c.shortfalls_c

let observe t s =
  observe_cell (cell t s.tenant) s;
  if not (String.equal s.tenant all_tenant) then
    observe_cell (cell t all_tenant) s

type report = {
  r_tenant : string;
  r_window : float;  (* seconds *)
  r_requests : float;  (* requests inside the window *)
  r_rate : float;  (* requests per second *)
  r_p50 : float;  (* latency seconds; nan while idle *)
  r_p99 : float;
  r_probe_rate : float;  (* charged probes per second *)
  r_degraded : float;  (* fraction of windowed requests degraded *)
  r_rejections : float;  (* quota rejections inside the window *)
  r_shortfalls : float;  (* guarantee shortfalls inside the window *)
}

let report_cell t tenant c =
  let requests = Rolling.counter_total c.requests in
  let dist = Rolling.series_dist c.latency in
  {
    r_tenant = tenant;
    r_window = window_seconds t;
    r_requests = requests;
    r_rate = Rolling.counter_rate c.requests;
    r_p50 = Metrics.quantile dist 0.5;
    r_p99 = Metrics.quantile dist 0.99;
    r_probe_rate = Rolling.counter_rate c.probes_c;
    r_degraded =
      (if requests > 0.0 then Rolling.counter_total c.degraded_c /. requests
       else 0.0);
    r_rejections = Rolling.counter_total c.rejections_c;
    r_shortfalls = Rolling.counter_total c.shortfalls_c;
  }

let report t tenant = report_cell t tenant (cell t tenant)
let overall t = report t all_tenant

let tenants t =
  Mutex.protect t.lock (fun () ->
      Hashtbl.fold (fun name _ acc -> name :: acc) t.cells [])
  |> List.filter (fun n -> not (String.equal n all_tenant))
  |> List.sort String.compare

let reports t = List.map (report t) (tenants t)

(* Prometheus text exposition with tenant labels.  The cumulative
   Metrics registry has no label support (names are flat), so the SLO
   family is written by hand here; every series is a gauge because a
   windowed value can fall. *)
let to_prometheus t =
  let b = Buffer.create 512 in
  let esc = Metrics.json_escape in
  let series name help =
    Buffer.add_string b (Printf.sprintf "# HELP %s %s\n" name help);
    Buffer.add_string b (Printf.sprintf "# TYPE %s gauge\n" name)
  in
  let sample name tenant v =
    if Float.is_finite v then
      Buffer.add_string b
        (Printf.sprintf "%s{tenant=\"%s\"} %.17g\n" name (esc tenant) v)
  in
  let names = tenants t @ [ all_tenant ] in
  let rs = List.map (fun n -> report t n) names in
  series "qaq_slo_request_rate" "windowed requests per second";
  List.iter (fun r -> sample "qaq_slo_request_rate" r.r_tenant r.r_rate) rs;
  series "qaq_slo_latency_p50_seconds" "windowed median query latency";
  List.iter
    (fun r -> sample "qaq_slo_latency_p50_seconds" r.r_tenant r.r_p50)
    rs;
  series "qaq_slo_latency_p99_seconds" "windowed p99 query latency";
  List.iter
    (fun r -> sample "qaq_slo_latency_p99_seconds" r.r_tenant r.r_p99)
    rs;
  series "qaq_slo_probe_rate" "windowed charged probes per second";
  List.iter
    (fun r -> sample "qaq_slo_probe_rate" r.r_tenant r.r_probe_rate)
    rs;
  series "qaq_slo_degraded_fraction" "fraction of windowed requests degraded";
  List.iter
    (fun r -> sample "qaq_slo_degraded_fraction" r.r_tenant r.r_degraded)
    rs;
  series "qaq_slo_rejections" "windowed quota/capacity rejections";
  List.iter
    (fun r -> sample "qaq_slo_rejections" r.r_tenant r.r_rejections)
    rs;
  series "qaq_slo_shortfalls" "windowed guarantee shortfalls";
  List.iter
    (fun r -> sample "qaq_slo_shortfalls" r.r_tenant r.r_shortfalls)
    rs;
  Buffer.contents b
