(* Sliding-window metrics: counters and histograms that only remember
   the last [window_seconds] of observations.

   The window is [slices] fixed-duration slices addressed by absolute
   slot number (floor (now / slice_seconds)); each cell remembers which
   absolute slot it last served, and a writer landing on a cell from an
   older slot resets it first — so stale data self-invalidates without
   a sweeper thread.  Reads merge every cell whose slot still falls
   inside the window.  Each instance carries its own mutex; instances
   are cheap and independent. *)

type spec = { slices : int; slice_seconds : float; clock : unit -> float }

let spec ?(slices = 12) ?(clock = Span.default_clock) ~window_seconds () =
  if slices < 1 then invalid_arg "Rolling.spec: slices < 1";
  if not (Float.is_finite window_seconds) || window_seconds <= 0.0 then
    invalid_arg "Rolling.spec: window_seconds must be finite and positive";
  { slices; slice_seconds = window_seconds /. float_of_int slices; clock }

let window_seconds s = s.slice_seconds *. float_of_int s.slices

let abs_slot s now = int_of_float (Float.floor (now /. s.slice_seconds))

(* --- counters --------------------------------------------------------- *)

type cslot = { mutable c_slot : int; mutable c_value : float }

type counter = {
  c_spec : spec;
  c_lock : Mutex.t;
  c_cells : cslot array;  (* indexed by abs_slot mod slices *)
}

let counter s =
  {
    c_spec = s;
    c_lock = Mutex.create ();
    c_cells =
      Array.init s.slices (fun _ -> { c_slot = min_int; c_value = 0.0 });
  }

let counter_add c v =
  let s = c.c_spec in
  let now = s.clock () in
  let slot = abs_slot s now in
  let cell = c.c_cells.(((slot mod s.slices) + s.slices) mod s.slices) in
  Mutex.protect c.c_lock (fun () ->
      if cell.c_slot <> slot then begin
        cell.c_slot <- slot;
        cell.c_value <- 0.0
      end;
      cell.c_value <- cell.c_value +. v)

let counter_incr c = counter_add c 1.0

let counter_total c =
  let s = c.c_spec in
  let now = s.clock () in
  let newest = abs_slot s now in
  let oldest = newest - s.slices + 1 in
  Mutex.protect c.c_lock (fun () ->
      Array.fold_left
        (fun acc cell ->
          if cell.c_slot >= oldest && cell.c_slot <= newest then
            acc +. cell.c_value
          else acc)
        0.0 c.c_cells)

let counter_rate c = counter_total c /. window_seconds c.c_spec

(* --- histograms ------------------------------------------------------- *)

type hslot = { mutable h_slot : int; mutable h_dist : Metrics.dist }

type series = {
  s_spec : spec;
  s_lock : Mutex.t;
  s_cells : hslot array;
}

let series s =
  {
    s_spec = s;
    s_lock = Mutex.create ();
    s_cells =
      Array.init s.slices (fun _ ->
          { h_slot = min_int; h_dist = Metrics.empty_dist });
  }

let series_observe sr v =
  let s = sr.s_spec in
  let now = s.clock () in
  let slot = abs_slot s now in
  let cell = sr.s_cells.(((slot mod s.slices) + s.slices) mod s.slices) in
  Mutex.protect sr.s_lock (fun () ->
      if cell.h_slot <> slot then begin
        cell.h_slot <- slot;
        cell.h_dist <- Metrics.empty_dist
      end;
      cell.h_dist <- Metrics.dist_observe cell.h_dist v)

let series_dist sr =
  let s = sr.s_spec in
  let now = s.clock () in
  let newest = abs_slot s now in
  let oldest = newest - s.slices + 1 in
  Mutex.protect sr.s_lock (fun () ->
      Array.fold_left
        (fun acc cell ->
          if cell.h_slot >= oldest && cell.h_slot <= newest then
            Metrics.merge_dist acc cell.h_dist
          else acc)
        Metrics.empty_dist sr.s_cells)

let series_quantile sr q = Metrics.quantile (series_dist sr) q
let series_count sr = (series_dist sr).Metrics.d_count
