(* Bounded black-box recorder for trace events.

   One global ring plus one ring per query trace ID keep the last N
   events each; when an anomaly event passes through (degradation,
   breaker trip, budget stop, guarantee shortfall) the recorder
   snapshots the implicated query's ring — or the global ring for
   uncorrelated anomalies — and hands it to the dump callback as a
   chrome-trace JSON document.  Everything is mutex-guarded: the sink
   is designed to sit on a server's shared trace path with queries
   emitting from many domains at once. *)

type stamped = float * Trace.context * Trace.event

(* Fixed-capacity ring; oldest overwritten first.  [to_list] returns
   oldest -> newest. *)
type ring = {
  slots : stamped option array;
  mutable next : int;  (* next write position *)
  mutable stored : int;  (* min stored capacity *)
}

let ring_create capacity = { slots = Array.make capacity None; next = 0; stored = 0 }

let ring_push r s =
  let cap = Array.length r.slots in
  r.slots.(r.next) <- Some s;
  r.next <- (r.next + 1) mod cap;
  if r.stored < cap then r.stored <- r.stored + 1

let ring_to_list r =
  let cap = Array.length r.slots in
  let start = (r.next - r.stored + cap * 2) mod cap in
  List.init r.stored (fun i ->
      match r.slots.((start + i) mod cap) with
      | Some s -> s
      | None -> assert false)

type dump = {
  reason : string;
  query : int option;
  tenant : string option;
  at : float;
  events : stamped list;  (* oldest first *)
}

type t = {
  capacity : int;
  clock : unit -> float;
  lock : Mutex.t;
  global : ring;
  per_query : (int, ring) Hashtbl.t;
  mutable query_order : int list;  (* newest first; for LRU-bounded count *)
  max_queries : int;
  mutable on_dump : dump -> unit;
  mutable dumps : dump list;  (* newest first *)
  max_dumps : int;
  dumped : (string, unit) Hashtbl.t;  (* "(reason,query)" already dumped *)
  mutable recorded : int;
}

let create ?(capacity = 256) ?(max_queries = 64) ?(max_dumps = 16)
    ?(clock = Span.default_clock) ?(on_dump = fun _ -> ()) () =
  if capacity < 1 then invalid_arg "Flight_recorder.create: capacity < 1";
  if max_queries < 1 then invalid_arg "Flight_recorder.create: max_queries < 1";
  {
    capacity;
    clock;
    lock = Mutex.create ();
    global = ring_create capacity;
    per_query = Hashtbl.create 16;
    query_order = [];
    max_queries;
    on_dump;
    dumps = [];
    max_dumps;
    dumped = Hashtbl.create 8;
    recorded = 0;
  }

let set_on_dump t f = Mutex.protect t.lock (fun () -> t.on_dump <- f)

let query_ring t q =
  match Hashtbl.find_opt t.per_query q with
  | Some r -> r
  | None ->
      let r = ring_create t.capacity in
      Hashtbl.add t.per_query q r;
      t.query_order <- q :: List.filter (fun x -> x <> q) t.query_order;
      (* Evict the least recently active query's ring so an immortal
         server cannot grow without bound. *)
      if List.length t.query_order > t.max_queries then begin
        match List.rev t.query_order with
        | oldest :: _ ->
            Hashtbl.remove t.per_query oldest;
            t.query_order <- List.filter (fun x -> x <> oldest) t.query_order
        | [] -> ()
      end;
      r

(* Which events are anomalies worth a reflexive dump.  A breaker event
   only counts when it reports the trip into "open" — recoveries are
   good news. *)
let anomaly_reason = function
  | Trace.Degraded { forced; _ } -> Some (if forced then "degraded-forced" else "degraded")
  | Trace.Breaker { state; _ } when String.equal state "open" -> Some "breaker-open"
  | Trace.Budget_stop _ -> Some "budget-stop"
  | Trace.Shortfall _ -> Some "shortfall"
  | _ -> None

let record t (ctx : Trace.context) ev =
  let now = t.clock () in
  let stamped = (now, ctx, ev) in
  let fire =
    Mutex.protect t.lock (fun () ->
        t.recorded <- t.recorded + 1;
        ring_push t.global stamped;
        (match ctx.Trace.query with
        | Some q -> ring_push (query_ring t q) stamped
        | None -> ());
        match anomaly_reason ev with
        | None -> None
        | Some reason ->
            let key =
              Printf.sprintf "%s/%s" reason
                (match ctx.Trace.query with
                | Some q -> string_of_int q
                | None -> "-")
            in
            if Hashtbl.mem t.dumped key || List.length t.dumps >= t.max_dumps
            then None
            else begin
              Hashtbl.add t.dumped key ();
              let events =
                match ctx.Trace.query with
                | Some q -> ring_to_list (query_ring t q)
                | None -> ring_to_list t.global
              in
              let d =
                {
                  reason;
                  query = ctx.Trace.query;
                  tenant = ctx.Trace.tenant;
                  at = now;
                  events;
                }
              in
              t.dumps <- d :: t.dumps;
              Some (d, t.on_dump)
            end)
  in
  (* The callback runs outside the lock: it may format JSON, write a
     file, or log — none of which should stall other recording domains
     (or deadlock by re-entering the recorder). *)
  match fire with None -> () | Some (d, f) -> f d

let sink t = Trace.callback_ctx (fun ctx ev -> record t ctx ev)

let entries ?query t =
  Mutex.protect t.lock (fun () ->
      match query with
      | None -> ring_to_list t.global
      | Some q -> (
          match Hashtbl.find_opt t.per_query q with
          | Some r -> ring_to_list r
          | None -> []))

let dumps t = Mutex.protect t.lock (fun () -> List.rev t.dumps)
let recorded t = Mutex.protect t.lock (fun () -> t.recorded)
let capacity t = t.capacity

let manual_dump ?query t ~reason =
  let now = t.clock () in
  Mutex.protect t.lock (fun () ->
      let events =
        match query with
        | Some q -> (
            match Hashtbl.find_opt t.per_query q with
            | Some r -> ring_to_list r
            | None -> [])
        | None -> ring_to_list t.global
      in
      { reason; query; tenant = None; at = now; events })

let dump_to_json d = Chrome_trace.json_of_entries d.events

let dump_filename d =
  Printf.sprintf "flight-%s-%s.json"
    (match d.query with Some q -> Printf.sprintf "q%d" q | None -> "global")
    d.reason
