(** Chrome-trace (catapult JSON) export of a run's trace events.

    A recorder collects {!Trace} events (via {!sink}) and per-lane
    [Domain_pool] task intervals (via {!on_task}) into one timeline,
    exported in the trace-event JSON format that [chrome://tracing] and
    Perfetto open directly.  Spans ({!Trace.Phase}) and pool tasks render
    as duration slices — tasks on one timeline row ("thread") per pool
    lane — and everything else (reads, decisions, batches, replans) as
    instant markers on lane 0, where the sequential decision loop runs.

    The recorder is thread-safe: {!on_task} may fire from worker
    domains while lane 0 emits trace events. *)

type t

val create : ?clock:(unit -> float) -> unit -> t
(** [clock] defaults to {!Span.default_clock}; use the {e same} clock as
    the [Obs.t] feeding the sink or the slices will not line up.
    Exported timestamps are relative to creation time. *)

val sink : t -> Trace.sink
(** A sink recording every event; pass to [Obs.create ~trace] (possibly
    {!Trace.tee}d with a formatter sink). *)

val on_task : t -> lane:int -> start:float -> finish:float -> unit
(** Record one pool task as a slice on lane [lane]'s timeline row —
    shaped to partially apply as [Domain_pool]'s [?on_task] hook. *)

val declare_lanes : t -> int -> unit
(** Declare the pool's lane count so the export names every lane's row
    up front, even lanes that end up running no task.
    @raise Invalid_argument if [lanes < 1]. *)

val events : t -> int
(** Entries recorded so far. *)

val to_json : t -> string
(** The complete [{"traceEvents": [...]}] document: thread-name
    metadata for every declared lane, then all entries in timestamp
    order (microsecond units, as the format specifies). *)

val write : t -> string -> unit
(** [write t path] saves {!to_json} to [path]. *)
