(** Chrome-trace (catapult JSON) export of a run's trace events.

    A recorder collects {!Trace} events (via {!sink}) and per-lane
    [Domain_pool] task intervals (via {!on_task}) into one timeline,
    exported in the trace-event JSON format that [chrome://tracing] and
    Perfetto open directly.  Spans ({!Trace.Phase}) and pool tasks render
    as duration slices — tasks on one timeline row ("thread") per pool
    lane — and everything else (reads, decisions, batches, replans) as
    instant markers on lane 0, where the sequential decision loop runs.

    Events carrying a {!Trace.context} with a query trace ID render on
    a dedicated per-query timeline row (tid [1000 + id], named
    ["query N (tenant)"]) with explicit [query]/[tenant] args, so one
    query's events read straight out of interleaved server traffic.

    The recorder is thread-safe: {!on_task} may fire from worker
    domains while lane 0 emits trace events. *)

type t

val create : ?clock:(unit -> float) -> unit -> t
(** [clock] defaults to {!Span.default_clock}; use the {e same} clock as
    the [Obs.t] feeding the sink or the slices will not line up.
    Exported timestamps are relative to creation time. *)

val sink : t -> Trace.sink
(** A sink recording every event; pass to [Obs.create ~trace] (possibly
    {!Trace.tee}d with a formatter sink). *)

val on_task : t -> lane:int -> start:float -> finish:float -> unit
(** Record one pool task as a slice on lane [lane]'s timeline row —
    shaped to partially apply as [Domain_pool]'s [?on_task] hook. *)

val declare_lanes : t -> int -> unit
(** Declare the pool's lane count so the export names every lane's row
    up front, even lanes that end up running no task.
    @raise Invalid_argument if [lanes < 1]. *)

val events : t -> int
(** Entries recorded so far. *)

val to_json : t -> string
(** The complete [{"traceEvents": [...]}] document: thread-name
    metadata for every declared lane, then all entries in timestamp
    order (microsecond units, as the format specifies). *)

val write : t -> string -> unit
(** [write t path] saves {!to_json} to [path]. *)

val json_of_entries :
  ?epoch:float -> (float * Trace.context * Trace.event) list -> string
(** Render a bare list of timestamped, attributed events — e.g. a
    flight-recorder dump — as a standalone chrome-trace document, with
    the same per-query rows and args as the live {!sink}.  [epoch]
    defaults to the earliest timestamp in the list, so the dump starts
    at t=0. *)

val query_tid : int -> int
(** The timeline row a given query trace ID renders on ([1000 + id]). *)
