(** The observability capability threaded through the engine.

    An [Obs.t] bundles a {!Metrics} registry, a {!Trace} sink and the
    clock {!Span} timings use.  Every instrumented entry point takes an
    optional [?obs] argument; passing [None] (the default) keeps the
    pre-observability behaviour — no counters, no events, no timing, and
    no allocation on the per-object path.

    {!Keys} names the counters whose totals must reconcile exactly with
    {!Cost_meter.counts} at the end of a run — the "all work is metered"
    invariant.  Producers increment these at their own instrumentation
    sites, {e not} by mirroring the meter, so the reconciliation test
    catches either side going unmetered. *)

type t

val create : ?trace:Trace.sink -> ?clock:(unit -> float) -> unit -> t
(** A fresh capability with its own empty metrics registry.  [trace]
    defaults to {!Trace.null}; [clock] (default {!Span.default_clock},
    wall time — the clock [Domain_pool] also charges lane busy-seconds
    with) drives {!span}, {!now} and the latency histograms. *)

val metrics : t -> Metrics.t
val trace : t -> Trace.sink

val with_trace : t -> Trace.sink -> t
(** A view sharing this capability's metrics registry and clock but
    emitting to a different sink — how a server derives per-query
    capabilities from one shared [Obs.t]. *)

val with_context : t -> Trace.context -> t
(** [with_trace t (Trace.with_context ctx (trace t))]: the same
    capability with every emitted event stamped as belonging to the
    given query/tenant. *)

val clock : t -> unit -> float
val now : t -> float
(** The capability's clock — instrumentation sites time their own work
    with this so all durations in one run are on one clock. *)

val counter : t -> string -> Metrics.counter
val gauge : t -> string -> Metrics.gauge
val histogram : t -> string -> Metrics.histogram

val tracing : t -> bool
(** Whether the trace sink is live; guard event construction with it. *)

val event : t -> Trace.event -> unit

val span : t -> string -> (unit -> 'a) -> 'a
(** [span t name f] times [f ()] into [span.<name>.seconds] /
    [span.<name>.calls] (see {!Span.time}).  When the trace sink is
    live, a {!Trace.Phase} event with the same duration is emitted at
    completion — that is how spans reach the Chrome-trace exporter. *)

val snapshot : t -> Metrics.snapshot

(** Canonical metric names shared across the engine. *)
module Keys : sig
  val reads : string
  (** Objects read and classified — by the operator's scan {e and} the
      planner's sample; reconciles with {!Cost_meter.counts.reads}. *)

  val probes : string
  val batches : string
  val writes_imprecise : string
  val writes_precise : string

  val sample_reads : string
  (** The planning sample alone (a subset of {!reads}). *)

  val replans : string

  val budget_replans : string
  (** Re-solves that went through the dual (budgeted) solver against
      the remaining budget — a subset of {!replans}. *)

  val parallel_chunks : string
  (** Blocks dispatched to the domain pool by the parallel
      classification stage (0 on a sequential run). *)

  val pruned_pages : string
  (** Whole pages skipped by a zone-map pruning cursor — work that was
      {e not} done, hence never metered as reads. *)

  val parallel_domains : string
  (** Gauge: the lane count of the pool a run executed on. *)

  val domain_busy : int -> string
  (** [domain_busy i] names the gauge holding lane [i]'s busy seconds
      (lane 0 is the caller's domain). *)

  val maybe_laxity : string
  (** Histogram: laxity [l(o)] of every MAYBE object at decision time —
      the distribution the optimizer's thresholds cut through. *)

  val maybe_success : string
  (** Histogram: success probability [s(o)] of every MAYBE object at
      decision time. *)

  val broker_requests : string
  (** Probe requests arriving at the cross-query {!Probe_broker} —
      every object a client asked for, before dedup. *)

  val broker_admitted : string
  (** Requests admitted for backend dispatch (a subset of
      {!broker_requests}; the rest were coalesced, served fresh, or
      rejected). *)

  val broker_charged : string
  (** Backend probes actually resolved — the shared resource really
      spent.  Under overlap this is strictly below what the same
      queries would charge solo. *)

  val broker_failed : string
  (** Admitted requests whose backend probe failed permanently. *)

  val broker_coalesced : string
  (** Requests that joined an already queued or in-flight probe for
      the same object: one probe charged, the result fanned out. *)

  val broker_fresh_hits : string
  (** Requests served from a probe completed within the freshness
      window — no backend work at all. *)

  val broker_rejected : string
  (** Requests degraded to [Failed] by admission control (shared
      capacity or tenant quota exhausted, or the breaker open). *)

  val broker_batches : string
  (** Backend batch dispatches — how often the per-batch setup cost
      was actually paid across all queries. *)

  val broker_batch_fill : string
  (** Histogram: objects per dispatched backend batch — cross-query
      packing shows up as fill above any single query's partial
      flushes. *)

  val broker_queue_wait : string
  (** Histogram: seconds a request spent between arriving at the
      broker and its outcome being settled. *)

  val tier_probes : string -> string
  (** [tier_probes name] names the counter of probes {e resolved or
      shrunk} at cascade tier [name] — summed over tiers this equals
      {!probes}, so per-tier reconcile implies the base reconcile. *)

  val tier_batches : string -> string
  (** Backend batch dispatches at cascade tier [name]. *)

  val tier_shrinks : string -> string
  (** Probes at tier [name] that came back [Shrunk] (a narrower
      interval, not a point) — a subset of that tier's probes. *)

  val tier_failovers : string -> string
  (** Probes that failed permanently at tier [name] and were escalated
      to the next tier instead of degrading the answer. *)

  val tier_retried : string -> string
  (** Attempts retried at tier [name] (a per-tier slice of
      {!fault_retried}) — which tier of a degraded cascade is burning
      its retry budget. *)

  val fault_injected : string
  (** Injected fault decisions that fired — failed attempts and latency
      spikes ({!Fault_plan}). *)

  val fault_retried : string
  (** Attempts retried because an injected (or simulated) failure struck
      a retryable site. *)

  val fault_degraded : string
  (** Objects whose probe failed permanently and that fell back to the
      guarantee-aware imprecise write decision ({!Operator}). *)

  val fault_breaker_state : string
  (** Gauge: circuit-breaker state (0 closed, 1 half-open, 2 open). *)

  val fault_outage_rounds : string
  (** Histogram: lengths (in rounds) of scripted outage windows and of
      breaker open windows. *)
end
