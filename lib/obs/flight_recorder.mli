(** Bounded black-box recorder ("flight recorder") for trace events.

    Keeps the last [capacity] events in a global ring and per-query
    rings keyed by trace ID, all behind one mutex so the {!sink} can
    sit on a concurrent server's shared trace path.  When an anomaly
    event passes through — {!Trace.Degraded}, a {!Trace.Breaker} trip
    into ["open"], {!Trace.Budget_stop}, or {!Trace.Shortfall} — the
    recorder snapshots the implicated query's recent history (the
    global ring for uncorrelated anomalies) into a {!dump} and hands it
    to the [on_dump] callback, outside the lock.  Each (reason, query)
    pair dumps at most once and at most [max_dumps] dumps are retained,
    so a flapping breaker cannot flood the disk. *)

type t

type stamped = float * Trace.context * Trace.event
(** An event as recorded: wall-clock time, attribution, payload. *)

type dump = {
  reason : string;
      (** ["degraded"], ["degraded-forced"], ["breaker-open"],
          ["budget-stop"], ["shortfall"], or the caller's string for
          {!manual_dump} *)
  query : int option;  (** the implicated query, when attributed *)
  tenant : string option;
  at : float;  (** when the anomaly fired *)
  events : stamped list;  (** ring contents, oldest first *)
}

val create :
  ?capacity:int ->
  ?max_queries:int ->
  ?max_dumps:int ->
  ?clock:(unit -> float) ->
  ?on_dump:(dump -> unit) ->
  unit ->
  t
(** [capacity] (default 256) bounds each ring; [max_queries] (default
    64) bounds how many per-query rings are kept, evicting the least
    recently active; [max_dumps] (default 16) bounds retained automatic
    dumps.  [on_dump] fires on every automatic dump, after the lock is
    released.
    @raise Invalid_argument if [capacity < 1] or [max_queries < 1]. *)

val sink : t -> Trace.sink
(** Records every event with its context; tee with other sinks. *)

val record : t -> Trace.context -> Trace.event -> unit
(** The function behind {!sink}, for direct use. *)

val set_on_dump : t -> (dump -> unit) -> unit

val entries : ?query:int -> t -> stamped list
(** Current ring contents, oldest first: the global ring, or the given
    query's (empty when that query has no ring). *)

val dumps : t -> dump list
(** Automatic dumps so far, oldest first. *)

val manual_dump : ?query:int -> t -> reason:string -> dump
(** Snapshot the current ring on demand (the [RECORDER] verb); not
    counted against [max_dumps] and not handed to [on_dump]. *)

val dump_to_json : dump -> string
(** The dump as a standalone chrome-trace document
    ({!Chrome_trace.json_of_entries}). *)

val dump_filename : dump -> string
(** A stable, filesystem-safe name for the dump
    (["flight-q7-breaker-open.json"]). *)

val recorded : t -> int
(** Total events recorded since creation (not bounded by capacity). *)

val capacity : t -> int
