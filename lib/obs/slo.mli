(** Rolling per-tenant SLO tracking.

    A live, time-windowed view of how each tenant's queries are doing
    right now — request rate, p50/p99 latency, charged-probe rate,
    degraded fraction, quota rejections, guarantee shortfalls — built
    on {!Rolling} windows so quiet history ages out.  One synthetic
    ["_all"] tenant aggregates everything for the [HEALTH] verb.

    Concurrency-safe: {!observe} may run from many query domains while
    a reader renders reports. *)

type t

val all_tenant : string
(** ["_all"], the synthetic aggregate tenant. *)

type sample = {
  tenant : string;
  latency_seconds : float;  (** end-to-end query latency *)
  probes : int;  (** probes charged to this request *)
  degraded : bool;
  rejections : int;
      (** quota/capacity rejections this request absorbed *)
  shortfall : bool;
      (** the run finished without meeting the requested quality *)
}

val create :
  ?window_seconds:float ->
  ?slices:int ->
  ?clock:(unit -> float) ->
  unit ->
  t
(** [window_seconds] defaults to 60; [slices] and [clock] as in
    {!Rolling.spec}. *)

val observe : t -> sample -> unit
(** Record one finished request against its tenant and ["_all"]. *)

type report = {
  r_tenant : string;
  r_window : float;  (** seconds of history the numbers cover *)
  r_requests : float;  (** requests inside the window *)
  r_rate : float;  (** requests per second *)
  r_p50 : float;  (** latency seconds; [nan] while idle *)
  r_p99 : float;
  r_probe_rate : float;  (** charged probes per second *)
  r_degraded : float;  (** fraction of windowed requests degraded *)
  r_rejections : float;
  r_shortfalls : float;
}

val report : t -> string -> report
(** A tenant's live numbers (all zero / [nan] quantiles when idle or
    unknown). *)

val overall : t -> report
(** [report t all_tenant]. *)

val tenants : t -> string list
(** Tenants observed so far, sorted, excluding ["_all"]. *)

val reports : t -> report list
(** One {!report} per tenant in {!tenants} order. *)

val window_seconds : t -> float

val to_prometheus : t -> string
(** Text exposition of the [qaq_slo_*] gauge family with
    [{tenant="..."}] labels (idle [nan] quantiles are elided). *)
