type counts = {
  reads : int;
  probes : int;
  batches : int;
  writes_imprecise : int;
  writes_precise : int;
}

type achieved = {
  answer_in_exact : int;
  exact_size : int;
  achieved_precision : float;
  achieved_recall : float;
  precision_pass : bool;
  recall_pass : bool;
}

type budget_audit = {
  b_allotted : float;
  b_spent : float;
  b_target_recall : float;
  b_limited : bool;
}

type audit = {
  requested_precision : float;
  requested_recall : float;
  guaranteed_precision : float;
  guaranteed_recall : float;
  guarantees_met : bool;
  answer_size : int;
  degraded_probes : int;
  budget : budget_audit option;
  achieved : achieved option;
}

type span_row = { span_name : string; calls : int; seconds : float }

type t = {
  label : string;
  counts : counts;
  reconcile_error : string option;
  audit : audit;
  spans : span_row list;
  snapshot : Metrics.snapshot;
}

(* Same degenerate-denominator convention as [Quality.Diagnostics]: an
   empty answer is vacuously precise, an empty exact answer is fully
   recalled. *)
let ratio num den = if den = 0 then 1.0 else float_of_int num /. float_of_int den

let spans_of_snapshot s =
  List.filter_map
    (fun (name, v) ->
      match v with
      | Metrics.Count calls
        when String.length name > String.length "span..calls"
             && String.sub name 0 5 = "span."
             && Filename.check_suffix name ".calls" ->
          let base = String.sub name 5 (String.length name - 5 - 6) in
          let seconds =
            match Metrics.get s (Span.seconds_key base) with
            | Some (Metrics.Level l) -> l
            | Some _ | None -> 0.0
          in
          Some { span_name = base; calls; seconds }
      | _ -> None)
    s

let make ?(label = "run") ~counts ~snapshot ~requested_precision
    ~requested_recall ~guaranteed_precision ~guaranteed_recall ~guarantees_met
    ~answer_size ?(degraded_probes = 0) ?budget ?ground_truth ?reconcile_error
    () =
  let achieved =
    Option.map
      (fun (answer_in_exact, exact_size) ->
        let p = ratio answer_in_exact answer_size in
        let r = ratio answer_in_exact exact_size in
        {
          answer_in_exact;
          exact_size;
          achieved_precision = p;
          achieved_recall = r;
          precision_pass = p >= requested_precision;
          recall_pass = r >= requested_recall;
        })
      ground_truth
  in
  {
    label;
    counts;
    reconcile_error;
    audit =
      {
        requested_precision;
        requested_recall;
        guaranteed_precision;
        guaranteed_recall;
        guarantees_met;
        answer_size;
        degraded_probes;
        budget;
        achieved;
      };
    spans = spans_of_snapshot snapshot;
    snapshot;
  }

let audit_passed t =
  match t.audit.budget with
  | Some b when b.b_limited ->
      (* A budget-limited run trades recall for staying within its
         allotment — the recall shortfall is the contract, not a
         failure.  Precision remains a hard constraint. *)
      t.audit.guaranteed_precision >= t.audit.requested_precision
      && (match t.audit.achieved with
         | None -> true
         | Some a -> a.precision_pass)
  | Some _ | None -> (
      t.audit.guarantees_met
      &&
      match t.audit.achieved with
      | None -> true
      | Some a -> a.precision_pass && a.recall_pass)

let passed t = Option.is_none t.reconcile_error && audit_passed t

let histograms t =
  List.filter_map
    (fun (name, v) ->
      match v with Metrics.Dist d -> Some (name, d) | _ -> None)
    t.snapshot

(* --- JSON ------------------------------------------------------------ *)

let json_bool b = if b then "true" else "false"

let json_float v =
  if Float.is_finite v then Printf.sprintf "%.17g" v else "null"

let json_achieved = function
  | None -> "null"
  | Some a ->
      Printf.sprintf
        "{\"answer_in_exact\": %d, \"exact_size\": %d, \"precision\": %s, \
         \"recall\": %s, \"precision_pass\": %s, \"recall_pass\": %s}"
        a.answer_in_exact a.exact_size
        (json_float a.achieved_precision)
        (json_float a.achieved_recall)
        (json_bool a.precision_pass) (json_bool a.recall_pass)

let to_json t =
  let b = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "{\n";
  add "  \"label\": \"%s\",\n" (Metrics.json_escape t.label);
  add "  \"passed\": %s,\n" (json_bool (passed t));
  add
    "  \"counts\": {\"reads\": %d, \"probes\": %d, \"batches\": %d, \
     \"writes_imprecise\": %d, \"writes_precise\": %d},\n"
    t.counts.reads t.counts.probes t.counts.batches t.counts.writes_imprecise
    t.counts.writes_precise;
  (match t.reconcile_error with
  | None -> add "  \"reconcile_error\": null,\n"
  | Some msg -> add "  \"reconcile_error\": \"%s\",\n" (Metrics.json_escape msg));
  let json_budget = function
    | None -> "null"
    | Some b ->
        Printf.sprintf
          "{\"allotted\": %s, \"spent\": %s, \"target_recall\": %s, \
           \"limited\": %s}"
          (json_float b.b_allotted) (json_float b.b_spent)
          (json_float b.b_target_recall)
          (json_bool b.b_limited)
  in
  add
    "  \"audit\": {\"requested_precision\": %s, \"requested_recall\": %s, \
     \"guaranteed_precision\": %s, \"guaranteed_recall\": %s, \
     \"guarantees_met\": %s, \"answer_size\": %d, \"degraded_probes\": %d, \
     \"budget\": %s, \"achieved\": %s},\n"
    (json_float t.audit.requested_precision)
    (json_float t.audit.requested_recall)
    (json_float t.audit.guaranteed_precision)
    (json_float t.audit.guaranteed_recall)
    (json_bool t.audit.guarantees_met)
    t.audit.answer_size t.audit.degraded_probes
    (json_budget t.audit.budget)
    (json_achieved t.audit.achieved);
  add "  \"spans\": [%s],\n"
    (String.concat ", "
       (List.map
          (fun r ->
            Printf.sprintf "{\"name\": \"%s\", \"calls\": %d, \"seconds\": %s}"
              (Metrics.json_escape r.span_name)
              r.calls (json_float r.seconds))
          t.spans));
  add "  \"metrics\": %s\n" (String.trim (Metrics.to_json t.snapshot));
  add "}\n";
  Buffer.contents b

(* --- human rendering ------------------------------------------------- *)

let f3 = Text_table.cell_of_float

let render t =
  let b = Buffer.create 1024 in
  let cost = Text_table.create ~title:("profile: " ^ t.label ^ " — cost")
      ~header:[ "operation"; "count" ] in
  Text_table.add_row cost [ "reads"; string_of_int t.counts.reads ];
  Text_table.add_row cost [ "probes"; string_of_int t.counts.probes ];
  Text_table.add_row cost [ "batches"; string_of_int t.counts.batches ];
  Text_table.add_row cost
    [ "writes (imprecise)"; string_of_int t.counts.writes_imprecise ];
  Text_table.add_row cost
    [ "writes (precise)"; string_of_int t.counts.writes_precise ];
  Buffer.add_string b (Text_table.render cost);
  (match t.reconcile_error with
  | None -> Buffer.add_string b "cost meter and qaq.* counters reconcile\n"
  | Some msg -> Buffer.add_string b ("RECONCILE FAILED: " ^ msg ^ "\n"));
  Buffer.add_char b '\n';
  let audit = Text_table.create ~title:"quality audit"
      ~header:[ "constraint"; "requested"; "guaranteed"; "achieved"; "pass" ] in
  let achieved_cell f = match t.audit.achieved with
    | None -> "-"
    | Some a -> f3 (f a)
  and pass_cell f = match t.audit.achieved with
    | None -> if t.audit.guarantees_met then "ok" else "FAIL"
    | Some a -> if f a && t.audit.guarantees_met then "ok" else "FAIL"
  in
  Text_table.add_row audit
    [
      "precision";
      f3 t.audit.requested_precision;
      f3 t.audit.guaranteed_precision;
      achieved_cell (fun a -> a.achieved_precision);
      pass_cell (fun a -> a.precision_pass);
    ];
  Text_table.add_row audit
    [
      "recall";
      f3 t.audit.requested_recall;
      f3 t.audit.guaranteed_recall;
      achieved_cell (fun a -> a.achieved_recall);
      pass_cell (fun a -> a.recall_pass);
    ];
  Buffer.add_string b (Text_table.render audit);
  if t.audit.degraded_probes > 0 then
    Buffer.add_string b
      (Printf.sprintf
         "DEGRADED: %d probe(s) failed permanently; guarantees above are \
          post-degradation\n"
         t.audit.degraded_probes);
  (match t.audit.budget with
  | None -> ()
  | Some bu ->
      Buffer.add_string b
        (Printf.sprintf
           "budget: allotted %s, spent %.6g, target recall %.3f%s\n"
           (if Float.is_finite bu.b_allotted then
              Printf.sprintf "%.6g" bu.b_allotted
            else "inf")
           bu.b_spent bu.b_target_recall
           (if bu.b_limited then
              " (BUDGET-LIMITED: recall shortfall is the contract)"
            else "")));
  (match t.audit.achieved with
  | Some a ->
      Buffer.add_string b
        (Printf.sprintf "answer %d, exact answer %d, overlap %d\n"
           t.audit.answer_size a.exact_size a.answer_in_exact)
  | None ->
      Buffer.add_string b
        (Printf.sprintf "answer %d (no ground-truth oracle)\n"
           t.audit.answer_size));
  Buffer.add_char b '\n';
  (match t.spans with
  | [] -> ()
  | spans ->
      let tbl = Text_table.create ~title:"phases"
          ~header:[ "span"; "calls"; "seconds" ] in
      List.iter
        (fun r ->
          Text_table.add_row tbl
            [ r.span_name; string_of_int r.calls; f3 r.seconds ])
        spans;
      Buffer.add_string b (Text_table.render tbl);
      Buffer.add_char b '\n');
  (match histograms t with
  | [] -> ()
  | dists ->
      let tbl = Text_table.create ~title:"distributions"
          ~header:[ "histogram"; "count"; "p50"; "p90"; "p99"; "max" ] in
      List.iter
        (fun (name, d) ->
          let q p =
            if d.Metrics.d_count = 0 then "-" else f3 (Metrics.quantile d p)
          in
          Text_table.add_row tbl
            [
              name;
              string_of_int d.Metrics.d_count;
              q 0.5;
              q 0.9;
              q 0.99;
              (if d.Metrics.d_count = 0 then "-" else f3 d.Metrics.d_max);
            ])
        dists;
      Buffer.add_string b (Text_table.render tbl));
  Buffer.contents b

let print t = print_string (render t)
