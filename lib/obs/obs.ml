type t = { metrics : Metrics.t; trace : Trace.sink; clock : unit -> float }

let create ?(trace = Trace.null) ?(clock = Span.default_clock) () =
  { metrics = Metrics.create (); trace; clock }

let metrics t = t.metrics
let trace t = t.trace
let with_trace t trace = { t with trace }
let with_context t ctx = { t with trace = Trace.with_context ctx t.trace }
let clock t = t.clock
let now t = t.clock ()
let counter t name = Metrics.counter t.metrics name
let gauge t name = Metrics.gauge t.metrics name
let histogram t name = Metrics.histogram t.metrics name
let tracing t = Trace.enabled t.trace
let event t e = Trace.emit t.trace e

let span t name f =
  if Trace.enabled t.trace then begin
    (* The phase event carries the same duration the span metric
       accumulates, so a trace viewer and the metrics agree. *)
    let t0 = t.clock () in
    Fun.protect
      ~finally:(fun () ->
        Trace.emit t.trace (Trace.Phase { name; seconds = t.clock () -. t0 }))
      (fun () -> Span.time ~clock:t.clock t.metrics name f)
  end
  else Span.time ~clock:t.clock t.metrics name f

let snapshot t = Metrics.snapshot t.metrics

module Keys = struct
  let reads = "qaq.reads"
  let probes = "qaq.probes"
  let batches = "qaq.batches"
  let writes_imprecise = "qaq.writes_imprecise"
  let writes_precise = "qaq.writes_precise"
  let sample_reads = "engine.sample_reads"
  let replans = "adaptive.replans"
  let budget_replans = "adaptive.budget_replans"
  let parallel_chunks = "qaq.parallel.chunks"
  let pruned_pages = "qaq.parallel.pruned_pages"
  let parallel_domains = "qaq.parallel.domains"
  let domain_busy i = Printf.sprintf "qaq.parallel.domain%d.busy_seconds" i
  let maybe_laxity = "qaq.maybe.laxity"
  let maybe_success = "qaq.maybe.success"
  let broker_requests = "qaq.broker.requests"
  let broker_admitted = "qaq.broker.admitted"
  let broker_charged = "qaq.broker.charged"
  let broker_failed = "qaq.broker.failed"
  let broker_coalesced = "qaq.broker.coalesced"
  let broker_fresh_hits = "qaq.broker.fresh_hits"
  let broker_rejected = "qaq.broker.rejected"
  let broker_batches = "qaq.broker.batches"
  let broker_batch_fill = "qaq.broker.batch_fill"
  let broker_queue_wait = "qaq.broker.queue_wait_seconds"
  let tier_probes name = "qaq.probe.tier." ^ name ^ ".probes"
  let tier_batches name = "qaq.probe.tier." ^ name ^ ".batches"
  let tier_shrinks name = "qaq.probe.tier." ^ name ^ ".shrinks"
  let tier_failovers name = "qaq.probe.tier." ^ name ^ ".failovers"
  let tier_retried name = "qaq.probe.tier." ^ name ^ ".retried"
  let fault_injected = "qaq.fault.injected"
  let fault_retried = "qaq.fault.retried"
  let fault_degraded = "qaq.fault.degraded"
  let fault_breaker_state = "qaq.fault.breaker_state"
  let fault_outage_rounds = "qaq.fault.outage_rounds"
end
