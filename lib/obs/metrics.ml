type counter = { c_name : string; mutable count : int }
type gauge = { g_name : string; mutable level : float }
type cell = Counter_cell of counter | Gauge_cell of gauge
type t = { cells : (string, cell) Hashtbl.t }

let create () = { cells = Hashtbl.create 32 }

let counter t name =
  match Hashtbl.find_opt t.cells name with
  | Some (Counter_cell c) -> c
  | Some (Gauge_cell _) ->
      invalid_arg ("Metrics.counter: " ^ name ^ " is registered as a gauge")
  | None ->
      let c = { c_name = name; count = 0 } in
      Hashtbl.add t.cells name (Counter_cell c);
      c

let gauge t name =
  match Hashtbl.find_opt t.cells name with
  | Some (Gauge_cell g) -> g
  | Some (Counter_cell _) ->
      invalid_arg ("Metrics.gauge: " ^ name ^ " is registered as a counter")
  | None ->
      let g = { g_name = name; level = 0.0 } in
      Hashtbl.add t.cells name (Gauge_cell g);
      g

let incr c = c.count <- c.count + 1

let add c n =
  if n < 0 then invalid_arg "Metrics.add: negative increment";
  c.count <- c.count + n

let count c = c.count
let counter_name c = c.c_name
let set g v = g.level <- v
let level g = g.level
let gauge_name g = g.g_name

type value = Count of int | Level of float
type snapshot = (string * value) list

let snapshot t =
  Hashtbl.fold
    (fun name cell acc ->
      let v =
        match cell with
        | Counter_cell c -> Count c.count
        | Gauge_cell g -> Level g.level
      in
      (name, v) :: acc)
    t.cells []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let get s name = List.assoc_opt name s

let count_of s name =
  match get s name with Some (Count n) -> n | Some (Level _) | None -> 0

let diff ~later ~earlier =
  List.map
    (fun (name, v) ->
      match (v, List.assoc_opt name earlier) with
      | Count l, Some (Count e) -> (name, Count (l - e))
      | v, _ -> (name, v))
    later

(* Metric names here are dotted identifiers; escape defensively anyway so
   the export is valid JSON whatever the caller registered. *)
let json_escape name =
  let b = Buffer.create (String.length name) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    name;
  Buffer.contents b

let json_of_value = function
  | Count n -> string_of_int n
  | Level v -> if Float.is_finite v then Printf.sprintf "%.17g" v else "null"

let to_json s =
  let b = Buffer.create 256 in
  Buffer.add_string b "{";
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_string b ",";
      Buffer.add_string b "\n  \"";
      Buffer.add_string b (json_escape name);
      Buffer.add_string b "\": ";
      Buffer.add_string b (json_of_value v))
    s;
  Buffer.add_string b "\n}\n";
  Buffer.contents b

let prometheus_name name =
  String.map
    (fun ch ->
      match ch with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> ch
      | _ -> '_')
    name

let to_prometheus s =
  let b = Buffer.create 256 in
  List.iter
    (fun (name, v) ->
      let pname = prometheus_name name in
      let kind, text =
        match v with
        | Count n -> ("counter", string_of_int n)
        | Level l -> ("gauge", Printf.sprintf "%.17g" l)
      in
      Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n%s %s\n" pname kind pname text))
    s;
  Buffer.contents b

let pp_snapshot ppf s =
  List.iter
    (fun (name, v) ->
      match v with
      | Count n -> Format.fprintf ppf "%s = %d@." name n
      | Level l -> Format.fprintf ppf "%s = %g@." name l)
    s
