(* --- registry lock ---------------------------------------------------- *)

(* One recursive lock per registry, shared by every cell it owns: any
   single update is atomic, [snapshot] sees no torn multi-metric states,
   and [atomically] lets a caller group several updates (e.g. the
   broker's requests + outcome pair) into one indivisible step.  OCaml
   mutexes are not re-entrant, so re-entrancy is hand-rolled: the owner
   records its domain id and recursion depth, and only the outermost
   release unlocks.  The unlocked [owner = me] fast path is sound
   because only the domain itself ever stores its own id there. *)
type rlock = { rl_mutex : Mutex.t; mutable rl_owner : int; mutable rl_depth : int }

let rlock_create () = { rl_mutex = Mutex.create (); rl_owner = -1; rl_depth = 0 }

let rlock_acquire l =
  let me = (Domain.self () :> int) in
  if l.rl_owner = me then l.rl_depth <- l.rl_depth + 1
  else begin
    Mutex.lock l.rl_mutex;
    l.rl_owner <- me;
    l.rl_depth <- 1
  end

let rlock_release l =
  l.rl_depth <- l.rl_depth - 1;
  if l.rl_depth = 0 then begin
    l.rl_owner <- -1;
    Mutex.unlock l.rl_mutex
  end

let locked l f =
  rlock_acquire l;
  match f () with
  | v ->
      rlock_release l;
      v
  | exception e ->
      rlock_release l;
      raise e

type counter = { c_name : string; mutable count : int; c_lock : rlock }
type gauge = { g_name : string; mutable level : float; g_lock : rlock }

(* --- histogram bucket layout ----------------------------------------- *)

(* Log-spaced (HDR-style) buckets shared by every histogram: bucket 0
   catches values <= [first_bound] (including exact zeros), buckets
   1 .. n-2 grow geometrically by 2^(1/4) (at most ~19% relative error
   per bucket) up past 1e12, and the last bucket is the overflow.  A
   fixed layout makes merge and diff a plain element-wise array
   operation — no bucket negotiation between snapshots. *)
let bucket_count = 284
let first_bound = 1e-9
let growth = Float.pow 2.0 0.25

let bucket_upper_bound i =
  if i < 0 || i >= bucket_count then
    invalid_arg "Metrics.bucket_upper_bound: index";
  if i = bucket_count - 1 then Float.infinity
  else first_bound *. Float.pow growth (float_of_int i)

let bucket_of v =
  if v <= first_bound then 0
  else
    let i = int_of_float (Float.ceil (4.0 *. Float.log2 (v /. first_bound))) in
    if i >= bucket_count - 1 then bucket_count - 1 else Stdlib.max 1 i

type histogram = {
  h_name : string;
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;  (* +inf while empty *)
  mutable h_max : float;  (* -inf while empty *)
  h_buckets : int array;
  h_lock : rlock;
}

type cell =
  | Counter_cell of counter
  | Gauge_cell of gauge
  | Histogram_cell of histogram

type t = {
  cells : (string, cell) Hashtbl.t;
  exposition : (string, string) Hashtbl.t;
      (* mangled Prometheus name -> owning metric name *)
  lock : rlock;
}

let create () =
  {
    cells = Hashtbl.create 32;
    exposition = Hashtbl.create 32;
    lock = rlock_create ();
  }

let atomically t f = locked t.lock f

let prometheus_name name =
  String.map
    (fun ch ->
      match ch with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> ch
      | _ -> '_')
    name

(* Mangling is lossy ("a.b" and "a_b" both expose as "a_b"), so every
   exposition name is reserved at registration and a second metric
   claiming it is rejected — before it counts anything, not when the
   scrape silently merges two series. *)
let reserve t name mangled =
  (match Hashtbl.find_opt t.exposition mangled with
  | Some owner when not (String.equal owner name) ->
      invalid_arg
        (Printf.sprintf
           "Metrics: %S collides with %S in Prometheus exposition (both \
            mangle to %S)"
           name owner mangled)
  | Some _ | None -> ());
  Hashtbl.replace t.exposition mangled name

let counter t name =
  locked t.lock (fun () ->
      match Hashtbl.find_opt t.cells name with
      | Some (Counter_cell c) -> c
      | Some (Gauge_cell _) ->
          invalid_arg ("Metrics.counter: " ^ name ^ " is registered as a gauge")
      | Some (Histogram_cell _) ->
          invalid_arg
            ("Metrics.counter: " ^ name ^ " is registered as a histogram")
      | None ->
          reserve t name (prometheus_name name);
          let c = { c_name = name; count = 0; c_lock = t.lock } in
          Hashtbl.add t.cells name (Counter_cell c);
          c)

let gauge t name =
  locked t.lock (fun () ->
      match Hashtbl.find_opt t.cells name with
      | Some (Gauge_cell g) -> g
      | Some (Counter_cell _) ->
          invalid_arg ("Metrics.gauge: " ^ name ^ " is registered as a counter")
      | Some (Histogram_cell _) ->
          invalid_arg
            ("Metrics.gauge: " ^ name ^ " is registered as a histogram")
      | None ->
          reserve t name (prometheus_name name);
          let g = { g_name = name; level = 0.0; g_lock = t.lock } in
          Hashtbl.add t.cells name (Gauge_cell g);
          g)

let histogram t name =
  locked t.lock (fun () ->
      match Hashtbl.find_opt t.cells name with
      | Some (Histogram_cell h) -> h
      | Some (Counter_cell _) ->
          invalid_arg
            ("Metrics.histogram: " ^ name ^ " is registered as a counter")
      | Some (Gauge_cell _) ->
          invalid_arg
            ("Metrics.histogram: " ^ name ^ " is registered as a gauge")
      | None ->
          let p = prometheus_name name in
          (* A histogram exposes four series; reserve them all so a counter
             named e.g. "<name>.count" cannot later alias "<name>_count". *)
          reserve t name p;
          reserve t name (p ^ "_bucket");
          reserve t name (p ^ "_sum");
          reserve t name (p ^ "_count");
          let h =
            {
              h_name = name;
              h_count = 0;
              h_sum = 0.0;
              h_min = Float.infinity;
              h_max = Float.neg_infinity;
              h_buckets = Array.make bucket_count 0;
              h_lock = t.lock;
            }
          in
          Hashtbl.add t.cells name (Histogram_cell h);
          h)

let incr c = locked c.c_lock (fun () -> c.count <- c.count + 1)

let add c n =
  if n < 0 then invalid_arg "Metrics.add: negative increment";
  locked c.c_lock (fun () -> c.count <- c.count + n)

let count c = locked c.c_lock (fun () -> c.count)
let counter_name c = c.c_name
let set g v = locked g.g_lock (fun () -> g.level <- v)
let level g = locked g.g_lock (fun () -> g.level)
let gauge_name g = g.g_name

let observe h v =
  (* Same contract as Hist1d: a NaN or infinite observation is a bug at
     the call site, not a value to bucket. *)
  if not (Float.is_finite v) then invalid_arg "Metrics.observe: non-finite value";
  if v < 0.0 then invalid_arg "Metrics.observe: negative value";
  locked h.h_lock (fun () ->
      h.h_count <- h.h_count + 1;
      h.h_sum <- h.h_sum +. v;
      if v < h.h_min then h.h_min <- v;
      if v > h.h_max then h.h_max <- v;
      let i = bucket_of v in
      h.h_buckets.(i) <- h.h_buckets.(i) + 1)

let histogram_name h = h.h_name
let observations h = locked h.h_lock (fun () -> h.h_count)

type dist = {
  d_count : int;
  d_sum : float;
  d_min : float;
  d_max : float;
  d_buckets : int array;
}

let empty_dist =
  {
    d_count = 0;
    d_sum = 0.0;
    d_min = Float.infinity;
    d_max = Float.neg_infinity;
    d_buckets = Array.make bucket_count 0;
  }

let dist_of_histogram h =
  {
    d_count = h.h_count;
    d_sum = h.h_sum;
    d_min = h.h_min;
    d_max = h.h_max;
    d_buckets = Array.copy h.h_buckets;
  }

let quantile d q =
  if d.d_count = 0 then Float.nan
  else begin
    let q = Float.max 0.0 (Float.min 1.0 q) in
    let rank =
      Stdlib.max 1 (int_of_float (Float.ceil (q *. float_of_int d.d_count)))
    in
    let rec find i cum =
      if i >= bucket_count - 1 then bucket_count - 1
      else
        let cum = cum + d.d_buckets.(i) in
        if cum >= rank then i else find (i + 1) cum
    in
    let i = find 0 0 in
    (* Geometric bucket midpoint, clamped to the observed extrema: a
       single observation comes back exactly, and no estimate strays
       outside what was actually seen. *)
    let est =
      if i = 0 then 0.0
      else if i = bucket_count - 1 then d.d_max
      else sqrt (bucket_upper_bound (i - 1) *. bucket_upper_bound i)
    in
    Float.max d.d_min (Float.min d.d_max est)
  end

let dist_observe d v =
  if not (Float.is_finite v) then
    invalid_arg "Metrics.dist_observe: non-finite value";
  if v < 0.0 then invalid_arg "Metrics.dist_observe: negative value";
  let buckets = Array.copy d.d_buckets in
  let i = bucket_of v in
  buckets.(i) <- buckets.(i) + 1;
  {
    d_count = d.d_count + 1;
    d_sum = d.d_sum +. v;
    d_min = Float.min d.d_min v;
    d_max = Float.max d.d_max v;
    d_buckets = buckets;
  }

let merge_dist a b =
  {
    d_count = a.d_count + b.d_count;
    d_sum = a.d_sum +. b.d_sum;
    d_min = Float.min a.d_min b.d_min;
    d_max = Float.max a.d_max b.d_max;
    d_buckets =
      Array.init bucket_count (fun i -> a.d_buckets.(i) + b.d_buckets.(i));
  }

type value = Count of int | Level of float | Dist of dist
type snapshot = (string * value) list

let snapshot t =
  (* Under the registry lock: concurrent writers (and [atomically]
     groups) either happened entirely before this capture or entirely
     after it — no torn multi-metric states. *)
  locked t.lock (fun () ->
      Hashtbl.fold
        (fun name cell acc ->
          let v =
            match cell with
            | Counter_cell c -> Count c.count
            | Gauge_cell g -> Level g.level
            | Histogram_cell h -> Dist (dist_of_histogram h)
          in
          (name, v) :: acc)
        t.cells []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b))

let get s name = List.assoc_opt name s

let count_of s name =
  match get s name with
  | Some (Count n) -> n
  | Some (Level _) | Some (Dist _) | None -> 0

let dist_of s name =
  match get s name with Some (Dist d) -> Some d | Some _ | None -> None

let diff ~later ~earlier =
  List.map
    (fun (name, v) ->
      match (v, List.assoc_opt name earlier) with
      | Count l, Some (Count e) -> (name, Count (l - e))
      | Dist l, Some (Dist e) ->
          (* Counts, sums and buckets subtract like counters; the window's
             own extrema are not recoverable from two running extrema, so
             the later ones stand in (they still bound the window). *)
          ( name,
            Dist
              {
                d_count = l.d_count - e.d_count;
                d_sum = l.d_sum -. e.d_sum;
                d_min = l.d_min;
                d_max = l.d_max;
                d_buckets =
                  Array.init bucket_count (fun i ->
                      l.d_buckets.(i) - e.d_buckets.(i));
              } )
      | v, _ -> (name, v))
    later

(* Metric names here are dotted identifiers; escape defensively anyway so
   the export is valid JSON whatever the caller registered. *)
let json_escape name =
  let b = Buffer.create (String.length name) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    name;
  Buffer.contents b

let json_float v = if Float.is_finite v then Printf.sprintf "%.17g" v else "null"

let json_of_dist d =
  let opt v = if d.d_count = 0 then "null" else json_float v in
  let q p = opt (quantile d p) in
  Printf.sprintf
    "{\"count\": %d, \"sum\": %s, \"min\": %s, \"max\": %s, \"p50\": %s, \
     \"p90\": %s, \"p99\": %s}"
    d.d_count (json_float d.d_sum) (opt d.d_min) (opt d.d_max) (q 0.5) (q 0.9)
    (q 0.99)

let json_of_value = function
  | Count n -> string_of_int n
  | Level v -> json_float v
  | Dist d -> json_of_dist d

let to_json s =
  let b = Buffer.create 256 in
  Buffer.add_string b "{";
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_string b ",";
      Buffer.add_string b "\n  \"";
      Buffer.add_string b (json_escape name);
      Buffer.add_string b "\": ";
      Buffer.add_string b (json_of_value v))
    s;
  Buffer.add_string b "\n}\n";
  Buffer.contents b

let to_prometheus s =
  let b = Buffer.create 256 in
  List.iter
    (fun (name, v) ->
      let pname = prometheus_name name in
      match v with
      | Count n ->
          Buffer.add_string b
            (Printf.sprintf "# TYPE %s counter\n%s %d\n" pname pname n)
      | Level l ->
          Buffer.add_string b
            (Printf.sprintf "# TYPE %s gauge\n%s %.17g\n" pname pname l)
      | Dist d ->
          (* Cumulative buckets in the standard exposition; empty buckets
             are elided (the "le" bound carries the boundary, so a sparse
             series stays well-formed) and "+Inf" always closes it. *)
          Buffer.add_string b (Printf.sprintf "# TYPE %s histogram\n" pname);
          let cum = ref 0 in
          Array.iteri
            (fun i n ->
              if n > 0 && i < bucket_count - 1 then begin
                cum := !cum + n;
                Buffer.add_string b
                  (Printf.sprintf "%s_bucket{le=\"%.9g\"} %d\n" pname
                     (bucket_upper_bound i) !cum)
              end)
            d.d_buckets;
          Buffer.add_string b
            (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" pname d.d_count);
          Buffer.add_string b
            (Printf.sprintf "%s_sum %.17g\n" pname d.d_sum);
          Buffer.add_string b (Printf.sprintf "%s_count %d\n" pname d.d_count))
    s;
  Buffer.contents b

let pp_snapshot ppf s =
  List.iter
    (fun (name, v) ->
      match v with
      | Count n -> Format.fprintf ppf "%s = %d@." name n
      | Level l -> Format.fprintf ppf "%s = %g@." name l
      | Dist d ->
          if d.d_count = 0 then Format.fprintf ppf "%s = dist(empty)@." name
          else
            Format.fprintf ppf "%s = dist(n=%d, p50=%g, p99=%g, max=%g)@." name
              d.d_count (quantile d 0.5) (quantile d 0.99) d.d_max)
    s
