(** Phase timing recorded into a {!Metrics} registry.

    [time metrics name f] runs [f ()] and accumulates its duration into
    the gauge [span.<name>.seconds] and its completion into the counter
    [span.<name>.calls] — even when [f] raises.  The clock defaults to
    {!default_clock} (monotonic-enough wall time, the same clock
    [Domain_pool] charges lane busy-seconds with, so a span over a
    parallel phase is comparable to the lanes' busy time); inject a fake
    clock in tests for deterministic durations. *)

val calls_key : string -> string
val seconds_key : string -> string

val default_clock : unit -> float
(** Wall-clock seconds ({!Unix.gettimeofday}).  [Sys.time] would not do:
    it counts this process's CPU seconds only, so time spent on worker
    domains or sleeping in (simulated) I/O vanishes from the span. *)

val time : ?clock:(unit -> float) -> Metrics.t -> string -> (unit -> 'a) -> 'a
