(** Phase timing recorded into a {!Metrics} registry.

    [time metrics name f] runs [f ()] and accumulates its duration into
    the gauge [span.<name>.seconds] and its completion into the counter
    [span.<name>.calls] — even when [f] raises.  The clock defaults to
    {!Sys.time} (processor seconds); inject a fake clock in tests for
    deterministic durations. *)

val calls_key : string -> string
val seconds_key : string -> string

val time : ?clock:(unit -> float) -> Metrics.t -> string -> (unit -> 'a) -> 'a
