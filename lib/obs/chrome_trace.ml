(* Chrome-trace ("catapult") JSON recorder: a Trace sink plus a
   Domain_pool task hook feeding one event list, exported in the
   trace-event format chrome://tracing and Perfetto load directly.
   Spans become complete ("X") slices, per-lane pool tasks become slices
   on their lane's tid, everything else becomes instants on lane 0 (the
   sequential decision loop).  The recorder is mutex-guarded because the
   task hook fires on worker domains. *)

type entry = {
  e_name : string;
  e_ph : [ `Complete | `Instant ];
  e_tid : int;
  e_ts : float;  (* absolute seconds on the recorder's clock *)
  e_dur : float;  (* seconds; [`Complete] only *)
  e_args : (string * string) list;  (* values pre-encoded as JSON *)
}

type t = {
  clock : unit -> float;
  epoch : float;  (* creation time; exported ts are relative to it *)
  mutex : Mutex.t;
  mutable entries : entry list;  (* newest first *)
  mutable lanes : int;
}

let create ?(clock = Span.default_clock) () =
  { clock; epoch = clock (); mutex = Mutex.create (); entries = []; lanes = 1 }

let record t e =
  Mutex.lock t.mutex;
  t.entries <- e :: t.entries;
  Mutex.unlock t.mutex

let declare_lanes t n =
  if n < 1 then invalid_arg "Chrome_trace.declare_lanes: lanes < 1";
  Mutex.lock t.mutex;
  t.lanes <- Stdlib.max t.lanes n;
  Mutex.unlock t.mutex

let instant t name args =
  record t
    { e_name = name; e_ph = `Instant; e_tid = 0; e_ts = t.clock (); e_dur = 0.0;
      e_args = args }

let on_task t ~lane ~start ~finish =
  record t
    {
      e_name = "task";
      e_ph = `Complete;
      e_tid = lane;
      e_ts = start;
      e_dur = Float.max 0.0 (finish -. start);
      e_args = [];
    }

let jstr s = "\"" ^ Metrics.json_escape s ^ "\""

let jfloat v =
  if Float.is_finite v then Printf.sprintf "%.17g" v else "null"

let sink t =
  Trace.callback (fun ev ->
      match ev with
      | Trace.Read { verdict } ->
          instant t "read" [ ("verdict", jstr (Trace.verdict_name verdict)) ]
      | Trace.Decision { verdict; action; laxity; success } ->
          instant t "decision"
            [
              ("verdict", jstr (Trace.verdict_name verdict));
              ("action", jstr (Trace.action_name action));
              ("laxity", jfloat laxity);
              ("success", jfloat success);
            ]
      | Trace.Probe_resolved -> instant t "probe-resolved" []
      | Trace.Probe_failed { attempts } ->
          instant t "probe-failed" [ ("attempts", string_of_int attempts) ]
      | Trace.Degraded { verdict; action; forced } ->
          instant t "degraded"
            [
              ("verdict", jstr (Trace.verdict_name verdict));
              ("action", jstr (Trace.action_name action));
              ("forced", string_of_bool forced);
            ]
      | Trace.Breaker { state; round } ->
          instant t "breaker"
            [ ("state", jstr state); ("round", string_of_int round) ]
      | Trace.Batch { size } -> instant t "batch" [ ("size", string_of_int size) ]
      | Trace.Early_termination { reads; recall } ->
          instant t "early-termination"
            [ ("reads", string_of_int reads); ("recall", jfloat recall) ]
      | Trace.Budget_stop { reads; recall } ->
          instant t "budget-stop"
            [ ("reads", string_of_int reads); ("recall", jfloat recall) ]
      | Trace.Replan { reads } ->
          instant t "replan" [ ("reads", string_of_int reads) ]
      | Trace.Phase { name; seconds } ->
          (* A phase arrives at completion; reconstruct its start so it
             renders as a slice covering the work. *)
          let now = t.clock () in
          record t
            {
              e_name = name;
              e_ph = `Complete;
              e_tid = 0;
              e_ts = now -. (Float.max 0.0 seconds);
              e_dur = Float.max 0.0 seconds;
              e_args = [];
            }
      | Trace.Note s -> instant t "note" [ ("text", jstr s) ])

let to_json t =
  Mutex.lock t.mutex;
  let entries = List.rev t.entries in
  let lanes = t.lanes in
  Mutex.unlock t.mutex;
  let entries =
    List.stable_sort (fun a b -> Float.compare a.e_ts b.e_ts) entries
  in
  let max_tid =
    List.fold_left (fun m e -> Stdlib.max m e.e_tid) (lanes - 1) entries
  in
  let b = Buffer.create 4096 in
  let first = ref true in
  let emit s =
    if !first then first := false else Buffer.add_char b ',';
    Buffer.add_string b "\n  ";
    Buffer.add_string b s
  in
  Buffer.add_string b "{\"traceEvents\": [";
  emit
    "{\"ph\": \"M\", \"pid\": 1, \"tid\": 0, \"name\": \"process_name\", \
     \"args\": {\"name\": \"qaq\"}}";
  (* Every configured lane is named up front, so the viewer shows a
     timeline row per lane even when a lane received no task. *)
  for tid = 0 to max_tid do
    let label =
      if tid = 0 then "lane 0 (caller)" else Printf.sprintf "lane %d" tid
    in
    emit
      (Printf.sprintf
         "{\"ph\": \"M\", \"pid\": 1, \"tid\": %d, \"name\": \
          \"thread_name\", \"args\": {\"name\": %s}}"
         tid (jstr label))
  done;
  List.iter
    (fun e ->
      let ts = Float.max 0.0 ((e.e_ts -. t.epoch) *. 1e6) in
      let args =
        match e.e_args with
        | [] -> ""
        | kvs ->
            Printf.sprintf ", \"args\": {%s}"
              (String.concat ", "
                 (List.map
                    (fun (k, v) -> Printf.sprintf "%s: %s" (jstr k) v)
                    kvs))
      in
      match e.e_ph with
      | `Complete ->
          emit
            (Printf.sprintf
               "{\"ph\": \"X\", \"pid\": 1, \"tid\": %d, \"ts\": %.3f, \
                \"dur\": %.3f, \"name\": %s%s}"
               e.e_tid ts (e.e_dur *. 1e6) (jstr e.e_name) args)
      | `Instant ->
          emit
            (Printf.sprintf
               "{\"ph\": \"i\", \"pid\": 1, \"tid\": %d, \"ts\": %.3f, \
                \"s\": \"t\", \"name\": %s%s}"
               e.e_tid ts (jstr e.e_name) args))
    entries;
  Buffer.add_string b "\n], \"displayTimeUnit\": \"ms\"}\n";
  Buffer.contents b

let write t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_json t))

let events t =
  Mutex.lock t.mutex;
  let n = List.length t.entries in
  Mutex.unlock t.mutex;
  n
