(* Chrome-trace ("catapult") JSON recorder: a Trace sink plus a
   Domain_pool task hook feeding one event list, exported in the
   trace-event format chrome://tracing and Perfetto load directly.
   Spans become complete ("X") slices, per-lane pool tasks become slices
   on their lane's tid, and everything else becomes instants — on lane 0
   (the sequential decision loop) when uncorrelated, or on a dedicated
   per-query row (tid 1000 + trace ID) when the event carries a
   {!Trace.context}, so one tenant's query can be read out of
   interleaved server traffic.  The recorder is mutex-guarded because
   the task hook fires on worker domains. *)

type entry = {
  e_name : string;
  e_ph : [ `Complete | `Instant ];
  e_tid : int;
  e_ts : float;  (* absolute seconds on the recorder's clock *)
  e_dur : float;  (* seconds; [`Complete] only *)
  e_args : (string * string) list;  (* values pre-encoded as JSON *)
}

type t = {
  clock : unit -> float;
  epoch : float;  (* creation time; exported ts are relative to it *)
  mutex : Mutex.t;
  mutable entries : entry list;  (* newest first *)
  mutable lanes : int;
  query_names : (int, string) Hashtbl.t;  (* tid -> row label *)
}

(* Per-query rows live far above any plausible pool lane count. *)
let query_tid_base = 1000
let query_tid q = query_tid_base + q

let create ?(clock = Span.default_clock) () =
  {
    clock;
    epoch = clock ();
    mutex = Mutex.create ();
    entries = [];
    lanes = 1;
    query_names = Hashtbl.create 8;
  }

let record t e =
  Mutex.lock t.mutex;
  t.entries <- e :: t.entries;
  Mutex.unlock t.mutex

let declare_lanes t n =
  if n < 1 then invalid_arg "Chrome_trace.declare_lanes: lanes < 1";
  Mutex.lock t.mutex;
  t.lanes <- Stdlib.max t.lanes n;
  Mutex.unlock t.mutex

let on_task t ~lane ~start ~finish =
  record t
    {
      e_name = "task";
      e_ph = `Complete;
      e_tid = lane;
      e_ts = start;
      e_dur = Float.max 0.0 (finish -. start);
      e_args = [];
    }

let jstr s = "\"" ^ Metrics.json_escape s ^ "\""

let jfloat v =
  if Float.is_finite v then Printf.sprintf "%.17g" v else "null"

let query_label q tenant =
  match tenant with
  | Some tn -> Printf.sprintf "query %d (%s)" q tn
  | None -> Printf.sprintf "query %d" q

(* The one event -> (slice name, args) mapping, shared by the live sink
   and the flight-recorder export so both dumps read identically.
   [Phase] is absent: it renders as a slice, not an instant. *)
let describe = function
  | Trace.Read { verdict } ->
      ("read", [ ("verdict", jstr (Trace.verdict_name verdict)) ])
  | Trace.Decision { verdict; action; laxity; success } ->
      ( "decision",
        [
          ("verdict", jstr (Trace.verdict_name verdict));
          ("action", jstr (Trace.action_name action));
          ("laxity", jfloat laxity);
          ("success", jfloat success);
        ] )
  | Trace.Probe_resolved -> ("probe-resolved", [])
  | Trace.Probe_failed { attempts } ->
      ("probe-failed", [ ("attempts", string_of_int attempts) ])
  | Trace.Degraded { verdict; action; forced } ->
      ( "degraded",
        [
          ("verdict", jstr (Trace.verdict_name verdict));
          ("action", jstr (Trace.action_name action));
          ("forced", string_of_bool forced);
        ] )
  | Trace.Breaker { state; round } ->
      ("breaker", [ ("state", jstr state); ("round", string_of_int round) ])
  | Trace.Batch { size } -> ("batch", [ ("size", string_of_int size) ])
  | Trace.Early_termination { reads; recall } ->
      ( "early-termination",
        [ ("reads", string_of_int reads); ("recall", jfloat recall) ] )
  | Trace.Budget_stop { reads; recall } ->
      ( "budget-stop",
        [ ("reads", string_of_int reads); ("recall", jfloat recall) ] )
  | Trace.Replan { reads } -> ("replan", [ ("reads", string_of_int reads) ])
  | Trace.Shortfall
      {
        requested_precision;
        requested_recall;
        guaranteed_precision;
        guaranteed_recall;
      } ->
      ( "shortfall",
        [
          ("requested_precision", jfloat requested_precision);
          ("requested_recall", jfloat requested_recall);
          ("guaranteed_precision", jfloat guaranteed_precision);
          ("guaranteed_recall", jfloat guaranteed_recall);
        ] )
  | Trace.Phase { name; seconds } ->
      (* Only reachable through [describe] from instant-style callers;
         keep it total anyway. *)
      ("phase:" ^ name, [ ("seconds", jfloat seconds) ])
  | Trace.Note s -> ("note", [ ("text", jstr s) ])

(* Context attribution rendered as explicit args so a dump is
   self-describing even outside the viewer (the e2e anomaly test greps
   these). *)
let ctx_args (ctx : Trace.context) =
  (match ctx.Trace.query with
  | Some q -> [ ("query", string_of_int q) ]
  | None -> [])
  @
  match ctx.Trace.tenant with
  | Some tn -> [ ("tenant", jstr tn) ]
  | None -> []

(* Turn one contextful event at absolute time [ts] into an entry. *)
let entry_of_event ts (ctx : Trace.context) ev =
  let tid = match ctx.Trace.query with Some q -> query_tid q | None -> 0 in
  match ev with
  | Trace.Phase { name; seconds } ->
      (* A phase arrives at completion; reconstruct its start so it
         renders as a slice covering the work. *)
      {
        e_name = name;
        e_ph = `Complete;
        e_tid = tid;
        e_ts = ts -. Float.max 0.0 seconds;
        e_dur = Float.max 0.0 seconds;
        e_args = ctx_args ctx;
      }
  | ev ->
      let name, args = describe ev in
      {
        e_name = name;
        e_ph = `Instant;
        e_tid = tid;
        e_ts = ts;
        e_dur = 0.0;
        e_args = args @ ctx_args ctx;
      }

let note_query t (ctx : Trace.context) =
  match ctx.Trace.query with
  | None -> ()
  | Some q ->
      let tid = query_tid q in
      Mutex.lock t.mutex;
      if not (Hashtbl.mem t.query_names tid) then
        Hashtbl.add t.query_names tid (query_label q ctx.Trace.tenant);
      Mutex.unlock t.mutex

let sink t =
  Trace.callback_ctx (fun ctx ev ->
      note_query t ctx;
      record t (entry_of_event (t.clock ()) ctx ev))

(* Shared document renderer: lane metadata rows 0..lanes-1, one named
   row per query tid, then every entry in timestamp order. *)
let render ~epoch ~lanes ~query_names entries =
  let entries =
    List.stable_sort (fun a b -> Float.compare a.e_ts b.e_ts) entries
  in
  let max_lane =
    List.fold_left
      (fun m e -> if e.e_tid < query_tid_base then Stdlib.max m e.e_tid else m)
      (lanes - 1) entries
  in
  let b = Buffer.create 4096 in
  let first = ref true in
  let emit s =
    if !first then first := false else Buffer.add_char b ',';
    Buffer.add_string b "\n  ";
    Buffer.add_string b s
  in
  Buffer.add_string b "{\"traceEvents\": [";
  emit
    "{\"ph\": \"M\", \"pid\": 1, \"tid\": 0, \"name\": \"process_name\", \
     \"args\": {\"name\": \"qaq\"}}";
  (* Every configured lane is named up front, so the viewer shows a
     timeline row per lane even when a lane received no task. *)
  for tid = 0 to max_lane do
    let label =
      if tid = 0 then "lane 0 (caller)" else Printf.sprintf "lane %d" tid
    in
    emit
      (Printf.sprintf
         "{\"ph\": \"M\", \"pid\": 1, \"tid\": %d, \"name\": \
          \"thread_name\", \"args\": {\"name\": %s}}"
         tid (jstr label))
  done;
  let named =
    Hashtbl.fold (fun tid label acc -> (tid, label) :: acc) query_names []
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  in
  List.iter
    (fun (tid, label) ->
      emit
        (Printf.sprintf
           "{\"ph\": \"M\", \"pid\": 1, \"tid\": %d, \"name\": \
            \"thread_name\", \"args\": {\"name\": %s}}"
           tid (jstr label)))
    named;
  List.iter
    (fun e ->
      let ts = Float.max 0.0 ((e.e_ts -. epoch) *. 1e6) in
      let args =
        match e.e_args with
        | [] -> ""
        | kvs ->
            Printf.sprintf ", \"args\": {%s}"
              (String.concat ", "
                 (List.map
                    (fun (k, v) -> Printf.sprintf "%s: %s" (jstr k) v)
                    kvs))
      in
      match e.e_ph with
      | `Complete ->
          emit
            (Printf.sprintf
               "{\"ph\": \"X\", \"pid\": 1, \"tid\": %d, \"ts\": %.3f, \
                \"dur\": %.3f, \"name\": %s%s}"
               e.e_tid ts (e.e_dur *. 1e6) (jstr e.e_name) args)
      | `Instant ->
          emit
            (Printf.sprintf
               "{\"ph\": \"i\", \"pid\": 1, \"tid\": %d, \"ts\": %.3f, \
                \"s\": \"t\", \"name\": %s%s}"
               e.e_tid ts (jstr e.e_name) args))
    entries;
  Buffer.add_string b "\n], \"displayTimeUnit\": \"ms\"}\n";
  Buffer.contents b

let to_json t =
  Mutex.lock t.mutex;
  let entries = List.rev t.entries in
  let lanes = t.lanes in
  let query_names = Hashtbl.copy t.query_names in
  Mutex.unlock t.mutex;
  render ~epoch:t.epoch ~lanes ~query_names entries

let json_of_entries ?epoch events =
  let epoch =
    match epoch with
    | Some e -> e
    | None ->
        List.fold_left (fun m (ts, _, _) -> Float.min m ts) Float.infinity
          events
        |> fun m -> if Float.is_finite m then m else 0.0
  in
  let query_names = Hashtbl.create 8 in
  let entries =
    List.map
      (fun (ts, ctx, ev) ->
        (match ctx.Trace.query with
        | Some q ->
            let tid = query_tid q in
            if not (Hashtbl.mem query_names tid) then
              Hashtbl.add query_names tid (query_label q ctx.Trace.tenant)
        | None -> ());
        entry_of_event ts ctx ev)
      events
  in
  render ~epoch ~lanes:1 ~query_names entries

let write t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_json t))

let events t =
  Mutex.lock t.mutex;
  let n = List.length t.entries in
  Mutex.unlock t.mutex;
  n
