(** Sliding-window metrics: counters and histograms remembering only
    the last [window_seconds] of observations — the live view behind
    the server's rolling SLO tracking, complementing the cumulative
    {!Metrics} registry.

    The window is [slices] equal slices addressed by absolute slot
    number; a writer landing on a cell left over from an expired slot
    resets it in place, so stale data self-invalidates with no sweeper
    thread.  Reads merge every cell still inside the window, so a
    reported total/rate/quantile covers between [window - slice] and
    [window] seconds of history.  All operations are mutex-guarded per
    instance. *)

type spec
(** Window geometry plus the clock: shared by every counter/series of
    one tracker so they stay in step. *)

val spec :
  ?slices:int -> ?clock:(unit -> float) -> window_seconds:float -> unit -> spec
(** [slices] defaults to 12 (e.g. a 60 s window in 5 s steps);
    [clock] defaults to the wall clock.
    @raise Invalid_argument if [slices < 1] or [window_seconds] is not
    finite and positive. *)

val window_seconds : spec -> float

(** {2 Windowed counters} *)

type counter

val counter : spec -> counter
val counter_incr : counter -> unit
val counter_add : counter -> float -> unit

val counter_total : counter -> float
(** Sum of everything added inside the window. *)

val counter_rate : counter -> float
(** [counter_total / window_seconds] — events (or units) per second. *)

(** {2 Windowed histograms} *)

type series

val series : spec -> series

val series_observe : series -> float -> unit
(** @raise Invalid_argument on non-finite or negative values (the
    {!Metrics.observe} contract). *)

val series_dist : series -> Metrics.dist
(** Merged capture of the window's observations ({!Metrics.empty_dist}
    when idle); feed to {!Metrics.quantile} / exporters. *)

val series_quantile : series -> float -> float
val series_count : series -> int
