type verdict = [ `Yes | `No | `Maybe ]
type action = [ `Forward | `Probe | `Ignore ]

type context = { query : int option; tenant : string option }

let no_context = { query = None; tenant = None }

type event =
  | Read of { verdict : verdict }
  | Decision of {
      verdict : verdict;
      action : action;
      laxity : float;
      success : float;
    }
  | Probe_resolved
  | Probe_failed of { attempts : int }
  | Degraded of { verdict : verdict; action : action; forced : bool }
  | Breaker of { state : string; round : int }
  | Batch of { size : int }
  | Early_termination of { reads : int; recall : float }
  | Budget_stop of { reads : int; recall : float }
  | Replan of { reads : int }
  | Shortfall of {
      requested_precision : float;
      requested_recall : float;
      guaranteed_precision : float;
      guaranteed_recall : float;
    }
  | Phase of { name : string; seconds : float }
  | Note of string

type sink = Null | Callback of (context -> event -> unit)

let null = Null
let callback f = Callback (fun _ctx e -> f e)
let callback_ctx f = Callback f
let enabled = function Null -> false | Callback _ -> true
let emit_ctx sink ctx e = match sink with Null -> () | Callback f -> f ctx e
let emit sink e = emit_ctx sink no_context e

let with_context ctx = function
  | Null -> Null
  | Callback f -> Callback (fun _ e -> f ctx e)

let tee a b =
  match (a, b) with
  | Null, s | s, Null -> s
  | Callback f, Callback g ->
      let lock = Mutex.create () in
      Callback
        (fun ctx e ->
          Mutex.protect lock (fun () ->
              f ctx e;
              g ctx e))

let collector () =
  let lock = Mutex.create () in
  let events = ref [] in
  ( Callback
      (fun _ctx e -> Mutex.protect lock (fun () -> events := e :: !events)),
    fun () -> Mutex.protect lock (fun () -> List.rev !events) )

let collector_ctx () =
  let lock = Mutex.create () in
  let events = ref [] in
  ( Callback
      (fun ctx e ->
        Mutex.protect lock (fun () -> events := (ctx, e) :: !events)),
    fun () -> Mutex.protect lock (fun () -> List.rev !events) )

let verdict_name = function `Yes -> "YES" | `No -> "NO" | `Maybe -> "MAYBE"

let action_name = function
  | `Forward -> "forward"
  | `Probe -> "probe"
  | `Ignore -> "ignore"

let pp_event ppf = function
  | Read { verdict } -> Format.fprintf ppf "read %s" (verdict_name verdict)
  | Decision { verdict; action; laxity; success } ->
      Format.fprintf ppf "decision %s -> %s (l=%g s=%g)" (verdict_name verdict)
        (action_name action) laxity success
  | Probe_resolved -> Format.pp_print_string ppf "probe resolved"
  | Probe_failed { attempts } ->
      Format.fprintf ppf "probe failed permanently after %d attempts" attempts
  | Degraded { verdict; action; forced } ->
      Format.fprintf ppf "degraded %s -> %s%s" (verdict_name verdict)
        (action_name action)
        (if forced then " (forced)" else "")
  | Breaker { state; round } ->
      Format.fprintf ppf "breaker %s at round %d" state round
  | Batch { size } -> Format.fprintf ppf "batch dispatched (size %d)" size
  | Early_termination { reads; recall } ->
      Format.fprintf ppf "early termination after %d reads (r^G=%g)" reads
        recall
  | Budget_stop { reads; recall } ->
      Format.fprintf ppf "budget exhausted after %d reads (r^G=%g)" reads
        recall
  | Replan { reads } -> Format.fprintf ppf "replan at %d reads" reads
  | Shortfall
      {
        requested_precision;
        requested_recall;
        guaranteed_precision;
        guaranteed_recall;
      } ->
      Format.fprintf ppf
        "guarantee shortfall (p %g vs requested %g, r %g vs requested %g)"
        guaranteed_precision requested_precision guaranteed_recall
        requested_recall
  | Phase { name; seconds } ->
      Format.fprintf ppf "phase %s done in %gs" name seconds
  | Note s -> Format.pp_print_string ppf s

let context_label ctx =
  match (ctx.query, ctx.tenant) with
  | None, None -> ""
  | Some q, None -> Printf.sprintf "[q%d]" q
  | Some q, Some t -> Printf.sprintf "[q%d %s]" q t
  | None, Some t -> Printf.sprintf "[%s]" t

let formatter ppf =
  let lock = Mutex.create () in
  Callback
    (fun ctx e ->
      Mutex.protect lock (fun () ->
          Format.fprintf ppf "trace%s: %a@." (context_label ctx) pp_event e))
