type verdict = [ `Yes | `No | `Maybe ]
type action = [ `Forward | `Probe | `Ignore ]

type event =
  | Read of { verdict : verdict }
  | Decision of {
      verdict : verdict;
      action : action;
      laxity : float;
      success : float;
    }
  | Probe_resolved
  | Probe_failed of { attempts : int }
  | Degraded of { verdict : verdict; action : action; forced : bool }
  | Breaker of { state : string; round : int }
  | Batch of { size : int }
  | Early_termination of { reads : int; recall : float }
  | Budget_stop of { reads : int; recall : float }
  | Replan of { reads : int }
  | Phase of { name : string; seconds : float }
  | Note of string

type sink = Null | Callback of (event -> unit)

let null = Null
let callback f = Callback f
let enabled = function Null -> false | Callback _ -> true
let emit sink e = match sink with Null -> () | Callback f -> f e

let tee a b =
  match (a, b) with
  | Null, s | s, Null -> s
  | Callback f, Callback g ->
      Callback
        (fun e ->
          f e;
          g e)

let collector () =
  let events = ref [] in
  (Callback (fun e -> events := e :: !events), fun () -> List.rev !events)

let verdict_name = function `Yes -> "YES" | `No -> "NO" | `Maybe -> "MAYBE"

let action_name = function
  | `Forward -> "forward"
  | `Probe -> "probe"
  | `Ignore -> "ignore"

let pp_event ppf = function
  | Read { verdict } -> Format.fprintf ppf "read %s" (verdict_name verdict)
  | Decision { verdict; action; laxity; success } ->
      Format.fprintf ppf "decision %s -> %s (l=%g s=%g)" (verdict_name verdict)
        (action_name action) laxity success
  | Probe_resolved -> Format.pp_print_string ppf "probe resolved"
  | Probe_failed { attempts } ->
      Format.fprintf ppf "probe failed permanently after %d attempts" attempts
  | Degraded { verdict; action; forced } ->
      Format.fprintf ppf "degraded %s -> %s%s" (verdict_name verdict)
        (action_name action)
        (if forced then " (forced)" else "")
  | Breaker { state; round } ->
      Format.fprintf ppf "breaker %s at round %d" state round
  | Batch { size } -> Format.fprintf ppf "batch dispatched (size %d)" size
  | Early_termination { reads; recall } ->
      Format.fprintf ppf "early termination after %d reads (r^G=%g)" reads
        recall
  | Budget_stop { reads; recall } ->
      Format.fprintf ppf "budget exhausted after %d reads (r^G=%g)" reads
        recall
  | Replan { reads } -> Format.fprintf ppf "replan at %d reads" reads
  | Phase { name; seconds } ->
      Format.fprintf ppf "phase %s done in %gs" name seconds
  | Note s -> Format.pp_print_string ppf s

let formatter ppf = Callback (fun e -> Format.fprintf ppf "trace: %a@." pp_event e)
