(** Structured run-event tracing.

    A sink receives the engine's significant events — object reads,
    decisions, probe resolutions, batch dispatches, early termination,
    adaptive replans, phase completions.  The {!null} sink is free:
    instrumented code guards event {e construction} behind {!enabled},
    so a disabled trace allocates nothing on the per-object path.

    Verdicts and actions are plain polymorphic variants so this library
    stays at the bottom of the dependency graph (no {!Tvl} or
    {!Decision} dependency); producers map their own types in. *)

type verdict = [ `Yes | `No | `Maybe ]
type action = [ `Forward | `Probe | `Ignore ]

type event =
  | Read of { verdict : verdict }  (** one object read and classified *)
  | Decision of {
      verdict : verdict;
      action : action;
      laxity : float;
      success : float;
    }  (** the operator committed to an action for one object *)
  | Probe_resolved  (** one pending probe resolved to its precise object *)
  | Probe_failed of { attempts : int }
      (** one pending probe exhausted its retry budget and will never
          resolve; the object degrades to an imprecise write decision *)
  | Degraded of { verdict : verdict; action : action; forced : bool }
      (** the operator fell back to [action] for an object whose probe
          failed; [forced] when no guarantee-feasible action existed *)
  | Breaker of { state : string; round : int }
      (** a circuit breaker changed state ("open" / "half-open" /
          "closed") at the given probe round *)
  | Batch of { size : int }  (** one probe batch dispatched to the source *)
  | Early_termination of { reads : int; recall : float }
      (** the scan stopped before exhausting the input *)
  | Budget_stop of { reads : int; recall : float }
      (** the scan stopped because the cost/time budget ran out before
          the recall bound was reached *)
  | Replan of { reads : int }  (** adaptive re-estimation re-solved the plan *)
  | Phase of { name : string; seconds : float }  (** a {!Span} completed *)
  | Note of string  (** freeform annotation *)

type sink

val null : sink
(** Discards everything; {!enabled} is [false]. *)

val callback : (event -> unit) -> sink

val collector : unit -> sink * (unit -> event list)
(** A sink that buffers events plus a function returning them in
    emission order — the test-friendly sink. *)

val formatter : Format.formatter -> sink
(** Prints one line per event ([trace: ...]). *)

val tee : sink -> sink -> sink
(** Both sinks receive every event, first argument first; {!null}
    arguments collapse away, so teeing with {!null} stays free. *)

val enabled : sink -> bool
(** Guard event construction with this so the null sink costs nothing:
    [if Trace.enabled sink then Trace.emit sink (Read ...)]. *)

val emit : sink -> event -> unit
val pp_event : Format.formatter -> event -> unit

val verdict_name : verdict -> string
(** ["YES"] / ["NO"] / ["MAYBE"], as printed by {!pp_event}. *)

val action_name : action -> string
(** ["forward"] / ["probe"] / ["ignore"]. *)
