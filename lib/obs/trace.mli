(** Structured run-event tracing.

    A sink receives the engine's significant events — object reads,
    decisions, probe resolutions, batch dispatches, early termination,
    adaptive replans, phase completions.  The {!null} sink is free:
    instrumented code guards event {e construction} behind {!enabled},
    so a disabled trace allocates nothing on the per-object path.

    Every emission carries a {!context} — which query (trace ID) and
    which tenant the event belongs to — so that sinks observing a
    concurrent server can attribute interleaved events.  Code that does
    not care about attribution keeps using {!callback} / {!emit}; the
    engine stamps a context onto a whole sink with {!with_context} so
    downstream emitters stay context-oblivious.

    The {!tee}, {!formatter} and collector sinks serialise emission
    with an internal mutex and are safe to share across domains.

    Verdicts and actions are plain polymorphic variants so this library
    stays at the bottom of the dependency graph (no {!Tvl} or
    {!Decision} dependency); producers map their own types in. *)

type verdict = [ `Yes | `No | `Maybe ]
type action = [ `Forward | `Probe | `Ignore ]

type context = { query : int option; tenant : string option }
(** Attribution for an event: the engine-minted per-query trace ID and
    the owning tenant, when known. *)

val no_context : context
(** Both fields [None] — what plain {!emit} stamps. *)

type event =
  | Read of { verdict : verdict }  (** one object read and classified *)
  | Decision of {
      verdict : verdict;
      action : action;
      laxity : float;
      success : float;
    }  (** the operator committed to an action for one object *)
  | Probe_resolved  (** one pending probe resolved to its precise object *)
  | Probe_failed of { attempts : int }
      (** one pending probe exhausted its retry budget and will never
          resolve; the object degrades to an imprecise write decision *)
  | Degraded of { verdict : verdict; action : action; forced : bool }
      (** the operator fell back to [action] for an object whose probe
          failed; [forced] when no guarantee-feasible action existed *)
  | Breaker of { state : string; round : int }
      (** a circuit breaker changed state ("open" / "half-open" /
          "closed") at the given probe round *)
  | Batch of { size : int }  (** one probe batch dispatched to the source *)
  | Early_termination of { reads : int; recall : float }
      (** the scan stopped before exhausting the input *)
  | Budget_stop of { reads : int; recall : float }
      (** the scan stopped because the cost/time budget ran out before
          the recall bound was reached *)
  | Replan of { reads : int }  (** adaptive re-estimation re-solved the plan *)
  | Shortfall of {
      requested_precision : float;
      requested_recall : float;
      guaranteed_precision : float;
      guaranteed_recall : float;
    }
      (** the run finished without meeting the requested quality
          targets — the guaranteed lower bounds fell short *)
  | Phase of { name : string; seconds : float }  (** a {!Span} completed *)
  | Note of string  (** freeform annotation *)

type sink

val null : sink
(** Discards everything; {!enabled} is [false]. *)

val callback : (event -> unit) -> sink
(** A sink that ignores the context — for consumers that only care
    about the event stream. *)

val callback_ctx : (context -> event -> unit) -> sink
(** A sink that receives the full attribution with every event. *)

val collector : unit -> sink * (unit -> event list)
(** A sink that buffers events plus a function returning them in
    emission order — the test-friendly sink.  Mutex-guarded. *)

val collector_ctx : unit -> sink * (unit -> (context * event) list)
(** Like {!collector} but keeps each event's context. *)

val formatter : Format.formatter -> sink
(** Prints one line per event ([trace: ...]; [trace[q7 tenant]: ...]
    when the event carries a context).  Mutex-guarded, so concurrent
    domains never interleave within a line. *)

val tee : sink -> sink -> sink
(** Both sinks receive every event, first argument first; {!null}
    arguments collapse away, so teeing with {!null} stays free.  The
    combined emission is mutex-guarded. *)

val with_context : context -> sink -> sink
(** [with_context ctx sink] stamps [ctx] on every event passing
    through, overriding whatever context the emitter supplied.  This is
    how the engine attributes a whole query's events: wrap the shared
    sink once, hand the wrapped sink to context-oblivious emitters.
    {!null} stays {!null} (and so stays free). *)

val enabled : sink -> bool
(** Guard event construction with this so the null sink costs nothing:
    [if Trace.enabled sink then Trace.emit sink (Read ...)]. *)

val emit : sink -> event -> unit
(** Emit with {!no_context}. *)

val emit_ctx : sink -> context -> event -> unit
val pp_event : Format.formatter -> event -> unit

val context_label : context -> string
(** [""] for {!no_context}, ["[q7]"] / ["[q7 tenant]"] otherwise — the
    prefix {!formatter} uses. *)

val verdict_name : verdict -> string
(** ["YES"] / ["NO"] / ["MAYBE"], as printed by {!pp_event}. *)

val action_name : action -> string
(** ["forward"] / ["probe"] / ["ignore"]. *)
