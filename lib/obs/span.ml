let calls_key name = "span." ^ name ^ ".calls"
let seconds_key name = "span." ^ name ^ ".seconds"

(* Wall clock, not [Sys.time]: spans cover work running on worker
   domains and simulated I/O waits, neither of which accrues processor
   time on the calling domain.  [Domain_pool] measures its lanes with
   the same clock, so span and busy times compare directly. *)
let default_clock = Unix.gettimeofday

let time ?(clock = default_clock) metrics name f =
  let calls = Metrics.counter metrics (calls_key name) in
  let seconds = Metrics.gauge metrics (seconds_key name) in
  let t0 = clock () in
  Fun.protect
    ~finally:(fun () ->
      let dt = clock () -. t0 in
      (* Grouped: the seconds read-modify-write must not interleave
         with another domain timing the same span. *)
      Metrics.atomically metrics (fun () ->
          Metrics.incr calls;
          Metrics.set seconds (Metrics.level seconds +. dt)))
    f
