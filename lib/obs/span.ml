let calls_key name = "span." ^ name ^ ".calls"
let seconds_key name = "span." ^ name ^ ".seconds"

let time ?(clock = Sys.time) metrics name f =
  let calls = Metrics.counter metrics (calls_key name) in
  let seconds = Metrics.gauge metrics (seconds_key name) in
  let t0 = clock () in
  Fun.protect
    ~finally:(fun () ->
      Metrics.incr calls;
      Metrics.set seconds (Metrics.level seconds +. (clock () -. t0)))
    f
