(** Registry of named monotonic counters and gauges.

    The observability substrate for the whole engine: every instrumented
    component registers its counters here by name, a snapshot captures
    all of them at once, and the snapshot exports to JSON or
    Prometheus-style text.  Counters are monotonic ints (work performed:
    reads, probes, batch dispatches); gauges are floats free to move in
    either direction (accumulated latency, span durations).

    The registry is deliberately independent of {!Cost_meter}: the two
    accountings are maintained at separate instrumentation sites, so a
    test can assert that they reconcile — any future code path that does
    work without charging it (or charges it without instrumenting it)
    breaks the equality instead of silently skewing an experiment. *)

type t
(** A mutable registry. *)

val create : unit -> t

type counter
(** A named monotonic integer counter. *)

type gauge
(** A named float gauge. *)

val counter : t -> string -> counter
(** [counter t name] returns the counter registered under [name],
    creating it (at 0) on first use.  Handles are stable: resolve once,
    increment many times — the hot path pays no table lookup.
    @raise Invalid_argument if [name] is registered as a gauge. *)

val gauge : t -> string -> gauge
(** Get-or-create, like {!counter}.
    @raise Invalid_argument if [name] is registered as a counter. *)

val incr : counter -> unit

val add : counter -> int -> unit
(** @raise Invalid_argument on a negative increment (counters are
    monotonic). *)

val count : counter -> int
val counter_name : counter -> string
val set : gauge -> float -> unit
val level : gauge -> float
val gauge_name : gauge -> string

type value = Count of int | Level of float

type snapshot = (string * value) list
(** Name-sorted point-in-time capture of every registered metric. *)

val snapshot : t -> snapshot
val get : snapshot -> string -> value option

val count_of : snapshot -> string -> int
(** The counter value under that name; 0 when absent or a gauge (an
    unregistered counter never counted anything). *)

val diff : later:snapshot -> earlier:snapshot -> snapshot
(** Per-name delta: counters subtract ([later - earlier], with names
    absent from [earlier] treated as 0); gauges keep the later level.
    Names only in [earlier] are dropped. *)

val to_json : snapshot -> string
(** A flat JSON object, one member per metric; non-finite gauge levels
    export as [null]. *)

val to_prometheus : snapshot -> string
(** Prometheus text exposition: a [# TYPE] line and a sample per metric,
    with names mangled to the Prometheus charset (dots become
    underscores). *)

val pp_snapshot : Format.formatter -> snapshot -> unit
