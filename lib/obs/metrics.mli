(** Registry of named monotonic counters, gauges and histograms.

    The observability substrate for the whole engine: every instrumented
    component registers its counters here by name, a snapshot captures
    all of them at once, and the snapshot exports to JSON or
    Prometheus-style text.  Counters are monotonic ints (work performed:
    reads, probes, batch dispatches); gauges are floats free to move in
    either direction (accumulated latency, span durations); histograms
    record whole value distributions (latencies, laxities, success
    probabilities) in fixed log-spaced buckets with quantile estimation.

    The registry is deliberately independent of {!Cost_meter}: the two
    accountings are maintained at separate instrumentation sites, so a
    test can assert that they reconcile — any future code path that does
    work without charging it (or charges it without instrumenting it)
    breaks the equality instead of silently skewing an experiment. *)

type t
(** A mutable registry.  Concurrency-safe: every update and
    {!snapshot} runs under one per-registry lock, so a snapshot taken
    while other domains write never captures a torn state. *)

val create : unit -> t

val atomically : t -> (unit -> 'a) -> 'a
(** [atomically t f] runs [f] holding the registry lock, so a group of
    related updates (e.g. a request counter plus exactly one of its
    outcome counters) becomes indivisible with respect to {!snapshot}
    and other [atomically] blocks.  The lock is re-entrant: metric
    operations inside [f] (including registration) are fine.  Keep [f]
    short — it stalls every other writer on this registry. *)

type counter
(** A named monotonic integer counter. *)

type gauge
(** A named float gauge. *)

type histogram
(** A named log-bucketed distribution of non-negative values. *)

val counter : t -> string -> counter
(** [counter t name] returns the counter registered under [name],
    creating it (at 0) on first use.  Handles are stable: resolve once,
    increment many times — the hot path pays no table lookup.
    @raise Invalid_argument if [name] is registered as another kind, or
    if its Prometheus exposition name collides with a different metric's
    (e.g. ["a.b"] vs ["a_b"] — mangling is lossy, so ambiguous names are
    rejected at registration). *)

val gauge : t -> string -> gauge
(** Get-or-create, like {!counter}.
    @raise Invalid_argument as for {!counter}. *)

val histogram : t -> string -> histogram
(** Get-or-create, like {!counter}.  A histogram additionally reserves
    the [_bucket]/[_sum]/[_count] exposition names its Prometheus series
    use.
    @raise Invalid_argument as for {!counter}. *)

val incr : counter -> unit

val add : counter -> int -> unit
(** @raise Invalid_argument on a negative increment (counters are
    monotonic). *)

val count : counter -> int
val counter_name : counter -> string
val set : gauge -> float -> unit
val level : gauge -> float
val gauge_name : gauge -> string

val observe : histogram -> float -> unit
(** Record one value.
    @raise Invalid_argument on a non-finite or negative value (same
    contract as [Hist1d]: bad observations are call-site bugs, not data). *)

val histogram_name : histogram -> string

val observations : histogram -> int
(** Values observed so far. *)

(** {2 Bucket layout}

    All histograms share one fixed layout: bucket 0 holds values
    [<= bucket_upper_bound 0] (including zeros), later buckets grow by
    [2{^1/4}] per step (≤ ~19% relative error), and the last bucket is
    the overflow with an infinite bound. *)

val bucket_count : int
val bucket_upper_bound : int -> float
(** Inclusive upper bound of a bucket; [infinity] for the last.
    @raise Invalid_argument if the index is out of range. *)

type dist = {
  d_count : int;
  d_sum : float;
  d_min : float;  (** [+inf] when empty *)
  d_max : float;  (** [-inf] when empty *)
  d_buckets : int array;  (** length {!bucket_count} *)
}
(** An immutable histogram capture. *)

val quantile : dist -> float -> float
(** [quantile d q] estimates the [q]-quantile ([q] clamped to [0, 1])
    from the buckets: the geometric midpoint of the bucket holding the
    rank, clamped to the observed [min]/[max] — so a single observation
    is returned exactly.  [nan] when the capture is empty. *)

val dist_observe : dist -> float -> dist
(** Functional observe: a fresh capture with one more value recorded —
    the building block for windowed (rolling) histograms that keep a
    [dist] per time slice.
    @raise Invalid_argument as for {!observe}. *)

val merge_dist : dist -> dist -> dist
(** Element-wise union of two captures (counts, sums and buckets add;
    extrema combine) — the same layout everywhere makes this total. *)

val empty_dist : dist

type value = Count of int | Level of float | Dist of dist

type snapshot = (string * value) list
(** Name-sorted point-in-time capture of every registered metric. *)

val snapshot : t -> snapshot
val get : snapshot -> string -> value option

val count_of : snapshot -> string -> int
(** The counter value under that name; 0 when absent or not a counter
    (an unregistered counter never counted anything). *)

val dist_of : snapshot -> string -> dist option
(** The histogram capture under that name, when it is one. *)

val diff : later:snapshot -> earlier:snapshot -> snapshot
(** Per-name delta: counters subtract ([later - earlier], with names
    absent from [earlier] treated as 0); histograms subtract counts,
    sums and buckets (their [min]/[max] keep the later capture's, which
    still bound the window); gauges keep the later level.  Names only in
    [earlier] are dropped. *)

val to_json : snapshot -> string
(** A flat JSON object, one member per metric; non-finite gauge levels
    export as [null]; histograms export as nested objects with
    [count]/[sum]/[min]/[max]/[p50]/[p90]/[p99]. *)

val to_prometheus : snapshot -> string
(** Prometheus text exposition: a [# TYPE] line and a sample per metric,
    with names mangled to the Prometheus charset (dots become
    underscores; collisions were rejected at registration).  Histograms
    expose the standard cumulative [_bucket{le="..."}] series (empty
    buckets elided, ["+Inf"] always present) plus [_sum] and [_count]. *)

val prometheus_name : string -> string
(** The mangling {!to_prometheus} applies to one metric name. *)

val json_escape : string -> string
(** JSON string-body escaping, shared with the other exporters. *)

val pp_snapshot : Format.formatter -> snapshot -> unit
