type pair = { left : Interval_data.record; right : Interval_data.record }

let supports p =
  (Uncertain.support p.left.Interval_data.belief,
   Uncertain.support p.right.Interval_data.belief)

let instance ~epsilon : pair Operator.instance =
  {
    classify =
      (fun p ->
        let l, r = supports p in
        Pair_distance.classify ~epsilon l r);
    laxity =
      (fun p ->
        let l, r = supports p in
        Interval.width (Pair_distance.distance_interval l r));
    success =
      (fun p ->
        let l, r = supports p in
        Pair_distance.success ~epsilon l r);
  }

let in_exact ~epsilon p =
  Float.abs (p.left.Interval_data.truth -. p.right.Interval_data.truth)
  <= epsilon

let exact_size ~epsilon left right =
  let n = ref 0 in
  Array.iter
    (fun l ->
      Array.iter (fun r -> if in_exact ~epsilon { left = l; right = r } then incr n) right)
    left;
  !n

type report = {
  answer : pair Operator.emitted list;
  guarantees : Quality.guarantees;
  requirements : Quality.requirements;
  counts : Cost_meter.counts;
  pairs_total : int;
  object_probes : int;
  probe_requests : int;
  answer_size : int;
  exhausted : bool;
}

(* Probe cache: the cross-query {!Probe_broker}, keyed per (side, record
   id), with the join as its only tenant.  With sharing, the broker's
   infinite freshness window makes each object a backend fetch — and a
   meter charge — at most once, however many pairs it appears in; a zero
   window reproduces the unshared (re-fetch every request) accounting.
   The broker's own [requests]/[charged] statistics are the join's
   historical [probe_requests]/[object_probes] counters, unchanged. *)
type cache = {
  broker : (bool * Interval_data.record) Probe_broker.t;
  share : bool;  (* false: re-fetch (and re-charge) on every request *)
}

let side_key ~is_left id = (id lsl 1) lor (if is_left then 1 else 0)

let make_cache ~meter ~share =
  let broker =
    Probe_broker.create
      ~freshness:(if share then infinity else 0.0)
      ~key:(fun (is_left, r) -> side_key ~is_left r.Interval_data.id)
      (Array.map (fun (is_left, r) ->
           Cost_meter.charge_probe meter;
           Probe_driver.Resolved (is_left, Interval_data.probe r)))
  in
  { broker; share }

(* Resolve one side of a pair.  [r] must be the record as stored in the
   base relation: a record that is imprecise there counts as a probe
   request even when the broker already holds it fresh (that is
   precisely the saving being measured); only a backend fetch is
   charged. *)
let resolve_record cache ~is_left (r : Interval_data.record) =
  if Uncertain.laxity r.Interval_data.belief = 0.0 then r
  else
    match Probe_broker.fetch cache.broker (is_left, r) with
    | Probe_driver.Resolved (_, precise) -> precise
    | Probe_driver.Shrunk _ ->
        (* the single-tier resolver above only ever resolves to points *)
        assert false
    | Probe_driver.Failed _ ->
        (* the in-process resolver above never fails, and the broker has
           no capacity bound or breaker to refuse it *)
        assert false

let is_resolved cache ~is_left (r : Interval_data.record) =
  Uncertain.laxity r.Interval_data.belief = 0.0
  || Probe_broker.is_fresh cache.broker (side_key ~is_left r.Interval_data.id)

(* The current belief of a side, given the cache: pairs are generated
   from the base relations, so a record probed through an earlier pair
   must be seen as resolved here too.  Without sharing, nothing carries
   over — each pair starts from the stored beliefs. *)
let refresh cache p =
  if not cache.share then p
  else begin
    let left =
      if is_resolved cache ~is_left:true p.left then
        Interval_data.probe p.left
      else p.left
    in
    let right =
      if is_resolved cache ~is_left:false p.right then
        Interval_data.probe p.right
      else p.right
    in
    { left; right }
  end

let run ~rng ?meter ?emit ?(collect = true) ?(enforce = true)
    ?(share_probes = true) ?(policy = Policy.stingy)
    ~(requirements : Quality.requirements) ~epsilon ~left ~right () =
  if epsilon < 0.0 then invalid_arg "Band_join.run: epsilon < 0";
  let meter = match meter with Some m -> m | None -> Cost_meter.create () in
  let counts_before = Cost_meter.counts meter in
  let pairs_total = Array.length left * Array.length right in
  let counters = Counters.create ~total:pairs_total in
  let cache = make_cache ~meter ~share:share_probes in
  let inst = instance ~epsilon in
  let answer = ref [] in
  let deliver entry =
    (match emit with Some f -> f entry | None -> ());
    if collect then answer := entry :: !answer
  in
  let forward_imprecise p =
    Cost_meter.charge_write_imprecise meter;
    deliver { Operator.obj = p; precise = false }
  in
  let forward_precise p =
    Cost_meter.charge_write_precise meter;
    deliver { Operator.obj = p; precise = true }
  in
  (* A Probe decision resolves the pair: wider side first (the more
     informative fetch).  If that already settles the verdict to NO the
     second probe is saved — the pair is discarded, so its residual
     laxity is irrelevant.  Otherwise the other side is resolved too,
     because an emitted probed pair must have laxity 0.  [base] is the
     pair as stored in the relations, so cache hits count as requests. *)
  let probe_pair base =
    let width r = Uncertain.laxity r.Interval_data.belief in
    let resolve_left p = { p with left = resolve_record cache ~is_left:true p.left } in
    let resolve_right p =
      { p with right = resolve_record cache ~is_left:false p.right }
    in
    let first, second =
      if width base.left >= width base.right then (resolve_left, resolve_right)
      else (resolve_right, resolve_left)
    in
    let p = first base in
    let l, r = supports p in
    match Pair_distance.classify ~epsilon l r with
    | Tvl.No -> p
    | Tvl.Yes | Tvl.Maybe -> second p
  in
  let choose ~verdict ~laxity preference =
    if enforce then
      Decision.first_feasible counters requirements ~verdict ~laxity ~preference
    else
      match preference with a :: _ -> a | [] -> Decision.Probe
  in
  let finished () = Counters.recall_guarantee counters >= requirements.recall in
  let n_right = Array.length right in
  let pos = ref 0 in
  while !pos < pairs_total && not (finished ()) do
    let base =
      { left = left.(!pos / n_right); right = right.(!pos mod n_right) }
    in
    let p = refresh cache base in
    incr pos;
    Cost_meter.charge_read meter;
    (match inst.classify p with
    | Tvl.No -> Counters.saw_no counters
    | Tvl.Yes as verdict -> (
        let laxity = inst.laxity p in
        let preference =
          Policy.preference policy ~rng ~requirements ~counters ~verdict
            ~laxity ~success:1.0
        in
        match choose ~verdict ~laxity preference with
        | Decision.Forward ->
            Counters.forward_yes counters ~laxity;
            forward_imprecise p
        | Decision.Probe ->
            let resolved = probe_pair base in
            Counters.probe_yes counters;
            forward_precise resolved
        | Decision.Ignore -> Counters.ignore_yes counters)
    | Tvl.Maybe as verdict -> (
        let laxity = inst.laxity p in
        let success = inst.success p in
        let preference =
          Policy.preference policy ~rng ~requirements ~counters ~verdict
            ~laxity ~success
        in
        match choose ~verdict ~laxity preference with
        | Decision.Forward ->
            Counters.forward_maybe counters ~laxity;
            forward_imprecise p
        | Decision.Probe -> (
            let resolved = probe_pair base in
            match inst.classify resolved with
            | Tvl.Yes ->
                Counters.probe_maybe_yes counters;
                forward_precise resolved
            | Tvl.No -> Counters.probe_maybe_no counters
            | Tvl.Maybe -> raise Operator.Inconsistent_probe)
        | Decision.Ignore -> Counters.ignore_maybe counters))
  done;
  let counts_after = Cost_meter.counts meter in
  {
    answer = List.rev !answer;
    guarantees = Counters.guarantees counters;
    requirements;
    counts =
      {
        Cost_meter.reads = counts_after.reads - counts_before.reads;
        probes = counts_after.probes - counts_before.probes;
        batches = counts_after.batches - counts_before.batches;
        writes_imprecise =
          counts_after.writes_imprecise - counts_before.writes_imprecise;
        writes_precise =
          counts_after.writes_precise - counts_before.writes_precise;
      };
    pairs_total;
    object_probes = (Probe_broker.stats cache.broker).charged;
    probe_requests = (Probe_broker.stats cache.broker).requests;
    answer_size = Counters.answer_size counters;
    exhausted = !pos >= pairs_total;
  }

let cost model report = Cost_meter.cost_of_counts model report.counts
