type pair = { left : Interval_data.record; right : Interval_data.record }

let supports p =
  (Uncertain.support p.left.Interval_data.belief,
   Uncertain.support p.right.Interval_data.belief)

let instance ~epsilon : pair Operator.instance =
  {
    classify =
      (fun p ->
        let l, r = supports p in
        Pair_distance.classify ~epsilon l r);
    laxity =
      (fun p ->
        let l, r = supports p in
        Interval.width (Pair_distance.distance_interval l r));
    success =
      (fun p ->
        let l, r = supports p in
        Pair_distance.success ~epsilon l r);
  }

let in_exact ~epsilon p =
  Float.abs (p.left.Interval_data.truth -. p.right.Interval_data.truth)
  <= epsilon

let exact_size ~epsilon left right =
  let n = ref 0 in
  Array.iter
    (fun l ->
      Array.iter (fun r -> if in_exact ~epsilon { left = l; right = r } then incr n) right)
    left;
  !n

type report = {
  answer : pair Operator.emitted list;
  guarantees : Quality.guarantees;
  requirements : Quality.requirements;
  counts : Cost_meter.counts;
  pairs_total : int;
  object_probes : int;
  probe_requests : int;
  answer_size : int;
  exhausted : bool;
}

(* Probe cache: one entry per (side, record id); an object is fetched —
   and charged — at most once, however many pairs it appears in. *)
type cache = {
  meter : Cost_meter.t;
  share : bool;  (* false: re-fetch (and re-charge) on every request *)
  resolved : (bool * int, unit) Hashtbl.t;  (* (is_left, id) *)
  mutable requests : int;
  mutable fetches : int;
}

(* Resolve one side of a pair.  [r] must be the record as stored in the
   base relation: a record that is imprecise there counts as a probe
   request even when the cache already holds it (that is precisely the
   saving being measured); only a cache miss fetches and is charged. *)
let resolve_record cache ~is_left (r : Interval_data.record) =
  if Uncertain.laxity r.Interval_data.belief = 0.0 then r
  else begin
    cache.requests <- cache.requests + 1;
    let key = (is_left, r.id) in
    if not (Hashtbl.mem cache.resolved key) then begin
      Hashtbl.add cache.resolved key ();
      cache.fetches <- cache.fetches + 1;
      Cost_meter.charge_probe cache.meter
    end
    else if not cache.share then begin
      cache.fetches <- cache.fetches + 1;
      Cost_meter.charge_probe cache.meter
    end;
    Interval_data.probe r
  end

let is_resolved cache ~is_left (r : Interval_data.record) =
  Uncertain.laxity r.Interval_data.belief = 0.0
  || Hashtbl.mem cache.resolved (is_left, r.id)

(* The current belief of a side, given the cache: pairs are generated
   from the base relations, so a record probed through an earlier pair
   must be seen as resolved here too.  Without sharing, nothing carries
   over — each pair starts from the stored beliefs. *)
let refresh cache p =
  if not cache.share then p
  else begin
    let left =
      if is_resolved cache ~is_left:true p.left then
        Interval_data.probe p.left
      else p.left
    in
    let right =
      if is_resolved cache ~is_left:false p.right then
        Interval_data.probe p.right
      else p.right
    in
    { left; right }
  end

let run ~rng ?meter ?emit ?(collect = true) ?(enforce = true)
    ?(share_probes = true) ?(policy = Policy.stingy)
    ~(requirements : Quality.requirements) ~epsilon ~left ~right () =
  if epsilon < 0.0 then invalid_arg "Band_join.run: epsilon < 0";
  let meter = match meter with Some m -> m | None -> Cost_meter.create () in
  let counts_before = Cost_meter.counts meter in
  let pairs_total = Array.length left * Array.length right in
  let counters = Counters.create ~total:pairs_total in
  let cache =
    {
      meter;
      share = share_probes;
      resolved = Hashtbl.create 64;
      requests = 0;
      fetches = 0;
    }
  in
  let inst = instance ~epsilon in
  let answer = ref [] in
  let deliver entry =
    (match emit with Some f -> f entry | None -> ());
    if collect then answer := entry :: !answer
  in
  let forward_imprecise p =
    Cost_meter.charge_write_imprecise meter;
    deliver { Operator.obj = p; precise = false }
  in
  let forward_precise p =
    Cost_meter.charge_write_precise meter;
    deliver { Operator.obj = p; precise = true }
  in
  (* A Probe decision resolves the pair: wider side first (the more
     informative fetch).  If that already settles the verdict to NO the
     second probe is saved — the pair is discarded, so its residual
     laxity is irrelevant.  Otherwise the other side is resolved too,
     because an emitted probed pair must have laxity 0.  [base] is the
     pair as stored in the relations, so cache hits count as requests. *)
  let probe_pair base =
    let width r = Uncertain.laxity r.Interval_data.belief in
    let resolve_left p = { p with left = resolve_record cache ~is_left:true p.left } in
    let resolve_right p =
      { p with right = resolve_record cache ~is_left:false p.right }
    in
    let first, second =
      if width base.left >= width base.right then (resolve_left, resolve_right)
      else (resolve_right, resolve_left)
    in
    let p = first base in
    let l, r = supports p in
    match Pair_distance.classify ~epsilon l r with
    | Tvl.No -> p
    | Tvl.Yes | Tvl.Maybe -> second p
  in
  let choose ~verdict ~laxity preference =
    if enforce then
      Decision.first_feasible counters requirements ~verdict ~laxity ~preference
    else
      match preference with a :: _ -> a | [] -> Decision.Probe
  in
  let finished () = Counters.recall_guarantee counters >= requirements.recall in
  let n_right = Array.length right in
  let pos = ref 0 in
  while !pos < pairs_total && not (finished ()) do
    let base =
      { left = left.(!pos / n_right); right = right.(!pos mod n_right) }
    in
    let p = refresh cache base in
    incr pos;
    Cost_meter.charge_read meter;
    (match inst.classify p with
    | Tvl.No -> Counters.saw_no counters
    | Tvl.Yes as verdict -> (
        let laxity = inst.laxity p in
        let preference =
          Policy.preference policy ~rng ~requirements ~counters ~verdict
            ~laxity ~success:1.0
        in
        match choose ~verdict ~laxity preference with
        | Decision.Forward ->
            Counters.forward_yes counters ~laxity;
            forward_imprecise p
        | Decision.Probe ->
            let resolved = probe_pair base in
            Counters.probe_yes counters;
            forward_precise resolved
        | Decision.Ignore -> Counters.ignore_yes counters)
    | Tvl.Maybe as verdict -> (
        let laxity = inst.laxity p in
        let success = inst.success p in
        let preference =
          Policy.preference policy ~rng ~requirements ~counters ~verdict
            ~laxity ~success
        in
        match choose ~verdict ~laxity preference with
        | Decision.Forward ->
            Counters.forward_maybe counters ~laxity;
            forward_imprecise p
        | Decision.Probe -> (
            let resolved = probe_pair base in
            match inst.classify resolved with
            | Tvl.Yes ->
                Counters.probe_maybe_yes counters;
                forward_precise resolved
            | Tvl.No -> Counters.probe_maybe_no counters
            | Tvl.Maybe -> raise Operator.Inconsistent_probe)
        | Decision.Ignore -> Counters.ignore_maybe counters))
  done;
  let counts_after = Cost_meter.counts meter in
  {
    answer = List.rev !answer;
    guarantees = Counters.guarantees counters;
    requirements;
    counts =
      {
        Cost_meter.reads = counts_after.reads - counts_before.reads;
        probes = counts_after.probes - counts_before.probes;
        batches = counts_after.batches - counts_before.batches;
        writes_imprecise =
          counts_after.writes_imprecise - counts_before.writes_imprecise;
        writes_precise =
          counts_after.writes_precise - counts_before.writes_precise;
      };
    pairs_total;
    object_probes = cache.fetches;
    probe_requests = cache.requests;
    answer_size = Counters.answer_size counters;
    exhausted = !pos >= pairs_total;
  }

let cost model report = Cost_meter.cost_of_counts model report.counts
