(* Tests for the one-call execution facade. *)

let checkb = Alcotest.(check bool)

let requirements = Quality.requirements ~precision:0.9 ~recall:0.5 ~laxity:50.0

let dataset seed = Synthetic.generate (Rng.create seed) (Synthetic.config ~total:5000 ())

let test_execute_default () =
  let data = dataset 1 in
  let result =
    Engine.execute ~rng:(Rng.create 2) ~max_laxity:100.0
      ~instance:Synthetic.instance ~probe:(Probe_driver.scalar Synthetic.probe) ~requirements data
  in
  checkb "meets" true (Quality.meets result.report.guarantees requirements);
  (match result.plan with
  | Some plan ->
      checkb "sampled an estimate" true (plan.estimate <> None);
      checkb "solver feasible" true plan.evaluation.feasible;
      (* Estimated fractions should be near the generator's 0.2. *)
      (match plan.estimate with
      | Some e ->
          checkb "f_y plausible" true (Float.abs (e.f_y -. 0.2) < 0.15);
          checkb "f_m plausible" true (Float.abs (e.f_m -. 0.2) < 0.15)
      | None -> ())
  | None -> Alcotest.fail "expected a plan");
  checkb "cost in the plausible band" true
    (result.normalized_cost > 1.0 && result.normalized_cost < 25.0)

let test_execute_fixed () =
  let data = dataset 3 in
  let result =
    Engine.execute ~rng:(Rng.create 4)
      ~planning:(Engine.Fixed Policy.stingy_params)
      ~instance:Synthetic.instance ~probe:(Probe_driver.scalar Synthetic.probe) ~requirements data
  in
  checkb "no plan for fixed" true (result.plan = None);
  checkb "still meets" true (Quality.meets result.report.guarantees requirements)

let test_execute_adaptive () =
  let data = dataset 5 in
  let result =
    Engine.execute ~rng:(Rng.create 6) ~adaptive:true ~max_laxity:100.0
      ~instance:Synthetic.instance ~probe:(Probe_driver.scalar Synthetic.probe) ~requirements data
  in
  checkb "adaptive meets" true (Quality.meets result.report.guarantees requirements)

let test_execute_histogram_density () =
  let data =
    Synthetic.generate_skewed (Rng.create 7)
      (Synthetic.config ~total:5000 ())
      ~laxity_exponent:4.0 ~success_exponent:1.0
  in
  let result =
    Engine.execute ~rng:(Rng.create 8)
      ~planning:
        (Engine.Sampled
           { fraction = 0.05; density = `Histogram; fallback = (0.2, 0.2) })
      ~max_laxity:100.0 ~instance:Synthetic.instance ~probe:(Probe_driver.scalar Synthetic.probe)
      ~requirements data
  in
  checkb "histogram-planned run meets" true
    (Quality.meets result.report.guarantees requirements)

let test_execute_empty_and_tiny () =
  let empty =
    Engine.execute ~rng:(Rng.create 9) ~instance:Synthetic.instance
      ~probe:(Probe_driver.scalar Synthetic.probe) ~requirements [||]
  in
  checkb "empty ok" true (Quality.meets empty.report.guarantees requirements);
  Alcotest.(check (float 0.0)) "empty cost" 0.0 empty.normalized_cost;
  (* A dataset too small for the sample to catch anything exercises the
     fallback prior. *)
  let tiny = Synthetic.generate (Rng.create 10) (Synthetic.config ~total:5 ()) in
  let result =
    Engine.execute ~rng:(Rng.create 11) ~instance:Synthetic.instance
      ~probe:(Probe_driver.scalar Synthetic.probe) ~requirements tiny
  in
  checkb "tiny ok" true (Quality.meets result.report.guarantees requirements)

(* Regression: the planner's Bernoulli sample is charged to the run's
   meter, and sampling does not perturb the operator's rng stream — so a
   planned run and a Fixed run given the planned parameters make
   identical decisions and differ in cost by exactly the sample's
   reads. *)
let test_sample_reads_charged () =
  let data = dataset 21 in
  let planned =
    Engine.execute ~rng:(Rng.create 22) ~max_laxity:100.0
      ~instance:Synthetic.instance ~probe:(Probe_driver.scalar Synthetic.probe)
      ~requirements data
  in
  let plan =
    match planned.plan with Some p -> p | None -> Alcotest.fail "no plan"
  in
  Alcotest.(check bool) "sample was non-empty" true (plan.sample_size > 0);
  let fixed =
    Engine.execute ~rng:(Rng.create 22)
      ~planning:(Engine.Fixed plan.params) ~max_laxity:100.0
      ~instance:Synthetic.instance ~probe:(Probe_driver.scalar Synthetic.probe)
      ~requirements data
  in
  let pc = planned.counts and fc = fixed.counts in
  Alcotest.(check int) "reads differ by the sample" (fc.reads + plan.sample_size)
    pc.reads;
  Alcotest.(check int) "same probes" fc.probes pc.probes;
  Alcotest.(check int) "same batches" fc.batches pc.batches;
  Alcotest.(check int) "same imprecise writes" fc.writes_imprecise
    pc.writes_imprecise;
  Alcotest.(check int) "same precise writes" fc.writes_precise pc.writes_precise;
  let model = Cost_model.paper in
  let expected_delta =
    float_of_int plan.sample_size *. model.Cost_model.c_r
  in
  Alcotest.(check (float 1e-9)) "cost delta is exactly the sample's reads"
    expected_delta
    (Cost_meter.cost_of_counts model pc -. Cost_meter.cost_of_counts model fc);
  (* report.counts stays scan-only: the sample lands in result.counts. *)
  Alcotest.(check int) "report counts exclude the sample" fc.reads
    planned.report.counts.reads

(* Regression: the input's maximum laxity is scanned at most once even
   when both the planner and the adaptive estimator need it.  The
   operator never asks a NO object for its laxity, so on an all-NO input
   every laxity call comes from the shared cap scan (plus the sampled
   objects the estimator inspects) — under the old duplicated scan this
   counted 2N. *)
let test_laxity_scanned_once () =
  let n = 1000 in
  let laxity_calls = ref 0 in
  let instance =
    {
      Operator.classify = (fun (_ : int) -> Tvl.No);
      laxity =
        (fun _ ->
          incr laxity_calls;
          1.0);
      success = (fun _ -> 0.0);
    }
  in
  let data = Array.init n Fun.id in
  let result =
    Engine.execute ~rng:(Rng.create 23) ~adaptive:true ~instance
      ~probe:(Probe_driver.scalar Fun.id)
      ~requirements:(Quality.requirements ~precision:0.9 ~recall:0.5 ~laxity:50.0)
      data
  in
  ignore result;
  Alcotest.(check bool)
    (Printf.sprintf "laxity scanned once (%d calls for %d objects)"
       !laxity_calls n)
    true
    (!laxity_calls < 2 * n)

let test_invalid_fallback () =
  Alcotest.check_raises "bad fallback"
    (Invalid_argument "Engine.execute: invalid fallback fractions") (fun () ->
      ignore
        (Engine.execute ~rng:(Rng.create 1)
           ~planning:
             (Engine.Sampled
                { fraction = 0.01; density = `Uniform; fallback = (0.9, 0.9) })
           ~instance:Synthetic.instance ~probe:(Probe_driver.scalar Synthetic.probe) ~requirements
           (dataset 12)))

let suite =
  [
    ("execute with default planning", `Quick, test_execute_default);
    ("execute with fixed params", `Quick, test_execute_fixed);
    ("execute adaptive", `Quick, test_execute_adaptive);
    ("execute with histogram density", `Quick, test_execute_histogram_density);
    ("empty and tiny inputs", `Quick, test_execute_empty_and_tiny);
    ("sample reads are charged", `Quick, test_sample_reads_charged);
    ("laxity cap scanned once", `Quick, test_laxity_scanned_once);
    ("invalid fallback", `Quick, test_invalid_fallback);
  ]
