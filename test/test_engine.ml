(* Tests for the one-call execution facade. *)

let checkb = Alcotest.(check bool)

let requirements = Quality.requirements ~precision:0.9 ~recall:0.5 ~laxity:50.0

let dataset seed = Synthetic.generate (Rng.create seed) (Synthetic.config ~total:5000 ())

let test_execute_default () =
  let data = dataset 1 in
  let result =
    Engine.execute ~rng:(Rng.create 2) ~max_laxity:100.0
      ~instance:Synthetic.instance ~probe:(Probe_driver.scalar Synthetic.probe) ~requirements data
  in
  checkb "meets" true (Quality.meets result.report.guarantees requirements);
  (match result.plan with
  | Some plan ->
      checkb "sampled an estimate" true (plan.estimate <> None);
      checkb "solver feasible" true plan.evaluation.feasible;
      (* Estimated fractions should be near the generator's 0.2. *)
      (match plan.estimate with
      | Some e ->
          checkb "f_y plausible" true (Float.abs (e.f_y -. 0.2) < 0.15);
          checkb "f_m plausible" true (Float.abs (e.f_m -. 0.2) < 0.15)
      | None -> ())
  | None -> Alcotest.fail "expected a plan");
  checkb "cost in the plausible band" true
    (result.normalized_cost > 1.0 && result.normalized_cost < 25.0)

let test_execute_fixed () =
  let data = dataset 3 in
  let result =
    Engine.execute ~rng:(Rng.create 4)
      ~planning:(Engine.Fixed Policy.stingy_params)
      ~instance:Synthetic.instance ~probe:(Probe_driver.scalar Synthetic.probe) ~requirements data
  in
  checkb "no plan for fixed" true (result.plan = None);
  checkb "still meets" true (Quality.meets result.report.guarantees requirements)

let test_execute_adaptive () =
  let data = dataset 5 in
  let result =
    Engine.execute ~rng:(Rng.create 6) ~adaptive:true ~max_laxity:100.0
      ~instance:Synthetic.instance ~probe:(Probe_driver.scalar Synthetic.probe) ~requirements data
  in
  checkb "adaptive meets" true (Quality.meets result.report.guarantees requirements)

let test_execute_histogram_density () =
  let data =
    Synthetic.generate_skewed (Rng.create 7)
      (Synthetic.config ~total:5000 ())
      ~laxity_exponent:4.0 ~success_exponent:1.0
  in
  let result =
    Engine.execute ~rng:(Rng.create 8)
      ~planning:
        (Engine.Sampled
           { fraction = 0.05; density = `Histogram; fallback = (0.2, 0.2) })
      ~max_laxity:100.0 ~instance:Synthetic.instance ~probe:(Probe_driver.scalar Synthetic.probe)
      ~requirements data
  in
  checkb "histogram-planned run meets" true
    (Quality.meets result.report.guarantees requirements)

let test_execute_empty_and_tiny () =
  let empty =
    Engine.execute ~rng:(Rng.create 9) ~instance:Synthetic.instance
      ~probe:(Probe_driver.scalar Synthetic.probe) ~requirements [||]
  in
  checkb "empty ok" true (Quality.meets empty.report.guarantees requirements);
  Alcotest.(check (float 0.0)) "empty cost" 0.0 empty.normalized_cost;
  (* A dataset too small for the sample to catch anything exercises the
     fallback prior. *)
  let tiny = Synthetic.generate (Rng.create 10) (Synthetic.config ~total:5 ()) in
  let result =
    Engine.execute ~rng:(Rng.create 11) ~instance:Synthetic.instance
      ~probe:(Probe_driver.scalar Synthetic.probe) ~requirements tiny
  in
  checkb "tiny ok" true (Quality.meets result.report.guarantees requirements)

let test_invalid_fallback () =
  Alcotest.check_raises "bad fallback"
    (Invalid_argument "Engine.execute: invalid fallback fractions") (fun () ->
      ignore
        (Engine.execute ~rng:(Rng.create 1)
           ~planning:
             (Engine.Sampled
                { fraction = 0.01; density = `Uniform; fallback = (0.9, 0.9) })
           ~instance:Synthetic.instance ~probe:(Probe_driver.scalar Synthetic.probe) ~requirements
           (dataset 12)))

let suite =
  [
    ("execute with default planning", `Quick, test_execute_default);
    ("execute with fixed params", `Quick, test_execute_fixed);
    ("execute adaptive", `Quick, test_execute_adaptive);
    ("execute with histogram density", `Quick, test_execute_histogram_density);
    ("empty and tiny inputs", `Quick, test_execute_empty_and_tiny);
    ("invalid fallback", `Quick, test_invalid_fallback);
  ]
