(* Tests for the interval index access method. *)

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let records seed n max_width =
  let rng = Rng.create seed in
  Interval_data.uniform_intervals rng ~n
    ~value_range:(Interval.make 0.0 1000.0) ~max_width

let support (r : Interval_data.record) = Uncertain.support r.belief

let test_threshold_candidates () =
  let rs = records 1 500 40.0 in
  let idx = Interval_index.build rs ~support in
  checki "index size" 500 (Interval_index.length idx);
  let pred = Predicate.ge 800.0 in
  let cands = Interval_index.candidates idx pred in
  (* Exactly the non-NO objects, each once. *)
  let expected =
    Array.to_list rs
    |> List.filter (fun r ->
           not (Tvl.equal (Predicate.classify pred r.Interval_data.belief) Tvl.No))
    |> List.length
  in
  checki "candidate count" expected (Array.length cands);
  checki "count function agrees" expected (Interval_index.candidate_count idx pred);
  checki "pruned complement" (500 - expected) (Interval_index.pruned_count idx pred);
  Array.iter
    (fun (r : Interval_data.record) ->
      checkb "no definite NO among candidates" false
        (Tvl.equal (Predicate.classify pred r.belief) Tvl.No))
    cands

let test_unsatisfiable_predicate () =
  let rs = records 2 100 20.0 in
  let idx = Interval_index.build rs ~support in
  let impossible = Predicate.(ge 10.0 &&& le 5.0) in
  checki "no candidates" 0 (Interval_index.candidate_count idx impossible);
  let everything = Predicate.(ge 10.0 ||| lt 10.0) in
  checki "all candidates" 100 (Interval_index.candidate_count idx everything)

(* The index must agree exactly with brute-force classification for
   arbitrary compound predicates, including multi-component satisfying
   sets. *)
let pred_gen =
  QCheck2.Gen.(
    let leaf =
      oneof
        [
          map (fun a -> Predicate.ge (float_of_int a)) (int_range 0 1000);
          map (fun a -> Predicate.le (float_of_int a)) (int_range 0 1000);
          (let* a = int_range 0 900 in
           let* w = int_range 0 200 in
           return (Predicate.between (float_of_int a) (float_of_int (a + w))));
        ]
    in
    let* a = leaf and* b = leaf and* c = leaf in
    oneofl
      [ a; Predicate.Or (a, b); Predicate.And (a, b);
        Predicate.Or (Predicate.And (a, b), c); Predicate.Not a;
        Predicate.Or (a, Predicate.Not b) ])

let prop_index_matches_scan =
  QCheck2.Test.make ~name:"index candidates = scan candidates" ~count:150
    QCheck2.Gen.(pair (int_range 0 5000) pred_gen)
    (fun (seed, pred) ->
      let rs = records seed 200 30.0 in
      let idx = Interval_index.build rs ~support in
      let by_index =
        Interval_index.candidates idx pred
        |> Array.to_list
        |> List.map (fun (r : Interval_data.record) -> r.id)
        |> List.sort compare
      in
      let by_scan =
        Array.to_list rs
        |> List.filter (fun (r : Interval_data.record) ->
               not (Tvl.equal (Predicate.classify pred r.belief) Tvl.No))
        |> List.map (fun (r : Interval_data.record) -> r.id)
        |> List.sort compare
      in
      by_index = by_scan)

let test_operator_over_index_source () =
  (* Full pipeline: index candidates -> operator; guarantees stay honest
     against the FULL relation's ground truth. *)
  let rs = records 11 2000 25.0 in
  let pred = Predicate.ge 900.0 in
  let idx = Interval_index.build rs ~support in
  let cands = Interval_index.candidates idx pred in
  let requirements = Quality.requirements ~precision:0.95 ~recall:0.9 ~laxity:10.0 in
  let rng = Rng.create 12 in
  let report =
    Operator.run ~rng ~instance:(Interval_data.instance pred)
      ~probe:(Probe_driver.scalar Interval_data.probe) ~policy:Policy.stingy
      ~requirements
      (Operator.source_of_array cands)
  in
  checkb "meets" true (Quality.meets report.guarantees requirements);
  let answer_in_exact =
    List.length
      (List.filter (fun e -> Interval_data.in_exact pred e.Operator.obj) report.answer)
  in
  let actual_recall =
    Quality.Diagnostics.recall
      ~exact_size:(Interval_data.exact_size pred rs)
      ~answer_in_exact
  in
  checkb "recall honest over full relation" true
    (actual_recall >= report.guarantees.recall -. 1e-9);
  checkb "index saved most reads" true (report.counts.reads < 500)

let test_empty_index () =
  let idx = Interval_index.build [||] ~support in
  checki "empty" 0 (Interval_index.length idx);
  checki "no candidates" 0 (Interval_index.candidate_count idx (Predicate.ge 0.0))

let suite =
  [
    ("threshold candidates", `Quick, test_threshold_candidates);
    ("unsatisfiable and tautological predicates", `Quick, test_unsatisfiable_predicate);
    QCheck_alcotest.to_alcotest prop_index_matches_scan;
    ("operator over index source", `Quick, test_operator_over_index_source);
    ("empty index", `Quick, test_empty_index);
  ]
