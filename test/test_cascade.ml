(* Tiered probe cascades: soundness of interval-shrinking proxies, the
   guarantee battery over random cascades, the single-tier golden
   identity against the direct driver, and escalation accounting. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkf = Alcotest.(check (float 1e-9))

let requirements =
  Quality.requirements ~precision:0.85 ~recall:0.55 ~laxity:50.0

let specs2 ?(power = 0.8) ?(proxy_cp = 0.1) ?(proxy_cb = 1.0)
    ?(proxy_batch = 32) () =
  [|
    {
      Probe_tier.name = "proxy";
      kind = Probe_tier.Shrink { power };
      c_p = proxy_cp;
      c_b = proxy_cb;
      batch = proxy_batch;
    };
    {
      Probe_tier.name = "oracle";
      kind = Probe_tier.Resolve;
      c_p = 1.0;
      c_b = 5.0;
      batch = 8;
    };
  |]

(* --- tier specs: pricing, selection, grammar ------------------------- *)

let test_tier_selection () =
  let specs = specs2 () in
  checkf "proxy amortized price" (0.1 +. (1.0 /. 32.0))
    (Probe_tier.amortized specs.(0));
  checkf "oracle amortized price" (1.0 +. (5.0 /. 8.0))
    (Probe_tier.amortized specs.(1));
  (* Entering at the proxy pays its price plus the residual 20% of the
     oracle; entering at the oracle pays the oracle in full. *)
  checkf "escalation strategy price"
    (0.1 +. (1.0 /. 32.0) +. (0.2 *. (1.0 +. (5.0 /. 8.0))))
    (Probe_tier.strategy_price specs ~start:0);
  checkf "oracle-only strategy price"
    (1.0 +. (5.0 /. 8.0))
    (Probe_tier.strategy_price specs ~start:1);
  let plan = Probe_tier.select specs in
  checki "an effective proxy is worth entering" 0 plan.Probe_tier.start;
  (* A powerless, expensive proxy is priced out: start at the oracle. *)
  let bad = specs2 ~power:0.0 ~proxy_cp:0.9 ~proxy_cb:8.0 ~proxy_batch:1 () in
  checki "a useless proxy is skipped" 1 (Probe_tier.select bad).Probe_tier.start

let test_tier_grammar () =
  let spec = "proxy:cp=0.1,cb=1,B=32,shrink=0.8;oracle:cp=1,cb=5,B=8" in
  let specs = Probe_tier.of_string spec in
  checki "two tiers" 2 (Array.length specs);
  checkb "tier 0 is the proxy" true
    (specs.(0).Probe_tier.name = "proxy"
    && specs.(0).Probe_tier.kind = Probe_tier.Shrink { power = 0.8 });
  checkb "tier 1 is the oracle" true
    (specs.(1).Probe_tier.name = "oracle"
    && specs.(1).Probe_tier.kind = Probe_tier.Resolve);
  checkb "to_string round-trips" true
    (Probe_tier.of_string (Probe_tier.to_string specs) = specs);
  (match Probe_tier.of_string "proxy:cp=0.1,shrink=0.5" with
  | _ -> Alcotest.fail "a cascade without an oracle must be rejected"
  | exception Invalid_argument _ -> ());
  match Probe_tier.of_string "a:cp=1;b:cp=1,shrink=0.5" with
  | _ -> Alcotest.fail "a Resolve tier before a proxy must be rejected"
  | exception Invalid_argument _ -> ()

(* --- satellite (a): shrink soundness --------------------------------- *)

(* A proxy answer is only usable if it is a sound imprecise model of
   the same precise object: the narrowed interval must be a subset of
   the original and still contain the ground truth, and iterating
   shrinks must preserve both. *)
let prop_interval_shrink_sound =
  QCheck2.Test.make ~name:"interval shrink: subset containing the truth"
    ~count:100
    QCheck2.Gen.(
      triple (int_range 1 10_000) (float_range 0.0 1.0) (float_range 0.0 1.0))
    (fun (seed, power, power') ->
      let data =
        Interval_data.uniform_intervals (Rng.create seed) ~n:40
          ~value_range:(Interval.make 0.0 100.0) ~max_width:30.0
      in
      Array.for_all
        (fun (r : Interval_data.record) ->
          let s = Interval_data.shrink ~power r in
          let s' = Interval_data.shrink ~power:power' s in
          let sup = Uncertain.support r.Interval_data.belief
          and sup_s = Uncertain.support s.Interval_data.belief
          and sup_s' = Uncertain.support s'.Interval_data.belief in
          s.Interval_data.truth = r.Interval_data.truth
          && s.Interval_data.id = r.Interval_data.id
          && Interval.subset sup_s sup
          && Interval.contains sup_s s.Interval_data.truth
          && Interval.subset sup_s' sup_s
          && Interval.contains sup_s' s'.Interval_data.truth
          && Uncertain.laxity s.Interval_data.belief
             <= Uncertain.laxity r.Interval_data.belief +. 1e-9
          && (power < 1.0 || Interval.is_point sup_s))
        data)

(* The synthetic workload has no explicit interval, so its shrink must
   preserve the abstract soundness contract the operator relies on:
   laxity never grows, the verdict never weakens (YES stays YES, NO
   stays NO), success stays a probability and moves toward the
   pre-drawn ground truth, and full power degenerates to the probe. *)
let prop_synthetic_shrink_sound =
  QCheck2.Test.make ~name:"synthetic shrink: laxity contracts, verdict holds"
    ~count:100
    QCheck2.Gen.(pair (int_range 1 10_000) (float_range 0.0 1.0))
    (fun (seed, power) ->
      let data =
        Synthetic.generate (Rng.create seed) (Synthetic.config ~total:120 ())
      in
      let classify = Synthetic.instance.Operator.classify
      and laxity = Synthetic.instance.Operator.laxity in
      Array.for_all
        (fun (o : Synthetic.obj) ->
          let s = Synthetic.shrink ~power o in
          let verdict_held =
            match classify o with
            | Tvl.Maybe ->
                (* may become definite, but only at the ground truth *)
                classify s = Tvl.Maybe || classify s = Tvl.of_bool o.Synthetic.probe_yes
            | v -> classify s = v
          in
          verdict_held
          && laxity s <= laxity o +. 1e-9
          && s.Synthetic.success >= 0.0
          && s.Synthetic.success <= 1.0
          && (if o.Synthetic.probe_yes then
                s.Synthetic.success >= o.Synthetic.success -. 1e-9
              else s.Synthetic.success <= o.Synthetic.success +. 1e-9)
          && (power < 1.0 || s.Synthetic.resolved))
        data)

(* --- satellite (b): guarantees survive every cascade ------------------ *)

let synthetic_cascade ?obs ?faults ~specs () =
  let cascade, _sources =
    Tiered.of_functions ?obs ?faults ~specs
      ~narrow:(fun ~power o -> Synthetic.shrink ~power o)
      ~resolve:Synthetic.probe ()
  in
  cascade

(* Whatever the proxy's power and pricing, the plan's reported
   guarantees must stay sound lower bounds on the achieved quality, the
   requirements must be met, and the per-tier meter must reconcile
   with the qaq.probe.tier.* counters. *)
let prop_guarantees_survive_cascade =
  QCheck2.Test.make ~name:"achieved quality meets the plan on every seed"
    ~count:10
    QCheck2.Gen.(pair (int_range 1 10_000) (float_range 0.0 1.0))
    (fun (seed, power) ->
      let data =
        Synthetic.generate (Rng.create seed) (Synthetic.config ~total:600 ())
      in
      let obs = Obs.create () in
      let cascade =
        synthetic_cascade ~obs ~specs:(specs2 ~power ()) ()
      in
      let result =
        Engine.execute ~rng:(Rng.create (seed + 1)) ~max_laxity:100.0 ~obs
          ~profile:(Engine.profiling ~oracle:Synthetic.in_exact ())
          ~instance:Synthetic.instance ~cascade ~requirements data
      in
      let profile = Option.get result.Engine.profile in
      let g = result.Engine.report.Operator.guarantees in
      match profile.Profile.audit.Profile.achieved with
      | None -> false
      | Some a ->
          Quality.meets g requirements
          && g.Quality.precision <= a.Profile.achieved_precision +. 1e-9
          && g.Quality.recall <= a.Profile.achieved_recall +. 1e-9
          && profile.Profile.reconcile_error = None)

(* --- satellite (c): single-tier golden -------------------------------- *)

let answer_ids result =
  List.map
    (fun (e : Synthetic.obj Operator.emitted) ->
      (e.Operator.obj.Synthetic.id, e.Operator.precise))
    result.Engine.report.Operator.answer

(* Counter values and histogram counts, minus the qaq.probe.tier.*
   family the cascade path adds on top of the driver's own counters. *)
let projection snap =
  let tier_prefix = "qaq.probe.tier." in
  let starts_with p s =
    String.length s >= String.length p && String.sub s 0 (String.length p) = p
  in
  List.filter_map
    (fun (name, v) ->
      if starts_with tier_prefix name then None
      else
        match v with
        | Metrics.Count c -> Some (name, c)
        | Metrics.Dist d -> Some (name, d.Metrics.d_count)
        | Metrics.Level _ -> None)
    snap

let golden_run ~batch ~domains ~via_cascade seed =
  let data =
    Synthetic.generate (Rng.create seed) (Synthetic.config ~total:400 ())
  in
  let obs = Obs.create () in
  let probe = Probe_driver.of_scalar ~obs ~batch_size:batch Synthetic.probe in
  let result =
    if via_cascade then
      Engine.execute ~rng:(Rng.create (seed + 1)) ~max_laxity:100.0 ~domains
        ~batch ~obs ~instance:Synthetic.instance
        ~cascade:(Cascade.of_driver ~cost:Cost_model.paper probe)
        ~requirements data
    else
      Engine.execute ~rng:(Rng.create (seed + 1)) ~max_laxity:100.0 ~domains
        ~batch ~obs ~instance:Synthetic.instance ~probe ~requirements data
  in
  ( answer_ids result,
    result.Engine.counts,
    result.Engine.report.Operator.guarantees,
    result.Engine.normalized_cost,
    result.Engine.degradation,
    projection (Obs.snapshot obs) )

(* A degenerate cascade — one Resolve tier around today's driver — is
   bit-for-bit the direct driver path: same answer, same counts, same
   guarantees, same cost, same metrics (minus the additional per-tier
   counter family). *)
let test_single_tier_golden () =
  List.iter
    (fun (batch, domains) ->
      List.iter
        (fun seed ->
          checkb
            (Printf.sprintf "B=%d domains=%d seed=%d" batch domains seed)
            true
            (golden_run ~batch ~domains ~via_cascade:false seed
            = golden_run ~batch ~domains ~via_cascade:true seed))
        [ 11; 12 ])
    [ (1, 1); (1, 2); (4, 1); (4, 2) ]

(* --- escalation accounting ------------------------------------------- *)

(* A full-power proxy resolves everything it touches: the oracle is
   never probed.  A zero-power proxy narrows nothing: every probed
   object escalates, so the oracle resolves exactly the proxy's shrink
   count. *)
let escalation_run ~power =
  let data =
    Synthetic.generate (Rng.create 21) (Synthetic.config ~total:500 ())
  in
  let cascade = synthetic_cascade ~specs:(specs2 ~power ()) () in
  (* A powerless proxy is priced out of the escalation strategy, so
     force entry at tier 0 — the invariant under test is the operator's
     escalation accounting, not the start-tier selection. *)
  Cascade.set_start cascade 0;
  let result =
    Engine.execute ~rng:(Rng.create 22) ~max_laxity:100.0
      ~instance:Synthetic.instance ~cascade ~requirements data
  in
  (result, Cascade.stats cascade)

let test_escalation_accounting () =
  let result, stats = escalation_run ~power:1.0 in
  checkb "full-power proxy did work" true (stats.(0).Cascade.st_shrinks > 0);
  checki "full-power proxy starves the oracle" 0 stats.(1).Cascade.st_probes;
  checkb "requirements still met" true
    (Quality.meets result.Engine.report.Operator.guarantees requirements);
  let result0, stats0 = escalation_run ~power:0.0 in
  checkb "powerless proxy did work" true (stats0.(0).Cascade.st_shrinks > 0);
  checki "every probed object escalates to the oracle"
    stats0.(0).Cascade.st_shrinks stats0.(1).Cascade.st_probes;
  checkb "requirements still met at power 0" true
    (Quality.meets result0.Engine.report.Operator.guarantees requirements)

(* A dead proxy must not take the answer down: every proxy probe fails
   over to the oracle, the run completes undegraded and the failovers
   are counted per tier. *)
let test_proxy_outage_fails_over () =
  let data =
    Synthetic.generate (Rng.create 31) (Synthetic.config ~total:500 ())
  in
  let specs = specs2 () in
  let proxy =
    Probe_source.create ~tier:"proxy" ~max_retries:0
      ~faults:(Fault_plan.make ~seed:32 ~permanent_rate:1.0 ())
      (Synthetic.shrink ~power:0.8)
  in
  let oracle = Probe_source.create ~tier:"oracle" Synthetic.probe in
  let cascade = Tiered.cascade ~specs [| proxy; oracle |] in
  let result =
    Engine.execute ~rng:(Rng.create 33) ~max_laxity:100.0
      ~instance:Synthetic.instance ~cascade ~requirements data
  in
  let stats = Cascade.stats cascade in
  checkb "the proxy was down" true (stats.(0).Cascade.st_failures > 0);
  checki "no proxy answer got through" 0 stats.(0).Cascade.st_shrinks;
  checki "every proxy failure failed over" stats.(0).Cascade.st_failures
    stats.(0).Cascade.st_failovers;
  checki "the oracle absorbed the full load" stats.(0).Cascade.st_failures
    stats.(1).Cascade.st_probes;
  checkb "the answer is not degraded" true
    (result.Engine.degradation.Engine.failed_probes = 0);
  checkb "requirements met through the outage" true
    (Quality.meets result.Engine.report.Operator.guarantees requirements)

let suite =
  [
    ("tier selection prices escalation", `Quick, test_tier_selection);
    ("tier spec grammar", `Quick, test_tier_grammar);
    ("single-tier cascade is the direct driver", `Slow,
     test_single_tier_golden);
    ("escalation accounting", `Quick, test_escalation_accounting);
    ("proxy outage fails over to the oracle", `Quick,
     test_proxy_outage_fails_over);
    QCheck_alcotest.to_alcotest prop_interval_shrink_sound;
    QCheck_alcotest.to_alcotest prop_synthetic_shrink_sound;
    QCheck_alcotest.to_alcotest prop_guarantees_survive_cascade;
  ]
