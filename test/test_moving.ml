(* Tests for the moving-object substrate. *)

let checkb = Alcotest.(check bool)
let checkf tol = Alcotest.(check (float tol))

let area = Rect.make (Interval.make 0.0 100.0) (Interval.make 0.0 100.0)
let window = Rect.make (Interval.make 20.0 60.0) (Interval.make 20.0 60.0)

let test_make_validation () =
  Alcotest.check_raises "actual outside bound"
    (Invalid_argument "Moving_object.make: actual position outside the bound")
    (fun () ->
      ignore
        (Moving_object.make ~id:0 ~reported:{ Rect.x = 0.0; y = 0.0 }
           ~radius:1.0
           ~actual:{ Rect.x = 5.0; y = 0.0 }))

let test_fleet_invariants () =
  let fleet =
    Moving_object.random_fleet (Rng.create 4) ~n:500 ~area ~max_radius:8.0
  in
  Array.iter
    (fun (o : Moving_object.t) ->
      checkb "actual inside bound" true (Rect.contains o.bound o.actual))
    fleet

let test_instance_soundness () =
  let fleet =
    Moving_object.random_fleet (Rng.create 5) ~n:1000 ~area ~max_radius:10.0
  in
  let instance = Moving_object.instance window in
  Array.iter
    (fun o ->
      match instance.classify o with
      | Tvl.Yes -> checkb "yes truly inside" true (Moving_object.in_exact window o)
      | Tvl.No -> checkb "no truly outside" false (Moving_object.in_exact window o)
      | Tvl.Maybe ->
          let s = instance.success o in
          checkb "maybe has fractional success" true (s >= 0.0 && s <= 1.0))
    fleet

let test_probe_resolves () =
  let fleet =
    Moving_object.random_fleet (Rng.create 6) ~n:50 ~area ~max_radius:10.0
  in
  let instance = Moving_object.instance window in
  Array.iter
    (fun o ->
      let p = Moving_object.probe o in
      checkf 0.0 "laxity zero" 0.0 (instance.laxity p);
      checkb "definite" true (Tvl.is_definite (instance.classify p));
      checkb "verdict matches truth" true
        (Tvl.equal (instance.classify p)
           (Tvl.of_bool (Moving_object.in_exact window o))))
    fleet

let test_end_to_end_window_query () =
  let rng = Rng.create 7 in
  let fleet = Moving_object.random_fleet rng ~n:4000 ~area ~max_radius:6.0 in
  let requirements = Quality.requirements ~precision:0.9 ~recall:0.7 ~laxity:5.0 in
  let report =
    Operator.run ~rng ~instance:(Moving_object.instance window)
      ~probe:(Probe_driver.scalar Moving_object.probe) ~policy:Policy.stingy
      ~requirements
      (Operator.source_of_array fleet)
  in
  checkb "meets" true (Quality.meets report.guarantees requirements);
  let answer_in =
    List.length
      (List.filter (fun e -> Moving_object.in_exact window e.Operator.obj) report.answer)
  in
  let actual_p =
    Quality.Diagnostics.precision ~answer_size:report.answer_size
      ~answer_in_exact:answer_in
  in
  let actual_r =
    Quality.Diagnostics.recall
      ~exact_size:(Moving_object.exact_size window fleet)
      ~answer_in_exact:answer_in
  in
  checkb "actual precision dominates" true (actual_p >= report.guarantees.precision -. 1e-9);
  checkb "actual recall dominates" true (actual_r >= report.guarantees.recall -. 1e-9)

let suite =
  [
    ("constructor validation", `Quick, test_make_validation);
    ("fleet invariants", `Quick, test_fleet_invariants);
    ("instance soundness", `Quick, test_instance_soundness);
    ("probe resolves", `Quick, test_probe_resolves);
    ("end-to-end window query", `Quick, test_end_to_end_window_query);
  ]
