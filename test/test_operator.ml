(* Tests for the online QaQ selection operator (Fig. 1).

   The central property: with the Theorem 3.1 guard on, the reported
   guarantees always satisfy the requirements AND the actual (ground
   truth) precision/recall always dominate the guarantees — for any
   policy, any workload, any requirements. *)

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let req ?(p = 0.9) ?(r = 0.5) ?(l = 50.0) () =
  Quality.requirements ~precision:p ~recall:r ~laxity:l

let run ?(seed = 1) ?(policy = Policy.stingy) ?(enforce = true) ?(batch = 1)
    ~requirements data =
  Operator.run ~rng:(Rng.create seed) ~enforce ~instance:Synthetic.instance
    ~probe:(Probe_driver.of_scalar ~batch_size:batch Synthetic.probe)
    ~policy ~requirements
    (Operator.source_of_array data)

let gen_data ?(seed = 7) ?(total = 1000) ?(f_y = 0.2) ?(f_m = 0.2) () =
  Synthetic.generate (Rng.create seed)
    (Synthetic.config ~total ~f_y ~f_m ~max_laxity:100.0 ())

let test_empty_input () =
  let report = run ~requirements:(req ()) [||] in
  checki "no answer" 0 report.answer_size;
  checkb "meets" true (Quality.meets report.guarantees (req ()));
  checki "no reads" 0 report.counts.reads

let test_zero_recall_reads_nothing () =
  let report = run ~requirements:(req ~r:0.0 ()) (gen_data ()) in
  checki "no reads" 0 report.counts.reads;
  checki "empty answer" 0 report.answer_size;
  checkb "not exhausted" false report.exhausted

let test_perfect_quality_returns_exact_set () =
  (* p_q = r_q = 1 and zero laxity tolerance: the answer must be exactly
     the exact set, fully resolved. *)
  let data = gen_data ~total:500 () in
  let requirements = Quality.requirements ~precision:1.0 ~recall:1.0 ~laxity:0.0 in
  let report = run ~requirements data in
  checki "answer = exact set" (Synthetic.exact_size data) report.answer_size;
  List.iter
    (fun (e : Synthetic.obj Operator.emitted) ->
      checkb "every answer is a true hit" true (Synthetic.in_exact e.obj);
      checkb "fully resolved" true (e.precise || e.obj.laxity = 0.0))
    report.answer;
  checkb "guarantees perfect" true (Quality.meets report.guarantees requirements)

let test_perfect_recall_reads_everything () =
  let data = gen_data ~total:300 () in
  let report = run ~requirements:(req ~r:1.0 ~p:0.5 ~l:100.0 ()) data in
  checki "all read" 300 report.counts.reads;
  checkb "exhausted" true report.exhausted;
  (* No true hit may be missing. *)
  let hits_in_answer =
    List.length (List.filter (fun e -> Synthetic.in_exact e.Operator.obj) report.answer)
  in
  checki "no hit missed" (Synthetic.exact_size data) hits_in_answer

let test_streaming_emit_matches_collection () =
  let data = gen_data ~total:400 () in
  let streamed = ref [] in
  let report =
    Operator.run ~rng:(Rng.create 3) ~instance:Synthetic.instance
      ~probe:(Probe_driver.scalar Synthetic.probe) ~policy:Policy.greedy
      ~requirements:(req ())
      ~emit:(fun e -> streamed := e :: !streamed)
      (Operator.source_of_array data)
  in
  Alcotest.(check int) "same length" report.answer_size (List.length !streamed);
  checkb "same order" true (List.rev !streamed = report.answer)

let test_collect_false () =
  let data = gen_data ~total:200 () in
  let report =
    Operator.run ~rng:(Rng.create 3) ~instance:Synthetic.instance
      ~probe:(Probe_driver.scalar Synthetic.probe) ~policy:Policy.stingy
      ~requirements:(req ()) ~collect:false
      (Operator.source_of_array data)
  in
  checkb "nothing collected" true (report.answer = []);
  checkb "size still counted" true (report.answer_size > 0)

let test_write_accounting () =
  let data = gen_data ~total:500 () in
  let report = run ~policy:Policy.greedy ~requirements:(req ~r:0.9 ()) data in
  let precise, imprecise =
    List.partition (fun e -> e.Operator.precise) report.answer
  in
  checki "imprecise writes" report.counts.writes_imprecise (List.length imprecise);
  checki "precise writes" report.counts.writes_precise (List.length precise);
  checki "answer size" report.answer_size (List.length report.answer);
  checkb "reads bounded" true (report.counts.reads <= 500);
  checkb "probes bounded by reads" true (report.counts.probes <= report.counts.reads)

let test_shared_meter_delta () =
  let meter = Cost_meter.create () in
  let data = gen_data ~total:200 () in
  let r1 =
    Operator.run ~rng:(Rng.create 1) ~meter ~instance:Synthetic.instance
      ~probe:(Probe_driver.scalar Synthetic.probe) ~policy:Policy.stingy
      ~requirements:(req ())
      (Operator.source_of_array data)
  in
  let r2 =
    Operator.run ~rng:(Rng.create 2) ~meter ~instance:Synthetic.instance
      ~probe:(Probe_driver.scalar Synthetic.probe) ~policy:Policy.stingy
      ~requirements:(req ())
      (Operator.source_of_array data)
  in
  (* Each report covers only its own run; the meter has both. *)
  checki "meter accumulates"
    ((Cost_meter.counts meter).reads)
    (r1.counts.reads + r2.counts.reads)

let test_inconsistent_probe_raises () =
  let data = gen_data ~total:50 ~f_y:0.0 ~f_m:1.0 () in
  let bad_probe (o : Synthetic.obj) = o (* refuses to resolve *) in
  Alcotest.check_raises "unresolved probe detected" Operator.Inconsistent_probe
    (fun () ->
      ignore
        (Operator.run ~rng:(Rng.create 1) ~instance:Synthetic.instance
           ~probe:(Probe_driver.scalar bad_probe) ~policy:Policy.greedy
           ~requirements:(req ~p:1.0 ~r:1.0 ())
           (Operator.source_of_array data)))

let test_raw_mode_can_violate () =
  (* Greedy without the guard forwards all below-bound MAYBEs; with
     p_q = 0.99 the precision guarantee must end below requirement. *)
  let data = gen_data ~total:2000 () in
  let requirements = req ~p:0.99 ~r:0.5 () in
  let report = run ~policy:Policy.greedy ~enforce:false ~requirements data in
  checkb "violates precision" false
    (Quality.meets report.guarantees requirements);
  (* The same policy with the guard on never violates. *)
  let guarded = run ~policy:Policy.greedy ~enforce:true ~requirements data in
  checkb "guarded version meets" true
    (Quality.meets guarded.guarantees requirements)

let test_zone_map_source_is_sound () =
  (* Interval records, clustered; the filtered cursor prunes NO pages but
     guarantees must stay honest w.r.t. the FULL input. *)
  let rng = Rng.create 17 in
  let records =
    Interval_data.uniform_intervals rng ~n:3000
      ~value_range:(Interval.make 0.0 1000.0) ~max_width:30.0
  in
  Array.sort
    (fun (a : Interval_data.record) b -> Float.compare a.truth b.truth)
    records;
  let file = Heap_file.create ~page_size:64 records in
  let pred = Predicate.ge 850.0 in
  let zm =
    Zone_map.build file ~support:(fun (r : Interval_data.record) ->
        Uncertain.support r.belief)
  in
  let cursor =
    Heap_file.Cursor.open_filtered file ~skip_page:(Zone_map.prunable zm pred)
  in
  let requirements = req ~p:0.9 ~r:0.8 ~l:20.0 () in
  let report =
    Operator.run ~rng ~instance:(Interval_data.instance pred)
      ~probe:(Probe_driver.scalar Interval_data.probe) ~policy:Policy.stingy
      ~requirements
      (Operator.source_of_cursor cursor)
  in
  checkb "meets requirements" true (Quality.meets report.guarantees requirements);
  let answer_in_exact =
    List.length
      (List.filter (fun e -> Interval_data.in_exact pred e.Operator.obj) report.answer)
  in
  let actual_recall =
    Quality.Diagnostics.recall
      ~exact_size:(Interval_data.exact_size pred records)
      ~answer_in_exact
  in
  checkb "actual recall over full input dominates guarantee" true
    (actual_recall >= report.guarantees.recall -. 1e-9)

(* The central soundness property, fuzzed over workload shape,
   requirements and policy parameters. *)
let soundness_gen =
  QCheck2.Gen.(
    let* seed = int_range 0 10000 in
    let* f_y = float_range 0.0 0.5 in
    let* f_m = float_range 0.0 0.5 in
    let* p_q = float_range 0.0 1.0 in
    let* r_q = float_range 0.0 1.0 in
    let* l_q = float_range 0.0 110.0 in
    let* s3 = float_range 0.0 1.0 in
    let* s5 = float_range 0.0 1.0 in
    let* p_py = float_range 0.0 1.0 in
    let* p_fm = float_range 0.0 1.0 in
    return (seed, (f_y, f_m), (p_q, r_q, l_q), (s3, s5, p_py, p_fm)))

let prop_guarantees_sound =
  QCheck2.Test.make
    ~name:"guarantees meet requirements and dominate ground truth" ~count:120
    soundness_gen
    (fun (seed, (f_y, f_m), (p_q, r_q, l_q), (s3, s5, p_py, p_fm)) ->
      let data =
        Synthetic.generate (Rng.create seed)
          (Synthetic.config ~total:400 ~f_y ~f_m ~max_laxity:100.0 ())
      in
      let requirements =
        Quality.requirements ~precision:p_q ~recall:r_q ~laxity:l_q
      in
      let policy = Policy.qaq (Policy.params ~s3 ~s5 ~p_py ~p_fm) in
      let report = run ~seed ~policy ~requirements data in
      let answer_in_exact =
        List.length
          (List.filter (fun e -> Synthetic.in_exact e.Operator.obj) report.answer)
      in
      let actual_p =
        Quality.Diagnostics.precision ~answer_size:report.answer_size
          ~answer_in_exact
      in
      let actual_r =
        Quality.Diagnostics.recall ~exact_size:(Synthetic.exact_size data)
          ~answer_in_exact
      in
      Quality.meets report.guarantees requirements
      && actual_p >= report.guarantees.precision -. 1e-9
      && actual_r >= report.guarantees.recall -. 1e-9
      && report.guarantees.max_laxity <= l_q +. 1e-9)

(* Early termination: under a policy whose per-object actions do not
   depend on r_q (Greedy never prefers Ignore, so the Theorem 3.1 ignore
   guard never changes its trace), a weaker recall bound stops no later.
   For ignore-happy policies reads are genuinely non-monotone in r_q —
   a stricter bound forces forwards that build recall faster. *)
let prop_monotone_cost_in_recall =
  QCheck2.Test.make ~name:"weaker recall never reads more (greedy)" ~count:60
    QCheck2.Gen.(pair (int_range 0 1000) (float_range 0.1 0.9))
    (fun (seed, r_lo) ->
      let data = gen_data ~seed ~total:600 () in
      let reads r =
        (run ~seed:(seed + 1) ~policy:Policy.greedy ~requirements:(req ~r ())
           data)
          .counts.reads
      in
      reads r_lo <= reads (Float.min 1.0 (r_lo +. 0.1)))

(* Scale check: the operator is O(n) with small constants; a 100k-object
   query should complete in well under a second and stay sound. *)
let test_large_input_scales () =
  let data =
    Synthetic.generate (Rng.create 77)
      (Synthetic.config ~total:100_000 ~f_y:0.2 ~f_m:0.2 ())
  in
  let requirements = req ~p:0.9 ~r:0.7 ~l:60.0 () in
  let t0 = Unix.gettimeofday () in
  let report = run ~seed:78 ~policy:Policy.stingy ~requirements data in
  let elapsed = Unix.gettimeofday () -. t0 in
  checkb "meets at scale" true (Quality.meets report.guarantees requirements);
  checkb "subsecond" true (elapsed < 2.0)

(* ---- batched probing ------------------------------------------------ *)

(* The golden workload the pre-refactor (scalar-closure) operator was run
   on, with its full output hard-coded below.  [Probe_driver.scalar]
   flushes inside [submit], so the batch=1 operator must replay the
   scalar control flow — same RNG stream, same counters, same emission
   order — bit for bit. *)
let golden_data () =
  Synthetic.generate (Rng.create 42)
    (Synthetic.config ~total:2000 ~f_y:0.2 ~f_m:0.3 ~max_laxity:100.0 ())

let golden_requirements =
  Quality.requirements ~precision:0.92 ~recall:0.7 ~laxity:40.0

type golden = {
  g_reads : int;
  g_probes : int;
  g_wi : int;
  g_wp : int;
  g_answer : int;
  g_yes_seen : int;
  g_maybe_ignored : int;
  g_exhausted : bool;
  g_precision : float;
  g_recall : float;
  g_laxity : float;
  g_hash : int;  (** order-sensitive digest of the whole emission *)
  g_first10 : string;
}

(* Captured from the pre-refactor operator (commit before this one) by a
   throwaway driver printing every field below. *)
let goldens =
  [
    ( "stingy",
      Policy.stingy,
      {
        g_reads = 2000;
        g_probes = 545;
        g_wi = 200;
        g_wp = 373;
        g_answer = 573;
        g_yes_seen = 598;
        g_maybe_ignored = 156;
        g_exhausted = true;
        g_precision = 0.92146596858638741;
        g_recall = 0.70026525198938994;
        g_laxity = 39.836905277424947;
        g_hash = 1066082672;
        g_first10 = "1I;6P;7I;10P;12P;13I;15P;23P;24P;25P";
      } );
    ( "greedy",
      Policy.greedy,
      {
        g_reads = 1750;
        g_probes = 663;
        g_wi = 187;
        g_wp = 449;
        g_answer = 636;
        g_yes_seen = 586;
        g_maybe_ignored = 0;
        g_exhausted = false;
        g_precision = 0.92138364779874216;
        g_recall = 0.70095693779904311;
        g_laxity = 39.836905277424947;
        g_hash = 937554316;
        g_first10 = "1I;6P;7I;8P;10P;12P;13I;14P;15P;16P";
      } );
    ( "region",
      Policy.qaq (Policy.params ~s3:0.6 ~s5:0.3 ~p_py:0.5 ~p_fm:0.5),
      {
        g_reads = 2000;
        g_probes = 534;
        g_wi = 192;
        g_wp = 418;
        g_answer = 610;
        g_yes_seen = 648;
        g_maybe_ignored = 170;
        g_exhausted = true;
        g_precision = 0.93934426229508194;
        g_recall = 0.70048899755501226;
        g_laxity = 39.851900579220114;
        g_hash = 20894045;
        g_first10 = "1I;6P;7I;10P;12P;13I;14P;15P;16P;24P";
      } );
  ]

let emission_of report =
  List.map
    (fun (e : Synthetic.obj Operator.emitted) ->
      (e.obj.Synthetic.id, e.precise))
    report.Operator.answer

let emission_hash emission =
  List.fold_left
    (fun acc (id, p) ->
      ((acc * 1000003) + (id * 2) + (if p then 1 else 0)) land 0x3FFFFFFF)
    17 emission

let emission_first10 emission =
  String.concat ";"
    (List.map
       (fun (id, p) -> Printf.sprintf "%d%c" id (if p then 'P' else 'I'))
       (List.filteri (fun i _ -> i < 10) emission))

let test_batch1_reproduces_scalar () =
  let data = golden_data () in
  List.iter
    (fun (name, policy, g) ->
      let report =
        Operator.run ~rng:(Rng.create 7) ~instance:Synthetic.instance
          ~probe:(Probe_driver.scalar Synthetic.probe) ~policy
          ~requirements:golden_requirements
          (Operator.source_of_array data)
      in
      let emission = emission_of report in
      let chk l = Alcotest.check Alcotest.int (name ^ " " ^ l) in
      chk "reads" g.g_reads report.counts.reads;
      chk "probes" g.g_probes report.counts.probes;
      (* The scalar driver dispatches one batch per probe. *)
      chk "batches" g.g_probes report.counts.batches;
      chk "writes imprecise" g.g_wi report.counts.writes_imprecise;
      chk "writes precise" g.g_wp report.counts.writes_precise;
      chk "answer size" g.g_answer report.answer_size;
      chk "yes seen" g.g_yes_seen report.yes_seen;
      chk "maybe ignored" g.g_maybe_ignored report.maybe_ignored;
      checkb (name ^ " exhausted") g.g_exhausted report.exhausted;
      let chkf l = Alcotest.check (Alcotest.float 0.0) (name ^ " " ^ l) in
      chkf "precision" g.g_precision report.guarantees.precision;
      chkf "recall" g.g_recall report.guarantees.recall;
      chkf "laxity" g.g_laxity report.guarantees.max_laxity;
      chk "emission digest" g.g_hash (emission_hash emission);
      Alcotest.check Alcotest.string (name ^ " emission head") g.g_first10
        (emission_first10 emission))
    goldens

let test_batched_guarantees_hold_throughout () =
  (* For every batch size, the requirements must hold at the end AND the
     progressive (per-settlement) precision/laxity guarantees must never
     dip below/above the bounds: flush points included. *)
  let data = golden_data () in
  List.iter
    (fun batch ->
      let violated = ref 0 in
      let report =
        Operator.run ~rng:(Rng.create 7) ~instance:Synthetic.instance
          ~probe:(Probe_driver.of_scalar ~batch_size:batch Synthetic.probe)
          ~policy:Policy.stingy ~requirements:golden_requirements
          ~on_progress:(fun ~reads:_ (g : Quality.guarantees) ->
            if
              g.precision < golden_requirements.Quality.precision -. 1e-9
              || g.max_laxity > golden_requirements.Quality.laxity +. 1e-9
            then incr violated)
          (Operator.source_of_array data)
      in
      let name = Printf.sprintf "B=%d" batch in
      checki (name ^ " no mid-run violation") 0 !violated;
      checkb (name ^ " meets requirements") true
        (Quality.meets report.guarantees golden_requirements);
      (* Batch accounting: every batch has at most [batch] probes and the
         batch count is at least ceil(probes/batch). *)
      let min_batches =
        (report.counts.probes + batch - 1) / batch
      in
      checkb (name ^ " batch count sane") true
        (report.counts.probes = 0
        || (report.counts.batches >= min_batches
           && report.counts.batches <= report.counts.probes)))
    [ 1; 4; 16; 64 ]

let test_batching_reduces_cost_with_setup_charge () =
  (* With a per-batch setup charge c_b > 0, batching must pay: the total
     metered cost strictly decreases from B=1 to B=16 on a probe-heavy
     run. *)
  let data = golden_data () in
  let model = Cost_model.make ~c_r:1.0 ~c_p:100.0 ~c_wi:1.0 ~c_wp:1.0
      ~c_b:50.0 ()
  in
  let cost_at batch =
    let report =
      Operator.run ~rng:(Rng.create 7) ~instance:Synthetic.instance
        ~probe:(Probe_driver.of_scalar ~batch_size:batch Synthetic.probe)
        ~policy:Policy.stingy ~requirements:golden_requirements
        (Operator.source_of_array data)
    in
    Operator.cost model report
  in
  let w1 = cost_at 1 and w4 = cost_at 4 and w16 = cost_at 16 in
  checkb "B=4 cheaper than B=1" true (w4 < w1);
  checkb "B=16 cheaper than B=4" true (w16 < w4)

let suite =
  [
    ("empty input", `Quick, test_empty_input);
    ("zero recall reads nothing", `Quick, test_zero_recall_reads_nothing);
    ("perfect quality returns the exact set", `Quick, test_perfect_quality_returns_exact_set);
    ("perfect recall reads everything", `Quick, test_perfect_recall_reads_everything);
    ("streaming emit matches collection", `Quick, test_streaming_emit_matches_collection);
    ("collect=false", `Quick, test_collect_false);
    ("write accounting", `Quick, test_write_accounting);
    ("shared meter reports deltas", `Quick, test_shared_meter_delta);
    ("inconsistent probe raises", `Quick, test_inconsistent_probe_raises);
    ("raw mode can violate, guarded cannot", `Quick, test_raw_mode_can_violate);
    ("zone-map source stays sound", `Quick, test_zone_map_source_is_sound);
    ("batch=1 reproduces the scalar operator", `Quick,
     test_batch1_reproduces_scalar);
    ("batched guarantees hold at every flush point", `Quick,
     test_batched_guarantees_hold_throughout);
    ("batching reduces cost under a setup charge", `Quick,
     test_batching_reduces_cost_with_setup_charge);
    QCheck_alcotest.to_alcotest prop_guarantees_sound;
    QCheck_alcotest.to_alcotest prop_monotone_cost_in_recall;
    ("large input scales", `Slow, test_large_input_scales);
  ]
