(* Tests for the optimization framework: densities, the region model,
   Nelder-Mead, the closed-form read count, and reproduction of the
   paper's §5.1 optimal costs. *)

let checkf tol = Alcotest.(check (float tol))
let checkb = Alcotest.(check bool)

let test_uniform_density () =
  let d = Density.uniform ~max_laxity:100.0 in
  checkf 1e-12 "yes above" 0.3 (d.yes_above 70.0);
  checkf 1e-12 "yes above 0" 1.0 (d.yes_above 0.0);
  checkf 1e-12 "yes above L" 0.0 (d.yes_above 100.0);
  let r = d.maybe_region ~s_min:0.6 ~l_min:20.0 ~l_max:70.0 in
  checkf 1e-12 "region mass" (0.4 *. 0.5) r.mass;
  checkf 1e-12 "region mean s" 0.8 r.mean_s;
  let empty = d.maybe_region ~s_min:1.0 ~l_min:0.0 ~l_max:100.0 in
  checkf 1e-12 "empty region" 0.0 empty.mass

let test_histogram_density_approximates_uniform () =
  (* A histogram estimated from a large uniform sample should agree with
     the analytic uniform density. *)
  let sample =
    Synthetic.generate (Rng.create 12)
      (Synthetic.config ~total:30000 ~f_y:0.2 ~f_m:0.3 ~max_laxity:100.0 ())
  in
  let e =
    Selectivity.estimate ~instance:Synthetic.instance ~laxity_cap:100.0 sample
  in
  let d = Density.of_estimate e in
  let u = Density.uniform ~max_laxity:100.0 in
  checkb "yes_above close" true (Float.abs (d.yes_above 50.0 -. u.yes_above 50.0) < 0.03);
  let rd = d.maybe_region ~s_min:0.7 ~l_min:0.0 ~l_max:50.0 in
  let ru = u.maybe_region ~s_min:0.7 ~l_min:0.0 ~l_max:50.0 in
  checkb "region mass close" true (Float.abs (rd.mass -. ru.mass) < 0.03);
  checkb "mean s close" true (Float.abs (rd.mean_s -. ru.mean_s) < 0.05)

(* Hand-checked region counts for the paper's varying-laxity point
   l_q = 20 with the paper's reported optimum. *)
let test_region_model_hand_check () =
  let spec = Region_model.uniform_spec ~f_y:0.2 ~f_m:0.2 ~max_laxity:100.0 in
  let params = Policy.params ~s3:1.0 ~s5:1.0 ~p_py:0.93 ~p_fm:0.53 in
  let f = Region_model.fractions spec ~laxity_bound:20.0 params in
  checkf 1e-9 "Y" 0.2 f.yes;
  checkf 1e-9 "Yf = (l_q/L) Y" 0.04 f.yes_forwarded;
  checkf 1e-9 "Yp = p_py (1-l_q/L) Y" (0.93 *. 0.8 *. 0.2) f.yes_probed;
  checkf 1e-9 "no maybe probes at s3=s5=1" 0.0 f.maybe_probed;
  checkf 1e-9 "Mf = p_fm (l_q/L) M" (0.53 *. 0.2 *. 0.2) f.maybe_forwarded;
  (* Expected precision binds near 0.9, as in the paper. *)
  checkb "precision near bound" true
    (Float.abs (Region_model.precision_estimate f -. 0.9) < 0.01);
  (* Unit cost: c_r + Yp c_p + (Yf+Mf) c_wi + Yp c_wp. *)
  let w = Region_model.unit_cost Cost_model.paper f in
  checkb "unit cost near 16.1" true (Float.abs (w -. 16.1) < 0.2)

let default_problem ?(f_y = 0.2) ?(f_m = 0.2) ?(p = 0.9) ?(r = 0.5) ?(l = 50.0) () =
  Solver.problem ~total:10000
    ~spec:(Region_model.uniform_spec ~f_y ~f_m ~max_laxity:100.0)
    ~requirements:(Quality.requirements ~precision:p ~recall:r ~laxity:l)
    ()

(* The closed-form minimal R reproduces the only R/|T| column the paper
   reports (varying recall, Stingy-like parameters). *)
let test_closed_form_reads () =
  let evaluate r_q =
    Solver.evaluate (default_problem ~r:r_q ()) Policy.stingy_params
  in
  let e1 = evaluate 0.01 in
  checkb "feasible" true e1.feasible;
  checkf 1e-3 "R/|T| at 0.01" 0.0943 e1.read_fraction;
  let e2 = evaluate 0.1 in
  checkf 1e-3 "R/|T| at 0.1" 0.625 e2.read_fraction;
  checkf 5e-3 "W/|T| at 0.1" 0.6875 e2.normalized_cost;
  (* Stingy alone cannot reach r_q = 0.5. *)
  let e3 = evaluate 0.5 in
  checkb "infeasible at 0.5" false e3.feasible;
  checkb "violation positive" true (e3.violation > 0.0)

let test_zero_recall_is_free () =
  let e = Solver.evaluate (default_problem ~r:0.0 ()) Policy.greedy_params in
  checkb "feasible" true e.feasible;
  checkf 0.0 "no reads" 0.0 e.reads;
  checkf 0.0 "no cost" 0.0 e.cost

let test_nelder_mead_quadratic () =
  let f x = ((x.(0) -. 0.3) ** 2.0) +. ((x.(1) +. 0.2) ** 2.0) in
  let r =
    Nelder_mead.minimize ~lower:[| -1.0; -1.0 |] ~upper:[| 1.0; 1.0 |]
      ~init:[| 0.9; 0.9 |] f
  in
  checkb "x0" true (Float.abs (r.point.(0) -. 0.3) < 1e-4);
  checkb "x1" true (Float.abs (r.point.(1) +. 0.2) < 1e-4);
  checkb "value" true (r.value < 1e-8)

let test_nelder_mead_respects_box () =
  (* Optimum outside the box: solution must sit on the boundary. *)
  let f x = (x.(0) -. 5.0) ** 2.0 in
  let r =
    Nelder_mead.minimize ~lower:[| 0.0 |] ~upper:[| 1.0 |] ~init:[| 0.5 |] f
  in
  checkb "clamped to boundary" true (Float.abs (r.point.(0) -. 1.0) < 1e-6);
  Alcotest.check_raises "dimension mismatch"
    (Invalid_argument "Nelder_mead.minimize: dimension mismatch") (fun () ->
      ignore (Nelder_mead.minimize ~lower:[| 0.0 |] ~upper:[| 1.0; 2.0 |]
                ~init:[| 0.5 |] f))

(* §5.1 reproduction: the solver's optimal cost matches the paper's
   tables within a few percent (the paper's own numbers are rounded). *)
let paper_opt_cases =
  [
    (* (f_y, f_m, p_q, r_q, l_q, paper W/|T|) *)
    (0.2, 0.2, 0.9, 0.5, 1.0, 20.9);
    (0.2, 0.2, 0.9, 0.5, 40.0, 12.2);
    (0.2, 0.2, 0.9, 0.5, 99.0, 1.2);
    (0.2, 0.2, 0.5, 0.5, 50.0, 6.3);
    (0.2, 0.2, 0.99, 0.5, 50.0, 11.1);
    (0.2, 0.2, 0.9, 0.01, 50.0, 0.1);
    (0.2, 0.2, 0.9, 0.99, 50.0, 27.8);
    (0.01, 0.01, 0.9, 0.5, 50.0, 1.5);
    (0.4, 0.4, 0.9, 0.5, 50.0, 19.3);
    (0.2, 0.01, 0.9, 0.5, 50.0, 1.4);
    (0.2, 0.4, 0.9, 0.5, 50.0, 20.3);
  ]

let test_solver_reproduces_paper () =
  List.iter
    (fun (f_y, f_m, p, r, l, paper) ->
      let e = Solver.solve (default_problem ~f_y ~f_m ~p ~r ~l ()) in
      checkb
        (Printf.sprintf "feasible at l=%g p=%g r=%g fm=%g" l p r f_m)
        true e.feasible;
      let tolerance = Float.max 0.05 (0.04 *. paper) in
      checkb
        (Printf.sprintf "W/|T| %.3f within %.2f of paper %.1f"
           e.normalized_cost tolerance paper)
        true
        (Float.abs (e.normalized_cost -. paper) <= tolerance))
    paper_opt_cases

let test_solver_never_beats_evaluate_feasibility () =
  (* Whatever solve returns must evaluate identically: no stale caching. *)
  let p = default_problem () in
  let e = Solver.solve p in
  let re = Solver.evaluate p e.params in
  checkf 1e-9 "re-evaluated cost matches" e.cost re.cost;
  checkb "re-evaluated feasibility matches" true (e.feasible = re.feasible)

let test_grid_cross_check () =
  (* The coarse grid must agree with Nelder-Mead within grid resolution
     on a couple of representative problems. *)
  List.iter
    (fun problem ->
      let nm = Solver.solve problem in
      let grid = Grid.search ~resolution:6 ~refinements:2 problem in
      checkb "both feasible" true (nm.feasible && grid.feasible);
      checkb
        (Printf.sprintf "grid %.3f vs nm %.3f" grid.normalized_cost
           nm.normalized_cost)
        true
        (nm.normalized_cost <= grid.normalized_cost +. 0.05
        && grid.normalized_cost <= nm.normalized_cost *. 1.10 +. 0.05))
    [ default_problem (); default_problem ~r:0.8 (); default_problem ~l:20.0 () ]

let test_monotone_in_requirements () =
  let cost ?(p = 0.9) ?(r = 0.5) ?(l = 50.0) () =
    (Solver.solve (default_problem ~p ~r ~l ())).normalized_cost
  in
  checkb "stricter recall costs more" true (cost ~r:0.8 () >= cost ~r:0.4 () -. 1e-6);
  checkb "stricter precision costs more" true (cost ~p:0.99 () >= cost ~p:0.6 () -. 1e-6);
  checkb "looser laxity costs less" true (cost ~l:80.0 () <= cost ~l:20.0 () +. 1e-6)

let test_better_tie_break () =
  (* Two infeasible candidates with the same violation used to be
     decided by seed order; cost is the tie-break now, in both argument
     orders. *)
  let p = default_problem ~r:0.99 () in
  let base = Solver.evaluate p Policy.stingy_params in
  let a = { base with Solver.feasible = false; violation = 0.3; cost = 10.0 } in
  let b = { a with Solver.cost = 5.0 } in
  checkf 0.0 "cheaper wins (a, b)" 5.0 (Solver.better a b).Solver.cost;
  checkf 0.0 "cheaper wins (b, a)" 5.0 (Solver.better b a).Solver.cost;
  (* Unequal violations still dominate cost. *)
  let worse = { a with Solver.violation = 0.4; cost = 1.0 } in
  checkf 0.0 "less violation beats cheaper" 0.3
    (Solver.better a worse).Solver.violation;
  (* Feasibility still dominates everything. *)
  let feasible = { base with Solver.feasible = true; violation = 0.0 } in
  checkb "feasible beats infeasible" true
    (Solver.better feasible b).Solver.feasible

(* --- the dual (budgeted) problem ------------------------------------- *)

let test_dual_ample_budget_matches_primal () =
  let p = default_problem () in
  let primal = Solver.solve p in
  let d = Solver.solve_dual ~budget:(primal.Solver.cost *. 2.0) p in
  checkb "feasible" true d.Solver.d_feasible;
  checkb "budget does not bind" false d.Solver.budget_limited;
  checkf 1e-12 "target is the requested recall" 0.5 d.Solver.target_recall;
  checkf 1e-9 "spend is the primal optimum" primal.Solver.cost d.Solver.d_cost;
  checkb "params are the primal params" true
    (d.Solver.d_params = primal.Solver.params)

let test_dual_zero_budget_is_empty () =
  let d = Solver.solve_dual ~budget:0.0 (default_problem ()) in
  checkb "feasible (empty answer)" true d.Solver.d_feasible;
  checkf 0.0 "target 0" 0.0 d.Solver.target_recall;
  checkf 0.0 "no reads" 0.0 d.Solver.d_reads;
  checkf 0.0 "no spend" 0.0 d.Solver.d_cost;
  checkb "budget binds" true d.Solver.budget_limited

let test_dual_monotone_in_budget () =
  let p = default_problem () in
  let budgets = [ 100.0; 1_000.0; 10_000.0; 50_000.0; 1_000_000.0 ] in
  let duals = List.map (fun b -> Solver.solve_dual ~budget:b p) budgets in
  List.iter2
    (fun b d ->
      checkb
        (Printf.sprintf "spend %.1f within budget %.1f" d.Solver.d_cost b)
        true
        (d.Solver.d_cost <= b +. 1e-6);
      checkb "feasible at every budget" true d.Solver.d_feasible;
      checkb "target capped at r_q" true
        (d.Solver.target_recall <= 0.5 +. 1e-9))
    budgets duals;
  let rec pairs = function
    | lo :: (hi :: _ as rest) ->
        checkb
          (Printf.sprintf "target %.4f <= %.4f" lo.Solver.target_recall
             hi.Solver.target_recall)
          true
          (lo.Solver.target_recall <= hi.Solver.target_recall +. 1e-9);
        pairs rest
    | _ -> ()
  in
  pairs duals;
  (* The sweep spans both regimes. *)
  checkb "smallest budget binds" true
    (List.hd duals).Solver.budget_limited;
  checkb "largest budget does not" false
    (List.nth duals (List.length duals - 1)).Solver.budget_limited

let test_explain () =
  let p = default_problem () in
  let e = Solver.solve p in
  let text = Solver.explain p e in
  let contains needle =
    let n = String.length needle and h = String.length text in
    let rec go i = i + n <= h && (String.sub text i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "names the plan" true (contains "plan: s3=");
  Alcotest.(check bool) "reports reads" true (contains "reads:");
  Alcotest.(check bool) "breaks down cost" true (contains "cost W =");
  Alcotest.(check bool) "reports slacks" true (contains "slack");
  Alcotest.(check bool) "feasible plan not flagged" false (contains "INFEASIBLE");
  (* An infeasible evaluation is flagged. *)
  let infeasible =
    Solver.evaluate (default_problem ~r:0.99 ()) Policy.stingy_params
  in
  Alcotest.(check bool) "infeasible flagged" true
    (let t = Solver.explain (default_problem ~r:0.99 ()) infeasible in
     let n = String.length "INFEASIBLE" in
     let rec go i = i + n <= String.length t && (String.sub t i n = "INFEASIBLE" || go (i + 1)) in
     go 0)

let suite =
  [
    ("uniform density", `Quick, test_uniform_density);
    ("plan explanation", `Quick, test_explain);
    ("histogram density approximates uniform", `Quick, test_histogram_density_approximates_uniform);
    ("region model hand check", `Quick, test_region_model_hand_check);
    ("closed-form reads (paper R/|T|)", `Quick, test_closed_form_reads);
    ("zero recall is free", `Quick, test_zero_recall_is_free);
    ("nelder-mead quadratic", `Quick, test_nelder_mead_quadratic);
    ("nelder-mead box constraints", `Quick, test_nelder_mead_respects_box);
    ("better tie-break on equal violation", `Quick, test_better_tie_break);
    ("dual: ample budget is the primal plan", `Quick,
     test_dual_ample_budget_matches_primal);
    ("dual: zero budget is the empty plan", `Quick,
     test_dual_zero_budget_is_empty);
    ("dual: target monotone in budget", `Slow, test_dual_monotone_in_budget);
    ("solver reproduces paper 5.1", `Slow, test_solver_reproduces_paper);
    ("solve/evaluate agreement", `Quick, test_solver_never_beats_evaluate_feasibility);
    ("grid cross-check", `Slow, test_grid_cross_check);
    ("cost monotone in requirements", `Slow, test_monotone_in_requirements);
  ]
