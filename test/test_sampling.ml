(* Tests for reservoir sampling, histograms and selectivity estimation. *)

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checkf tol = Alcotest.(check (float tol))

let test_reservoir_small_stream () =
  let r = Reservoir.create (Rng.create 1) ~capacity:10 in
  for i = 1 to 5 do
    Reservoir.add r i
  done;
  checki "keeps everything when under capacity" 5
    (Array.length (Reservoir.contents r));
  checki "seen" 5 (Reservoir.seen r)

let test_reservoir_capacity () =
  let r = Reservoir.create (Rng.create 2) ~capacity:10 in
  for i = 1 to 1000 do
    Reservoir.add r i
  done;
  let c = Reservoir.contents r in
  checki "capped" 10 (Array.length c);
  Array.iter (fun x -> checkb "from stream" true (x >= 1 && x <= 1000)) c;
  (* Distinctness: reservoir never duplicates stream positions. *)
  let sorted = Array.copy c in
  Array.sort compare sorted;
  for i = 0 to 8 do
    checkb "distinct" true (sorted.(i) <> sorted.(i + 1))
  done

let test_reservoir_uniformity () =
  (* Each element of a 100-stream should appear with probability 1/10 in
     a 10-slot reservoir; check the first element's rate over many
     trials. *)
  let hits = ref 0 in
  let trials = 5000 in
  for t = 1 to trials do
    let r = Reservoir.create (Rng.create t) ~capacity:10 in
    for i = 1 to 100 do
      Reservoir.add r i
    done;
    if Array.exists (fun x -> x = 1) (Reservoir.contents r) then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int trials in
  checkb "first element rate near 0.1" true (Float.abs (rate -. 0.1) < 0.02)

let test_hist1d () =
  let h = Histogram.Hist1d.create ~lo:0.0 ~hi:10.0 ~bins:10 in
  List.iter (Histogram.Hist1d.add h) [ 0.5; 1.5; 2.5; 3.5; 4.5; 5.5; 6.5; 7.5; 8.5; 9.5 ];
  checki "count" 10 (Histogram.Hist1d.count h);
  checkf 1e-9 "mass above 5" 0.5 (Histogram.Hist1d.mass_above h 5.0);
  checkf 1e-9 "mass between" 0.3 (Histogram.Hist1d.mass_between h 2.0 5.0);
  checkf 1e-9 "mean of midpoints" 5.0 (Histogram.Hist1d.mean h);
  (* Fractional bin: above 4.5 takes half of bin [4,5]. *)
  checkf 1e-9 "fractional bin" 0.55 (Histogram.Hist1d.mass_above h 4.5);
  (* Out-of-range values clamp to boundary bins. *)
  Histogram.Hist1d.add h 99.0;
  checkf 1e-9 "clamped into top bin" (6.0 /. 11.0)
    (Histogram.Hist1d.mass_above h 5.0)

let test_hist2d_region () =
  let h =
    Histogram.Hist2d.create ~x_lo:0.0 ~x_hi:1.0 ~x_bins:10 ~y_lo:0.0 ~y_hi:100.0
      ~y_bins:10
  in
  (* Four points at known spots. *)
  Histogram.Hist2d.add h ~x:0.15 ~y:10.0;
  Histogram.Hist2d.add h ~x:0.85 ~y:10.0;
  Histogram.Hist2d.add h ~x:0.15 ~y:90.0;
  Histogram.Hist2d.add h ~x:0.85 ~y:90.0;
  let r = Histogram.Hist2d.region h ~x_min:0.5 ~y_min:50.0 ~y_max:100.0 in
  checkf 1e-9 "one of four in the quadrant" 0.25 r.mass;
  checkf 1e-9 "its mean x" 0.85 r.mean_x;
  let all = Histogram.Hist2d.region h ~x_min:0.0 ~y_min:0.0 ~y_max:100.0 in
  checkf 1e-9 "full mass" 1.0 all.mass;
  checkf 1e-9 "overall mean x" 0.5 all.mean_x

let synthetic_sample seed n f_y f_m =
  Synthetic.generate (Rng.create seed)
    (Synthetic.config ~total:n ~f_y ~f_m ~max_laxity:100.0 ())

(* Regression: non-finite values used to clamp silently into a boundary
   bin, corrupting the estimate; they must be rejected loudly and leave
   the histogram untouched. *)
let test_hist_non_finite () =
  let h = Histogram.Hist1d.create ~lo:0.0 ~hi:10.0 ~bins:10 in
  Alcotest.check_raises "1d nan"
    (Invalid_argument "Hist1d.bin_of: non-finite value") (fun () ->
      Histogram.Hist1d.add h Float.nan);
  Alcotest.check_raises "1d infinity"
    (Invalid_argument "Hist1d.bin_of: non-finite value") (fun () ->
      Histogram.Hist1d.add h Float.infinity);
  checki "1d untouched" 0 (Histogram.Hist1d.count h);
  let h2 =
    Histogram.Hist2d.create ~x_lo:0.0 ~x_hi:1.0 ~x_bins:4 ~y_lo:0.0 ~y_hi:1.0
      ~y_bins:4
  in
  Alcotest.check_raises "2d nan x"
    (Invalid_argument "Hist2d.index: non-finite value") (fun () ->
      Histogram.Hist2d.add h2 ~x:Float.nan ~y:0.5);
  Alcotest.check_raises "2d infinite y"
    (Invalid_argument "Hist2d.index: non-finite value") (fun () ->
      Histogram.Hist2d.add h2 ~x:0.5 ~y:Float.neg_infinity);
  checki "2d untouched" 0 (Histogram.Hist2d.count h2)

let test_selectivity_estimate () =
  let sample = synthetic_sample 5 20000 0.25 0.35 in
  let e =
    Selectivity.estimate ~instance:Synthetic.instance ~laxity_cap:100.0 sample
  in
  checkb "f_y near truth" true (Float.abs (e.f_y -. 0.25) < 0.02);
  checkb "f_m near truth" true (Float.abs (e.f_m -. 0.35) < 0.02);
  checkf 0.0 "laxity cap respected" 100.0 e.max_laxity;
  (* The maybe-plane histogram should see roughly uniform success: the
     mass above s = 0.5 is about half. *)
  let r =
    Histogram.Hist2d.region e.maybe_plane ~x_min:0.5 ~y_min:0.0 ~y_max:100.0
  in
  checkb "uniform success mass" true (Float.abs (r.mass -. 0.5) < 0.05)

let test_selectivity_validation () =
  Alcotest.check_raises "empty sample"
    (Invalid_argument "Selectivity.estimate: empty sample") (fun () ->
      ignore (Selectivity.estimate ~instance:Synthetic.instance [||]))

let test_bernoulli_sample () =
  let rng = Rng.create 9 in
  let data = Array.init 50000 (fun i -> i) in
  let s = Selectivity.bernoulli_sample rng ~fraction:0.01 data in
  let n = Array.length s in
  checkb "about 1%" true (n > 350 && n < 650);
  (* Order-preserving subsequence. *)
  let ok = ref true in
  Array.iteri (fun i x -> if i > 0 && x <= s.(i - 1) then ok := false) s;
  checkb "order preserved" true !ok;
  checki "fraction 0 empty" 0
    (Array.length (Selectivity.bernoulli_sample rng ~fraction:0.0 data))

let suite =
  [
    ("reservoir under capacity", `Quick, test_reservoir_small_stream);
    ("reservoir at capacity", `Quick, test_reservoir_capacity);
    ("reservoir uniformity", `Slow, test_reservoir_uniformity);
    ("hist1d masses", `Quick, test_hist1d);
    ("hist2d regions", `Quick, test_hist2d_region);
    ("histograms reject non-finite", `Quick, test_hist_non_finite);
    ("selectivity estimation", `Quick, test_selectivity_estimate);
    ("selectivity validation", `Quick, test_selectivity_validation);
    ("bernoulli sampling", `Quick, test_bernoulli_sample);
  ]
