(* Tests for the storage substrate: cost model/meter, heap files,
   cursors, buffer pool and zone maps. *)

let checkf = Alcotest.(check (float 1e-9))
let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let test_cost_model () =
  let m = Cost_model.paper in
  checkf "paper probe cost" 100.0 m.c_p;
  checkf "paper read cost" 1.0 m.c_r;
  checkf "paper batch cost" 0.0 m.c_b;
  checkf "uniform batch cost" 0.0 Cost_model.uniform.c_b;
  Alcotest.check_raises "negative cost"
    (Invalid_argument "Cost_model.make: c_p must be >= 0") (fun () ->
      ignore (Cost_model.make ~c_r:1.0 ~c_p:(-1.0) ~c_wi:1.0 ~c_wp:1.0 ()));
  Alcotest.check_raises "negative batch cost"
    (Invalid_argument "Cost_model.make: c_b must be >= 0") (fun () ->
      ignore
        (Cost_model.make ~c_r:1.0 ~c_p:1.0 ~c_wi:1.0 ~c_wp:1.0 ~c_b:(-0.5) ()));
  Alcotest.check_raises "NaN batch cost"
    (Invalid_argument "Cost_model.make: c_b must be >= 0") (fun () ->
      ignore
        (Cost_model.make ~c_r:1.0 ~c_p:1.0 ~c_wi:1.0 ~c_wp:1.0 ~c_b:Float.nan
           ()))

let test_cost_model_amortize () =
  let m = Cost_model.make ~c_r:1.0 ~c_p:100.0 ~c_wi:1.0 ~c_wp:1.0 ~c_b:60.0 () in
  checkf "amortized B=1" 160.0 (Cost_model.amortized_probe m ~batch:1);
  checkf "amortized B=4" 115.0 (Cost_model.amortized_probe m ~batch:4);
  let a = Cost_model.amortize ~batch:4 m in
  checkf "amortize folds c_b into c_p" 115.0 a.c_p;
  checkf "amortize zeroes c_b" 0.0 a.c_b;
  checkf "amortize keeps c_r" 1.0 a.c_r;
  (* batch = 1 with c_b = 0 is the identity: the paper model is
     untouched. *)
  checkb "paper model unchanged" true
    (Cost_model.amortize ~batch:1 Cost_model.paper = Cost_model.paper);
  Alcotest.check_raises "bad batch"
    (Invalid_argument "Cost_model.amortized_probe: batch < 1") (fun () ->
      ignore (Cost_model.amortized_probe m ~batch:0))

let test_cost_model_roundtrip () =
  let check_roundtrip m =
    match Cost_model.of_string (Cost_model.to_string m) with
    | Some m' -> checkb "pp/of_string roundtrip" true (m = m')
    | None -> Alcotest.fail "of_string rejected its own pp output"
  in
  check_roundtrip Cost_model.paper;
  check_roundtrip Cost_model.uniform;
  check_roundtrip
    (Cost_model.make ~c_r:0.5 ~c_p:250.0 ~c_wi:2.0 ~c_wp:3.0 ~c_b:12.5 ());
  (* c_b is optional on input (older strings), defaulting to 0. *)
  (match Cost_model.of_string "c_r=1 c_p=100 c_wi=1 c_wp=1" with
  | Some m ->
      checkf "legacy string parses" 100.0 m.c_p;
      checkf "legacy c_b defaults to 0" 0.0 m.c_b
  | None -> Alcotest.fail "legacy string rejected");
  checkb "junk rejected" true (Cost_model.of_string "c_r=1 c_p=oops" = None);
  checkb "missing field rejected" true (Cost_model.of_string "c_r=1" = None);
  checkb "negative rejected" true
    (Cost_model.of_string "c_r=1 c_p=-3 c_wi=1 c_wp=1" = None)

let test_cost_meter () =
  let t = Cost_meter.create () in
  Cost_meter.charge_read t;
  Cost_meter.charge_read t;
  Cost_meter.charge_probe t;
  Cost_meter.charge_batch t;
  Cost_meter.charge_write_imprecise t;
  Cost_meter.charge_write_precise t;
  let c = Cost_meter.counts t in
  checki "reads" 2 c.reads;
  checki "probes" 1 c.probes;
  checki "batches" 1 c.batches;
  (* W = 2*1 + 1*100 + 1*1 + 1*1 = 104 under the paper model (c_b = 0:
     the batch charge is free there). *)
  checkf "total cost" 104.0 (Cost_meter.total_cost Cost_model.paper t);
  let batched =
    Cost_model.make ~c_r:1.0 ~c_p:100.0 ~c_wi:1.0 ~c_wp:1.0 ~c_b:7.0 ()
  in
  checkf "batch charge priced" 111.0 (Cost_meter.total_cost batched t);
  Cost_meter.reset t;
  checkf "reset" 0.0 (Cost_meter.total_cost Cost_model.paper t);
  checki "reset batches" 0 (Cost_meter.counts t).batches

let test_heap_file_layout () =
  let file = Heap_file.create ~page_size:10 (Array.init 25 (fun i -> i)) in
  checki "length" 25 (Heap_file.length file);
  checki "page count" 3 (Heap_file.page_count file);
  checki "short last page" 5 (Array.length (Heap_file.page file 2));
  checki "get" 17 (Heap_file.get file 17);
  Alcotest.check_raises "bad index" (Invalid_argument "Heap_file.get: index")
    (fun () -> ignore (Heap_file.get file 25));
  Alcotest.check_raises "bad page size"
    (Invalid_argument "Heap_file.create: page_size < 1") (fun () ->
      ignore (Heap_file.create ~page_size:0 [| 1 |]))

let test_cursor_full_scan () =
  let file = Heap_file.create ~page_size:7 (Array.init 23 (fun i -> i)) in
  let c = Heap_file.Cursor.open_ file in
  checki "initial remaining" 23 (Heap_file.Cursor.remaining c);
  let seen = ref [] in
  let rec drain () =
    match Heap_file.Cursor.next c with
    | Some x ->
        seen := x :: !seen;
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list int)) "storage order"
    (List.init 23 (fun i -> i))
    (List.rev !seen);
  checki "consumed" 23 (Heap_file.Cursor.consumed c);
  checki "remaining" 0 (Heap_file.Cursor.remaining c);
  let io = Heap_file.Cursor.io c in
  checki "pages fetched" 4 io.pages_fetched

let test_cursor_filtered () =
  let file = Heap_file.create ~page_size:10 (Array.init 40 (fun i -> i)) in
  (* Skip even pages. *)
  let c = Heap_file.Cursor.open_filtered file ~skip_page:(fun p -> p mod 2 = 0) in
  checki "deliverable excludes skipped upfront" 20
    (Heap_file.Cursor.remaining c);
  checki "skipped" 20 (Heap_file.Cursor.skipped c);
  let rec count acc =
    match Heap_file.Cursor.next c with
    | Some x ->
        checkb "from odd pages only" true (x / 10 mod 2 = 1);
        count (acc + 1)
    | None -> acc
  in
  checki "delivered" 20 (count 0);
  checki "pages fetched only odd" 2 (Heap_file.Cursor.io c).pages_fetched

let test_buffer_pool_lru () =
  let pool = Buffer_pool.create ~capacity:2 () in
  let loads = ref [] in
  let load p =
    loads := p :: !loads;
    [| p |]
  in
  ignore (Buffer_pool.fetch pool 1 load);
  ignore (Buffer_pool.fetch pool 2 load);
  ignore (Buffer_pool.fetch pool 1 load);
  (* hit *)
  ignore (Buffer_pool.fetch pool 3 load);
  (* evicts 2, the least recently used *)
  checkb "page 1 kept" true (Buffer_pool.contains pool 1);
  checkb "page 2 evicted" false (Buffer_pool.contains pool 2);
  ignore (Buffer_pool.fetch pool 2 load);
  let s = Buffer_pool.stats pool in
  checki "hits" 1 s.hits;
  checki "misses" 4 s.misses;
  checki "evictions" 2 s.evictions;
  Alcotest.(check (float 1e-9)) "hit rate" 0.2 (Buffer_pool.hit_rate s);
  Alcotest.check_raises "capacity" (Invalid_argument "Buffer_pool.create: capacity < 1")
    (fun () -> ignore (Buffer_pool.create ~capacity:0 ()))

(* Regression: a loader that raises must leave the pool exactly as it
   was — in particular the LRU victim must not be evicted for a page
   that never arrived. *)
let test_buffer_pool_failed_load () =
  let pool = Buffer_pool.create ~capacity:2 () in
  let load p = [| p |] in
  ignore (Buffer_pool.fetch pool 1 load);
  ignore (Buffer_pool.fetch pool 2 load);
  (* Pool is full; the next distinct fetch would evict page 1. *)
  Alcotest.check_raises "loader failure propagates" Not_found (fun () ->
      ignore (Buffer_pool.fetch pool 3 (fun _ -> raise Not_found)));
  checkb "page 1 still cached" true (Buffer_pool.contains pool 1);
  checkb "page 2 still cached" true (Buffer_pool.contains pool 2);
  checkb "failed page not cached" false (Buffer_pool.contains pool 3);
  let s = Buffer_pool.stats pool in
  checki "no eviction for a failed load" 0 s.evictions;
  checki "a failed fetch is still a miss" 3 s.misses;
  (* The pool keeps working: retrying the load now succeeds and evicts
     the true LRU victim (page 1). *)
  ignore (Buffer_pool.fetch pool 3 load);
  checki "eviction after a successful load" 1 (Buffer_pool.stats pool).evictions;
  checkb "page 1 evicted on retry" false (Buffer_pool.contains pool 1);
  checkb "page 3 cached on retry" true (Buffer_pool.contains pool 3)

(* The docs promise the raising-load contract holds identically for the
   chunk-fetch path: the pool is unit-agnostic, a failed chunk decode is
   a miss, nothing is inserted, no eviction is charged, and the hit rate
   counts the failure against the pool. *)
let test_buffer_pool_failed_chunk_load () =
  let pool : Column_store.chunk Buffer_pool.t =
    Buffer_pool.create ~capacity:2 ()
  in
  let store =
    Column_store.create ~chunk_size:4
      (Array.init 12 (fun id ->
           { Column_store.id; lo = 0.0; hi = 1.0; truth = 0.5 }))
  in
  let load c = Column_store.chunk store c in
  ignore (Buffer_pool.fetch pool 0 load);
  ignore (Buffer_pool.fetch pool 1 load);
  Alcotest.check_raises "decode failure propagates" Not_found (fun () ->
      ignore (Buffer_pool.fetch pool 2 (fun _ -> raise Not_found)));
  checkb "chunk 0 still cached" true (Buffer_pool.contains pool 0);
  checkb "chunk 1 still cached" true (Buffer_pool.contains pool 1);
  checkb "failed chunk not cached" false (Buffer_pool.contains pool 2);
  let s = Buffer_pool.stats pool in
  checki "failed decode is a miss" 3 s.misses;
  checki "no eviction for a failed decode" 0 s.evictions;
  Alcotest.(check (float 1e-9)) "hit rate charges the failure" 0.0
    (Buffer_pool.hit_rate s);
  ignore (Buffer_pool.fetch pool 2 load);
  checki "retry evicts the true LRU victim" 1 (Buffer_pool.stats pool).evictions

(* The pool is a monitor: two domains hammering the same pages must
   never run the loader twice for one page. *)
let test_buffer_pool_concurrent_single_load () =
  let pages = 8 in
  let pool = Buffer_pool.create ~capacity:pages () in
  let loads = Array.init pages (fun _ -> Atomic.make 0) in
  let load p =
    Atomic.incr loads.(p);
    (* widen the race window a loader outside the lock would lose *)
    Unix.sleepf 0.0005;
    [| p * 3 |]
  in
  let worker () =
    for _ = 1 to 50 do
      for p = 0 to pages - 1 do
        let v = Buffer_pool.fetch pool p load in
        if v.(0) <> p * 3 then Alcotest.fail "wrong page contents"
      done
    done
  in
  let a = Domain.spawn worker and b = Domain.spawn worker in
  Domain.join a;
  Domain.join b;
  for p = 0 to pages - 1 do
    checki (Printf.sprintf "page %d loaded exactly once" p) 1
      (Atomic.get loads.(p))
  done;
  let s = Buffer_pool.stats pool in
  checki "one miss per page" pages s.misses;
  checki "no evictions below capacity" 0 s.evictions

(* Pinned pages survive arbitrary eviction pressure, including pressure
   generated from another domain. *)
let test_buffer_pool_pin_survives_pressure () =
  let pool = Buffer_pool.create ~capacity:2 () in
  let load p = [| p |] in
  ignore (Buffer_pool.pin pool 100 load);
  checkb "pinned after pin" true (Buffer_pool.pinned pool 100);
  let pressure =
    Domain.spawn (fun () ->
        for p = 0 to 19 do
          ignore (Buffer_pool.fetch pool p load)
        done)
  in
  Domain.join pressure;
  checkb "pinned page never evicted" true (Buffer_pool.contains pool 100);
  checkb "still pinned" true (Buffer_pool.pinned pool 100);
  (* A fetch of the pinned page is a hit, not a reload. *)
  let before = (Buffer_pool.stats pool).misses in
  ignore (Buffer_pool.fetch pool 100 load);
  checki "pinned fetch is a hit" before (Buffer_pool.stats pool).misses;
  Buffer_pool.unpin pool 100;
  checkb "unpinned" false (Buffer_pool.pinned pool 100)

(* When every entry is pinned the pool would rather exceed capacity than
   discard a page in use; releasing a pin shrinks it back at once. *)
let test_buffer_pool_pin_over_capacity () =
  let pool = Buffer_pool.create ~capacity:2 () in
  let load p = [| p |] in
  ignore (Buffer_pool.pin pool 1 load);
  ignore (Buffer_pool.pin pool 2 load);
  ignore (Buffer_pool.fetch pool 3 load);
  (* nothing was evictable, so all three pages are resident *)
  checkb "page 1 resident" true (Buffer_pool.contains pool 1);
  checkb "page 2 resident" true (Buffer_pool.contains pool 2);
  checkb "page 3 resident" true (Buffer_pool.contains pool 3);
  checki "no eviction while all pinned" 0 (Buffer_pool.stats pool).evictions;
  Buffer_pool.unpin pool 1;
  (* page 1 became the LRU unpinned entry and is evicted immediately *)
  checkb "released page evicted to shrink back" false
    (Buffer_pool.contains pool 1);
  checkb "page 2 survives (pinned)" true (Buffer_pool.contains pool 2);
  checkb "page 3 survives (recent)" true (Buffer_pool.contains pool 3);
  checki "shrink-back charged as eviction" 1 (Buffer_pool.stats pool).evictions;
  Buffer_pool.unpin pool 2;
  checkb "page 2 stays once within capacity" true (Buffer_pool.contains pool 2)

let test_buffer_pool_unpin_validation () =
  let pool = Buffer_pool.create ~capacity:2 () in
  let load p = [| p |] in
  ignore (Buffer_pool.fetch pool 1 load);
  Alcotest.check_raises "unpinned page"
    (Invalid_argument "Buffer_pool.unpin: page is not pinned") (fun () ->
      Buffer_pool.unpin pool 1);
  Alcotest.check_raises "absent page"
    (Invalid_argument "Buffer_pool.unpin: page is not pinned") (fun () ->
      Buffer_pool.unpin pool 42);
  (* nested pins release one level at a time *)
  ignore (Buffer_pool.pin pool 1 load);
  ignore (Buffer_pool.pin pool 1 load);
  Buffer_pool.unpin pool 1;
  checkb "still pinned after one release" true (Buffer_pool.pinned pool 1);
  Buffer_pool.unpin pool 1;
  checkb "fully released" false (Buffer_pool.pinned pool 1)

let test_column_store_layout () =
  let rows =
    Array.init 25 (fun id ->
        let lo = float_of_int id in
        { Column_store.id = 1000 + id; lo; hi = lo +. 0.5; truth = lo +. 0.25 })
  in
  let store = Column_store.create ~chunk_size:10 rows in
  checki "length" 25 (Column_store.length store);
  checki "chunk count" 3 (Column_store.chunk_count store);
  checkb "short last chunk" true (Column_store.chunk_bounds store 2 = (20, 5));
  let ch = Column_store.chunk store 1 in
  checki "chunk base" 10 ch.Column_store.base;
  checki "chunk len" 10 ch.Column_store.len;
  checkb "row materializes" true (Column_store.row ch 3 = rows.(13));
  checkb "get crosses chunks" true (Column_store.get store 21 = rows.(21));
  (match Column_store.zone store 1 with
  | Some hull ->
      checkf "zone lo" 10.0 (Interval.lo hull);
      checkf "zone hi" 19.5 (Interval.hi hull)
  | None -> Alcotest.fail "chunk 1 has a zone");
  Alcotest.check_raises "bad chunk index"
    (Invalid_argument "Column_store.fetch: chunk index") (fun () ->
      ignore (Column_store.chunk store 3));
  Alcotest.check_raises "bad row"
    (Invalid_argument "Column_store.create: bound columns need finite lo <= hi")
    (fun () ->
      ignore
        (Column_store.create
           [| { Column_store.id = 0; lo = 2.0; hi = 1.0; truth = 0.0 } |]));
  Alcotest.check_raises "bad chunk size"
    (Invalid_argument "Column_store.create: chunk_size < 1") (fun () ->
      ignore (Column_store.create ~chunk_size:0 rows));
  Alcotest.check_raises "of_fetch zone mismatch"
    (Invalid_argument
       "Column_store.of_fetch: zone count does not match the layout")
    (fun () ->
      ignore
        (Column_store.of_fetch ~length:25 ~chunk_size:10 ~zones:[| None |]
           (Column_store.chunk store)))

(* Chunk pruning must agree with the row path's zone-map semantics: the
   hulls repackaged as a [Zone_map] give the same prunable set. *)
let test_column_store_pruning_matches_zone_map () =
  let records =
    Interval_data.uniform_intervals (Rng.create 53) ~n:500
      ~value_range:(Interval.make 0.0 100.0) ~max_width:5.0
  in
  Array.sort
    (fun (a : Interval_data.record) b ->
      compare
        (Interval.midpoint (Uncertain.support a.belief), a.id)
        (Interval.midpoint (Uncertain.support b.belief), b.id))
    records;
  let store = Interval_data.to_store ~chunk_size:25 records in
  let zm = Column_store.zone_map store in
  let pred = Predicate.ge 60.0 in
  checki "zone map covers every chunk"
    (Column_store.chunk_count store)
    (Zone_map.page_count zm);
  for c = 0 to Column_store.chunk_count store - 1 do
    checkb "prunable agrees with Zone_map" (Zone_map.prunable zm pred c)
      (Column_store.prunable store pred c)
  done;
  checki "pruned counts agree"
    (Zone_map.pruned_pages zm pred)
    (Column_store.pruned_chunks store pred);
  checkb "pruning bites on this layout" true
    (Column_store.pruned_chunks store pred > 0);
  (* Soundness: no pruned chunk holds a YES/MAYBE row. *)
  for c = 0 to Column_store.chunk_count store - 1 do
    if Column_store.prunable store pred c then begin
      let ch = Column_store.chunk store c in
      for i = 0 to ch.Column_store.len - 1 do
        let r = Interval_data.of_row (Column_store.row ch i) in
        checkb "pruned rows are NO" true
          (Tvl.equal (Predicate.classify pred r.belief) Tvl.No)
      done
    end
  done

let test_row_view () =
  let records =
    Interval_data.uniform_intervals (Rng.create 59) ~n:77
      ~value_range:(Interval.make 0.0 10.0) ~max_width:2.0
  in
  let store = Interval_data.to_store ~chunk_size:8 records in
  let view = Row_view.create store ~of_row:Interval_data.of_row in
  checki "view length" 77 (Row_view.length view);
  checkb "get matches source" true (Row_view.get view 13 = records.(13));
  checkb "to_array is the original data in storage order" true
    (Row_view.to_array view = records);
  let seen = ref 0 in
  Row_view.iter view (fun r ->
      checkb "iter order" true (r = records.(!seen));
      incr seen);
  checki "iter covers everything" 77 !seen

let test_zone_map () =
  (* Values clustered by page: page p holds supports around 10p. *)
  let records =
    Array.init 100 (fun i ->
        Interval.make (float_of_int i -. 0.4) (float_of_int i +. 0.4))
  in
  let file = Heap_file.create ~page_size:10 records in
  let zm = Zone_map.build file ~support:(fun i -> i) in
  checki "zones" 10 (Zone_map.page_count zm);
  let pred = Predicate.ge 75.0 in
  (* Pages 0..6 hold values <= 64.4 < 75: prunable.  Page 7 straddles. *)
  checkb "page 0 prunable" true (Zone_map.prunable zm pred 0);
  checkb "page 6 prunable" true (Zone_map.prunable zm pred 6);
  checkb "page 7 not prunable" false (Zone_map.prunable zm pred 7);
  checkb "page 9 not prunable" false (Zone_map.prunable zm pred 9);
  checki "pruned count" 7 (Zone_map.pruned_pages zm pred)

(* Soundness of pruning: no pruned page may contain a satisfying object. *)
let prop_zone_map_sound =
  QCheck2.Test.make ~name:"zone-map pruning never drops a YES/MAYBE object"
    ~count:100
    QCheck2.Gen.(pair (int_range 1 200) (float_range (-50.0) 50.0))
    (fun (n, threshold) ->
      let rng = Rng.create (n * 31) in
      let records =
        Array.init n (fun _ ->
            let lo = Rng.uniform_in rng (-60.0) 60.0 in
            Interval.make lo (lo +. Rng.float rng 10.0))
      in
      let file = Heap_file.create ~page_size:8 records in
      let zm = Zone_map.build file ~support:(fun i -> i) in
      let pred = Predicate.ge threshold in
      let sound = ref true in
      Heap_file.iter_pages file (fun p objects ->
          if Zone_map.prunable zm pred p then
            Array.iter
              (fun i ->
                match Predicate.classify_interval pred i with
                | Tvl.No -> ()
                | Tvl.Yes | Tvl.Maybe -> sound := false)
              objects);
      !sound)

let test_pooled_cursor () =
  let file = Heap_file.create ~page_size:10 (Array.init 100 (fun i -> i)) in
  let pool = Buffer_pool.create ~capacity:20 () in
  let drain cursor =
    let rec go acc =
      match Heap_file.Cursor.next cursor with
      | Some x -> go (x :: acc)
      | None -> List.rev acc
    in
    go []
  in
  let first = drain (Heap_file.Cursor.open_pooled file ~pool) in
  Alcotest.(check (list int)) "pooled scan correct" (List.init 100 Fun.id) first;
  let misses_after_first = (Buffer_pool.stats pool).misses in
  checki "all pages loaded once" 10 misses_after_first;
  (* A second scan through the same pool is all hits. *)
  let second = drain (Heap_file.Cursor.open_pooled file ~pool) in
  Alcotest.(check (list int)) "second scan correct" (List.init 100 Fun.id) second;
  checki "no new misses" misses_after_first (Buffer_pool.stats pool).misses;
  checki "ten hits" 10 (Buffer_pool.stats pool).hits;
  (* Skip filter composes with pooling. *)
  let partial =
    drain (Heap_file.Cursor.open_pooled ~skip_page:(fun p -> p > 4) file ~pool)
  in
  checki "first half only" 50 (List.length partial)

(* Regression for the pruning-aware scan path: the operator over a
   zone-map cursor returns the same answer as over a full scan, and is
   charged exactly (pages - pruned_pages) * page_size reads.  Pruned
   objects are all definite NOs, which never consume policy randomness,
   so the surviving objects see an identical rng stream. *)
let test_pruned_scan_regression () =
  let page_size = 64 in
  let n = 4096 in
  let records =
    Interval_data.uniform_intervals (Rng.create 77) ~n
      ~value_range:(Interval.make 0.0 100.0) ~max_width:6.0
  in
  (* Cluster values by page so low pages become whole-NO for a high
     threshold — the layout zone maps exist for. *)
  Array.sort
    (fun (a : Interval_data.record) b ->
      compare
        (Interval.midpoint (Uncertain.support a.belief), a.id)
        (Interval.midpoint (Uncertain.support b.belief), b.id))
    records;
  let file = Heap_file.create ~page_size records in
  let zm =
    Zone_map.build file ~support:(fun (r : Interval_data.record) ->
        Uncertain.support r.belief)
  in
  let pred = Predicate.ge 70.0 in
  let pruned = Zone_map.pruned_pages zm pred in
  checkb "some pages prunable" true (pruned > 0);
  checkb "some pages survive" true (pruned < Heap_file.page_count file);
  (* recall = 1 forces consumption of every deliverable object, so the
     read charge is exactly the deliverable count. *)
  let requirements =
    Quality.requirements ~precision:0.0 ~recall:1.0 ~laxity:200.0
  in
  let scan source =
    let meter = Cost_meter.create () in
    let report =
      Operator.run ~rng:(Rng.create 5) ~meter
        ~instance:(Interval_data.instance pred)
        ~probe:(Probe_driver.scalar Interval_data.probe)
        ~policy:(Policy.qaq Policy.stingy_params) ~requirements source
    in
    (report, Cost_meter.counts meter)
  in
  let full_report, full_counts =
    scan (Operator.source_of_cursor (Heap_file.Cursor.open_ file))
  in
  let obs = Obs.create () in
  let cursor = Zone_map.open_cursor ~obs zm pred file in
  checki "cursor skips what the map prunes" pruned
    (Heap_file.Cursor.pages_skipped cursor);
  let pruned_report, pruned_counts =
    scan (Operator.source_of_cursor cursor)
  in
  let ids (r : Interval_data.record Operator.report) =
    List.map
      (fun (e : Interval_data.record Operator.emitted) ->
        (e.obj.id, e.precise))
      r.answer
  in
  checkb "same answer set" true (ids full_report = ids pruned_report);
  checkb "both meet requirements" true
    (Quality.meets full_report.guarantees requirements
    && Quality.meets pruned_report.guarantees requirements);
  checki "full scan reads everything" n full_counts.reads;
  checki "pruned pages never charged as reads"
    (n - (pruned * page_size))
    pruned_counts.reads;
  checki "pruned_pages metric recorded" pruned
    (Metrics.count_of (Obs.snapshot obs) Obs.Keys.pruned_pages);
  Alcotest.check_raises "mismatched zone map rejected"
    (Invalid_argument "Zone_map.open_cursor: zone map does not match the file")
    (fun () ->
      let other = Heap_file.create ~page_size (Array.sub records 0 128) in
      ignore (Zone_map.open_cursor zm pred other))

let suite =
  [
    ("cost model", `Quick, test_cost_model);
    ("cost model amortized pricing", `Quick, test_cost_model_amortize);
    ("cost model pp/of_string roundtrip", `Quick, test_cost_model_roundtrip);
    ("cost meter accounting", `Quick, test_cost_meter);
    ("heap file layout", `Quick, test_heap_file_layout);
    ("cursor full scan", `Quick, test_cursor_full_scan);
    ("cursor with page filter", `Quick, test_cursor_filtered);
    ("buffer pool LRU", `Quick, test_buffer_pool_lru);
    ("buffer pool failed load", `Quick, test_buffer_pool_failed_load);
    ("buffer pool failed chunk load", `Quick, test_buffer_pool_failed_chunk_load);
    ("buffer pool concurrent single load", `Quick,
     test_buffer_pool_concurrent_single_load);
    ("buffer pool pin survives pressure", `Quick,
     test_buffer_pool_pin_survives_pressure);
    ("buffer pool pin over capacity", `Quick,
     test_buffer_pool_pin_over_capacity);
    ("buffer pool unpin validation", `Quick,
     test_buffer_pool_unpin_validation);
    ("column store layout", `Quick, test_column_store_layout);
    ( "column pruning matches zone map",
      `Quick,
      test_column_store_pruning_matches_zone_map );
    ("row view adapter", `Quick, test_row_view);
    ("pooled cursor", `Quick, test_pooled_cursor);
    ("zone map pruning", `Quick, test_zone_map);
    QCheck_alcotest.to_alcotest prop_zone_map_sound;
    ("pruned scan regression", `Quick, test_pruned_scan_regression);
  ]
