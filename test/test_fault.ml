(* Tests for the fault-injection library: the seeded fault plan, the
   round-based circuit breaker, and their wiring into Sensor_net's
   retry rounds. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkf = Alcotest.(check (float 1e-9))

(* --- Fault_plan ------------------------------------------------------ *)

let test_null_plan () =
  checkb "none is null" true (Fault_plan.is_null Fault_plan.none);
  checkb "seed alone keeps a plan null" true
    (Fault_plan.is_null (Fault_plan.make ~seed:99 ()));
  checkb "no injector for a null plan" true
    (Fault_plan.injector_opt ~site:"x" Fault_plan.none = None);
  checkb "a rate makes it live" false
    (Fault_plan.is_null (Fault_plan.make ~transient_rate:0.1 ()));
  checkb "an outage makes it live" false
    (Fault_plan.is_null
       (Fault_plan.make
          ~outages:[ { Fault_plan.node = 0; from_round = 0; rounds = 1 } ]
          ()));
  checkb "live plan builds an injector" true
    (Fault_plan.injector_opt ~site:"x"
       (Fault_plan.make ~transient_rate:0.1 ())
    <> None)

let invalid f =
  match ignore (f ()) with
  | () -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_make_validation () =
  invalid (fun () -> Fault_plan.make ~transient_rate:1.5 ());
  invalid (fun () -> Fault_plan.make ~permanent_rate:(-0.1) ());
  invalid (fun () -> Fault_plan.make ~spike_factor:0.5 ());
  invalid (fun () -> Fault_plan.make ~max_retries:(-1) ());
  invalid (fun () ->
      Fault_plan.make
        ~outages:[ { Fault_plan.node = 0; from_round = -1; rounds = 1 } ]
        ());
  invalid (fun () ->
      Fault_plan.make
        ~outages:[ { Fault_plan.node = 0; from_round = 0; rounds = 0 } ]
        ())

(* The injector's stream is a pure function of (seed, site): equal
   arguments replay identically, in lockstep, forever. *)
let draw_sequence inj n =
  List.init n (fun i ->
      let e = Fault_plan.fresh_element inj in
      (Fault_plan.element_permanent e, Fault_plan.attempt inj e ~round:i))

let prop_injector_deterministic =
  QCheck2.Test.make ~name:"injector stream is a pure function of (seed, site)"
    ~count:50
    QCheck2.Gen.(int_range 0 1_000_000)
    (fun seed ->
      let spec =
        Fault_plan.make ~seed ~transient_rate:0.4 ~permanent_rate:0.1 ()
      in
      let a = Fault_plan.injector ~site:"probe_source" spec in
      let b = Fault_plan.injector ~site:"probe_source" spec in
      draw_sequence a 100 = draw_sequence b 100
      && Fault_plan.injected a = Fault_plan.injected b)

let test_sites_diverge () =
  let spec = Fault_plan.make ~seed:7 ~transient_rate:0.5 () in
  let a = Fault_plan.injector ~site:"probe_source" spec in
  let b = Fault_plan.injector ~site:"sensor_net" spec in
  checkb "different sites draw different streams" false
    (draw_sequence a 200 = draw_sequence b 200)

let test_permanent_element () =
  let inj =
    Fault_plan.injector ~site:"t" (Fault_plan.make ~permanent_rate:1.0 ())
  in
  let e = Fault_plan.fresh_element inj in
  checkb "drawn permanent" true (Fault_plan.element_permanent e);
  for round = 0 to 20 do
    checkb "permanent fails every attempt" true
      (Fault_plan.attempt inj e ~round)
  done;
  let inj0 =
    Fault_plan.injector ~site:"t" (Fault_plan.make ~transient_rate:0.5 ())
  in
  checkb "no permanence without a rate" false
    (Fault_plan.element_permanent (Fault_plan.fresh_element inj0))

let test_outage_windows () =
  let inj =
    Fault_plan.injector ~site:"t"
      (Fault_plan.make
         ~outages:[ { Fault_plan.node = 3; from_round = 5; rounds = 2 } ]
         ())
  in
  let active node round = Fault_plan.outage_active inj ~node ~round in
  checkb "covers first round" true (active 3 5);
  checkb "covers last round" true (active 3 6);
  checkb "half-open end" false (active 3 7);
  checkb "before the window" false (active 3 4);
  checkb "other node untouched" false (active 2 5)

let test_latency_spikes () =
  let spiked =
    Fault_plan.injector ~site:"t"
      (Fault_plan.make ~spike_rate:1.0 ~spike_factor:10.0 ())
  in
  checkf "certain spike multiplies" 20.0 (Fault_plan.latency spiked 2.0);
  checkb "spike counted as injected" true (Fault_plan.injected spiked > 0);
  let calm =
    Fault_plan.injector ~site:"t" (Fault_plan.make ~transient_rate:0.1 ())
  in
  checkf "no spike rate, identity" 2.0 (Fault_plan.latency calm 2.0)

let test_injected_counter_reaches_metrics () =
  let obs = Obs.create () in
  let inj =
    Fault_plan.injector ~obs ~site:"t" (Fault_plan.make ~transient_rate:1.0 ())
  in
  let e = Fault_plan.fresh_element inj in
  for round = 0 to 4 do
    ignore (Fault_plan.attempt inj e ~round)
  done;
  checki "qaq.fault.injected mirrors the injector" 5
    (Metrics.count_of (Obs.snapshot obs) Obs.Keys.fault_injected);
  checki "accessor agrees" 5 (Fault_plan.injected inj)

(* --- Circuit_breaker ------------------------------------------------- *)

let test_breaker_trip_threshold () =
  let b = Circuit_breaker.create () in
  Circuit_breaker.record_failure b ~round:0;
  Circuit_breaker.record_failure b ~round:1;
  checkb "two failures stay closed" true (Circuit_breaker.state b = Closed);
  checki "consecutive tracked" 2 (Circuit_breaker.consecutive_failures b);
  Circuit_breaker.record_failure b ~round:2;
  checkb "third failure trips" true (Circuit_breaker.state b = Open);
  checki "one trip" 1 (Circuit_breaker.trips b);
  checkb "open refuses" false (Circuit_breaker.allow b ~round:3)

let test_breaker_backoff_schedule () =
  let b = Circuit_breaker.create () in
  for round = 0 to 2 do
    Circuit_breaker.record_failure b ~round
  done;
  (* Tripped at round 2 with the base window of 2: rounds 3 refused,
     round 4 is the recovery probe. *)
  checkb "round 3 refused" false (Circuit_breaker.allow b ~round:3);
  checkb "round 4 allowed" true (Circuit_breaker.allow b ~round:4);
  checkb "recovery probe is half-open" true
    (Circuit_breaker.state b = Half_open);
  (* Failed recovery re-trips with a doubled window: 4 rounds, so the
     next probe is at round 8; then 8 rounds to round 16. *)
  Circuit_breaker.record_failure b ~round:4;
  checkb "re-tripped" true (Circuit_breaker.state b = Open);
  checki "window doubled" 4 (Circuit_breaker.current_backoff b);
  checkb "round 7 refused" false (Circuit_breaker.allow b ~round:7);
  checkb "round 8 allowed" true (Circuit_breaker.allow b ~round:8);
  Circuit_breaker.record_failure b ~round:8;
  checki "window doubled again" 8 (Circuit_breaker.current_backoff b);
  checkb "round 15 refused" false (Circuit_breaker.allow b ~round:15);
  checkb "round 16 allowed" true (Circuit_breaker.allow b ~round:16);
  (* A successful recovery closes the breaker and resets the schedule. *)
  Circuit_breaker.record_success b ~round:16;
  checkb "closed again" true (Circuit_breaker.state b = Closed);
  checki "consecutive reset" 0 (Circuit_breaker.consecutive_failures b);
  checki "backoff reset" 2 (Circuit_breaker.current_backoff b);
  for round = 17 to 19 do
    Circuit_breaker.record_failure b ~round
  done;
  checkb "fresh trip uses the base window: round 20 refused" false
    (Circuit_breaker.allow b ~round:20);
  checkb "round 21 allowed" true (Circuit_breaker.allow b ~round:21)

let test_breaker_backoff_cap () =
  let b =
    Circuit_breaker.create ~trip_after:1 ~backoff_base:2 ~backoff_factor:2.0
      ~max_backoff:8 ()
  in
  let fail_recovery_at round =
    checkb "recovery allowed" true (Circuit_breaker.allow b ~round);
    Circuit_breaker.record_failure b ~round
  in
  Circuit_breaker.record_failure b ~round:0;
  fail_recovery_at 2;
  (* 2 -> 4 *)
  fail_recovery_at 6;
  (* 4 -> 8 *)
  fail_recovery_at 14;
  (* 8 -> capped at 8 *)
  checki "backoff capped" 8 (Circuit_breaker.current_backoff b);
  checkb "next window is the cap: round 21 refused" false
    (Circuit_breaker.allow b ~round:21);
  checkb "round 22 allowed" true (Circuit_breaker.allow b ~round:22)

let test_breaker_interleaved_success_resets () =
  let b = Circuit_breaker.create () in
  Circuit_breaker.record_failure b ~round:0;
  Circuit_breaker.record_failure b ~round:1;
  Circuit_breaker.record_success b ~round:2;
  Circuit_breaker.record_failure b ~round:3;
  Circuit_breaker.record_failure b ~round:4;
  checkb "streak broken, still closed" true (Circuit_breaker.state b = Closed);
  checki "never tripped" 0 (Circuit_breaker.trips b)

let test_breaker_validation () =
  invalid (fun () -> Circuit_breaker.create ~trip_after:0 ());
  invalid (fun () -> Circuit_breaker.create ~backoff_base:0 ());
  invalid (fun () -> Circuit_breaker.create ~backoff_factor:0.5 ());
  invalid (fun () -> Circuit_breaker.create ~backoff_base:4 ~max_backoff:2 ())

let test_breaker_state_gauge () =
  let obs = Obs.create () in
  let b = Circuit_breaker.create ~obs () in
  let gauge () =
    match Metrics.get (Obs.snapshot obs) Obs.Keys.fault_breaker_state with
    | Some (Metrics.Level l) -> int_of_float l
    | _ -> Alcotest.fail "breaker gauge missing"
  in
  checki "starts closed" 0 (gauge ());
  for round = 0 to 2 do
    Circuit_breaker.record_failure b ~round
  done;
  checki "open is 2" 2 (gauge ());
  ignore (Circuit_breaker.allow b ~round:4);
  checki "half-open is 1" 1 (gauge ());
  Circuit_breaker.record_success b ~round:4;
  checki "closed again is 0" 0 (gauge ());
  (* The completed open window lands in the outage histogram. *)
  match Metrics.dist_of (Obs.snapshot obs) Obs.Keys.fault_outage_rounds with
  | Some d -> checki "outage window observed" 1 d.Metrics.d_count
  | None -> Alcotest.fail "outage histogram missing"

let prop_breaker_never_trips_without_failure =
  QCheck2.Test.make ~name:"all-success round sequences never trip" ~count:200
    QCheck2.Gen.(list_size (int_range 1 50) (int_range 0 3))
    (fun gaps ->
      let b = Circuit_breaker.create () in
      let round = ref 0 in
      List.for_all
        (fun gap ->
          round := !round + gap;
          let allowed = Circuit_breaker.allow b ~round:!round in
          Circuit_breaker.record_success b ~round:!round;
          allowed
          && Circuit_breaker.state b = Closed
          && Circuit_breaker.trips b = 0)
        gaps)

(* --- Sensor_net under a fault plan ----------------------------------- *)

let make_net ?obs ~n faults =
  Sensor_net.create ?obs ~faults (Rng.create 5) ~n
    ~value_range:(Interval.make 0.0 100.0)
    ~tolerance_range:(Interval.make 1.0 2.0) ~drift_stddev:0.5

(* An outage window that spans several retry rounds: the silenced
   sensor rides along until the window ends, its siblings resolve in
   round 0, and nothing trips because every early round still resolves
   something or recovers before the threshold. *)
let test_sensor_outage_overlaps_retry_rounds () =
  let obs = Obs.create () in
  let net =
    make_net ~obs ~n:4
      (Fault_plan.make
         ~outages:[ { Fault_plan.node = 0; from_round = 0; rounds = 2 } ]
         ~max_retries:5 ())
  in
  let outcomes = Sensor_net.probe_batch_outcomes net (Sensor_net.snapshot net) in
  Array.iteri
    (fun i outcome ->
      match outcome with
      | Probe_driver.Resolved r ->
          checkb "resolved flag set" true r.Sensor_net.resolved;
          checki "order preserved" i r.Sensor_net.sensor_id
      | Probe_driver.Shrunk _ | Probe_driver.Failed _ ->
          Alcotest.fail "outage outlived by the budget")
    outcomes;
  checki "window + recovery = 3 rounds" 3 (Sensor_net.rounds net);
  checki "one wakeup per round" 3 (Sensor_net.probe_wakeups net);
  (* 4 messages in round 0, then the silenced sensor alone twice. *)
  checki "messages follow the pending set" 6 (Sensor_net.probe_messages net);
  checki "two retries recorded" 2
    (Metrics.count_of (Obs.snapshot obs) Obs.Keys.fault_retried);
  match Sensor_net.breaker net with
  | None -> Alcotest.fail "live plan installs a breaker"
  | Some b ->
      checkb "never tripped" true (Circuit_breaker.trips b = 0);
      checkb "closed" true (Circuit_breaker.state b = Closed)

(* A net-wide permanent outage: the breaker trips after three dead
   rounds and backs off exponentially, so the six-attempt budget is
   spent at rounds 0,1,2,4,8,16 rather than hammering every round. *)
let test_sensor_breaker_backoff_under_outage () =
  let trace, events = Trace.collector () in
  let obs = Obs.create ~trace () in
  let net =
    make_net ~obs ~n:1
      (Fault_plan.make
         ~outages:[ { Fault_plan.node = 0; from_round = 0; rounds = 1000 } ]
         ~max_retries:5 ())
  in
  let outcomes = Sensor_net.probe_batch_outcomes net (Sensor_net.snapshot net) in
  (match outcomes.(0) with
  | Probe_driver.Failed { attempts } ->
      checki "budget spent exactly" 6 attempts
  | Probe_driver.Resolved _ | Probe_driver.Shrunk _ ->
      Alcotest.fail "expected a permanent failure");
  checki "attempt rounds 0,1,2,4,8,16" 6 (Sensor_net.probe_wakeups net);
  checki "refused rounds still advance the clock" 17 (Sensor_net.rounds net);
  (match Sensor_net.breaker net with
  | None -> Alcotest.fail "expected a breaker"
  | Some b ->
      checkb "left open" true (Circuit_breaker.state b = Open);
      checki "initial trip + three failed recoveries" 4
        (Circuit_breaker.trips b));
  let breaker_events =
    List.filter
      (function Trace.Breaker _ -> true | _ -> false)
      (events ())
  in
  (* closed->open at round 2, then (half-open, open) pairs at rounds
     4, 8 and 16. *)
  checki "breaker transitions traced" 7 (List.length breaker_events);
  (match breaker_events with
  | Trace.Breaker { state; round } :: _ ->
      Alcotest.(check string) "first transition opens" "open" state;
      checki "at the trip round" 2 round
  | _ -> Alcotest.fail "expected a breaker event");
  checkb "refused rounds burn no budget" true
    (Sensor_net.probe_messages net = 6)

let test_sensor_no_faults_single_round () =
  let net = make_net ~n:8 Fault_plan.none in
  checkb "null plan installs no breaker" true (Sensor_net.breaker net = None);
  let outcomes = Sensor_net.probe_batch_outcomes net (Sensor_net.snapshot net) in
  Array.iter
    (function
      | Probe_driver.Resolved _ -> ()
      | Probe_driver.Shrunk _ | Probe_driver.Failed _ ->
          Alcotest.fail "unfaulted net failed")
    outcomes;
  checki "one round" 1 (Sensor_net.rounds net);
  checki "one wakeup" 1 (Sensor_net.probe_wakeups net);
  checki "one message per sensor" 8 (Sensor_net.probe_messages net)

let suite =
  [
    ("null plan", `Quick, test_null_plan);
    ("plan validation", `Quick, test_make_validation);
    ("sites diverge", `Quick, test_sites_diverge);
    ("permanent elements", `Quick, test_permanent_element);
    ("outage windows", `Quick, test_outage_windows);
    ("latency spikes", `Quick, test_latency_spikes);
    ("injected counter", `Quick, test_injected_counter_reaches_metrics);
    ("breaker trip threshold", `Quick, test_breaker_trip_threshold);
    ("breaker backoff schedule", `Quick, test_breaker_backoff_schedule);
    ("breaker backoff cap", `Quick, test_breaker_backoff_cap);
    ("breaker success resets streak", `Quick,
     test_breaker_interleaved_success_resets);
    ("breaker validation", `Quick, test_breaker_validation);
    ("breaker state gauge", `Quick, test_breaker_state_gauge);
    ("sensor outage overlaps retries", `Quick,
     test_sensor_outage_overlaps_retry_rounds);
    ("sensor breaker backoff", `Quick,
     test_sensor_breaker_backoff_under_outage);
    ("sensor unfaulted single round", `Quick,
     test_sensor_no_faults_single_round);
    QCheck_alcotest.to_alcotest prop_injector_deterministic;
    QCheck_alcotest.to_alcotest prop_breaker_never_trips_without_failure;
  ]
