(* Tests for the observability layer: the metrics registry, trace sinks,
   span timing, and — the load-bearing invariant — exact reconciliation
   of the qaq.* counters against the run's cost meter. *)

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checkf eps = Alcotest.(check (float eps))

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_metrics_registry () =
  let m = Metrics.create () in
  let c = Metrics.counter m "test.reads" in
  checki "fresh counter at 0" 0 (Metrics.count c);
  Metrics.incr c;
  Metrics.add c 4;
  checki "incr + add" 5 (Metrics.count c);
  Alcotest.(check string) "name" "test.reads" (Metrics.counter_name c);
  (* Handles are stable: the registry returns the same cell. *)
  Metrics.incr (Metrics.counter m "test.reads");
  checki "get-or-create shares the cell" 6 (Metrics.count c);
  let g = Metrics.gauge m "test.level" in
  Metrics.set g 2.5;
  checkf 0.0 "gauge level" 2.5 (Metrics.level g);
  Alcotest.check_raises "counter/gauge clash"
    (Invalid_argument "Metrics.gauge: test.reads is registered as a counter")
    (fun () -> ignore (Metrics.gauge m "test.reads"));
  Alcotest.check_raises "gauge/counter clash"
    (Invalid_argument "Metrics.counter: test.level is registered as a gauge")
    (fun () -> ignore (Metrics.counter m "test.level"));
  Alcotest.check_raises "counters are monotonic"
    (Invalid_argument "Metrics.add: negative increment") (fun () ->
      Metrics.add c (-1))

let test_snapshot_and_diff () =
  let m = Metrics.create () in
  Metrics.add (Metrics.counter m "b.count") 3;
  Metrics.set (Metrics.gauge m "a.level") 1.5;
  let earlier = Metrics.snapshot m in
  (* Snapshots are name-sorted. *)
  Alcotest.(check (list string))
    "sorted names" [ "a.level"; "b.count" ]
    (List.map fst earlier);
  checki "count_of" 3 (Metrics.count_of earlier "b.count");
  checki "count_of absent is 0" 0 (Metrics.count_of earlier "nope");
  Metrics.add (Metrics.counter m "b.count") 4;
  Metrics.set (Metrics.gauge m "a.level") 9.0;
  Metrics.incr (Metrics.counter m "c.fresh");
  let later = Metrics.snapshot m in
  let d = Metrics.diff ~later ~earlier in
  checki "counter delta" 4 (Metrics.count_of d "b.count");
  checki "fresh counter full value" 1 (Metrics.count_of d "c.fresh");
  (match Metrics.get d "a.level" with
  | Some (Metrics.Level l) -> checkf 0.0 "gauge keeps later level" 9.0 l
  | _ -> Alcotest.fail "gauge missing from diff");
  (* A frozen snapshot does not follow the registry. *)
  checki "earlier unchanged" 3 (Metrics.count_of earlier "b.count")

let test_json_export () =
  let m = Metrics.create () in
  Metrics.add (Metrics.counter m "x.count") 7;
  Metrics.set (Metrics.gauge m "x.nan") Float.nan;
  Metrics.set (Metrics.gauge m "quote\"name") 1.0;
  let json = Metrics.to_json (Metrics.snapshot m) in
  checkb "counter exported" true
    (String.length json > 0
    && contains json "\"x.count\": 7");
  checkb "non-finite gauge is null" true
    (contains json "\"x.nan\": null");
  checkb "quotes escaped" true
    (contains json "quote\\\"name")

let test_prometheus_export () =
  let m = Metrics.create () in
  Metrics.add (Metrics.counter m "qaq.reads") 12;
  Metrics.set (Metrics.gauge m "span.plan.seconds") 0.5;
  let text = Metrics.to_prometheus (Metrics.snapshot m) in
  checkb "TYPE line, mangled name" true
    (contains text "# TYPE qaq_reads counter");
  checkb "sample line" true (contains text "qaq_reads 12");
  checkb "gauge typed" true
    (contains text "# TYPE span_plan_seconds gauge")

(* ---- histograms --------------------------------------------------- *)

let test_histogram_basics () =
  let m = Metrics.create () in
  let h = Metrics.histogram m "lat" in
  checki "fresh histogram empty" 0 (Metrics.observations h);
  Alcotest.(check string) "name" "lat" (Metrics.histogram_name h);
  List.iter (Metrics.observe h) [ 0.010; 0.020; 0.030; 0.040 ];
  checki "observations" 4 (Metrics.observations h);
  (* Handles are stable, like counters. *)
  Metrics.observe (Metrics.histogram m "lat") 0.020;
  checki "get-or-create shares the cell" 5 (Metrics.observations h);
  let d = Option.get (Metrics.dist_of (Metrics.snapshot m) "lat") in
  checki "dist count" 5 d.Metrics.d_count;
  checkf 1e-9 "dist sum" 0.12 d.Metrics.d_sum;
  checkf 0.0 "min" 0.010 d.Metrics.d_min;
  checkf 0.0 "max" 0.040 d.Metrics.d_max;
  (* The log layout guarantees <= ~19% relative error per bucket. *)
  let p50 = Metrics.quantile d 0.5 in
  checkb "p50 near 0.02" true (p50 >= 0.015 && p50 <= 0.025);
  let p100 = Metrics.quantile d 1.0 in
  checkb "quantiles stay in the observed range" true
    (p100 >= d.Metrics.d_min && p100 <= d.Metrics.d_max);
  (* Same contract as Hist1d: bad observations are call-site bugs. *)
  Alcotest.check_raises "nan rejected"
    (Invalid_argument "Metrics.observe: non-finite value") (fun () ->
      Metrics.observe h Float.nan);
  Alcotest.check_raises "infinity rejected"
    (Invalid_argument "Metrics.observe: non-finite value") (fun () ->
      Metrics.observe h Float.infinity);
  Alcotest.check_raises "negative rejected"
    (Invalid_argument "Metrics.observe: negative value") (fun () ->
      Metrics.observe h (-1.0));
  checki "rejected observations not recorded" 5 (Metrics.observations h);
  (* Kind clashes are rejected like counter/gauge clashes. *)
  Alcotest.check_raises "histogram/counter clash"
    (Invalid_argument "Metrics.counter: lat is registered as a histogram")
    (fun () -> ignore (Metrics.counter m "lat"))

let test_histogram_edge_cases () =
  let m = Metrics.create () in
  let h = Metrics.histogram m "edge" in
  let empty = Option.get (Metrics.dist_of (Metrics.snapshot m) "edge") in
  checki "empty count" 0 empty.Metrics.d_count;
  checkb "empty quantile is nan" true
    (Float.is_nan (Metrics.quantile empty 0.5));
  checkb "empty min +inf" true (empty.Metrics.d_min = Float.infinity);
  checkb "empty max -inf" true (empty.Metrics.d_max = Float.neg_infinity);
  (* A single observation comes back exactly at every quantile. *)
  Metrics.observe h 0.037;
  let one = Option.get (Metrics.dist_of (Metrics.snapshot m) "edge") in
  List.iter
    (fun q ->
      checkf 0.0
        (Printf.sprintf "single observation at q=%g" q)
        0.037 (Metrics.quantile one q))
    [ 0.0; 0.5; 0.9; 0.99; 1.0 ];
  (* Zero is a legal observation (bucket 0), not a rejection. *)
  Metrics.observe h 0.0;
  let two = Option.get (Metrics.dist_of (Metrics.snapshot m) "edge") in
  checki "zero observed" 2 two.Metrics.d_count;
  checkf 0.0 "zero is the min" 0.0 two.Metrics.d_min

let test_histogram_merge_disjoint () =
  let m = Metrics.create () in
  let lo = Metrics.histogram m "lo" and hi = Metrics.histogram m "hi" in
  List.iter (Metrics.observe lo) [ 1e-6; 2e-6; 3e-6 ];
  List.iter (Metrics.observe hi) [ 10.0; 20.0 ];
  let s = Metrics.snapshot m in
  let dlo = Option.get (Metrics.dist_of s "lo")
  and dhi = Option.get (Metrics.dist_of s "hi") in
  let u = Metrics.merge_dist dlo dhi in
  checki "merged count" 5 u.Metrics.d_count;
  checkf 1e-9 "merged sum" 30.000006 u.Metrics.d_sum;
  checkf 0.0 "merged min" 1e-6 u.Metrics.d_min;
  checkf 0.0 "merged max" 20.0 u.Metrics.d_max;
  (* The bucket ranges are disjoint: the median stays in the low mass,
     the tail quantile jumps across the gap to the high mass. *)
  checkb "p50 in the low range" true (Metrics.quantile u 0.5 < 1e-3);
  checkb "p99 in the high range" true (Metrics.quantile u 0.99 > 1.0);
  (* Merging with the empty capture is the identity on the data. *)
  let id = Metrics.merge_dist dlo Metrics.empty_dist in
  checki "merge with empty keeps count" 3 id.Metrics.d_count;
  checkf 0.0 "merge with empty keeps min" 1e-6 id.Metrics.d_min;
  checkf 0.0 "merge with empty keeps max" 3e-6 id.Metrics.d_max

let test_histogram_diff_and_json () =
  let m = Metrics.create () in
  let h = Metrics.histogram m "d.lat" in
  Metrics.observe h 1.0;
  Metrics.observe h 2.0;
  let earlier = Metrics.snapshot m in
  Metrics.observe h 4.0;
  let later = Metrics.snapshot m in
  let d =
    Option.get (Metrics.dist_of (Metrics.diff ~later ~earlier) "d.lat")
  in
  checki "diff count" 1 d.Metrics.d_count;
  checkf 1e-9 "diff sum" 4.0 d.Metrics.d_sum;
  (* min/max keep the later capture's — they still bound the window. *)
  checkf 0.0 "diff max" 4.0 d.Metrics.d_max;
  let json = Metrics.to_json later in
  checkb "histogram count exported" true (contains json "\"count\": 3");
  checkb "histogram quantiles exported" true (contains json "\"p50\":");
  (* An empty histogram exports null extrema and quantiles, count 0. *)
  let m2 = Metrics.create () in
  ignore (Metrics.histogram m2 "none");
  let j2 = Metrics.to_json (Metrics.snapshot m2) in
  checkb "empty count 0" true (contains j2 "\"count\": 0");
  checkb "empty min null" true (contains j2 "\"min\": null");
  checkb "empty quantile null" true (contains j2 "\"p50\": null")

let test_prometheus_histogram () =
  let m = Metrics.create () in
  let h = Metrics.histogram m "probe.flush_seconds" in
  List.iter (Metrics.observe h) [ 0.001; 0.002; 0.004; 5.0 ];
  let text = Metrics.to_prometheus (Metrics.snapshot m) in
  checkb "TYPE histogram, mangled name" true
    (contains text "# TYPE probe_flush_seconds histogram");
  checkb "bucket series present" true
    (contains text "probe_flush_seconds_bucket{le=");
  checkb "+Inf closes the cumulative series with the total" true
    (contains text "probe_flush_seconds_bucket{le=\"+Inf\"} 4");
  checkb "sum series" true (contains text "probe_flush_seconds_sum ");
  checkb "count series" true (contains text "probe_flush_seconds_count 4")

(* Mangling to the Prometheus charset is lossy ("a.b" and "a_b" both
   become "a_b"); ambiguous registrations must be rejected up front, not
   silently merged at scrape time. *)
let test_prometheus_name_collisions () =
  let m = Metrics.create () in
  ignore (Metrics.counter m "a.b");
  (* Same name, same kind: fine (get-or-create). *)
  ignore (Metrics.counter m "a.b");
  Alcotest.check_raises "a_b collides with a.b"
    (Invalid_argument
       "Metrics: \"a_b\" collides with \"a.b\" in Prometheus exposition \
        (both mangle to \"a_b\")")
    (fun () -> ignore (Metrics.counter m "a_b"));
  (* The histogram's derived _bucket/_sum/_count series are reserved
     too: a counter that would mangle onto one of them is rejected. *)
  ignore (Metrics.histogram m "h");
  Alcotest.check_raises "h.count collides with histogram series h_count"
    (Invalid_argument
       "Metrics: \"h.count\" collides with \"h\" in Prometheus exposition \
        (both mangle to \"h_count\")")
    (fun () -> ignore (Metrics.counter m "h.count"))

let test_trace_sinks () =
  checkb "null disabled" false (Trace.enabled Trace.null);
  (* Emitting into the null sink is a no-op, not an error. *)
  Trace.emit Trace.null (Trace.Note "dropped");
  let sink, events = Trace.collector () in
  checkb "collector enabled" true (Trace.enabled sink);
  Trace.emit sink (Trace.Read { verdict = `Maybe });
  Trace.emit sink (Trace.Batch { size = 3 });
  (match events () with
  | [ Trace.Read { verdict = `Maybe }; Trace.Batch { size = 3 } ] -> ()
  | es -> Alcotest.failf "unexpected events (%d)" (List.length es));
  let buf = Buffer.create 64 in
  let ppf = Format.formatter_of_buffer buf in
  Trace.emit (Trace.formatter ppf) (Trace.Read { verdict = `No });
  Format.pp_print_flush ppf ();
  Alcotest.(check string) "formatter line" "trace: read NO\n"
    (Buffer.contents buf)

let test_span_timing () =
  let now = ref 10.0 in
  let obs = Obs.create ~clock:(fun () -> !now) () in
  let result =
    Obs.span obs "phase" (fun () ->
        now := !now +. 2.5;
        42)
  in
  checki "span returns the body's value" 42 result;
  ignore (Obs.span obs "phase" (fun () -> now := !now +. 1.5));
  let s = Obs.snapshot obs in
  checki "calls counted" 2 (Metrics.count_of s "span.phase.calls");
  (match Metrics.get s "span.phase.seconds" with
  | Some (Metrics.Level l) -> checkf 1e-9 "seconds accumulate" 4.0 l
  | _ -> Alcotest.fail "span gauge missing");
  (* A raising body still records its time. *)
  (try
     Obs.span obs "phase" (fun () ->
         now := !now +. 1.0;
         failwith "boom")
   with Failure _ -> ());
  checki "raising call counted" 3
    (Metrics.count_of (Obs.snapshot obs) "span.phase.calls")

(* Spans and the pool's busy accounting share one wall clock
   (Unix.gettimeofday).  Under the old CPU-time clock (Sys.time) a span
   around sleeping workers read ~0 while the pool accumulated real
   seconds — the regression this pins down: the span must cover at least
   the pool's busy time spread across its lanes. *)
let test_span_wall_clock_covers_pool_busy () =
  Domain_pool.with_pool ~domains:2 (fun pool ->
      let obs = Obs.create () in
      let tasks = Array.init 8 (fun i -> i) in
      let result =
        Obs.span obs "pool-work" (fun () ->
            Domain_pool.parallel_map pool ~chunk_size:1
              (fun i ->
                Unix.sleepf 0.02;
                i)
              tasks)
      in
      Alcotest.(check (array int)) "map result intact" tasks result;
      let lanes = Domain_pool.domains pool in
      let busy =
        Array.fold_left ( +. ) 0.0 (Domain_pool.busy_seconds pool)
      in
      checkb "pool accumulated real busy time" true (busy > 0.1);
      match Metrics.get (Obs.snapshot obs) "span.pool-work.seconds" with
      | Some (Metrics.Level s) ->
          checkb
            (Printf.sprintf "span %.4fs covers busy %.4fs over %d lanes" s
               busy lanes)
            true
            (s >= busy /. float_of_int lanes *. 0.5)
      | _ -> Alcotest.fail "span gauge missing")

(* ---- reconciliation: metrics vs the cost meter ------------------- *)

let requirements = Quality.requirements ~precision:0.9 ~recall:0.6 ~laxity:50.0

let test_operator_reconciles () =
  let data =
    Synthetic.generate (Rng.create 31) (Synthetic.config ~total:2000 ())
  in
  let obs = Obs.create () in
  let meter = Cost_meter.create () in
  let report =
    Operator.run ~rng:(Rng.create 32) ~meter ~obs ~instance:Synthetic.instance
      ~probe:(Probe_driver.of_scalar ~obs ~batch_size:4 Synthetic.probe)
      ~policy:Policy.stingy ~requirements
      (Operator.source_of_array data)
  in
  checkb "did some work" true (report.Operator.counts.reads > 0);
  match Cost_meter.reconcile (Obs.snapshot obs) (Cost_meter.counts meter) with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

(* The golden invariant: for every engine configuration, the qaq.*
   counters written at the instrumentation sites equal the cost meter's
   counts written at the charge sites — planning sample included. *)
let test_engine_reconciles () =
  List.iter
    (fun (batch, adaptive) ->
      let data =
        Synthetic.generate (Rng.create 41) (Synthetic.config ~total:3000 ())
      in
      let obs = Obs.create () in
      let result =
        Engine.execute ~rng:(Rng.create 42) ~adaptive ~max_laxity:100.0 ~obs
          ~instance:Synthetic.instance
          ~probe:
            (Probe_driver.of_scalar ~obs ~batch_size:batch Synthetic.probe)
          ~requirements data
      in
      let snapshot = Obs.snapshot obs in
      (match Cost_meter.reconcile snapshot result.Engine.counts with
      | Ok () -> ()
      | Error msg ->
          Alcotest.failf "B=%d adaptive=%b: %s" batch adaptive msg);
      (* The driver's own counters agree with the operator's view. *)
      checki
        (Printf.sprintf "driver probes (B=%d adaptive=%b)" batch adaptive)
        result.Engine.counts.probes
        (Metrics.count_of snapshot "probe_driver.probes");
      checki
        (Printf.sprintf "driver batches (B=%d adaptive=%b)" batch adaptive)
        result.Engine.counts.batches
        (Metrics.count_of snapshot "probe_driver.batches");
      (* Reconcile is not vacuous: perturb one count and it must fail. *)
      let skewed = { result.Engine.counts with reads = result.Engine.counts.reads + 1 } in
      match Cost_meter.reconcile snapshot skewed with
      | Ok () -> Alcotest.fail "reconcile accepted skewed counts"
      | Error _ -> ())
    [ (1, false); (4, false); (1, true); (4, true) ]

(* Observability must be pure observation: attaching it changes no
   decision, no answer, no charge. *)
let test_obs_does_not_perturb () =
  let data =
    Synthetic.generate (Rng.create 51) (Synthetic.config ~total:2000 ())
  in
  let run obs_opt =
    let sink, _ = Trace.collector () in
    ignore sink;
    Engine.execute ~rng:(Rng.create 52) ~max_laxity:100.0 ?obs:obs_opt
      ~instance:Synthetic.instance
      ~probe:(Probe_driver.of_scalar ~batch_size:4 Synthetic.probe)
      ~requirements data
  in
  let plain = run None in
  let sink, _events = Trace.collector () in
  let observed = run (Some (Obs.create ~trace:sink ())) in
  checkb "same counts" true (plain.Engine.counts = observed.Engine.counts);
  checkb "same answer size" true
    (plain.Engine.report.answer_size = observed.Engine.report.answer_size);
  checkf 0.0 "same cost" plain.Engine.normalized_cost
    observed.Engine.normalized_cost

let suite =
  [
    ("metrics registry", `Quick, test_metrics_registry);
    ("snapshot and diff", `Quick, test_snapshot_and_diff);
    ("json export", `Quick, test_json_export);
    ("prometheus export", `Quick, test_prometheus_export);
    ("histogram basics", `Quick, test_histogram_basics);
    ("histogram edge cases", `Quick, test_histogram_edge_cases);
    ("histogram merge of disjoint ranges", `Quick, test_histogram_merge_disjoint);
    ("histogram diff and json", `Quick, test_histogram_diff_and_json);
    ("prometheus histogram exposition", `Quick, test_prometheus_histogram);
    ("prometheus name collisions rejected", `Quick,
     test_prometheus_name_collisions);
    ("trace sinks", `Quick, test_trace_sinks);
    ("span timing", `Quick, test_span_timing);
    ("span wall clock covers pool busy time", `Quick,
     test_span_wall_clock_covers_pool_busy);
    ("operator reconciles with meter", `Quick, test_operator_reconciles);
    ("engine reconciles across configs", `Quick, test_engine_reconciles);
    ("observability does not perturb the run", `Quick, test_obs_does_not_perturb);
  ]
