(* Tests for the observability layer: the metrics registry, trace sinks,
   span timing, and — the load-bearing invariant — exact reconciliation
   of the qaq.* counters against the run's cost meter. *)

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checkf eps = Alcotest.(check (float eps))

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_metrics_registry () =
  let m = Metrics.create () in
  let c = Metrics.counter m "test.reads" in
  checki "fresh counter at 0" 0 (Metrics.count c);
  Metrics.incr c;
  Metrics.add c 4;
  checki "incr + add" 5 (Metrics.count c);
  Alcotest.(check string) "name" "test.reads" (Metrics.counter_name c);
  (* Handles are stable: the registry returns the same cell. *)
  Metrics.incr (Metrics.counter m "test.reads");
  checki "get-or-create shares the cell" 6 (Metrics.count c);
  let g = Metrics.gauge m "test.level" in
  Metrics.set g 2.5;
  checkf 0.0 "gauge level" 2.5 (Metrics.level g);
  Alcotest.check_raises "counter/gauge clash"
    (Invalid_argument "Metrics.gauge: test.reads is registered as a counter")
    (fun () -> ignore (Metrics.gauge m "test.reads"));
  Alcotest.check_raises "gauge/counter clash"
    (Invalid_argument "Metrics.counter: test.level is registered as a gauge")
    (fun () -> ignore (Metrics.counter m "test.level"));
  Alcotest.check_raises "counters are monotonic"
    (Invalid_argument "Metrics.add: negative increment") (fun () ->
      Metrics.add c (-1))

let test_snapshot_and_diff () =
  let m = Metrics.create () in
  Metrics.add (Metrics.counter m "b.count") 3;
  Metrics.set (Metrics.gauge m "a.level") 1.5;
  let earlier = Metrics.snapshot m in
  (* Snapshots are name-sorted. *)
  Alcotest.(check (list string))
    "sorted names" [ "a.level"; "b.count" ]
    (List.map fst earlier);
  checki "count_of" 3 (Metrics.count_of earlier "b.count");
  checki "count_of absent is 0" 0 (Metrics.count_of earlier "nope");
  Metrics.add (Metrics.counter m "b.count") 4;
  Metrics.set (Metrics.gauge m "a.level") 9.0;
  Metrics.incr (Metrics.counter m "c.fresh");
  let later = Metrics.snapshot m in
  let d = Metrics.diff ~later ~earlier in
  checki "counter delta" 4 (Metrics.count_of d "b.count");
  checki "fresh counter full value" 1 (Metrics.count_of d "c.fresh");
  (match Metrics.get d "a.level" with
  | Some (Metrics.Level l) -> checkf 0.0 "gauge keeps later level" 9.0 l
  | _ -> Alcotest.fail "gauge missing from diff");
  (* A frozen snapshot does not follow the registry. *)
  checki "earlier unchanged" 3 (Metrics.count_of earlier "b.count")

let test_json_export () =
  let m = Metrics.create () in
  Metrics.add (Metrics.counter m "x.count") 7;
  Metrics.set (Metrics.gauge m "x.nan") Float.nan;
  Metrics.set (Metrics.gauge m "quote\"name") 1.0;
  let json = Metrics.to_json (Metrics.snapshot m) in
  checkb "counter exported" true
    (String.length json > 0
    && contains json "\"x.count\": 7");
  checkb "non-finite gauge is null" true
    (contains json "\"x.nan\": null");
  checkb "quotes escaped" true
    (contains json "quote\\\"name")

let test_prometheus_export () =
  let m = Metrics.create () in
  Metrics.add (Metrics.counter m "qaq.reads") 12;
  Metrics.set (Metrics.gauge m "span.plan.seconds") 0.5;
  let text = Metrics.to_prometheus (Metrics.snapshot m) in
  checkb "TYPE line, mangled name" true
    (contains text "# TYPE qaq_reads counter");
  checkb "sample line" true (contains text "qaq_reads 12");
  checkb "gauge typed" true
    (contains text "# TYPE span_plan_seconds gauge")

let test_trace_sinks () =
  checkb "null disabled" false (Trace.enabled Trace.null);
  (* Emitting into the null sink is a no-op, not an error. *)
  Trace.emit Trace.null (Trace.Note "dropped");
  let sink, events = Trace.collector () in
  checkb "collector enabled" true (Trace.enabled sink);
  Trace.emit sink (Trace.Read { verdict = `Maybe });
  Trace.emit sink (Trace.Batch { size = 3 });
  (match events () with
  | [ Trace.Read { verdict = `Maybe }; Trace.Batch { size = 3 } ] -> ()
  | es -> Alcotest.failf "unexpected events (%d)" (List.length es));
  let buf = Buffer.create 64 in
  let ppf = Format.formatter_of_buffer buf in
  Trace.emit (Trace.formatter ppf) (Trace.Read { verdict = `No });
  Format.pp_print_flush ppf ();
  Alcotest.(check string) "formatter line" "trace: read NO\n"
    (Buffer.contents buf)

let test_span_timing () =
  let now = ref 10.0 in
  let obs = Obs.create ~clock:(fun () -> !now) () in
  let result =
    Obs.span obs "phase" (fun () ->
        now := !now +. 2.5;
        42)
  in
  checki "span returns the body's value" 42 result;
  ignore (Obs.span obs "phase" (fun () -> now := !now +. 1.5));
  let s = Obs.snapshot obs in
  checki "calls counted" 2 (Metrics.count_of s "span.phase.calls");
  (match Metrics.get s "span.phase.seconds" with
  | Some (Metrics.Level l) -> checkf 1e-9 "seconds accumulate" 4.0 l
  | _ -> Alcotest.fail "span gauge missing");
  (* A raising body still records its time. *)
  (try
     Obs.span obs "phase" (fun () ->
         now := !now +. 1.0;
         failwith "boom")
   with Failure _ -> ());
  checki "raising call counted" 3
    (Metrics.count_of (Obs.snapshot obs) "span.phase.calls")

(* ---- reconciliation: metrics vs the cost meter ------------------- *)

let requirements = Quality.requirements ~precision:0.9 ~recall:0.6 ~laxity:50.0

let test_operator_reconciles () =
  let data =
    Synthetic.generate (Rng.create 31) (Synthetic.config ~total:2000 ())
  in
  let obs = Obs.create () in
  let meter = Cost_meter.create () in
  let report =
    Operator.run ~rng:(Rng.create 32) ~meter ~obs ~instance:Synthetic.instance
      ~probe:(Probe_driver.of_scalar ~obs ~batch_size:4 Synthetic.probe)
      ~policy:Policy.stingy ~requirements
      (Operator.source_of_array data)
  in
  checkb "did some work" true (report.Operator.counts.reads > 0);
  match Cost_meter.reconcile (Obs.snapshot obs) (Cost_meter.counts meter) with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

(* The golden invariant: for every engine configuration, the qaq.*
   counters written at the instrumentation sites equal the cost meter's
   counts written at the charge sites — planning sample included. *)
let test_engine_reconciles () =
  List.iter
    (fun (batch, adaptive) ->
      let data =
        Synthetic.generate (Rng.create 41) (Synthetic.config ~total:3000 ())
      in
      let obs = Obs.create () in
      let result =
        Engine.execute ~rng:(Rng.create 42) ~adaptive ~max_laxity:100.0 ~obs
          ~instance:Synthetic.instance
          ~probe:
            (Probe_driver.of_scalar ~obs ~batch_size:batch Synthetic.probe)
          ~requirements data
      in
      let snapshot = Obs.snapshot obs in
      (match Cost_meter.reconcile snapshot result.Engine.counts with
      | Ok () -> ()
      | Error msg ->
          Alcotest.failf "B=%d adaptive=%b: %s" batch adaptive msg);
      (* The driver's own counters agree with the operator's view. *)
      checki
        (Printf.sprintf "driver probes (B=%d adaptive=%b)" batch adaptive)
        result.Engine.counts.probes
        (Metrics.count_of snapshot "probe_driver.probes");
      checki
        (Printf.sprintf "driver batches (B=%d adaptive=%b)" batch adaptive)
        result.Engine.counts.batches
        (Metrics.count_of snapshot "probe_driver.batches");
      (* Reconcile is not vacuous: perturb one count and it must fail. *)
      let skewed = { result.Engine.counts with reads = result.Engine.counts.reads + 1 } in
      match Cost_meter.reconcile snapshot skewed with
      | Ok () -> Alcotest.fail "reconcile accepted skewed counts"
      | Error _ -> ())
    [ (1, false); (4, false); (1, true); (4, true) ]

(* Observability must be pure observation: attaching it changes no
   decision, no answer, no charge. *)
let test_obs_does_not_perturb () =
  let data =
    Synthetic.generate (Rng.create 51) (Synthetic.config ~total:2000 ())
  in
  let run obs_opt =
    let sink, _ = Trace.collector () in
    ignore sink;
    Engine.execute ~rng:(Rng.create 52) ~max_laxity:100.0 ?obs:obs_opt
      ~instance:Synthetic.instance
      ~probe:(Probe_driver.of_scalar ~batch_size:4 Synthetic.probe)
      ~requirements data
  in
  let plain = run None in
  let sink, _events = Trace.collector () in
  let observed = run (Some (Obs.create ~trace:sink ())) in
  checkb "same counts" true (plain.Engine.counts = observed.Engine.counts);
  checkb "same answer size" true
    (plain.Engine.report.answer_size = observed.Engine.report.answer_size);
  checkf 0.0 "same cost" plain.Engine.normalized_cost
    observed.Engine.normalized_cost

let suite =
  [
    ("metrics registry", `Quick, test_metrics_registry);
    ("snapshot and diff", `Quick, test_snapshot_and_diff);
    ("json export", `Quick, test_json_export);
    ("prometheus export", `Quick, test_prometheus_export);
    ("trace sinks", `Quick, test_trace_sinks);
    ("span timing", `Quick, test_span_timing);
    ("operator reconciles with meter", `Quick, test_operator_reconciles);
    ("engine reconciles across configs", `Quick, test_engine_reconciles);
    ("observability does not perturb the run", `Quick, test_obs_does_not_perturb);
  ]
