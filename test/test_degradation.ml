(* Graceful degradation under permanent probe failure: partial-batch
   settlement, honest post-degradation accounting against a
   ground-truth oracle, meter/metrics reconciliation under faults,
   zero-rate bit-for-bit identity, and deterministic replay. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkf = Alcotest.(check (float 1e-9))

let requirements =
  Quality.requirements ~precision:0.8 ~recall:0.5 ~laxity:50.0

(* Deterministic projection of a metric snapshot: counter values and
   histogram observation counts — everything a replay must reproduce
   exactly — dropping wall-clock levels (span seconds, gauges) and,
   for cross-domain comparison, the qaq.parallel.* bookkeeping that
   legitimately differs between a 1-domain and a 2-domain run. *)
let projection ?(cross_domain = false) snap =
  let starts_with p s =
    String.length s >= String.length p && String.sub s 0 (String.length p) = p
  in
  List.filter_map
    (fun (name, v) ->
      if cross_domain && starts_with "qaq.parallel." name then None
      else
        match v with
        | Metrics.Count c -> Some (name, c)
        | Metrics.Dist d -> Some (name, d.Metrics.d_count)
        | Metrics.Level _ -> None)
    snap

let answer_ids result =
  List.map
    (fun (e : Synthetic.obj Operator.emitted) ->
      (e.Operator.obj.Synthetic.id, e.Operator.precise))
    result.Engine.report.Operator.answer

(* --- satellite: partial-batch settlement ----------------------------- *)

(* Regression for the partial-batch result leak: a failure mid-batch
   used to abort the whole flush, dropping siblings that had already
   resolved.  The outcome API settles every element: failed elements
   surface as [Failed], resolved siblings are kept and counted. *)
let test_sibling_survival () =
  let data =
    Synthetic.generate (Rng.create 41)
      (Synthetic.config ~total:32 ~f_y:0.0 ~f_m:1.0 ())
  in
  let source =
    Probe_source.create ~failure_rate:0.5 ~max_retries:0 ~rng:(Rng.create 42)
      Synthetic.probe
  in
  let outcomes = Probe_source.probe_batch_outcomes source data in
  checki "one outcome per element" (Array.length data) (Array.length outcomes);
  let resolved = ref 0 and failed = ref 0 in
  Array.iteri
    (fun i -> function
      | Probe_driver.Resolved o ->
          incr resolved;
          checki "order preserved" data.(i).Synthetic.id o.Synthetic.id;
          checkb "probe delivered the precise version" true o.Synthetic.resolved
      | Probe_driver.Failed { attempts } ->
          incr failed;
          checki "budget of one attempt" 1 attempts
      | Probe_driver.Shrunk _ -> Alcotest.fail "oracle source never shrinks")
    outcomes;
  checkb "some elements failed" true (!failed > 0);
  checkb "their siblings still resolved" true (!resolved > 0);
  let s = Probe_source.stats source in
  checki "stats count the survivors" !resolved s.probes;
  checki "every element attempted" (Array.length data) s.attempts;
  (* The legacy all-or-nothing path settles the whole batch (siblings
     resolve and are counted) before it raises. *)
  Probe_source.reset_stats source;
  (match Probe_source.probe_batch source data with
  | _ -> Alcotest.fail "expected Probe_failed"
  | exception Probe_source.Probe_failed -> ());
  let s = Probe_source.stats source in
  checkb "legacy path settled siblings before raising" true (s.probes > 0)

(* --- acceptance: 20% permanent failure ------------------------------- *)

let faulted_engine_run ?(domains = 1) ?obs ?profile ~total ~fault_seed
    ~transient_rate ~permanent_rate ~engine_seed () =
  let data =
    Synthetic.generate (Rng.create 51) (Synthetic.config ~total ())
  in
  let faults =
    Fault_plan.make ~seed:fault_seed ~transient_rate ~permanent_rate
      ~max_retries:2 ()
  in
  let source = Probe_source.create ?obs ~max_retries:2 ~faults Synthetic.probe in
  let result =
    Engine.execute ~rng:(Rng.create engine_seed) ~max_laxity:100.0 ~domains
      ?obs ?profile ~instance:Synthetic.instance
      ~probe:(Probe_source.driver ?obs ~batch_size:16 source)
      ~requirements data
  in
  (result, data)

(* The oracle recount an honest degradation summary must agree with. *)
let recount (result, data) =
  let in_exact =
    List.fold_left
      (fun acc (e : _ Operator.emitted) ->
        if Synthetic.in_exact e.Operator.obj then acc + 1 else acc)
      0 result.Engine.report.Operator.answer
  in
  let exact = Synthetic.exact_size data in
  let n = result.Engine.report.Operator.answer_size in
  let p = if n = 0 then 1.0 else float_of_int in_exact /. float_of_int n in
  let r = if exact = 0 then 1.0 else float_of_int in_exact /. float_of_int exact in
  (in_exact, exact, p, r)

let test_engine_survives_20pct_permanent () =
  let obs = Obs.create () in
  let ((result, _) as run) =
    faulted_engine_run ~obs
      ~profile:(Engine.profiling ~oracle:Synthetic.in_exact ())
      ~total:2000 ~fault_seed:7 ~transient_rate:0.0 ~permanent_rate:0.2
      ~engine_seed:52 ()
  in
  let d = result.Engine.degradation in
  checkb "run completed with failures" true (d.Engine.failed_probes > 0);
  checkb "flagged degraded" true (Engine.degraded result);
  checkb "fallbacks cover every failure" true
    (d.Engine.failed_probes
    = d.Engine.degraded_forwards + d.Engine.degraded_ignores);
  checkf "wasted cost is the failed attempts, priced"
    (float_of_int d.Engine.failed_attempts *. Cost_model.paper.Cost_model.c_p)
    d.Engine.wasted_cost;
  checkb "before-snapshot captured" true (d.Engine.guarantees_before <> None);
  let profile =
    match result.Engine.profile with
    | Some p -> p
    | None -> Alcotest.fail "expected a profile"
  in
  checki "audit flags the degradation" d.Engine.failed_probes
    profile.Profile.audit.Profile.degraded_probes;
  checkb "meter reconciles under faults" true
    (profile.Profile.reconcile_error = None);
  let in_exact, exact, p, r = recount run in
  match profile.Profile.audit.Profile.achieved with
  | None -> Alcotest.fail "expected an oracle audit"
  | Some a ->
      checki "overlap recount" in_exact a.Profile.answer_in_exact;
      checki "exact-size recount" exact a.Profile.exact_size;
      checkf "achieved precision honest" p a.Profile.achieved_precision;
      checkf "achieved recall honest" r a.Profile.achieved_recall;
      checkb "guaranteed precision is a sound lower bound" true
        (d.Engine.guarantees_after.Quality.precision
        <= a.Profile.achieved_precision +. 1e-9);
      checkb "guaranteed recall is a sound lower bound" true
        (d.Engine.guarantees_after.Quality.recall
        <= a.Profile.achieved_recall +. 1e-9)

(* Regression: [wasted_cost] used to price failed attempts at the bare
   [c_p], silently dropping the amortized batch setup share whenever
   [c_b > 0] — the report then under-stated the backend work lost to
   failures relative to how the solver and meter price probes. *)
let test_wasted_cost_amortizes_batch_setup () =
  let cost = { Cost_model.paper with Cost_model.c_b = 64.0 } in
  let data =
    Synthetic.generate (Rng.create 51) (Synthetic.config ~total:1000 ())
  in
  let faults =
    Fault_plan.make ~seed:7 ~permanent_rate:0.2 ~max_retries:2 ()
  in
  let source = Probe_source.create ~max_retries:2 ~faults Synthetic.probe in
  let result =
    Engine.execute ~rng:(Rng.create 52) ~max_laxity:100.0 ~cost ~batch:16
      ~instance:Synthetic.instance
      ~probe:(Probe_source.driver ~batch_size:16 source)
      ~requirements data
  in
  let d = result.Engine.degradation in
  checkb "failures happened" true (d.Engine.failed_attempts > 0);
  checkf "wasted cost priced at the amortized c_p + c_b/B"
    (float_of_int d.Engine.failed_attempts
    *. (Cost_model.amortize ~batch:16 cost).Cost_model.c_p)
    d.Engine.wasted_cost;
  checkb "the setup share is actually in there" true
    (d.Engine.wasted_cost
    > float_of_int d.Engine.failed_attempts *. cost.Cost_model.c_p +. 1e-9)

(* --- qcheck invariants ----------------------------------------------- *)

(* (a) Whatever the failure mix, the reported achieved precision and
   recall are exactly the oracle recount, and the post-degradation
   guarantees never overstate them. *)
let prop_degraded_audit_honest =
  QCheck2.Test.make ~name:"degraded audit matches the oracle recount" ~count:8
    QCheck2.Gen.(pair (int_range 1 10_000) (int_range 0 25))
    (fun (fault_seed, pct) ->
      let ((result, _) as run) =
        faulted_engine_run
          ~profile:(Engine.profiling ~oracle:Synthetic.in_exact ())
          ~total:600 ~fault_seed
          ~transient_rate:(float_of_int pct /. 200.0)
          ~permanent_rate:(float_of_int pct /. 100.0)
          ~engine_seed:(fault_seed + 1) ()
      in
      let profile = Option.get result.Engine.profile in
      let in_exact, exact, p, r = recount run in
      match profile.Profile.audit.Profile.achieved with
      | None -> false
      | Some a ->
          a.Profile.answer_in_exact = in_exact
          && a.Profile.exact_size = exact
          && Float.abs (a.Profile.achieved_precision -. p) < 1e-9
          && Float.abs (a.Profile.achieved_recall -. r) < 1e-9
          && result.Engine.degradation.Engine.guarantees_after.Quality.precision
             <= a.Profile.achieved_precision +. 1e-9
          && result.Engine.degradation.Engine.guarantees_after.Quality.recall
             <= a.Profile.achieved_recall +. 1e-9
          && profile.Profile.audit.Profile.degraded_probes
             = result.Engine.degradation.Engine.failed_probes)

(* (b) The cost meter and the qaq.* counters reconcile with faults on:
   failed attempts are neither metered nor counted, so injecting
   failures cannot skew the two accountings apart. *)
let prop_meter_reconciles_under_faults =
  QCheck2.Test.make ~name:"cost meter reconciles with metrics under faults"
    ~count:8
    QCheck2.Gen.(pair (int_range 1 10_000) (int_range 0 30))
    (fun (fault_seed, pct) ->
      let obs = Obs.create () in
      let result, _ =
        faulted_engine_run ~obs ~total:600 ~fault_seed
          ~transient_rate:(float_of_int pct /. 100.0)
          ~permanent_rate:(float_of_int pct /. 150.0)
          ~engine_seed:(fault_seed + 2) ()
      in
      match Cost_meter.reconcile (Obs.snapshot obs) result.Engine.counts with
      | Ok () -> true
      | Error msg -> QCheck2.Test.fail_report msg)

(* (c) A zero-rate fault plan is bit-for-bit the unfaulted run: same
   answer, same costs, same guarantees, same metrics — for the
   sequential and the parallel path alike. *)
let golden_run ~domains ~faults seed =
  let data =
    Synthetic.generate (Rng.create seed) (Synthetic.config ~total:500 ())
  in
  let obs = Obs.create () in
  let source =
    match faults with
    | None -> Probe_source.create ~obs Synthetic.probe
    | Some f -> Probe_source.create ~obs ~faults:f Synthetic.probe
  in
  let result =
    Engine.execute ~rng:(Rng.create (seed + 1)) ~max_laxity:100.0 ~domains ~obs
      ~instance:Synthetic.instance
      ~probe:(Probe_source.driver ~obs ~batch_size:8 source)
      ~requirements data
  in
  ( answer_ids result,
    result.Engine.counts,
    result.Engine.report.Operator.guarantees,
    result.Engine.normalized_cost,
    result.Engine.degradation,
    projection (Obs.snapshot obs) )

let prop_zero_rate_plan_is_identity =
  QCheck2.Test.make ~name:"zero-rate plan is bit-for-bit the unfaulted run"
    ~count:4
    QCheck2.Gen.(int_range 1 10_000)
    (fun seed ->
      List.for_all
        (fun domains ->
          golden_run ~domains ~faults:None seed
          = golden_run ~domains
              ~faults:(Some (Fault_plan.make ~seed:(seed + 99) ()))
              seed)
        [ 1; 2 ])

(* --- tiered cascades: cost dominance, per-tier reconcile ------------- *)

let cascade_specs ~power =
  [|
    {
      Probe_tier.name = "proxy";
      kind = Probe_tier.Shrink { power };
      c_p = 0.05;
      c_b = 0.5;
      batch = 32;
    };
    {
      Probe_tier.name = "oracle";
      kind = Probe_tier.Resolve;
      c_p = 1.0;
      c_b = 5.0;
      batch = 8;
    };
  |]

let interval_requirements =
  Quality.requirements ~precision:0.85 ~recall:0.55 ~laxity:20.0

(* One interval-data run, oracle-only or through a cascade, under Fixed
   planning so both runs make identical probe decisions and the only
   difference is what each probe costs. *)
let interval_run ?cascade_power ?faults ~seed () =
  let pred = Predicate.ge 60.0 in
  let data =
    Interval_data.uniform_intervals (Rng.create seed) ~n:500
      ~value_range:(Interval.make 0.0 100.0) ~max_width:30.0
  in
  let obs = Obs.create () in
  (* Reads priced near zero: the dominance property is about probe
     economics, and the two runs' early-stop points may differ by a few
     reads once shrunk-definite objects shift the counter trajectory.
     Region-policy decisions never read the cost model, so this changes
     no decision. *)
  let cost = Cost_model.make ~c_r:0.01 ~c_p:1.0 ~c_b:5.0 ~c_wi:0.1 ~c_wp:0.1 () in
  let result =
    match cascade_power with
    | None ->
        let source =
          match faults with
          | None -> Probe_source.create ~obs Interval_data.probe
          | Some f ->
              Probe_source.create ~obs ~max_retries:2 ~faults:f
                Interval_data.probe
        in
        Engine.execute ~rng:(Rng.create (seed + 1)) ~max_laxity:30.0
          ~planning:(Engine.Fixed Policy.greedy_params) ~cost ~batch:8 ~obs
          ~profile:(Engine.profiling ~oracle:(Interval_data.in_exact pred) ())
          ~instance:(Interval_data.instance pred)
          ~probe:(Probe_source.driver ~obs ~batch_size:8 source)
          ~requirements:interval_requirements data
    | Some power ->
        let cascade, _sources =
          Tiered.of_functions ~obs ?faults ~max_retries:2
            ~specs:(cascade_specs ~power) ~narrow:Interval_data.shrink
            ~resolve:Interval_data.probe ()
        in
        Engine.execute ~rng:(Rng.create (seed + 1)) ~max_laxity:30.0
          ~planning:(Engine.Fixed Policy.greedy_params) ~cost ~batch:8 ~obs
          ~profile:(Engine.profiling ~oracle:(Interval_data.in_exact pred) ())
          ~instance:(Interval_data.instance pred)
          ~cascade ~requirements:interval_requirements data
  in
  (result, obs)

(* (d) Cost dominance: with an effective proxy in front of the oracle,
   the same Fixed plan and the same seed, the metered total of the
   tiered run never exceeds the oracle-only run's — and both answers
   satisfy the same requirements. *)
let prop_tiered_cost_dominates =
  QCheck2.Test.make
    ~name:"tiered metered cost <= oracle-only on the same seed" ~count:8
    QCheck2.Gen.(int_range 1 10_000)
    (fun seed ->
      let oracle_only, _ = interval_run ~seed () in
      let tiered, _ = interval_run ~cascade_power:0.9 ~seed () in
      tiered.Engine.normalized_cost
      <= oracle_only.Engine.normalized_cost +. 1e-9
      && Quality.meets oracle_only.Engine.report.Operator.guarantees
           interval_requirements
      && Quality.meets tiered.Engine.report.Operator.guarantees
           interval_requirements
      && (Option.get tiered.Engine.profile).Profile.reconcile_error = None)

(* (e) The per-tier meter and the qaq.probe.tier.* counters reconcile
   whatever the fault mix — failed attempts are neither metered nor
   counted at any tier, so injection cannot skew the accountings
   apart.  The engine's profile audit runs reconcile_tiers when a
   cascade is present, so one flag covers both layers. *)
let prop_tier_meter_reconciles_under_faults =
  QCheck2.Test.make
    ~name:"per-tier meter reconciles with metrics under faults" ~count:8
    QCheck2.Gen.(pair (int_range 1 10_000) (int_range 0 30))
    (fun (fault_seed, pct) ->
      let faults =
        Fault_plan.make ~seed:fault_seed
          ~transient_rate:(float_of_int pct /. 100.0)
          ~permanent_rate:(float_of_int pct /. 150.0)
          ~max_retries:2 ()
      in
      let result, _ =
        interval_run ~cascade_power:0.8 ~faults ~seed:(fault_seed + 3) ()
      in
      match (Option.get result.Engine.profile).Profile.reconcile_error with
      | None -> true
      | Some msg -> QCheck2.Test.fail_report msg)

(* --- deterministic replay -------------------------------------------- *)

let replay_run ~domains () =
  let trace, events = Trace.collector () in
  let obs = Obs.create ~trace () in
  let data =
    Synthetic.generate (Rng.create 71) (Synthetic.config ~total:1200 ())
  in
  let faults =
    Fault_plan.make ~seed:303 ~transient_rate:0.1 ~permanent_rate:0.08
      ~max_retries:2 ()
  in
  let source = Probe_source.create ~obs ~max_retries:2 ~faults Synthetic.probe in
  let result =
    Engine.execute ~rng:(Rng.create 72) ~max_laxity:100.0 ~domains ~obs
      ~instance:Synthetic.instance
      ~probe:(Probe_source.driver ~obs ~batch_size:16 source)
      ~requirements data
  in
  let non_phase =
    List.filter (function Trace.Phase _ -> false | _ -> true) (events ())
  in
  let count p = List.length (List.filter p non_phase) in
  ( result.Engine.degradation,
    answer_ids result,
    projection ~cross_domain:true (Obs.snapshot obs),
    List.length non_phase,
    count (function Trace.Probe_failed _ -> true | _ -> false),
    count (function Trace.Degraded _ -> true | _ -> false) )

let test_deterministic_replay () =
  let (d1, ids1, proj1, events1, failed1, degraded1) as run1 =
    replay_run ~domains:1 ()
  in
  checkb "the plan bites" true (d1.Engine.failed_probes > 0);
  checki "one Probe_failed event per failure" d1.Engine.failed_probes failed1;
  checki "one Degraded event per failure" d1.Engine.failed_probes degraded1;
  checkb "same seed replays identically" true (run1 = replay_run ~domains:1 ());
  let d2, ids2, proj2, events2, failed2, degraded2 = replay_run ~domains:2 () in
  checkb "degradation summary identical across domains" true (d1 = d2);
  checkb "answer identical across domains" true (ids1 = ids2);
  checkb "metric projection identical across domains" true (proj1 = proj2);
  checki "trace event count identical across domains" events1 events2;
  checki "failure events identical across domains" failed1 failed2;
  checki "degraded events identical across domains" degraded1 degraded2

let suite =
  [
    ("failed element spares its siblings", `Quick, test_sibling_survival);
    ("survives 20% permanent failure", `Quick,
     test_engine_survives_20pct_permanent);
    ("wasted cost amortizes batch setup", `Quick,
     test_wasted_cost_amortizes_batch_setup);
    ("deterministic replay", `Slow, test_deterministic_replay);
    QCheck_alcotest.to_alcotest prop_degraded_audit_honest;
    QCheck_alcotest.to_alcotest prop_meter_reconciles_under_faults;
    QCheck_alcotest.to_alcotest prop_zero_rate_plan_is_identity;
    QCheck_alcotest.to_alcotest prop_tiered_cost_dominates;
    QCheck_alcotest.to_alcotest prop_tier_meter_reconciles_under_faults;
  ]
