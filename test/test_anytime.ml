(* The anytime contract of time-budgeted execution: quality monotone in
   the budget, spend never past the allotment (beyond the pilot sample),
   and [budget = infinity] bit-for-bit the unbudgeted run. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkf = Alcotest.(check (float 1e-9))

let requirements = Quality.requirements ~precision:0.9 ~recall:0.6 ~laxity:50.0
let total = 3000
let data = Synthetic.generate (Rng.create 101) (Synthetic.config ~total ())

let run ?budget ?deadline ?(domains = 1) () =
  Engine.execute ~rng:(Rng.create 102) ~max_laxity:100.0 ~domains ?budget
    ?deadline
    ~profile:(Engine.profiling ~oracle:Synthetic.in_exact ())
    ~instance:Synthetic.instance
    ~probe:(Probe_driver.scalar Synthetic.probe)
    ~requirements data

let achieved result =
  match (Option.get result.Engine.profile).Profile.audit.Profile.achieved with
  | Some a -> a
  | None -> Alcotest.fail "expected an oracle audit"

let summary result =
  match result.Engine.budget with
  | Some s -> s
  | None -> Alcotest.fail "expected a budget summary"

(* The comparable fingerprint of a run, excluding the budget summary
   (which is the one field a budgeted run is allowed to add). *)
let fingerprint result =
  ( List.map
      (fun (e : Synthetic.obj Operator.emitted) ->
        (e.Operator.obj.Synthetic.id, e.Operator.precise))
      result.Engine.report.Operator.answer,
    result.Engine.counts,
    result.Engine.report.Operator.guarantees,
    result.Engine.normalized_cost,
    result.Engine.report.Operator.stopped_early )

(* --- golden: budget = infinity --------------------------------------- *)

let test_infinite_budget_is_identity () =
  List.iter
    (fun domains ->
      let plain = run ~domains () in
      let budgeted = run ~budget:infinity ~domains () in
      checkb
        (Printf.sprintf "identical fingerprint at domains=%d" domains)
        true
        (fingerprint plain = fingerprint budgeted);
      checkb "unbudgeted run carries no summary" true
        (plain.Engine.budget = None);
      let s = summary budgeted in
      checkf "allotted is infinite" infinity s.Engine.allotted;
      checkf "spent is the run's cost"
        (plain.Engine.normalized_cost *. float_of_int total)
        s.Engine.spent;
      checkb "not limited" false s.Engine.budget_limited;
      checkb "not stopped early" false s.Engine.stopped_early;
      checki "no budget replans" 0 s.Engine.budget_replans;
      checkf "target recall is the requested recall" 0.6 s.Engine.target_recall)
    [ 1; 2 ]

(* --- budget sweep: memoized ladder ----------------------------------- *)

(* A quantized ladder of budgets, each run once.  Rung 0 is enough to
   cover the pilot sample plus a little scanning; the top rungs exceed
   the unbudgeted cost, so the sweep spans budget-starved to ample. *)
let ladder_budget k = 500.0 *. Float.of_int (1 lsl k)
let rungs = 8

let ladder =
  let cache = Hashtbl.create rungs in
  fun k ->
    match Hashtbl.find_opt cache k with
    | Some r -> r
    | None ->
        let r = run ~budget:(ladder_budget k) () in
        Hashtbl.add cache k r;
        r

let test_budget_is_respected () =
  for k = 0 to rungs - 1 do
    let result = ladder k in
    let s = summary result in
    checkf
      (Printf.sprintf "allotted recorded at rung %d" k)
      (ladder_budget k) s.Engine.allotted;
    (* Zero overshoot: every rung's allotment covers the pilot sample
       (~1% of 3000 reads), so the whole spend must fit the budget. *)
    checkb
      (Printf.sprintf "spent %.1f within budget %.1f" s.Engine.spent
         s.Engine.allotted)
      true
      (s.Engine.spent <= s.Engine.allotted +. 1e-9);
    checkf "remaining is the complement"
      (Float.max 0.0 (s.Engine.allotted -. s.Engine.spent))
      s.Engine.remaining;
    checkb "target never exceeds the requested recall" true
      (s.Engine.target_recall <= 0.6 +. 1e-9);
    checkb "stopping early implies budget-limited" true
      ((not s.Engine.stopped_early) || s.Engine.budget_limited);
    (* The spend the summary reports is the meter's, i.e. the run's
       normalized cost times |T|. *)
    checkf "summary spend matches the metered cost"
      (result.Engine.normalized_cost *. float_of_int total)
      s.Engine.spent;
    (* Precision stays a hard constraint at every budget. *)
    checkb "achieved precision holds at every budget" true
      ((achieved result).Profile.achieved_precision >= 0.9 -. 1e-9)
  done

let test_sweep_spans_the_contract () =
  (* The ladder actually exercises both regimes: the bottom rung is
     budget-limited, the top rung reaches the requested recall. *)
  let bottom = summary (ladder 0) and top = summary (ladder (rungs - 1)) in
  checkb "bottom rung budget-limited" true bottom.Engine.budget_limited;
  checkb "top rung reaches the requested target" true
    (top.Engine.target_recall >= 0.6 -. 1e-9);
  checkb "top rung not stopped early" false top.Engine.stopped_early;
  (* And an ample budget delivers the requested recall for real. *)
  checkb "top rung achieves the requested recall" true
    ((achieved (ladder (rungs - 1))).Profile.achieved_recall >= 0.6 -. 1e-9)

let prop_quality_monotone_in_budget =
  QCheck2.Test.make ~name:"achieved quality monotone in budget" ~count:24
    QCheck2.Gen.(pair (int_range 0 (rungs - 1)) (int_range 0 (rungs - 1)))
    (fun (i, j) ->
      let i, j = (Int.min i j, Int.max i j) in
      let lo = achieved (ladder i) and hi = achieved (ladder j) in
      let lo_s = summary (ladder i) and hi_s = summary (ladder j) in
      lo.Profile.achieved_recall <= hi.Profile.achieved_recall +. 1e-9
      && (ladder i).Engine.report.Operator.answer_size
         <= (ladder j).Engine.report.Operator.answer_size
      && lo_s.Engine.target_recall <= hi_s.Engine.target_recall +. 1e-9)

(* --- deadline -------------------------------------------------------- *)

let test_deadline_smoke () =
  (* A generous deadline changes nothing but the summary; a zero
     deadline stops the scan at the first opportunity. *)
  let plain = run () in
  let generous = run ~deadline:3600.0 () in
  checkb "generous deadline is the plain run" true
    (fingerprint plain = fingerprint generous);
  let s = summary generous in
  checkf "deadline-only summary has infinite allotment" infinity
    s.Engine.allotted;
  checkb "not stopped" false s.Engine.stopped_early;
  let immediate = run ~deadline:0.0 () in
  let s0 = summary immediate in
  checkb "zero deadline stops the scan" true s0.Engine.stopped_early;
  checkb "and flags the run budget-limited" true s0.Engine.budget_limited;
  checkb "answer cut short" true
    (immediate.Engine.report.Operator.answer_size
    <= plain.Engine.report.Operator.answer_size)

let test_validation () =
  Alcotest.check_raises "negative budget"
    (Invalid_argument "Engine.execute: budget must be non-negative") (fun () ->
      ignore (run ~budget:(-1.0) ()));
  Alcotest.check_raises "negative deadline"
    (Invalid_argument "Engine.execute: deadline must be non-negative")
    (fun () -> ignore (run ~deadline:(-0.5) ()))

let suite =
  [
    ("budget = infinity is the unbudgeted run", `Quick,
     test_infinite_budget_is_identity);
    ("budget respected on every rung", `Slow, test_budget_is_respected);
    ("sweep spans starved to ample", `Slow, test_sweep_spans_the_contract);
    QCheck_alcotest.to_alcotest prop_quality_monotone_in_budget;
    ("deadline smoke", `Quick, test_deadline_smoke);
    ("validation", `Quick, test_validation);
  ]
