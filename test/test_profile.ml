(* Tests for the per-query profiler and the Chrome-trace exporter: the
   profiled run must be bit-for-bit the unprofiled run, the quality
   audit's arithmetic must be exact (degenerate denominators included),
   and both exporters must emit well-formed JSON — checked with a local
   validator, since the test suite links no JSON library. *)

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checkf eps = Alcotest.(check (float eps))

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* ---- minimal JSON validator -------------------------------------- *)

let json_valid s =
  let n = String.length s in
  let pos = ref 0 in
  let fail () = raise Exit in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      incr pos
    done
  in
  let expect c = if peek () = Some c then incr pos else fail () in
  let literal l =
    let m = String.length l in
    if !pos + m <= n && String.sub s !pos m = l then pos := !pos + m
    else fail ()
  in
  let string_lit () =
    expect '"';
    let rec go () =
      if !pos >= n then fail ()
      else
        match s.[!pos] with
        | '"' -> incr pos
        | '\\' ->
            pos := !pos + 2;
            go ()
        | _ ->
            incr pos;
            go ()
    in
    go ()
  in
  let digits () =
    let d = ref 0 in
    while !pos < n && match s.[!pos] with '0' .. '9' -> true | _ -> false do
      incr pos;
      incr d
    done;
    if !d = 0 then fail ()
  in
  let number () =
    if peek () = Some '-' then incr pos;
    digits ();
    if peek () = Some '.' then begin
      incr pos;
      digits ()
    end;
    match peek () with
    | Some ('e' | 'E') ->
        incr pos;
        (match peek () with Some ('+' | '-') -> incr pos | _ -> ());
        digits ()
    | _ -> ()
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' -> obj ()
    | Some '[' -> arr ()
    | Some '"' -> string_lit ()
    | Some 't' -> literal "true"
    | Some 'f' -> literal "false"
    | Some 'n' -> literal "null"
    | Some ('-' | '0' .. '9') -> number ()
    | _ -> fail ()
  and obj () =
    expect '{';
    skip_ws ();
    if peek () = Some '}' then incr pos
    else
      let rec members () =
        skip_ws ();
        string_lit ();
        skip_ws ();
        expect ':';
        value ();
        skip_ws ();
        match peek () with
        | Some ',' ->
            incr pos;
            members ()
        | Some '}' -> incr pos
        | _ -> fail ()
      in
      members ()
  and arr () =
    expect '[';
    skip_ws ();
    if peek () = Some ']' then incr pos
    else
      let rec elems () =
        value ();
        skip_ws ();
        match peek () with
        | Some ',' ->
            incr pos;
            elems ()
        | Some ']' -> incr pos
        | _ -> fail ()
      in
      elems ()
  in
  try
    value ();
    skip_ws ();
    !pos = n
  with Exit -> false

let test_json_validator () =
  List.iter
    (fun (doc, ok) ->
      checkb (Printf.sprintf "validator on %s" doc) ok (json_valid doc))
    [
      ({|{"a": 1, "b": [true, null, -2.5e3], "c": "x\"y"}|}, true);
      ("[]", true);
      ("{", false);
      ({|{"a": }|}, false);
      ({|{"a": 1} trailing|}, false);
      ("[1, 2,]", false);
    ]

(* ---- the golden invariant: profiling perturbs nothing -------------- *)

let requirements = Quality.requirements ~precision:0.9 ~recall:0.6 ~laxity:50.0

let run_engine ?profile ~domains () =
  let data =
    Synthetic.generate (Rng.create 71) (Synthetic.config ~total:2000 ())
  in
  Engine.execute ~rng:(Rng.create 72) ~max_laxity:100.0 ~domains ?profile
    ~instance:Synthetic.instance
    ~probe:(Probe_driver.of_scalar ~batch_size:4 Synthetic.probe)
    ~requirements data

let test_profiled_run_is_pure () =
  List.iter
    (fun domains ->
      let plain = run_engine ~domains () in
      let profiled =
        run_engine ~domains
          ~profile:(Engine.profiling ~oracle:Synthetic.in_exact ())
          ()
      in
      let tag msg = Printf.sprintf "%s (domains=%d)" msg domains in
      checkb (tag "same counts") true
        (plain.Engine.counts = profiled.Engine.counts);
      checkb (tag "same answer, element for element") true
        (plain.Engine.report.Operator.answer
        = profiled.Engine.report.Operator.answer);
      checki (tag "same answer size")
        plain.Engine.report.Operator.answer_size
        profiled.Engine.report.Operator.answer_size;
      checkf 0.0 (tag "same normalized cost") plain.Engine.normalized_cost
        profiled.Engine.normalized_cost;
      checkb (tag "same guarantees") true
        (plain.Engine.report.Operator.guarantees
        = profiled.Engine.report.Operator.guarantees);
      checkb (tag "plain run has no profile") true
        (plain.Engine.profile = None);
      match profiled.Engine.profile with
      | None -> Alcotest.fail (tag "profiled run returned no profile")
      | Some p ->
          checkb (tag "counters reconcile") true
            (p.Profile.reconcile_error = None);
          checkb (tag "audit passed") true (Profile.passed p))
    [ 1; 2 ]

(* ---- audit arithmetic --------------------------------------------- *)

let mk_counts =
  {
    Profile.reads = 100;
    probes = 10;
    batches = 3;
    writes_imprecise = 0;
    writes_precise = 0;
  }

let make_profile ?reconcile_error ~answer_size ~ground_truth () =
  Profile.make ~counts:mk_counts ~snapshot:[] ~requested_precision:0.8
    ~requested_recall:0.5 ~guaranteed_precision:0.9 ~guaranteed_recall:0.6
    ~guarantees_met:true ~answer_size ~ground_truth ?reconcile_error ()

let test_audit_math () =
  let p = make_profile ~answer_size:10 ~ground_truth:(9, 12) () in
  (match p.Profile.audit.achieved with
  | None -> Alcotest.fail "achieved missing despite ground truth"
  | Some a ->
      checki "answer_in_exact" 9 a.Profile.answer_in_exact;
      checki "exact_size" 12 a.Profile.exact_size;
      checkf 1e-12 "achieved precision" 0.9 a.Profile.achieved_precision;
      checkf 1e-12 "achieved recall" 0.75 a.Profile.achieved_recall;
      checkb "precision passes" true a.Profile.precision_pass;
      checkb "recall passes" true a.Profile.recall_pass);
  checkb "audit passed" true (Profile.audit_passed p);
  checkb "profile passed" true (Profile.passed p);
  (* Missed precision: 6/10 = 0.6 < 0.8 requested. *)
  let miss = make_profile ~answer_size:10 ~ground_truth:(6, 12) () in
  (match miss.Profile.audit.achieved with
  | Some a -> checkb "precision fails" false a.Profile.precision_pass
  | None -> Alcotest.fail "achieved missing");
  checkb "missed audit fails the profile" false (Profile.passed miss);
  (* A reconcile error fails the profile even when the audit is clean. *)
  let r =
    make_profile ~reconcile_error:"qaq.reads: metrics say 1, meter says 2"
      ~answer_size:10 ~ground_truth:(9, 12) ()
  in
  checkb "audit still passes" true (Profile.audit_passed r);
  checkb "reconcile error fails the profile" false (Profile.passed r)

(* Degenerate denominators follow Quality.Diagnostics: an empty answer
   is vacuously precise, an empty exact answer fully recalled. *)
let test_audit_degenerate () =
  let p = make_profile ~answer_size:0 ~ground_truth:(0, 0) () in
  match p.Profile.audit.achieved with
  | None -> Alcotest.fail "achieved missing"
  | Some a ->
      checkf 0.0 "empty answer precision" 1.0 a.Profile.achieved_precision;
      checkf 0.0 "empty exact recall" 1.0 a.Profile.achieved_recall;
      checkb "both pass" true (a.Profile.precision_pass && a.Profile.recall_pass)

(* ---- a fully instrumented run: histograms, spans, exports ---------- *)

let instrumented_run () =
  let data =
    Synthetic.generate (Rng.create 81) (Synthetic.config ~total:2000 ())
  in
  let obs = Obs.create () in
  let result =
    Engine.execute ~rng:(Rng.create 82) ~max_laxity:100.0 ~obs
      ~profile:(Engine.profiling ~label:"instrumented" ~oracle:Synthetic.in_exact ())
      ~instance:Synthetic.instance
      ~probe:(Probe_driver.of_scalar ~obs ~batch_size:4 Synthetic.probe)
      ~requirements data
  in
  (result, Option.get result.Engine.profile)

let test_profile_of_run () =
  let result, p = instrumented_run () in
  Alcotest.(check string) "label" "instrumented" p.Profile.label;
  checki "profile reads mirror the meter" result.Engine.counts.Cost_meter.reads
    p.Profile.counts.Profile.reads;
  checki "profile probes mirror the meter"
    result.Engine.counts.Cost_meter.probes p.Profile.counts.Profile.probes;
  checkf 1e-12 "requested precision" 0.9
    p.Profile.audit.Profile.requested_precision;
  checkb "guarantees met" true p.Profile.audit.Profile.guarantees_met;
  (* The hot-site histograms made it into the snapshot: one flush timing
     per metered batch, one laxity/success observation per MAYBE. *)
  (match Metrics.dist_of p.Profile.snapshot "probe_driver.flush_seconds" with
  | Some d ->
      checki "one flush observation per batch"
        result.Engine.counts.Cost_meter.batches d.Metrics.d_count
  | None -> Alcotest.fail "flush histogram missing");
  (match Metrics.dist_of p.Profile.snapshot "qaq.maybe.laxity" with
  | Some d -> checkb "maybe laxity observed" true (d.Metrics.d_count > 0)
  | None -> Alcotest.fail "maybe.laxity histogram missing");
  (match Metrics.dist_of p.Profile.snapshot "qaq.maybe.success" with
  | Some d ->
      checkb "success observations are probabilities" true
        (d.Metrics.d_min >= 0.0 && d.Metrics.d_max <= 1.0)
  | None -> Alcotest.fail "maybe.success histogram missing");
  let span_names =
    List.map (fun r -> r.Profile.span_name) p.Profile.spans
  in
  checkb "plan span present" true (List.mem "plan" span_names);
  checkb "scan span present" true (List.mem "scan" span_names);
  (* Both renderings are well-formed and carry the audit. *)
  let json = Profile.to_json p in
  checkb "profile JSON is valid" true (json_valid json);
  checkb "profile JSON carries the label" true
    (contains json "\"label\": \"instrumented\"");
  let text = Profile.render p in
  checkb "render mentions the quality audit" true
    (contains text "quality audit")

(* ---- Chrome-trace export ------------------------------------------ *)

let test_chrome_trace_export () =
  let recorder = Chrome_trace.create () in
  let domains = 2 in
  Chrome_trace.declare_lanes recorder domains;
  let obs = Obs.create ~trace:(Chrome_trace.sink recorder) () in
  let data =
    Synthetic.generate (Rng.create 91) (Synthetic.config ~total:1000 ())
  in
  ignore
    (Engine.execute ~rng:(Rng.create 92) ~max_laxity:100.0 ~domains ~obs
       ~on_task:(Chrome_trace.on_task recorder)
       ~instance:Synthetic.instance
       ~probe:(Probe_driver.of_scalar ~obs ~batch_size:4 Synthetic.probe)
       ~requirements data);
  checkb "events recorded" true (Chrome_trace.events recorder > 0);
  let json = Chrome_trace.to_json recorder in
  checkb "trace JSON is valid" true (json_valid json);
  checkb "traceEvents array present" true (contains json "\"traceEvents\"");
  (* One named timeline lane per configured domain, lane 0 included. *)
  checkb "lane 0 named" true (contains json "\"lane 0 (caller)\"");
  checkb "lane 1 named" true (contains json "\"lane 1\"");
  checkb "no lane beyond the configured count" false (contains json "\"lane 2\"");
  (* The engine's spans arrive as complete ("X") slices. *)
  checkb "complete slices present" true (contains json "\"ph\": \"X\"")

let test_chrome_trace_lane_validation () =
  let r = Chrome_trace.create () in
  Alcotest.check_raises "zero lanes rejected"
    (Invalid_argument "Chrome_trace.declare_lanes: lanes < 1") (fun () ->
      Chrome_trace.declare_lanes r 0);
  (* An empty recorder still exports a valid document. *)
  checkb "empty trace JSON valid" true (json_valid (Chrome_trace.to_json r))

let suite =
  [
    ("json validator self-test", `Quick, test_json_validator);
    ("profiled run is bit-for-bit the unprofiled run", `Quick,
     test_profiled_run_is_pure);
    ("audit arithmetic", `Quick, test_audit_math);
    ("audit degenerate denominators", `Quick, test_audit_degenerate);
    ("profile of an instrumented run", `Quick, test_profile_of_run);
    ("chrome trace export", `Quick, test_chrome_trace_export);
    ("chrome trace lane validation", `Quick, test_chrome_trace_lane_validation);
  ]
