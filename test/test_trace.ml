(* Tests for the progressive-guarantee view (Operator.trace) and the
   drifting workload it pairs with. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let requirements = Quality.requirements ~precision:0.9 ~recall:0.6 ~laxity:50.0

let run_trace ?(every = 1) data =
  Operator.trace ~rng:(Rng.create 3) ~every ~instance:Synthetic.instance
    ~probe:(Probe_driver.scalar Synthetic.probe) ~policy:Policy.stingy
    ~requirements
    (Operator.source_of_array data)

let test_trace_covers_every_read () =
  let data =
    Synthetic.generate (Rng.create 1) (Synthetic.config ~total:500 ())
  in
  let report, samples = run_trace data in
  checki "one sample per read" report.counts.reads (List.length samples);
  (* Read counts are 1..reads in order. *)
  List.iteri
    (fun i (reads, _) -> checki "sequential" (i + 1) reads)
    samples

let test_trace_every () =
  let data =
    Synthetic.generate (Rng.create 2) (Synthetic.config ~total:500 ())
  in
  let report, samples = run_trace ~every:100 data in
  checkb "subsampled" true
    (List.length samples <= (report.counts.reads / 100) + 1);
  List.iter (fun (reads, _) -> checki "multiples" 0 (reads mod 100)) samples;
  Alcotest.check_raises "every < 1"
    (Invalid_argument "Operator.trace: every < 1") (fun () ->
      ignore (run_trace ~every:0 data))

let test_trajectory_invariants () =
  let data =
    Synthetic.generate (Rng.create 4) (Synthetic.config ~total:2000 ())
  in
  let report, samples = run_trace data in
  (* Under enforcement: precision and laxity within bounds at EVERY
     checkpoint; recall non-decreasing and ending at the requirement. *)
  let last_recall = ref 0.0 in
  List.iter
    (fun ((_, g) : int * Quality.guarantees) ->
      checkb "precision always ok" true (g.precision >= requirements.precision -. 1e-12);
      checkb "laxity always ok" true (g.max_laxity <= requirements.laxity +. 1e-12);
      checkb "recall monotone" true (g.recall >= !last_recall -. 1e-12);
      last_recall := g.recall)
    samples;
  checkb "converged" true (report.guarantees.recall >= requirements.recall)

let test_drifting_generator () =
  let cfg = Synthetic.config ~total:40000 ~f_y:0.1 ~f_m:0.1 () in
  let data =
    Synthetic.generate_drifting (Rng.create 5) cfg ~f_y_end:0.3 ~f_m_end:0.5
  in
  let frac label lo hi =
    let count = ref 0 in
    for i = lo to hi - 1 do
      if Tvl.equal data.(i).Synthetic.label label then incr count
    done;
    float_of_int !count /. float_of_int (hi - lo)
  in
  (* First tenth is near the start mix, last tenth near the end mix. *)
  checkb "head f_m low" true (Float.abs (frac Tvl.Maybe 0 4000 -. 0.12) < 0.03);
  checkb "tail f_m high" true (Float.abs (frac Tvl.Maybe 36000 40000 -. 0.48) < 0.03);
  checkb "head f_y low" true (Float.abs (frac Tvl.Yes 0 4000 -. 0.11) < 0.03);
  checkb "tail f_y high" true (Float.abs (frac Tvl.Yes 36000 40000 -. 0.29) < 0.03);
  Alcotest.check_raises "invalid end"
    (Invalid_argument "Synthetic.generate_drifting: invalid end fractions")
    (fun () ->
      ignore (Synthetic.generate_drifting (Rng.create 1) cfg ~f_y_end:0.8 ~f_m_end:0.5))

let test_adaptive_on_drift () =
  (* On a drifting workload, the adaptive policy must stay sound and not
     lose to the static plan solved from a (correct-on-average) prior. *)
  let cfg = Synthetic.config ~total:10000 ~f_y:0.05 ~f_m:0.05 () in
  let requirements = Quality.requirements ~precision:0.9 ~recall:0.5 ~laxity:50.0 in
  let total_static = ref 0.0 and total_adaptive = ref 0.0 in
  List.iter
    (fun seed ->
      let data =
        Synthetic.generate_drifting (Rng.create seed) cfg ~f_y_end:0.35
          ~f_m_end:0.35
      in
      let rng = Rng.create (seed * 7) in
      let average_prior =
        let spec = Region_model.uniform_spec ~f_y:0.2 ~f_m:0.2 ~max_laxity:100.0 in
        (Solver.solve (Solver.problem ~total:10000 ~spec ~requirements ())).params
      in
      let static =
        Operator.run ~rng ~instance:Synthetic.instance
          ~probe:(Probe_driver.scalar Synthetic.probe)
          ~policy:(Policy.qaq average_prior) ~requirements
          (Operator.source_of_array data)
      in
      let adaptive_state =
        Adaptive.create ~rng:(Rng.split rng) ~total:10000 ~max_laxity:100.0
          ~requirements ~replan_every:1000 ~max_replans:8 ~initial:average_prior ()
      in
      let adaptive =
        Operator.run ~rng ~instance:Synthetic.instance
          ~probe:(Probe_driver.scalar Synthetic.probe)
          ~policy:(Adaptive.policy adaptive_state) ~requirements
          (Operator.source_of_array data)
      in
      checkb "static sound" true (Quality.meets static.guarantees requirements);
      checkb "adaptive sound" true (Quality.meets adaptive.guarantees requirements);
      total_static := !total_static +. Operator.cost Cost_model.paper static;
      total_adaptive := !total_adaptive +. Operator.cost Cost_model.paper adaptive)
    [ 31; 32; 33 ];
  checkb "adaptive does not lose on drift" true
    (!total_adaptive <= !total_static *. 1.05)

let suite =
  [
    ("trace covers every read", `Quick, test_trace_covers_every_read);
    ("trace subsampling", `Quick, test_trace_every);
    ("trajectory invariants", `Quick, test_trajectory_invariants);
    ("drifting generator", `Quick, test_drifting_generator);
    ("adaptive on drifting workload", `Slow, test_adaptive_on_drift);
  ]
