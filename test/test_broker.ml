(* Tests for the cross-query probe broker: single-query transparency,
   dedup/coalescing accounting, cross-tenant batch packing, admission
   control, and scheduling-independence of concurrent execution. *)

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let pure_resolve objs =
  Array.map (fun o -> Probe_driver.Resolved (Synthetic.probe o)) objs

let obj_key (o : Synthetic.obj) = o.Synthetic.id

let small_data total =
  Synthetic.generate (Rng.create 5) (Synthetic.config ~total ())

let requirements =
  Quality.requirements ~precision:0.9 ~recall:0.7 ~laxity:40.0

let run_engine ~seed ~probe data =
  Engine.execute ~rng:(Rng.create seed) ~max_laxity:100.0 ~domains:1
    ~instance:Synthetic.instance ~probe ~requirements data

let fingerprint (r : Synthetic.obj Engine.result) =
  ( List.map
      (fun e -> (e.Operator.obj.Synthetic.id, e.Operator.precise))
      r.Engine.report.Operator.answer,
    r.Engine.report.Operator.guarantees,
    r.Engine.counts )

(* A single query through the broker must be bit-for-bit the direct
   driver path: same answer, same guarantees, same charges, for scalar
   and batched drivers alike. *)
let test_single_query_identity () =
  let data = small_data 400 in
  List.iter
    (fun batch_size ->
      let direct =
        run_engine ~seed:99
          ~probe:(Probe_driver.create_outcomes ~batch_size pure_resolve)
          data
      in
      let broker =
        Probe_broker.create ~batch_size ~key:obj_key pure_resolve
      in
      let brokered =
        run_engine ~seed:99 ~probe:(Probe_broker.client broker) data
      in
      checkb
        (Printf.sprintf "identical result at B=%d" batch_size)
        true
        (fingerprint direct = fingerprint brokered);
      (* and the broker charged exactly what the query's meter did *)
      let stats = Probe_broker.stats broker in
      checki
        (Printf.sprintf "charged = query probes at B=%d" batch_size)
        direct.Engine.counts.Cost_meter.probes stats.Probe_broker.charged;
      checki
        (Printf.sprintf "no rejections at B=%d" batch_size)
        0 stats.Probe_broker.rejected)
    [ 1; 4 ]

(* K queries over overlapping object sets charge exactly |union| backend
   probes, whatever the overlap pattern, and the stats identity holds. *)
let prop_dedup_charged_once =
  QCheck2.Test.make ~name:"overlapping queries charge exactly |union|"
    ~count:100
    QCheck2.Gen.(
      list_size (int_range 1 6) (list_size (int_range 0 20) (int_range 0 30)))
    (fun key_lists ->
      let broker =
        Probe_broker.create ~batch_size:3 ~key:Fun.id (fun objs ->
            Array.map (fun k -> Probe_driver.Resolved k) objs)
      in
      List.iteri
        (fun i keys ->
          let d = Probe_broker.client ~tenant:(string_of_int i) broker in
          List.iter
            (fun k -> Probe_driver.submit_outcome d k (fun _ -> ()))
            keys;
          Probe_driver.flush d)
        key_lists;
      let union = List.sort_uniq compare (List.concat key_lists) in
      let total = List.fold_left (fun n l -> n + List.length l) 0 key_lists in
      let s = Probe_broker.stats broker in
      s.Probe_broker.charged = List.length union
      && s.Probe_broker.requests = total
      && s.Probe_broker.requests
         = s.Probe_broker.admitted + s.Probe_broker.coalesced
           + s.Probe_broker.fresh_hits + s.Probe_broker.rejected
      && s.Probe_broker.failed = 0)

(* The same dedup bound under real concurrency: domains flush
   overlapping key sets through their own clients simultaneously; the
   union is still charged exactly once and every waiter gets a correct
   outcome. *)
let test_concurrent_dedup () =
  let keys_of i = List.init 25 (fun j -> (5 * i) + j) in
  let broker =
    Probe_broker.create ~batch_size:4 ~key:Fun.id (fun objs ->
        (* a little real latency so flushes genuinely overlap *)
        Unix.sleepf 0.001;
        Array.map (fun k -> Probe_driver.Resolved (k * 7)) objs)
  in
  let worker i () =
    let d = Probe_broker.client ~tenant:(string_of_int i) broker in
    let results = ref [] in
    List.iter
      (fun k ->
        Probe_driver.submit_outcome d k (fun oc -> results := (k, oc) :: !results))
      (keys_of i);
    Probe_driver.flush d;
    !results
  in
  let domains = List.init 4 (fun i -> Domain.spawn (worker i)) in
  let all = List.concat_map Domain.join domains in
  List.iter
    (fun (k, oc) ->
      match oc with
      | Probe_driver.Resolved v -> checki "fanned-out outcome" (k * 7) v
      | Probe_driver.Shrunk _ | Probe_driver.Failed _ ->
          Alcotest.fail "unexpected failure")
    all;
  let union =
    List.sort_uniq compare (List.concat_map keys_of [ 0; 1; 2; 3 ])
  in
  let s = Probe_broker.stats broker in
  checki "concurrent union charged once" (List.length union)
    s.Probe_broker.charged;
  checki "every request accounted" (4 * 25) s.Probe_broker.requests;
  checki "nothing rejected" 0 s.Probe_broker.rejected;
  checkb "dedup actually happened" true
    (s.Probe_broker.coalesced + s.Probe_broker.fresh_hits > 0)

(* execute_many results are independent of scheduling: same queries on
   1 domain, on 4 domains, and in reversed submission order — all equal
   to the solo runs. *)
let test_execute_many_deterministic () =
  let data = small_data 400 in
  let seeds = [| 11; 12; 13; 14 |] in
  let solo =
    Array.map
      (fun seed ->
        fingerprint
          (run_engine ~seed
             ~probe:(Probe_driver.create_outcomes ~batch_size:4 pure_resolve)
             data))
      seeds
  in
  let run ~domains ~order =
    let broker = Probe_broker.create ~batch_size:4 ~key:obj_key pure_resolve in
    let queries =
      Array.map
        (fun i ->
          Engine.query ~rng:(Rng.create seeds.(i)) ~max_laxity:100.0
            ~instance:Synthetic.instance
            ~probe:(Probe_broker.client ~tenant:(string_of_int i) broker)
            ~requirements data)
        order
    in
    let results = Engine.execute_many ~domains queries in
    Array.map fingerprint results
  in
  let forward = [| 0; 1; 2; 3 |] in
  let serial = run ~domains:1 ~order:forward in
  let parallel = run ~domains:4 ~order:forward in
  let reversed = run ~domains:4 ~order:[| 3; 2; 1; 0 |] in
  Array.iteri
    (fun i fp ->
      checkb (Printf.sprintf "serial query %d = solo" i) true (fp = solo.(i)))
    serial;
  Array.iteri
    (fun i fp ->
      checkb (Printf.sprintf "parallel query %d = solo" i) true (fp = solo.(i)))
    parallel;
  Array.iteri
    (fun i fp ->
      checkb
        (Printf.sprintf "reversed query %d = solo" i)
        true
        (fp = solo.(3 - i)))
    reversed

(* Cross-query batch packing: while one dispatch is held open inside the
   backend, requests from other clients queue up; the next round merges
   them into one batch. *)
let test_cross_query_packing () =
  let gate = Atomic.make false in
  let entered = Atomic.make false in
  let calls = Atomic.make 0 in
  let resolve objs =
    if Atomic.fetch_and_add calls 1 = 0 then begin
      Atomic.set entered true;
      while not (Atomic.get gate) do
        Unix.sleepf 0.0005
      done
    end;
    Array.map (fun k -> Probe_driver.Resolved k) objs
  in
  let broker = Probe_broker.create ~batch_size:4 ~key:Fun.id resolve in
  let await ?(what = "condition") p =
    let tries = ref 0 in
    while not (p ()) do
      incr tries;
      if !tries > 4000 then Alcotest.failf "timed out waiting for %s" what;
      Unix.sleepf 0.0005
    done
  in
  let a = Domain.spawn (fun () -> Probe_broker.fetch ~tenant:"a" broker 1) in
  await ~what:"first dispatch to enter the backend" (fun () ->
      Atomic.get entered);
  let b = Domain.spawn (fun () -> Probe_broker.fetch ~tenant:"b" broker 2) in
  let c = Domain.spawn (fun () -> Probe_broker.fetch ~tenant:"c" broker 3) in
  await ~what:"two requests to queue behind the dispatch" (fun () ->
      Probe_broker.pending broker = 2);
  Atomic.set gate true;
  let oa = Domain.join a and ob = Domain.join b and oc = Domain.join c in
  (match (oa, ob, oc) with
  | Probe_driver.Resolved 1, Probe_driver.Resolved 2, Probe_driver.Resolved 3
    ->
      ()
  | _ -> Alcotest.fail "wrong outcomes");
  let s = Probe_broker.stats broker in
  checki "two rounds for three queries" 2 s.Probe_broker.batches;
  checki "backend called twice" 2 (Atomic.get calls);
  checki "three backend probes" 3 s.Probe_broker.charged

(* Shared capacity: once the admitted budget is spent, new probe targets
   degrade to [Failed { attempts = 0 }] while fresh hits stay free. *)
let test_capacity_saturation () =
  let broker =
    Probe_broker.create ~capacity:2 ~key:Fun.id (fun objs ->
        Array.map (fun k -> Probe_driver.Resolved k) objs)
  in
  checkb "not saturated at start" false (Probe_broker.saturated broker);
  (match Probe_broker.fetch broker 1 with
  | Probe_driver.Resolved 1 -> ()
  | _ -> Alcotest.fail "first probe should resolve");
  (match Probe_broker.fetch broker 2 with
  | Probe_driver.Resolved 2 -> ()
  | _ -> Alcotest.fail "second probe should resolve");
  checkb "saturated after capacity" true (Probe_broker.saturated broker);
  (match Probe_broker.fetch broker 3 with
  | Probe_driver.Failed { attempts = 0 } -> ()
  | _ -> Alcotest.fail "over-capacity probe should degrade");
  (match Probe_broker.fetch broker 1 with
  | Probe_driver.Resolved 1 -> ()
  | _ -> Alcotest.fail "fresh hit must still succeed when saturated");
  let s = Probe_broker.stats broker in
  checki "rejected counted" 1 s.Probe_broker.rejected;
  checki "fresh hit counted" 1 s.Probe_broker.fresh_hits;
  checki "charged stops at capacity" 2 s.Probe_broker.charged

(* A query over a saturated broker still completes, degrading through
   the operator's guarantee-aware fallback instead of erroring. *)
let test_saturated_engine_run_degrades () =
  let data = small_data 400 in
  let broker =
    Probe_broker.create ~capacity:5 ~batch_size:4 ~key:obj_key pure_resolve
  in
  let result = run_engine ~seed:99 ~probe:(Probe_broker.client broker) data in
  checkb "run degraded" true (Engine.degraded result);
  checkb "degraded probes happened" true
    (result.Engine.degradation.Engine.failed_probes > 0);
  checki "exactly the capacity was charged" 5
    (Probe_broker.stats broker).Probe_broker.charged;
  checkb "broker saturated" true (Probe_broker.saturated broker)

(* The freshness window: infinite = probe once, zero = no sharing at
   all, finite = a strict wall-clock window on the broker's clock. *)
let test_freshness_window () =
  let fetch_twice freshness =
    let broker =
      Probe_broker.create ~freshness ~key:Fun.id (fun objs ->
          Array.map (fun k -> Probe_driver.Resolved k) objs)
    in
    ignore (Probe_broker.fetch broker 7);
    ignore (Probe_broker.fetch broker 7);
    Probe_broker.stats broker
  in
  checki "infinite window: one charge" 1 (fetch_twice infinity).Probe_broker.charged;
  checki "zero window: every request charges" 2
    (fetch_twice 0.0).Probe_broker.charged;
  let now = ref 0.0 in
  let broker =
    Probe_broker.create
      ~clock:(fun () -> !now)
      ~freshness:10.0 ~key:Fun.id
      (fun objs -> Array.map (fun k -> Probe_driver.Resolved k) objs)
  in
  ignore (Probe_broker.fetch broker 7);
  now := 5.0;
  checkb "within the window" true (Probe_broker.is_fresh broker 7);
  ignore (Probe_broker.fetch broker 7);
  now := 10.0;
  (* the window is strict: age 10 is not < 10 *)
  checkb "window boundary is stale" false (Probe_broker.is_fresh broker 7);
  ignore (Probe_broker.fetch broker 7);
  let s = Probe_broker.stats broker in
  checki "re-probed at the boundary" 2 s.Probe_broker.charged;
  checki "one fresh hit inside the window" 1 s.Probe_broker.fresh_hits;
  Probe_broker.invalidate broker 7;
  checkb "invalidate drops the entry" false (Probe_broker.is_fresh broker 7)

(* Per-tenant quotas: one tenant exhausting its quota degrades only its
   own new probe targets. *)
let test_tenant_quota () =
  let broker =
    Probe_broker.create ~key:Fun.id (fun objs ->
        Array.map (fun k -> Probe_driver.Resolved k) objs)
  in
  ignore (Probe_broker.client ~tenant:"a" ~quota:2 broker);
  (match Probe_broker.fetch ~tenant:"a" broker 1 with
  | Probe_driver.Resolved _ -> ()
  | _ -> Alcotest.fail "within quota");
  (match Probe_broker.fetch ~tenant:"a" broker 2 with
  | Probe_driver.Resolved _ -> ()
  | _ -> Alcotest.fail "within quota");
  (match Probe_broker.fetch ~tenant:"a" broker 3 with
  | Probe_driver.Failed { attempts = 0 } -> ()
  | _ -> Alcotest.fail "over quota must degrade");
  (match Probe_broker.fetch ~tenant:"b" broker 3 with
  | Probe_driver.Resolved _ -> ()
  | _ -> Alcotest.fail "other tenants unaffected");
  (* a's fresh hit on b's probe is free, so it still succeeds *)
  (match Probe_broker.fetch ~tenant:"a" broker 3 with
  | Probe_driver.Resolved _ -> ()
  | _ -> Alcotest.fail "fresh hits are free even over quota");
  let by_tenant = Probe_broker.tenant_stats broker in
  let a = List.assoc "a" by_tenant and b = List.assoc "b" by_tenant in
  checki "a admitted to quota" 2 a.Probe_broker.admitted;
  checki "a rejected beyond" 1 a.Probe_broker.rejected;
  checki "a served fresh" 1 a.Probe_broker.fresh_hits;
  checki "b admitted" 1 b.Probe_broker.admitted;
  checki "b rejected" 0 b.Probe_broker.rejected

(* An open circuit breaker refuses whole dispatch rounds: the backend is
   not touched and the refused requests degrade. *)
let test_breaker_refuses_rounds () =
  let calls = Atomic.make 0 in
  let breaker =
    Circuit_breaker.create ~trip_after:1 ~backoff_base:64 ()
  in
  let broker =
    Probe_broker.create ~breaker ~key:Fun.id (fun objs ->
        Atomic.incr calls;
        Array.map (fun _ -> Probe_driver.Failed { attempts = 1 }) objs)
  in
  (match Probe_broker.fetch broker 1 with
  | Probe_driver.Failed { attempts = 1 } -> ()
  | _ -> Alcotest.fail "backend failure surfaces");
  checkb "breaker tripped" true (Circuit_breaker.state breaker = Open);
  (match Probe_broker.fetch broker 2 with
  | Probe_driver.Failed { attempts = 0 } -> ()
  | _ -> Alcotest.fail "refused round degrades with attempts = 0");
  checki "backend called once" 1 (Atomic.get calls);
  let s = Probe_broker.stats broker in
  checki "only the real round counts a batch" 1 s.Probe_broker.batches;
  checki "nothing charged" 0 s.Probe_broker.charged;
  checki "both requests failed" 2 s.Probe_broker.failed

(* The qaq.broker.* instruments mirror the broker's own statistics. *)
let test_broker_metrics () =
  let obs = Obs.create () in
  let broker =
    Probe_broker.create ~obs ~capacity:2 ~batch_size:2 ~key:Fun.id
      (fun objs -> Array.map (fun k -> Probe_driver.Resolved k) objs)
  in
  ignore (Probe_broker.fetch broker 1);
  ignore (Probe_broker.fetch broker 1);
  ignore (Probe_broker.fetch broker 2);
  ignore (Probe_broker.fetch broker 3);
  let s = Probe_broker.stats broker in
  let snapshot = Obs.snapshot obs in
  let count key = Metrics.count_of snapshot key in
  checki "requests mirrored" s.Probe_broker.requests
    (count Obs.Keys.broker_requests);
  checki "admitted mirrored" s.Probe_broker.admitted
    (count Obs.Keys.broker_admitted);
  checki "charged mirrored" s.Probe_broker.charged
    (count Obs.Keys.broker_charged);
  checki "fresh mirrored" s.Probe_broker.fresh_hits
    (count Obs.Keys.broker_fresh_hits);
  checki "rejected mirrored" s.Probe_broker.rejected
    (count Obs.Keys.broker_rejected);
  checki "batches mirrored" s.Probe_broker.batches
    (count Obs.Keys.broker_batches);
  match Metrics.dist_of snapshot Obs.Keys.broker_batch_fill with
  | Some d -> checki "one fill observation per batch" s.Probe_broker.batches
      d.Metrics.d_count
  | None -> Alcotest.fail "batch fill histogram missing"

(* {2 Tiered brokers} *)

(* Two toy backends over int keys: the proxy narrows (tagged +1000 so a
   cached shrunk outcome is recognisable), the oracle resolves (×7). *)
let tiered_toy () =
  Probe_broker.create_tiered ~key:Fun.id
    [|
      {
        Probe_broker.bk_resolve =
          (fun objs ->
            Array.map (fun k -> Probe_driver.Shrunk (k + 1000)) objs);
        bk_batch = 3;
      };
      {
        Probe_broker.bk_resolve =
          (fun objs -> Array.map (fun k -> Probe_driver.Resolved (k * 7)) objs);
        bk_batch = 4;
      };
    |]

(* K queries at mixed tiers charge exactly |union| per tier — where the
   union is computed under the freshness asymmetry: a resolved point
   satisfies any tier, a shrunk interval only its own. The per-tier
   stats identity holds and the whole-broker stats are the element-wise
   sums. *)
let prop_tier_dedup_charged_once =
  QCheck2.Test.make
    ~name:"mixed-tier queries charge exactly |union| per tier" ~count:100
    QCheck2.Gen.(
      list_size (int_range 1 6)
        (pair (int_range 0 1) (list_size (int_range 0 15) (int_range 0 25))))
    (fun queries ->
      let broker = tiered_toy () in
      (* replay the freshness rules in plain code to predict charges *)
      let resolved = Hashtbl.create 16 and shrunk = Hashtbl.create 16 in
      let expected = [| 0; 0 |] in
      List.iter
        (fun (tier, keys) ->
          List.iter
            (fun k ->
              let free =
                Hashtbl.mem resolved k
                || (tier = 0 && Hashtbl.mem shrunk k)
              in
              if not free then begin
                expected.(tier) <- expected.(tier) + 1;
                if tier = 1 then Hashtbl.replace resolved k ()
                else Hashtbl.replace shrunk k ()
              end)
            (List.sort_uniq compare keys))
        queries;
      List.iteri
        (fun i (tier, keys) ->
          let d =
            Probe_broker.client ~tenant:(string_of_int i) ~tier broker
          in
          List.iter
            (fun k -> Probe_driver.submit_outcome d k (fun _ -> ()))
            keys;
          Probe_driver.flush d)
        queries;
      let bt = Probe_broker.by_tier broker in
      let whole = Probe_broker.stats broker in
      let identity (s : Probe_broker.stats) =
        s.Probe_broker.requests
        = s.Probe_broker.admitted + s.Probe_broker.coalesced
          + s.Probe_broker.fresh_hits + s.Probe_broker.rejected
      in
      let sum f = f bt.(0) + f bt.(1) in
      bt.(0).Probe_broker.charged = expected.(0)
      && bt.(1).Probe_broker.charged = expected.(1)
      && identity bt.(0) && identity bt.(1)
      && sum (fun s -> s.Probe_broker.requests) = whole.Probe_broker.requests
      && sum (fun s -> s.Probe_broker.charged) = whole.Probe_broker.charged
      && sum (fun s -> s.Probe_broker.fresh_hits)
         = whole.Probe_broker.fresh_hits
      && sum (fun s -> s.Probe_broker.batches) = whole.Probe_broker.batches
      && whole.Probe_broker.failed = 0 && whole.Probe_broker.rejected = 0)

(* The freshness asymmetry, both directions: an oracle-fresh point never
   re-pays the proxy, while a proxy-fresh interval still escalates and
   pays the oracle. *)
let test_tier_freshness_asymmetry () =
  let broker = tiered_toy () in
  (* oracle first: the cached point satisfies a later proxy request *)
  (match Probe_broker.fetch ~tier:1 broker 5 with
  | Probe_driver.Resolved 35 -> ()
  | _ -> Alcotest.fail "oracle resolves");
  (match Probe_broker.fetch ~tier:0 broker 5 with
  | Probe_driver.Resolved 35 -> ()
  | _ -> Alcotest.fail "oracle-fresh point must satisfy the proxy free");
  (* proxy first: the narrowed interval does NOT satisfy the oracle *)
  (match Probe_broker.fetch ~tier:0 broker 6 with
  | Probe_driver.Shrunk 1006 -> ()
  | _ -> Alcotest.fail "proxy shrinks");
  (match Probe_broker.fetch ~tier:1 broker 6 with
  | Probe_driver.Resolved 42 -> ()
  | _ -> Alcotest.fail "proxy-fresh must still escalate and pay the oracle");
  (* once the oracle answered, even the proxy serves the point *)
  (match Probe_broker.fetch ~tier:0 broker 6 with
  | Probe_driver.Resolved 42 -> ()
  | _ -> Alcotest.fail "resolved point satisfies every tier");
  (* a shrunk entry does satisfy its own tier again *)
  (match Probe_broker.fetch ~tier:0 broker 7 with
  | Probe_driver.Shrunk 1007 -> ()
  | _ -> Alcotest.fail "proxy shrinks 7");
  (match Probe_broker.fetch ~tier:0 broker 7 with
  | Probe_driver.Shrunk 1007 -> ()
  | _ -> Alcotest.fail "shrunk entry serves its own tier");
  let bt = Probe_broker.by_tier broker in
  checki "proxy charged only for 6 and 7" 2 bt.(0).Probe_broker.charged;
  checki "oracle charged only for 5 and 6" 2 bt.(1).Probe_broker.charged;
  checki "proxy fresh hits" 3 bt.(0).Probe_broker.fresh_hits;
  checki "oracle never served free" 0 bt.(1).Probe_broker.fresh_hits;
  let whole = Probe_broker.stats broker in
  checki "tier charges sum to the whole"
    (bt.(0).Probe_broker.charged + bt.(1).Probe_broker.charged)
    whole.Probe_broker.charged;
  checki "tier fresh hits sum to the whole"
    (bt.(0).Probe_broker.fresh_hits + bt.(1).Probe_broker.fresh_hits)
    whole.Probe_broker.fresh_hits

(* Two domains hammering both tiers of the same broker concurrently:
   every waiter gets an outcome, the stats identity holds per tier, and
   the per-tier totals still sum to the whole-broker totals. *)
let test_tier_hammer_stats_identity () =
  let nkeys = 40 in
  let slow resolve objs =
    Unix.sleepf 0.0005;
    resolve objs
  in
  let broker =
    Probe_broker.create_tiered ~key:Fun.id
      [|
        {
          Probe_broker.bk_resolve =
            slow (fun objs ->
                Array.map (fun k -> Probe_driver.Shrunk (k + 1000)) objs);
          bk_batch = 3;
        };
        {
          Probe_broker.bk_resolve =
            slow (fun objs ->
                Array.map (fun k -> Probe_driver.Resolved (k * 7)) objs);
          bk_batch = 4;
        };
      |]
  in
  (* key k goes to the proxy from one worker and to the oracle from the
     other, so every key is in flight at both tiers *)
  let worker i () =
    let proxy =
      Probe_broker.client ~tenant:(string_of_int i) ~tier:0 broker
    in
    let oracle =
      Probe_broker.client ~tenant:(string_of_int i) ~tier:1 broker
    in
    let got = ref 0 in
    for k = 0 to nkeys - 1 do
      let d = if k mod 2 = i then proxy else oracle in
      Probe_driver.submit_outcome d k (fun _ -> incr got)
    done;
    Probe_driver.flush proxy;
    Probe_driver.flush oracle;
    !got
  in
  let domains = List.init 2 (fun i -> Domain.spawn (worker i)) in
  let answered = List.fold_left (fun n d -> n + Domain.join d) 0 domains in
  checki "every waiter answered" (2 * nkeys) answered;
  let bt = Probe_broker.by_tier broker in
  Array.iteri
    (fun i (s : Probe_broker.stats) ->
      checkb
        (Printf.sprintf "tier %d stats identity" i)
        true
        (s.Probe_broker.requests
        = s.Probe_broker.admitted + s.Probe_broker.coalesced
          + s.Probe_broker.fresh_hits + s.Probe_broker.rejected);
      checkb
        (Printf.sprintf "tier %d charged within admitted" i)
        true
        (s.Probe_broker.charged + s.Probe_broker.failed
        <= s.Probe_broker.admitted))
    bt;
  (* each key is asked of the oracle by exactly one worker, so the
     oracle is charged the full union; the proxy may be undercut by
     oracle points that landed first *)
  checki "oracle charged the union" nkeys bt.(1).Probe_broker.charged;
  checkb "proxy charged at most the union" true
    (bt.(0).Probe_broker.charged <= nkeys);
  let whole = Probe_broker.stats broker in
  let sum f = f bt.(0) + f bt.(1) in
  checki "requests sum" (sum (fun s -> s.Probe_broker.requests))
    whole.Probe_broker.requests;
  checki "admitted sum" (sum (fun s -> s.Probe_broker.admitted))
    whole.Probe_broker.admitted;
  checki "charged sum" (sum (fun s -> s.Probe_broker.charged))
    whole.Probe_broker.charged;
  checki "batches sum" (sum (fun s -> s.Probe_broker.batches))
    whole.Probe_broker.batches;
  checki "nothing failed" 0 whole.Probe_broker.failed;
  checki "nothing rejected" 0 whole.Probe_broker.rejected

let test_validation () =
  let resolve objs =
    Array.map (fun k -> Probe_driver.Resolved k) objs
  in
  Alcotest.check_raises "bad batch size"
    (Invalid_argument "Probe_broker.create: batch_size < 1") (fun () ->
      ignore (Probe_broker.create ~batch_size:0 ~key:Fun.id resolve));
  Alcotest.check_raises "bad freshness"
    (Invalid_argument
       "Probe_broker.create_tiered: freshness must be non-negative")
    (fun () ->
      ignore (Probe_broker.create ~freshness:(-1.0) ~key:Fun.id resolve));
  Alcotest.check_raises "bad capacity"
    (Invalid_argument "Probe_broker.create_tiered: capacity < 0") (fun () ->
      ignore (Probe_broker.create ~capacity:(-1) ~key:Fun.id resolve));
  let broker = Probe_broker.create ~key:Fun.id resolve in
  Alcotest.check_raises "bad quota"
    (Invalid_argument "Probe_broker.client: quota < 0") (fun () ->
      ignore (Probe_broker.client ~quota:(-1) broker))

let suite =
  [
    ("single query is bit-for-bit direct", `Quick, test_single_query_identity);
    QCheck_alcotest.to_alcotest prop_dedup_charged_once;
    ("concurrent dedup charges the union once", `Quick, test_concurrent_dedup);
    ("execute_many is scheduling-independent", `Quick,
     test_execute_many_deterministic);
    ("cross-query batch packing", `Quick, test_cross_query_packing);
    ("capacity saturation degrades", `Quick, test_capacity_saturation);
    ("saturated engine run degrades gracefully", `Quick,
     test_saturated_engine_run_degrades);
    ("freshness window semantics", `Quick, test_freshness_window);
    ("tenant quota isolates tenants", `Quick, test_tenant_quota);
    ("open breaker refuses rounds", `Quick, test_breaker_refuses_rounds);
    ("broker metrics mirror stats", `Quick, test_broker_metrics);
    QCheck_alcotest.to_alcotest prop_tier_dedup_charged_once;
    ("tier freshness asymmetry", `Quick, test_tier_freshness_asymmetry);
    ("two-domain tier hammer keeps stats identity", `Quick,
     test_tier_hammer_stats_identity);
    ("validation", `Quick, test_validation);
  ]
