(* Tests for the QaQ band join: pair distance analysis, the probe cache,
   and guarantee soundness over the pair space. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkf tol = Alcotest.(check (float tol))
let tvl = Alcotest.testable Tvl.pp Tvl.equal

let iv = Interval.make

let test_distance_interval () =
  (* Disjoint intervals. *)
  let d = Pair_distance.distance_interval (iv 0.0 2.0) (iv 5.0 7.0) in
  checkf 1e-12 "lo" 3.0 (Interval.lo d);
  checkf 1e-12 "hi" 7.0 (Interval.hi d);
  (* Overlapping intervals: distance can be 0. *)
  let d = Pair_distance.distance_interval (iv 0.0 4.0) (iv 3.0 6.0) in
  checkf 1e-12 "overlap lo" 0.0 (Interval.lo d);
  checkf 1e-12 "overlap hi" 6.0 (Interval.hi d);
  (* Points. *)
  let d = Pair_distance.distance_interval (Interval.point 1.0) (Interval.point 4.0) in
  checkb "point distance" true (Interval.is_point d);
  checkf 1e-12 "point value" 3.0 (Interval.lo d)

let test_classify () =
  Alcotest.check tvl "certain join" Tvl.Yes
    (Pair_distance.classify ~epsilon:10.0 (iv 0.0 2.0) (iv 3.0 5.0));
  Alcotest.check tvl "certain non-join" Tvl.No
    (Pair_distance.classify ~epsilon:1.0 (iv 0.0 2.0) (iv 5.0 7.0));
  Alcotest.check tvl "uncertain" Tvl.Maybe
    (Pair_distance.classify ~epsilon:4.0 (iv 0.0 2.0) (iv 5.0 7.0))

let test_success_known_case () =
  (* X ~ U(0,1), Y ~ U(0,1), P(|X-Y| <= 0.5) = 1 - 2*(0.5^2/2) = 0.75. *)
  checkf 1e-9 "unit square band" 0.75
    (Pair_distance.success ~epsilon:0.5 (iv 0.0 1.0) (iv 0.0 1.0));
  (* Degenerate left: P(|0.5 - Y| <= 0.25), Y ~ U(0,1) = 0.5. *)
  checkf 1e-9 "point vs interval" 0.5
    (Pair_distance.success ~epsilon:0.25 (Interval.point 0.5) (iv 0.0 1.0));
  (* Degenerate right, asymmetric clip. *)
  checkf 1e-9 "interval vs point" 0.25
    (Pair_distance.success ~epsilon:0.25 (iv 0.0 1.0) (Interval.point 0.0))

(* Monte-Carlo cross-check of the exact piecewise integral. *)
let prop_success_matches_monte_carlo =
  QCheck2.Test.make ~name:"pair success matches Monte Carlo" ~count:60
    QCheck2.Gen.(
      let iv_gen =
        let* lo = float_range (-10.0) 10.0 in
        let* w = float_range 0.2 8.0 in
        return (iv lo (lo +. w))
      in
      triple iv_gen iv_gen (float_range 0.1 6.0))
    (fun (a, b, epsilon) ->
      let exact = Pair_distance.success ~epsilon a b in
      let rng = Rng.create 77 in
      let n = 20000 in
      let hits = ref 0 in
      for _ = 1 to n do
        let x = Interval.sample rng a and y = Interval.sample rng b in
        if Float.abs (x -. y) <= epsilon then incr hits
      done;
      let mc = float_of_int !hits /. float_of_int n in
      Float.abs (exact -. mc) < 0.02)

let prop_distance_interval_sound =
  QCheck2.Test.make ~name:"distance interval contains sampled distances"
    ~count:200
    QCheck2.Gen.(
      let iv_gen =
        let* lo = float_range (-20.0) 20.0 in
        let* w = float_range 0.0 10.0 in
        return (iv lo (lo +. w))
      in
      pair iv_gen iv_gen)
    (fun (a, b) ->
      let d = Pair_distance.distance_interval a b in
      let rng = Rng.create 3 in
      let ok = ref true in
      for _ = 1 to 50 do
        let x = Interval.sample rng a and y = Interval.sample rng b in
        if not (Interval.contains d (Float.abs (x -. y))) then ok := false
      done;
      !ok)

(* ---- the join operator -------------------------------------------- *)

let relations seed n_left n_right =
  let rng = Rng.create seed in
  let gen n =
    Interval_data.uniform_intervals rng ~n ~value_range:(iv 0.0 100.0)
      ~max_width:10.0
  in
  (gen n_left, gen n_right)

let test_join_exact_under_perfect_quality () =
  let left, right = relations 1 30 30 in
  let epsilon = 5.0 in
  let requirements = Quality.requirements ~precision:1.0 ~recall:1.0 ~laxity:0.0 in
  let report =
    Band_join.run ~rng:(Rng.create 2) ~requirements ~epsilon ~left ~right ()
  in
  checki "answer equals exact join" (Band_join.exact_size ~epsilon left right)
    report.answer_size;
  List.iter
    (fun (e : Band_join.pair Operator.emitted) ->
      checkb "pair truly joins" true (Band_join.in_exact ~epsilon e.obj))
    report.answer;
  checkb "meets" true (Quality.meets report.guarantees requirements)

let test_probe_cache_bounds_probes () =
  let left, right = relations 3 40 40 in
  let requirements = Quality.requirements ~precision:1.0 ~recall:1.0 ~laxity:0.0 in
  let report =
    Band_join.run ~rng:(Rng.create 4) ~requirements ~epsilon:5.0 ~left ~right ()
  in
  (* 1600 pairs, but at most 80 distinct objects can ever be fetched. *)
  checkb "object probes bounded by objects" true (report.object_probes <= 80);
  checki "charged once per object" report.object_probes report.counts.probes;
  checkb "cache actually hit" true (report.probe_requests > report.object_probes)

(* The probe cache is now the cross-query broker underneath; the join's
   historical accounting must be unchanged on both sides of the
   share_probes switch.  Without sharing every request re-fetches — the
   broker's zero freshness window — so requests and fetches coincide. *)
let test_probe_cache_unshared_accounting () =
  let left, right = relations 3 40 40 in
  let requirements =
    Quality.requirements ~precision:1.0 ~recall:1.0 ~laxity:0.0
  in
  let run share =
    Band_join.run ~rng:(Rng.create 4) ~share_probes:share ~requirements
      ~epsilon:5.0 ~left ~right ()
  in
  let unshared = run false in
  checki "unshared: every request fetches" unshared.probe_requests
    unshared.object_probes;
  checki "unshared: every fetch charged" unshared.object_probes
    unshared.counts.probes;
  let shared = run true in
  checkb "sharing strictly cheaper" true
    (shared.counts.probes < unshared.counts.probes)

let test_join_guarantee_soundness () =
  let left, right = relations 5 50 40 in
  let epsilon = 4.0 in
  let requirements = Quality.requirements ~precision:0.9 ~recall:0.6 ~laxity:8.0 in
  let report =
    Band_join.run ~rng:(Rng.create 6) ~policy:Policy.stingy ~requirements
      ~epsilon ~left ~right ()
  in
  checkb "meets requirements" true (Quality.meets report.guarantees requirements);
  let answer_in_exact =
    List.length
      (List.filter (fun e -> Band_join.in_exact ~epsilon e.Operator.obj) report.answer)
  in
  let actual_p =
    Quality.Diagnostics.precision ~answer_size:report.answer_size
      ~answer_in_exact
  in
  let actual_r =
    Quality.Diagnostics.recall
      ~exact_size:(Band_join.exact_size ~epsilon left right)
      ~answer_in_exact
  in
  checkb "actual precision dominates guarantee" true
    (actual_p >= report.guarantees.precision -. 1e-9);
  checkb "actual recall dominates guarantee" true
    (actual_r >= report.guarantees.recall -. 1e-9)

let test_join_early_termination () =
  let left, right = relations 7 60 60 in
  let requirements = Quality.requirements ~precision:0.8 ~recall:0.05 ~laxity:20.0 in
  let report =
    Band_join.run ~rng:(Rng.create 8) ~requirements ~epsilon:5.0 ~left ~right ()
  in
  checkb "read only part of the pair space" true
    (report.counts.reads < report.pairs_total);
  checkb "not exhausted" false report.exhausted

let test_join_validation () =
  let left, right = relations 9 2 2 in
  Alcotest.check_raises "negative epsilon"
    (Invalid_argument "Band_join.run: epsilon < 0") (fun () ->
      ignore
        (Band_join.run ~rng:(Rng.create 1)
           ~requirements:(Quality.requirements ~precision:0.5 ~recall:0.5 ~laxity:10.0)
           ~epsilon:(-1.0) ~left ~right ()))

let prop_join_soundness_random =
  QCheck2.Test.make ~name:"join guarantees sound on random relations"
    ~count:40
    QCheck2.Gen.(
      quad (int_range 0 1000) (float_range 0.3 1.0) (float_range 0.0 0.8)
        (float_range 1.0 8.0))
    (fun (seed, p_q, r_q, epsilon) ->
      let left, right = relations seed 25 25 in
      let requirements =
        Quality.requirements ~precision:p_q ~recall:r_q ~laxity:12.0
      in
      let report =
        Band_join.run ~rng:(Rng.create (seed + 1)) ~policy:Policy.greedy
          ~requirements ~epsilon ~left ~right ()
      in
      let answer_in_exact =
        List.length
          (List.filter
             (fun e -> Band_join.in_exact ~epsilon e.Operator.obj)
             report.answer)
      in
      Quality.meets report.guarantees requirements
      && Quality.Diagnostics.precision ~answer_size:report.answer_size
           ~answer_in_exact
         >= report.guarantees.precision -. 1e-9)

let suite =
  [
    ("distance interval", `Quick, test_distance_interval);
    ("pair classification", `Quick, test_classify);
    ("success probability closed forms", `Quick, test_success_known_case);
    QCheck_alcotest.to_alcotest prop_success_matches_monte_carlo;
    QCheck_alcotest.to_alcotest prop_distance_interval_sound;
    ("perfect quality returns the exact join", `Quick, test_join_exact_under_perfect_quality);
    ("probe cache charges each object once", `Quick, test_probe_cache_bounds_probes);
    ("unshared cache accounting unchanged", `Quick, test_probe_cache_unshared_accounting);
    ("guarantee soundness", `Quick, test_join_guarantee_soundness);
    ("early termination", `Quick, test_join_early_termination);
    ("validation", `Quick, test_join_validation);
    QCheck_alcotest.to_alcotest prop_join_soundness_random;
  ]
