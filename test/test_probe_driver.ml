(* Unit tests for the batched probe driver. *)

let checki = Alcotest.(check int)

let test_scalar_flushes_immediately () =
  let d = Probe_driver.scalar (fun x -> x * 2) in
  checki "batch size" 1 (Probe_driver.batch_size d);
  let got = ref 0 in
  Probe_driver.submit d 7 (fun r -> got := r);
  checki "resolved synchronously" 14 !got;
  checki "no pending" 0 (Probe_driver.pending d);
  checki "probes" 1 (Probe_driver.probes d);
  checki "batches" 1 (Probe_driver.batches d)

let test_auto_flush_at_batch_size () =
  let batches_seen = ref [] in
  let d =
    Probe_driver.create ~batch_size:3 (fun objs ->
        batches_seen := Array.to_list objs :: !batches_seen;
        Array.map (fun x -> x + 1) objs)
  in
  let out = ref [] in
  List.iter
    (fun x -> Probe_driver.submit d x (fun r -> out := r :: !out))
    [ 1; 2; 3; 4 ];
  checki "one auto flush" 1 (Probe_driver.batches d);
  checki "one pending" 1 (Probe_driver.pending d);
  Alcotest.(check (list (list int)))
    "first batch intact" [ [ 1; 2; 3 ] ] !batches_seen;
  Alcotest.(check (list int))
    "callbacks in submission order" [ 2; 3; 4 ] (List.rev !out);
  Probe_driver.flush d;
  checki "explicit flush drains" 0 (Probe_driver.pending d);
  checki "two batches" 2 (Probe_driver.batches d);
  checki "four probes" 4 (Probe_driver.probes d);
  Alcotest.(check (list int))
    "partial batch delivered" [ 2; 3; 4; 5 ] (List.rev !out);
  Probe_driver.flush d;
  checki "empty flush is free" 2 (Probe_driver.batches d)

let test_stats_before_callbacks () =
  (* Accounting is committed before completions run, so a callback may
     read consistent stats. *)
  let d = Probe_driver.of_scalar ~batch_size:2 Fun.id in
  let seen = ref (-1, -1) in
  Probe_driver.submit d 1 (fun _ -> ());
  Probe_driver.submit d 2 (fun _ ->
      seen := (Probe_driver.probes d, Probe_driver.batches d));
  Alcotest.(check (pair int int)) "stats visible in callback" (2, 1) !seen

let test_callback_may_resubmit () =
  (* Completions run outside the resolving section, so follow-up probes
     from a callback are legal. *)
  let d = Probe_driver.of_scalar ~batch_size:1 (fun x -> x + 1) in
  let final = ref 0 in
  Probe_driver.submit d 0 (fun r ->
      Probe_driver.submit d r (fun r2 -> final := r2));
  checki "chained probe" 2 !final;
  checki "two batches" 2 (Probe_driver.batches d)

let test_resolve () =
  let d = Probe_driver.of_scalar ~batch_size:8 (fun x -> x * x) in
  checki "resolve flushes a partial batch" 25 (Probe_driver.resolve d 5);
  checki "no pending" 0 (Probe_driver.pending d);
  checki "one batch" 1 (Probe_driver.batches d)

let test_validation () =
  Alcotest.check_raises "batch_size < 1"
    (Invalid_argument "Probe_driver.create: batch_size < 1") (fun () ->
      ignore (Probe_driver.create ~batch_size:0 (fun (o : int array) -> o)));
  let bad = Probe_driver.create ~batch_size:2 (fun _ -> ([||] : int array)) in
  Probe_driver.submit bad 1 (fun _ -> ());
  Alcotest.check_raises "resolver changed the length"
    (Invalid_argument "Probe_driver.flush: resolver changed the batch length")
    (fun () -> Probe_driver.submit bad 2 (fun _ -> ()))

let test_reentrant_flush_rejected () =
  let self = ref None in
  let d =
    Probe_driver.create ~batch_size:1 (fun objs ->
        (match !self with Some d -> Probe_driver.flush d | None -> ());
        objs)
  in
  self := Some d;
  Alcotest.check_raises "reentrant flush"
    (Invalid_argument "Probe_driver.flush: reentrant flush") (fun () ->
      Probe_driver.submit d 1 (fun _ -> ()))

let suite =
  [
    ("scalar flushes immediately", `Quick, test_scalar_flushes_immediately);
    ("auto-flush at batch size", `Quick, test_auto_flush_at_batch_size);
    ("stats committed before callbacks", `Quick, test_stats_before_callbacks);
    ("callback may resubmit", `Quick, test_callback_may_resubmit);
    ("resolve flushes a partial batch", `Quick, test_resolve);
    ("validation", `Quick, test_validation);
    ("reentrant flush rejected", `Quick, test_reentrant_flush_rejected);
  ]
