(* Tests for the time-series substrate: series, PAA sketches and
   similarity queries over sketches. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkf tol = Alcotest.(check (float tol))

let ts a = Time_series.of_array a

let test_series_basics () =
  let s = ts [| 1.0; 2.0; 3.0 |] in
  checki "length" 3 (Time_series.length s);
  checkf 0.0 "get" 2.0 (Time_series.get s 1);
  checkf 1e-12 "distance" (sqrt 3.0)
    (Time_series.euclidean_distance s (ts [| 2.0; 3.0; 4.0 |]));
  checkf 0.0 "distance to self" 0.0 (Time_series.euclidean_distance s s);
  Alcotest.check_raises "empty" (Invalid_argument "Time_series.of_array: empty")
    (fun () -> ignore (ts [||]));
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Time_series.euclidean_distance: length mismatch")
    (fun () ->
      ignore (Time_series.euclidean_distance s (ts [| 1.0 |])))

let test_motif () =
  let base = ts (Array.make 10 0.0) in
  let motif = ts [| 1.0; 2.0 |] in
  let m = Time_series.with_motif (Rng.create 1) ~base ~motif ~at:3 ~amplitude:2.0 in
  checkf 0.0 "before" 0.0 (Time_series.get m 2);
  checkf 0.0 "first" 2.0 (Time_series.get m 3);
  checkf 0.0 "second" 4.0 (Time_series.get m 4);
  checkf 0.0 "after" 0.0 (Time_series.get m 5);
  Alcotest.check_raises "out of bounds"
    (Invalid_argument "Time_series.with_motif: bounds") (fun () ->
      ignore (Time_series.with_motif (Rng.create 1) ~base ~motif ~at:9 ~amplitude:1.0))

let test_paa_segments () =
  let s = ts [| 1.0; 3.0; 5.0; 7.0; 2.0; 2.0; 8.0; 0.0 |] in
  let p = Paa.compress ~segments:4 s in
  checki "segments" 4 (Paa.segments p);
  checkf 0.0 "mean 0" 2.0 (Paa.segment_mean p 0);
  checkf 0.0 "min 0" 1.0 (Paa.segment_min p 0);
  checkf 0.0 "max 0" 3.0 (Paa.segment_max p 0);
  checkf 0.0 "mean 3" 4.0 (Paa.segment_mean p 3);
  checkf 1e-12 "ratio" 1.5 (Paa.compression_ratio p);
  let r = Paa.reconstruct p in
  checki "reconstruct length" 8 (Time_series.length r);
  checkf 0.0 "reconstruct values" 2.0 (Time_series.get r 1)

let test_paa_uneven_lengths () =
  (* 10 points over 3 segments: sizes 3/3/4 (floor boundaries). *)
  let s = ts (Array.init 10 float_of_int) in
  let p = Paa.compress ~segments:3 s in
  checki "segments" 3 (Paa.segments p);
  checki "reconstruct full length" 10 (Time_series.length (Paa.reconstruct p));
  Alcotest.check_raises "too many segments"
    (Invalid_argument "Paa.compress: segments") (fun () ->
      ignore (Paa.compress ~segments:11 s))

let random_series rng n =
  Time_series.random_walk rng ~length:n ~start:0.0 ~step_stddev:1.0

(* The load-bearing property: distance bounds always bracket the true
   distance, and value bounds always bracket the true values. *)
let prop_paa_bounds_sound =
  QCheck2.Test.make ~name:"PAA distance/value bounds contain the truth"
    ~count:200
    QCheck2.Gen.(triple (int_range 0 5000) (int_range 8 128) (int_range 1 8))
    (fun (seed, n, segs) ->
      let rng = Rng.create seed in
      let series = random_series rng n in
      let query = random_series rng n in
      let sketch = Paa.compress ~segments:(Stdlib.min segs n) series in
      let bounds = Paa.distance_bounds sketch query in
      let true_distance = Time_series.euclidean_distance series query in
      Interval.contains bounds true_distance
      && Seq.for_all
           (fun i ->
             Interval.contains (Paa.value_bounds sketch i)
               (Time_series.get series i))
           (Seq.init n Fun.id))

let prop_more_segments_tighter =
  QCheck2.Test.make ~name:"finer sketches give tighter distance bounds"
    ~count:100
    QCheck2.Gen.(pair (int_range 0 5000) (int_range 32 128))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let series = random_series rng n in
      let query = random_series rng n in
      let width segs =
        Interval.width (Paa.distance_bounds (Paa.compress ~segments:segs series) query)
      in
      width 16 <= width 4 +. 1e-9)

let test_ts_query_classification () =
  let rng = Rng.create 9 in
  let pattern = random_series rng 64 in
  let near = Time_series.map (fun x -> x +. 0.01) pattern in
  let far = Time_series.map (fun x -> x +. 100.0) pattern in
  let q = Ts_query.query ~pattern ~epsilon:5.0 in
  let instance = Ts_query.instance q in
  let item_near = Ts_query.make_item ~id:0 ~segments:8 near in
  let item_far = Ts_query.make_item ~id:1 ~segments:8 far in
  checkb "far is NO" true (Tvl.equal (instance.classify item_far) Tvl.No);
  checkb "near is YES or MAYBE" true
    (not (Tvl.equal (instance.classify item_near) Tvl.No));
  (* Probing resolves and zeroes laxity. *)
  let probed = Ts_query.probe item_near in
  checkb "probed definite" true (Tvl.is_definite (instance.classify probed));
  checkf 0.0 "probed laxity" 0.0 (instance.laxity probed);
  checkb "near truly matches" true (Ts_query.in_exact q item_near);
  Alcotest.check_raises "negative epsilon"
    (Invalid_argument "Ts_query.query: epsilon < 0") (fun () ->
      ignore (Ts_query.query ~pattern ~epsilon:(-1.0)))

let test_ts_query_end_to_end () =
  (* Full QaQ over sketched series with perfect precision: every answer
     is verified against ground truth. *)
  let rng = Rng.create 10 in
  let pattern = random_series rng 128 in
  let items =
    Array.init 300 (fun id ->
        let series =
          if id mod 3 = 0 then
            Time_series.map (fun x -> x +. Rng.gaussian rng ~mean:0.0 ~stddev:0.4) pattern
          else random_series rng 128
        in
        Ts_query.make_item ~id ~segments:16 series)
  in
  let q = Ts_query.query ~pattern ~epsilon:8.0 in
  let requirements = Quality.requirements ~precision:1.0 ~recall:0.5 ~laxity:5.0 in
  let report =
    Operator.run ~rng ~instance:(Ts_query.instance q)
      ~probe:(Probe_driver.scalar Ts_query.probe)
      ~policy:Policy.stingy ~requirements
      (Operator.source_of_array items)
  in
  checkb "meets requirements" true (Quality.meets report.guarantees requirements);
  List.iter
    (fun (e : Ts_query.item Operator.emitted) ->
      checkb "perfect precision verified" true (Ts_query.in_exact q e.obj))
    report.answer;
  checkb "found some" true (report.answer_size > 0)

let suite =
  [
    ("series basics", `Quick, test_series_basics);
    ("motif planting", `Quick, test_motif);
    ("paa segment stats", `Quick, test_paa_segments);
    ("paa uneven lengths", `Quick, test_paa_uneven_lengths);
    QCheck_alcotest.to_alcotest prop_paa_bounds_sound;
    QCheck_alcotest.to_alcotest prop_more_segments_tighter;
    ("ts query classification", `Quick, test_ts_query_classification);
    ("ts query end to end", `Quick, test_ts_query_end_to_end);
  ]
