(* Golden equivalence tests for the columnar engine: the vectorized
   kernel path over a [Column_store] must be bit-for-bit the row path —
   same verdicts, laxities, success probabilities, answers, guarantees,
   metered costs and planner output — for every pool width, batch size,
   backing (resident or streamed from a QCOL file) and fault plan.
   Plus the QCOL codec itself: exact round-trips and typed rejection of
   damaged files. *)

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let check_same label a b = checkb label true (a = b)

let requirements = Quality.requirements ~precision:0.85 ~recall:0.7 ~laxity:8.0

let dataset ?(n = 4000) seed =
  Interval_data.uniform_intervals (Rng.create seed) ~n
    ~value_range:(Interval.make 0.0 100.0) ~max_width:10.0

let pred = Predicate.between 30.0 60.0

(* ---- kernel vs instance -------------------------------------------- *)

(* The kernel must reproduce [Scan_pipeline.classify_one] — verdict,
   laxity and success — bit for bit, on arbitrary exact/interval
   records and arbitrary predicates. *)
let record_gen =
  QCheck2.Gen.(
    let value = float_range (-50.0) 50.0 in
    let* lo = value in
    let* w = oneof [ return 0.0; float_range 0.0 20.0 ] in
    return (lo, lo +. w))

let pred_gen =
  QCheck2.Gen.(
    let bound = float_range (-40.0) 40.0 in
    oneof
      [
        map Predicate.ge bound;
        map Predicate.le bound;
        map
          (fun (a, b) -> Predicate.between (Float.min a b) (Float.max a b))
          (pair bound bound);
        map
          (fun (a, b) ->
            Predicate.(ge (Float.min a b) &&& not_ (gt (Float.max a b))))
          (pair bound bound);
      ])

let prop_kernel_matches_instance =
  QCheck2.Test.make ~name:"kernel equals instance evaluation" ~count:200
    QCheck2.Gen.(pair pred_gen (list_size (int_range 1 200) record_gen))
    (fun (pred, bounds) ->
      let records =
        Array.of_list bounds
        |> Array.mapi (fun id (lo, hi) ->
               {
                 Interval_data.id;
                 belief =
                   (if lo = hi then Uncertain.exact lo
                    else Uncertain.interval lo hi);
                 truth = lo;
               })
      in
      let store = Interval_data.to_store ~chunk_size:7 records in
      let instance = Interval_data.instance pred in
      let compiled = Predicate.compile pred in
      let n = Array.length records in
      let verdicts = Bytes.create n in
      let laxities = Array.make n nan in
      let successes = Array.make n nan in
      for c = 0 to Column_store.chunk_count store - 1 do
        let ch = Column_store.chunk store c in
        Column_scan.kernel compiled ch ~off:ch.Column_store.base ~verdicts
          ~laxities ~successes
      done;
      Array.for_all
        (fun (r : Interval_data.record) ->
          let expect = Scan_pipeline.classify_one instance r in
          let i = r.id in
          Tvl.equal expect.Scan_pipeline.verdict
            (Tvl.of_char (Bytes.get verdicts i))
          && expect.Scan_pipeline.laxity = laxities.(i)
          && expect.Scan_pipeline.success = successes.(i))
        records)

(* ---- engine equivalence -------------------------------------------- *)

type fingerprint = {
  answer : (int * bool) list;
  guarantees : Quality.guarantees;
  counts : Cost_meter.counts;
  run_counts : Cost_meter.counts;
  yes_seen : int;
  maybe_ignored : int;
  answer_size : int;
  exhausted : bool;
  normalized_cost : float;
  plan_params : Policy.params option;
  degradation : Engine.degradation;
}

let fingerprint (result : Interval_data.record Engine.result) =
  {
    answer =
      List.map
        (fun (e : Interval_data.record Operator.emitted) ->
          (e.obj.id, e.precise))
        result.report.answer;
    guarantees = result.report.guarantees;
    counts = result.counts;
    run_counts = result.report.counts;
    yes_seen = result.report.yes_seen;
    maybe_ignored = result.report.maybe_ignored;
    answer_size = result.report.answer_size;
    exhausted = result.report.exhausted;
    normalized_cost = result.normalized_cost;
    plan_params = Option.map (fun (p : Engine.plan) -> p.params) result.plan;
    degradation = result.degradation;
  }

let columnar ?(prune = false) store =
  { Engine.store; of_row = Interval_data.of_row; pred; prune }

let run ?columnar ?faults ~seed ~batch ~domains data =
  let probe =
    match faults with
    | None -> Probe_driver.of_scalar ~batch_size:batch Interval_data.probe
    | Some fault_seed ->
        let plan =
          Fault_plan.make ~seed:fault_seed ~transient_rate:0.05
            ~permanent_rate:0.1 ~max_retries:2 ()
        in
        Probe_source.driver ~batch_size:batch
          (Probe_source.create ~max_retries:2 ~faults:plan Interval_data.probe)
  in
  fingerprint
    (Engine.execute ~rng:(Rng.create seed) ~max_laxity:10.0 ~batch ~domains
       ?columnar ~instance:(Interval_data.instance pred) ~probe ~requirements
       data)

let test_golden_row_vs_columnar () =
  let data = dataset 11 in
  let store = Interval_data.to_store data in
  List.iter
    (fun batch ->
      List.iter
        (fun domains ->
          let row = run ~seed:21 ~batch ~domains data in
          checkb
            (Printf.sprintf "B=%d d=%d baseline answers" batch domains)
            true (row.answer_size > 0);
          let col =
            run ~columnar:(columnar store) ~seed:21 ~batch ~domains data
          in
          check_same
            (Printf.sprintf "B=%d domains=%d row = columnar" batch domains)
            row col)
        [ 1; 2; 4 ])
    [ 1; 4 ]

let test_golden_under_faults () =
  let data = dataset 13 in
  let store = Interval_data.to_store data in
  List.iter
    (fun domains ->
      let row = run ~faults:99 ~seed:5 ~batch:4 ~domains data in
      let col =
        run ~columnar:(columnar store) ~faults:99 ~seed:5 ~batch:4 ~domains
          data
      in
      checkb "faults actually degraded the run" true
        (row.degradation.Engine.failed_probes > 0);
      check_same
        (Printf.sprintf "faulted domains=%d row = columnar" domains)
        row col)
    [ 1; 4 ]

let test_golden_streamed_store () =
  let data = dataset 17 in
  let resident = Interval_data.to_store ~chunk_size:50 data in
  let path = Filename.temp_file "imprecise_qcol" ".qcol" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Dataset_io.save_columnar path resident;
      Dataset_io.with_columnar ~pool_capacity:4 path (fun streamed ->
          let base = run ~columnar:(columnar resident) ~seed:7 ~batch:4
              ~domains:2 data
          in
          let got = run ~columnar:(columnar streamed) ~seed:7 ~batch:4
              ~domains:2 data
          in
          check_same "resident = streamed" base got))

(* Pruning drops whole-NO chunks before the scan: the exact answer is
   untouched (pruned objects are definite NOs) and pruned chunks of a
   streamed store are never decoded. *)
let test_prune_sound_and_lazy () =
  let data = dataset 19 in
  let resident = Interval_data.to_store ~chunk_size:32 data in
  (* A selective predicate so that many chunk hulls are whole-NO. *)
  let pred = Predicate.between 5.0 9.0 in
  let requirements =
    Quality.requirements ~precision:0.6 ~recall:1.0 ~laxity:10.0
  in
  let run columnar =
    Engine.execute ~rng:(Rng.create 3) ~max_laxity:10.0 ~domains:1 ~columnar
      ~planning:(Engine.Fixed Policy.greedy_params)
      ~instance:(Interval_data.instance pred)
      ~probe:(Probe_driver.scalar Interval_data.probe)
      ~requirements data
  in
  let fetched = ref [] in
  let counting =
    Column_store.of_fetch
      ~length:(Column_store.length resident)
      ~chunk_size:(Column_store.chunk_size resident)
      ~zones:(Column_store.zones resident)
      (fun c ->
        fetched := c :: !fetched;
        Column_store.chunk resident c)
  in
  let result =
    run { Engine.store = counting; of_row = Interval_data.of_row; pred;
          prune = true }
  in
  let pruned = Column_store.pruned_chunks resident pred in
  checkb "predicate prunes some chunks" true (pruned > 0);
  List.iter
    (fun c ->
      checkb "no pruned chunk was fetched" false
        (Column_store.prunable resident pred c))
    !fetched;
  (* Recall 1 forces a full scan of the surviving chunks, so the answer
     must contain the whole exact set despite the pruning. *)
  let answer_ids =
    List.map
      (fun (e : Interval_data.record Operator.emitted) -> e.obj.id)
      result.Engine.report.Operator.answer
  in
  List.iter
    (fun (r : Interval_data.record) ->
      checkb "exact member survived pruning" true (List.mem r.id answer_ids))
    (Interval_data.exact_set pred data)

(* ---- layout resolution --------------------------------------------- *)

let with_env var value f =
  let old = Sys.getenv_opt var in
  Unix.putenv var value;
  Fun.protect
    ~finally:(fun () -> Unix.putenv var (Option.value old ~default:""))
    f

let test_resolve_layout () =
  check_same "explicit wins" Engine.Columnar
    (with_env Engine.layout_env "row" (fun () ->
         Engine.resolve_layout ~layout:Engine.Columnar ()));
  check_same "env columnar"
    Engine.Columnar
    (with_env Engine.layout_env "columnar" (fun () ->
         Engine.resolve_layout ()));
  check_same "env row" Engine.Row
    (with_env Engine.layout_env "row" (fun () -> Engine.resolve_layout ()));
  check_same "unset defaults to row" Engine.Row
    (with_env Engine.layout_env "" (fun () -> Engine.resolve_layout ()));
  checkb "garbage rejected" true
    (with_env Engine.layout_env "diagonal" (fun () ->
         match Engine.resolve_layout () with
         | exception Invalid_argument _ -> true
         | _ -> false))

(* The suite honours the resolved layout: under QAQ_LAYOUT=columnar this
   exercises the columnar engine end to end (the CI matrix leg), and the
   result must still be the row oracle's. *)
let test_resolved_layout_run () =
  let data = dataset 23 in
  let row = run ~seed:9 ~batch:4 ~domains:1 data in
  let resolved =
    match Engine.resolve_layout () with
    | Engine.Row -> row
    | Engine.Columnar ->
        run ~columnar:(columnar (Interval_data.to_store data)) ~seed:9
          ~batch:4 ~domains:1 data
  in
  check_same "resolved layout equals row oracle" row resolved

let test_store_length_mismatch () =
  let data = dataset 29 ~n:100 in
  let store = Interval_data.to_store (Array.sub data 0 99) in
  checkb "length mismatch rejected" true
    (match run ~columnar:(columnar store) ~seed:1 ~batch:1 ~domains:1 data with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ---- QCOL codec ---------------------------------------------------- *)

let same_records (a : Interval_data.record array)
    (b : Interval_data.record array) =
  Array.length a = Array.length b
  && Array.for_all2
       (fun (x : Interval_data.record) (y : Interval_data.record) ->
         x.id = y.id && x.truth = y.truth
         && Uncertain.equal x.belief y.belief)
       a b

let prop_qcol_roundtrip =
  QCheck2.Test.make ~name:"qcol file roundtrip" ~count:60
    QCheck2.Gen.(
      pair (int_range 1 9) (list_size (int_range 0 120) record_gen))
    (fun (chunk_size, bounds) ->
      let records =
        Array.of_list bounds
        |> Array.mapi (fun id (lo, hi) ->
               {
                 Interval_data.id;
                 belief =
                   (if lo = hi then Uncertain.exact lo
                    else Uncertain.interval lo hi);
                 truth = (lo +. hi) /. 2.0;
               })
      in
      let store = Interval_data.to_store ~chunk_size records in
      let path = Filename.temp_file "imprecise_qcol" ".qcol" in
      Fun.protect
        ~finally:(fun () -> Sys.remove path)
        (fun () ->
          Dataset_io.save_columnar path store;
          Dataset_io.with_columnar path (fun streamed ->
              same_records records (Interval_data.of_store streamed)
              && Column_store.zones streamed = Column_store.zones store)))

let write_file path bytes =
  let oc = open_out_bin path in
  output_string oc bytes;
  close_out oc

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let expect_corrupt name f =
  checkb name true
    (match f () with
    | exception Dataset_io.Corrupt_columnar _ -> true
    | _ -> false)

let test_qcol_corruption () =
  let records = dataset 31 ~n:100 in
  let store = Interval_data.to_store ~chunk_size:16 records in
  let path = Filename.temp_file "imprecise_qcol" ".qcol" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Dataset_io.save_columnar path store;
      let good = read_file path in
      (* Bad magic. *)
      write_file path ("XCOLv001" ^ String.sub good 8 (String.length good - 8));
      expect_corrupt "bad magic" (fun () ->
          Dataset_io.with_columnar path ignore);
      (* Truncated header. *)
      write_file path (String.sub good 0 10);
      expect_corrupt "truncated header" (fun () ->
          Dataset_io.with_columnar path ignore);
      (* Truncated body: size no longer matches the declared layout. *)
      write_file path (String.sub good 0 (String.length good - 5));
      expect_corrupt "truncated body" (fun () ->
          Dataset_io.with_columnar path ignore);
      (* Trailing garbage is also a size mismatch. *)
      write_file path (good ^ "junk");
      expect_corrupt "padded file" (fun () ->
          Dataset_io.with_columnar path ignore);
      (* Corrupt row bounds: flip a chunk's lo/hi columns so a decoded
         support is reversed.  The header is intact, so the damage only
         surfaces when the chunk is actually fetched. *)
      let header = 8 + 16 + (Column_store.chunk_count store * 17) in
      let body = Bytes.of_string good in
      let len = 16 in
      (* lo column of chunk 0 starts after its ids *)
      let lo_off = header + (len * 8) in
      let hi_off = lo_off + (len * 8) in
      let tmp = Bytes.sub body lo_off (len * 8) in
      Bytes.blit body hi_off body lo_off (len * 8);
      Bytes.blit tmp 0 body hi_off (len * 8);
      write_file path (Bytes.to_string body);
      expect_corrupt "reversed bounds in chunk" (fun () ->
          Dataset_io.with_columnar path (fun s ->
              ignore (Column_store.chunk s 0))))

let test_closed_file_fetch () =
  let records = dataset 37 ~n:50 in
  let store = Interval_data.to_store ~chunk_size:16 records in
  let path = Filename.temp_file "imprecise_qcol" ".qcol" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Dataset_io.save_columnar path store;
      let file = Dataset_io.open_columnar path in
      let streamed = Dataset_io.columnar_store file in
      ignore (Column_store.chunk streamed 0);
      Dataset_io.close_columnar file;
      checkb "fetch after close rejected" true
        (match Column_store.chunk streamed 1 with
        | exception Invalid_argument _ -> true
        | _ -> false))

(* The streamed store's chunk pool really caches: re-reading the same
   chunk is a hit, and capacity bounds residency. *)
let test_qcol_pool_caches () =
  let records = dataset 41 ~n:200 in
  let store = Interval_data.to_store ~chunk_size:16 records in
  let path = Filename.temp_file "imprecise_qcol" ".qcol" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Dataset_io.save_columnar path store;
      let file = Dataset_io.open_columnar ~pool_capacity:2 path in
      Fun.protect
        ~finally:(fun () -> Dataset_io.close_columnar file)
        (fun () ->
          let streamed = Dataset_io.columnar_store file in
          ignore (Column_store.chunk streamed 0);
          ignore (Column_store.chunk streamed 0);
          ignore (Column_store.chunk streamed 1);
          ignore (Column_store.chunk streamed 2);
          (* capacity 2: chunk 0 evicted *)
          ignore (Column_store.chunk streamed 0);
          let s = Buffer_pool.stats (Dataset_io.columnar_pool file) in
          checki "hits" 1 s.Buffer_pool.hits;
          checki "misses" 4 s.Buffer_pool.misses;
          checki "evictions" 2 s.Buffer_pool.evictions))

let suite =
  [
    QCheck_alcotest.to_alcotest prop_kernel_matches_instance;
    ("golden row vs columnar", `Quick, test_golden_row_vs_columnar);
    ("golden under faults", `Quick, test_golden_under_faults);
    ("golden streamed store", `Quick, test_golden_streamed_store);
    ("pruning sound and lazy", `Quick, test_prune_sound_and_lazy);
    ("resolve_layout", `Quick, test_resolve_layout);
    ("resolved layout run", `Quick, test_resolved_layout_run);
    ("store length mismatch", `Quick, test_store_length_mismatch);
    QCheck_alcotest.to_alcotest prop_qcol_roundtrip;
    ("qcol corruption", `Quick, test_qcol_corruption);
    ("fetch after close", `Quick, test_closed_file_fetch);
    ("qcol pool caches", `Quick, test_qcol_pool_caches);
  ]
