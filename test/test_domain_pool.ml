(* Tests for the worker-domain pool: parallel_map must equal Array.map
   for every lane count and chunking, exceptions must surface in the
   caller, and pools must start up and shut down cleanly. *)

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let test_map_matches_sequential () =
  Domain_pool.with_pool ~domains:4 (fun pool ->
      List.iter
        (fun n ->
          let arr = Array.init n (fun i -> i) in
          let expect = Array.map (fun x -> (x * 37) + 1) arr in
          let got = Domain_pool.parallel_map pool (fun x -> (x * 37) + 1) arr in
          Alcotest.(check (array int))
            (Printf.sprintf "map over %d elements" n)
            expect got)
        [ 0; 1; 2; 7; 64; 1000 ])

(* Float results exercise the flat float-array representation: the
   per-chunk merge must produce a well-formed float array. *)
let test_map_floats () =
  Domain_pool.with_pool ~domains:3 (fun pool ->
      let arr = Array.init 513 float_of_int in
      let f x = (x *. 1.5) -. 7.0 in
      let got = Domain_pool.parallel_map pool f arr in
      Alcotest.(check (array (float 0.0))) "float map" (Array.map f arr) got)

let prop_map_equals_array_map =
  QCheck2.Test.make ~name:"parallel_map equals Array.map" ~count:200
    QCheck2.Gen.(
      triple (int_range 0 500) (int_range 1 64) (int_range 1 6))
    (fun (n, chunk, domains) ->
      Domain_pool.with_pool ~domains (fun pool ->
          let arr = Array.init n (fun i -> (i * 13) mod 97) in
          let f x = (x * x) - (3 * x) in
          Domain_pool.parallel_map pool ~chunk_size:chunk f arr
          = Array.map f arr))

let test_single_domain_fallback () =
  (* domains = 1 spawns nothing and still computes everything. *)
  Domain_pool.with_pool ~domains:1 (fun pool ->
      checki "one lane" 1 (Domain_pool.domains pool);
      let arr = Array.init 100 (fun i -> i) in
      Alcotest.(check (array int))
        "sequential fallback" (Array.map succ arr)
        (Domain_pool.parallel_map pool succ arr);
      checki "busy array length" 1 (Array.length (Domain_pool.busy_seconds pool)))

let test_exception_propagates () =
  Domain_pool.with_pool ~domains:4 (fun pool ->
      let arr = Array.init 300 (fun i -> i) in
      Alcotest.check_raises "worker exception reaches the caller"
        (Failure "boom") (fun () ->
          ignore
            (Domain_pool.parallel_map pool ~chunk_size:8
               (fun x -> if x = 217 then failwith "boom" else x)
               arr));
      (* The pool survives a failed map. *)
      Alcotest.(check (array int))
        "pool usable after failure" (Array.map succ arr)
        (Domain_pool.parallel_map pool succ arr))

let test_run_all () =
  Domain_pool.with_pool ~domains:4 (fun pool ->
      let thunks = Array.init 17 (fun i () -> i * i) in
      Alcotest.(check (array int))
        "thunk results in input order"
        (Array.init 17 (fun i -> i * i))
        (Domain_pool.run_all pool thunks))

let test_busy_seconds () =
  Domain_pool.with_pool ~domains:3 (fun pool ->
      checki "one entry per lane" 3
        (Array.length (Domain_pool.busy_seconds pool));
      ignore
        (Domain_pool.parallel_map pool ~chunk_size:1 (fun x -> x * 2)
           (Array.init 64 (fun i -> i)));
      Array.iter
        (fun b -> checkb "busy time non-negative" true (b >= 0.0))
        (Domain_pool.busy_seconds pool))

let test_shutdown_idempotent () =
  let pool = Domain_pool.create ~domains:3 () in
  ignore (Domain_pool.parallel_map pool succ (Array.init 10 (fun i -> i)));
  Domain_pool.shutdown pool;
  Domain_pool.shutdown pool;
  (* Repeated create/shutdown cycles must not leak or wedge. *)
  for _ = 1 to 10 do
    Domain_pool.with_pool ~domains:2 (fun p ->
        ignore (Domain_pool.parallel_map p succ (Array.init 32 (fun i -> i))))
  done

let test_invalid_arguments () =
  Alcotest.check_raises "create domains < 1"
    (Invalid_argument "Domain_pool.create: domains < 1") (fun () ->
      ignore (Domain_pool.create ~domains:0 ()));
  Alcotest.check_raises "resolve domains < 1"
    (Invalid_argument "Domain_pool.resolve: domains < 1") (fun () ->
      ignore (Domain_pool.resolve ~domains:0 ()));
  Domain_pool.with_pool ~domains:2 (fun pool ->
      Alcotest.check_raises "chunk_size < 1"
        (Invalid_argument "Domain_pool.parallel_map: chunk_size < 1")
        (fun () ->
          ignore
            (Domain_pool.parallel_map pool ~chunk_size:0 succ [| 1; 2; 3 |])))

let test_resolve_env () =
  checki "explicit wins" 3 (Domain_pool.resolve ~domains:3 ());
  Unix.putenv Domain_pool.env_var "4";
  checki "env consulted" 4 (Domain_pool.resolve ());
  checki "explicit beats env" 2 (Domain_pool.resolve ~domains:2 ());
  Unix.putenv Domain_pool.env_var "nonsense";
  checkb "invalid env rejected" true
    (match Domain_pool.resolve () with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Unix.putenv Domain_pool.env_var "";
  checki "empty env means one" 1 (Domain_pool.resolve ())

let suite =
  [
    ("parallel_map matches Array.map", `Quick, test_map_matches_sequential);
    ("parallel_map over floats", `Quick, test_map_floats);
    QCheck_alcotest.to_alcotest prop_map_equals_array_map;
    ("single-domain fallback", `Quick, test_single_domain_fallback);
    ("exception propagation", `Quick, test_exception_propagates);
    ("run_all ordering", `Quick, test_run_all);
    ("busy accounting", `Quick, test_busy_seconds);
    ("shutdown idempotent, pools cycle", `Quick, test_shutdown_idempotent);
    ("invalid arguments", `Quick, test_invalid_arguments);
    ("resolve and QAQ_DOMAINS", `Quick, test_resolve_env);
  ]
